(* lazyctrl — command-line driver for the LazyCtrl reproduction.

   Subcommands:
     simulate    run a day-long (or shorter) whole-network simulation
     group       compute a switch grouping for a generated workload
     workload    generate a traffic trace and print its characteristics
     trace       flight recorder: record a traced run, summarize or
                 query a trace file (JSONL / Chrome trace_event)
     experiment  run one of the paper's tables/figures (same targets as
                 bench/main.exe)
     shard-check verify the domain-parallel sharded engine produces
                 byte-identical fingerprints across runs and domain
                 counts (the CI multicore matrix gate)
     chaos       run a seeded multi-fault chaos scenario with lossy
                 channels and report the convergence invariants
*)

open Cmdliner
open Lazyctrl_sim
open Lazyctrl_topo
open Lazyctrl_traffic
open Lazyctrl_core
open Lazyctrl_controller
open Lazyctrl_metrics
module Prng = Lazyctrl_util.Prng
module Table = Lazyctrl_util.Table
module E = Lazyctrl_experiments

(* --- shared args ------------------------------------------------------------ *)

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let switches_arg =
  Arg.(
    value & opt int 68
    & info [ "switches" ] ~docv:"N" ~doc:"Number of edge switches.")

let tenants_arg =
  Arg.(value & opt int 30 & info [ "tenants" ] ~docv:"N" ~doc:"Number of tenants.")

let flows_arg =
  Arg.(
    value & opt int 50_000
    & info [ "flows" ] ~docv:"N" ~doc:"Number of flows to generate/replay.")

let hours_arg =
  Arg.(
    value & opt int 24
    & info [ "hours" ] ~docv:"H" ~doc:"Simulated duration in hours (1-24).")

let limit_arg =
  Arg.(
    value & opt int 24
    & info [ "group-size-limit" ] ~docv:"L" ~doc:"Group size limit for SGI.")

let make_spec ~switches ~tenants =
  {
    Placement.n_switches = switches;
    n_tenants = tenants;
    tenant_size_min = 20;
    tenant_size_max = 100;
    racks_per_tenant = 4;
    stray_fraction = 0.05;
  }

let build_workload ~seed ~switches ~tenants ~flows ~hours =
  let topo =
    Placement.generate ~rng:(Prng.create seed) (make_spec ~switches ~tenants)
  in
  let hours = max 1 (min 24 hours) in
  let trace =
    Gen.real_like
      ~rng:(Prng.create (seed + 1))
      ~topo ~n_flows:flows
      ~duration:(Time.of_hour hours)
      ()
  in
  (topo, trace, Time.of_hour hours)

(* --- simulate ----------------------------------------------------------------- *)

let simulate mode_str seed switches tenants flows hours limit =
  let topo, trace, horizon =
    build_workload ~seed ~switches ~tenants ~flows ~hours
  in
  let mode =
    match mode_str with "openflow" -> Network.Openflow | _ -> Network.Lazy
  in
  Printf.printf "simulating %s: %d switches, %d hosts, %d flows over %d h\n%!"
    (match mode with Network.Lazy -> "LazyCtrl" | Network.Openflow -> "standard OpenFlow")
    (Topology.n_switches topo) (Topology.n_hosts topo) (Trace.n_flows trace)
    hours;
  let net =
    Network.create
      ~controller_config:
        { Controller.default_config with Controller.group_size_limit = limit }
      ~mode ~topo ~horizon ()
  in
  (match mode with
  | Network.Lazy ->
      let first_hour =
        Analysis.switch_intensity ~until:(Time.of_hour 1) ~topo trace
      in
      Network.bootstrap net ~intensity:first_hour ()
  | Network.Openflow -> ());
  Network.replay net trace;
  Network.run net ~until:horizon;
  let recorder = Network.recorder net in
  let hm = Network.host_model net in
  Printf.printf "flows delivered: %d / %d\n" (Host_model.flows_delivered hm)
    (Host_model.flows_started hm);
  Printf.printf "controller requests: %d (%.3f/s avg)\n"
    (Recorder.total_requests recorder)
    (Float.of_int (Recorder.total_requests recorder)
    /. Time.to_float_sec horizon);
  Printf.printf "control channel: %d bytes (%.1f B/s avg)\n"
    (Network.ctrl_bytes_sent net)
    (Float.of_int (Recorder.total_ctrl_bytes recorder)
    /. Time.to_float_sec horizon);
  (match Network.lazy_controller net with
  | Some c ->
      let s = Controller.stats c in
      Printf.printf
        "  packet-ins %d | ARP escalations %d | state reports %d | grouping updates %d\n"
        s.Controller.packet_ins s.Controller.arp_escalations
        s.Controller.state_reports s.Controller.grouping_updates
  | None -> ());
  let sw = Network.switch_stats_sum net in
  (match mode with
  | Network.Lazy ->
      Printf.printf
        "data plane: L-FIB %d | G-FIB %d | duplicates %d | FP drops %d\n"
        sw.Lazyctrl_switch.Edge_switch.lfib_handled
        sw.Lazyctrl_switch.Edge_switch.gfib_handled
        sw.Lazyctrl_switch.Edge_switch.gfib_duplicates
        sw.Lazyctrl_switch.Edge_switch.fp_drops
  | Network.Openflow -> ());
  let tbl =
    Table.create
      [ "hour bucket"; "workload (req/s)"; "ctrl (bytes/s)"; "avg latency (ms)" ]
  in
  let rates = Recorder.workload_rps recorder in
  let byte_rates = Recorder.ctrl_bytes_per_sec recorder in
  let lats = Recorder.latency_ms_series recorder in
  Array.iteri
    (fun i r ->
      Table.add_row tbl
        [
          Recorder.bucket_label recorder i;
          Table.cell_float ~decimals:3 r;
          Table.cell_float ~decimals:1 byte_rates.(i);
          Table.cell_float ~decimals:3 lats.(i);
        ])
    rates;
  Table.print tbl

let simulate_cmd =
  let mode =
    Arg.(
      value
      & opt (enum [ ("lazy", "lazy"); ("openflow", "openflow") ]) "lazy"
      & info [ "mode" ] ~docv:"MODE" ~doc:"Control plane: lazy or openflow.")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run a whole-network simulation.")
    Term.(
      const simulate $ mode $ seed_arg $ switches_arg $ tenants_arg $ flows_arg
      $ hours_arg $ limit_arg)

(* --- group --------------------------------------------------------------------- *)

let group seed switches tenants flows limit =
  let topo, trace, _ = build_workload ~seed ~switches ~tenants ~flows ~hours:24 in
  let intensity = Analysis.switch_intensity ~topo trace in
  let t0 = Sys.time () in
  let grouping =
    Lazyctrl_grouping.Sgi.ini_group ~rng:(Prng.create seed) ~limit intensity
  in
  let dt = Sys.time () -. t0 in
  Printf.printf
    "grouped %d switches into %d LCGs (max size %d) in %.3f s\n"
    (Topology.n_switches topo)
    (Lazyctrl_grouping.Grouping.n_groups grouping)
    (Lazyctrl_grouping.Grouping.max_group_size grouping)
    dt;
  Printf.printf "normalized inter-group traffic intensity: %.2f%%\n"
    (100.0 *. Lazyctrl_grouping.Grouping.normalized_inter intensity grouping);
  let sizes = Lazyctrl_grouping.Grouping.sizes grouping in
  Printf.printf "group sizes: %s\n"
    (String.concat ", " (Array.to_list (Array.map string_of_int sizes)))

let group_cmd =
  Cmd.v
    (Cmd.info "group" ~doc:"Run SGI's initial grouping on a generated workload.")
    Term.(const group $ seed_arg $ switches_arg $ tenants_arg $ flows_arg $ limit_arg)

(* --- workload ------------------------------------------------------------------- *)

(* Price every flow's first-packet punt with the real codec (DESIGN.md
   §13): a reactive control plane pays Packet_in + Flow_mod + a reply
   per new flow. Compares the unbuffered punt (full packet both ways)
   against the buffered one (truncated Packet_in + Buffer_out). *)
let punt_cost_estimate topo trace =
  let module Wire = Lazyctrl_wire.Wire in
  let module Message = Lazyctrl_openflow.Message in
  let module Packet = Lazyctrl_net.Packet in
  let frame m = Wire.frame_size Wire.unit_ext m in
  let full = ref 0 and buffered = ref 0 in
  Trace.iter trace (fun f ->
      let src = Topology.host topo f.Trace.src in
      let dst = Topology.host topo f.Trace.dst in
      let pkt =
        Packet.data ~src ~dst ~length:(f.Trace.bytes / max 1 f.Trace.packets) ()
      in
      let eth = Packet.eth_of pkt in
      let actions = [ Lazyctrl_openflow.Action.Deliver f.Trace.dst ] in
      let flow_mod =
        Message.Flow_mod
          (Message.Add
             {
               Lazyctrl_openflow.Flow_table.priority = 10;
               ofmatch = Lazyctrl_openflow.Ofmatch.of_eth eth;
               actions;
               idle_timeout = Some (Time.of_sec 60);
               hard_timeout = None;
               cookie = 0;
             })
      in
      let fm = frame flow_mod in
      full :=
        !full
        + frame
            (Message.Packet_in
               {
                 packet = pkt;
                 reason = Message.No_match;
                 buffer_id = Message.no_buffer;
               })
        + fm
        + frame (Message.Packet_out { packet = pkt; actions });
      buffered :=
        !buffered
        + frame
            (Message.Packet_in
               { packet = pkt; reason = Message.No_match; buffer_id = 0 })
        + fm
        + frame (Message.Buffer_out { buffer_id = 0; actions }));
  (!full, !buffered)

let workload_run seed switches tenants flows out =
  let topo, trace, _ = build_workload ~seed ~switches ~tenants ~flows ~hours:24 in
  Printf.printf "topology: %d switches, %d hosts, %d tenants\n"
    (Topology.n_switches topo) (Topology.n_hosts topo)
    (List.length (Topology.tenants topo));
  Printf.printf "trace: %d flows, %d communicating pairs, %d bytes\n"
    (Trace.n_flows trace)
    (Trace.communicating_pairs trace)
    (Trace.total_bytes trace);
  Printf.printf "top-10%% pair skew: %.2f\n" (Analysis.skew trace ~top_fraction:0.1);
  Printf.printf "avg 5-way centrality: %.3f\n"
    (Analysis.avg_centrality ~rng:(Prng.create (seed + 2)) ~k:5 trace);
  Printf.printf "peak flow arrival rate: %.2f flows/s\n"
    (Analysis.flows_per_second_peak trace ~bucket:(Time.of_min 10));
  let full, buffered = punt_cost_estimate topo trace in
  let secs = Time.to_float_sec (Trace.duration trace) in
  Printf.printf
    "reactive punt cost (wire codec): %d bytes (%.1f B/s avg); buffered punts: \
     %d bytes (%.1f B/s, %.1f%% saved)\n"
    full
    (Float.of_int full /. secs)
    buffered
    (Float.of_int buffered /. secs)
    (100. *. (1. -. (Float.of_int buffered /. Float.of_int full)));
  match out with
  | Some path ->
      Trace.save trace path;
      Printf.printf "trace written to %s\n" path
  | None -> ()

let workload_cmd =
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Save the trace in binary form.")
  in
  Cmd.v
    (Cmd.info "workload"
       ~doc:"Generate a real-like traffic trace and print its statistics.")
    Term.(const workload_run $ seed_arg $ switches_arg $ tenants_arg $ flows_arg $ out)

(* --- trace (flight recorder) ----------------------------------------------------- *)

module Tracer = Lazyctrl_trace.Tracer
module Tev = Lazyctrl_trace.Event
module Tlazy = Lazyctrl_trace.Laziness
module Texport = Lazyctrl_trace.Export

let load_events path =
  match Texport.load path with
  | Error e ->
      Printf.eprintf "%s\n" e;
      exit 1
  | Ok data -> (
      (* A Chrome export is one big {"traceEvents": ...} object; JSONL
         lines each start with an event object's "ts" field. *)
      let decoded =
        if String.length data > 0 && String.length (String.trim data) > 0
           && (String.trim data).[0] = '{'
           && not (String.length data >= 6 && String.sub data 0 6 = "{\"ts\":")
        then
          match Texport.of_chrome data with
          | Ok _ as ok -> ok
          | Error _ -> Texport.of_jsonl data
        else Texport.of_jsonl data
      in
      match decoded with
      | Ok events -> events
      | Error e ->
          Printf.eprintf "%s: %s\n" path e;
          exit 1)

let print_tracer_report tracer =
  let s = Tracer.summary tracer in
  Format.printf "%a@." Tlazy.pp_summary s;
  Printf.printf "recorded %d events (%d buffered, %d evicted)\n"
    (Tracer.recorded tracer)
    (List.length (Tracer.events tracer))
    (Tracer.dropped tracer);
  Printf.printf "control bytes on the wire: %d\n" (Tracer.ctrl_bytes tracer);
  print_endline "event counts:";
  List.iter
    (fun (label, n) -> Printf.printf "  %-18s %d\n" label n)
    (Tracer.counts tracer)

let trace_record scenario seed flows sample buffer out chrome =
  let tracer = Tracer.create ~sample_every:sample ~capacity:buffer () in
  (match scenario with
  | "chaos" ->
      Printf.printf "recording chaos scenario (seed %d)...\n%!" seed;
      ignore (E.Chaos_exp.run ~tracer ~seed ())
  | _ ->
      Printf.printf
        "recording daylong slice: LazyCtrl (real, dynamic), %d flows (seed %d)...\n%!"
        flows seed;
      ignore (E.Daylong.run ~tracer ~seed ~n_flows:flows E.Daylong.Lazy_real_dynamic));
  let events = Tracer.events tracer in
  Texport.save out (Texport.to_jsonl events);
  Printf.printf "wrote %d events to %s\n" (List.length events) out;
  (match chrome with
  | Some path ->
      Texport.save path (Texport.to_chrome events);
      Printf.printf "wrote Chrome trace_event JSON to %s (open in Perfetto)\n" path
  | None -> ());
  print_tracer_report tracer

let trace_summarize file =
  let events = load_events file in
  let s = Tlazy.of_events events in
  Format.printf "%a@." Tlazy.pp_summary s

let trace_query file flow switch kind limit =
  let events = load_events file in
  let keep (e : Tev.t) =
    (match flow with None -> true | Some f -> e.Tev.flow = Some f)
    && (match switch with None -> true | Some s -> e.Tev.switch = Some s)
    && match kind with
       | None -> true
       | Some k -> String.equal (Tev.kind_label e.Tev.kind) k
  in
  let matched = List.filter keep events in
  let shown =
    match limit with
    | Some n when n >= 0 && List.length matched > n ->
        List.filteri (fun i _ -> i < n) matched
    | _ -> matched
  in
  List.iter (fun e -> Format.printf "%a@." Tev.pp e) shown;
  Printf.printf "%d of %d events matched%s\n" (List.length matched)
    (List.length events)
    (if List.length shown < List.length matched then
       Printf.sprintf " (showing first %d)" (List.length shown)
     else "")

let trace_file_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"Trace file (JSONL or Chrome trace_event).")

let trace_record_cmd =
  let scenario =
    Arg.(
      value
      & opt (enum [ ("daylong", "daylong"); ("chaos", "chaos") ]) "daylong"
      & info [ "scenario" ] ~docv:"SCENARIO"
          ~doc:"What to record: a daylong Fig. 7 slice or a chaos run.")
  in
  let flows =
    Arg.(
      value & opt int 20_000
      & info [ "flows" ] ~docv:"N" ~doc:"Flows in the daylong slice.")
  in
  let sample =
    Arg.(
      value & opt int 1
      & info [ "sample" ] ~docv:"N"
          ~doc:"Record only flows whose id is divisible by $(docv).")
  in
  let buffer =
    Arg.(
      value & opt int 262_144
      & info [ "buffer" ] ~docv:"N" ~doc:"Ring-buffer capacity in events.")
  in
  let out =
    Arg.(
      value
      & opt string "lazyctrl-trace.jsonl"
      & info [ "out" ] ~docv:"FILE" ~doc:"JSONL output path.")
  in
  let chrome =
    Arg.(
      value
      & opt (some string) None
      & info [ "chrome" ] ~docv:"FILE"
          ~doc:"Also write a Chrome trace_event file (for Perfetto).")
  in
  Cmd.v
    (Cmd.info "record"
       ~doc:"Run a seeded scenario with the flight recorder on.")
    Term.(
      const trace_record $ scenario $ seed_arg $ flows $ sample $ buffer $ out
      $ chrome)

let trace_summarize_cmd =
  Cmd.v
    (Cmd.info "summarize"
       ~doc:"Fold a trace file into per-flow laziness verdicts.")
    Term.(const trace_summarize $ trace_file_arg)

let trace_query_cmd =
  let flow =
    Arg.(
      value
      & opt (some int) None
      & info [ "flow" ] ~docv:"ID" ~doc:"Only events of this flow id.")
  in
  let switch =
    Arg.(
      value
      & opt (some int) None
      & info [ "switch" ] ~docv:"ID" ~doc:"Only events at this switch.")
  in
  let kind =
    Arg.(
      value
      & opt (some string) None
      & info [ "kind" ] ~docv:"KIND"
          ~doc:"Only events of this kind label (e.g. gfib_probe).")
  in
  let limit =
    Arg.(
      value
      & opt (some int) None
      & info [ "limit" ] ~docv:"N" ~doc:"Print at most $(docv) events.")
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Filter a trace file by flow, switch or kind.")
    Term.(const trace_query $ trace_file_arg $ flow $ switch $ kind $ limit)

let trace_cmd =
  Cmd.group
    (Cmd.info "trace"
       ~doc:
         "Flight recorder: record a traced simulation, or summarize / \
          query an existing trace file.")
    [ trace_record_cmd; trace_summarize_cmd; trace_query_cmd ]

(* --- experiment ------------------------------------------------------------------ *)

let experiment name quick =
  let print = Table.print in
  match name with
  | "table2" -> print (E.Grouping_exp.table2 ())
  | "fig6a" -> print (E.Grouping_exp.fig6a ())
  | "fig6b" -> print (E.Grouping_exp.fig6b ())
  | "fig7" ->
      print (E.Daylong.fig7_table ?n_flows:(if quick then Some 30_000 else None) ())
  | "fig7-bytes" ->
      print
        (E.Daylong.fig7_bytes_table
           ?n_flows:(if quick then Some 30_000 else None)
           ())
  | "fig8" ->
      print (E.Daylong.fig8_table ?n_flows:(if quick then Some 30_000 else None) ())
  | "fig9" ->
      print (E.Daylong.fig9_table ?n_flows:(if quick then Some 30_000 else None) ())
  | "table1" ->
      print (E.Failover_exp.inference_table ());
      print (E.Failover_exp.endtoend_table ())
  | "cluster-failover" -> print (E.Cluster_exp.table ())
  | "chaos" ->
      print
        (E.Chaos_exp.table
           ?losses:(if quick then Some [ 0.0; 0.05 ] else None)
           ())
  | "coldcache" -> print (E.Coldcache.table ())
  | "storage" -> print (E.Storage_exp.table ())
  | "ablate-size" -> print (E.Ablation.group_size_table ())
  | "ablate-negotiation" -> print (E.Ablation.negotiation_table ())
  | "ablate-bloom" -> print (E.Ablation.bloom_table ())
  | other -> Printf.eprintf "unknown experiment %S\n" other

let experiment_cmd =
  let exp_name =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"NAME"
          ~doc:
            "table1 | table2 | fig6a | fig6b | fig7 | fig7-bytes | fig8 | \
             fig9 | chaos | cluster-failover | coldcache | storage | \
             ablate-size | ablate-negotiation | ablate-bloom")
  in
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Smaller workloads, faster runs.")
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Re-run one of the paper's tables or figures.")
    Term.(const experiment $ exp_name $ quick)

(* --- shard-check ------------------------------------------------------------ *)

(* Determinism gate for the domain-parallel engine, cheap enough for a
   CI matrix leg: run the same seeded scenario twice at the requested
   domain count and once single-domain, and require all three
   fingerprints byte-identical.  Any divergence — a data race, an
   unordered cross-shard drain, a window misalignment — shows up as a
   mismatch and a nonzero exit. *)

let shard_check seed switches tenants domains shards =
  let spec =
    {
      Placement.n_switches = switches;
      n_tenants = tenants;
      tenant_size_min = 4;
      tenant_size_max = 8;
      racks_per_tenant = 2;
      stray_fraction = 0.1;
    }
  in
  let run_once ~domains =
    let topo = Placement.generate ~rng:(Prng.create seed) spec in
    let net =
      Shard_net.create ?domains
        ?shards:(if shards > 0 then Some shards else None)
        ~topo ~horizon:(Time.of_min 5) ()
    in
    Shard_net.bootstrap net;
    Shard_net.run net ~until:(Time.of_sec 5);
    List.iter
      (fun tenant ->
        match Topology.tenant_hosts topo tenant with
        | first :: rest ->
            List.iter
              (fun (peer : Lazyctrl_net.Host.t) ->
                Shard_net.start_flow net ~src:first.Lazyctrl_net.Host.id
                  ~dst:peer.id ~bytes:12_000 ~packets:5)
              rest
        | [] -> ())
      (Topology.tenants topo);
    Shard_net.run net ~until:(Time.of_min 3);
    let fp = Shard_net.fingerprint net in
    let st = Shard_net.stats net in
    let d = Shard_net.domains net in
    let s = Shard_net.switch_shards net in
    let w = Shard_net.window net in
    Shard_net.shutdown net;
    (fp, st, d, s, w)
  in
  let requested = if domains > 0 then Some domains else None in
  let fp_a, st, d, s, w = run_once ~domains:requested in
  let fp_b, _, _, _, _ = run_once ~domains:requested in
  let fp_1, _, _, _, _ = run_once ~domains:(Some 1) in
  Printf.printf
    "shard-check: %d switches on %d+1 logical shards, window %d us, %d \
     domain(s), seed %d\n"
    switches s
    (Time.to_ns w / 1_000)
    d seed;
  let e = st.Shard_net.engine in
  Printf.printf
    "exchange: %d windows, %d cross-shard messages (max %d/window), %d events\n"
    e.Lazyctrl_sim.Shard_engine.windows e.Lazyctrl_sim.Shard_engine.messages
    e.Lazyctrl_sim.Shard_engine.max_window_batch
    e.Lazyctrl_sim.Shard_engine.events;
  Printf.printf "flows: %d started, %d delivered; underlay %d delivered / %d dropped\n"
    st.Shard_net.flows_started st.Shard_net.flows_delivered
    st.Shard_net.underlay_delivered st.Shard_net.underlay_dropped;
  Printf.printf "fingerprint: %s (%d bytes)\n"
    (Digest.to_hex (Digest.string fp_a))
    (String.length fp_a);
  let ok_double = String.equal fp_a fp_b in
  let ok_cross = String.equal fp_a fp_1 in
  Printf.printf "double-run %d-domain:    %s\n" d
    (if ok_double then "identical" else "MISMATCH");
  Printf.printf "cross-domain (%dd vs 1d): %s\n" d
    (if ok_cross then "identical" else "MISMATCH");
  if not (ok_double && ok_cross) then begin
    prerr_endline "shard-check: FAIL — fingerprints diverge";
    exit 1
  end;
  print_endline "shard-check: PASS"

let shard_check_cmd =
  let switches =
    Arg.(
      value & opt int 12
      & info [ "switches" ] ~docv:"N" ~doc:"Number of edge switches.")
  in
  let tenants =
    Arg.(
      value & opt int 6 & info [ "tenants" ] ~docv:"N" ~doc:"Number of tenants.")
  in
  let domains =
    Arg.(
      value & opt int 0
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Worker domain count (0: the LAZYCTRL_DOMAINS environment \
             variable, or 1).")
  in
  let shards =
    Arg.(
      value & opt int 0
      & info [ "shards" ] ~docv:"N"
          ~doc:"Logical switch shards (0: auto, min 4 or the switch count).")
  in
  Cmd.v
    (Cmd.info "shard-check"
       ~doc:
         "Verify the domain-parallel engine is deterministic: double-run \
          and cross-domain fingerprint comparison, nonzero exit on any \
          divergence.")
    Term.(
      const shard_check $ seed_arg $ switches $ tenants $ domains $ shards)

(* --- chaos ----------------------------------------------------------------- *)

let chaos_cluster seed switches tenants loss faults window members =
  let module Chaos = Lazyctrl_chaos in
  let module CR = Lazyctrl_cluster.Chaos_runner in
  let base = CR.default_config in
  let cfg =
    {
      base with
      CR.seed;
      n_members = members;
      n_switches = switches;
      n_tenants = tenants;
      loss;
      dup = loss /. 5.0;
      spec =
        {
          base.CR.spec with
          Chaos.Scenario.n_faults = faults;
          window = Time.of_sec window;
        };
    }
  in
  Printf.printf
    "chaos --cluster: %d controllers, %d switches, %d tenants, %.0f%% loss, %d \
     faults over %ds (seed %d)\n%!"
    members switches tenants (100. *. loss) faults window seed;
  let r = CR.run cfg in
  print_endline "fault schedule:";
  List.iter
    (fun e -> Printf.printf "  %s\n" (Format.asprintf "%a" Chaos.Fault.pp_event e))
    r.CR.events;
  let s = r.CR.reliability in
  Printf.printf
    "reliable sessions: %d data sent, %d retransmits, %d dups ignored, %d \
     give-ups, %d violations\n"
    s.Lazyctrl_openflow.Reliable.data_sent
    s.Lazyctrl_openflow.Reliable.retransmits
    s.Lazyctrl_openflow.Reliable.dups_ignored
    s.Lazyctrl_openflow.Reliable.give_ups
    s.Lazyctrl_openflow.Reliable.violations;
  let m = r.CR.member_stats in
  Printf.printf
    "cluster: %d rehomes, %d adoptions, %d releases, %d handoffs, %d peer \
     deaths / %d revivals, %d controller-failure verdicts\n"
    m.Lazyctrl_cluster.Member.rehomes_sent m.Lazyctrl_cluster.Member.adoptions
    m.Lazyctrl_cluster.Member.releases
    m.Lazyctrl_cluster.Member.handoffs_offered
    m.Lazyctrl_cluster.Member.peer_deaths
    m.Lazyctrl_cluster.Member.peer_revivals
    m.Lazyctrl_cluster.Member.controller_failure_verdicts;
  Printf.printf
    "traffic: %d flows started, %d delivered, %d unresolved; involvement %.4f\n"
    r.CR.flows_started r.CR.flows_delivered r.CR.resolutions_failed
    r.CR.involvement;
  print_endline "invariants after settling:";
  List.iter
    (fun rep ->
      Printf.printf "  %s\n" (Format.asprintf "%a" Chaos.Invariant.pp_report rep))
    r.CR.reports;
  match r.CR.converged_after with
  | Some t ->
      Printf.printf "converged %.1f s after the last repair\n"
        (Time.to_float_sec t)
  | None ->
      print_endline "DID NOT CONVERGE before the settle deadline";
      exit 1

let chaos seed switches tenants loss raw faults window cluster members =
  if cluster then chaos_cluster seed switches tenants loss faults window members
  else begin
  let module Chaos = Lazyctrl_chaos in
  let spec =
    {
      Chaos.Scenario.default with
      Chaos.Scenario.n_faults = faults;
      window = Time.of_sec window;
    }
  in
  let cfg =
    {
      Chaos.Runner.default_config with
      Chaos.Runner.seed;
      n_switches = switches;
      n_tenants = tenants;
      loss;
      dup = loss /. 5.0;
      reliable = not raw;
      spec;
    }
  in
  Printf.printf
    "chaos: %d switches, %d tenants, %.0f%% loss, %d faults over %ds, state \
     delivery %s (seed %d)\n%!"
    switches tenants (100. *. loss) faults window
    (if raw then "fire-and-forget" else "reliable")
    seed;
  let r = Chaos.Runner.run cfg in
  print_endline "fault schedule:";
  List.iter
    (fun e -> Printf.printf "  %s\n" (Format.asprintf "%a" Chaos.Fault.pp_event e))
    r.Chaos.Runner.events;
  let l = r.Chaos.Runner.link in
  Printf.printf
    "channels: %d sent, %d delivered (%.1f%%), %d lost to chaos, %d duplicated\n"
    l.Network.links_sent l.Network.links_delivered
    (100. *. Chaos.Runner.delivery_ratio l)
    l.Network.links_lost l.Network.links_duplicated;
  let s = r.Chaos.Runner.reliability in
  Printf.printf
    "reliable sessions: %d data sent, %d retransmits, %d dups ignored, %d \
     give-ups\n"
    s.Lazyctrl_openflow.Reliable.data_sent
    s.Lazyctrl_openflow.Reliable.retransmits
    s.Lazyctrl_openflow.Reliable.dups_ignored
    s.Lazyctrl_openflow.Reliable.give_ups;
  print_endline "invariants after settling:";
  List.iter
    (fun rep ->
      Printf.printf "  %s\n" (Format.asprintf "%a" Chaos.Invariant.pp_report rep))
    r.Chaos.Runner.reports;
  match r.Chaos.Runner.converged_after with
  | Some t ->
      Printf.printf "converged %.1f s after the last repair\n"
        (Time.to_float_sec t)
  | None ->
      print_endline "DID NOT CONVERGE before the settle deadline";
      exit 1
  end

let chaos_cmd =
  let loss =
    Arg.(
      value & opt float 0.05
      & info [ "loss" ] ~docv:"P"
          ~doc:"Baseline per-message channel loss probability.")
  in
  let raw =
    Arg.(
      value & flag
      & info [ "fire-and-forget" ]
          ~doc:"Disable the reliable state-delivery layer (the old path).")
  in
  let faults =
    Arg.(
      value & opt int 6
      & info [ "faults" ] ~docv:"N" ~doc:"Number of fault events to inject.")
  in
  let window =
    Arg.(
      value & opt int 30
      & info [ "window" ] ~docv:"SECONDS" ~doc:"Fault injection window.")
  in
  let switches =
    Arg.(
      value & opt int 12
      & info [ "switches" ] ~docv:"N" ~doc:"Number of edge switches.")
  in
  let tenants =
    Arg.(
      value & opt int 6 & info [ "tenants" ] ~docv:"N" ~doc:"Number of tenants.")
  in
  let cluster =
    Arg.(
      value & flag
      & info [ "cluster" ]
          ~doc:
            "Run against a controller cluster instead of the single \
             controller: faults are drawn from the cluster vocabulary \
             (controller kills, coordination partitions, switch power \
             cycles, loss storms) and the cluster invariants — re-homing, \
             disjoint ownership, cluster-wide exactly-once — are checked.")
  in
  let members =
    Arg.(
      value & opt int 3
      & info [ "members" ] ~docv:"N"
          ~doc:"Cluster size for $(b,--cluster).")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Inject a seeded multi-fault scenario into a lossy network and \
          check the convergence invariants.")
    Term.(
      const chaos $ seed_arg $ switches $ tenants $ loss $ raw $ faults
      $ window $ cluster $ members)

let () =
  let info =
    Cmd.info "lazyctrl" ~version:"1.0.0"
      ~doc:"LazyCtrl: scalable hybrid network control (ICDCS 2015) — simulator CLI"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            simulate_cmd;
            group_cmd;
            workload_cmd;
            trace_cmd;
            experiment_cmd;
            shard_check_cmd;
            chaos_cmd;
          ]))
