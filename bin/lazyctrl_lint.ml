(* lazyctrl-lint: determinism & protocol-invariant checks for the
   simulator sources.  See README "Static analysis" for the rule list.

   Exit status: by default the tool only reports — it exits 0 whatever
   it finds, so report-generating pipelines (e.g. [make lint-json]) can
   archive the output of a failing tree. Pass [--check] to gate: exit 1
   on gating findings; exit 3 when the only problem is stale allowlist
   entries (distinct, so CI can say "prune the allowlist" rather than
   "fix the code"). Exit 2 on usage error. *)

let usage =
  "lazyctrl_lint [--root DIR] [--allow FILE] [--format text|json|sarif] \
   [--check] [--rules FAMILIES] [--list-rules] [--ownership-report] \
   [--hotpath-report [--budget FILE] [--measured FILE]]"

type format = Text | Json | Sarif

let () =
  let root = ref "." in
  let allow = ref ".lazyctrl-lint-allow" in
  let format = ref Text in
  let check = ref false in
  let list_rules = ref false in
  let ownership_report = ref false in
  let hotpath_report = ref false in
  let budget = ref "HOTPATH_budget" in
  let measured_file = ref None in
  let families = ref None in
  let set_format = function
    | "text" -> format := Text
    | "json" -> format := Json
    | "sarif" -> format := Sarif
    | other ->
        Printf.eprintf "unknown format '%s' (known: text, json, sarif)\n" other;
        exit 2
  in
  let set_families s =
    let fs =
      String.split_on_char ',' s
      |> List.map String.trim
      |> List.filter (fun f -> not (String.equal f ""))
      |> List.map String.uppercase_ascii
    in
    if List.is_empty fs then begin
      Printf.eprintf "--rules needs at least one family (e.g. --rules E,L)\n";
      exit 2
    end;
    List.iter
      (fun f ->
        if not (Lazyctrl_analysis.Rules.is_family f) then begin
          Printf.eprintf "unknown rule family '%s' (known: %s)\n" f
            (String.concat "," Lazyctrl_analysis.Rules.families);
          exit 2
        end)
      fs;
    families := Some fs
  in
  let spec =
    [
      ("--root", Arg.Set_string root, "DIR repository root to scan (default .)");
      ( "--allow",
        Arg.Set_string allow,
        "FILE allowlist path (default .lazyctrl-lint-allow, relative to \
         --root)" );
      ("--json", Arg.Unit (fun () -> format := Json), " emit the report as JSON (same as --format json)");
      ( "--format",
        Arg.String set_format,
        "FMT output format: text (default), json, or sarif (SARIF 2.1.0 \
         for code scanning)" );
      ( "--check",
        Arg.Set check,
        " gate: exit 1 on gating findings, exit 3 on stale allowlist \
         entries only (default: report only, exit 0)" );
      ( "--rules",
        Arg.String set_families,
        "FAMILIES comma-separated rule families to run (subset of \
         D,A,P,E,L,X,S,H; default all)" );
      ("--list-rules", Arg.Set list_rules, " list rule identifiers and exit");
      ( "--ownership-report",
        Arg.Set ownership_report,
        " emit the shared-state ownership report as JSON and exit (the \
         sharding PR's synchronization worklist)" );
      ( "--hotpath-report",
        Arg.Set hotpath_report,
        " emit the H00x hot-path cross-validation report and exit \
         (--format json or sarif; with --check, exit 1 on findings)" );
      ( "--budget",
        Arg.Set_string budget,
        "FILE minor-words-per-op budget file for --hotpath-report \
         (default HOTPATH_budget, relative to --root)" );
      ( "--measured",
        Arg.String (fun f -> measured_file := Some f),
        "FILE lib/perf report with measured hotpath probes (from \
         bench/main.exe --quick hotpath --json FILE); omitting it makes \
         every probe an unmeasured finding" );
    ]
  in
  Arg.parse spec
    (fun anon ->
      Printf.eprintf "unexpected argument %s\n%s\n" anon usage;
      exit 2)
    usage;
  if !list_rules then begin
    List.iter print_endline Lazyctrl_analysis.Rules.all;
    exit 0
  end;
  if !ownership_report then begin
    print_string (Lazyctrl_analysis.Driver.ownership_report_json ~root:!root ());
    exit 0
  end;
  let allow_path =
    if Filename.is_relative !allow then Filename.concat !root !allow
    else !allow
  in
  if !hotpath_report then begin
    let open Lazyctrl_analysis in
    let measured =
      match !measured_file with
      | None -> []
      | Some file -> (
          match Lazyctrl_perf.Report.load file with
          | Ok results ->
              List.map
                (fun (r : Lazyctrl_perf.Measure.result) ->
                  (r.Lazyctrl_perf.Measure.name,
                   r.Lazyctrl_perf.Measure.minor_words_per_op))
                results
          | Error msg ->
              Printf.eprintf "cannot read measured report %s: %s\n" file msg;
              exit 2)
    in
    let r =
      Driver.hotpath_check ~root:!root ~allow_path ~budget_path:!budget
        ~measured ()
    in
    (match !format with
    | Sarif -> print_string (Sarif.of_findings r.Driver.hp_findings)
    | Json | Text -> print_string (Driver.hotpath_report_json r));
    exit (if !check && not (Driver.hotpath_clean r) then 1 else 0)
  end;
  let report =
    Lazyctrl_analysis.Driver.run ?families:!families ~root:!root ~allow_path ()
  in
  let open Lazyctrl_analysis in
  (match !format with
  | Json -> print_string (Driver.report_to_json report)
  | Sarif -> print_string (Sarif.of_report report)
  | Text ->
      List.iter
        (fun f -> print_endline (Finding.to_string f))
        report.Driver.findings;
      List.iter
        (fun f -> print_endline (Finding.to_string f))
        report.Driver.stale;
      List.iter
        (fun (file, _) ->
          Printf.printf
            "%s: note: file did not parse; token-level rules applied\n" file)
        report.Driver.parse_failures;
      List.iter
        (fun (file, note) -> Printf.printf "%s: note: %s\n" file note)
        report.Driver.callgraph_notes;
      Printf.printf
        "lazyctrl-lint: %d file(s) scanned, %d finding(s), %d suppressed by \
         allowlist, %d stale allowlist entr(ies)\n"
        report.Driver.files_scanned
        (List.length report.Driver.findings)
        (List.length report.Driver.suppressed)
        (List.length report.Driver.stale));
  let code =
    if not !check then 0
    else if not (Driver.clean report) then 1
    else if not (List.is_empty report.Driver.stale) then 3
    else 0
  in
  exit code
