(* lazyctrl-lint: determinism & protocol-invariant checks for the
   simulator sources.  See README "Static analysis" for the rule list.

   Exit status: by default the tool only reports — it exits 0 whatever
   it finds, so report-generating pipelines (e.g. [make lint-json]) can
   archive the output of a failing tree. Pass [--check] to gate: exit 1
   on gating findings or stale allowlist entries. Exit 2 on usage
   error. *)

let usage =
  "lazyctrl_lint [--root DIR] [--allow FILE] [--json] [--check] \
   [--rules FAMILIES] [--list-rules]"

let () =
  let root = ref "." in
  let allow = ref ".lazyctrl-lint-allow" in
  let json = ref false in
  let check = ref false in
  let list_rules = ref false in
  let families = ref None in
  let set_families s =
    let fs =
      String.split_on_char ',' s
      |> List.map String.trim
      |> List.filter (fun f -> not (String.equal f ""))
      |> List.map String.uppercase_ascii
    in
    if List.is_empty fs then begin
      Printf.eprintf "--rules needs at least one family (e.g. --rules E,L)\n";
      exit 2
    end;
    List.iter
      (fun f ->
        if not (Lazyctrl_analysis.Rules.is_family f) then begin
          Printf.eprintf "unknown rule family '%s' (known: %s)\n" f
            (String.concat "," Lazyctrl_analysis.Rules.families);
          exit 2
        end)
      fs;
    families := Some fs
  in
  let spec =
    [
      ("--root", Arg.Set_string root, "DIR repository root to scan (default .)");
      ( "--allow",
        Arg.Set_string allow,
        "FILE allowlist path (default .lazyctrl-lint-allow, relative to \
         --root)" );
      ("--json", Arg.Set json, " emit the report as JSON");
      ( "--check",
        Arg.Set check,
        " exit 1 on gating findings or stale allowlist entries (default: \
         report only, exit 0)" );
      ( "--rules",
        Arg.String set_families,
        "FAMILIES comma-separated rule families to run (subset of \
         D,A,P,E,L,X; default all)" );
      ("--list-rules", Arg.Set list_rules, " list rule identifiers and exit");
    ]
  in
  Arg.parse spec
    (fun anon ->
      Printf.eprintf "unexpected argument %s\n%s\n" anon usage;
      exit 2)
    usage;
  if !list_rules then begin
    List.iter print_endline Lazyctrl_analysis.Rules.all;
    exit 0
  end;
  let allow_path =
    if Filename.is_relative !allow then Filename.concat !root !allow
    else !allow
  in
  let report =
    Lazyctrl_analysis.Driver.run ?families:!families ~root:!root ~allow_path ()
  in
  let open Lazyctrl_analysis in
  if !json then print_string (Driver.report_to_json report)
  else begin
    List.iter
      (fun f -> print_endline (Finding.to_string f))
      report.Driver.findings;
    List.iter
      (fun f -> print_endline (Finding.to_string f))
      report.Driver.stale;
    List.iter
      (fun (file, _) ->
        Printf.printf
          "%s: note: file did not parse; token-level rules applied\n" file)
      report.Driver.parse_failures;
    Printf.printf
      "lazyctrl-lint: %d file(s) scanned, %d finding(s), %d suppressed by \
       allowlist, %d stale allowlist entr(ies)\n"
      report.Driver.files_scanned
      (List.length report.Driver.findings)
      (List.length report.Driver.suppressed)
      (List.length report.Driver.stale)
  end;
  exit (if (not !check) || Driver.clean report then 0 else 1)
