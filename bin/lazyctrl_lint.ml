(* lazyctrl-lint: determinism & protocol-invariant checks for the
   simulator sources.  See README "Static analysis" for the rule list.

   Exit status: 0 when no gating findings, 1 otherwise, 2 on usage error. *)

let usage = "lazyctrl_lint [--root DIR] [--allow FILE] [--json] [--rules]"

let () =
  let root = ref "." in
  let allow = ref ".lazyctrl-lint-allow" in
  let json = ref false in
  let list_rules = ref false in
  let spec =
    [
      ("--root", Arg.Set_string root, "DIR repository root to scan (default .)");
      ( "--allow",
        Arg.Set_string allow,
        "FILE allowlist path (default .lazyctrl-lint-allow, relative to \
         --root)" );
      ("--json", Arg.Set json, " emit the report as JSON");
      ("--rules", Arg.Set list_rules, " list rule identifiers and exit");
    ]
  in
  Arg.parse spec
    (fun anon ->
      Printf.eprintf "unexpected argument %s\n%s\n" anon usage;
      exit 2)
    usage;
  if !list_rules then begin
    List.iter print_endline Lazyctrl_analysis.Rules.all;
    exit 0
  end;
  let allow_path =
    if Filename.is_relative !allow then Filename.concat !root !allow
    else !allow
  in
  let report = Lazyctrl_analysis.Driver.run ~root:!root ~allow_path in
  let open Lazyctrl_analysis in
  if !json then print_string (Driver.report_to_json report)
  else begin
    List.iter
      (fun f -> print_endline (Finding.to_string f))
      report.Driver.findings;
    List.iter
      (fun f -> print_endline (Finding.to_string f))
      report.Driver.stale;
    List.iter
      (fun (file, _) ->
        Printf.printf
          "%s: note: file did not parse; token-level rules applied\n" file)
      report.Driver.parse_failures;
    Printf.printf
      "lazyctrl-lint: %d file(s) scanned, %d finding(s), %d suppressed by \
       allowlist, %d stale allowlist entr(ies)\n"
      report.Driver.files_scanned
      (List.length report.Driver.findings)
      (List.length report.Driver.suppressed)
      (List.length report.Driver.stale)
  end;
  exit (if Driver.clean report then 0 else 1)
