(* Failover walk-through (§III-E): inject each failure class from Table I
   into a live network and narrate what the failure-detection wheel and
   the controller do about it.

     dune exec examples/failover_demo.exe
*)

open Lazyctrl_net
open Lazyctrl_sim
open Lazyctrl_topo
open Lazyctrl_core
open Lazyctrl_controller
module ES = Lazyctrl_switch.Edge_switch
module Prng = Lazyctrl_util.Prng

let sid = Ids.Switch_id.of_int

let quick_config =
  {
    Controller.default_config with
    Controller.group_size_limit = 6;
    sync_period = Time.of_sec 10;
    keepalive_period = Time.of_sec 2;
    echo_period = Time.of_sec 5;
    echo_timeout = Time.of_sec 12;
    daemon_period = Time.of_sec 5;
    incremental_updates = false;
  }

let build () =
  let topo =
    Placement.generate ~rng:(Prng.create 11)
      {
        Placement.n_switches = 12;
        n_tenants = 6;
        tenant_size_min = 10;
        tenant_size_max = 16;
        racks_per_tenant = 3;
        stray_fraction = 0.05;
      }
  in
  let net =
    Network.create ~controller_config:quick_config ~mode:Network.Lazy ~topo
      ~horizon:(Time.of_min 20) ()
  in
  Network.bootstrap net ();
  let controller = Option.get (Network.lazy_controller net) in
  Controller.set_failover_hook controller (fun sw v ->
      Printf.printf "    [controller] verdict for %s: %s\n"
        (Format.asprintf "%a" Ids.Switch_id.pp sw)
        (Format.asprintf "%a" Failover.pp_verdict v));
  Network.run net ~until:(Time.of_sec 30);
  (net, controller)

(* A non-designated member of a group with at least 3 switches. *)
let pick_target controller n =
  let rec find i =
    if i >= n then failwith "no suitable target"
    else
      let sw = sid i in
      match Controller.group_config_of controller sw with
      | Some cfg
        when List.length cfg.Lazyctrl_switch.Proto.members >= 3
             && not (Ids.Switch_id.equal cfg.Lazyctrl_switch.Proto.designated sw) ->
          (sw, cfg)
      | _ -> find (i + 1)
  in
  find 0

let advance net seconds =
  Network.run net
    ~until:(Time.add (Engine.now (Network.engine net)) (Time.of_sec seconds))

let () =
  print_endline "=== Scenario 1: switch failure (power loss) ===";
  let net, controller = build () in
  let target, cfg = pick_target controller 12 in
  Printf.printf "  killing %s (designated switch of its group is %s)\n"
    (Format.asprintf "%a" Ids.Switch_id.pp target)
    (Format.asprintf "%a" Ids.Switch_id.pp cfg.Lazyctrl_switch.Proto.designated);
  Network.fail_switch net target;
  advance net 120;
  (match Network.edge_switch net target with
  | Some sw when ES.is_up sw ->
      Printf.printf
        "  %s was rebooted by the controller and re-synced into its group\n"
        (Format.asprintf "%a" Ids.Switch_id.pp target)
  | _ -> print_endline "  switch did not recover (unexpected)");

  print_endline "\n=== Scenario 2: control-link failure ===";
  let net, controller = build () in
  let target, _ = pick_target controller 12 in
  Printf.printf "  cutting the control link of %s\n"
    (Format.asprintf "%a" Ids.Switch_id.pp target);
  Network.fail_control_link net target;
  advance net 60;
  (match Network.edge_switch net target with
  | Some _ ->
      print_endline
        "  control traffic now relays through the upstream ring neighbour";
      Network.repair_control_link net target;
      advance net 30;
      print_endline "  link repaired; relay cleared"
  | None -> ());

  print_endline "\n=== Scenario 3: peer-link failure (designated end) ===";
  let net, controller = build () in
  let _, cfg = pick_target controller 12 in
  let designated = cfg.Lazyctrl_switch.Proto.designated in
  (* The wheel only watches ring links, so cut one adjacent to the
     designated switch: its keep-alives to a ring neighbour go dark. *)
  let neighbour =
    match
      Lazyctrl_switch.Proto.Ring.neighbors
        ~members:cfg.Lazyctrl_switch.Proto.members designated
    with
    | Some (up, _) -> up
    | None -> failwith "group too small"
  in
  let target = designated in
  Printf.printf "  cutting the ring peer link %s -> %s\n"
    (Format.asprintf "%a" Ids.Switch_id.pp target)
    (Format.asprintf "%a" Ids.Switch_id.pp neighbour);
  Network.fail_peer_link net target neighbour;
  advance net 60;
  (match Controller.group_config_of controller target with
  | Some cfg' ->
      if not (Ids.Switch_id.equal cfg'.Lazyctrl_switch.Proto.designated designated)
      then
        Printf.printf "  controller reselected the designated switch: now %s\n"
          (Format.asprintf "%a" Ids.Switch_id.pp
             cfg'.Lazyctrl_switch.Proto.designated)
      else
        print_endline
          "  designated switch unchanged (failed link did not involve it)"
  | None -> ());

  print_endline "\n=== Scenario 4: data-path failure with detour routing ===";
  let net, controller = build () in
  ignore controller;
  let topo = Network.topology net in
  (* Find two hosts behind different switches of the same group. *)
  let hosts = Topology.hosts topo in
  let grouping = Option.get (Controller.grouping controller) in
  let pair =
    List.find_map
      (fun (a : Host.t) ->
        List.find_map
          (fun (b : Host.t) ->
            let sa = Topology.location topo a.id and sb = Topology.location topo b.id in
            if
              (not (Ids.Switch_id.equal sa sb))
              && Lazyctrl_grouping.Grouping.same_group grouping sa sb
            then Some (a, b)
            else None)
          hosts)
      hosts
  in
  (match pair with
  | Some (a, b) ->
      let sa = Topology.location topo a.id and sb = Topology.location topo b.id in
      Network.start_flow net ~src:a.id ~dst:b.id ~bytes:1000 ~packets:1;
      advance net 5;
      Printf.printf "  baseline: %s -> %s delivered (%d flows so far)\n"
        (Format.asprintf "%a" Ids.Switch_id.pp sa)
        (Format.asprintf "%a" Ids.Switch_id.pp sb)
        (Host_model.flows_delivered (Network.host_model net));
      Printf.printf "  breaking the underlay path %s -> %s and notifying\n"
        (Format.asprintf "%a" Ids.Switch_id.pp sa)
        (Format.asprintf "%a" Ids.Switch_id.pp sb);
      Network.fail_data_path net ~src:sa ~dst:sb ~notify:true;
      advance net 5;
      let before = Host_model.flows_delivered (Network.host_model net) in
      Network.start_flow net ~src:a.id ~dst:b.id ~bytes:1000 ~packets:1;
      advance net 5;
      if Host_model.flows_delivered (Network.host_model net) > before then
        print_endline "  flow delivered through the detour (two-segment tunnel)"
      else print_endline "  flow lost (unexpected)"
  | None -> print_endline "  no intra-group cross-switch pair found")
