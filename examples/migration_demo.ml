(* VM migration and live state dissemination (§III-D3): move a VM between
   edge switches and watch the L-FIB/G-FIB adverts, the C-LIB, and the
   traffic follow it — no controller involvement for in-group moves.

     dune exec examples/migration_demo.exe
*)

open Lazyctrl_net
open Lazyctrl_sim
open Lazyctrl_topo
open Lazyctrl_core
open Lazyctrl_controller
module ES = Lazyctrl_switch.Edge_switch
module Prng = Lazyctrl_util.Prng

let () =
  let topo =
    Placement.generate ~rng:(Prng.create 21)
      {
        Placement.n_switches = 8;
        n_tenants = 4;
        tenant_size_min = 8;
        tenant_size_max = 12;
        racks_per_tenant = 2;
        stray_fraction = 0.0;
      }
  in
  let net =
    Network.create
      ~controller_config:
        {
          Controller.default_config with
          Controller.group_size_limit = 4;
          sync_period = Time.of_sec 5;
        }
      ~mode:Network.Lazy ~topo ~horizon:(Time.of_min 20) ()
  in
  Network.bootstrap net ();
  Network.run net ~until:(Time.of_sec 30);
  let controller = Option.get (Network.lazy_controller net) in

  (* Pick a tenant pair on different switches. *)
  let tenant = List.hd (Topology.tenants topo) in
  let hosts = Topology.tenant_hosts topo tenant in
  let talker = List.hd hosts in
  let mover =
    List.find
      (fun (h : Host.t) ->
        not
          (Ids.Switch_id.equal
             (Topology.location topo h.id)
             (Topology.location topo talker.Host.id)))
      hosts
  in
  let show_location () =
    let actual = Topology.location topo mover.Host.id in
    let believed = Clib.locate_mac (Controller.clib controller) mover.Host.mac in
    Printf.printf "  %s is at %s; C-LIB believes %s\n"
      (Format.asprintf "%a" Ids.Host_id.pp mover.Host.id)
      (Format.asprintf "%a" Ids.Switch_id.pp actual)
      (match believed with
      | Some sw -> Format.asprintf "%a" Ids.Switch_id.pp sw
      | None -> "(unknown)")
  in
  let ping label =
    let before = Host_model.flows_delivered (Network.host_model net) in
    Network.start_flow net ~src:talker.Host.id ~dst:mover.Host.id ~bytes:500
      ~packets:1;
    Network.run net
      ~until:(Time.add (Engine.now (Network.engine net)) (Time.of_sec 5));
    Printf.printf "  %s: %s\n" label
      (if Host_model.flows_delivered (Network.host_model net) > before then
         "delivered"
       else "LOST")
  in

  print_endline "Before migration:";
  show_location ();
  ping "talker -> mover";

  (* Migrate to a different switch (prefer one in the talker's group). *)
  let grouping = Option.get (Controller.grouping controller) in
  let talker_sw = Topology.location topo talker.Host.id in
  let target =
    List.find
      (fun sw ->
        (not (Ids.Switch_id.equal sw talker_sw))
        && not (Ids.Switch_id.equal sw (Topology.location topo mover.Host.id)))
      (Lazyctrl_grouping.Grouping.members grouping
         (Lazyctrl_grouping.Grouping.group_of grouping talker_sw))
  in
  Printf.printf "\nMigrating %s to %s (same LCG as the talker)...\n"
    (Format.asprintf "%a" Ids.Host_id.pp mover.Host.id)
    (Format.asprintf "%a" Ids.Switch_id.pp target);
  Network.migrate_host net mover.Host.id ~to_:target;
  (* Give the peer-link adverts and the next state report time to land. *)
  Network.run net
    ~until:(Time.add (Engine.now (Network.engine net)) (Time.of_sec 15));

  print_endline "After migration:";
  show_location ();
  ping "talker -> mover";

  let sw = Network.switch_stats_sum net in
  Printf.printf
    "\nState dissemination traffic: %d adverts between switches; FP drops: %d\n"
    sw.ES.adverts_sent sw.ES.fp_drops
