(* The paper's Fig. 1 scenario, replayed live: five edge switches
   (SA..SE), three tenants (A, B, C) whose VMs are placed exactly as in
   the figure. The controller clusters the switches by communication
   affinity and the traffic shows which plane handles what:

     - intra-group  SA <-> SC : handled by the local control group
     - intra-group  SB <-> SD : handled by the other group
     - inter-group  SA <-> SD : handled by the central controller

     dune exec examples/multi_tenant.exe
*)

open Lazyctrl_net
open Lazyctrl_sim
open Lazyctrl_topo
open Lazyctrl_graph
open Lazyctrl_core
open Lazyctrl_controller

let sid = Ids.Switch_id.of_int
let name_of = [| "SA"; "SB"; "SC"; "SD"; "SE" |]

let () =
  (* Fig. 1 placement: tenant A on SA/SC/SD, tenant B on SB/SD/SE,
     tenant C on SA/SC/SE. *)
  let topo = Topology.create ~n_switches:5 in
  let next = ref 0 in
  let vm tenant at =
    let h =
      Host.make
        ~id:(Ids.Host_id.of_int !next)
        ~tenant:(Ids.Tenant_id.of_int tenant)
    in
    incr next;
    Topology.add_host topo h ~at;
    h
  in
  let a1 = vm 0 (sid 0) in
  let a2 = vm 0 (sid 2) in
  let _a3 = vm 0 (sid 3) in
  let b1 = vm 1 (sid 1) in
  let b2 = vm 1 (sid 3) in
  let _b3 = vm 1 (sid 4) in
  let c1 = vm 2 (sid 0) in
  let _c2 = vm 2 (sid 2) in
  let _c3 = vm 2 (sid 4) in

  (* Communication affinity as in the figure: heavy SA-SC and SB-SD
     exchange, light SA-SD. *)
  let intensity =
    Wgraph.of_edges ~n:5
      [ (0, 2, 10.0); (1, 3, 10.0); (0, 4, 6.0); (2, 4, 6.0); (0, 3, 0.5) ]
  in
  let net =
    Network.create
      ~controller_config:
        { Controller.default_config with Controller.group_size_limit = 3 }
      ~mode:Network.Lazy ~topo ~horizon:(Time.of_min 10) ()
  in
  Network.bootstrap net ~intensity ();
  Network.run net ~until:(Time.of_sec 30);

  let controller = Option.get (Network.lazy_controller net) in
  let grouping = Option.get (Controller.grouping controller) in
  print_endline "Local control groups (clustered by communication affinity):";
  for g = 0 to Lazyctrl_grouping.Grouping.n_groups grouping - 1 do
    let members =
      Lazyctrl_grouping.Grouping.members grouping (Ids.Group_id.of_int g)
      |> List.map (fun s -> name_of.(Ids.Switch_id.to_int s))
    in
    Printf.printf "  LCG #%d: {%s}\n" (g + 1) (String.concat ", " members)
  done;

  let snapshot () =
    ( (Network.switch_stats_sum net).Lazyctrl_switch.Edge_switch.gfib_handled,
      (Controller.stats controller).Controller.packet_ins )
  in
  let run_flow label (src : Host.t) (dst : Host.t) =
    let g0, p0 = snapshot () in
    Network.start_flow net ~src:src.Host.id ~dst:dst.Host.id ~bytes:3000 ~packets:2;
    Network.run net
      ~until:(Time.add (Engine.now (Network.engine net)) (Time.of_sec 5));
    let g1, p1 = snapshot () in
    Printf.printf "  %-12s %s\n" label
      (if p1 > p0 then "-> went through the CENTRAL CONTROLLER"
       else if g1 > g0 then "-> handled inside the LCG (G-FIB, data plane only)"
       else "-> handled locally (same switch)")
  in
  print_endline "Traffic:";
  run_flow "A1 -> A2" a1 a2; (* SA -> SC : intra-group *)
  run_flow "B1 -> B2" b1 b2; (* SB -> SD : intra-group *)
  run_flow "A1 -> B2" a1 b2; (* SA -> SD : inter-group, controller *)
  run_flow "A1 -> C1" a1 c1; (* same switch *)

  let cs = Controller.stats controller in
  Printf.printf
    "Controller totals: %d packet-ins, %d ARP escalations, %d flow rules installed\n"
    cs.Controller.packet_ins cs.Controller.arp_escalations
    cs.Controller.flow_mods_sent
