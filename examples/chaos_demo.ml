(* Chaos walk-through: 30 simulated seconds of a flapping control link on
   top of lossy channels, narrated through the controller's failover
   verdicts and the convergence invariants.

     dune exec examples/chaos_demo.exe
*)

open Lazyctrl_net
open Lazyctrl_sim
open Lazyctrl_topo
open Lazyctrl_core
open Lazyctrl_controller
module Chaos = Lazyctrl_chaos
module ES = Lazyctrl_switch.Edge_switch
module Prng = Lazyctrl_util.Prng
module Sid = Ids.Switch_id

let quick_config =
  {
    Controller.default_config with
    Controller.group_size_limit = 6;
    sync_period = Time.of_sec 10;
    keepalive_period = Time.of_sec 2;
    echo_period = Time.of_sec 5;
    echo_timeout = Time.of_sec 12;
    daemon_period = Time.of_sec 5;
    incremental_updates = false;
    reliable_state = true;
  }

let () =
  let topo =
    Placement.generate ~rng:(Prng.create 17)
      {
        Placement.n_switches = 12;
        n_tenants = 6;
        tenant_size_min = 10;
        tenant_size_max = 16;
        racks_per_tenant = 3;
        stray_fraction = 0.05;
      }
  in
  let params =
    {
      (Params.with_seed 17 Params.default) with
      Params.control_loss = Some (Lazyctrl_openflow.Channel.uniform_loss 0.05);
      switch_config =
        { ES.default_config with ES.reliable_state = true };
    }
  in
  let net =
    Network.create ~params ~controller_config:quick_config ~mode:Network.Lazy
      ~topo ~horizon:(Time.of_min 10) ()
  in
  Network.bootstrap net ();
  let controller = Option.get (Network.lazy_controller net) in
  let engine = Network.engine net in
  let t0 = ref Time.zero in
  let stamp () = Time.to_float_sec (Time.diff (Engine.now engine) !t0) in
  Controller.set_failover_hook controller (fun sw v ->
      Printf.printf "  %6.1fs  [controller] verdict for sw%d: %s\n" (stamp ())
        (Sid.to_int sw)
        (Format.asprintf "%a" Failover.pp_verdict v));
  Network.run net ~until:(Time.of_sec 20);
  t0 := Engine.now engine;
  let target = Sid.of_int 3 in
  Printf.printf
    "flapping the control link of sw%d for 30 s (down 4 s, up 2 s, on a 5%%\n\
     lossy control plane; reliable state delivery on)\n"
    (Sid.to_int target);
  (* Flap: down at 0,6,12,18,24; up 4 s later each time. *)
  for i = 0 to 4 do
    ignore
      (Engine.schedule engine
         ~after:(Time.of_sec (i * 6))
         (fun () ->
           Printf.printf "  %6.1fs  [chaos] control link sw%d DOWN\n" (stamp ())
             (Sid.to_int target);
           Network.fail_control_link net target));
    ignore
      (Engine.schedule engine
         ~after:(Time.of_sec ((i * 6) + 4))
         (fun () ->
           Printf.printf "  %6.1fs  [chaos] control link sw%d UP\n" (stamp ())
             (Sid.to_int target);
           Network.repair_control_link net target))
  done;
  Network.run net ~until:(Time.add !t0 (Time.of_sec 30));
  print_endline "flapping over; letting the network settle...";
  let deadline = Time.add (Engine.now engine) (Time.of_min 2) in
  let rec settle () =
    let reports = Chaos.Invariant.check_all net in
    if Chaos.Invariant.all_ok reports then begin
      Printf.printf "  %6.1fs  all invariants hold:\n" (stamp ());
      List.iter
        (fun r ->
          Printf.printf "           %s\n"
            (Format.asprintf "%a" Chaos.Invariant.pp_report r))
        reports
    end
    else if Time.(Engine.now engine >= deadline) then begin
      print_endline "  did NOT settle; failing invariants:";
      List.iter
        (fun (r : Chaos.Invariant.report) ->
          if not r.Chaos.Invariant.ok then
            Printf.printf "           %s\n"
              (Format.asprintf "%a" Chaos.Invariant.pp_report r))
        reports;
      exit 1
    end
    else begin
      Network.run net ~until:(Time.add (Engine.now engine) (Time.of_sec 2));
      settle ()
    end
  in
  settle ();
  let s = Network.reliability_stats net in
  Printf.printf
    "reliable sessions over the run: %d data sent, %d retransmits, %d dups \
     ignored\n"
    s.Lazyctrl_openflow.Reliable.data_sent
    s.Lazyctrl_openflow.Reliable.retransmits
    s.Lazyctrl_openflow.Reliable.dups_ignored
