(* Switch grouping in isolation: run SGI (size-constrained multilevel
   k-way partitioning + incremental updates) over a synthetic data-center
   intensity matrix and watch the quality metrics.

     dune exec examples/grouping_demo.exe
*)

open Lazyctrl_graph
open Lazyctrl_grouping
open Lazyctrl_topo
open Lazyctrl_traffic
module Prng = Lazyctrl_util.Prng
module Table = Lazyctrl_util.Table

let () =
  (* A 272-switch topology with rack-affine tenants, and a day of
     real-like traffic to derive the intensity matrix from. *)
  let rng = Prng.create 3 in
  let topo = Placement.generate ~rng Placement.default in
  let trace = Gen.real_like ~rng ~topo ~n_flows:150_000 () in
  let intensity = Analysis.switch_intensity ~topo trace in
  Printf.printf
    "intensity graph: %d switches, %d communicating pairs, %.1f flows/s total\n\n"
    (Wgraph.n_vertices intensity) (Wgraph.n_edges intensity)
    (Wgraph.total_edge_weight intensity);

  (* 1. IniGroup at several size limits. *)
  print_endline "IniGroup (size-constrained MLkP) at several group size limits:";
  let tbl = Table.create [ "limit"; "groups"; "max size"; "W_inter (%)" ] in
  List.iter
    (fun limit ->
      let g = Sgi.ini_group ~rng:(Prng.create 5) ~limit intensity in
      Table.add_row tbl
        [
          Table.cell_int limit;
          Table.cell_int (Grouping.n_groups g);
          Table.cell_int (Grouping.max_group_size g);
          Table.cell_float (100.0 *. Grouping.normalized_inter intensity g);
        ])
    [ 16; 32; 48; 64; 96 ];
  Table.print tbl;

  (* 2. A traffic shift and the incremental response. *)
  print_endline "\nA hotspot appears between two previously-quiet groups;";
  print_endline "IncUpdate (merge hottest pair + min-cut re-split) responds:";
  let g0 = Sgi.ini_group ~rng:(Prng.create 5) ~limit:48 intensity in
  (* Shift: add heavy traffic between the first switches of groups 0/1. *)
  let a =
    List.hd (Grouping.members g0 (Lazyctrl_net.Ids.Group_id.of_int 0))
  in
  let b =
    List.hd (Grouping.members g0 (Lazyctrl_net.Ids.Group_id.of_int 1))
  in
  let builder = Wgraph.Builder.create ~n:(Wgraph.n_vertices intensity) in
  Wgraph.iter_edges intensity (fun u v w -> Wgraph.Builder.add_edge builder u v w);
  Wgraph.Builder.add_edge builder
    (Lazyctrl_net.Ids.Switch_id.to_int a)
    (Lazyctrl_net.Ids.Switch_id.to_int b)
    (Wgraph.total_edge_weight intensity *. 0.05);
  let shifted = Wgraph.Builder.build builder in
  Printf.printf "  before: W_inter = %.2f%%\n"
    (100.0 *. Grouping.normalized_inter shifted g0);
  let rec iterate g n =
    if n = 0 then g
    else
      match Sgi.inc_update ~rng:(Prng.create 7) ~limit:48 ~intensity:shifted g with
      | Some g' ->
          Printf.printf "  after IncUpdate round %d: W_inter = %.2f%%\n"
            (4 - n)
            (100.0 *. Grouping.normalized_inter shifted g');
          iterate g' (n - 1)
      | None ->
          print_endline "  (no further improvement)";
          g
  in
  ignore (iterate g0 3);

  (* 3. The Appendix C group-size negotiation. *)
  print_endline "\nRubinstein group-size bargaining (Appendix C):";
  let controller = { Negotiation.ideal = 96; discount = 0.9 } in
  let switches =
    {
      Negotiation.ideal =
        Negotiation.capacity_preference ~tcam_entries:512 ~lfib_entry_bytes:128
          ~gfib_bytes_per_peer:2048;
      discount = 0.9;
    }
  in
  Printf.printf "  controller wants %d, switches can afford %d\n"
    controller.Negotiation.ideal switches.Negotiation.ideal;
  let outcome = Negotiation.simulate ~controller ~switches () in
  Printf.printf "  agreed limit: %d (round %d, proposer share %.3f)\n"
    outcome.Negotiation.limit outcome.Negotiation.rounds
    outcome.Negotiation.proposer_share
