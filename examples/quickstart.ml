(* Quickstart: build a small multi-tenant data center, run LazyCtrl over
   it, push some traffic, and watch the controller stay lazy.

     dune exec examples/quickstart.exe
*)

open Lazyctrl_net
open Lazyctrl_sim
open Lazyctrl_topo
open Lazyctrl_core
open Lazyctrl_controller
module Prng = Lazyctrl_util.Prng

let () =
  (* 1. A topology: 12 edge switches, 6 tenants with rack affinity. *)
  let topo =
    Placement.generate ~rng:(Prng.create 7)
      {
        Placement.n_switches = 12;
        n_tenants = 6;
        tenant_size_min = 10;
        tenant_size_max = 20;
        racks_per_tenant = 2;
        stray_fraction = 0.05;
      }
  in
  Printf.printf "topology: %d switches, %d hosts, %d tenants\n"
    (Topology.n_switches topo) (Topology.n_hosts topo)
    (List.length (Topology.tenants topo));

  (* 2. A LazyCtrl network over it (the controller groups the switches
        into LCGs of at most 4 at bootstrap). *)
  let net =
    Network.create
      ~controller_config:
        { Controller.default_config with Controller.group_size_limit = 4 }
      ~mode:Network.Lazy ~topo ~horizon:(Time.of_min 30) ()
  in
  Network.bootstrap net ();
  Network.run net ~until:(Time.of_sec 30);

  let controller = Option.get (Network.lazy_controller net) in
  let grouping = Option.get (Controller.grouping controller) in
  Printf.printf "grouping: %d local control groups (max size %d)\n"
    (Lazyctrl_grouping.Grouping.n_groups grouping)
    (Lazyctrl_grouping.Grouping.max_group_size grouping);

  (* 3. Traffic: every tenant's first host talks to its other hosts. *)
  let flows = ref 0 in
  List.iter
    (fun tenant ->
      match Topology.tenant_hosts topo tenant with
      | first :: rest ->
          List.iter
            (fun (peer : Host.t) ->
              incr flows;
              Network.start_flow net ~src:first.Host.id ~dst:peer.id
                ~bytes:20_000 ~packets:14)
            rest
      | [] -> ())
    (Topology.tenants topo);
  Network.run net ~until:(Time.of_min 5);

  (* 4. Where did the work happen? *)
  let hm = Network.host_model net in
  let sw = Network.switch_stats_sum net in
  let cs = Controller.stats controller in
  Printf.printf "flows: %d started, %d delivered\n" !flows
    (Host_model.flows_delivered hm);
  Printf.printf "data plane handled: %d local (L-FIB), %d intra-group (G-FIB)\n"
    sw.Lazyctrl_switch.Edge_switch.lfib_handled
    sw.Lazyctrl_switch.Edge_switch.gfib_handled;
  Printf.printf "controller handled: %d packet-ins, %d ARP escalations\n"
    cs.Controller.packet_ins cs.Controller.arp_escalations;
  let total_first_packets = Host_model.flows_delivered hm in
  Printf.printf
    "laziness: the controller saw %d of %d first packets (%.0f%% stayed in the data plane)\n"
    cs.Controller.packet_ins total_first_packets
    (100.
    *. (1.
       -. (Float.of_int cs.Controller.packet_ins
          /. Float.of_int (max 1 total_first_packets))))
