(* Tests for the Appendix B/C extension features: seamless-update rule
   preloading, batched/parallel IncUpdate, host exclusion, and the
   operator-forced regroup. *)

open Lazyctrl_net
open Lazyctrl_sim
open Lazyctrl_graph
open Lazyctrl_grouping
open Lazyctrl_openflow
open Lazyctrl_switch
open Lazyctrl_controller
module Prng = Lazyctrl_util.Prng

let check = Alcotest.check
let sid = Ids.Switch_id.of_int
let hid = Ids.Host_id.of_int
let host i = Host.make ~id:(hid i) ~tenant:(Ids.Tenant_id.of_int 0)
let key_of (h : Host.t) : Proto.host_key = { mac = h.mac; ip = h.ip; tenant = h.tenant }

(* --- batched IncUpdate ------------------------------------------------------- *)

let community_graph ~communities ~size ~internal ~external_w =
  let n = communities * size in
  let edges = ref [] in
  for c = 0 to communities - 1 do
    let base = c * size in
    for i = 0 to size - 1 do
      for j = i + 1 to size - 1 do
        edges := (base + i, base + j, internal) :: !edges
      done
    done;
    if c > 0 then edges := (base, base - size, external_w) :: !edges
  done;
  Wgraph.of_edges ~n !edges

(* Four communities, pairwise scrambled: two disjoint bad pairs that a
   single batch round can repair simultaneously. *)
let scrambled_four () =
  let g = community_graph ~communities:4 ~size:4 ~internal:10.0 ~external_w:0.1 in
  let bad =
    Grouping.of_assignment
      [| 0; 0; 1; 1; 1; 1; 0; 0; 2; 2; 3; 3; 3; 3; 2; 2 |]
  in
  (g, bad)

let test_batch_improves_both_pairs () =
  let g, bad = scrambled_four () in
  let before = Grouping.inter_group_intensity g bad in
  match Sgi.inc_update_batch ~rng:(Prng.create 3) ~limit:4 ~intensity:g bad with
  | None -> Alcotest.fail "expected improvement"
  | Some better ->
      let after = Grouping.inter_group_intensity g better in
      check Alcotest.bool "cut reduced" true (after < before);
      check Alcotest.bool "limit kept" true (Grouping.max_group_size better <= 4);
      (* A single sequential inc_update can only fix one pair; the batch
         must beat it. *)
      (match Sgi.inc_update ~rng:(Prng.create 3) ~limit:4 ~intensity:g bad with
      | Some single ->
          check Alcotest.bool "batch at least as good as one step" true
            (after <= Grouping.inter_group_intensity g single +. 1e-9)
      | None -> Alcotest.fail "sequential step should also improve")

let test_batch_deterministic_across_domains () =
  let g, bad = scrambled_four () in
  let run domains =
    match
      Sgi.inc_update_batch ~rng:(Prng.create 5) ~limit:4 ~domains ~intensity:g bad
    with
    | Some g' -> Grouping.assignment g'
    | None -> [||]
  in
  check Alcotest.bool "1 domain = 3 domains" true (run 1 = run 3)

let test_batch_none_at_optimum () =
  let g = community_graph ~communities:2 ~size:4 ~internal:10.0 ~external_w:0.1 in
  let good = Grouping.of_assignment [| 0; 0; 0; 0; 1; 1; 1; 1 |] in
  check Alcotest.bool "stable at optimum" true
    (Sgi.inc_update_batch ~rng:(Prng.create 7) ~limit:4 ~intensity:g good = None)

(* --- host exclusion ------------------------------------------------------------ *)

let test_high_fanout_hosts () =
  let b =
    Lazyctrl_traffic.Trace.Builder.create ~n_hosts:10 ~duration:(Time.of_sec 100)
  in
  (* Host 0 talks to everyone; hosts 1-5 each talk only to host 0 plus one
     peer. *)
  for i = 1 to 9 do
    Lazyctrl_traffic.Trace.Builder.add b ~time:(Time.of_sec i) ~src:(hid 0)
      ~dst:(hid i) ~bytes:1 ~packets:1
  done;
  Lazyctrl_traffic.Trace.Builder.add b ~time:(Time.of_sec 50) ~src:(hid 1)
    ~dst:(hid 2) ~bytes:1 ~packets:1;
  let trace = Lazyctrl_traffic.Trace.Builder.build b in
  let top = Lazyctrl_traffic.Analysis.high_fanout_hosts trace ~fraction:0.1 in
  check Alcotest.bool "host 0 is the hub" true (Ids.Host_id.Set.mem (hid 0) top);
  check Alcotest.int "only one host" 1 (Ids.Host_id.Set.cardinal top)

let test_exclusion_improves_grouping () =
  (* Two tenants on separate switch pairs, plus one hub host whose traffic
     sprays across all switches; excluding it leaves a clean 2-cut. *)
  let topo = Lazyctrl_topo.Topology.create ~n_switches:4 in
  let place i at =
    Lazyctrl_topo.Topology.add_host topo (host i) ~at:(sid at)
  in
  place 0 0; place 1 1; place 2 2; place 3 3; place 9 0;
  let b =
    Lazyctrl_traffic.Trace.Builder.create ~n_hosts:10 ~duration:(Time.of_sec 1000)
  in
  let add s d =
    Lazyctrl_traffic.Trace.Builder.add b ~time:(Time.of_sec 1) ~src:(hid s)
      ~dst:(hid d) ~bytes:1 ~packets:1
  in
  for _ = 1 to 50 do add 0 1 done;
  for _ = 1 to 50 do add 2 3 done;
  (* the hub host 9 sprays to everyone *)
  for _ = 1 to 20 do add 9 2; add 9 3; add 9 1 done;
  let trace = Lazyctrl_traffic.Trace.Builder.build b in
  let winter exclude_hosts =
    let g =
      Lazyctrl_traffic.Analysis.switch_intensity ?exclude_hosts ~topo trace
    in
    let grouping = Sgi.ini_group ~rng:(Prng.create 1) ~limit:2 g in
    Grouping.normalized_inter g grouping
  in
  let plain = winter None in
  let excluded =
    winter (Some (Ids.Host_id.Set.singleton (hid 9)))
  in
  check Alcotest.bool "exclusion removes the distortion" true (excluded < plain);
  check (Alcotest.float 1e-9) "clean cut after exclusion" 0.0 excluded

(* --- preload on regroup ---------------------------------------------------------- *)

let make_controller ~preload =
  let engine = Engine.create () in
  let sent = ref [] in
  let env =
    {
      Controller.engine;
      send_switch = (fun sw m -> sent := (sw, m) :: !sent);
      reboot_switch = (fun _ -> ());
      request_relay = (fun _ ~via:_ -> ());
      rng = Prng.create 9;
    }
  in
  let config =
    {
      Controller.default_config with
      Controller.group_size_limit = 3;
      preload_on_regroup = preload;
    }
  in
  (Controller.create env config ~n_switches:6, sent, engine)

let feed_hosts c =
  (* Switch i hosts host i, for i in 0..5. *)
  Controller.handle_message c ~from:(sid 0)
    (Message.Extension
       (Proto.State_report
          {
            group = Ids.Group_id.of_int 0;
            deltas =
              List.init 6 (fun i ->
                  { Proto.origin = sid i; added = [ key_of (host i) ]; removed = []; full = false });
            intensity = [];
          }))

let reshape c =
  (* Feed an intensity matrix that contradicts the current grouping, then
     force a full regroup. *)
  Controller.handle_message c ~from:(sid 0)
    (Message.Extension
       (Proto.State_report
          {
            group = Ids.Group_id.of_int 0;
            deltas = [];
            intensity =
              [ (sid 0, sid 3, 1000); (sid 1, sid 4, 1000); (sid 2, sid 5, 1000) ];
          }));
  Controller.force_regroup c

let count_preloads sent =
  List.length
    (List.filter
       (function
         | _, Message.Flow_mod (Message.Add e) -> e.Flow_table.cookie = 4
         | _ -> false)
       !sent)

let test_preload_rules_on_regroup () =
  let c, sent, _ = make_controller ~preload:true in
  Controller.bootstrap c
    ~intensity:
      (Wgraph.of_edges ~n:6 [ (0, 1, 10.0); (0, 2, 10.0); (3, 4, 10.0); (3, 5, 10.0) ]);
  feed_hosts c;
  sent := [];
  reshape c;
  let stats = Controller.stats c in
  check Alcotest.int "full regroup happened" 1 stats.Controller.full_regroups;
  check Alcotest.bool "preload rules installed" true (count_preloads sent > 0);
  check Alcotest.int "stats agree" (count_preloads sent) stats.Controller.preloaded_rules;
  (* Preloaded rules are temporary (hard timeout) encaps to the departing
     peer's switch. *)
  List.iter
    (function
      | _, Message.Flow_mod (Message.Add e) when e.Flow_table.cookie = 4 -> (
          check Alcotest.bool "hard timeout set" true (e.Flow_table.hard_timeout <> None);
          match e.Flow_table.actions with
          | [ Action.Encap _ ] -> ()
          | _ -> Alcotest.fail "preload must encapsulate")
      | _ -> ())
    !sent

let test_preload_disabled () =
  let c, sent, _ = make_controller ~preload:false in
  Controller.bootstrap c
    ~intensity:
      (Wgraph.of_edges ~n:6 [ (0, 1, 10.0); (0, 2, 10.0); (3, 4, 10.0); (3, 5, 10.0) ]);
  feed_hosts c;
  sent := [];
  reshape c;
  check Alcotest.int "no preloads when disabled" 0 (count_preloads sent);
  check Alcotest.int "stats agree" 0 (Controller.stats c).Controller.preloaded_rules

let test_force_regroup_counts () =
  let c, _, _ = make_controller ~preload:true in
  Controller.bootstrap c ~intensity:(Wgraph.of_edges ~n:6 [ (0, 1, 1.0) ]);
  Controller.force_regroup c;
  check Alcotest.int "counted" 1 (Controller.stats c).Controller.full_regroups

let () =
  Alcotest.run "extensions"
    [
      ( "batch inc_update",
        [
          Alcotest.test_case "improves both pairs" `Quick test_batch_improves_both_pairs;
          Alcotest.test_case "deterministic across domains" `Quick
            test_batch_deterministic_across_domains;
          Alcotest.test_case "stable at optimum" `Quick test_batch_none_at_optimum;
        ] );
      ( "host exclusion",
        [
          Alcotest.test_case "high-fanout ranking" `Quick test_high_fanout_hosts;
          Alcotest.test_case "exclusion improves grouping" `Quick
            test_exclusion_improves_grouping;
        ] );
      ( "preload",
        [
          Alcotest.test_case "rules on regroup" `Quick test_preload_rules_on_regroup;
          Alcotest.test_case "disabled" `Quick test_preload_disabled;
          Alcotest.test_case "force regroup" `Quick test_force_regroup_counts;
        ] );
    ]
