(* Tests for lazyctrl.traffic: traces, generators, analysis, replay. *)

open Lazyctrl_net
open Lazyctrl_sim
open Lazyctrl_topo
open Lazyctrl_traffic
module Prng = Lazyctrl_util.Prng

let check = Alcotest.check
let hid = Ids.Host_id.of_int
let sid = Ids.Switch_id.of_int

let mk_trace rows =
  let b = Trace.Builder.create ~n_hosts:16 ~duration:(Time.of_hour 24) in
  List.iter
    (fun (tns, s, d) ->
      Trace.Builder.add b ~time:(Time.of_ns tns) ~src:(hid s) ~dst:(hid d)
        ~bytes:1000 ~packets:1)
    rows;
  Trace.Builder.build b

(* --- Trace --------------------------------------------------------------------- *)

let test_trace_sorted () =
  let t = mk_trace [ (300, 1, 2); (100, 3, 4); (200, 5, 6) ] in
  check Alcotest.int "count" 3 (Trace.n_flows t);
  let times = List.init 3 (fun i -> Time.to_ns (Trace.flow t i).Trace.time) in
  check (Alcotest.list Alcotest.int) "sorted" [ 100; 200; 300 ] times

let test_trace_stable_ties () =
  let t = mk_trace [ (100, 1, 2); (100, 3, 4) ] in
  check Alcotest.int "first inserted first" 1
    (Ids.Host_id.to_int (Trace.flow t 0).Trace.src)

let test_trace_iter_window () =
  let t = mk_trace [ (100, 1, 2); (200, 3, 4); (300, 5, 6); (400, 7, 8) ] in
  let seen = ref [] in
  Trace.iter ~from:(Time.of_ns 200) ~until:(Time.of_ns 400) t (fun f ->
      seen := Time.to_ns f.Trace.time :: !seen);
  check (Alcotest.list Alcotest.int) "half-open window" [ 200; 300 ] (List.rev !seen)

let test_trace_builder_rejects () =
  let b = Trace.Builder.create ~n_hosts:4 ~duration:(Time.of_sec 1) in
  Alcotest.check_raises "self flow" (Invalid_argument "Trace.Builder.add: self flow")
    (fun () ->
      Trace.Builder.add b ~time:Time.zero ~src:(hid 1) ~dst:(hid 1) ~bytes:1 ~packets:1);
  Alcotest.check_raises "range"
    (Invalid_argument "Trace.Builder.add: host out of range") (fun () ->
      Trace.Builder.add b ~time:Time.zero ~src:(hid 1) ~dst:(hid 9) ~bytes:1 ~packets:1);
  Alcotest.check_raises "beyond duration"
    (Invalid_argument "Trace.Builder.add: beyond duration") (fun () ->
      Trace.Builder.add b ~time:(Time.of_sec 2) ~src:(hid 1) ~dst:(hid 2) ~bytes:1
        ~packets:1)

let test_trace_pairs () =
  let t = mk_trace [ (1, 1, 2); (2, 2, 1); (3, 1, 3) ] in
  check Alcotest.int "unordered pairs" 2 (Trace.communicating_pairs t);
  let counts = Trace.pair_flow_counts t in
  check Alcotest.int "pair 1-2 both directions" 2 (Hashtbl.find counts (1, 2))

let test_trace_merge_and_sub () =
  let a = mk_trace [ (100, 1, 2) ] and b = mk_trace [ (50, 3, 4) ] in
  let m = Trace.merge a b in
  check Alcotest.int "merged count" 2 (Trace.n_flows m);
  check Alcotest.int "merged sorted" 50 (Time.to_ns (Trace.flow m 0).Trace.time);
  let s = Trace.sub_between m ~from:(Time.of_ns 60) ~until:(Time.of_ns 200) in
  check Alcotest.int "windowed" 1 (Trace.n_flows s);
  check Alcotest.int "re-based" 40 (Time.to_ns (Trace.flow s 0).Trace.time)

(* --- Generators ------------------------------------------------------------------ *)

let small_topo ~seed =
  Placement.generate ~rng:(Prng.create seed)
    {
      Placement.n_switches = 20;
      n_tenants = 8;
      tenant_size_min = 15;
      tenant_size_max = 30;
      racks_per_tenant = 3;
      stray_fraction = 0.05;
    }

let test_real_like_shape () =
  let topo = small_topo ~seed:1 in
  let t = Gen.real_like ~rng:(Prng.create 2) ~topo ~n_flows:20_000 () in
  check Alcotest.int "flow count" 20_000 (Trace.n_flows t);
  check Alcotest.int "host space" (Topology.n_hosts topo) (Trace.n_hosts t);
  (* The paper's skew: most flows from a small share of pairs. *)
  let skew = Analysis.skew t ~top_fraction:0.1 in
  check Alcotest.bool "top 10% of pairs carry > 60% of flows" true (skew > 0.6);
  (* Flows touch a tiny subset of all possible pairs. *)
  let n = Topology.n_hosts topo in
  let all_pairs = n * (n - 1) / 2 in
  check Alcotest.bool "sparse pair set" true
    (Trace.communicating_pairs t * 4 < all_pairs)

let test_real_like_deterministic () =
  let topo = small_topo ~seed:1 in
  let t1 = Gen.real_like ~rng:(Prng.create 3) ~topo ~n_flows:1000 () in
  let t2 = Gen.real_like ~rng:(Prng.create 3) ~topo ~n_flows:1000 () in
  for i = 0 to 999 do
    let a = Trace.flow t1 i and b = Trace.flow t2 i in
    if not (Time.equal a.Trace.time b.Trace.time && Ids.Host_id.equal a.Trace.src b.Trace.src)
    then Alcotest.fail "generator not deterministic"
  done

let test_real_like_diurnal () =
  let topo = small_topo ~seed:1 in
  let t = Gen.real_like ~rng:(Prng.create 4) ~topo ~n_flows:30_000 ~churn:0.0 () in
  let count ~from ~until =
    let c = ref 0 in
    Trace.iter ~from ~until t (fun _ -> incr c);
    !c
  in
  let night = count ~from:(Time.of_hour 2) ~until:(Time.of_hour 4) in
  let day = count ~from:(Time.of_hour 10) ~until:(Time.of_hour 12) in
  check Alcotest.bool "day busier than night" true (day > 2 * night)

let test_synthetic_centrality_ordering () =
  let topo = small_topo ~seed:5 in
  let base = Gen.real_like ~rng:(Prng.create 6) ~topo ~n_flows:5_000 () in
  let syn p q seed = Gen.synthetic ~rng:(Prng.create seed) ~topo ~base ~n_flows:30_000 ~p ~q in
  let a = syn 90 10 7 and c = syn 70 30 8 in
  let cen t = Analysis.avg_centrality ~rng:(Prng.create 9) ~k:5 t in
  let ca = cen a and cc = cen c in
  check Alcotest.bool "Syn-A more central than Syn-C" true (ca > cc);
  check Alcotest.bool "Syn-A strongly central" true (ca > 0.6)

let test_synthetic_rejects () =
  let topo = small_topo ~seed:5 in
  let base = Gen.real_like ~rng:(Prng.create 6) ~topo ~n_flows:100 () in
  Alcotest.check_raises "bad p"
    (Invalid_argument "Gen.synthetic: p and q must be percentages") (fun () ->
      ignore (Gen.synthetic ~rng:(Prng.create 1) ~topo ~base ~n_flows:10 ~p:0 ~q:10))

let test_expand_adds_fresh_pairs () =
  let topo = small_topo ~seed:1 in
  let t = Gen.real_like ~rng:(Prng.create 10) ~topo ~n_flows:5_000 () in
  let e =
    Gen.expand ~rng:(Prng.create 11) ~topo ~extra_fraction:0.30 ~from_hour:8
      ~until_hour:24 t
  in
  check Alcotest.int "+30% flows" 6_500 (Trace.n_flows e);
  (* All extra flows land in [8,24). *)
  let early_orig = ref 0 and early_exp = ref 0 in
  Trace.iter ~until:(Time.of_hour 8) t (fun _ -> incr early_orig);
  Trace.iter ~until:(Time.of_hour 8) e (fun _ -> incr early_exp);
  check Alcotest.int "early flows unchanged" !early_orig !early_exp;
  check Alcotest.bool "new pairs appeared" true
    (Trace.communicating_pairs e > Trace.communicating_pairs t)

let test_trace_file_roundtrip () =
  let t = mk_trace [ (100, 1, 2); (200, 3, 4); (300, 5, 6) ] in
  let path = Filename.temp_file "lazyctrl" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.save t path;
      let t' = Trace.load path in
      check Alcotest.int "flows" (Trace.n_flows t) (Trace.n_flows t');
      check Alcotest.int "hosts" (Trace.n_hosts t) (Trace.n_hosts t');
      for i = 0 to Trace.n_flows t - 1 do
        if Trace.flow t i <> Trace.flow t' i then Alcotest.fail "flow mismatch"
      done)

let test_trace_file_malformed () =
  let path = Filename.temp_file "lazyctrl" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc "not a trace";
      close_out oc;
      (try
         ignore (Trace.load path);
         Alcotest.fail "malformed file accepted"
       with Invalid_argument _ -> ());
      (* Truncation after a valid header must also be rejected. *)
      let t = mk_trace [ (100, 1, 2) ] in
      Trace.save t path;
      let full = In_channel.with_open_bin path In_channel.input_all in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc (String.sub full 0 (String.length full - 4)));
      try
        ignore (Trace.load path);
        Alcotest.fail "truncated file accepted"
      with Invalid_argument _ -> ())

(* --- Analysis -------------------------------------------------------------------- *)

let test_switch_intensity () =
  let topo = Topology.create ~n_switches:3 in
  let h i tenant at =
    let host = Host.make ~id:(hid i) ~tenant:(Ids.Tenant_id.of_int tenant) in
    Topology.add_host topo host ~at
  in
  h 0 0 (sid 0);
  h 1 0 (sid 1);
  h 2 0 (sid 0);
  let b = Trace.Builder.create ~n_hosts:3 ~duration:(Time.of_sec 10) in
  (* 5 flows 0->1 (cross switch), 3 flows 0->2 (same switch: no edge). *)
  for i = 1 to 5 do
    Trace.Builder.add b ~time:(Time.of_sec i) ~src:(hid 0) ~dst:(hid 1) ~bytes:1 ~packets:1
  done;
  for i = 1 to 3 do
    Trace.Builder.add b ~time:(Time.of_sec i) ~src:(hid 0) ~dst:(hid 2) ~bytes:1 ~packets:1
  done;
  let t = Trace.Builder.build b in
  let g = Analysis.switch_intensity ~topo t in
  check Alcotest.int "vertices" 3 (Lazyctrl_graph.Wgraph.n_vertices g);
  check (Alcotest.float 1e-9) "flows/sec sw0-sw1" 0.5
    (Lazyctrl_graph.Wgraph.edge_weight g 0 1);
  check (Alcotest.float 1e-9) "no intra-switch edge" 0.0
    (Lazyctrl_graph.Wgraph.edge_weight g 0 2)

let test_skew_crafted () =
  (* 9 flows on one pair, 1 on another: top-50% of 2 pairs carries 90%. *)
  let rows = List.init 9 (fun i -> (i + 1, 1, 2)) @ [ (20, 3, 4) ] in
  let t = mk_trace rows in
  check (Alcotest.float 1e-9) "skew" 0.9 (Analysis.skew t ~top_fraction:0.5)

let test_centrality_crafted () =
  (* Groups {0..7} and {8..15}; 8 intra flows in group 0, 2 cross flows. *)
  let rows =
    List.init 8 (fun i -> (i + 1, i mod 4, 4 + (i mod 4)))
    @ [ (100, 0, 8); (101, 1, 9) ]
  in
  let t = mk_trace rows in
  let assignment h = if h < 8 then 0 else 1 in
  let c = Analysis.centrality_per_group t ~assignment ~k:2 in
  (* 8 intra flows; each of the 2 cross flows counts half against each
     group: 8 / (8 + 1). *)
  check (Alcotest.float 1e-9) "group 0 centrality" (8.0 /. 9.0) c.(0);
  check (Alcotest.float 1e-9) "group 1 has only cross traffic" 0.0 c.(1)

let test_flows_per_second_peak () =
  let t = mk_trace [ (0, 1, 2); (100, 3, 4); (200, 5, 6) ] in
  (* All three flows are inside the first 1-second bucket. *)
  check (Alcotest.float 1e-9) "peak" 3.0
    (Analysis.flows_per_second_peak t ~bucket:(Time.of_sec 1))

(* --- Replay --------------------------------------------------------------------- *)

let test_replay_order_and_chunking () =
  let rows = List.init 100 (fun i -> ((i * 1000) + 1, (i mod 5) + 1, ((i + 1) mod 5) + 7)) in
  let t = mk_trace rows in
  let e = Engine.create () in
  let seen = ref [] in
  let r =
    Replay.start e ~chunk:16
      ~on_flow:(fun f -> seen := Time.to_ns f.Trace.time :: !seen)
      t
  in
  Engine.run e;
  check Alcotest.int "all injected" 100 (Replay.injected r);
  check Alcotest.bool "finished" true (Replay.finished r);
  let times = List.rev !seen in
  check Alcotest.bool "in order" true
    (List.sort compare times = times && List.length times = 100)

let test_replay_timing () =
  let t = mk_trace [ (5000, 1, 2) ] in
  let e = Engine.create () in
  let at = ref 0 in
  ignore (Replay.start e ~on_flow:(fun _ -> at := Time.to_ns (Engine.now e)) t);
  Engine.run e;
  check Alcotest.int "fired at trace time" 5000 !at

let () =
  Alcotest.run "traffic"
    [
      ( "trace",
        [
          Alcotest.test_case "sorted" `Quick test_trace_sorted;
          Alcotest.test_case "stable ties" `Quick test_trace_stable_ties;
          Alcotest.test_case "iter window" `Quick test_trace_iter_window;
          Alcotest.test_case "builder rejects" `Quick test_trace_builder_rejects;
          Alcotest.test_case "pair counts" `Quick test_trace_pairs;
          Alcotest.test_case "merge/sub" `Quick test_trace_merge_and_sub;
          Alcotest.test_case "file roundtrip" `Quick test_trace_file_roundtrip;
          Alcotest.test_case "malformed file" `Quick test_trace_file_malformed;
        ] );
      ( "generators",
        [
          Alcotest.test_case "real-like shape" `Quick test_real_like_shape;
          Alcotest.test_case "deterministic" `Quick test_real_like_deterministic;
          Alcotest.test_case "diurnal" `Quick test_real_like_diurnal;
          Alcotest.test_case "centrality ordering" `Slow test_synthetic_centrality_ordering;
          Alcotest.test_case "synthetic rejects" `Quick test_synthetic_rejects;
          Alcotest.test_case "expand" `Quick test_expand_adds_fresh_pairs;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "switch intensity" `Quick test_switch_intensity;
          Alcotest.test_case "skew" `Quick test_skew_crafted;
          Alcotest.test_case "centrality" `Quick test_centrality_crafted;
          Alcotest.test_case "peak rate" `Quick test_flows_per_second_peak;
        ] );
      ( "replay",
        [
          Alcotest.test_case "order and chunking" `Quick test_replay_order_and_chunking;
          Alcotest.test_case "timing" `Quick test_replay_timing;
        ] );
    ]
