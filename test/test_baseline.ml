(* Tests for lazyctrl.baseline: the plain OpenFlow switch and the
   Floodlight-style reactive learning controller. *)

open Lazyctrl_net
open Lazyctrl_sim
open Lazyctrl_openflow
open Lazyctrl_baseline

let check = Alcotest.check
let sid = Ids.Switch_id.of_int
let hid = Ids.Host_id.of_int
let host ?(tenant = 0) i = Host.make ~id:(hid i) ~tenant:(Ids.Tenant_id.of_int tenant)
let data_pkt ~src ~dst = Packet.data ~src ~dst ~length:50 ()

type recorded = {
  engine : Engine.t;
  to_controller : Of_switch.msg list ref;
  to_underlay : Packet.t list ref;
  to_hosts : (Host.t * Packet.t) list ref;
}

let make_switch ?(self = 0) () =
  let engine = Engine.create () in
  let to_controller = ref [] and to_underlay = ref [] and to_hosts = ref [] in
  let env =
    {
      Of_switch.engine;
      send_controller = (fun m -> to_controller := m :: !to_controller);
      send_underlay = (fun p -> to_underlay := p :: !to_underlay);
      deliver_local = (fun h p -> to_hosts := (h, p) :: !to_hosts);
      underlay_ip = Ipv4.of_switch_id self;
    }
  in
  (Of_switch.create env ~flow_table_capacity:128, { engine; to_controller; to_underlay; to_hosts })

let test_switch_punts_everything () =
  let sw, r = make_switch () in
  let h1 = host 1 and h2 = host 2 in
  Of_switch.attach_host sw h1;
  Of_switch.attach_host sw h2;
  (* Even a local destination misses without a rule: dumb data plane. *)
  Of_switch.handle_from_host sw h1 (data_pkt ~src:h1 ~dst:h2);
  check Alcotest.int "punted" 1 (List.length !(r.to_controller));
  check Alcotest.int "nothing delivered" 0 (List.length !(r.to_hosts));
  check Alcotest.int "stat" 1 (Of_switch.stats sw).Of_switch.punted

let test_switch_applies_rules () =
  let sw, r = make_switch () in
  let h1 = host 1 and h2 = host 2 in
  Of_switch.attach_host sw h1;
  Of_switch.handle_controller_message sw
    (Message.Flow_mod
       (Message.Add
          {
            Flow_table.priority = 10;
            ofmatch = Ofmatch.exact_pair ~src:h1.Host.mac ~dst:h2.Host.mac;
            actions = [ Action.Encap (Ipv4.of_switch_id 3) ];
            idle_timeout = None;
            hard_timeout = None;
            cookie = 0;
          }));
  Of_switch.handle_from_host sw h1 (data_pkt ~src:h1 ~dst:h2);
  check Alcotest.int "no punt" 0 (List.length !(r.to_controller));
  (match !(r.to_underlay) with
  | [ Packet.Encap { outer_dst; _ } ] ->
      check Alcotest.string "tunnelled" "172.16.0.3" (Ipv4.to_string outer_dst)
  | _ -> Alcotest.fail "expected encap");
  check Alcotest.int "fast path stat" 1 (Of_switch.stats sw).Of_switch.flow_table_handled

let test_switch_decap_by_port_map () =
  let sw, r = make_switch () in
  let h1 = host 1 in
  Of_switch.attach_host sw h1;
  let eth = Packet.eth_of (data_pkt ~src:(host 5) ~dst:h1) in
  Of_switch.handle_underlay sw
    (Packet.encap ~outer_src:(Ipv4.of_switch_id 2) ~outer_dst:(Ipv4.of_switch_id 0) eth);
  check Alcotest.int "delivered" 1 (List.length !(r.to_hosts));
  (* Unknown inner destination is silently dropped. *)
  let eth2 = Packet.eth_of (data_pkt ~src:(host 5) ~dst:(host 9)) in
  Of_switch.handle_underlay sw
    (Packet.encap ~outer_src:(Ipv4.of_switch_id 2) ~outer_dst:(Ipv4.of_switch_id 0) eth2);
  check Alcotest.int "unknown dropped" 1 (List.length !(r.to_hosts))

let test_switch_flood_local_tenant_scope () =
  let sw, r = make_switch () in
  let h1 = host ~tenant:1 1 and h2 = host ~tenant:1 2 and h3 = host ~tenant:2 3 in
  List.iter (Of_switch.attach_host sw) [ h1; h2; h3 ];
  Of_switch.handle_controller_message sw
    (Message.Packet_out { packet = data_pkt ~src:h1 ~dst:(host 9); actions = [ Action.Flood_local ] });
  (* Same tenant only, sender excluded. *)
  (match !(r.to_hosts) with
  | [ (to_, _) ] -> check Alcotest.bool "only the tenant peer" true (Host.equal to_ h2)
  | _ -> Alcotest.fail "expected exactly one flooded copy");
  ignore h3

let test_switch_echo () =
  let sw, r = make_switch () in
  Of_switch.handle_controller_message sw (Message.Echo_request 5);
  match !(r.to_controller) with
  | [ Message.Echo_reply 5 ] -> ()
  | _ -> Alcotest.fail "expected echo reply"

(* --- Of_controller ----------------------------------------------------------- *)

let make_controller ?(n_switches = 4) () =
  let engine = Engine.create () in
  let sent = ref [] in
  let env =
    {
      Of_controller.engine;
      send_switch = (fun sw m -> sent := (sw, m) :: !sent);
      n_switches;
    }
  in
  (Of_controller.create env Of_controller.default_config, sent)

let packet_in pkt =
  Message.Packet_in
    { packet = pkt; reason = Message.No_match; buffer_id = Message.no_buffer }

let test_controller_floods_unknown () =
  let c, sent = make_controller () in
  let h1 = host 1 and h2 = host 2 in
  Of_controller.handle_message c ~from:(sid 0) (packet_in (data_pkt ~src:h1 ~dst:h2));
  (* Unknown destination: flooded to all 4 switches (3 remote + ingress). *)
  let outs = List.filter (function _, Message.Packet_out _ -> true | _ -> false) !sent in
  check Alcotest.int "flooded everywhere" 4 (List.length outs);
  check Alcotest.int "flood counted" 1 (Of_controller.stats c).Of_controller.floods;
  (* Source location was learned. *)
  match Of_controller.locate c h1.Host.mac with
  | Some sw -> check Alcotest.int "learned" 0 (Ids.Switch_id.to_int sw)
  | None -> Alcotest.fail "source not learned"

let test_controller_learns_then_installs () =
  let c, sent = make_controller () in
  let h1 = host 1 and h2 = host 2 in
  (* h2 talks first (learned at sw3), then h1->h2 can be installed. *)
  Of_controller.handle_message c ~from:(sid 3) (packet_in (data_pkt ~src:h2 ~dst:h1));
  sent := [];
  Of_controller.handle_message c ~from:(sid 0) (packet_in (data_pkt ~src:h1 ~dst:h2));
  let mods =
    List.filter_map
      (function
        | sw, Message.Flow_mod (Message.Add e) -> Some (sw, e.Flow_table.actions)
        | _ -> None)
      !sent
  in
  (match mods with
  | [ (sw, [ Action.Encap ip ]) ] ->
      check Alcotest.int "rule on ingress" 0 (Ids.Switch_id.to_int sw);
      check Alcotest.string "to learned location" "172.16.0.3" (Ipv4.to_string ip)
  | _ -> Alcotest.fail "expected one flow-mod");
  let outs =
    List.filter (function _, Message.Packet_out _ -> true | _ -> false) !sent
  in
  check Alcotest.int "packet released, no flood" 1 (List.length outs)

let test_controller_same_switch_pair () =
  let c, sent = make_controller () in
  let h1 = host 1 and h2 = host 2 in
  Of_controller.handle_message c ~from:(sid 1) (packet_in (data_pkt ~src:h2 ~dst:h1));
  sent := [];
  (* h1 is behind sw1 too. *)
  Of_controller.handle_message c ~from:(sid 1) (packet_in (data_pkt ~src:h1 ~dst:h2));
  match !sent with
  | [ (sw, Message.Packet_out { actions = [ Action.Flood_local ]; _ }) ] ->
      check Alcotest.int "handed back" 1 (Ids.Switch_id.to_int sw)
  | _ -> Alcotest.fail "expected local hand-back"

let test_controller_broadcast_floods () =
  let c, sent = make_controller () in
  let h1 = host 1 in
  let arp = Packet.arp_request ~sender:h1 ~target_ip:(host 2).Host.ip () in
  Of_controller.handle_message c ~from:(sid 0) (packet_in arp);
  let outs = List.filter (function _, Message.Packet_out _ -> true | _ -> false) !sent in
  check Alcotest.int "broadcast flooded" 4 (List.length outs)

let test_controller_request_hook () =
  let c, _ = make_controller () in
  let count = ref 0 in
  Of_controller.set_request_hook c (fun () -> incr count);
  Of_controller.handle_message c ~from:(sid 0)
    (packet_in (data_pkt ~src:(host 1) ~dst:(host 2)));
  Of_controller.handle_message c ~from:(sid 0) (Message.Echo_reply 1);
  check Alcotest.int "only packet-ins counted" 1 !count;
  check Alcotest.int "stats agree" 1 (Of_controller.stats c).Of_controller.requests

let () =
  Alcotest.run "baseline"
    [
      ( "of_switch",
        [
          Alcotest.test_case "punts everything" `Quick test_switch_punts_everything;
          Alcotest.test_case "applies rules" `Quick test_switch_applies_rules;
          Alcotest.test_case "decap via port map" `Quick test_switch_decap_by_port_map;
          Alcotest.test_case "tenant-scoped flood" `Quick test_switch_flood_local_tenant_scope;
          Alcotest.test_case "echo" `Quick test_switch_echo;
        ] );
      ( "of_controller",
        [
          Alcotest.test_case "floods unknown" `Quick test_controller_floods_unknown;
          Alcotest.test_case "learns then installs" `Quick test_controller_learns_then_installs;
          Alcotest.test_case "same-switch pair" `Quick test_controller_same_switch_pair;
          Alcotest.test_case "broadcast floods" `Quick test_controller_broadcast_floods;
          Alcotest.test_case "request hook" `Quick test_controller_request_hook;
        ] );
    ]
