(* Tests for lazyctrl.grouping: groupings, SGI, and the Rubinstein
   group-size negotiation. *)

open Lazyctrl_net
open Lazyctrl_graph
open Lazyctrl_grouping
module Prng = Lazyctrl_util.Prng

let check = Alcotest.check
let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let sid = Ids.Switch_id.of_int
let gid = Ids.Group_id.of_int

(* --- Grouping ------------------------------------------------------------------ *)

let test_of_assignment_dense () =
  let g = Grouping.of_assignment [| 5; 5; 9; 5; 2 |] in
  check Alcotest.int "n_switches" 5 (Grouping.n_switches g);
  check Alcotest.int "dense groups" 3 (Grouping.n_groups g);
  (* First-appearance order: 5 -> 0, 9 -> 1, 2 -> 2. *)
  check Alcotest.int "relabel" 0 (Ids.Group_id.to_int (Grouping.group_of g (sid 0)));
  check Alcotest.int "relabel 9" 1 (Ids.Group_id.to_int (Grouping.group_of g (sid 2)));
  check (Alcotest.list Alcotest.int) "members ascending"
    [ 0; 1; 3 ]
    (List.map Ids.Switch_id.to_int (Grouping.members g (gid 0)));
  check Alcotest.int "max size" 3 (Grouping.max_group_size g);
  check Alcotest.bool "same group" true (Grouping.same_group g (sid 0) (sid 3));
  check Alcotest.bool "different group" false (Grouping.same_group g (sid 0) (sid 4))

let test_singleton_and_one () =
  let s = Grouping.singleton_groups ~n_switches:4 in
  check Alcotest.int "singletons" 4 (Grouping.n_groups s);
  let o = Grouping.one_group ~n_switches:4 in
  check Alcotest.int "one" 1 (Grouping.n_groups o);
  check Alcotest.int "size" 4 (Grouping.max_group_size o)

let test_inter_group_intensity () =
  let g = Wgraph.of_edges ~n:4 [ (0, 1, 5.0); (2, 3, 7.0); (1, 2, 2.0) ] in
  let grouping = Grouping.of_assignment [| 0; 0; 1; 1 |] in
  check (Alcotest.float 1e-9) "Winter" 2.0 (Grouping.inter_group_intensity g grouping);
  check (Alcotest.float 1e-9) "normalized" (2.0 /. 14.0)
    (Grouping.normalized_inter g grouping);
  match Grouping.group_pair_intensity g grouping with
  | [ (0, 1, w) ] -> check (Alcotest.float 1e-9) "pair weight" 2.0 w
  | _ -> Alcotest.fail "expected exactly one exchanging pair"

let test_grouping_size_mismatch () =
  let g = Wgraph.of_edges ~n:3 [] in
  let grouping = Grouping.of_assignment [| 0; 1 |] in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Grouping: intensity graph size mismatch") (fun () ->
      ignore (Grouping.normalized_inter g grouping))

(* --- SGI ------------------------------------------------------------------------ *)

let community_graph ~communities ~size ~internal ~external_w =
  let n = communities * size in
  let edges = ref [] in
  for c = 0 to communities - 1 do
    let base = c * size in
    for i = 0 to size - 1 do
      for j = i + 1 to size - 1 do
        edges := (base + i, base + j, internal) :: !edges
      done
    done;
    if c > 0 then edges := (base, base - size, external_w) :: !edges
  done;
  Wgraph.of_edges ~n !edges

let test_estimate_k () =
  check Alcotest.int "ceil" 3 (Sgi.estimate_k ~n_switches:11 ~limit:4);
  check Alcotest.int "exact" 2 (Sgi.estimate_k ~n_switches:8 ~limit:4);
  check Alcotest.int "at least one" 1 (Sgi.estimate_k ~n_switches:0 ~limit:4)

let test_ini_group_respects_limit =
  qtest "IniGroup respects the size limit"
    QCheck2.Gen.(pair small_int (int_range 2 8))
    (fun (seed, limit) ->
      let g = community_graph ~communities:4 ~size:4 ~internal:5.0 ~external_w:0.5 in
      let limit = max limit 4 in
      let grouping = Sgi.ini_group ~rng:(Prng.create seed) ~limit g in
      Grouping.max_group_size grouping <= limit)

let test_ini_group_finds_communities () =
  let g = community_graph ~communities:4 ~size:6 ~internal:10.0 ~external_w:0.1 in
  let grouping = Sgi.ini_group ~rng:(Prng.create 1) ~limit:6 g in
  (* Perfect grouping cuts only the 3 weak bridges. *)
  check (Alcotest.float 1e-6) "only bridges cut" 0.3
    (Grouping.inter_group_intensity g grouping)

let test_ini_group_invalid () =
  let g = Wgraph.of_edges ~n:4 [] in
  Alcotest.check_raises "limit" (Invalid_argument "Sgi.ini_group: limit < 1")
    (fun () -> ignore (Sgi.ini_group ~rng:(Prng.create 1) ~limit:0 g));
  Alcotest.check_raises "k too small"
    (Invalid_argument "Sgi.ini_group: k too small for the size limit") (fun () ->
      ignore (Sgi.ini_group ~rng:(Prng.create 1) ~limit:2 ~k:1 g))

let test_find_candidate_pair () =
  let g = Wgraph.of_edges ~n:4 [ (0, 2, 9.0); (1, 3, 1.0) ] in
  let grouping = Grouping.of_assignment [| 0; 0; 1; 1 |] in
  (match Sgi.find_candidate_pair g grouping with
  | Some (0, 1) -> ()
  | _ -> Alcotest.fail "expected groups 0 and 1");
  (* With a previous graph, the largest increase wins. *)
  let prev = Wgraph.of_edges ~n:4 [ (0, 2, 9.0) ] in
  match Sgi.find_candidate_pair ~previous:prev g grouping with
  | Some (0, 1) -> ()
  | _ -> Alcotest.fail "expected increase-based pick"

let test_find_candidate_none () =
  let g = Wgraph.of_edges ~n:4 [ (0, 1, 5.0) ] in
  let grouping = Grouping.of_assignment [| 0; 0; 1; 1 |] in
  check Alcotest.bool "no exchange" true (Sgi.find_candidate_pair g grouping = None)

let test_inc_update_improves () =
  (* Start from a deliberately bad grouping: communities split across
     groups. IncUpdate must strictly reduce the cut and keep the limit. *)
  let g = community_graph ~communities:2 ~size:4 ~internal:10.0 ~external_w:0.1 in
  let bad = Grouping.of_assignment [| 0; 0; 1; 1; 1; 1; 0; 0 |] in
  let before = Grouping.inter_group_intensity g bad in
  match Sgi.inc_update ~rng:(Prng.create 2) ~limit:4 ~intensity:g bad with
  | None -> Alcotest.fail "expected an improvement"
  | Some better ->
      check Alcotest.bool "cut reduced" true
        (Grouping.inter_group_intensity g better < before);
      check Alcotest.bool "limit kept" true (Grouping.max_group_size better <= 4)

let test_inc_update_merges_when_fits () =
  (* Two groups whose union fits inside the limit collapse into one. *)
  let g = Wgraph.of_edges ~n:4 [ (0, 2, 5.0); (1, 3, 5.0) ] in
  let grouping = Grouping.of_assignment [| 0; 0; 1; 1 |] in
  match Sgi.inc_update ~rng:(Prng.create 3) ~limit:4 ~intensity:g grouping with
  | None -> Alcotest.fail "merge expected"
  | Some merged ->
      check Alcotest.int "one group" 1 (Grouping.n_groups merged);
      check (Alcotest.float 1e-9) "no cut left" 0.0
        (Grouping.inter_group_intensity g merged)

let test_inc_update_none_when_optimal () =
  let g = community_graph ~communities:2 ~size:4 ~internal:10.0 ~external_w:0.1 in
  let good = Grouping.of_assignment [| 0; 0; 0; 0; 1; 1; 1; 1 |] in
  check Alcotest.bool "already optimal" true
    (Sgi.inc_update ~rng:(Prng.create 4) ~limit:4 ~intensity:g good = None)

let test_converge () =
  let g = community_graph ~communities:3 ~size:4 ~internal:10.0 ~external_w:0.1 in
  let bad = Grouping.of_assignment [| 0; 1; 2; 0; 1; 2; 0; 1; 2; 0; 1; 2 |] in
  let load grouping = Grouping.inter_group_intensity g grouping in
  let final, updates =
    Sgi.converge ~rng:(Prng.create 5) ~limit:4 ~intensity:g ~load
      ~threshold_high:1.0 ~threshold_low:0.5 ~max_iterations:20 bad
  in
  check Alcotest.bool "updates applied" true (updates > 0);
  check Alcotest.bool "load reduced" true (load final < load bad)

(* --- Negotiation ----------------------------------------------------------------- *)

let test_negotiation_closed_form () =
  let controller = { Negotiation.ideal = 100; discount = 0.9 } in
  let switches = { Negotiation.ideal = 20; discount = 0.9 } in
  let limit = Negotiation.equilibrium_limit ~controller ~switches in
  (* Equal discounts: proposer share (1-d)/(1-d^2) = 1/(1+d) ~ 0.526. *)
  check Alcotest.int "equilibrium" 62 limit

let test_negotiation_patience_advantage () =
  let base = { Negotiation.ideal = 100; discount = 0.9 } in
  let impatient_switches = { Negotiation.ideal = 20; discount = 0.5 } in
  let patient_switches = { Negotiation.ideal = 20; discount = 0.99 } in
  let vs s = Negotiation.equilibrium_limit ~controller:base ~switches:s in
  check Alcotest.bool "impatient responder concedes more" true
    (vs impatient_switches > vs patient_switches)

let test_negotiation_simulation_agrees =
  qtest "simulation converges to closed form"
    QCheck2.Gen.(
      quad (int_range 30 200) (int_range 2 29) (float_range 0.5 0.95)
        (float_range 0.5 0.95))
    (fun (ci, si, dc, ds) ->
      let controller = { Negotiation.ideal = ci; discount = dc } in
      let switches = { Negotiation.ideal = si; discount = ds } in
      let closed = Negotiation.equilibrium_limit ~controller ~switches in
      let sim = Negotiation.simulate ~max_rounds:200 ~controller ~switches () in
      sim.Negotiation.rounds = 1 && abs (sim.Negotiation.limit - closed) <= 1)

let test_negotiation_validation () =
  Alcotest.check_raises "bad discount"
    (Invalid_argument "Negotiation: controller: discount outside (0,1)")
    (fun () ->
      ignore
        (Negotiation.equilibrium_limit
           ~controller:{ Negotiation.ideal = 10; discount = 1.5 }
           ~switches:{ Negotiation.ideal = 5; discount = 0.5 }))

let test_capacity_preference () =
  (* The paper's example: 2048-byte filters; a 64 KB SRAM budget leaves
     room for ~31 peers. *)
  let pref =
    Negotiation.capacity_preference ~tcam_entries:512 ~lfib_entry_bytes:128
      ~gfib_bytes_per_peer:2048
  in
  check Alcotest.int "derived ideal" 32 pref

(* --- Ring (wheel ordering) -------------------------------------------------------- *)

let test_ring_neighbors () =
  let members = [ sid 5; sid 1; sid 9 ] in
  (match Lazyctrl_switch.Proto.Ring.neighbors ~members (sid 5) with
  | Some (up, down) ->
      check Alcotest.int "up" 1 (Ids.Switch_id.to_int up);
      check Alcotest.int "down" 9 (Ids.Switch_id.to_int down)
  | None -> Alcotest.fail "expected neighbours");
  (match Lazyctrl_switch.Proto.Ring.neighbors ~members (sid 1) with
  | Some (up, down) ->
      (* Sorted ring is 1-5-9; 1's upstream wraps to 9. *)
      check Alcotest.int "wrap up" 9 (Ids.Switch_id.to_int up);
      check Alcotest.int "wrap down" 5 (Ids.Switch_id.to_int down)
  | None -> Alcotest.fail "expected neighbours");
  check Alcotest.bool "non-member" true
    (Lazyctrl_switch.Proto.Ring.neighbors ~members (sid 2) = None);
  check Alcotest.bool "too small" true
    (Lazyctrl_switch.Proto.Ring.neighbors ~members:[ sid 1 ] (sid 1) = None)

let () =
  Alcotest.run "grouping"
    [
      ( "grouping",
        [
          Alcotest.test_case "dense relabeling" `Quick test_of_assignment_dense;
          Alcotest.test_case "singleton/one" `Quick test_singleton_and_one;
          Alcotest.test_case "inter-group intensity" `Quick test_inter_group_intensity;
          Alcotest.test_case "size mismatch" `Quick test_grouping_size_mismatch;
        ] );
      ( "sgi",
        [
          Alcotest.test_case "estimate_k" `Quick test_estimate_k;
          test_ini_group_respects_limit;
          Alcotest.test_case "finds communities" `Quick test_ini_group_finds_communities;
          Alcotest.test_case "invalid args" `Quick test_ini_group_invalid;
          Alcotest.test_case "candidate pair" `Quick test_find_candidate_pair;
          Alcotest.test_case "no candidate" `Quick test_find_candidate_none;
          Alcotest.test_case "inc_update improves" `Quick test_inc_update_improves;
          Alcotest.test_case "inc_update merges" `Quick test_inc_update_merges_when_fits;
          Alcotest.test_case "inc_update stable at optimum" `Quick test_inc_update_none_when_optimal;
          Alcotest.test_case "converge" `Quick test_converge;
        ] );
      ( "negotiation",
        [
          Alcotest.test_case "closed form" `Quick test_negotiation_closed_form;
          Alcotest.test_case "patience advantage" `Quick test_negotiation_patience_advantage;
          test_negotiation_simulation_agrees;
          Alcotest.test_case "validation" `Quick test_negotiation_validation;
          Alcotest.test_case "capacity preference" `Quick test_capacity_preference;
        ] );
      ("ring", [ Alcotest.test_case "neighbors" `Quick test_ring_neighbors ]);
    ]
