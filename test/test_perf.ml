(* Tests for lazyctrl.perf: fixed-work measurement, report
   serialization, and the ops/sec regression gate. *)

module Measure = Lazyctrl_perf.Measure
module Report = Lazyctrl_perf.Report
module Compare = Lazyctrl_perf.Compare

let check = Alcotest.check

(* Naive substring test; keeps the test free of extra library deps. *)
let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let mk ?(events = 0) ?(alloc = 0.) ?(words = 0.) ?(domains = 1) ?scaling name
    ops =
  {
    Measure.name;
    ops_per_sec = ops;
    ns_per_op = 1e9 /. ops;
    alloc_bytes_per_op = alloc;
    minor_words_per_op = words;
    events_fired = events;
    domains;
    scaling_efficiency = scaling;
  }

(* --- Measure ----------------------------------------------------------- *)

let test_measure_run () =
  let calls = ref 0 in
  let r =
    Measure.run ~name:"spin" ~warmup:1 ~reps:2 ~ops_per_rep:10_000
      ~events:(fun () -> 42)
      (fun () ->
        incr calls;
        let acc = ref 0 in
        for i = 1 to 10_000 do
          acc := !acc + i
        done;
        Sys.opaque_identity !acc |> ignore)
  in
  check Alcotest.int "warmup + reps calls" 3 !calls;
  check Alcotest.string "name" "spin" r.Measure.name;
  check Alcotest.bool "positive throughput" true (r.Measure.ops_per_sec > 0.);
  check Alcotest.bool "positive ns/op" true (r.Measure.ns_per_op > 0.);
  check Alcotest.bool "consistent inverse" true
    (Float.abs ((r.Measure.ops_per_sec *. r.Measure.ns_per_op /. 1e9) -. 1.)
    < 1e-6);
  check Alcotest.int "events sampled" 42 r.Measure.events_fired;
  (* The row printer is part of the bench's human-readable surface. *)
  let row = Format.asprintf "%a" Measure.pp_row r in
  check Alcotest.bool "pp_row names the target" true
    (String.length row > 0 && contains row "spin")

let test_measure_run_invalid () =
  Alcotest.check_raises "reps must be positive"
    (Invalid_argument "Measure.run: reps must be positive") (fun () ->
      ignore (Measure.run ~name:"x" ~reps:0 ~ops_per_rep:1 ignore));
  Alcotest.check_raises "ops_per_rep must be positive"
    (Invalid_argument "Measure.run: ops_per_rep must be positive") (fun () ->
      ignore (Measure.run ~name:"x" ~reps:1 ~ops_per_rep:0 ignore))

(* --- Report ------------------------------------------------------------ *)

let test_report_roundtrip () =
  let rs =
    [
      mk ~events:225_200 ~alloc:186.9 ~words:23.4 "engine-event" 477_903.25;
      mk "bloom-query" 43_100_000.;
      mk ~alloc:0.5 ~words:1.65 "lfib-lookup" 2.37e7;
    ]
  in
  match Report.of_string (Report.to_string rs) with
  | Error e -> Alcotest.failf "roundtrip failed: %s" e
  | Ok back ->
      check Alcotest.int "same count" (List.length rs) (List.length back);
      List.iter2
        (fun (a : Measure.result) (b : Measure.result) ->
          check Alcotest.string "name" a.name b.name;
          check (Alcotest.float 1e-3) "ops" a.ops_per_sec b.ops_per_sec;
          check (Alcotest.float 1e-3) "ns" a.ns_per_op b.ns_per_op;
          check (Alcotest.float 1e-3) "alloc" a.alloc_bytes_per_op
            b.alloc_bytes_per_op;
          check (Alcotest.float 1e-3) "minor words" a.minor_words_per_op
            b.minor_words_per_op;
          check Alcotest.int "events" a.events_fired b.events_fired)
        rs back

let test_report_rejects_bad_version () =
  let s = Report.to_string [ mk "x" 1.0 ] in
  let v = string_of_int Report.schema_version in
  let i =
    let rec find j =
      if String.sub s j (String.length v) = v then j else find (j + 1)
    in
    find 0
  in
  let bumped =
    String.sub s 0 i ^ "999"
    ^ String.sub s (i + String.length v) (String.length s - i - String.length v)
  in
  (match Report.of_string bumped with
  | Ok _ -> Alcotest.fail "unknown schema version must be rejected"
  | Error e -> check Alcotest.bool "mentions version" true (contains e "999"));
  match Report.of_string "not json at all" with
  | Ok _ -> Alcotest.fail "garbage must be rejected"
  | Error _ -> ()

let test_report_save_load () =
  let path = Filename.temp_file "lazyctrl_bench" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let rs = [ mk "engine-event" 2e6; mk "packet-replay" 9.2e4 ] in
      Report.save path rs;
      match Report.load path with
      | Error e -> Alcotest.failf "load failed: %s" e
      | Ok back ->
          check Alcotest.int "count" 2 (List.length back);
          check Alcotest.string "first name" "engine-event"
            (List.hd back).Measure.name);
  match Report.load "/nonexistent/BENCH.json" with
  | Ok _ -> Alcotest.fail "missing file must be an error"
  | Error e ->
      check Alcotest.bool "error names the path" true
        (contains e "/nonexistent")

(* --- Compare ----------------------------------------------------------- *)

let baseline = [ mk "engine-event" 1e6; mk "bloom-query" 4e7 ]

let verdict_of outcome name =
  match
    List.find_opt (fun (r : Compare.row) -> String.equal r.name name)
      outcome.Compare.rows
  with
  | Some r -> r.Compare.verdict
  | None -> Alcotest.failf "no row for %s" name

let test_compare_identical () =
  let o = Compare.diff ~baseline ~current:baseline () in
  check Alcotest.bool "identical passes" true (Compare.passed o);
  check Alcotest.string "ok verdict" "ok"
    (Compare.verdict_label (verdict_of o "engine-event"));
  check (Alcotest.list Alcotest.string) "no failures" [] o.Compare.failures

let test_compare_regression () =
  (* Injected 20% slowdown: past the 15% default threshold. *)
  let current = [ mk "engine-event" 0.8e6; mk "bloom-query" 4e7 ] in
  let o = Compare.diff ~baseline ~current () in
  check Alcotest.bool "20% slowdown fails" false (Compare.passed o);
  check Alcotest.string "regressed verdict" "REGRESSED"
    (Compare.verdict_label (verdict_of o "engine-event"));
  check Alcotest.bool "failure recorded" true (o.Compare.failures <> []);
  (* A 10% slowdown stays inside the default 15% tolerance. *)
  let o10 =
    Compare.diff ~baseline ~current:[ mk "engine-event" 0.9e6; mk "bloom-query" 4e7 ] ()
  in
  check Alcotest.bool "10% slowdown tolerated" true (Compare.passed o10);
  (* ...but not inside a tighter explicit one. *)
  let o_tight =
    Compare.diff ~threshold:0.05 ~baseline
      ~current:[ mk "engine-event" 0.9e6; mk "bloom-query" 4e7 ] ()
  in
  check Alcotest.bool "tight threshold catches it" false (Compare.passed o_tight)

let test_compare_missing_and_new () =
  let o_missing = Compare.diff ~baseline ~current:[ mk "engine-event" 1e6 ] () in
  check Alcotest.bool "missing target fails" false (Compare.passed o_missing);
  check Alcotest.string "missing verdict" "MISSING"
    (Compare.verdict_label (verdict_of o_missing "bloom-query"));
  let current = mk "gfib-probe" 9e6 :: baseline in
  let o_new = Compare.diff ~baseline ~current () in
  check Alcotest.bool "new target passes" true (Compare.passed o_new);
  check Alcotest.string "new verdict" "new"
    (Compare.verdict_label (verdict_of o_new "gfib-probe"));
  let o_improved =
    Compare.diff ~baseline ~current:[ mk "engine-event" 2e6; mk "bloom-query" 4e7 ] ()
  in
  check Alcotest.bool "improvement passes" true (Compare.passed o_improved);
  check Alcotest.string "improved verdict" "improved"
    (Compare.verdict_label (verdict_of o_improved "engine-event"))

let test_compare_alloc_regression () =
  (* Same throughput, but engine-event now allocates well past
     baseline * 1.15 + 0.5 words/op: the alloc gate alone must fail. *)
  let base = [ mk ~words:10.0 "engine-event" 1e6; mk "bloom-query" 4e7 ] in
  let current = [ mk ~words:20.0 "engine-event" 1e6; mk "bloom-query" 4e7 ] in
  let o = Compare.diff ~baseline:base ~current () in
  check Alcotest.bool "alloc growth fails" false (Compare.passed o);
  check Alcotest.string "regressed verdict" "REGRESSED"
    (Compare.verdict_label (verdict_of o "engine-event"));
  check Alcotest.bool "failure names allocation" true
    (List.exists (fun m -> contains m "allocation grew") o.Compare.failures);
  (* Noise on an allocation-free target stays inside the absolute
     slack... *)
  let o_noise =
    Compare.diff ~baseline:base
      ~current:[ mk ~words:10.3 "engine-event" 1e6; mk ~words:0.4 "bloom-query" 4e7 ] ()
  in
  check Alcotest.bool "slack tolerates noise" true (Compare.passed o_noise);
  (* ...but one boxed value per op on a zero-alloc baseline does not. *)
  let o_boxed =
    Compare.diff ~baseline:base
      ~current:[ mk ~words:10.0 "engine-event" 1e6; mk ~words:2.0 "bloom-query" 4e7 ] ()
  in
  check Alcotest.bool "new boxing on clean target fails" false
    (Compare.passed o_boxed)

let test_compare_threshold_validation () =
  check (Alcotest.float 1e-12) "default threshold" 0.15
    Compare.default_threshold;
  check (Alcotest.float 1e-12) "alloc slack" 0.5 Compare.alloc_slack;
  let bad t () =
    ignore (Compare.diff ~threshold:t ~baseline ~current:baseline ())
  in
  Alcotest.check_raises "threshold 0 rejected"
    (Invalid_argument "Compare.diff: threshold outside (0,1)") (bad 0.);
  Alcotest.check_raises "threshold 1.5 rejected"
    (Invalid_argument "Compare.diff: threshold outside (0,1)") (bad 1.5)

let test_compare_pp () =
  let o_pass = Compare.diff ~baseline ~current:baseline () in
  let s = Format.asprintf "%a" Compare.pp o_pass in
  check Alcotest.bool "PASS line" true (contains s "compare: PASS");
  let o_fail =
    Compare.diff ~baseline ~current:[ mk "engine-event" 0.5e6; mk "bloom-query" 4e7 ] ()
  in
  let s = Format.asprintf "%a" Compare.pp o_fail in
  check Alcotest.bool "FAIL line" true (contains s "compare: FAIL");
  let row = List.hd o_fail.Compare.rows in
  let s = Format.asprintf "%a" Compare.pp_row row in
  check Alcotest.bool "row names target" true (contains s row.Compare.name)

(* --- schema v3: domains / scaling_efficiency / host_cores ------------- *)

let test_report_v3_fields () =
  let rs =
    [
      mk "packet-replay-d1" 1e5;
      mk ~domains:4 ~scaling:0.71 "packet-replay-d4" 2.84e5;
    ]
  in
  match Report.doc_of_string (Report.to_string ~host_cores:8 rs) with
  | Error e -> Alcotest.failf "doc roundtrip failed: %s" e
  | Ok doc -> (
      check Alcotest.int "host_cores survives" 8 doc.Report.host_cores;
      match doc.Report.results with
      | [ d1; d4 ] ->
          check Alcotest.int "d1 domains" 1 d1.Measure.domains;
          check Alcotest.bool "d1 no efficiency" true
            (d1.Measure.scaling_efficiency = None);
          check Alcotest.int "d4 domains" 4 d4.Measure.domains;
          check (Alcotest.float 1e-9) "d4 efficiency" 0.71
            (Option.get d4.Measure.scaling_efficiency)
      | _ -> Alcotest.fail "wrong benchmark count")

let test_compare_scaling_gate () =
  let floor = Compare.scaling_floor in
  check (Alcotest.float 1e-12) "floor is 2.5x at 4 domains" (2.5 /. 4.) floor;
  let d1 = mk "replay-d1" 1e5 in
  let good = [ d1; mk ~domains:4 ~scaling:(floor +. 0.1) "replay-d4" 2.9e5 ] in
  (* Same throughput as the baseline so only the efficiency dimension
     can fail — the scaling gate judges the current run, not the diff. *)
  let bad = [ d1; mk ~domains:4 ~scaling:(floor -. 0.1) "replay-d4" 2.9e5 ] in
  let o = Compare.diff ~host_cores:8 ~baseline:good ~current:good () in
  check Alcotest.bool "above floor passes" true (Compare.passed o);
  check (Alcotest.list Alcotest.string) "no skip notes on a big host" []
    o.Compare.notes;
  let o = Compare.diff ~host_cores:8 ~baseline:good ~current:bad () in
  check Alcotest.bool "below floor fails" false (Compare.passed o);
  check Alcotest.bool "failure names the floor" true
    (List.exists (fun m -> contains m "below floor") o.Compare.failures);
  (* Same sub-floor run on a 2-core host: the gate must stand down. *)
  let o = Compare.diff ~host_cores:2 ~baseline:good ~current:bad () in
  check Alcotest.bool "core-starved host skips the gate" true
    (Compare.passed o);
  check Alcotest.bool "skip is noted" true
    (List.exists (fun m -> contains m "2 cores < 4 domains") o.Compare.notes);
  (* Core starvation also exempts the throughput gate (wall clock is
     scheduler noise there) — but not on a host with enough cores. *)
  let slow = [ d1; mk ~domains:4 ~scaling:(floor +. 0.1) "replay-d4" 1.0e5 ] in
  let o = Compare.diff ~host_cores:2 ~baseline:good ~current:slow () in
  check Alcotest.bool "starved throughput drop tolerated" true
    (Compare.passed o);
  let o = Compare.diff ~host_cores:8 ~baseline:good ~current:slow () in
  check Alcotest.bool "same drop fails on a big host" false (Compare.passed o);
  (* No host_cores at all (legacy caller): skip with a note too. *)
  let o = Compare.diff ~baseline:good ~current:bad () in
  check Alcotest.bool "unknown host skips the gate" true (Compare.passed o);
  check Alcotest.bool "unknown-host note" true
    (List.exists (fun m -> contains m "no host_cores") o.Compare.notes);
  (* A multi-domain target that lost its efficiency field is a failure,
     not a silent skip — that is how the probe wiring would break. *)
  let o =
    Compare.diff ~host_cores:8 ~baseline:good
      ~current:[ d1; mk ~domains:4 "replay-d4" 2.9e5 ]
      ()
  in
  check Alcotest.bool "missing efficiency fails" false (Compare.passed o);
  check Alcotest.bool "missing-efficiency message" true
    (List.exists
       (fun m -> contains m "no scaling_efficiency")
       o.Compare.failures)

let () =
  Alcotest.run "perf"
    [
      ( "measure",
        [
          Alcotest.test_case "fixed-work run" `Quick test_measure_run;
          Alcotest.test_case "invalid args" `Quick test_measure_run_invalid;
        ] );
      ( "report",
        [
          Alcotest.test_case "roundtrip" `Quick test_report_roundtrip;
          Alcotest.test_case "bad version rejected" `Quick
            test_report_rejects_bad_version;
          Alcotest.test_case "save/load" `Quick test_report_save_load;
          Alcotest.test_case "v3 domains/host_cores" `Quick
            test_report_v3_fields;
        ] );
      ( "compare",
        [
          Alcotest.test_case "identical" `Quick test_compare_identical;
          Alcotest.test_case "20% regression fails" `Quick
            test_compare_regression;
          Alcotest.test_case "missing/new/improved" `Quick
            test_compare_missing_and_new;
          Alcotest.test_case "alloc regression" `Quick
            test_compare_alloc_regression;
          Alcotest.test_case "threshold validation" `Quick
            test_compare_threshold_validation;
          Alcotest.test_case "pretty printers" `Quick test_compare_pp;
          Alcotest.test_case "scaling gate" `Quick test_compare_scaling_gate;
        ] );
    ]
