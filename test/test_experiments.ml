(* Smoke tests for the experiment harness: every table builder must
   produce a well-formed table on miniature workloads, so regressions in
   the bench targets are caught by `dune runtest` rather than by a broken
   paper-reproduction run. *)

module E = Lazyctrl_experiments
module Table = Lazyctrl_util.Table

let check = Alcotest.check

let lines tbl = List.length (String.split_on_char '\n' (Table.render tbl))

let test_storage () =
  let r = E.Storage_exp.run ~group_size:10 ~hosts_per_switch:16 ~probes:10_000 () in
  (* 128 bits/entry x 2 keys x 16 hosts = 512 bytes per peer filter. *)
  check Alcotest.int "bytes follow the geometry" (9 * 512) r.E.Storage_exp.gfib_bytes;
  check Alcotest.bool "fp rate tiny" true (r.E.Storage_exp.measured_fp < 0.001);
  check Alcotest.bool "renders" true (lines (E.Storage_exp.table ()) >= 7)

let test_failover_tables () =
  (* Table I's 8 inference rows, plus the 3 second-spoke controller-failure
     rows, plus header + rule. *)
  check Alcotest.int "inference table" 13 (lines (E.Failover_exp.inference_table ()));
  let tbl = E.Failover_exp.endtoend_table () in
  let rendered = Table.render tbl in
  check Alcotest.int "four scenarios" 6 (lines tbl);
  check Alcotest.bool "all handled" true
    (not
       (List.exists
          (fun line ->
            String.length line > 0
            && String.length line >= 11
            && String.sub line (String.length line - 11) 11 = "NOT handled")
          (String.split_on_char '\n' rendered)))

let test_negotiation_table () =
  check Alcotest.int "four profiles" 6 (lines (E.Ablation.negotiation_table ()))

let test_grouping_tables () =
  (* Tiny synthetic workloads keep this a smoke test, not a benchmark. *)
  let t2 = E.Grouping_exp.table2 ~seed:3 ~n_flows_real:8_000 ~n_flows_syn:8_000 () in
  check Alcotest.int "table2 rows" 6 (lines t2);
  let f6a =
    E.Grouping_exp.fig6a ~seed:3 ~n_flows_syn:8_000 ~group_counts:[ 5; 20 ] ()
  in
  check Alcotest.int "fig6a rows" 4 (lines f6a);
  let f6b = E.Grouping_exp.fig6b ~seed:3 ~n_flows_syn:8_000 ~limits:[ 200 ] () in
  check Alcotest.int "fig6b rows" 3 (lines f6b)

let test_exclusion_table () =
  let tbl =
    E.Ablation.exclusion_table ~seed:3 ~n_flows:10_000 ~fractions:[ 0.0; 0.02 ] ()
  in
  check Alcotest.int "two fractions" 4 (lines tbl)

let test_coldcache_ordering () =
  (* The §V-E ordering is the paper's core latency claim. *)
  let r = E.Coldcache.run ~seed:5 () in
  check Alcotest.bool "intra < inter" true
    (r.E.Coldcache.lazy_intra_ms < r.E.Coldcache.lazy_inter_ms);
  check Alcotest.bool "inter < openflow" true
    (r.E.Coldcache.lazy_inter_ms < r.E.Coldcache.openflow_ms);
  check Alcotest.bool "intra is sub-millisecond" true (r.E.Coldcache.lazy_intra_ms < 1.0)

let () =
  Alcotest.run "experiments"
    [
      ( "smoke",
        [
          Alcotest.test_case "storage" `Quick test_storage;
          Alcotest.test_case "failover tables" `Quick test_failover_tables;
          Alcotest.test_case "negotiation" `Quick test_negotiation_table;
          Alcotest.test_case "grouping tables" `Slow test_grouping_tables;
          Alcotest.test_case "host exclusion" `Slow test_exclusion_table;
          Alcotest.test_case "cold-cache ordering" `Slow test_coldcache_ordering;
        ] );
    ]
