(* Tests for lazyctrl.util: PRNG, heaps, union-find, statistics, tables. *)

module Prng = Lazyctrl_util.Prng
module Intmap = Lazyctrl_util.Intmap
module Heap = Lazyctrl_util.Heap
module Union_find = Lazyctrl_util.Union_find
module Stats = Lazyctrl_util.Stats
module Table = Lazyctrl_util.Table

let check = Alcotest.check
let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* --- PRNG ------------------------------------------------------------- *)

let test_prng_deterministic () =
  let a = Prng.create 1 and b = Prng.create 1 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if not (Int64.equal (Prng.bits64 a) (Prng.bits64 b)) then differs := true
  done;
  check Alcotest.bool "different seeds differ" true !differs

let test_prng_named_stable () =
  let parent = Prng.create 7 in
  let x = Prng.bits64 (Prng.named parent "alpha") in
  (* [named] must not advance the parent, so the same label re-derives the
     same stream. *)
  let y = Prng.bits64 (Prng.named parent "alpha") in
  let z = Prng.bits64 (Prng.named parent "beta") in
  check Alcotest.int64 "same label same stream" x y;
  check Alcotest.bool "different label differs" true (not (Int64.equal x z))

let test_prng_int_bounds =
  qtest "Prng.int within bounds"
    QCheck2.Gen.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Prng.create seed in
      let v = Prng.int rng bound in
      v >= 0 && v < bound)

let test_prng_int_in_bounds =
  qtest "Prng.int_in inclusive bounds"
    QCheck2.Gen.(triple small_int (int_range (-50) 50) (int_range 0 100))
    (fun (seed, lo, span) ->
      let hi = lo + span in
      let v = Prng.int_in (Prng.create seed) lo hi in
      v >= lo && v <= hi)

let test_prng_uniformity () =
  let rng = Prng.create 99 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let i = Prng.int rng 10 in
    buckets.(i) <- buckets.(i) + 1
  done;
  Array.iteri
    (fun i c ->
      if abs (c - (n / 10)) > n / 50 then
        Alcotest.failf "bucket %d count %d too far from %d" i c (n / 10))
    buckets

let test_prng_float_range () =
  let rng = Prng.create 3 in
  for _ = 1 to 1000 do
    let v = Prng.float rng 2.5 in
    if v < 0.0 || v >= 2.5 then Alcotest.failf "float out of range: %f" v
  done

let test_shuffle_is_permutation =
  qtest "shuffle preserves multiset"
    QCheck2.Gen.(pair small_int (list small_int))
    (fun (seed, xs) ->
      let a = Array.of_list xs in
      Prng.shuffle (Prng.create seed) a;
      List.sort compare (Array.to_list a) = List.sort compare xs)

let test_sample_distinct =
  qtest "sample_distinct: distinct, in range, right count"
    QCheck2.Gen.(pair small_int (int_range 1 200))
    (fun (seed, bound) ->
      let n = max 1 (bound / 2) in
      let xs = Prng.sample_distinct (Prng.create seed) ~n ~bound in
      List.length xs = n
      && List.length (List.sort_uniq compare xs) = n
      && List.for_all (fun x -> x >= 0 && x < bound) xs)

let test_zipf_skew () =
  let rng = Prng.create 5 in
  let z = Prng.Zipf.create ~n:1000 ~alpha:1.2 in
  let counts = Array.make 1000 0 in
  for _ = 1 to 50_000 do
    let r = Prng.Zipf.draw z rng in
    counts.(r) <- counts.(r) + 1
  done;
  (* Rank 0 must dominate rank 500 heavily under alpha = 1.2. *)
  check Alcotest.bool "rank 0 much hotter than rank 500" true
    (counts.(0) > 20 * (counts.(500) + 1))

let test_exponential_mean () =
  let rng = Prng.create 11 in
  let sum = ref 0.0 in
  let n = 50_000 in
  for _ = 1 to n do
    sum := !sum +. Prng.exponential rng ~mean:3.0
  done;
  let mean = !sum /. Float.of_int n in
  check Alcotest.bool "empirical mean near 3.0" true (Float.abs (mean -. 3.0) < 0.1)

(* --- Heap ------------------------------------------------------------- *)

let test_heap_sorted_drain =
  qtest "heap drains in sorted order"
    QCheck2.Gen.(list int)
    (fun xs ->
      let h = Heap.create ~cmp:Int.compare in
      List.iter (Heap.push h) xs;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort compare xs)

let test_heap_to_sorted_non_destructive () =
  let h = Heap.create ~cmp:Int.compare in
  List.iter (Heap.push h) [ 5; 1; 3 ];
  check (Alcotest.list Alcotest.int) "sorted" [ 1; 3; 5 ] (Heap.to_sorted_list h);
  check Alcotest.int "length preserved" 3 (Heap.length h)

let test_heap_peek_pop () =
  let h = Heap.create ~cmp:Int.compare in
  check Alcotest.bool "empty" true (Heap.is_empty h);
  check (Alcotest.option Alcotest.int) "peek empty" None (Heap.peek h);
  Heap.push h 2;
  Heap.push h 1;
  check (Alcotest.option Alcotest.int) "peek min" (Some 1) (Heap.peek h);
  check Alcotest.int "pop_exn" 1 (Heap.pop_exn h);
  Heap.clear h;
  check Alcotest.bool "cleared" true (Heap.is_empty h)

(* The flat triples heap must be observationally identical to the
   polymorphic heap it replaced in the scheduler: same pop order under
   lexicographic (time, seq), including the scheduler's lazy-deletion
   cancel pattern where cancelled entries stay in the heap and are
   skipped at pop time. *)
let test_flat_heap_matches_poly =
  qtest ~count:20 "flat heap matches poly heap under cancels"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rng = Prng.create seed in
      let flat = Heap.Flat.create () in
      let cmp (t1, s1, _) (t2, s2, _) =
        if t1 <> t2 then Int.compare t1 t2 else Int.compare s1 s2
      in
      let poly = Heap.create ~cmp in
      let cancelled = Hashtbl.create 64 in
      let seq = ref 0 in
      let ok = ref true in
      (* Pop one surviving element from each side, skipping cancelled
         entries exactly as the engine does, and compare the triples. *)
      let rec pop_flat () =
        if Heap.Flat.is_empty flat then None
        else begin
          let t = Heap.Flat.min_time flat
          and s = Heap.Flat.min_seq flat
          and p = Heap.Flat.min_payload flat in
          Heap.Flat.remove_min flat;
          if Hashtbl.mem cancelled s then pop_flat () else Some (t, s, p)
        end
      in
      let rec pop_poly () =
        match Heap.pop poly with
        | None -> None
        | Some ((_, s, _) as e) ->
            if Hashtbl.mem cancelled s then pop_poly () else Some e
      in
      let pop_both () =
        if Heap.Flat.length flat <> Heap.length poly then ok := false;
        if pop_flat () <> pop_poly () then ok := false
      in
      for _ = 1 to 10_000 do
        match Prng.int rng 4 with
        | 0 | 1 ->
            (* Duplicate times force seq tie-breaking to matter. *)
            let time = Prng.int rng 512 in
            let s = !seq in
            incr seq;
            Heap.Flat.push flat ~time ~seq:s ~payload:(time lxor s);
            Heap.push poly (time, s, time lxor s)
        | 2 ->
            (* Lazy-deletion cancel of a random previously issued seq
               (possibly one already popped: then it is a no-op). *)
            if !seq > 0 then Hashtbl.replace cancelled (Prng.int rng !seq) ()
        | _ -> pop_both ()
      done;
      (* Drain the survivors, then clear. *)
      let rec drain () =
        let a = pop_flat () and b = pop_poly () in
        if a <> b then ok := false;
        if a <> None || b <> None then drain ()
      in
      drain ();
      Heap.Flat.clear flat;
      !ok && Heap.Flat.is_empty flat && Heap.Flat.length flat = 0)

let test_indexed_heap_basics () =
  let h = Heap.Indexed.create 10 in
  Heap.Indexed.insert h 3 1.0;
  Heap.Indexed.insert h 7 5.0;
  Heap.Indexed.insert h 1 3.0;
  check Alcotest.bool "mem" true (Heap.Indexed.mem h 7);
  check Alcotest.int "cardinal" 3 (Heap.Indexed.cardinal h);
  check (Alcotest.float 1e-9) "priority" 5.0 (Heap.Indexed.priority h 7);
  (match Heap.Indexed.pop_max h with
  | Some (7, p) -> check (Alcotest.float 1e-9) "max prio" 5.0 p
  | other ->
      Alcotest.failf "expected key 7, got %s"
        (match other with Some (k, _) -> string_of_int k | None -> "none"));
  Heap.Indexed.adjust h 3 10.0;
  (match Heap.Indexed.pop_max h with
  | Some (3, _) -> ()
  | _ -> Alcotest.fail "adjust up should win");
  Heap.Indexed.remove h 1;
  check Alcotest.int "empty after removals" 0 (Heap.Indexed.cardinal h)

let test_indexed_heap_adjust_down () =
  let h = Heap.Indexed.create 4 in
  Heap.Indexed.insert h 0 10.0;
  Heap.Indexed.insert h 1 20.0;
  Heap.Indexed.adjust h 1 1.0;
  match Heap.Indexed.pop_max h with
  | Some (0, _) -> ()
  | _ -> Alcotest.fail "adjust down should demote"

let test_indexed_heap_random =
  qtest "indexed heap pops in priority order"
    QCheck2.Gen.(list_size (int_range 1 50) (float_range 0.0 100.0))
    (fun prios ->
      let n = List.length prios in
      let h = Heap.Indexed.create n in
      List.iteri (fun i p -> Heap.Indexed.insert h i p) prios;
      let rec drain last =
        match Heap.Indexed.pop_max h with
        | None -> true
        | Some (_, p) -> p <= last && drain p
      in
      drain infinity)

(* --- Union-find -------------------------------------------------------- *)

let test_union_find () =
  let u = Union_find.create 6 in
  check Alcotest.int "initial sets" 6 (Union_find.count u);
  check Alcotest.bool "union new" true (Union_find.union u 0 1);
  check Alcotest.bool "union again" false (Union_find.union u 1 0);
  ignore (Union_find.union u 2 3);
  ignore (Union_find.union u 0 2);
  check Alcotest.bool "same 1 3" true (Union_find.same u 1 3);
  check Alcotest.bool "not same 1 4" false (Union_find.same u 1 4);
  check Alcotest.int "sets" 3 (Union_find.count u);
  check Alcotest.int "size of component" 4 (Union_find.size u 3)

(* --- Stats -------------------------------------------------------------- *)

let test_online_mean_var () =
  let o = Stats.Online.create () in
  List.iter (Stats.Online.add o) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  check Alcotest.int "count" 8 (Stats.Online.count o);
  check (Alcotest.float 1e-9) "mean" 5.0 (Stats.Online.mean o);
  (* Unbiased sample variance of this classic data set is 32/7. *)
  check (Alcotest.float 1e-9) "variance" (32.0 /. 7.0) (Stats.Online.variance o);
  check (Alcotest.float 1e-9) "min" 2.0 (Stats.Online.min o);
  check (Alcotest.float 1e-9) "max" 9.0 (Stats.Online.max o)

let test_online_merge =
  qtest "Online.merge equals concatenation"
    QCheck2.Gen.(pair (list (float_range (-100.) 100.)) (list (float_range (-100.) 100.)))
    (fun (xs, ys) ->
      let a = Stats.Online.create () and b = Stats.Online.create () in
      List.iter (Stats.Online.add a) xs;
      List.iter (Stats.Online.add b) ys;
      let m = Stats.Online.merge a b in
      let all = Stats.Online.create () in
      List.iter (Stats.Online.add all) (xs @ ys);
      Stats.Online.count m = Stats.Online.count all
      && Float.abs (Stats.Online.mean m -. Stats.Online.mean all) < 1e-6
      && Float.abs (Stats.Online.variance m -. Stats.Online.variance all) < 1e-6)

let test_percentile () =
  let a = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  check (Alcotest.float 1e-9) "p0" 1.0 (Stats.percentile_of_sorted a 0.0);
  check (Alcotest.float 1e-9) "p50" 3.0 (Stats.percentile_of_sorted a 0.5);
  check (Alcotest.float 1e-9) "p100" 5.0 (Stats.percentile_of_sorted a 1.0);
  check (Alcotest.float 1e-9) "p25" 2.0 (Stats.percentile_of_sorted a 0.25)

let test_reservoir_percentile () =
  let r = Stats.Reservoir.create ~capacity:1000 (Prng.create 3) in
  for i = 1 to 10_000 do
    Stats.Reservoir.add r (Float.of_int (i mod 100))
  done;
  let p50 = Stats.Reservoir.percentile r 0.5 in
  check Alcotest.bool "median near 50" true (Float.abs (p50 -. 50.0) < 10.0);
  check Alcotest.int "count tracks stream" 10_000 (Stats.Reservoir.count r)

let test_histogram () =
  let h = Stats.Histogram.create ~lo:0.0 ~hi:10.0 ~buckets:5 in
  List.iter (Stats.Histogram.add h) [ -1.0; 0.0; 1.9; 2.0; 9.9; 10.0; 42.0 ];
  let counts = Stats.Histogram.bucket_counts h in
  check Alcotest.int "underflow" 1 counts.(0);
  check Alcotest.int "first bucket" 2 counts.(1);
  check Alcotest.int "second bucket" 1 counts.(2);
  check Alcotest.int "last bucket" 1 counts.(5);
  check Alcotest.int "overflow" 2 counts.(6);
  check Alcotest.int "total" 7 (Stats.Histogram.count h)

let test_timeseries () =
  let ts = Stats.Timeseries.create ~bucket_width:10.0 ~n_buckets:3 in
  Stats.Timeseries.record ts ~time:5.0 2.0;
  Stats.Timeseries.record ts ~time:5.0 4.0;
  Stats.Timeseries.record ts ~time:25.0 6.0;
  Stats.Timeseries.record ts ~time:99.0 1.0;
  (* clamped to last *)
  let counts = Stats.Timeseries.counts ts in
  check (Alcotest.array Alcotest.int) "counts" [| 2; 0; 2 |] counts;
  let means = Stats.Timeseries.means ts in
  check (Alcotest.float 1e-9) "bucket 0 mean" 3.0 means.(0);
  check Alcotest.bool "empty bucket mean is nan" true (Float.is_nan means.(1));
  Stats.Timeseries.record_n ts ~time:15.0 ~n:5 2.0;
  check Alcotest.int "record_n count" 5 (Stats.Timeseries.counts ts).(1);
  check (Alcotest.float 1e-9) "record_n mean" 2.0 (Stats.Timeseries.means ts).(1);
  check (Alcotest.float 1e-9) "rates" 0.2 (Stats.Timeseries.rates ts).(0)

(* --- Table ---------------------------------------------------------------- *)

let test_table_render () =
  let t = Table.create [ "a"; "bb" ] in
  Table.add_row t [ "1"; "2" ];
  Table.add_row t [ "333" ];
  let s = Table.render t in
  check Alcotest.bool "contains header" true
    (String.length s > 0 && String.sub s 0 1 = "a");
  (* Short rows are padded; rendering must have 4 lines. *)
  check Alcotest.int "line count" 4
    (List.length (String.split_on_char '\n' s))

(* --- Intmap ----------------------------------------------------------- *)

let test_intmap_basics () =
  let m = Intmap.create ~capacity:4 () in
  check Alcotest.int "empty" 0 (Intmap.length m);
  Intmap.replace m 7 "seven";
  Intmap.replace m 0 "zero";
  Intmap.replace m (-3) "minus";
  check Alcotest.int "three live" 3 (Intmap.length m);
  check Alcotest.bool "mem hit" true (Intmap.mem m 7);
  check Alcotest.bool "mem miss" false (Intmap.mem m 8);
  check (Alcotest.option Alcotest.string) "find hit" (Some "minus")
    (Intmap.find m (-3));
  check (Alcotest.option Alcotest.string) "find miss" None (Intmap.find m 99);
  Intmap.replace m 7 "SEVEN";
  check Alcotest.int "overwrite keeps length" 3 (Intmap.length m);
  check (Alcotest.option Alcotest.string) "overwrite visible" (Some "SEVEN")
    (Intmap.find m 7);
  Intmap.remove m 0;
  Intmap.remove m 0;
  check Alcotest.int "remove is idempotent" 2 (Intmap.length m);
  check Alcotest.bool "removed key gone" false (Intmap.mem m 0)

let test_intmap_sentinels_rejected () =
  let m = Intmap.create () in
  Alcotest.check_raises "min_int"
    (Invalid_argument "Intmap: min_int and min_int+1 are reserved sentinel keys")
    (fun () -> Intmap.replace m min_int ());
  Alcotest.check_raises "min_int+1"
    (Invalid_argument "Intmap: min_int and min_int+1 are reserved sentinel keys")
    (fun () -> ignore (Intmap.find m (min_int + 1)))

(* Churn through growth and tombstone reuse, mirrored against Hashtbl. *)
let test_intmap_matches_hashtbl () =
  let m = Intmap.create ~capacity:2 () in
  let h = Hashtbl.create 16 in
  let rng = Prng.create 11 in
  for _ = 1 to 5_000 do
    let k = Prng.int rng 400 - 200 in
    if Prng.int rng 4 = 0 then begin
      Intmap.remove m k;
      Hashtbl.remove h k
    end
    else begin
      let v = Prng.int rng 1_000_000 in
      Intmap.replace m k v;
      Hashtbl.replace h k v
    end
  done;
  check Alcotest.int "same cardinality" (Hashtbl.length h) (Intmap.length m);
  for k = -200 to 200 do
    check (Alcotest.option Alcotest.int)
      (Printf.sprintf "key %d agrees" k)
      (Hashtbl.find_opt h k) (Intmap.find m k)
  done

let test_table_cells () =
  check Alcotest.string "float" "1.50" (Table.cell_float 1.5);
  check Alcotest.string "nan" "-" (Table.cell_float nan);
  check Alcotest.string "decimals" "1.500" (Table.cell_float ~decimals:3 1.5);
  check Alcotest.string "int" "42" (Table.cell_int 42)

let () =
  Alcotest.run "util"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "named streams" `Quick test_prng_named_stable;
          test_prng_int_bounds;
          test_prng_int_in_bounds;
          Alcotest.test_case "uniformity" `Quick test_prng_uniformity;
          Alcotest.test_case "float range" `Quick test_prng_float_range;
          test_shuffle_is_permutation;
          test_sample_distinct;
          Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
          Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
        ] );
      ( "heap",
        [
          test_heap_sorted_drain;
          Alcotest.test_case "to_sorted_list" `Quick test_heap_to_sorted_non_destructive;
          Alcotest.test_case "peek/pop/clear" `Quick test_heap_peek_pop;
          Alcotest.test_case "indexed basics" `Quick test_indexed_heap_basics;
          Alcotest.test_case "indexed adjust down" `Quick test_indexed_heap_adjust_down;
          test_indexed_heap_random;
          test_flat_heap_matches_poly;
        ] );
      ("union_find", [ Alcotest.test_case "basics" `Quick test_union_find ]);
      ( "intmap",
        [
          Alcotest.test_case "basics" `Quick test_intmap_basics;
          Alcotest.test_case "sentinel keys rejected" `Quick
            test_intmap_sentinels_rejected;
          Alcotest.test_case "churn matches Hashtbl" `Quick
            test_intmap_matches_hashtbl;
        ] );
      ( "stats",
        [
          Alcotest.test_case "online mean/var" `Quick test_online_mean_var;
          test_online_merge;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "reservoir" `Quick test_reservoir_percentile;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "timeseries" `Quick test_timeseries;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "cells" `Quick test_table_cells;
        ] );
    ]
