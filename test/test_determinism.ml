(* Seeded double-run determinism: the same scenario run twice with the
   same seed must leave byte-identical observable state — recorder time
   series, switch counters, controller counters and the final grouping.
   This is the end-to-end check behind the lazyctrl-lint D-rules: any
   hash-order, raw-randomness or wall-clock leak shows up here as a
   fingerprint mismatch. *)

open Lazyctrl_net
open Lazyctrl_sim
open Lazyctrl_topo
open Lazyctrl_core
open Lazyctrl_controller
module Prng = Lazyctrl_util.Prng
module Recorder = Lazyctrl_metrics.Recorder

(* A mid-size scenario: grouping, per-tenant traffic, a host migration, a
   failure + recovery, and periodic regroup triggers. *)
let run_scenario ~seed =
  let topo =
    Placement.generate ~rng:(Prng.create seed)
      {
        Placement.n_switches = 16;
        n_tenants = 8;
        tenant_size_min = 8;
        tenant_size_max = 16;
        racks_per_tenant = 2;
        stray_fraction = 0.1;
      }
  in
  let net =
    Network.create
      ~controller_config:
        { Controller.default_config with Controller.group_size_limit = 4 }
      ~mode:Network.Lazy ~topo ~horizon:(Time.of_min 30) ()
  in
  Network.bootstrap net ();
  Network.run net ~until:(Time.of_sec 20);
  (* Per-tenant all-to-first traffic. *)
  List.iter
    (fun tenant ->
      match Topology.tenant_hosts topo tenant with
      | first :: rest ->
          List.iter
            (fun (peer : Host.t) ->
              Network.start_flow net ~src:first.Host.id ~dst:peer.id
                ~bytes:20_000 ~packets:14)
            rest
      | [] -> ())
    (Topology.tenants topo);
  Network.run net ~until:(Time.of_min 2);
  (* Perturbations: migrate one host, knock a switch over, repair it. *)
  (match Topology.tenants topo with
  | tenant :: _ -> (
      match Topology.tenant_hosts topo tenant with
      | (h : Host.t) :: _ ->
          let dst = Ids.Switch_id.of_int 3 in
          Network.migrate_host net h.id ~to_:dst
      | [] -> ())
  | [] -> ());
  Network.fail_switch net (Ids.Switch_id.of_int 5);
  Network.run net ~until:(Time.of_min 6);
  (* More cross-tenant chatter after recovery. *)
  List.iter
    (fun tenant ->
      match Topology.tenant_hosts topo tenant with
      | a :: b :: _ ->
          Network.start_flow net ~src:a.Host.id ~dst:b.Host.id ~bytes:4_000
            ~packets:3
      | _ -> ())
    (Topology.tenants topo);
  Network.run net ~until:(Time.of_min 10);
  net

let fingerprint net =
  let buf = Buffer.create 4096 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let r = Network.recorder net in
  addf "requests=%d updates=%d\n" (Recorder.total_requests r)
    (Recorder.total_updates r);
  Array.iteri (fun i v -> addf "rps[%d]=%h\n" i v) (Recorder.workload_rps r);
  Array.iteri
    (fun i v -> addf "lat[%d]=%h\n" i v)
    (Recorder.first_latency_ms_series r);
  Array.iteri
    (fun i v -> addf "upd[%d]=%d\n" i v)
    (Recorder.updates_per_hour r);
  let s = Network.switch_stats_sum net in
  addf
    "sw: from_hosts=%d delivered=%d encap=%d ft=%d lfib=%d gfib=%d dup=%d \
     punt=%d fp=%d arp_l=%d arp_g=%d adv=%d ka=%d\n"
    s.Lazyctrl_switch.Edge_switch.packets_from_hosts s.packets_delivered
    s.encap_sent s.flow_table_handled s.lfib_handled s.gfib_handled
    s.gfib_duplicates s.punted s.fp_drops s.arp_local_answered
    s.arp_group_escalated s.adverts_sent s.keepalives_sent;
  (match Network.lazy_controller net with
  | None -> addf "no-controller\n"
  | Some c ->
      let cs = Controller.stats c in
      addf
        "ctrl: req=%d pin=%d arp=%d sr=%d ra=%d fm=%d po=%d relay=%d \
         flood=%d inc=%d full=%d fo=%d pre=%d\n"
        cs.Controller.requests cs.packet_ins cs.arp_escalations
        cs.state_reports cs.ring_alarms cs.flow_mods_sent cs.packet_outs_sent
        cs.arp_relays cs.floods cs.grouping_updates cs.full_regroups
        cs.failovers_handled cs.preloaded_rules;
      (match Controller.grouping c with
      | None -> addf "no-grouping\n"
      | Some g ->
          Array.iteri
            (fun sw gid -> addf "group[%d]=%d\n" sw gid)
            (Lazyctrl_grouping.Grouping.assignment g)));
  let hm = Network.host_model net in
  addf "flows_delivered=%d\n" (Host_model.flows_delivered hm);
  Buffer.contents buf

let test_double_run () =
  let fp1 = fingerprint (run_scenario ~seed:11) in
  let fp2 = fingerprint (run_scenario ~seed:11) in
  Alcotest.(check string) "same seed, byte-identical observables" fp1 fp2;
  (* And the fingerprint is not trivially empty. *)
  Alcotest.(check bool) "fingerprint non-empty" true (String.length fp1 > 200)

let test_seed_sensitivity () =
  (* A different seed produces a different placement, hence (almost
     surely) different observables; guards against a fingerprint that
     ignores the run. *)
  let fp1 = fingerprint (run_scenario ~seed:11) in
  let fp3 = fingerprint (run_scenario ~seed:12) in
  Alcotest.(check bool)
    "different seed, different fingerprint" false (String.equal fp1 fp3)

(* Same property under chaos: lossy channels, fault injection, reliable
   retransmission timers and invariant polling all derive from the one
   seed, so the runner's fingerprint must be byte-identical too. *)
let test_chaos_double_run () =
  let module Runner = Lazyctrl_chaos.Runner in
  let cfg = { Runner.default_config with Runner.seed = 7 } in
  let r1 = Runner.run cfg in
  let r2 = Runner.run cfg in
  Alcotest.(check string)
    "same seed, byte-identical chaos fingerprint" r1.Runner.fingerprint
    r2.Runner.fingerprint;
  Alcotest.(check bool)
    "chaos fingerprint non-empty" true
    (String.length r1.Runner.fingerprint > 200);
  let r3 = Runner.run { cfg with Runner.seed = 8 } in
  Alcotest.(check bool)
    "different seed, different chaos fingerprint" false
    (String.equal r1.Runner.fingerprint r3.Runner.fingerprint)

(* The same property over the controller cluster: member kills and
   partitions, mastership-term arbitration, coordination sessions and
   orphan adoption all replay byte-identically from the seed. *)
let test_cluster_chaos_double_run () =
  let module CR = Lazyctrl_cluster.Chaos_runner in
  let cfg = { CR.default_config with CR.seed = 7 } in
  let r1 = CR.run cfg in
  let r2 = CR.run cfg in
  Alcotest.(check string)
    "same seed, byte-identical cluster fingerprint" r1.CR.fingerprint
    r2.CR.fingerprint;
  Alcotest.(check bool)
    "cluster fingerprint non-empty" true
    (String.length r1.CR.fingerprint > 200);
  let r3 = CR.run { cfg with CR.seed = 8 } in
  Alcotest.(check bool)
    "different seed, different cluster fingerprint" false
    (String.equal r1.CR.fingerprint r3.CR.fingerprint)

(* Tracing determinism: two flight-recorded runs of the same seeded
   daylong slice must serialize to byte-identical JSONL (and Chrome)
   exports.  Trace files are diffable artifacts, so this is stricter
   than fingerprint equality: every event, span id and parent link has
   to come out in the same bytes, which would catch any hash-order or
   wall-clock leak in the tracer itself. *)
let test_traced_daylong_double_run () =
  let module Daylong = Lazyctrl_experiments.Daylong in
  let module Tracer = Lazyctrl_trace.Tracer in
  let module Export = Lazyctrl_trace.Export in
  let record () =
    let tracer = Tracer.create () in
    ignore (Daylong.run ~tracer ~seed:9 ~n_flows:2_000 Daylong.Lazy_real_dynamic);
    (Export.to_jsonl (Tracer.events tracer),
     Export.to_chrome (Tracer.events tracer))
  in
  let j1, c1 = record () in
  let j2, c2 = record () in
  Alcotest.(check bool) "non-trivial trace" true (String.length j1 > 10_000);
  Alcotest.(check int) "same JSONL length" (String.length j1) (String.length j2);
  Alcotest.(check bool) "byte-identical JSONL" true (String.equal j1 j2);
  Alcotest.(check bool) "byte-identical Chrome export" true (String.equal c1 c2)

let () =
  Alcotest.run "determinism"
    [
      ( "double-run",
        [
          Alcotest.test_case "same seed twice" `Slow test_double_run;
          Alcotest.test_case "seed sensitivity" `Slow test_seed_sensitivity;
          Alcotest.test_case "chaos scenario twice" `Slow test_chaos_double_run;
          Alcotest.test_case "cluster chaos twice" `Slow
            test_cluster_chaos_double_run;
          Alcotest.test_case "traced daylong slice twice" `Slow
            test_traced_daylong_double_run;
        ] );
    ]
