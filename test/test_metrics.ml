(* Tests for lazyctrl.metrics: the evaluation-series recorder. *)

open Lazyctrl_sim
open Lazyctrl_metrics
module Stats = Lazyctrl_util.Stats

let check = Alcotest.check

let make () =
  let e = Engine.create () in
  (e, Recorder.create e ~horizon:(Time.of_hour 24) ())

let at e t f = ignore (Engine.schedule_at e ~at:t (fun () -> f ()))

let test_workload_bucketing () =
  let e, r = make () in
  (* Three requests in hour 1, one in hour 23. *)
  at e (Time.of_hour 1) (fun () ->
      Recorder.on_controller_request r;
      Recorder.on_controller_request r;
      Recorder.on_controller_request r);
  at e (Time.of_hour 23) (fun () -> Recorder.on_controller_request r);
  Engine.run e;
  check Alcotest.int "total" 4 (Recorder.total_requests r);
  let rates = Recorder.workload_rps r in
  check Alcotest.int "12 two-hour buckets" 12 (Array.length rates);
  check (Alcotest.float 1e-9) "bucket 0 rate" (3.0 /. 7200.0) rates.(0);
  check (Alcotest.float 1e-9) "bucket 11 rate" (1.0 /. 7200.0) rates.(11);
  check (Alcotest.float 1e-9) "quiet bucket" 0.0 rates.(5);
  check Alcotest.string "label" "0-2" (Recorder.bucket_label r 0);
  check Alcotest.string "late label" "22-24" (Recorder.bucket_label r 11)

let test_latency_series () =
  let e, r = make () in
  at e (Time.of_hour 1) (fun () ->
      Recorder.record_first_packet_latency r (Time.of_ms 10);
      (* 4 fast-path packets of the same flow, accounted in bulk. *)
      Recorder.record_fast_path_latency r ~n:4 (Time.of_us 500));
  Engine.run e;
  let all = Recorder.latency_ms_series r in
  (* Mean over 5 packets: (10 + 4*0.5)/5 = 2.4 ms. *)
  check (Alcotest.float 1e-9) "blended mean" 2.4 all.(0);
  let first = Recorder.first_latency_ms_series r in
  check (Alcotest.float 1e-9) "first-only mean" 10.0 first.(0);
  let summary = Recorder.first_latency_summary r in
  check Alcotest.int "one first sample" 1 (Stats.Online.count summary);
  check (Alcotest.float 1e-9) "summary mean" 10.0 (Stats.Online.mean summary)

(* Pin the bulk-accounting bucket attribution: all [n] fast-path packets
   of a flow land in the bucket of the recording (first-delivery) time,
   even when the recording happens right at a bucket boundary or the
   flow's tail would conceptually spill into the next bucket; past the
   horizon they clamp into the final bucket. *)
let test_fast_path_bucket_attribution () =
  let e, r = make () in
  (* 1 ns before the hour-2 boundary: all 10 packets in bucket 0. *)
  at e
    (Time.diff (Time.of_hour 2) (Time.of_ns 1))
    (fun () -> Recorder.record_fast_path_latency r ~n:10 (Time.of_ms 1));
  (* Exactly on the boundary: all 7 packets in bucket 1, none split. *)
  at e (Time.of_hour 2) (fun () ->
      Recorder.record_fast_path_latency r ~n:7 (Time.of_ms 3));
  Engine.run e;
  let means = Recorder.latency_ms_series r in
  check (Alcotest.float 1e-9) "bucket 0 holds the pre-boundary bulk" 1.0
    means.(0);
  check (Alcotest.float 1e-9) "bucket 1 holds the boundary bulk" 3.0 means.(1);
  check Alcotest.bool "bucket 2 untouched" true (Float.is_nan means.(2))

let test_fast_path_horizon_clamp () =
  let e, r = make () in
  (* A recording past the 24 h horizon clamps into the last bucket
     rather than being dropped or raising. *)
  at e (Time.of_hour 25) (fun () ->
      Recorder.record_fast_path_latency r ~n:5 (Time.of_ms 2));
  Engine.run e;
  let means = Recorder.latency_ms_series r in
  check (Alcotest.float 1e-9) "clamped into final bucket" 2.0
    means.(Recorder.n_buckets r - 1)

let test_updates_hourly () =
  let e, r = make () in
  at e (Time.of_min 30) (fun () -> Recorder.on_grouping_update r);
  at e (Time.of_min 45) (fun () -> Recorder.on_grouping_update r);
  at e (Time.of_hour 5) (fun () -> Recorder.on_grouping_update r);
  Engine.run e;
  let per_hour = Recorder.updates_per_hour r in
  check Alcotest.int "24 hourly buckets" 24 (Array.length per_hour);
  check Alcotest.int "hour 0" 2 per_hour.(0);
  check Alcotest.int "hour 5" 1 per_hour.(5);
  check Alcotest.int "total" 3 (Recorder.total_updates r)

let test_empty_buckets_are_nan () =
  let _, r = make () in
  let lat = Recorder.latency_ms_series r in
  check Alcotest.bool "nan when empty" true (Float.is_nan lat.(0));
  check Alcotest.int "n_buckets accessor" 12 (Recorder.n_buckets r)

let () =
  Alcotest.run "metrics"
    [
      ( "recorder",
        [
          Alcotest.test_case "workload bucketing" `Quick test_workload_bucketing;
          Alcotest.test_case "latency series" `Quick test_latency_series;
          Alcotest.test_case "fast-path bucket attribution" `Quick
            test_fast_path_bucket_attribution;
          Alcotest.test_case "fast-path horizon clamp" `Quick
            test_fast_path_horizon_clamp;
          Alcotest.test_case "hourly updates" `Quick test_updates_hourly;
          Alcotest.test_case "empty buckets" `Quick test_empty_buckets_are_nan;
        ] );
    ]
