(* Smoke tests for the bench driver executable: target listing and the
   --quick --json -> compare pipeline that CI's bench gate relies on.

   These shell out to the built bench/main.exe (declared as a dune dep
   of the test stanza), so they validate the real CLI surface, not a
   library re-export of it. *)

module Report = Lazyctrl_perf.Report
module Compare = Lazyctrl_perf.Compare

let check = Alcotest.check
let exe = Filename.concat (Filename.concat ".." "bench") "main.exe"

let read_file path = In_channel.with_open_text path In_channel.input_all

let run_capture cmd out =
  Sys.command (Printf.sprintf "%s > %s 2>&1" cmd (Filename.quote out))

(* Every registered target, in registration order.  Deleting or renaming
   a target is a deliberate act: update this list (and any committed
   bench baselines) together. *)
let expected_targets =
  [
    "table2"; "fig6a"; "fig6b"; "fig7"; "fig8"; "fig9"; "table1"; "chaos";
    "coldcache"; "storage"; "ablate-size"; "ablate-bloom"; "ablate-appendix";
    "micro"; "perf"; "perf-replay"; "hotpath";
  ]

let test_list () =
  let out = Filename.temp_file "bench_list" ".out" in
  Fun.protect
    ~finally:(fun () -> Sys.remove out)
    (fun () ->
      let rc = run_capture (exe ^ " --list") out in
      check Alcotest.int "--list exits 0" 0 rc;
      let lines =
        String.split_on_char '\n' (read_file out)
        |> List.filter (fun l -> String.length l > 0)
      in
      List.iter
        (fun t ->
          check Alcotest.bool (Printf.sprintf "lists %s" t) true
            (List.mem t lines))
        expected_targets)

let test_quick_json_roundtrip () =
  let json = Filename.temp_file "bench_smoke" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove json)
    (fun () ->
      let out = Filename.temp_file "bench_smoke" ".out" in
      Fun.protect
        ~finally:(fun () -> Sys.remove out)
        (fun () ->
          let rc =
            run_capture
              (Printf.sprintf "%s --quick perf-replay --json %s" exe
                 (Filename.quote json))
              out
          in
          check Alcotest.int "--quick perf-replay exits 0" 0 rc);
      match Report.load json with
      | Error e -> Alcotest.failf "bench JSON unreadable: %s" e
      | Ok results ->
          check Alcotest.bool "has packet-replay result" true
            (List.exists
               (fun (r : Lazyctrl_perf.Measure.result) ->
                 String.equal r.name "packet-replay" && r.ops_per_sec > 0.)
               results);
          (* The report must self-compare clean: this is exactly what
             `make bench-check` does against the committed baseline. *)
          let o = Compare.diff ~baseline:results ~current:results () in
          check Alcotest.bool "self-compare passes" true (Compare.passed o))

let () =
  Alcotest.run "bench"
    [
      ( "driver",
        [
          Alcotest.test_case "--list" `Quick test_list;
          Alcotest.test_case "--quick json + compare" `Slow
            test_quick_json_roundtrip;
        ] );
    ]
