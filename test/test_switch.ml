(* Tests for lazyctrl.switch: L-FIB, G-FIB, and the edge switch's Fig. 5
   forwarding routine, ARP cascade, designated-switch duties, and wheel
   keep-alives — all driven through a recording mock environment. *)

open Lazyctrl_net
open Lazyctrl_sim
open Lazyctrl_openflow
open Lazyctrl_switch

let check = Alcotest.check
let sid = Ids.Switch_id.of_int
let hid = Ids.Host_id.of_int
let tid = Ids.Tenant_id.of_int
let host ?(tenant = 0) i = Host.make ~id:(hid i) ~tenant:(tid tenant)

let key_of (h : Host.t) : Proto.host_key =
  { mac = h.mac; ip = h.ip; tenant = h.tenant }

(* --- Lfib -------------------------------------------------------------------- *)

let test_lfib_learn_lookup () =
  let l = Lfib.create () in
  let h = host 1 in
  check Alcotest.bool "new" true (Lfib.learn l h);
  check Alcotest.bool "already known" false (Lfib.learn l h);
  check Alcotest.int "size" 1 (Lfib.size l);
  check Alcotest.bool "by mac" true (Lfib.lookup_mac l h.Host.mac <> None);
  check Alcotest.bool "by ip" true (Lfib.lookup_ip l h.Host.ip <> None);
  check Alcotest.bool "mem" true (Lfib.mem_host l h.Host.id);
  check Alcotest.bool "forget" true (Lfib.forget l h.Host.id);
  check Alcotest.bool "gone" true (Lfib.lookup_mac l h.Host.mac = None);
  check Alcotest.bool "forget absent" false (Lfib.forget l h.Host.id)

let test_lfib_pending () =
  let l = Lfib.create () in
  ignore (Lfib.learn l (host 1));
  ignore (Lfib.learn l (host 2));
  ignore (Lfib.forget l (hid 1));
  check Alcotest.bool "has pending" true (Lfib.has_pending l);
  let added, removed = Lfib.take_pending l in
  check Alcotest.int "added" 2 (List.length added);
  check Alcotest.int "removed" 1 (List.length removed);
  check Alcotest.bool "drained" false (Lfib.has_pending l);
  let a2, r2 = Lfib.take_pending l in
  check Alcotest.int "empty now" 0 (List.length a2 + List.length r2)

let test_lfib_tenants () =
  let l = Lfib.create () in
  ignore (Lfib.learn l (host ~tenant:1 1));
  ignore (Lfib.learn l (host ~tenant:1 2));
  ignore (Lfib.learn l (host ~tenant:2 3));
  check Alcotest.int "tenants" 2 (List.length (Lfib.local_tenants l));
  check Alcotest.int "tenant hosts" 2 (List.length (Lfib.hosts_of_tenant l (tid 1)));
  check Alcotest.int "all keys" 3 (List.length (Lfib.all_keys l))

let test_lfib_bloom () =
  let l = Lfib.create () in
  ignore (Lfib.learn l (host 1));
  ignore (Lfib.learn l (host 2));
  let b = Lfib.to_bloom l in
  check Alcotest.bool "mac key" true
    (Lazyctrl_bloom.Bloom.mem b (Proto.mac_key (host 1).Host.mac));
  check Alcotest.bool "ip key" true
    (Lazyctrl_bloom.Bloom.mem b (Proto.ip_key (host 2).Host.ip))

(* --- Gfib -------------------------------------------------------------------- *)

let test_gfib_set_and_query () =
  let g = Gfib.create () in
  Gfib.set_peer g (sid 1) [ key_of (host 1); key_of (host 2) ];
  Gfib.set_peer g (sid 2) [ key_of (host 3) ];
  check Alcotest.int "peers" 2 (Gfib.n_peers g);
  check (Alcotest.list Alcotest.int) "candidates by mac" [ 1 ]
    (List.map Ids.Switch_id.to_int (Gfib.candidates_mac g (host 1).Host.mac));
  check (Alcotest.list Alcotest.int) "candidates by ip" [ 2 ]
    (List.map Ids.Switch_id.to_int (Gfib.candidates_ip g (host 3).Host.ip));
  check (Alcotest.list Alcotest.int) "absent key" []
    (List.map Ids.Switch_id.to_int (Gfib.candidates_mac g (host 99).Host.mac))

let test_gfib_advert_lifecycle () =
  let g = Gfib.create () in
  Gfib.apply_advert g (sid 1) ~added:[ key_of (host 1) ] ~removed:[];
  check Alcotest.int "peer created on demand" 1 (Gfib.n_peers g);
  check Alcotest.bool "added" true (Gfib.candidates_mac g (host 1).Host.mac = [ sid 1 ]);
  Gfib.apply_advert g (sid 1) ~added:[] ~removed:[ key_of (host 1) ];
  check Alcotest.bool "removed" true (Gfib.candidates_mac g (host 1).Host.mac = []);
  Gfib.set_peer g (sid 1) [ key_of (host 2) ];
  check Alcotest.bool "full replace drops old" true
    (Gfib.candidates_mac g (host 1).Host.mac = []);
  Gfib.drop_peer g (sid 1);
  check Alcotest.int "dropped" 0 (Gfib.n_peers g)

let test_gfib_storage () =
  let g = Gfib.create ~bits_per_entry:128 ~expected_hosts_per_switch:64 () in
  Gfib.set_peer g (sid 1) [];
  (* 128 bits x 2 keys x 64 hosts = 16384 bits = 2048 bytes. *)
  check Alcotest.int "2048 bytes per peer" 2048 (Gfib.storage_bytes g)

(* --- Edge switch with a recording environment --------------------------------- *)

type recorded = {
  engine : Engine.t;
  to_controller : Edge_switch.msg list ref;
  to_peers : (Ids.Switch_id.t * Edge_switch.msg) list ref;
  to_underlay : Packet.t list ref;
  to_hosts : (Host.t * Packet.t) list ref;
}

let mock_env () =
  let engine = Engine.create () in
  let to_controller = ref [] in
  let to_peers = ref [] in
  let to_underlay = ref [] in
  let to_hosts = ref [] in
  let env =
    {
      Edge_switch.engine;
      send_controller =
        (fun m ->
          to_controller := m :: !to_controller;
          true);
      send_peer = (fun p m -> to_peers := (p, m) :: !to_peers);
      send_underlay = (fun p -> to_underlay := p :: !to_underlay);
      deliver_local = (fun h p -> to_hosts := (h, p) :: !to_hosts);
      underlay_ip_of = (fun sw -> Ipv4.of_switch_id (Ids.Switch_id.to_int sw));
    }
  in
  (env, { engine; to_controller; to_peers; to_underlay; to_hosts })

let group_config ?(members = [ sid 0; sid 1; sid 2 ]) ?(designated = sid 1) () =
  {
    Proto.group = Ids.Group_id.of_int 0;
    members;
    designated;
    backups = [];
    sync_period = Time.of_sec 30;
    keepalive_period = Time.of_sec 5;
  }

let make_switch ?(self = 0) ?(config = Edge_switch.default_config) () =
  let env, rec_ = mock_env () in
  (Edge_switch.create env config ~self:(sid self), rec_)

let data_pkt ~src ~dst = Packet.data ~src ~dst ~length:100 ()

let extensions msgs =
  List.filter_map (function Message.Extension e -> Some e | _ -> None) msgs

(* Strip the reliable-transport framing from a recorded message list: drop
   acks and dedup retransmitted copies by (epoch, seq). *)
let unwrap msgs =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (function
      | Message.Extension (Proto.Ack _) -> None
      | Message.Extension (Proto.Seq { epoch; seq; payload }) ->
          if Hashtbl.mem seen (epoch, seq) then None
          else begin
            Hashtbl.add seen (epoch, seq) ();
            Some payload
          end
      | m -> Some m)
    msgs

let unwrap_peers entries =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun (to_, m) ->
      match m with
      | Message.Extension (Proto.Ack _) -> None
      | Message.Extension (Proto.Seq { epoch; seq; payload }) ->
          if Hashtbl.mem seen (to_, epoch, seq) then None
          else begin
            Hashtbl.add seen (to_, epoch, seq) ();
            Some (to_, payload)
          end
      | m -> Some (to_, m))
    entries

let test_fig5_lfib_local_delivery () =
  let sw, r = make_switch () in
  let h1 = host 1 and h2 = host 2 in
  Edge_switch.attach_host sw h1;
  Edge_switch.attach_host sw h2;
  Edge_switch.handle_from_host sw h1 (data_pkt ~src:h1 ~dst:h2);
  (match !(r.to_hosts) with
  | [ (to_, _) ] -> check Alcotest.bool "delivered to h2" true (Host.equal to_ h2)
  | _ -> Alcotest.fail "expected one local delivery");
  let s = Edge_switch.stats sw in
  check Alcotest.int "lfib handled" 1 s.Edge_switch.lfib_handled;
  check Alcotest.int "no punts" 0 s.Edge_switch.punted

let test_fig5_gfib_encap () =
  let sw, r = make_switch () in
  let h1 = host 1 and h2 = host 2 in
  Edge_switch.attach_host sw h1;
  Edge_switch.handle_peer_message sw ~from:(sid 1)
    (Message.Extension
       (Proto.Lfib_advert
          { origin = sid 2; added = [ key_of h2 ]; removed = []; full = true }));
  Edge_switch.handle_from_host sw h1 (data_pkt ~src:h1 ~dst:h2);
  (match !(r.to_underlay) with
  | [ Packet.Encap { outer_dst; _ } ] ->
      check Alcotest.string "tunnelled to sw2" "172.16.0.2" (Ipv4.to_string outer_dst)
  | _ -> Alcotest.fail "expected one encapsulated frame");
  check Alcotest.int "gfib handled" 1 (Edge_switch.stats sw).Edge_switch.gfib_handled

let test_fig5_flow_table_precedence () =
  let sw, r = make_switch () in
  let h1 = host 1 and h2 = host 2 in
  Edge_switch.attach_host sw h1;
  Edge_switch.attach_host sw h2;
  (* An installed rule must shadow the L-FIB (Fig. 5 checks the flow table
     first). *)
  Edge_switch.handle_controller_message sw
    (Message.Flow_mod
       (Message.Add
          {
            Flow_table.priority = 10;
            ofmatch = Ofmatch.exact_pair ~src:h1.Host.mac ~dst:h2.Host.mac;
            actions = [ Action.Drop ];
            idle_timeout = None;
            hard_timeout = None;
            cookie = 0;
          }));
  Edge_switch.handle_from_host sw h1 (data_pkt ~src:h1 ~dst:h2);
  check Alcotest.int "dropped, not delivered" 0 (List.length !(r.to_hosts));
  check Alcotest.int "flow table handled" 1
    (Edge_switch.stats sw).Edge_switch.flow_table_handled

let test_fig5_punt_unknown () =
  let sw, r = make_switch () in
  let h1 = host 1 in
  Edge_switch.attach_host sw h1;
  Edge_switch.handle_from_host sw h1 (data_pkt ~src:h1 ~dst:(host 9));
  (match !(r.to_controller) with
  | [ Message.Packet_in { reason = Message.No_match; _ } ] -> ()
  | _ -> Alcotest.fail "expected a Packet_in");
  check Alcotest.int "punted" 1 (Edge_switch.stats sw).Edge_switch.punted

let test_fig5_decap_delivery_and_fp_drop () =
  let sw, r = make_switch () in
  let h1 = host 1 in
  Edge_switch.attach_host sw h1;
  let eth_known = Packet.eth_of (data_pkt ~src:(host 5) ~dst:h1) in
  Edge_switch.handle_underlay sw
    (Packet.encap ~outer_src:(Ipv4.of_switch_id 3) ~outer_dst:(Ipv4.of_switch_id 0)
       eth_known);
  check Alcotest.int "decap delivered" 1 (List.length !(r.to_hosts));
  (* A frame for an unknown MAC is a Bloom false positive: dropped. *)
  let eth_unknown = Packet.eth_of (data_pkt ~src:(host 5) ~dst:(host 9)) in
  Edge_switch.handle_underlay sw
    (Packet.encap ~outer_src:(Ipv4.of_switch_id 3) ~outer_dst:(Ipv4.of_switch_id 0)
       eth_unknown);
  check Alcotest.int "fp dropped" 1 (Edge_switch.stats sw).Edge_switch.fp_drops;
  check Alcotest.int "still one delivery" 1 (List.length !(r.to_hosts))

let test_fp_report_option () =
  let config = { Edge_switch.default_config with Edge_switch.report_false_positives = true } in
  let sw, r = make_switch ~config () in
  let eth = Packet.eth_of (data_pkt ~src:(host 5) ~dst:(host 9)) in
  Edge_switch.handle_underlay sw
    (Packet.encap ~outer_src:(Ipv4.of_switch_id 3) ~outer_dst:(Ipv4.of_switch_id 0) eth);
  match extensions !(r.to_controller) with
  | [ Proto.False_positive { at; _ } ] ->
      check Alcotest.int "reported by self" 0 (Ids.Switch_id.to_int at)
  | _ -> Alcotest.fail "expected a false-positive report"

let test_arp_local_answer () =
  let sw, r = make_switch () in
  let h1 = host 1 and h2 = host 2 in
  Edge_switch.attach_host sw h1;
  Edge_switch.attach_host sw h2;
  Edge_switch.handle_from_host sw h1
    (Packet.arp_request ~sender:h1 ~target_ip:h2.Host.ip ());
  (match !(r.to_hosts) with
  | [ (to_, _) ] -> check Alcotest.bool "request to owner" true (Host.equal to_ h2)
  | _ -> Alcotest.fail "expected local ARP delivery");
  check Alcotest.int "stat" 1 (Edge_switch.stats sw).Edge_switch.arp_local_answered

let test_arp_gfib_candidates () =
  let sw, r = make_switch () in
  let h1 = host 1 and h2 = host 2 in
  Edge_switch.attach_host sw h1;
  Edge_switch.handle_peer_message sw ~from:(sid 1)
    (Message.Extension
       (Proto.Lfib_advert
          { origin = sid 2; added = [ key_of h2 ]; removed = []; full = true }));
  Edge_switch.handle_from_host sw h1
    (Packet.arp_request ~sender:h1 ~target_ip:h2.Host.ip ());
  check Alcotest.int "encap to candidate" 1 (List.length !(r.to_underlay))

let test_arp_escalation_to_designated () =
  let sw, r = make_switch () in
  Edge_switch.handle_controller_message sw
    (Message.Extension (Proto.Group_config (group_config ())));
  let h1 = host 1 in
  Edge_switch.attach_host sw h1;
  Edge_switch.handle_from_host sw h1
    (Packet.arp_request ~sender:h1 ~target_ip:(host 9).Host.ip ());
  let group_arps =
    List.filter
      (function _, Message.Extension (Proto.Group_arp _) -> true | _ -> false)
      !(r.to_peers)
  in
  (match group_arps with
  | [ (to_, _) ] -> check Alcotest.int "to designated" 1 (Ids.Switch_id.to_int to_)
  | _ -> Alcotest.fail "expected Group_arp to the designated switch");
  check Alcotest.int "stat" 1 (Edge_switch.stats sw).Edge_switch.arp_group_escalated

let test_designated_group_arp_broadcast_and_escalate () =
  (* Self is the designated switch: a Group_arp from a member must be
     broadcast to the other members and escalated when unknown. *)
  let sw, r = make_switch ~self:1 () in
  Edge_switch.handle_controller_message sw
    (Message.Extension (Proto.Group_config (group_config ())));
  ignore (List.length !(r.to_peers));
  r.to_peers := [];
  let request = Packet.arp_request ~sender:(host 5) ~target_ip:(host 9).Host.ip () in
  Edge_switch.handle_peer_message sw ~from:(sid 0)
    (Message.Extension (Proto.Group_arp { origin = sid 0; packet = request }));
  let broadcasts =
    List.filter
      (function _, Message.Extension (Proto.Arp_broadcast _) -> true | _ -> false)
      !(r.to_peers)
  in
  (* Members are {0,1,2}; origin 0 and self 1 excluded -> only 2. *)
  (match broadcasts with
  | [ (to_, _) ] -> check Alcotest.int "broadcast to sw2" 2 (Ids.Switch_id.to_int to_)
  | _ -> Alcotest.fail "expected one Arp_broadcast");
  match extensions !(r.to_controller) with
  | [ Proto.Arp_escalate { origin; _ } ] ->
      check Alcotest.int "escalated for origin" 0 (Ids.Switch_id.to_int origin)
  | _ -> Alcotest.fail "expected escalation to controller"

let test_adoption_sends_full_advert () =
  let sw, r = make_switch () in
  Edge_switch.attach_host sw (host 1);
  Edge_switch.handle_controller_message sw
    (Message.Extension (Proto.Group_config (group_config ())));
  let adverts =
    List.filter_map
      (function
        | to_, Message.Extension (Proto.Lfib_advert d) -> Some (to_, d)
        | _ -> None)
      (unwrap_peers !(r.to_peers))
  in
  match adverts with
  | [ (to_, d) ] ->
      check Alcotest.int "to designated" 1 (Ids.Switch_id.to_int to_);
      check Alcotest.bool "full sync" true d.Proto.full;
      check Alcotest.int "whole table" 1 (List.length d.Proto.added)
  | _ -> Alcotest.fail "expected one full advert"

let test_designated_relays_adverts () =
  let sw, r = make_switch ~self:1 () in
  Edge_switch.handle_controller_message sw
    (Message.Extension (Proto.Group_config (group_config ())));
  r.to_peers := [];
  let d = { Proto.origin = sid 0; added = [ key_of (host 7) ]; removed = []; full = false } in
  Edge_switch.handle_peer_message sw ~from:(sid 0)
    (Message.Extension (Proto.Lfib_advert d));
  (* Relayed to member 2 (not origin 0, not self 1), applied to own G-FIB. *)
  (match unwrap_peers !(r.to_peers) with
  | [ (to_, Message.Extension (Proto.Lfib_advert _)) ] ->
      check Alcotest.int "relay target" 2 (Ids.Switch_id.to_int to_)
  | _ -> Alcotest.fail "expected one relayed advert");
  check Alcotest.bool "applied locally" true
    (Gfib.candidates_mac (Edge_switch.gfib sw) (host 7).Host.mac = [ sid 0 ]);
  (* A relayed copy arriving at a non-designated member is not re-relayed. *)
  let sw2, r2 = make_switch ~self:2 () in
  Edge_switch.handle_controller_message sw2
    (Message.Extension (Proto.Group_config (group_config ())));
  r2.to_peers := [];
  Edge_switch.handle_peer_message sw2 ~from:(sid 1)
    (Message.Extension (Proto.Lfib_advert d));
  check Alcotest.int "no re-relay" 0 (List.length (unwrap_peers !(r2.to_peers)))

let test_state_report_cycle () =
  let sw, r = make_switch ~self:1 () in
  Edge_switch.handle_controller_message sw
    (Message.Extension (Proto.Group_config (group_config ())));
  (* Drain the adoption-time self-advert from the buffer. *)
  Edge_switch.flush_report sw;
  r.to_controller := [];
  (* Buffer a member advert and a member intensity report, then flush. *)
  Edge_switch.handle_peer_message sw ~from:(sid 0)
    (Message.Extension
       (Proto.Lfib_advert
          { origin = sid 0; added = [ key_of (host 3) ]; removed = []; full = false }));
  Edge_switch.handle_peer_message sw ~from:(sid 0)
    (Message.Extension (Proto.Member_report { origin = sid 0; intensity = [ (sid 2, 5) ] }));
  Edge_switch.flush_report sw;
  match extensions (unwrap !(r.to_controller)) with
  | [ Proto.State_report { deltas; intensity; _ } ] ->
      check Alcotest.int "delta buffered" 1 (List.length deltas);
      (match intensity with
      | [ (a, b, 5) ] ->
          check Alcotest.bool "pair normalized" true
            (Ids.Switch_id.to_int a = 0 && Ids.Switch_id.to_int b = 2)
      | _ -> Alcotest.fail "expected one intensity pair")
  | _ -> Alcotest.fail "expected one state report"

let test_member_report_to_designated () =
  let sw, r = make_switch ~self:0 () in
  Edge_switch.handle_controller_message sw
    (Message.Extension (Proto.Group_config (group_config ())));
  let h1 = host 1 and h2 = host 2 in
  Edge_switch.attach_host sw h1;
  (* Learn h2 behind sw2, send a data flow so intensity accrues. *)
  Edge_switch.handle_peer_message sw ~from:(sid 1)
    (Message.Extension
       (Proto.Lfib_advert
          { origin = sid 2; added = [ key_of h2 ]; removed = []; full = true }));
  Edge_switch.handle_from_host sw h1 (data_pkt ~src:h1 ~dst:h2);
  r.to_peers := [];
  Edge_switch.flush_report sw;
  let reports =
    List.filter_map
      (function
        | to_, Message.Extension (Proto.Member_report { intensity; _ }) ->
            Some (to_, intensity)
        | _ -> None)
      (unwrap_peers !(r.to_peers))
  in
  match reports with
  | [ (to_, [ (remote, 1) ]) ] ->
      check Alcotest.int "to designated" 1 (Ids.Switch_id.to_int to_);
      check Alcotest.int "remote counted" 2 (Ids.Switch_id.to_int remote)
  | _ -> Alcotest.fail "expected one member report with one pair"

let test_echo_reply () =
  let sw, r = make_switch () in
  Edge_switch.handle_controller_message sw (Message.Echo_request 42);
  match !(r.to_controller) with
  | [ Message.Echo_reply 42 ] -> ()
  | _ -> Alcotest.fail "expected echo reply"

let test_keepalives_and_alarm () =
  let sw, r = make_switch ~self:0 () in
  Edge_switch.handle_controller_message sw
    (Message.Extension (Proto.Group_config (group_config ())));
  (* Run long enough for keep-alive ticks; no peer sends any back, so both
     ring alarms must fire. *)
  Engine.run ~until:(Time.of_sec 60) r.engine;
  check Alcotest.bool "keepalives sent" true
    ((Edge_switch.stats sw).Edge_switch.keepalives_sent > 10);
  let alarms =
    List.filter_map
      (function Proto.Ring_alarm { missing; direction; _ } -> Some (missing, direction) | _ -> None)
      (extensions (unwrap !(r.to_controller)))
  in
  check Alcotest.int "two alarms (both neighbours)" 2 (List.length alarms);
  (* Feeding a keep-alive resets the upstream loss. *)
  Edge_switch.handle_peer_message sw ~from:(sid 2)
    (Message.Extension (Proto.Keepalive { from = sid 2 }))

let test_power_off_on () =
  let sw, r = make_switch () in
  let h1 = host 1 and h2 = host 2 in
  Edge_switch.attach_host sw h1;
  Edge_switch.attach_host sw h2;
  Edge_switch.handle_controller_message sw
    (Message.Extension (Proto.Group_config (group_config ())));
  Edge_switch.set_up sw false;
  check Alcotest.bool "down" false (Edge_switch.is_up sw);
  check Alcotest.bool "group cleared" true (Edge_switch.group sw = None);
  r.to_hosts := [];
  Edge_switch.handle_from_host sw h1 (data_pkt ~src:h1 ~dst:h2);
  check Alcotest.int "dead switch drops" 0 (List.length !(r.to_hosts));
  Edge_switch.set_up sw true;
  Edge_switch.handle_from_host sw h1 (data_pkt ~src:h1 ~dst:h2);
  check Alcotest.int "alive again" 1 (List.length !(r.to_hosts))

let test_control_relay () =
  let sw, r = make_switch () in
  Edge_switch.set_control_relay sw (Some (sid 2));
  let h1 = host 1 in
  Edge_switch.attach_host sw h1;
  Edge_switch.handle_from_host sw h1 (data_pkt ~src:h1 ~dst:(host 9));
  check Alcotest.int "nothing direct" 0 (List.length !(r.to_controller));
  (match !(r.to_peers) with
  | [ (to_, Message.Extension (Proto.Relay { origin; boxed = Message.Packet_in _ })) ] ->
      check Alcotest.int "via neighbour" 2 (Ids.Switch_id.to_int to_);
      check Alcotest.int "origin preserved" 0 (Ids.Switch_id.to_int origin)
  | _ -> Alcotest.fail "expected a boxed relay");
  (* The healthy neighbour forwards relays up its own control link. *)
  let sw2, r2 = make_switch ~self:2 () in
  let relayed =
    Message.Extension
      (Proto.Relay { origin = sid 0; boxed = Message.Echo_reply 1 })
  in
  Edge_switch.handle_peer_message sw2 ~from:(sid 0) relayed;
  check Alcotest.int "forwarded" 1 (List.length !(r2.to_controller))

let test_group_sync_rebuilds () =
  let sw, r = make_switch ~self:1 () in
  Edge_switch.handle_controller_message sw
    (Message.Extension (Proto.Group_config (group_config ())));
  r.to_peers := [];
  Edge_switch.handle_controller_message sw
    (Message.Extension
       (Proto.Group_sync { lfibs = [ (sid 0, [ key_of (host 4) ]); (sid 2, []) ] }));
  check Alcotest.bool "gfib rebuilt" true
    (Gfib.candidates_mac (Edge_switch.gfib sw) (host 4).Host.mac = [ sid 0 ]);
  (* Both rows re-broadcast as full adverts to the other members. *)
  let adverts =
    List.filter
      (function _, Message.Extension (Proto.Lfib_advert { full = true; _ }) -> true | _ -> false)
      (unwrap_peers !(r.to_peers))
  in
  check Alcotest.bool "rebroadcast" true (List.length adverts >= 2)

let () =
  Alcotest.run "switch"
    [
      ( "lfib",
        [
          Alcotest.test_case "learn/lookup/forget" `Quick test_lfib_learn_lookup;
          Alcotest.test_case "pending deltas" `Quick test_lfib_pending;
          Alcotest.test_case "tenants" `Quick test_lfib_tenants;
          Alcotest.test_case "bloom projection" `Quick test_lfib_bloom;
        ] );
      ( "gfib",
        [
          Alcotest.test_case "set and query" `Quick test_gfib_set_and_query;
          Alcotest.test_case "advert lifecycle" `Quick test_gfib_advert_lifecycle;
          Alcotest.test_case "storage geometry" `Quick test_gfib_storage;
        ] );
      ( "datapath (Fig. 5)",
        [
          Alcotest.test_case "L-FIB local delivery" `Quick test_fig5_lfib_local_delivery;
          Alcotest.test_case "G-FIB encap" `Quick test_fig5_gfib_encap;
          Alcotest.test_case "flow table precedence" `Quick test_fig5_flow_table_precedence;
          Alcotest.test_case "punt unknown" `Quick test_fig5_punt_unknown;
          Alcotest.test_case "decap and FP drop" `Quick test_fig5_decap_delivery_and_fp_drop;
          Alcotest.test_case "FP report option" `Quick test_fp_report_option;
        ] );
      ( "arp cascade",
        [
          Alcotest.test_case "local answer" `Quick test_arp_local_answer;
          Alcotest.test_case "G-FIB candidates" `Quick test_arp_gfib_candidates;
          Alcotest.test_case "escalate to designated" `Quick test_arp_escalation_to_designated;
          Alcotest.test_case "designated broadcast+escalate" `Quick
            test_designated_group_arp_broadcast_and_escalate;
        ] );
      ( "state dissemination",
        [
          Alcotest.test_case "full advert on adoption" `Quick test_adoption_sends_full_advert;
          Alcotest.test_case "designated relays" `Quick test_designated_relays_adverts;
          Alcotest.test_case "state report cycle" `Quick test_state_report_cycle;
          Alcotest.test_case "member report" `Quick test_member_report_to_designated;
          Alcotest.test_case "group sync" `Quick test_group_sync_rebuilds;
        ] );
      ( "liveness and failover",
        [
          Alcotest.test_case "echo reply" `Quick test_echo_reply;
          Alcotest.test_case "keepalives and alarms" `Quick test_keepalives_and_alarm;
          Alcotest.test_case "power off/on" `Quick test_power_off_on;
          Alcotest.test_case "control relay" `Quick test_control_relay;
        ] );
    ]
