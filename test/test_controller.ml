(* Tests for lazyctrl.controller: C-LIB, failure inference and monitor,
   and the central controller driven through a recording environment. *)

open Lazyctrl_net
open Lazyctrl_sim
open Lazyctrl_graph
open Lazyctrl_openflow
open Lazyctrl_switch
open Lazyctrl_controller
module Prng = Lazyctrl_util.Prng

let check = Alcotest.check
let sid = Ids.Switch_id.of_int
let hid = Ids.Host_id.of_int
let tid = Ids.Tenant_id.of_int
let host ?(tenant = 0) i = Host.make ~id:(hid i) ~tenant:(tid tenant)
let key_of (h : Host.t) : Proto.host_key = { mac = h.mac; ip = h.ip; tenant = h.tenant }

(* --- Clib -------------------------------------------------------------------- *)

let test_clib_apply_and_locate () =
  let c = Clib.create () in
  Clib.apply_delta c
    { Proto.origin = sid 1; added = [ key_of (host 1); key_of (host 2) ]; removed = []; full = false };
  check Alcotest.int "entries" 2 (Clib.n_entries c);
  (match Clib.locate_mac c (host 1).Host.mac with
  | Some sw -> check Alcotest.int "located" 1 (Ids.Switch_id.to_int sw)
  | None -> Alcotest.fail "mac not found");
  (match Clib.locate_ip c (host 2).Host.ip with
  | Some (sw, key) ->
      check Alcotest.int "ip located" 1 (Ids.Switch_id.to_int sw);
      check Alcotest.bool "key matches" true (Mac.equal key.Proto.mac (host 2).Host.mac)
  | None -> Alcotest.fail "ip not found");
  check Alcotest.bool "absent" true (Clib.locate_mac c (host 9).Host.mac = None)

let test_clib_removal () =
  let c = Clib.create () in
  Clib.apply_delta c
    { Proto.origin = sid 1; added = [ key_of (host 1) ]; removed = []; full = false };
  Clib.apply_delta c
    { Proto.origin = sid 1; added = []; removed = [ key_of (host 1) ]; full = false };
  check Alcotest.int "empty" 0 (Clib.n_entries c);
  check Alcotest.bool "gone" true (Clib.locate_mac c (host 1).Host.mac = None)

let test_clib_migration () =
  let c = Clib.create () in
  Clib.apply_delta c
    { Proto.origin = sid 1; added = [ key_of (host 1) ]; removed = []; full = false };
  (* Host shows up behind a different switch: newest location wins. *)
  Clib.apply_delta c
    { Proto.origin = sid 2; added = [ key_of (host 1) ]; removed = []; full = false };
  (match Clib.locate_mac c (host 1).Host.mac with
  | Some sw -> check Alcotest.int "moved" 2 (Ids.Switch_id.to_int sw)
  | None -> Alcotest.fail "lost during migration");
  check Alcotest.int "no duplicate" 1 (Clib.n_entries c);
  check Alcotest.int "old row empty" 0 (List.length (Clib.row c (sid 1)));
  (* A stale removal from the old switch must not erase the new entry. *)
  Clib.apply_delta c
    { Proto.origin = sid 1; added = []; removed = [ key_of (host 1) ]; full = false };
  check Alcotest.bool "still present" true (Clib.locate_mac c (host 1).Host.mac <> None)

let test_clib_full_row () =
  let c = Clib.create () in
  Clib.set_row c (sid 1) [ key_of (host 1); key_of (host 2) ];
  Clib.apply_delta c
    { Proto.origin = sid 1; added = [ key_of (host 3) ]; removed = []; full = true };
  (* A full delta replaces the whole row. *)
  check Alcotest.int "row replaced" 1 (List.length (Clib.row c (sid 1)));
  check Alcotest.bool "old entry gone" true (Clib.locate_mac c (host 1).Host.mac = None)

let test_clib_tenants () =
  let c = Clib.create () in
  Clib.set_row c (sid 1) [ key_of (host ~tenant:1 1) ];
  Clib.set_row c (sid 2) [ key_of (host ~tenant:1 2); key_of (host ~tenant:2 3) ];
  check (Alcotest.list Alcotest.int) "tenant presence" [ 1; 2 ]
    (List.map Ids.Switch_id.to_int (Clib.switches_of_tenant c (tid 1)));
  check (Alcotest.list Alcotest.int) "other tenant" [ 2 ]
    (List.map Ids.Switch_id.to_int (Clib.switches_of_tenant c (tid 2)));
  match Clib.tenant_of_mac c (host ~tenant:2 3).Host.mac with
  | Some t -> check Alcotest.int "tenant of mac" 2 (Ids.Tenant_id.to_int t)
  | None -> Alcotest.fail "tenant lookup failed"

(* --- Failover inference (Table I, exhaustive) ----------------------------------- *)

let verdict_t = Alcotest.testable Failover.pp_verdict Failover.verdict_equal

(* All 2^3 single-spoke observation patterns with the exact Table I
   verdict, including the three combinations the paper's table leaves
   unlabelled (Ambiguous).  Columns: keep-alive lost upstream, lost
   downstream, echo lost. *)
let table1 =
  [
    (false, false, false, Failover.Healthy);
    (false, false, true, Failover.Control_link_failure);
    (true, false, false, Failover.Peer_link_up_failure);
    (false, true, false, Failover.Peer_link_down_failure);
    (true, true, true, Failover.Switch_failure);
    (true, true, false, Failover.Ambiguous);
    (true, false, true, Failover.Ambiguous);
    (false, true, true, Failover.Ambiguous);
  ]

let obs ?(peer = false) ?(master = false) up_lost down_lost ctrl_lost =
  {
    Failover.up_lost;
    down_lost;
    ctrl_lost;
    peer_answering = peer;
    master_silent = master;
  }

let test_infer_table1 () =
  check Alcotest.int "all 8 patterns covered" 8
    (List.length (List.sort_uniq compare (List.map (fun (u, d, c, _) -> (u, d, c)) table1)));
  List.iter
    (fun (up_lost, down_lost, ctrl_lost, expected) ->
      let label =
        Printf.sprintf "up_lost=%b down_lost=%b ctrl_lost=%b" up_lost down_lost ctrl_lost
      in
      check verdict_t label expected
        (Failover.infer (obs up_lost down_lost ctrl_lost)))
    table1

(* The cluster extension, exhaustive over the two new axes: a second
   controller spoke still answering (peer_answering) splits a lost
   master echo into controller-death vs control-link-death — including
   the patterns the single-spoke table could only call Ambiguous (or,
   for the triple loss, Switch_failure) — while every observation
   without that evidence reduces to the 3-bit table above. *)
let test_infer_second_spoke () =
  let bools = [ false; true ] in
  List.iter
    (fun u ->
      List.iter
        (fun d ->
          List.iter
            (fun c ->
              List.iter
                (fun p ->
                  List.iter
                    (fun m ->
                      let base =
                        List.find_map
                          (fun (u', d', c', v) ->
                            if u = u' && d = d' && c = c' then Some v else None)
                          table1
                        |> Option.get
                      in
                      let expected =
                        if p && c then
                          if m then Failover.Controller_failure
                          else Failover.Control_link_failure
                        else base
                      in
                      let label =
                        Printf.sprintf "u=%b d=%b c=%b peer=%b master=%b" u d
                          c p m
                      in
                      check verdict_t label expected
                        (Failover.infer (obs ~peer:p ~master:m u d c)))
                    bools)
                bools)
            bools)
        bools)
    bools;
  (* The headline case the extension exists for: echo lost, switch
     provably alive, master silent on the coordination plane. *)
  check verdict_t "my controller died" Failover.Controller_failure
    (Failover.infer (obs ~peer:true ~master:true false false true));
  check verdict_t "only the control link died" Failover.Control_link_failure
    (Failover.infer (obs ~peer:true ~master:false true false true))

let test_monitor_echo_timeout () =
  let e = Engine.create () in
  let m = Failover.Monitor.create e ~echo_timeout:(Time.of_sec 10) in
  Failover.Monitor.register m (sid 1);
  Failover.Monitor.echo_sent m (sid 1);
  ignore (Engine.schedule e ~after:(Time.of_sec 5) (fun () -> ()));
  Engine.run e;
  check Alcotest.bool "not yet" true (Failover.Monitor.verdict m (sid 1) = Failover.Healthy);
  ignore (Engine.schedule e ~after:(Time.of_sec 6) (fun () -> ()));
  Engine.run e;
  check Alcotest.bool "timed out" true
    (Failover.Monitor.verdict m (sid 1) = Failover.Control_link_failure);
  Failover.Monitor.echo_received m (sid 1);
  check Alcotest.bool "recovered" true
    (Failover.Monitor.verdict m (sid 1) = Failover.Healthy)

let test_monitor_ring_alarms () =
  let e = Engine.create () in
  let m = Failover.Monitor.create e ~echo_timeout:(Time.of_sec 10) in
  Failover.Monitor.register m (sid 1);
  Failover.Monitor.ring_alarm m ~missing:(sid 1) ~direction:`Up;
  check Alcotest.bool "peer up" true
    (Failover.Monitor.verdict m (sid 1) = Failover.Peer_link_up_failure);
  Failover.Monitor.ring_alarm m ~missing:(sid 1) ~direction:`Down;
  check Alcotest.bool "ambiguous without ctrl" true
    (Failover.Monitor.verdict m (sid 1) = Failover.Ambiguous);
  check Alcotest.int "sweep finds it" 1 (List.length (Failover.Monitor.sweep m));
  Failover.Monitor.ring_recovered m (sid 1);
  check Alcotest.int "sweep clean" 0 (List.length (Failover.Monitor.sweep m));
  (* Alarms about unregistered switches are ignored. *)
  Failover.Monitor.ring_alarm m ~missing:(sid 9) ~direction:`Up

(* A switch migrating between controllers is unregistered at the old
   master and registered at the new one. An echo pending from before the
   migration must not leak into the new registration, or every migration
   under load would read as a control-link failure. *)
let test_monitor_pending_across_migration () =
  let e = Engine.create () in
  let m = Failover.Monitor.create e ~echo_timeout:(Time.of_sec 10) in
  Failover.Monitor.register m (sid 1);
  Failover.Monitor.echo_sent m (sid 1);
  ignore (Engine.schedule e ~after:(Time.of_sec 6) (fun () -> ()));
  Engine.run e;
  Failover.Monitor.unregister m (sid 1);
  check Alcotest.bool "untracked while migrated" false
    (List.exists (Ids.Switch_id.equal (sid 1)) (Failover.Monitor.registered m));
  Failover.Monitor.register m (sid 1);
  ignore (Engine.schedule e ~after:(Time.of_sec 6) (fun () -> ()));
  Engine.run e;
  (* 12 s after the pre-migration echo: a leaked pending echo would have
     timed out by now. *)
  check verdict_t "fresh after migration" Failover.Healthy
    (Failover.Monitor.verdict m (sid 1));
  Failover.Monitor.echo_sent m (sid 1);
  ignore (Engine.schedule e ~after:(Time.of_sec 11) (fun () -> ()));
  Engine.run e;
  check verdict_t "new echo cycle still times out" Failover.Control_link_failure
    (Failover.Monitor.verdict m (sid 1))

(* The timeout is strict: a reply that would arrive exactly at
   [echo_timeout] is still on time, one tick later it is lost. And a
   re-sent echo while one is already pending must not restart the window
   (that would let a periodic echo timer mask a dead link forever). *)
let test_monitor_loss_exactly_at_timeout () =
  let e = Engine.create () in
  let m = Failover.Monitor.create e ~echo_timeout:(Time.of_sec 10) in
  Failover.Monitor.register m (sid 1);
  Failover.Monitor.echo_sent m (sid 1);
  ignore (Engine.schedule e ~after:(Time.of_sec 10) (fun () -> ()));
  Engine.run e;
  check verdict_t "exactly at the timeout is not yet lost" Failover.Healthy
    (Failover.Monitor.verdict m (sid 1));
  Failover.Monitor.echo_sent m (sid 1);
  ignore (Engine.schedule e ~after:(Time.of_us 1) (fun () -> ()));
  Engine.run e;
  check verdict_t "one tick past the timeout is" Failover.Control_link_failure
    (Failover.Monitor.verdict m (sid 1));
  Failover.Monitor.echo_received m (sid 1);
  check verdict_t "a reply clears it" Failover.Healthy
    (Failover.Monitor.verdict m (sid 1))

(* Evidence streams race in practice (ring alarms, peer-spoke replies and
   coordination silence arrive over independent channels); the verdict
   must depend on the evidence set, never on arrival order. *)
let test_monitor_verdict_order_independent () =
  let apply m sw = function
    | 0 -> Failover.Monitor.echo_sent m sw
    | 1 -> Failover.Monitor.peer_evidence m sw ~answering:true
    | _ -> Failover.Monitor.master_evidence m sw ~silent:true
  in
  let orders =
    [ [ 0; 1; 2 ]; [ 0; 2; 1 ]; [ 1; 0; 2 ]; [ 1; 2; 0 ]; [ 2; 0; 1 ]; [ 2; 1; 0 ] ]
  in
  List.iter
    (fun order ->
      let e = Engine.create () in
      let m = Failover.Monitor.create e ~echo_timeout:(Time.of_sec 10) in
      Failover.Monitor.register m (sid 1);
      List.iter (apply m (sid 1)) order;
      ignore (Engine.schedule e ~after:(Time.of_sec 11) (fun () -> ()));
      Engine.run e;
      check Alcotest.bool "same verdict for every arrival order" true
        (Failover.verdict_equal Failover.Controller_failure
           (Failover.Monitor.verdict m (sid 1))))
    orders

(* --- Controller ------------------------------------------------------------------ *)

type recorded = {
  engine : Engine.t;
  sent : (Ids.Switch_id.t * Controller.msg) list ref;
  reboots : Ids.Switch_id.t list ref;
  relays : (Ids.Switch_id.t * Ids.Switch_id.t option) list ref;
}

(* Strip the reliable-transport framing from a recorded (switch, message)
   list: drop acks and dedup retransmitted copies by (switch, epoch, seq). *)
let unwrap_sent entries =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun (sw, m) ->
      match m with
      | Message.Extension (Proto.Ack _) -> None
      | Message.Extension (Proto.Seq { epoch; seq; payload }) ->
          if Hashtbl.mem seen (sw, epoch, seq) then None
          else begin
            Hashtbl.add seen (sw, epoch, seq) ();
            Some (sw, payload)
          end
      | m -> Some (sw, m))
    entries

let make_controller ?(n_switches = 6) ?(config = Controller.default_config) () =
  let engine = Engine.create () in
  let sent = ref [] and reboots = ref [] and relays = ref [] in
  let env =
    {
      Controller.engine;
      send_switch = (fun sw m -> sent := (sw, m) :: !sent);
      reboot_switch = (fun sw -> reboots := sw :: !reboots);
      request_relay = (fun sw ~via -> relays := (sw, via) :: !relays);
      rng = Prng.create 9;
    }
  in
  (Controller.create env config ~n_switches, { engine; sent; reboots; relays })

(* Two 3-switch communities. *)
let intensity_6 () =
  Wgraph.of_edges ~n:6
    [ (0, 1, 10.0); (1, 2, 10.0); (0, 2, 10.0); (3, 4, 10.0); (4, 5, 10.0); (3, 5, 10.0); (0, 3, 0.2) ]

let config_small =
  { Controller.default_config with Controller.group_size_limit = 3 }

let test_bootstrap_pushes_groups () =
  let c, r = make_controller ~config:config_small () in
  Controller.bootstrap c ~intensity:(intensity_6 ());
  (match Controller.grouping c with
  | Some g ->
      check Alcotest.int "two groups" 2 (Lazyctrl_grouping.Grouping.n_groups g);
      check Alcotest.bool "communities intact" true
        (Lazyctrl_grouping.Grouping.same_group g (sid 0) (sid 1)
        && Lazyctrl_grouping.Grouping.same_group g (sid 3) (sid 5))
  | None -> Alcotest.fail "no grouping");
  let sent = unwrap_sent !(r.sent) in
  let configs =
    List.filter
      (function _, Message.Extension (Proto.Group_config _) -> true | _ -> false)
      sent
  in
  check Alcotest.int "config per switch" 6 (List.length configs);
  let syncs =
    List.filter
      (function _, Message.Extension (Proto.Group_sync _) -> true | _ -> false)
      sent
  in
  (* The C-LIB is empty at bootstrap, so no (clobbering) sync is sent;
     members introduce themselves with adoption-time full adverts. *)
  check Alcotest.int "no empty sync at bootstrap" 0 (List.length syncs);
  (match Controller.group_config_of c (sid 0) with
  | Some cfg ->
      check Alcotest.int "members" 3 (List.length cfg.Proto.members);
      check Alcotest.bool "designated is member" true
        (List.exists (Ids.Switch_id.equal cfg.Proto.designated) cfg.Proto.members)
  | None -> Alcotest.fail "no config for sw0")

let test_packet_in_installs_intergroup_rule () =
  let c, r = make_controller ~config:config_small () in
  Controller.bootstrap c ~intensity:(intensity_6 ());
  (* Teach the C-LIB where h2 lives. *)
  Controller.handle_message c ~from:(sid 3)
    (Message.Extension
       (Proto.State_report
          { group = Ids.Group_id.of_int 1;
            deltas = [ { Proto.origin = sid 4; added = [ key_of (host 2) ]; removed = []; full = false } ];
            intensity = [] }));
  r.sent := [];
  let pkt = Packet.data ~src:(host 1) ~dst:(host 2) ~length:10 () in
  Controller.handle_message c ~from:(sid 0)
    (Message.Packet_in
       { packet = pkt; reason = Message.No_match; buffer_id = Message.no_buffer });
  let to_sw0 = List.filter (fun (sw, _) -> Ids.Switch_id.equal sw (sid 0)) !(r.sent) in
  let flow_mods =
    List.filter (function _, Message.Flow_mod _ -> true | _ -> false) to_sw0
  in
  let packet_outs =
    List.filter_map
      (function _, Message.Packet_out { actions; _ } -> Some actions | _ -> None)
      to_sw0
  in
  check Alcotest.int "one rule" 1 (List.length flow_mods);
  (match packet_outs with
  | [ [ Action.Encap ip ] ] ->
      check Alcotest.string "encap to owner's switch" "172.16.0.4" (Ipv4.to_string ip)
  | _ -> Alcotest.fail "expected encap packet-out");
  let s = Controller.stats c in
  check Alcotest.int "request counted" 2 s.Controller.requests;
  check Alcotest.int "packet_in counted" 1 s.Controller.packet_ins

let test_packet_in_unknown_floods_tenant () =
  let c, r = make_controller ~config:config_small () in
  Controller.bootstrap c ~intensity:(intensity_6 ());
  (* Tenant 5 present on switches 1 and 4; destination unknown. *)
  Controller.handle_message c ~from:(sid 1)
    (Message.Extension
       (Proto.State_report
          { group = Ids.Group_id.of_int 0;
            deltas = [ { Proto.origin = sid 1; added = [ key_of (host ~tenant:5 1) ]; removed = []; full = false };
                       { Proto.origin = sid 4; added = [ key_of (host ~tenant:5 3) ]; removed = []; full = false } ];
            intensity = [] }));
  r.sent := [];
  let pkt = Packet.data ~src:(host ~tenant:5 1) ~dst:(host ~tenant:5 99) ~length:10 () in
  Controller.handle_message c ~from:(sid 1)
    (Message.Packet_in
       { packet = pkt; reason = Message.No_match; buffer_id = Message.no_buffer });
  (* Flood_local Packet_out to tenant switches except the ingress. *)
  let floods =
    List.filter_map
      (function
        | sw, Message.Packet_out { actions = [ Action.Flood_local ]; _ } -> Some sw
        | _ -> None)
      !(r.sent)
  in
  check (Alcotest.list Alcotest.int) "tenant-scoped flood" [ 4 ]
    (List.map Ids.Switch_id.to_int floods);
  check Alcotest.int "flood counted" 1 (Controller.stats c).Controller.floods

let test_arp_escalation_relay () =
  let c, r = make_controller ~config:config_small () in
  Controller.bootstrap c ~intensity:(intensity_6 ());
  (* Target host known to live behind sw4 (group 1). *)
  Controller.handle_message c ~from:(sid 3)
    (Message.Extension
       (Proto.State_report
          { group = Ids.Group_id.of_int 1;
            deltas = [ { Proto.origin = sid 4; added = [ key_of (host 2) ]; removed = []; full = false } ];
            intensity = [] }));
  r.sent := [];
  let request = Packet.arp_request ~sender:(host 1) ~target_ip:(host 2).Host.ip () in
  Controller.handle_message c ~from:(sid 0)
    (Message.Extension (Proto.Arp_escalate { origin = sid 0; packet = request }));
  (* The C-LIB pinpoints the owner: the request is handed straight to its
     switch for a local flood (robust even when the escalation came from
     inside the owner's own group). *)
  let handed =
    List.filter_map
      (function
        | sw, Message.Packet_out { actions = [ Action.Flood_local ]; _ } -> Some sw
        | _ -> None)
      !(r.sent)
  in
  check (Alcotest.list Alcotest.int) "handed to the owner's switch" [ 4 ]
    (List.map Ids.Switch_id.to_int handed);
  check Alcotest.int "escalation counted" 1
    (Controller.stats c).Controller.arp_escalations

let test_state_report_feeds_matrix () =
  let c, _ = make_controller ~config:config_small () in
  Controller.bootstrap c ~intensity:(intensity_6 ());
  Controller.handle_message c ~from:(sid 0)
    (Message.Extension
       (Proto.State_report
          { group = Ids.Group_id.of_int 0; deltas = [];
            intensity = [ (sid 0, sid 5, 42) ] }));
  let g = Controller.current_intensity c in
  check Alcotest.bool "pair recorded" true (Wgraph.edge_weight g 0 5 >= 42.0)

let test_relay_unwrapped () =
  let c, _ = make_controller ~config:config_small () in
  Controller.bootstrap c ~intensity:(intensity_6 ());
  let inner =
    Message.Extension
      (Proto.State_report
         { group = Ids.Group_id.of_int 0; deltas = [];
           intensity = [ (sid 1, sid 2, 7) ] })
  in
  Controller.handle_message c ~from:(sid 1)
    (Message.Extension (Proto.Relay { origin = sid 0; boxed = inner }));
  check Alcotest.int "inner handled" 1 (Controller.stats c).Controller.state_reports

let test_ring_alarm_and_failover_actions () =
  let config =
    { config_small with Controller.daemon_period = Time.of_sec 5; echo_timeout = Time.of_sec 10 }
  in
  let c, r = make_controller ~config () in
  Controller.bootstrap c ~intensity:(intensity_6 ());
  let handled = ref [] in
  Controller.set_failover_hook c (fun sw v -> handled := (sw, v) :: !handled);
  (* A stable single-direction loss is a peer-link failure. *)
  Controller.handle_message c ~from:(sid 1)
    (Message.Extension
       (Proto.Ring_alarm { observer = sid 1; missing = sid 0; direction = `Up }));
  Engine.run ~until:(Time.of_sec 6) r.engine;
  (match !handled with
  | [ (sw, Failover.Peer_link_up_failure) ] ->
      check Alcotest.int "about sw0" 0 (Ids.Switch_id.to_int sw)
  | _ -> Alcotest.fail "expected peer-link verdict at the daemon tick");
  check Alcotest.int "alarm counted" 1 (Controller.stats c).Controller.ring_alarms

let test_echo_timeout_triggers_relay () =
  let config =
    {
      config_small with
      Controller.daemon_period = Time.of_sec 5;
      echo_period = Time.of_sec 5;
      echo_timeout = Time.of_sec 8;
    }
  in
  let c, r = make_controller ~config () in
  Controller.bootstrap c ~intensity:(intensity_6 ());
  (* Let echoes go unanswered except for switches other than 2. *)
  let answer_all_except sw_dead =
    List.iter
      (fun (sw, m) ->
        match m with
        | Message.Echo_request n when not (Ids.Switch_id.equal sw sw_dead) ->
            Controller.handle_message c ~from:sw (Message.Echo_reply n)
        | _ -> ())
      !(r.sent);
    r.sent := []
  in
  Engine.run ~until:(Time.of_sec 6) r.engine;
  answer_all_except (sid 2);
  Engine.run ~until:(Time.of_sec 12) r.engine;
  answer_all_except (sid 2);
  Engine.run ~until:(Time.of_sec 16) r.engine;
  answer_all_except (sid 2);
  Engine.run ~until:(Time.of_sec 20) r.engine;
  (match
     List.find_opt (fun (sw, _) -> Ids.Switch_id.equal sw (sid 2)) !(r.relays)
   with
  | Some (_, Some via) ->
      (* The relay goes through one of sw2's ring neighbours. *)
      check Alcotest.bool "via a ring neighbour" true (Ids.Switch_id.to_int via <> 2)
  | Some (_, None) -> Alcotest.fail "relay cleared unexpectedly"
  | None -> Alcotest.fail "expected a relay request for sw2");
  check Alcotest.bool "no reboot for control-link failure" true (!(r.reboots) = [])

let test_path_failure_installs_detour () =
  let c, r = make_controller ~config:config_small () in
  Controller.bootstrap c ~intensity:(intensity_6 ());
  (* dst sw4 hosts h2; a healthy member of its group acts as the detour. *)
  Controller.handle_message c ~from:(sid 3)
    (Message.Extension
       (Proto.State_report
          { group = Ids.Group_id.of_int 1;
            deltas = [ { Proto.origin = sid 4; added = [ key_of (host 2) ]; removed = []; full = false } ];
            intensity = [] }));
  r.sent := [];
  Controller.notify_path_failure c ~src:(sid 0) ~dst:(sid 4);
  let detours =
    List.rev
      (List.filter_map
         (function
           | sw, Message.Flow_mod (Message.Add e) -> Some (sw, e.Flow_table.actions)
           | _ -> None)
         !(r.sent))
  in
  match detours with
  | [ (sw1, [ Action.Encap hop1 ]); (sw2, [ Action.Encap hop2 ]) ] ->
      (* First segment on the source, second on the healthy via member. *)
      check Alcotest.int "installed on src" 0 (Ids.Switch_id.to_int sw1);
      check Alcotest.bool "first hop avoids dst" true
        (Ipv4.to_string hop1 <> "172.16.0.4");
      check Alcotest.bool "via completes to dst" true
        (Ids.Switch_id.to_int sw2 <> 0 && Ipv4.to_string hop2 = "172.16.0.4")
  | _ -> Alcotest.fail "expected a two-segment detour"

let () =
  Alcotest.run "controller"
    [
      ( "clib",
        [
          Alcotest.test_case "apply and locate" `Quick test_clib_apply_and_locate;
          Alcotest.test_case "removal" `Quick test_clib_removal;
          Alcotest.test_case "migration" `Quick test_clib_migration;
          Alcotest.test_case "full row" `Quick test_clib_full_row;
          Alcotest.test_case "tenants" `Quick test_clib_tenants;
        ] );
      ( "failover",
        [
          Alcotest.test_case "Table I exhaustive" `Quick test_infer_table1;
          Alcotest.test_case "second spoke splits lost echo" `Quick
            test_infer_second_spoke;
          Alcotest.test_case "echo timeout" `Quick test_monitor_echo_timeout;
          Alcotest.test_case "ring alarms" `Quick test_monitor_ring_alarms;
          Alcotest.test_case "pending echo across migration" `Quick
            test_monitor_pending_across_migration;
          Alcotest.test_case "loss exactly at echo_timeout" `Quick
            test_monitor_loss_exactly_at_timeout;
          Alcotest.test_case "verdict order-independence" `Quick
            test_monitor_verdict_order_independent;
        ] );
      ( "controller",
        [
          Alcotest.test_case "bootstrap pushes groups" `Quick test_bootstrap_pushes_groups;
          Alcotest.test_case "inter-group rule" `Quick test_packet_in_installs_intergroup_rule;
          Alcotest.test_case "unknown dst floods tenant" `Quick test_packet_in_unknown_floods_tenant;
          Alcotest.test_case "ARP relay" `Quick test_arp_escalation_relay;
          Alcotest.test_case "intensity matrix" `Quick test_state_report_feeds_matrix;
          Alcotest.test_case "relay unwrapped" `Quick test_relay_unwrapped;
          Alcotest.test_case "ring alarm handling" `Quick test_ring_alarm_and_failover_actions;
          Alcotest.test_case "echo timeout relay" `Quick test_echo_timeout_triggers_relay;
          Alcotest.test_case "detour routing" `Quick test_path_failure_installs_detour;
        ] );
    ]
