(* Whole-network property tests on randomized small topologies:

   - completeness: every flow started reaches its destination, in both
     control-plane modes, whatever the placement;
   - determinism: the same seed reproduces identical end-of-run
     statistics, event for event. *)

open Lazyctrl_net
open Lazyctrl_sim
open Lazyctrl_topo
open Lazyctrl_core
open Lazyctrl_controller
module Prng = Lazyctrl_util.Prng

let qtest ?(count = 8) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let relaxed_config =
  {
    Controller.default_config with
    Controller.group_size_limit = 6;
    sync_period = Time.of_sec 30;
    keepalive_period = Time.of_sec 20;
    echo_period = Time.of_sec 30;
    echo_timeout = Time.of_min 2;
    daemon_period = Time.of_sec 30;
  }

let gen_case =
  let open QCheck2.Gen in
  let* seed = int_range 1 1000 in
  let* n_switches = int_range 6 16 in
  let* n_tenants = int_range 2 5 in
  let* n_flows = int_range 20 80 in
  return (seed, n_switches, n_tenants, n_flows)

let build_and_run ~mode (seed, n_switches, n_tenants, n_flows) =
  let topo =
    Placement.generate
      ~rng:(Prng.create (seed * 31))
      {
        Placement.n_switches;
        n_tenants;
        tenant_size_min = 6;
        tenant_size_max = 12;
        racks_per_tenant = 2;
        stray_fraction = 0.1;
      }
  in
  let net =
    Network.create
      ~params:(Params.with_seed seed Params.default)
      ~controller_config:relaxed_config ~mode ~topo
      ~horizon:(Time.of_min 30) ()
  in
  Network.bootstrap net ();
  Network.run net ~until:(Time.of_sec 30);
  (* Random host pairs, injected over five minutes. *)
  let rng = Prng.create (seed * 37) in
  let hosts = Array.of_list (Topology.hosts topo) in
  for i = 1 to n_flows do
    let a = Prng.choose rng hosts and b = Prng.choose rng hosts in
    if not (Host.equal a b) then
      ignore
        (Engine.schedule_at (Network.engine net)
           ~at:(Time.add (Time.of_sec 30) (Time.of_ms (i * 3000)))
           (fun () ->
             Network.start_flow net ~src:a.Host.id ~dst:b.Host.id ~bytes:3000
               ~packets:2))
  done;
  Network.run net ~until:(Time.of_min 30);
  net

let test_lazy_completeness =
  qtest "lazy mode delivers every started flow" gen_case (fun case ->
      let net = build_and_run ~mode:Network.Lazy case in
      let hm = Network.host_model net in
      Host_model.flows_delivered hm = Host_model.flows_started hm
      && Host_model.resolutions_failed hm = 0)

let test_openflow_completeness =
  qtest "openflow mode delivers every started flow" gen_case (fun case ->
      let net = build_and_run ~mode:Network.Openflow case in
      let hm = Network.host_model net in
      Host_model.flows_delivered hm = Host_model.flows_started hm)

let fingerprint net =
  let hm = Network.host_model net in
  let s = Network.switch_stats_sum net in
  ( Host_model.flows_started hm,
    Host_model.flows_delivered hm,
    Host_model.arp_requests_sent hm,
    s.Lazyctrl_switch.Edge_switch.encap_sent,
    s.Lazyctrl_switch.Edge_switch.punted,
    s.Lazyctrl_switch.Edge_switch.gfib_handled,
    Lazyctrl_metrics.Recorder.total_requests (Network.recorder net),
    Engine.events_processed (Network.engine net) )

let test_determinism =
  qtest ~count:4 "same seed, same run" gen_case (fun case ->
      let a = build_and_run ~mode:Network.Lazy case in
      let b = build_and_run ~mode:Network.Lazy case in
      fingerprint a = fingerprint b)

let () =
  Alcotest.run "properties"
    [
      ( "end-to-end",
        [ test_lazy_completeness; test_openflow_completeness; test_determinism ] );
    ]
