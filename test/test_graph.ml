(* Tests for lazyctrl.graph: CSR graphs, coarsening, multilevel k-way
   partitioning, and Stoer–Wagner min-cut. *)

open Lazyctrl_graph
module Prng = Lazyctrl_util.Prng

let check = Alcotest.check
let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* Random weighted graph generator: n vertices, m random edges. *)
let gen_graph =
  let open QCheck2.Gen in
  let* n = int_range 2 40 in
  let* m = int_range 0 (n * 3) in
  let* edges =
    list_size (return m)
      (triple (int_range 0 (n - 1)) (int_range 0 (n - 1)) (float_range 0.1 10.0))
  in
  return (n, edges)

let build (n, edges) = Wgraph.of_edges ~n edges

(* --- Wgraph ----------------------------------------------------------------- *)

let test_builder_merges_parallel_edges () =
  let g = Wgraph.of_edges ~n:3 [ (0, 1, 1.0); (1, 0, 2.0); (0, 1, 3.0) ] in
  check Alcotest.int "one undirected edge" 1 (Wgraph.n_edges g);
  check (Alcotest.float 1e-9) "weights accumulate" 6.0 (Wgraph.edge_weight g 0 1);
  check (Alcotest.float 1e-9) "symmetric" 6.0 (Wgraph.edge_weight g 1 0);
  check (Alcotest.float 1e-9) "absent edge" 0.0 (Wgraph.edge_weight g 0 2)

let test_builder_drops_self_loops () =
  let g = Wgraph.of_edges ~n:2 [ (0, 0, 5.0); (0, 1, 1.0) ] in
  check Alcotest.int "self loop dropped" 1 (Wgraph.n_edges g);
  check (Alcotest.float 1e-9) "total weight" 1.0 (Wgraph.total_edge_weight g)

let test_builder_rejects () =
  let b = Wgraph.Builder.create ~n:2 in
  Alcotest.check_raises "range"
    (Invalid_argument "Wgraph.Builder: vertex out of range") (fun () ->
      Wgraph.Builder.add_edge b 0 5 1.0);
  Alcotest.check_raises "negative"
    (Invalid_argument "Wgraph.Builder.add_edge: negative weight") (fun () ->
      Wgraph.Builder.add_edge b 0 1 (-1.0))

let test_vertex_weights () =
  let b = Wgraph.Builder.create ~n:3 in
  Wgraph.Builder.set_vertex_weight b 0 5;
  let g = Wgraph.Builder.build b in
  check Alcotest.int "explicit weight" 5 (Wgraph.vertex_weight g 0);
  check Alcotest.int "default weight" 1 (Wgraph.vertex_weight g 1);
  check Alcotest.int "total" 7 (Wgraph.total_vertex_weight g)

let test_iter_edges_once =
  qtest "iter_edges visits each edge once with u<v" gen_graph (fun spec ->
      let g = build spec in
      let count = ref 0 and ok = ref true in
      Wgraph.iter_edges g (fun u v _ ->
          incr count;
          if u >= v then ok := false);
      !ok && !count = Wgraph.n_edges g)

let test_total_edge_weight_consistent =
  qtest "total weight equals edge sum" gen_graph (fun spec ->
      let g = build spec in
      let sum = ref 0.0 in
      Wgraph.iter_edges g (fun _ _ w -> sum := !sum +. w);
      Float.abs (!sum -. Wgraph.total_edge_weight g) < 1e-6)

let test_weight_between () =
  let g = Wgraph.of_edges ~n:4 [ (0, 2, 1.0); (0, 3, 2.0); (1, 2, 4.0); (0, 1, 8.0) ] in
  check (Alcotest.float 1e-9) "cross weight" 7.0
    (Wgraph.weight_between g [ 0; 1 ] [ 2; 3 ])

let test_induced () =
  let g = Wgraph.of_edges ~n:5 [ (0, 1, 1.0); (1, 2, 2.0); (2, 3, 3.0); (3, 4, 4.0) ] in
  let sub, mapping = Wgraph.induced g [| 1; 2; 3 |] in
  check Alcotest.int "sub vertices" 3 (Wgraph.n_vertices sub);
  check Alcotest.int "sub edges" 2 (Wgraph.n_edges sub);
  check (Alcotest.float 1e-9) "edge kept" 2.0 (Wgraph.edge_weight sub 0 1);
  check (Alcotest.array Alcotest.int) "mapping" [| 1; 2; 3 |] mapping

(* --- Coarsen ----------------------------------------------------------------- *)

let test_coarsen_conserves_vertex_weight =
  qtest "contraction conserves total vertex weight" gen_graph (fun spec ->
      let g = build spec in
      let cg, cmap = Coarsen.coarsen ~rng:(Prng.create 1) g in
      Array.length cmap = Wgraph.n_vertices g
      && Wgraph.total_vertex_weight cg = Wgraph.total_vertex_weight g)

let test_coarsen_edge_weight_bound =
  qtest "contraction never increases total edge weight" gen_graph (fun spec ->
      let g = build spec in
      let cg, _ = Coarsen.coarsen ~rng:(Prng.create 2) g in
      Wgraph.total_edge_weight cg <= Wgraph.total_edge_weight g +. 1e-9)

let test_coarsen_dense_ids =
  qtest "coarse ids are dense" gen_graph (fun spec ->
      let g = build spec in
      let cmap = Coarsen.heavy_edge_matching ~rng:(Prng.create 3) g in
      let n' = Array.fold_left (fun a c -> max a (c + 1)) 0 cmap in
      let seen = Array.make n' false in
      Array.iter (fun c -> seen.(c) <- true) cmap;
      Array.for_all Fun.id seen && n' >= (Wgraph.n_vertices g + 1) / 2)

let test_coarsen_halves_clique () =
  (* A clique with uniform weights matches nearly perfectly. *)
  let n = 16 in
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      edges := (i, j, 1.0) :: !edges
    done
  done;
  let g = Wgraph.of_edges ~n !edges in
  let cg, _ = Coarsen.coarsen ~rng:(Prng.create 4) g in
  check Alcotest.int "halved" (n / 2) (Wgraph.n_vertices cg)

(* --- Partition ----------------------------------------------------------------- *)

let test_partition_valid =
  qtest "multilevel produces a valid capped assignment"
    QCheck2.Gen.(pair gen_graph (int_range 2 6))
    (fun (spec, k) ->
      let g = build spec in
      let n = Wgraph.n_vertices g in
      let cap = max 2 ((n + k - 1) / k + 1) in
      let a = Partition.multilevel_kway ~rng:(Prng.create 5) ~max_part_weight:cap ~k g in
      Partition.validate g ~k ~max_part_weight:cap a = Ok ())

let test_partition_two_communities () =
  (* Two dense communities joined by one weak edge must be split apart. *)
  let edges = ref [] in
  for i = 0 to 7 do
    for j = i + 1 to 7 do
      edges := (i, j, 10.0) :: !edges;
      edges := (i + 8, j + 8, 10.0) :: !edges
    done
  done;
  edges := (0, 8, 0.1) :: !edges;
  let g = Wgraph.of_edges ~n:16 !edges in
  let a = Partition.multilevel_kway ~rng:(Prng.create 6) ~max_part_weight:8 ~k:2 g in
  check (Alcotest.float 1e-6) "only the bridge is cut" 0.1 (Partition.edge_cut g a);
  check (Alcotest.float 1e-6) "normalized" (0.1 /. Wgraph.total_edge_weight g)
    (Partition.normalized_cut g a)

let test_partition_k1 () =
  let g = Wgraph.of_edges ~n:5 [ (0, 1, 1.0) ] in
  let a = Partition.multilevel_kway ~rng:(Prng.create 7) ~k:1 g in
  check Alcotest.bool "single part" true (Array.for_all (fun p -> p = 0) a);
  check (Alcotest.float 1e-9) "no cut" 0.0 (Partition.edge_cut g a)

let test_partition_infeasible_cap () =
  let g = Wgraph.of_edges ~n:10 [ (0, 1, 1.0) ] in
  Alcotest.check_raises "cap too small"
    (Invalid_argument "Partition.multilevel_kway: infeasible size cap")
    (fun () ->
      ignore (Partition.multilevel_kway ~rng:(Prng.create 8) ~max_part_weight:2 ~k:2 g))

let test_refine_never_worsens =
  qtest "refine does not worsen the cut"
    QCheck2.Gen.(pair gen_graph (int_range 2 5))
    (fun (spec, k) ->
      let g = build spec in
      let n = Wgraph.n_vertices g in
      let rng = Prng.create 9 in
      let a = Array.init n (fun _ -> Prng.int rng k) in
      let before = Partition.edge_cut g a in
      ignore (Partition.refine g ~k a);
      Partition.edge_cut g a <= before +. 1e-9)

let test_balance_metric () =
  let g = Wgraph.of_edges ~n:4 [ (0, 1, 1.0) ] in
  let a = [| 0; 0; 1; 1 |] in
  check (Alcotest.float 1e-9) "perfect balance" 1.0 (Partition.balance g ~k:2 a);
  let skewed = [| 0; 0; 0; 1 |] in
  check (Alcotest.float 1e-9) "skewed" 1.5 (Partition.balance g ~k:2 skewed)

let test_validate_errors () =
  let g = Wgraph.of_edges ~n:3 [ (0, 1, 1.0) ] in
  (match Partition.validate g ~k:2 [| 0; 1 |] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "length mismatch accepted");
  (match Partition.validate g ~k:2 [| 0; 1; 5 |] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "out-of-range accepted");
  match Partition.validate g ~k:2 ~max_part_weight:1 [| 0; 0; 1 |] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "cap violation accepted"

let test_bisect_balanced =
  qtest "bisect respects the cap"
    gen_graph
    (fun spec ->
      let g = build spec in
      let n = Wgraph.n_vertices g in
      let cap = (n / 2) + 1 in
      let a = Partition.bisect ~rng:(Prng.create 10) ~max_part_weight:cap g in
      Partition.validate g ~k:2 ~max_part_weight:cap a = Ok ())

(* --- Mincut ------------------------------------------------------------------- *)

let brute_force_mincut g =
  let n = Wgraph.n_vertices g in
  let best = ref infinity in
  (* All 2^(n-1) bipartitions with vertex 0 pinned to side false. *)
  for mask = 1 to (1 lsl (n - 1)) - 1 do
    let side = Array.init n (fun i -> i > 0 && (mask lsr (i - 1)) land 1 = 1) in
    let w = Mincut.cut_weight g side in
    if w < !best then best := w
  done;
  !best

let gen_small_graph =
  let open QCheck2.Gen in
  let* n = int_range 2 7 in
  let* density = float_range 0.3 1.0 in
  let* seed = small_int in
  let rng = Prng.create seed in
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Prng.float rng 1.0 < density then
        edges := (i, j, Prng.float rng 10.0 +. 0.01) :: !edges
    done
  done;
  return (n, !edges)

let test_stoer_wagner_matches_brute_force =
  qtest ~count:150 "Stoer-Wagner equals brute force" gen_small_graph
    (fun (n, edges) ->
      let g = Wgraph.of_edges ~n edges in
      let w, side = Mincut.stoer_wagner g in
      let expected = brute_force_mincut g in
      Float.abs (w -. expected) < 1e-6
      && Float.abs (Mincut.cut_weight g side -. w) < 1e-6
      && Array.exists Fun.id side
      && not (Array.for_all Fun.id side))

let test_stoer_wagner_disconnected () =
  let g = Wgraph.of_edges ~n:4 [ (0, 1, 3.0); (2, 3, 5.0) ] in
  let w, _ = Mincut.stoer_wagner g in
  check (Alcotest.float 1e-9) "zero cut" 0.0 w

let test_stoer_wagner_tiny () =
  let g = Wgraph.of_edges ~n:2 [ (0, 1, 7.5) ] in
  let w, side = Mincut.stoer_wagner g in
  check (Alcotest.float 1e-9) "single edge" 7.5 w;
  check Alcotest.bool "proper side" true (side.(0) <> side.(1));
  Alcotest.check_raises "too small"
    (Invalid_argument "Mincut.stoer_wagner: need at least 2 vertices")
    (fun () -> ignore (Mincut.stoer_wagner (Wgraph.of_edges ~n:1 [])))

let () =
  Alcotest.run "graph"
    [
      ( "wgraph",
        [
          Alcotest.test_case "parallel edges merge" `Quick test_builder_merges_parallel_edges;
          Alcotest.test_case "self loops dropped" `Quick test_builder_drops_self_loops;
          Alcotest.test_case "builder rejects" `Quick test_builder_rejects;
          Alcotest.test_case "vertex weights" `Quick test_vertex_weights;
          test_iter_edges_once;
          test_total_edge_weight_consistent;
          Alcotest.test_case "weight_between" `Quick test_weight_between;
          Alcotest.test_case "induced" `Quick test_induced;
        ] );
      ( "coarsen",
        [
          test_coarsen_conserves_vertex_weight;
          test_coarsen_edge_weight_bound;
          test_coarsen_dense_ids;
          Alcotest.test_case "clique halves" `Quick test_coarsen_halves_clique;
        ] );
      ( "partition",
        [
          test_partition_valid;
          Alcotest.test_case "two communities" `Quick test_partition_two_communities;
          Alcotest.test_case "k=1" `Quick test_partition_k1;
          Alcotest.test_case "infeasible cap" `Quick test_partition_infeasible_cap;
          test_refine_never_worsens;
          Alcotest.test_case "balance metric" `Quick test_balance_metric;
          Alcotest.test_case "validate errors" `Quick test_validate_errors;
          test_bisect_balanced;
        ] );
      ( "mincut",
        [
          test_stoer_wagner_matches_brute_force;
          Alcotest.test_case "disconnected" `Quick test_stoer_wagner_disconnected;
          Alcotest.test_case "tiny and invalid" `Quick test_stoer_wagner_tiny;
        ] );
    ]
