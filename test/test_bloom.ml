(* Tests for lazyctrl.bloom: plain and counting Bloom filters. *)

module Bloom = Lazyctrl_bloom.Bloom
module Prng = Lazyctrl_util.Prng

let check = Alcotest.check
let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let test_no_false_negatives =
  qtest "no false negatives"
    QCheck2.Gen.(list_size (int_range 0 200) (int_range 0 1_000_000))
    (fun keys ->
      let b = Bloom.of_list ~bits:8192 keys in
      List.for_all (Bloom.mem b) keys)

let test_empty_matches_nothing () =
  let b = Bloom.create ~bits:1024 () in
  let rng = Prng.create 1 in
  for _ = 1 to 1000 do
    if Bloom.mem b (Prng.int rng 1_000_000) then
      Alcotest.fail "empty filter claimed membership"
  done

let test_fp_rate_reasonable () =
  (* 128 bits/entry with k=4 should give a tiny false-positive rate. *)
  let b = Bloom.create ~bits:(128 * 128) () in
  for i = 0 to 127 do
    Bloom.add b i
  done;
  let rng = Prng.create 2 in
  let fp = ref 0 in
  let probes = 100_000 in
  for _ = 1 to probes do
    if Bloom.mem b (1000 + Prng.int rng 10_000_000) then incr fp
  done;
  let rate = Float.of_int !fp /. Float.of_int probes in
  check Alcotest.bool "fp below 0.1%" true (rate < 0.001)

let test_fp_rate_estimators () =
  let b = Bloom.create ~bits:4096 () in
  for i = 0 to 255 do
    Bloom.add b i
  done;
  let est = Bloom.estimated_entries b in
  check Alcotest.bool "entry estimate within 15%" true
    (Float.abs (est -. 256.0) /. 256.0 < 0.15);
  check Alcotest.bool "fill in (0,1)" true
    (Bloom.fill_ratio b > 0.0 && Bloom.fill_ratio b < 1.0);
  check Alcotest.bool "fp estimate positive" true (Bloom.estimated_fp_rate b > 0.0)

let test_clear () =
  let b = Bloom.of_list ~bits:1024 [ 1; 2; 3 ] in
  Bloom.clear b;
  check Alcotest.bool "cleared" false (Bloom.mem b 1);
  check (Alcotest.float 1e-9) "fill zero" 0.0 (Bloom.fill_ratio b)

let test_union =
  qtest "union contains both sides"
    QCheck2.Gen.(pair (list (int_range 0 100_000)) (list (int_range 0 100_000)))
    (fun (xs, ys) ->
      let a = Bloom.of_list ~bits:4096 xs and b = Bloom.of_list ~bits:4096 ys in
      let u = Bloom.union a b in
      List.for_all (Bloom.mem u) (xs @ ys))

let test_union_geometry_mismatch () =
  let a = Bloom.create ~bits:64 () and b = Bloom.create ~bits:128 () in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Bloom.union: mismatched geometry") (fun () ->
      ignore (Bloom.union a b))

let test_serialization_roundtrip =
  qtest "to_bytes/of_bytes roundtrip"
    QCheck2.Gen.(list_size (int_range 0 100) (int_range 0 1_000_000))
    (fun keys ->
      let b = Bloom.of_list ~bits:2048 keys in
      Bloom.equal b (Bloom.of_bytes (Bloom.to_bytes b)))

let test_of_bytes_malformed () =
  Alcotest.check_raises "truncated"
    (Invalid_argument "Bloom.of_bytes: truncated header") (fun () ->
      ignore (Bloom.of_bytes (Bytes.create 4)))

let test_sizing_formulas () =
  let bits = Bloom.optimal_bits ~expected:1000 ~fp_rate:0.01 in
  (* Standard answer: ~9.6 bits/entry for 1% FP. *)
  check Alcotest.bool "bits in expected band" true (bits > 9000 && bits < 10000);
  let k = Bloom.optimal_hashes ~bits ~expected:1000 in
  check Alcotest.bool "k near 7" true (k >= 6 && k <= 8);
  let b = Bloom.create_for ~expected:1000 ~fp_rate:0.01 in
  for i = 0 to 999 do
    Bloom.add b i
  done;
  let rng = Prng.create 3 in
  let fp = ref 0 in
  for _ = 1 to 20_000 do
    if Bloom.mem b (2000 + Prng.int rng 10_000_000) then incr fp
  done;
  let rate = Float.of_int !fp /. 20_000.0 in
  check Alcotest.bool "realized fp near design" true (rate < 0.02)

let test_invalid_args () =
  Alcotest.check_raises "zero bits"
    (Invalid_argument "Bloom.create: bits must be positive") (fun () ->
      ignore (Bloom.create ~bits:0 ()));
  Alcotest.check_raises "zero hashes"
    (Invalid_argument "Bloom.create: hashes must be positive") (fun () ->
      ignore (Bloom.create ~hashes:0 ~bits:64 ()))

(* --- Counting -------------------------------------------------------------- *)

let test_counting_add_remove =
  qtest "counting: removed keys disappear, kept keys stay"
    QCheck2.Gen.(list_size (int_range 1 100) (int_range 0 1_000_000))
    (fun keys ->
      let keys = List.sort_uniq compare keys in
      let c = Bloom.Counting.create ~counters:8192 () in
      List.iter (Bloom.Counting.add c) keys;
      match keys with
      | [] -> true
      | victim :: kept ->
          Bloom.Counting.remove c victim;
          (* Kept keys can never be false-negative. *)
          List.for_all (Bloom.Counting.mem c) kept)

let test_counting_remove_clears () =
  let c = Bloom.Counting.create ~counters:4096 () in
  Bloom.Counting.add c 42;
  check Alcotest.bool "present" true (Bloom.Counting.mem c 42);
  Bloom.Counting.remove c 42;
  check Alcotest.bool "absent after remove" false (Bloom.Counting.mem c 42)

let test_counting_to_plain_consistent =
  qtest "to_plain preserves membership"
    QCheck2.Gen.(list_size (int_range 0 100) (int_range 0 1_000_000))
    (fun keys ->
      let c = Bloom.Counting.create ~counters:4096 () in
      List.iter (Bloom.Counting.add c) keys;
      let p = Bloom.Counting.to_plain c in
      List.for_all (Bloom.mem p) keys)

let test_counting_clear () =
  let c = Bloom.Counting.create ~counters:1024 () in
  Bloom.Counting.add c 1;
  Bloom.Counting.clear c;
  check Alcotest.bool "cleared" false (Bloom.Counting.mem c 1)

let test_counting_saturation () =
  let c = Bloom.Counting.create ~counters:64 ~hashes:1 () in
  (* Push one counter past 255 and verify saturation never underflows
     membership of other residents. *)
  for _ = 1 to 300 do
    Bloom.Counting.add c 7
  done;
  for _ = 1 to 300 do
    Bloom.Counting.remove c 7
  done;
  (* Saturated counters stay put: membership may remain (over-approximate)
     but must not crash or go negative. *)
  ignore (Bloom.Counting.mem c 7)

let () =
  Alcotest.run "bloom"
    [
      ( "plain",
        [
          test_no_false_negatives;
          Alcotest.test_case "empty" `Quick test_empty_matches_nothing;
          Alcotest.test_case "fp rate at 128 bits/entry" `Quick test_fp_rate_reasonable;
          Alcotest.test_case "estimators" `Quick test_fp_rate_estimators;
          Alcotest.test_case "clear" `Quick test_clear;
          test_union;
          Alcotest.test_case "union mismatch" `Quick test_union_geometry_mismatch;
          test_serialization_roundtrip;
          Alcotest.test_case "malformed bytes" `Quick test_of_bytes_malformed;
          Alcotest.test_case "sizing formulas" `Quick test_sizing_formulas;
          Alcotest.test_case "invalid args" `Quick test_invalid_args;
        ] );
      ( "counting",
        [
          test_counting_add_remove;
          Alcotest.test_case "remove clears" `Quick test_counting_remove_clears;
          test_counting_to_plain_consistent;
          Alcotest.test_case "clear" `Quick test_counting_clear;
          Alcotest.test_case "saturation" `Quick test_counting_saturation;
        ] );
    ]
