(* Controller-cluster acceptance: killing 1 of 3 members mid-run loses no
   packets, orphaned groups re-home within the failover window, laziness
   survives the fault, and the whole run is seeded-deterministic. Plus
   direct Plane tests for EASM failback and partition reconciliation. *)

open Lazyctrl_net
open Lazyctrl_sim
open Lazyctrl_topo
open Lazyctrl_controller
open Lazyctrl_chaos
open Lazyctrl_cluster
module Prng = Lazyctrl_util.Prng
module Reliable = Lazyctrl_openflow.Reliable

let check = Alcotest.check

(* Lossless single-kill scenario: the acceptance configuration. *)
let kill_cfg =
  let base = Chaos_runner.default_config in
  {
    base with
    Chaos_runner.loss = 0.0;
    dup = 0.0;
    spec =
      {
        base.Chaos_runner.spec with
        Scenario.kinds = [ Fault.Controller_kill ];
        n_faults = 1;
      };
  }

let no_fault_cfg =
  {
    kill_cfg with
    Chaos_runner.spec = { kill_cfg.Chaos_runner.spec with Scenario.n_faults = 0 };
  }

let test_kill_one_of_three () =
  let r = Chaos_runner.run kill_cfg in
  check Alcotest.int "exactly one fault" 1 (List.length r.Chaos_runner.events);
  List.iter
    (fun (e : Fault.event) ->
      check Alcotest.bool "it is a controller kill" true
        (e.kind = Fault.Controller_kill))
    r.Chaos_runner.events;
  (* Zero-loss: every flow started under the fault window resolved and
     delivered its first packet; ARP retries outlive the failover window,
     and buffered misses drain to the adopting member. *)
  check Alcotest.int "every flow delivered"
    r.Chaos_runner.flows_started r.Chaos_runner.flows_delivered;
  check Alcotest.int "no resolution gave up" 0 r.Chaos_runner.resolutions_failed;
  check Alcotest.bool "traffic actually flowed" true
    (r.Chaos_runner.flows_started > 0);
  (* Exactly-once across every session in the cluster. *)
  check Alcotest.int "no duplicate delivery" 0
    r.Chaos_runner.reliability.Reliable.violations;
  (* The orphaned groups re-homed: all invariants, including [homed] and
     [disjoint-ownership], converged within the settle budget. *)
  List.iter
    (fun rep ->
      check Alcotest.bool
        (Printf.sprintf "invariant '%s' holds" rep.Invariant.name)
        true rep.Invariant.ok)
    r.Chaos_runner.reports;
  check Alcotest.bool "converged before the deadline" true
    (r.Chaos_runner.converged_after <> None);
  (* The failover machinery did fire: the survivors noticed the death,
     probed the orphans over their second spokes, inferred
     Controller_failure, and adopted. *)
  let m = r.Chaos_runner.member_stats in
  check Alcotest.bool "death detected" true (m.Member.peer_deaths > 0);
  check Alcotest.bool "revival detected" true (m.Member.peer_revivals > 0);
  check Alcotest.bool "second-spoke evidence inferred controller death" true
    (m.Member.controller_failure_verdicts > 0);
  check Alcotest.bool "orphans adopted" true (m.Member.adoptions > 0)

let test_involvement_stays_lazy () =
  let faulted = Chaos_runner.run kill_cfg in
  let calm = Chaos_runner.run no_fault_cfg in
  check Alcotest.bool "calm run is lazy" true (calm.Chaos_runner.involvement < 0.5);
  (* A single member kill must not meaningfully push traffic onto the
     controllers: the involvement ratio stays within 10 points of the
     no-fault run. *)
  check Alcotest.bool "involvement within 10% of the no-fault run" true
    (Float.abs (faulted.Chaos_runner.involvement -. calm.Chaos_runner.involvement)
    <= 0.10)

let test_double_run_byte_identical () =
  let r1 = Chaos_runner.run kill_cfg in
  let r2 = Chaos_runner.run kill_cfg in
  check Alcotest.string "byte-identical fingerprints"
    r1.Chaos_runner.fingerprint r2.Chaos_runner.fingerprint;
  check Alcotest.bool "fingerprint non-trivial" true
    (String.length r1.Chaos_runner.fingerprint > 200);
  let r3 = Chaos_runner.run { kill_cfg with Chaos_runner.seed = 43 } in
  check Alcotest.bool "different seed, different fingerprint" false
    (String.equal r1.Chaos_runner.fingerprint r3.Chaos_runner.fingerprint)

(* --- direct Plane tests ---------------------------------------------------- *)

let quick_controller_config =
  {
    Controller.default_config with
    Controller.group_size_limit = 4;
    sync_period = Time.of_sec 10;
    keepalive_period = Time.of_sec 2;
    echo_period = Time.of_sec 5;
    echo_timeout = Time.of_sec 12;
    daemon_period = Time.of_sec 5;
    incremental_updates = false;
    reliable_state = true;
  }

let make_plane ~seed =
  let topo =
    Placement.generate ~rng:(Prng.create seed)
      {
        Placement.n_switches = 16;
        n_tenants = 6;
        tenant_size_min = 8;
        tenant_size_max = 16;
        racks_per_tenant = 3;
        stray_fraction = 0.05;
      }
  in
  let plane =
    Plane.create
      ~params:(Lazyctrl_core.Params.with_seed seed Lazyctrl_core.Params.default)
      ~controller_config:quick_controller_config ~n_members:3 ~topo ()
  in
  Plane.bootstrap plane;
  plane

let owned_counts plane =
  List.map (fun k -> List.length (Member.owned (Plane.member plane k))) [ 0; 1; 2 ]

let run_to plane t = Plane.run plane ~until:t

(* Kill a member, let the survivors adopt, revive it, and check EASM hands
   groups back: after the failback no alive member is starved while
   another exceeds it by the migration gap. *)
let test_easm_failback () =
  let plane = make_plane ~seed:5 in
  run_to plane (Time.of_sec 20);
  let before = owned_counts plane in
  check Alcotest.bool "bootstrap spreads groups over all members" true
    (List.for_all (fun c -> c > 0) before);
  Plane.kill_member plane 1;
  run_to plane (Time.of_sec 60);
  check Alcotest.bool "dead member reports stopped" false
    (Member.is_running (Plane.member plane 1));
  check Alcotest.int "dead member owns nothing" 0
    (List.length (Member.owned (Plane.member plane 1)));
  let survivors =
    List.length (Member.owned (Plane.member plane 0))
    + List.length (Member.owned (Plane.member plane 2))
  in
  check Alcotest.int "survivors own everything"
    (List.fold_left ( + ) 0 before) survivors;
  Plane.revive_member plane 1;
  check Alcotest.bool "revived member reports running" true
    (Member.is_running (Plane.member plane 1));
  run_to plane (Time.of_min 4);
  let after = owned_counts plane in
  check Alcotest.int "nothing lost in the shuffle"
    (List.fold_left ( + ) 0 before)
    (List.fold_left ( + ) 0 after);
  let mx = List.fold_left max 0 after and mn = List.fold_left min 99 after in
  check Alcotest.bool "EASM rebalanced within the migration gap" true
    (mx - mn <= 2);
  check Alcotest.bool "handoffs were offered" true
    ((Plane.member_stats_sum plane).Member.handoffs_offered > 0)

(* Partition one member off the mesh: its switches keep running on their
   old master, the others adopt what they can see as orphaned; at heal
   time terms reconcile to a single owner per group. *)
let test_partition_heals () =
  let plane = make_plane ~seed:6 in
  run_to plane (Time.of_sec 20);
  Plane.partition_member plane 2;
  run_to plane (Time.of_sec 50);
  Plane.heal_member plane 2;
  run_to plane (Time.of_min 3);
  (* Every switch homed on an alive member holding a config for it, at
     the management plane's term. *)
  check Alcotest.int "no switch lost to the partition"
    (Topology.n_switches (Plane.topology plane))
    (List.length (Plane.live_switches plane));
  List.iter
    (fun (sid, es) ->
      check Alcotest.bool "edge_switch accessor agrees" true
        (Plane.edge_switch plane sid == es);
      let k = Plane.uplink_of plane sid in
      check Alcotest.bool "master alive" true
        (List.mem k (Plane.alive_members plane));
      check Alcotest.bool "master has the group config" true
        (Option.is_some
           (Controller.group_config_of (Plane.controller plane k) sid));
      check Alcotest.int "switch term agrees with the management plane"
        (Plane.term_of plane sid)
        (Lazyctrl_switch.Edge_switch.master_term es))
    (Plane.live_switches plane);
  (* No group claimed by two alive members after the heal. *)
  let owners = Hashtbl.create 16 in
  List.iter
    (fun k ->
      List.iter
        (fun (g, _) ->
          let gi = Ids.Group_id.to_int g in
          check Alcotest.bool "single owner per group" false
            (Hashtbl.mem owners gi);
          Hashtbl.replace owners gi k)
        (Member.owned (Plane.member plane k)))
    (Plane.alive_members plane);
  (* And every alive member's ownership view converged to those owners. *)
  List.iter
    (fun k ->
      List.iter
        (fun (v : Coord.view_entry) ->
          match Hashtbl.find_opt owners (Ids.Group_id.to_int v.Coord.v_group) with
          | Some owner ->
              check Alcotest.int "views agree on the owner" owner v.Coord.v_owner
          | None -> Alcotest.fail "view names an unowned group")
        (Member.view (Plane.member plane k)))
    (Plane.alive_members plane);
  check Alcotest.int "no duplicate delivery cluster-wide" 0
    (Plane.reliability_stats plane).Reliable.violations

(* The coordination grammar's accounting hooks: sizes are positive, the
   reliable envelope prices above its payload, and messages print. *)
let test_coord_wire_format () =
  let hello = Coord.Hello { from = 1; load = 3 } in
  let entry =
    {
      Coord.v_group = Ids.Group_id.of_int 2;
      v_term = 4;
      v_owner = 1;
      v_members = [ Ids.Switch_id.of_int 0; Ids.Switch_id.of_int 3 ];
    }
  in
  let claimed = Coord.Claimed { from = 1; entry } in
  let boxed = Coord.Seq { epoch = 1; seq = 7; payload = claimed } in
  List.iter
    (fun m ->
      check Alcotest.bool "size estimate positive" true (Coord.size_estimate m > 0);
      check Alcotest.bool "pp prints something" true
        (String.length (Format.asprintf "%a" Coord.pp m) > 0))
    [ hello; claimed; boxed ];
  check Alcotest.bool "envelope prices above its payload" true
    (Coord.size_estimate boxed > Coord.size_estimate claimed)

let () =
  Alcotest.run "cluster"
    [
      ( "acceptance",
        [
          Alcotest.test_case "kill 1 of 3: zero loss, re-homed" `Slow
            test_kill_one_of_three;
          Alcotest.test_case "involvement stays lazy" `Slow
            test_involvement_stays_lazy;
          Alcotest.test_case "double run byte-identical" `Slow
            test_double_run_byte_identical;
        ] );
      ( "plane",
        [
          Alcotest.test_case "EASM failback after revive" `Slow
            test_easm_failback;
          Alcotest.test_case "partition heals to one owner" `Slow
            test_partition_heals;
        ] );
      ( "coord",
        [ Alcotest.test_case "wire format accounting" `Quick test_coord_wire_format ] );
    ]
