(* lazyctrl-lint rule tests: every rule family gets at least one fixture
   that must trigger it and one that must stay clean. *)

open Lazyctrl_analysis

let lint ?(file = "lib/fixture/fixture.ml") src =
  fst (Driver.lint_source ~file ~src)

let rules_of findings = List.map (fun (f : Finding.t) -> f.rule) findings

let has rule findings = List.exists (String.equal rule) (rules_of findings)

let check_triggers name rule src =
  Alcotest.test_case name `Quick (fun () ->
      let fs = lint src in
      Alcotest.(check bool)
        (Printf.sprintf "%s triggers on fixture" rule)
        true (has rule fs))

let check_clean name src =
  Alcotest.test_case name `Quick (fun () ->
      let fs = lint src in
      Alcotest.(check (list string)) "no findings" [] (rules_of fs))

(* --- determinism rules ----------------------------------------------------- *)

let d001_tests =
  [
    check_triggers "Hashtbl.iter flagged" Rules.d_hashtbl_order
      "let f tbl = Hashtbl.iter (fun k _ -> print_int k) tbl";
    check_triggers "Tbl.fold on keyed table flagged" Rules.d_hashtbl_order
      "let f t = Ids.Switch_id.Tbl.fold (fun k _ acc -> k :: acc) t []";
    check_triggers "Hashtbl.to_seq_values flagged" Rules.d_hashtbl_order
      "let f tbl = Array.of_seq (Hashtbl.to_seq_values tbl)";
    check_clean "fold piped into List.sort is sanctioned"
      "let f tbl =\n\
      \  Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort Int.compare";
    check_clean "sort applied directly to fold is sanctioned"
      "let f tbl =\n\
      \  List.sort Int.compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [])";
    check_clean "Det.iter_sorted is the endorsed spelling"
      "let f tbl = Lazyctrl_util.Det.iter_sorted ~cmp:Int.compare ignore tbl";
    check_triggers "fold without a sort sink still flagged"
      Rules.d_hashtbl_order
      "let f tbl =\n\
      \  let l = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] in\n\
      \  List.sort Int.compare l";
  ]

let d002_tests =
  [
    check_triggers "Random.int flagged" Rules.d_raw_random
      "let x () = Random.int 10";
    check_triggers "Random.self_init flagged" Rules.d_raw_random
      "let () = Random.self_init ()";
    Alcotest.test_case "prng.ml sanctuary" `Quick (fun () ->
        let fs = lint ~file:"lib/util/prng.ml" "let x () = Random.int 10" in
        Alcotest.(check bool)
          "Random allowed inside the PRNG module" false
          (has Rules.d_raw_random fs));
    check_clean "seeded Prng stream is clean"
      "let x rng = Lazyctrl_util.Prng.int rng 10";
  ]

let d003_tests =
  [
    check_triggers "Unix.gettimeofday flagged" Rules.d_wall_clock
      "let t () = Unix.gettimeofday ()";
    check_triggers "Sys.time flagged" Rules.d_wall_clock
      "let t () = Sys.time ()";
    Alcotest.test_case "time.ml sanctuary" `Quick (fun () ->
        let fs = lint ~file:"lib/sim/time.ml" "let t () = Sys.time ()" in
        Alcotest.(check bool)
          "host clocks allowed inside Time" false (has Rules.d_wall_clock fs));
    check_clean "virtual time is clean" "let t engine = Engine.now engine";
  ]

let d004_tests =
  [
    check_triggers "float-literal equality flagged" Rules.d_float_eq
      "let b x = x = 0.0";
    check_triggers "negative float literal flagged" Rules.d_float_eq
      "let b x = x <> -1.5";
    check_clean "Float.equal is clean" "let b x = Float.equal x 0.0";
    check_clean "record literal with float field is not an equality"
      "let s = { stray_fraction = 0.05 }";
    check_clean "tolerance comparison is clean"
      "let b x = Float.abs (x -. 1.0) < 1e-9";
  ]

(* --- abstraction rules ----------------------------------------------------- *)

let a001_tests =
  [
    check_triggers "bare compare flagged" Rules.a_poly_compare
      "let c a b = compare a b";
    check_triggers "List.sort compare flagged" Rules.a_poly_compare
      "let f l = List.sort compare l";
    check_clean "Int.compare is clean" "let c a b = Int.compare a b";
    check_clean "Mac.compare is clean" "let c a b = Mac.compare a b";
  ]

let a002_tests =
  [
    check_triggers "Hashtbl.hash flagged" Rules.a_poly_hash
      "let h k = Hashtbl.hash k";
    check_clean "keyed hash is clean" "let h k = Mac.hash k";
  ]

let a003_tests =
  [
    check_triggers "= None flagged" Rules.a_poly_eq "let b x = x = None";
    check_triggers "<> [] flagged" Rules.a_poly_eq "let b l = l <> []";
    check_triggers "keyed field equality flagged" Rules.a_poly_eq
      "let b (h : Host.t) m = h.mac = m";
    check_clean "Option.is_none is clean" "let b x = Option.is_none x";
    check_clean "List.is_empty is clean" "let b l = List.is_empty l";
    check_clean "keyed equal is clean"
      "let b (h : Host.t) m = Mac.equal h.mac m";
  ]

(* --- token fallback -------------------------------------------------------- *)

let parse_structure src =
  match Parse_ml.parse ~file:"fixture.ml" ~src with
  | Ok s -> s
  | Error msg -> Alcotest.failf "fixture did not parse: %s" msg

let token_tests =
  [
    Alcotest.test_case "unparsable file falls back to tokens" `Quick
      (fun () ->
        let src = "let f tbl = ( in Hashtbl.iter g tbl\nlet t = Sys.time ()" in
        let findings, err =
          Driver.lint_source ~file:"lib/fixture/broken.ml" ~src
        in
        Alcotest.(check bool) "parse failed" true (Option.is_some err);
        Alcotest.(check bool)
          "token D001 found" true
          (has Rules.d_hashtbl_order findings);
        Alcotest.(check bool)
          "token D003 found" true (has Rules.d_wall_clock findings));
    Alcotest.test_case "unparsable but hazard-free file is clean" `Quick
      (fun () ->
        let src = "let f = ) nonsense here (" in
        let findings, err =
          Driver.lint_source ~file:"lib/fixture/broken.ml" ~src
        in
        Alcotest.(check bool) "parse failed" true (Option.is_some err);
        Alcotest.(check (list string)) "no findings" [] (rules_of findings));
    Alcotest.test_case "hazards inside comments and strings ignored" `Quick
      (fun () ->
        let src =
          "let f = ( in\n\
           (* Hashtbl.iter would be bad *)\n\
           let s = \"Sys.time ()\""
        in
        let findings, _ = Driver.lint_source ~file:"lib/fixture/b.ml" ~src in
        Alcotest.(check (list string)) "no findings" [] (rules_of findings));
  ]

(* --- protocol rules -------------------------------------------------------- *)

let good_infer =
  "type verdict = Healthy | Control_link_failure | Peer_link_up_failure\n\
   | Peer_link_down_failure | Switch_failure | Ambiguous\n\
   let infer = function\n\
   | { up_lost = false; down_lost = false; ctrl_lost = false } -> Healthy\n\
   | { up_lost = false; down_lost = false; ctrl_lost = true } -> \
   Control_link_failure\n\
   | { up_lost = true; down_lost = false; ctrl_lost = false } -> \
   Peer_link_up_failure\n\
   | { up_lost = false; down_lost = true; ctrl_lost = false } -> \
   Peer_link_down_failure\n\
   | { up_lost = true; down_lost = true; ctrl_lost = true } -> Switch_failure\n\
   | _ -> Ambiguous\n"

let swapped_infer =
  "let infer = function\n\
   | { up_lost = false; down_lost = false; ctrl_lost = false } -> Healthy\n\
   | { up_lost = false; down_lost = false; ctrl_lost = true } -> \
   Switch_failure\n\
   | _ -> Ambiguous\n"

let incomplete_infer =
  "let infer = function\n\
   | { up_lost = false; down_lost = false; ctrl_lost = false } -> Healthy\n\
   | { up_lost = true; down_lost = true; ctrl_lost = true } -> Switch_failure\n"

let dead_case_infer =
  "let infer = function\n\
   | _ -> Ambiguous\n\
   | { up_lost = false; down_lost = false; ctrl_lost = false } -> Healthy\n"

let p001_tests =
  [
    Alcotest.test_case "faithful Table I passes" `Quick (fun () ->
        let fs =
          Proto_rules.check_failover ~file:"f.ml" (parse_structure good_infer)
        in
        Alcotest.(check (list string)) "no findings" [] (rules_of fs));
    Alcotest.test_case "swapped verdict caught" `Quick (fun () ->
        let fs =
          Proto_rules.check_failover ~file:"f.ml"
            (parse_structure swapped_infer)
        in
        Alcotest.(check bool) "mismatch reported" true
          (has Rules.p_failover_table fs));
    Alcotest.test_case "uncovered observation caught" `Quick (fun () ->
        let fs =
          Proto_rules.check_failover ~file:"f.ml"
            (parse_structure incomplete_infer)
        in
        Alcotest.(check bool) "coverage gap reported" true
          (has Rules.p_failover_table fs));
    Alcotest.test_case "dead case caught" `Quick (fun () ->
        let fs =
          Proto_rules.check_failover ~file:"f.ml"
            (parse_structure dead_case_infer)
        in
        Alcotest.(check bool) "dead case reported" true
          (has Rules.p_failover_table fs));
    Alcotest.test_case "missing infer reported" `Quick (fun () ->
        let fs =
          Proto_rules.check_failover ~file:"f.ml" (parse_structure "let x = 1")
        in
        Alcotest.(check bool) "absence reported" true
          (has Rules.p_failover_table fs));
  ]

let proto_fixture =
  "type t = Group_config of int | Keepalive | Ring_alarm of int"

let full_handler =
  "let handle = function\n\
   | Group_config c -> c\n\
   | Keepalive -> 0\n\
   | Ring_alarm n -> n\n"

let gappy_handler =
  "let handle = function Group_config c -> c | _ -> 0"

let p002_tests =
  [
    Alcotest.test_case "full dispatcher passes" `Quick (fun () ->
        let fs =
          Proto_rules.check_coverage
            ~proto:("p.ml", parse_structure proto_fixture)
            ~handlers:[ ("h.ml", parse_structure full_handler) ]
            ()
        in
        Alcotest.(check (list string)) "no findings" [] (rules_of fs));
    Alcotest.test_case "wildcard does not count as handling" `Quick (fun () ->
        let fs =
          Proto_rules.check_coverage
            ~proto:("p.ml", parse_structure proto_fixture)
            ~handlers:[ ("h.ml", parse_structure gappy_handler) ]
            ()
        in
        let missing =
          List.filter (fun (f : Finding.t) ->
              String.equal f.rule Rules.p_proto_coverage)
            fs
        in
        Alcotest.(check int) "two constructors unhandled" 2
          (List.length missing));
    Alcotest.test_case "the real protocol stays covered" `Quick (fun () ->
        (* Guard against the shipped dispatchers regressing: this is the
           exact whole-program check the @lint alias runs. *)
        let root = "../" in
        if Sys.file_exists (Filename.concat root "lib/switch/proto.ml") then
          let fs = Driver.protocol_findings ~root in
          Alcotest.(check (list string)) "no findings" [] (rules_of fs));
  ]

(* --- allowlist ------------------------------------------------------------- *)

let allowlist_tests =
  [
    Alcotest.test_case "entry suppresses a matching finding" `Quick (fun () ->
        let allow, errs =
          Allowlist.parse_string ~file:"allow"
            "lib/util/det.ml D001-hashtbl-order sanctioned primitive\n"
        in
        Alcotest.(check (list string)) "well-formed" [] (rules_of errs);
        Alcotest.(check bool) "permits matching file+rule" true
          (Allowlist.permits allow ~file:"lib/util/det.ml"
             ~rule:Rules.d_hashtbl_order);
        Alcotest.(check bool) "other rule not permitted" false
          (Allowlist.permits allow ~file:"lib/util/det.ml"
             ~rule:Rules.d_raw_random);
        Alcotest.(check (list string)) "no stale entries" []
          (rules_of (Allowlist.unused allow)));
    Alcotest.test_case "justification is mandatory" `Quick (fun () ->
        let _, errs =
          Allowlist.parse_string ~file:"allow"
            "lib/util/det.ml D001-hashtbl-order\n"
        in
        Alcotest.(check int) "malformed entry reported" 1 (List.length errs));
    Alcotest.test_case "unknown rule id rejected" `Quick (fun () ->
        let _, errs =
          Allowlist.parse_string ~file:"allow" "lib/a.ml D999-nope because\n"
        in
        Alcotest.(check int) "unknown rule reported" 1 (List.length errs));
    Alcotest.test_case "stale entries surfaced" `Quick (fun () ->
        let allow, _ =
          Allowlist.parse_string ~file:"allow"
            "lib/never.ml D001-hashtbl-order obsolete\n"
        in
        Alcotest.(check int) "one stale entry" 1
          (List.length (Allowlist.unused allow)));
    Alcotest.test_case "comments and blanks ignored" `Quick (fun () ->
        let allow, errs =
          Allowlist.parse_string ~file:"allow" "# comment\n\n  \n"
        in
        Alcotest.(check (list string)) "no errors" [] (rules_of errs);
        Alcotest.(check int) "no entries" 0
          (List.length (Allowlist.unused allow)));
  ]

let () =
  Alcotest.run "lazyctrl-lint"
    [
      ("D001-hashtbl-order", d001_tests);
      ("D002-raw-random", d002_tests);
      ("D003-wall-clock", d003_tests);
      ("D004-float-eq", d004_tests);
      ("A001-poly-compare", a001_tests);
      ("A002-poly-hash", a002_tests);
      ("A003-poly-eq", a003_tests);
      ("token-fallback", token_tests);
      ("P001-failover-table", p001_tests);
      ("P002-proto-coverage", p002_tests);
      ("allowlist", allowlist_tests);
    ]
