(* lazyctrl-lint rule tests: every rule family gets at least one fixture
   that must trigger it and one that must stay clean. *)

open Lazyctrl_analysis

let lint ?(file = "lib/fixture/fixture.ml") src =
  fst (Driver.lint_source ~file ~src)

let rules_of findings = List.map (fun (f : Finding.t) -> f.rule) findings

let has rule findings = List.exists (String.equal rule) (rules_of findings)

let check_triggers name rule src =
  Alcotest.test_case name `Quick (fun () ->
      let fs = lint src in
      Alcotest.(check bool)
        (Printf.sprintf "%s triggers on fixture" rule)
        true (has rule fs))

let check_clean name src =
  Alcotest.test_case name `Quick (fun () ->
      let fs = lint src in
      Alcotest.(check (list string)) "no findings" [] (rules_of fs))

(* --- determinism rules ----------------------------------------------------- *)

let d001_tests =
  [
    check_triggers "Hashtbl.iter flagged" Rules.d_hashtbl_order
      "let f tbl = Hashtbl.iter (fun k _ -> print_int k) tbl";
    check_triggers "Tbl.fold on keyed table flagged" Rules.d_hashtbl_order
      "let f t = Ids.Switch_id.Tbl.fold (fun k _ acc -> k :: acc) t []";
    check_triggers "Hashtbl.to_seq_values flagged" Rules.d_hashtbl_order
      "let f tbl = Array.of_seq (Hashtbl.to_seq_values tbl)";
    check_clean "fold piped into List.sort is sanctioned"
      "let f tbl =\n\
      \  Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort Int.compare";
    check_clean "sort applied directly to fold is sanctioned"
      "let f tbl =\n\
      \  List.sort Int.compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [])";
    check_clean "Det.iter_sorted is the endorsed spelling"
      "let f tbl = Lazyctrl_util.Det.iter_sorted ~cmp:Int.compare ignore tbl";
    check_triggers "fold without a sort sink still flagged"
      Rules.d_hashtbl_order
      "let f tbl =\n\
      \  let l = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] in\n\
      \  List.sort Int.compare l";
  ]

let d002_tests =
  [
    check_triggers "Random.int flagged" Rules.d_raw_random
      "let x () = Random.int 10";
    check_triggers "Random.self_init flagged" Rules.d_raw_random
      "let () = Random.self_init ()";
    Alcotest.test_case "prng.ml sanctuary" `Quick (fun () ->
        let fs = lint ~file:"lib/util/prng.ml" "let x () = Random.int 10" in
        Alcotest.(check bool)
          "Random allowed inside the PRNG module" false
          (has Rules.d_raw_random fs));
    check_clean "seeded Prng stream is clean"
      "let x rng = Lazyctrl_util.Prng.int rng 10";
  ]

let d003_tests =
  [
    check_triggers "Unix.gettimeofday flagged" Rules.d_wall_clock
      "let t () = Unix.gettimeofday ()";
    check_triggers "Sys.time flagged" Rules.d_wall_clock
      "let t () = Sys.time ()";
    Alcotest.test_case "time.ml sanctuary" `Quick (fun () ->
        let fs = lint ~file:"lib/sim/time.ml" "let t () = Sys.time ()" in
        Alcotest.(check bool)
          "host clocks allowed inside Time" false (has Rules.d_wall_clock fs));
    check_clean "virtual time is clean" "let t engine = Engine.now engine";
  ]

let d004_tests =
  [
    check_triggers "float-literal equality flagged" Rules.d_float_eq
      "let b x = x = 0.0";
    check_triggers "negative float literal flagged" Rules.d_float_eq
      "let b x = x <> -1.5";
    check_clean "Float.equal is clean" "let b x = Float.equal x 0.0";
    check_clean "record literal with float field is not an equality"
      "let s = { stray_fraction = 0.05 }";
    check_clean "tolerance comparison is clean"
      "let b x = Float.abs (x -. 1.0) < 1e-9";
  ]

(* --- abstraction rules ----------------------------------------------------- *)

let a001_tests =
  [
    check_triggers "bare compare flagged" Rules.a_poly_compare
      "let c a b = compare a b";
    check_triggers "List.sort compare flagged" Rules.a_poly_compare
      "let f l = List.sort compare l";
    check_clean "Int.compare is clean" "let c a b = Int.compare a b";
    check_clean "Mac.compare is clean" "let c a b = Mac.compare a b";
  ]

let a002_tests =
  [
    check_triggers "Hashtbl.hash flagged" Rules.a_poly_hash
      "let h k = Hashtbl.hash k";
    check_clean "keyed hash is clean" "let h k = Mac.hash k";
  ]

let a003_tests =
  [
    check_triggers "= None flagged" Rules.a_poly_eq "let b x = x = None";
    check_triggers "<> [] flagged" Rules.a_poly_eq "let b l = l <> []";
    check_triggers "keyed field equality flagged" Rules.a_poly_eq
      "let b (h : Host.t) m = h.mac = m";
    check_clean "Option.is_none is clean" "let b x = Option.is_none x";
    check_clean "List.is_empty is clean" "let b l = List.is_empty l";
    check_clean "keyed equal is clean"
      "let b (h : Host.t) m = Mac.equal h.mac m";
  ]

(* --- token fallback -------------------------------------------------------- *)

let parse_structure src =
  match Parse_ml.parse ~file:"fixture.ml" ~src with
  | Ok s -> s
  | Error msg -> Alcotest.failf "fixture did not parse: %s" msg

let token_tests =
  [
    Alcotest.test_case "unparsable file falls back to tokens" `Quick
      (fun () ->
        let src = "let f tbl = ( in Hashtbl.iter g tbl\nlet t = Sys.time ()" in
        let findings, err =
          Driver.lint_source ~file:"lib/fixture/broken.ml" ~src
        in
        Alcotest.(check bool) "parse failed" true (Option.is_some err);
        Alcotest.(check bool)
          "token D001 found" true
          (has Rules.d_hashtbl_order findings);
        Alcotest.(check bool)
          "token D003 found" true (has Rules.d_wall_clock findings));
    Alcotest.test_case "unparsable but hazard-free file is clean" `Quick
      (fun () ->
        let src = "let f = ) nonsense here (" in
        let findings, err =
          Driver.lint_source ~file:"lib/fixture/broken.ml" ~src
        in
        Alcotest.(check bool) "parse failed" true (Option.is_some err);
        Alcotest.(check (list string)) "no findings" [] (rules_of findings));
    Alcotest.test_case "hazards inside comments and strings ignored" `Quick
      (fun () ->
        let src =
          "let f = ( in\n\
           (* Hashtbl.iter would be bad *)\n\
           let s = \"Sys.time ()\""
        in
        let findings, _ = Driver.lint_source ~file:"lib/fixture/b.ml" ~src in
        Alcotest.(check (list string)) "no findings" [] (rules_of findings));
  ]

(* --- protocol rules -------------------------------------------------------- *)

let good_infer =
  "type verdict = Healthy | Control_link_failure | Peer_link_up_failure\n\
   | Peer_link_down_failure | Switch_failure | Ambiguous | Controller_failure\n\
   let infer = function\n\
   | { peer_answering = true; ctrl_lost = true; master_silent = true } -> \
   Controller_failure\n\
   | { peer_answering = true; ctrl_lost = true; master_silent = false } -> \
   Control_link_failure\n\
   | { up_lost = false; down_lost = false; ctrl_lost = false } -> Healthy\n\
   | { up_lost = false; down_lost = false; ctrl_lost = true } -> \
   Control_link_failure\n\
   | { up_lost = true; down_lost = false; ctrl_lost = false } -> \
   Peer_link_up_failure\n\
   | { up_lost = false; down_lost = true; ctrl_lost = false } -> \
   Peer_link_down_failure\n\
   | { up_lost = true; down_lost = true; ctrl_lost = true } -> Switch_failure\n\
   | _ -> Ambiguous\n"

let swapped_infer =
  "let infer = function\n\
   | { up_lost = false; down_lost = false; ctrl_lost = false } -> Healthy\n\
   | { up_lost = false; down_lost = false; ctrl_lost = true } -> \
   Switch_failure\n\
   | _ -> Ambiguous\n"

let incomplete_infer =
  "let infer = function\n\
   | { up_lost = false; down_lost = false; ctrl_lost = false } -> Healthy\n\
   | { up_lost = true; down_lost = true; ctrl_lost = true } -> Switch_failure\n"

let dead_case_infer =
  "let infer = function\n\
   | _ -> Ambiguous\n\
   | { up_lost = false; down_lost = false; ctrl_lost = false } -> Healthy\n"

let p001_tests =
  [
    Alcotest.test_case "faithful Table I passes" `Quick (fun () ->
        let fs =
          Proto_rules.check_failover ~file:"f.ml" (parse_structure good_infer)
        in
        Alcotest.(check (list string)) "no findings" [] (rules_of fs));
    Alcotest.test_case "swapped verdict caught" `Quick (fun () ->
        let fs =
          Proto_rules.check_failover ~file:"f.ml"
            (parse_structure swapped_infer)
        in
        Alcotest.(check bool) "mismatch reported" true
          (has Rules.p_failover_table fs));
    Alcotest.test_case "uncovered observation caught" `Quick (fun () ->
        let fs =
          Proto_rules.check_failover ~file:"f.ml"
            (parse_structure incomplete_infer)
        in
        Alcotest.(check bool) "coverage gap reported" true
          (has Rules.p_failover_table fs));
    Alcotest.test_case "dead case caught" `Quick (fun () ->
        let fs =
          Proto_rules.check_failover ~file:"f.ml"
            (parse_structure dead_case_infer)
        in
        Alcotest.(check bool) "dead case reported" true
          (has Rules.p_failover_table fs));
    Alcotest.test_case "missing infer reported" `Quick (fun () ->
        let fs =
          Proto_rules.check_failover ~file:"f.ml" (parse_structure "let x = 1")
        in
        Alcotest.(check bool) "absence reported" true
          (has Rules.p_failover_table fs));
  ]

let proto_fixture =
  "type t = Group_config of int | Keepalive | Ring_alarm of int"

let full_handler =
  "let handle = function\n\
   | Group_config c -> c\n\
   | Keepalive -> 0\n\
   | Ring_alarm n -> n\n"

let gappy_handler =
  "let handle = function Group_config c -> c | _ -> 0"

let p002_tests =
  [
    Alcotest.test_case "full dispatcher passes" `Quick (fun () ->
        let fs =
          Proto_rules.check_coverage
            ~proto:("p.ml", parse_structure proto_fixture)
            ~handlers:[ ("h.ml", parse_structure full_handler) ]
            ()
        in
        Alcotest.(check (list string)) "no findings" [] (rules_of fs));
    Alcotest.test_case "wildcard does not count as handling" `Quick (fun () ->
        let fs =
          Proto_rules.check_coverage
            ~proto:("p.ml", parse_structure proto_fixture)
            ~handlers:[ ("h.ml", parse_structure gappy_handler) ]
            ()
        in
        let missing =
          List.filter (fun (f : Finding.t) ->
              String.equal f.rule Rules.p_proto_coverage)
            fs
        in
        Alcotest.(check int) "two constructors unhandled" 2
          (List.length missing));
    Alcotest.test_case "the real protocol stays covered" `Quick (fun () ->
        (* Guard against the shipped dispatchers regressing: this is the
           exact whole-program check the @lint alias runs. *)
        let root = "../" in
        if Sys.file_exists (Filename.concat root "lib/switch/proto.ml") then
          let fs = Driver.protocol_findings ~root in
          Alcotest.(check (list string)) "no findings" [] (rules_of fs));
  ]

(* --- allowlist ------------------------------------------------------------- *)

let allowlist_tests =
  [
    Alcotest.test_case "entry suppresses a matching finding" `Quick (fun () ->
        let allow, errs =
          Allowlist.parse_string ~file:"allow"
            "lib/util/det.ml D001-hashtbl-order sanctioned primitive\n"
        in
        Alcotest.(check (list string)) "well-formed" [] (rules_of errs);
        Alcotest.(check bool) "permits matching file+rule" true
          (Allowlist.permits allow ~file:"lib/util/det.ml"
             ~rule:Rules.d_hashtbl_order);
        Alcotest.(check bool) "other rule not permitted" false
          (Allowlist.permits allow ~file:"lib/util/det.ml"
             ~rule:Rules.d_raw_random);
        Alcotest.(check (list string)) "no stale entries" []
          (rules_of (Allowlist.unused allow)));
    Alcotest.test_case "justification is mandatory" `Quick (fun () ->
        let _, errs =
          Allowlist.parse_string ~file:"allow"
            "lib/util/det.ml D001-hashtbl-order\n"
        in
        Alcotest.(check int) "malformed entry reported" 1 (List.length errs));
    Alcotest.test_case "unknown rule id rejected" `Quick (fun () ->
        let _, errs =
          Allowlist.parse_string ~file:"allow" "lib/a.ml D999-nope because\n"
        in
        Alcotest.(check int) "unknown rule reported" 1 (List.length errs));
    Alcotest.test_case "stale entries surfaced" `Quick (fun () ->
        let allow, _ =
          Allowlist.parse_string ~file:"allow"
            "lib/never.ml D001-hashtbl-order obsolete\n"
        in
        Alcotest.(check int) "one stale entry" 1
          (List.length (Allowlist.unused allow)));
    Alcotest.test_case "comments and blanks ignored" `Quick (fun () ->
        let allow, errs =
          Allowlist.parse_string ~file:"allow" "# comment\n\n  \n"
        in
        Alcotest.(check (list string)) "no errors" [] (rules_of errs);
        Alcotest.(check int) "no entries" 0
          (List.length (Allowlist.unused allow)));
  ]

(* --- call graph ------------------------------------------------------------ *)

let parse_file file src = (file, parse_structure src)

let parse_intf file src =
  match Parse_ml.parse_intf ~file ~src with
  | Ok s -> (file, s)
  | Error msg -> Alcotest.failf "fixture interface did not parse: %s" msg

(* A miniature repo exercising every resolution form the simulator uses:
   sibling modules, [open Lazyctrl_x], file-local aliases, and absolute
   wrapper paths — plus the two deliberate violations the ISSUE calls
   for: a lib/switch -> controller-internal call and an indirect
   [Sys.time] reach. *)
let fixture_files () =
  [
    parse_file "lib/util/helper.ml"
      "let stamp () = Sys.time ()\nlet double x = 2 * x";
    parse_file "lib/util/a.ml" "let base x = x + 1\nlet unused_thing = 3";
    parse_file "lib/util/b.ml" "let via x = A.base x";
    parse_file "lib/graph/c.ml"
      "module H = Lazyctrl_util.A\nlet go () = H.base 9";
    parse_file "lib/switch/edge_switch.ml" "let lfib t = t";
    parse_file "lib/switch/proto.ml" "let size_estimate _ = 0";
    parse_file "lib/switch/edge_helper.ml"
      "let tick () = Lazyctrl_util.Helper.stamp ()\n\
       let clean x = Lazyctrl_util.Helper.double x";
    parse_file "lib/switch/bad.ml"
      "let poke c = Lazyctrl_controller.Controller.stats c";
    parse_file "lib/controller/bad2.ml"
      "open Lazyctrl_switch\n\
       let peek t = Edge_switch.lfib t\n\
       let ok m = Proto.size_estimate m";
    parse_file "bin/tool.ml"
      "open Lazyctrl_util\nlet run () = B.via 3\nlet drive () = run ()";
  ]

let fixture_cg () = Callgraph.build ~files:(fixture_files ()) ~aux:[]

let callees_of cg id =
  match Callgraph.find_def cg id with
  | None -> Alcotest.failf "no def %s" id
  | Some _ -> Callgraph.callees cg id

let has_callee cg id callee =
  List.exists (String.equal callee) (callees_of cg id)

let callgraph_tests =
  [
    Alcotest.test_case "sibling module reference resolves" `Quick (fun () ->
        let cg = fixture_cg () in
        Alcotest.(check bool) "B.via -> A.base" true
          (has_callee cg "Lazyctrl_util.B.via" "Lazyctrl_util.A.base"));
    Alcotest.test_case "open-scoped reference resolves" `Quick (fun () ->
        let cg = fixture_cg () in
        Alcotest.(check bool) "tool.run -> B.via" true
          (has_callee cg "Tool.run" "Lazyctrl_util.B.via"));
    Alcotest.test_case "file-local alias resolves" `Quick (fun () ->
        let cg = fixture_cg () in
        Alcotest.(check bool) "C.go -> A.base via alias" true
          (has_callee cg "Lazyctrl_graph.C.go" "Lazyctrl_util.A.base"));
    Alcotest.test_case "absolute wrapper path resolves" `Quick (fun () ->
        let cg = fixture_cg () in
        Alcotest.(check bool) "edge_helper.tick -> Helper.stamp" true
          (has_callee cg "Lazyctrl_switch.Edge_helper.tick"
             "Lazyctrl_util.Helper.stamp"));
    Alcotest.test_case "same-file reference resolves" `Quick (fun () ->
        let cg = fixture_cg () in
        Alcotest.(check bool) "tool.drive -> tool.run" true
          (has_callee cg "Tool.drive" "Tool.run"));
    Alcotest.test_case "defs carry their file" `Quick (fun () ->
        let cg = fixture_cg () in
        let defs = Callgraph.defs_of_file cg "lib/util/a.ml" in
        Alcotest.(check bool) "a.ml defines base" true
          (List.exists
             (fun (d : Callgraph.def) ->
               String.equal d.Callgraph.d_id "Lazyctrl_util.A.base")
             defs));
  ]

(* --- E00x: transitive effects ---------------------------------------------- *)

let fixture_effects () =
  let files = fixture_files () in
  let cg = Callgraph.build ~files ~aux:[] in
  let ast_findings =
    List.map (fun (file, s) -> (file, Ast_rules.scan ~file s)) files
  in
  Effects.infer cg ~ast_findings

let effect_findings_on file fs =
  List.filter (fun (f : Finding.t) -> String.equal f.file file) fs

let effects_tests =
  [
    Alcotest.test_case "indirect Sys.time reach caught one hop away" `Quick
      (fun () ->
        let fs = Effects.findings (fixture_effects ()) in
        let on = effect_findings_on "lib/switch/edge_helper.ml" fs in
        Alcotest.(check bool) "E002 on the switch helper" true
          (has Rules.e_indirect_clock on));
    Alcotest.test_case "direct-clean twin stays clean" `Quick (fun () ->
        let t = fixture_effects () in
        Alcotest.(check (list string)) "Helper.double has no effects" []
          (Effects.signature_of t "Lazyctrl_util.Helper.double");
        (* the [clean] def calls only the pure twin, so no finding lands
           on its line *)
        let fs = Effects.findings t in
        Alcotest.(check bool) "no finding at the clean def" false
          (List.exists
             (fun (f : Finding.t) ->
               String.equal f.file "lib/switch/edge_helper.ml" && f.line = 2)
             fs));
    Alcotest.test_case "effect signature of the root is direct" `Quick
      (fun () ->
        let t = fixture_effects () in
        Alcotest.(check bool) "Helper.stamp carries clock" true
          (List.exists (String.equal "clock")
             (Effects.signature_of t "Lazyctrl_util.Helper.stamp"));
        (* the root's use is direct, the D-rule's business — the E rule
           must not double-report it *)
        let fs = Effects.findings t in
        Alcotest.(check (list string)) "no E finding on helper.ml" []
          (rules_of (effect_findings_on "lib/util/helper.ml" fs)));
    Alcotest.test_case "barriers absorb their sanctioned effect" `Quick
      (fun () ->
        let files =
          [
            parse_file "lib/util/prng.ml" "let draw () = Random.int 10";
            parse_file "lib/util/user.ml" "let f () = Prng.draw ()";
          ]
        in
        let cg = Callgraph.build ~files ~aux:[] in
        let ast_findings =
          List.map (fun (file, s) -> (file, Ast_rules.scan ~file s)) files
        in
        let t = Effects.infer cg ~ast_findings in
        Alcotest.(check (list string))
          "no E001 through the seeded PRNG" []
          (rules_of (Effects.findings t)));
  ]

(* --- L00x: layering -------------------------------------------------------- *)

let layering_tests =
  [
    Alcotest.test_case "switch -> controller internals caught" `Quick
      (fun () ->
        let fs = Layering.check (fixture_cg ()) in
        Alcotest.(check bool) "L002 on lib/switch/bad.ml" true
          (List.exists
             (fun (f : Finding.t) ->
               String.equal f.file "lib/switch/bad.ml"
               && String.equal f.rule Rules.l_lazy_separation)
             fs));
    Alcotest.test_case "controller -> switch internals caught, Proto exempt"
      `Quick (fun () ->
        let fs = Layering.check (fixture_cg ()) in
        let on_bad2 =
          List.filter
            (fun (f : Finding.t) ->
              String.equal f.file "lib/controller/bad2.ml")
            fs
        in
        Alcotest.(check bool) "L002 for Edge_switch reference" true
          (has Rules.l_lazy_separation on_bad2);
        Alcotest.(check bool) "no finding for the Proto reference" false
          (List.exists (fun (f : Finding.t) -> f.line = 3) on_bad2));
    Alcotest.test_case "undeclared lib dependency caught" `Quick (fun () ->
        let files =
          [ parse_file "lib/util/leak.ml" "let z = Lazyctrl_sim.Time.zero" ]
        in
        let cg = Callgraph.build ~files ~aux:[] in
        Alcotest.(check bool) "L001 on util -> sim" true
          (has Rules.l_layering (Layering.check cg)));
    Alcotest.test_case "declared dependencies stay silent" `Quick (fun () ->
        (* the fixture repo's only violations are the two deliberate ones *)
        let fs = Layering.check (fixture_cg ()) in
        Alcotest.(check int) "exactly the two planted violations" 2
          (List.length fs));
    Alcotest.test_case "spec sanity: analysis depends on nothing" `Quick
      (fun () ->
        Alcotest.(check (list string)) "no deps declared" []
          (Option.value ~default:[ "missing" ]
             (List.assoc_opt "analysis" Layering.allowed_deps));
        Alcotest.(check bool) "Proto is the controller surface" true
          (List.exists (String.equal "Proto")
             Layering.controller_switch_surface));
  ]

(* --- X00x: interface hygiene ----------------------------------------------- *)

let deadcode_tests =
  [
    Alcotest.test_case "dead export caught, live export spared" `Quick
      (fun () ->
        let cg = fixture_cg () in
        let intfs =
          [
            parse_intf "lib/util/a.mli"
              "val base : int -> int\nval unused_thing : int";
          ]
        in
        let fs = Deadcode.dead_exports cg ~intfs in
        Alcotest.(check int) "one dead export" 1 (List.length fs);
        Alcotest.(check bool) "it is unused_thing" true
          (List.exists
             (fun (f : Finding.t) ->
               String.equal f.rule Rules.x_dead_export && f.line = 2)
             fs));
    Alcotest.test_case "test-suite references keep exports alive" `Quick
      (fun () ->
        let files =
          [ parse_file "lib/util/a.ml" "let base x = x + 1" ]
        in
        let aux =
          [ parse_file "test/test_a.ml"
              "let () = ignore (Lazyctrl_util.A.base 1)" ]
        in
        let cg = Callgraph.build ~files ~aux in
        let intfs = [ parse_intf "lib/util/a.mli" "val base : int -> int" ] in
        Alcotest.(check (list string)) "no dead exports" []
          (rules_of (Deadcode.dead_exports cg ~intfs)));
    Alcotest.test_case "missing .mli flagged for lib only" `Quick (fun () ->
        let fs =
          Deadcode.missing_mli
            ~ml_files:[ "lib/util/a.ml"; "lib/util/b.ml"; "bin/tool.ml" ]
            ~mli_files:[ "lib/util/a.mli" ]
        in
        Alcotest.(check int) "one missing interface" 1 (List.length fs);
        Alcotest.(check bool) "it is lib/util/b.ml" true
          (List.exists
             (fun (f : Finding.t) ->
               String.equal f.file "lib/util/b.ml"
               && String.equal f.rule Rules.x_missing_mli)
             fs));
  ]

(* --- driver ---------------------------------------------------------------- *)

let write_file path content =
  let oc = open_out_bin path in
  output_string oc content;
  close_out oc

let with_tmp_tree f =
  let root = Filename.temp_file "lazyctrl_lint" "" in
  Sys.remove root;
  Sys.mkdir root 0o755;
  Sys.mkdir (Filename.concat root "lib") 0o755;
  Sys.mkdir (Filename.concat root "lib/fixlib") 0o755;
  Fun.protect
    ~finally:(fun () ->
      ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote root))))
    (fun () -> f root)

let driver_tests =
  [
    Alcotest.test_case "parse failure reported once" `Quick (fun () ->
        with_tmp_tree (fun root ->
            write_file
              (Filename.concat root "lib/fixlib/broken.ml")
              "let f = ( in Hashtbl.iter g tbl";
            write_file
              (Filename.concat root "lib/fixlib/broken.mli")
              "val f : unit";
            let allow = Filename.concat root ".allow" in
            let report = Driver.run ~root ~allow_path:allow () in
            let failures =
              List.filter
                (fun (file, _) -> String.equal file "lib/fixlib/broken.ml")
                report.Driver.parse_failures
            in
            Alcotest.(check int)
              "one parse-failure record despite per-file, protocol and \
               whole-program passes all consuming the cache"
              1 (List.length failures);
            Alcotest.(check bool) "token fallback still fires" true
              (has Rules.d_hashtbl_order report.Driver.findings)));
    Alcotest.test_case "stale allowlist entry reported once" `Quick (fun () ->
        with_tmp_tree (fun root ->
            write_file
              (Filename.concat root "lib/fixlib/ok.ml")
              "let f x = x + 1";
            write_file
              (Filename.concat root "lib/fixlib/ok.mli")
              "val f : int -> int";
            let allow = Filename.concat root ".allow" in
            write_file allow
              "lib/nowhere.ml D002-raw-random obsolete suppression\n";
            let report = Driver.run ~root ~allow_path:allow () in
            Alcotest.(check int) "exactly one stale warning" 1
              (List.length report.Driver.stale)));
    Alcotest.test_case "family filter scopes rules and staleness" `Quick
      (fun () ->
        with_tmp_tree (fun root ->
            write_file
              (Filename.concat root "lib/fixlib/dirty.ml")
              "let t () = Sys.time ()";
            (* no .mli: an X002 waiting to fire when X is selected *)
            let allow = Filename.concat root ".allow" in
            write_file allow
              "lib/nowhere.ml X001-dead-export not relevant under --rules D\n";
            let d_only =
              Driver.run ~families:[ "D" ] ~root ~allow_path:allow ()
            in
            Alcotest.(check bool) "D003 reported" true
              (has Rules.d_wall_clock d_only.Driver.findings);
            Alcotest.(check bool) "X002 not reported under D" false
              (has Rules.x_missing_mli d_only.Driver.findings);
            Alcotest.(check int)
              "X allowlist entry not stale when X never ran" 0
              (List.length d_only.Driver.stale);
            let x_only =
              Driver.run ~families:[ "X" ] ~root ~allow_path:allow ()
            in
            Alcotest.(check bool) "X002 reported under X" true
              (has Rules.x_missing_mli x_only.Driver.findings);
            Alcotest.(check bool) "D003 not reported under X" false
              (has Rules.d_wall_clock x_only.Driver.findings);
            Alcotest.(check int) "X entry stale once X runs" 1
              (List.length x_only.Driver.stale)));
  ]

(* --- S00x: domain safety ----------------------------------------------------- *)

let has_substring hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i =
    i + ln <= lh
    && (String.equal (String.sub hay i ln) needle || go (i + 1))
  in
  go 0

let srule path cls why = { Ownership.path; cls; why }
let sentry e_id e_shard e_phase = { Ownership.e_id; e_shard; e_phase }

let shard_check ~spec files =
  let cg = Callgraph.build ~files ~aux:[] in
  Shard.check ~spec ~cg ~structures:files ()

(* Two shards' run loops both reaching one mutating def in a shard-local
   module; the crossing-annotated variant of the same spec is the fix. *)
let s001_files () =
  [
    parse_file "lib/st/state.ml"
      "let tbl = Hashtbl.create 7\nlet bump k = Hashtbl.replace tbl k 1";
    parse_file "lib/sw/a.ml" "let handle x = Lazyctrl_st.State.bump x";
    parse_file "lib/cn/b.ml" "let handle x = Lazyctrl_st.State.bump x";
  ]

let s001_entries =
  [
    sentry "Lazyctrl_sw.A.handle" "shard-a" Ownership.Run;
    sentry "Lazyctrl_cn.B.handle" "shard-b" Ownership.Run;
  ]

let ownership_tests =
  [
    Alcotest.test_case "default spec round-trips through text" `Quick
      (fun () ->
        match Ownership.parse (Ownership.to_string Ownership.default) with
        | Error msg -> Alcotest.failf "default spec did not parse: %s" msg
        | Ok spec ->
            Alcotest.(check string) "parse . to_string = id"
              (Ownership.to_string Ownership.default)
              (Ownership.to_string spec));
    Alcotest.test_case "default spec validates clean" `Quick (fun () ->
        Alcotest.(check (list string)) "no defects" []
          (Ownership.validate Ownership.default));
    Alcotest.test_case "file rule beats directory rule" `Quick (fun () ->
        (* flow_table.ml is carved out of the shard-crossing openflow dir *)
        match
          Ownership.class_of Ownership.default
            ~file:"lib/openflow/flow_table.ml"
        with
        | Some (Ownership.Shard_local, _) -> ()
        | _ -> Alcotest.fail "expected the file carve-out to win");
    Alcotest.test_case "directory rule classifies members" `Quick (fun () ->
        match
          Ownership.class_of Ownership.default ~file:"lib/openflow/channel.ml"
        with
        | Some (Ownership.Shard_crossing, Some _) -> ()
        | _ -> Alcotest.fail "expected a justified crossing");
    Alcotest.test_case "unclassified file stays out of scope" `Quick
      (fun () ->
        Alcotest.(check bool) "bench is unowned" true
          (Option.is_none
             (Ownership.class_of Ownership.default ~file:"bench/main.ml")));
    Alcotest.test_case "run entries cover every declared shard" `Quick
      (fun () ->
        Alcotest.(check int) "ten run-phase entry points" 10
          (List.length (Ownership.run_entries Ownership.default)));
    Alcotest.test_case "crossing without a why is a defect" `Quick (fun () ->
        let spec =
          {
            Ownership.rules = [ srule "lib/x/" Ownership.Shard_crossing None ];
            entries = s001_entries;
          }
        in
        Alcotest.(check int) "one defect" 1
          (List.length (Ownership.validate spec)));
    Alcotest.test_case "unknown class rejected by the parser" `Quick
      (fun () ->
        match Ownership.parse "module lib/x/ shared-ish\n" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected a parse error");
  ]

let mutinv_tests =
  [
    Alcotest.test_case "inventory catches every declaration form" `Quick
      (fun () ->
        let _, s =
          parse_file "lib/st/inv.ml"
            "type t = { mutable count : int }\n\
             let cell = ref 0\n\
             let tbl = Hashtbl.create 7\n\
             let buf = Bytes.create 16\n\
             let touch t = t.count <- 1; incr cell"
        in
        let items = Mutinv.scan ~file:"lib/st/inv.ml" s in
        let kinds k =
          List.length
            (List.filter (fun (i : Mutinv.item) -> i.Mutinv.m_kind == k) items)
        in
        Alcotest.(check int) "one mutable field" 1 (kinds Mutinv.Mutable_field);
        Alcotest.(check int) "one ref cell" 1 (kinds Mutinv.Ref_cell);
        Alcotest.(check int) "one hash table" 1 (kinds Mutinv.Hash_table);
        Alcotest.(check int) "one flat array" 1 (kinds Mutinv.Flat_array);
        Alcotest.(check int) "two stores" 2 (kinds Mutinv.Store);
        Alcotest.(check int) "three top-level bindings" 3
          (kinds Mutinv.Toplevel_state);
        Alcotest.(check bool) "declared drops the stores" true
          (List.for_all
             (fun (i : Mutinv.item) ->
               not (i.Mutinv.m_kind == Mutinv.Store))
             (Mutinv.declared items)));
  ]

let shard_tests =
  [
    Alcotest.test_case "S001 fires on state two shards reach" `Quick
      (fun () ->
        let spec =
          {
            Ownership.rules =
              [
                srule "lib/st/" Ownership.Shard_local None;
                srule "lib/sw/" Ownership.Shard_local None;
                srule "lib/cn/" Ownership.Shard_local None;
              ];
            entries = s001_entries;
          }
        in
        let fs = shard_check ~spec (s001_files ()) in
        Alcotest.(check bool) "S001 on lib/st/state.ml" true
          (List.exists
             (fun (f : Finding.t) ->
               String.equal f.rule Rules.s_shared_mutable
               && String.equal f.file "lib/st/state.ml")
             fs);
        (* the witness names both shards' chains *)
        Alcotest.(check bool) "witness carries both chains" true
          (List.exists
             (fun (f : Finding.t) ->
               String.equal f.rule Rules.s_shared_mutable
               && has_substring f.message "[shard-a] A.handle"
               && has_substring f.message "[shard-b] B.handle")
             fs));
    Alcotest.test_case "declared crossing silences S001" `Quick (fun () ->
        let spec =
          {
            Ownership.rules =
              [
                srule "lib/st/" Ownership.Shard_crossing
                  (Some "updates serialized through the channel layer");
                srule "lib/sw/" Ownership.Shard_local None;
                srule "lib/cn/" Ownership.Shard_local None;
              ];
            entries = s001_entries;
          }
        in
        Alcotest.(check bool) "no S001" false
          (has Rules.s_shared_mutable (shard_check ~spec (s001_files ()))));
    Alcotest.test_case "one shard alone owns its state" `Quick (fun () ->
        let spec =
          {
            Ownership.rules =
              [
                srule "lib/st/" Ownership.Shard_local None;
                srule "lib/sw/" Ownership.Shard_local None;
              ];
            entries = [ sentry "Lazyctrl_sw.A.handle" "shard-a" Ownership.Run ];
          }
        in
        let files =
          [
            parse_file "lib/st/state.ml"
              "let tbl = Hashtbl.create 7\n\
               let bump k = Hashtbl.replace tbl k 1";
            parse_file "lib/sw/a.ml" "let handle x = Lazyctrl_st.State.bump x";
          ]
        in
        Alcotest.(check bool) "no S001" false
          (has Rules.s_shared_mutable (shard_check ~spec files)));
    Alcotest.test_case "S002 fires on a mutating closure escaping" `Quick
      (fun () ->
        let spec =
          {
            Ownership.rules = [ srule "lib/sw/" Ownership.Shard_local None ];
            entries = [ sentry "Lazyctrl_sw.C.go" "shard-a" Ownership.Run ];
          }
        in
        let files =
          [
            parse_file "lib/sw/c.ml"
              "let go eng r = Engine.schedule eng 5 (fun () -> r := 1)";
          ]
        in
        Alcotest.(check bool) "S002 reported" true
          (has Rules.s_closure_escape (shard_check ~spec files)));
    Alcotest.test_case "pure closure on the queue stays quiet" `Quick
      (fun () ->
        let spec =
          {
            Ownership.rules = [ srule "lib/sw/" Ownership.Shard_local None ];
            entries = [ sentry "Lazyctrl_sw.C.go" "shard-a" Ownership.Run ];
          }
        in
        let files =
          [
            parse_file "lib/sw/c.ml"
              "let go eng f = Engine.schedule eng 5 (fun () -> ignore f)";
          ]
        in
        Alcotest.(check bool) "no S002" false
          (has Rules.s_closure_escape (shard_check ~spec files)));
    Alcotest.test_case "S003 fires on a run-loop write to frozen state"
      `Quick (fun () ->
        let spec =
          {
            Ownership.rules =
              [
                srule "lib/ro/" Ownership.Read_only_after_init None;
                srule "lib/sw/" Ownership.Shard_local None;
              ];
            entries = [ sentry "Lazyctrl_sw.D.handle" "shard-a" Ownership.Run ];
          }
        in
        let files =
          [
            parse_file "lib/ro/t.ml"
              "type t = { mutable v : int }\nlet set t = t.v <- 1";
            parse_file "lib/sw/d.ml" "let handle t = Lazyctrl_ro.T.set t";
          ]
        in
        let fs = shard_check ~spec files in
        Alcotest.(check bool) "S003 on lib/ro/t.ml" true
          (List.exists
             (fun (f : Finding.t) ->
               String.equal f.rule Rules.s_init_write
               && String.equal f.file "lib/ro/t.ml")
             fs));
    Alcotest.test_case "setup-phase writes to frozen state are fine" `Quick
      (fun () ->
        let spec =
          {
            Ownership.rules =
              [
                srule "lib/ro/" Ownership.Read_only_after_init None;
                srule "lib/sw/" Ownership.Shard_local None;
              ];
            entries =
              [
                sentry "Lazyctrl_sw.D.build" "setup" Ownership.Init;
                sentry "Lazyctrl_sw.D.handle" "shard-a" Ownership.Run;
              ];
          }
        in
        let files =
          [
            parse_file "lib/ro/t.ml"
              "type t = { mutable v : int }\nlet set t = t.v <- 1";
            parse_file "lib/sw/d.ml"
              "let build t = Lazyctrl_ro.T.set t\nlet handle t = ignore t";
          ]
        in
        Alcotest.(check bool) "no S003" false
          (has Rules.s_init_write (shard_check ~spec files)));
    Alcotest.test_case "S000 flags an entry that resolves nowhere" `Quick
      (fun () ->
        let spec =
          {
            Ownership.rules = [ srule "lib/sw/" Ownership.Shard_local None ];
            entries =
              [
                sentry "Lazyctrl_sw.A.handle" "shard-a" Ownership.Run;
                sentry "Lazyctrl_gone.Nope.run" "shard-b" Ownership.Run;
              ];
          }
        in
        let files = [ parse_file "lib/sw/a.ml" "let handle x = x" ] in
        Alcotest.(check bool) "S000 reported" true
          (has Rules.s_spec (shard_check ~spec files)));
    Alcotest.test_case "the real repo has zero unallowlisted S findings"
      `Quick (fun () ->
        (* The acceptance gate: every S finding in the shipped tree is
           either fixed or carries a written justification. *)
        let root = "../" in
        if Sys.file_exists (Filename.concat root "lib/analysis/ownership.ml")
        then
          let report =
            Driver.run ~families:[ "S" ] ~root
              ~allow_path:(Filename.concat root ".lazyctrl-lint-allow")
              ()
          in
          Alcotest.(check (list string)) "no gating S findings" []
            (rules_of report.Driver.findings));
  ]

(* --- callgraph notes (unresolved constructs) --------------------------------- *)

let callgraph_notes_tests =
  [
    Alcotest.test_case "functor application resolves through its head" `Quick
      (fun () ->
        let files =
          [
            parse_file "lib/util/fct.ml"
              "module Make (X : sig val v : int end) = struct\n\
              \  let get () = X.v\nend";
            parse_file "lib/util/usef.ml"
              "module T = Fct.Make (struct let v = 3 end)\n\
               let go () = T.get ()";
          ]
        in
        let cg = Callgraph.build ~files ~aux:[] in
        Alcotest.(check bool) "usef.go -> Fct.Make.get" true
          (has_callee cg "Lazyctrl_util.Usef.go" "Lazyctrl_util.Fct.Make.get");
        let notes =
          List.concat_map
            (fun (fi : Callgraph.finfo) -> fi.Callgraph.f_notes)
            (Callgraph.files cg)
        in
        Alcotest.(check (list string)) "nothing unresolved" [] notes);
    Alcotest.test_case "first-class module noted once per file" `Quick
      (fun () ->
        let files =
          [
            parse_file "lib/util/pack.ml"
              "module type S = sig val x : int end\n\
               let m = (module struct let x = 1 end : S)\n\
               module M = (val m : S)\n\
               module N = (val m : S)";
          ]
        in
        let cg = Callgraph.build ~files ~aux:[] in
        let fi =
          List.find
            (fun (fi : Callgraph.finfo) ->
              String.equal fi.Callgraph.f_file "lib/util/pack.ml")
            (Callgraph.files cg)
        in
        Alcotest.(check int) "two distinct notes, deduplicated" 2
          (List.length fi.Callgraph.f_notes));
  ]

(* --- ARCHITECTURE.md layering diagram ---------------------------------------- *)

(* The Mermaid diagram in ARCHITECTURE.md documents the layering spec
   that L001 enforces; parse its edges back out and fail when document
   and code drift apart.  A bare identifier line inside the fence is a
   dependency-free library; [a --> b] means "a may reference b". *)
let architecture_doc_tests =
  [
    Alcotest.test_case "mermaid diagram matches allowed_deps" `Quick (fun () ->
        let read_all path =
          let ic = open_in_bin path in
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        in
        (* cwd is test/ under `dune runtest` (the dep is staged one level
           up) but the project root under a bare `dune exec`. *)
        let doc =
          read_all
            (if Sys.file_exists "../ARCHITECTURE.md" then "../ARCHITECTURE.md"
             else "ARCHITECTURE.md")
        in
        let in_fence = ref false in
        let nodes = ref [] and edges = ref [] in
        List.iter
          (fun raw ->
            let line = String.trim raw in
            if String.equal line "```mermaid" then in_fence := true
            else if String.equal line "```" then in_fence := false
            else if !in_fence then
              match String.split_on_char ' ' line with
              | [ a; "-->"; b ] -> edges := (a, b) :: !edges
              | [ n ] when String.length n > 0 -> nodes := n :: !nodes
              | _ -> ())
          (String.split_on_char '\n' doc);
        Alcotest.(check bool) "found a mermaid diagram" true
          (not (List.is_empty !edges));
        let libs =
          List.sort_uniq String.compare (!nodes @ List.map fst !edges)
        in
        let doc_spec =
          List.map
            (fun lib ->
              ( lib,
                List.sort String.compare
                  (List.filter_map
                     (fun (a, b) ->
                       if String.equal a lib then Some b else None)
                     !edges) ))
            libs
        in
        let code_spec =
          List.map
            (fun (lib, deps) -> (lib, List.sort String.compare deps))
            Layering.allowed_deps
          |> List.sort (fun (a, _) (b, _) -> String.compare a b)
        in
        Alcotest.(check (list (pair string (list string))))
          "ARCHITECTURE.md diagram == lib/analysis/layering.ml spec"
          code_spec doc_spec);
  ]

let () =
  Alcotest.run "lazyctrl-lint"
    [
      ("D001-hashtbl-order", d001_tests);
      ("D002-raw-random", d002_tests);
      ("D003-wall-clock", d003_tests);
      ("D004-float-eq", d004_tests);
      ("A001-poly-compare", a001_tests);
      ("A002-poly-hash", a002_tests);
      ("A003-poly-eq", a003_tests);
      ("token-fallback", token_tests);
      ("P001-failover-table", p001_tests);
      ("P002-proto-coverage", p002_tests);
      ("allowlist", allowlist_tests);
      ("callgraph", callgraph_tests);
      ("E00x-effects", effects_tests);
      ("L00x-layering", layering_tests);
      ("X00x-deadcode", deadcode_tests);
      ("ownership-spec", ownership_tests);
      ("mutable-inventory", mutinv_tests);
      ("S00x-domain-safety", shard_tests);
      ("callgraph-notes", callgraph_notes_tests);
      ("architecture-doc", architecture_doc_tests);
      ("driver", driver_tests);
    ]
