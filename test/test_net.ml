(* Tests for lazyctrl.net: addresses, identifiers, hosts and frames. *)

open Lazyctrl_net

let check = Alcotest.check
let qtest ?(count = 300) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* --- MAC ----------------------------------------------------------------- *)

let test_mac_string_roundtrip =
  qtest "Mac string roundtrip"
    QCheck2.Gen.(int_range 0 ((1 lsl 48) - 1))
    (fun v ->
      let m = Mac.of_int v in
      Mac.equal m (Mac.of_string (Mac.to_string m)))

let test_mac_parse () =
  check Alcotest.int "parse" 0xAABBCCDDEEFF
    (Mac.to_int (Mac.of_string "aa:bb:cc:dd:ee:ff"));
  check Alcotest.string "print" "00:00:00:00:00:2a"
    (Mac.to_string (Mac.of_int 42));
  Alcotest.check_raises "bad mac"
    (Invalid_argument "Mac.of_string: expected six colon-separated bytes")
    (fun () -> ignore (Mac.of_string "aa:bb"))

let test_mac_broadcast () =
  check Alcotest.bool "broadcast" true (Mac.is_broadcast Mac.broadcast);
  check Alcotest.bool "unicast" false (Mac.is_broadcast (Mac.of_int 5));
  check Alcotest.string "broadcast string" "ff:ff:ff:ff:ff:ff"
    (Mac.to_string Mac.broadcast)

let test_mac_of_host_id_injective =
  qtest "host-id MACs distinct and unicast"
    QCheck2.Gen.(pair (int_range 0 1_000_000) (int_range 0 1_000_000))
    (fun (a, b) ->
      let ma = Mac.of_host_id a and mb = Mac.of_host_id b in
      (not (Mac.is_broadcast ma)) && Mac.equal ma mb = (a = b))

(* --- IPv4 ----------------------------------------------------------------- *)

let test_ipv4_string_roundtrip =
  qtest "Ipv4 string roundtrip"
    QCheck2.Gen.(int_range 0 0xFFFFFFFF)
    (fun v ->
      let ip = Ipv4.of_int v in
      Ipv4.equal ip (Ipv4.of_string (Ipv4.to_string ip)))

let test_ipv4_parse () =
  check Alcotest.int "octets" 0x0A000001 (Ipv4.to_int (Ipv4.of_octets 10 0 0 1));
  check Alcotest.string "print" "10.0.0.1"
    (Ipv4.to_string (Ipv4.of_string "10.0.0.1"));
  Alcotest.check_raises "bad quad"
    (Invalid_argument "Ipv4.of_string: bad octet") (fun () ->
      ignore (Ipv4.of_string "1.2.3.256"))

let test_ipv4_spaces () =
  (* Host and switch address spaces must not collide. *)
  check Alcotest.bool "disjoint" true
    (not (Ipv4.equal (Ipv4.of_host_id 5) (Ipv4.of_switch_id 5)));
  check Alcotest.string "host space" "10.0.0.5" (Ipv4.to_string (Ipv4.of_host_id 5));
  check Alcotest.string "switch space" "172.16.0.5"
    (Ipv4.to_string (Ipv4.of_switch_id 5))

(* --- Ids ------------------------------------------------------------------- *)

let test_ids () =
  let s = Ids.Switch_id.of_int 3 in
  check Alcotest.int "roundtrip" 3 (Ids.Switch_id.to_int s);
  check Alcotest.string "pp" "sw3" (Format.asprintf "%a" Ids.Switch_id.pp s);
  check Alcotest.string "pp host" "h7"
    (Format.asprintf "%a" Ids.Host_id.pp (Ids.Host_id.of_int 7));
  check Alcotest.string "pp tenant" "t1"
    (Format.asprintf "%a" Ids.Tenant_id.pp (Ids.Tenant_id.of_int 1));
  check Alcotest.string "pp group" "g0"
    (Format.asprintf "%a" Ids.Group_id.pp (Ids.Group_id.of_int 0));
  Alcotest.check_raises "negative id" (Invalid_argument "sw id: negative")
    (fun () -> ignore (Ids.Switch_id.of_int (-1)));
  let set =
    Ids.Switch_id.Set.of_list [ Ids.Switch_id.of_int 2; Ids.Switch_id.of_int 1 ]
  in
  check Alcotest.int "set" 2 (Ids.Switch_id.Set.cardinal set)

(* --- Host ------------------------------------------------------------------- *)

let test_host_make () =
  let h = Host.make ~id:(Ids.Host_id.of_int 9) ~tenant:(Ids.Tenant_id.of_int 2) in
  check Alcotest.int "mac derives from id" 9 (Mac.to_int h.mac land 0xFFFF);
  check Alcotest.string "ip" "10.0.0.9" (Ipv4.to_string h.ip);
  let h' = Host.make ~id:(Ids.Host_id.of_int 9) ~tenant:(Ids.Tenant_id.of_int 5) in
  check Alcotest.bool "equal by id" true (Host.equal h h')

(* --- Packet ----------------------------------------------------------------- *)

let host i = Host.make ~id:(Ids.Host_id.of_int i) ~tenant:(Ids.Tenant_id.of_int 0)

let gen_packet =
  let open QCheck2.Gen in
  let* src = int_range 0 10_000 in
  let* dst = int_range 0 10_000 in
  let src = host src and dst = host (dst + 20_000) in
  let* vlan = opt (int_range 1 4094) in
  let* kind = int_range 0 3 in
  match kind with
  | 0 -> return (Packet.arp_request ~sender:src ~target_ip:dst.Host.ip ?vlan ())
  | 1 -> return (Packet.arp_reply ~sender:dst ~requester:src ?vlan ())
  | 2 ->
      let* length = int_range 0 100_000 in
      let* sport = int_range 0 65535 in
      let* dport = int_range 0 65535 in
      return
        (Packet.data ~src ~dst ?vlan ~src_port:sport ~dst_port:dport ~length ())
  | _ ->
      let* length = int_range 0 100_000 in
      let inner = Packet.eth_of (Packet.data ~src ~dst ?vlan ~length ()) in
      return
        (Packet.encap ~outer_src:(Ipv4.of_switch_id 1)
           ~outer_dst:(Ipv4.of_switch_id 2) inner)

let test_packet_wire_roundtrip =
  qtest ~count:500 "wire roundtrip" gen_packet (fun p ->
      Packet.equal p (Packet.of_bytes (Packet.to_bytes p)))

let test_packet_constructors () =
  let src = host 1 and dst = host 2 in
  let req = Packet.arp_request ~sender:src ~target_ip:dst.Host.ip () in
  check Alcotest.bool "ARP request broadcast" true (Packet.is_broadcast req);
  let reply = Packet.arp_reply ~sender:dst ~requester:src () in
  check Alcotest.bool "reply unicast" false (Packet.is_broadcast reply);
  (match Packet.eth_of reply with
  | { Packet.payload = Packet.Arp { op = Packet.Reply; sender_ip; _ }; dst = d; _ } ->
      check Alcotest.bool "reply to requester" true (Mac.equal d src.Host.mac);
      check Alcotest.bool "reply carries sender ip" true
        (Ipv4.equal sender_ip dst.Host.ip)
  | _ -> Alcotest.fail "not an ARP reply");
  Alcotest.check_raises "negative length"
    (Invalid_argument "Packet.data: negative length") (fun () ->
      ignore (Packet.data ~src ~dst ~length:(-1) ()))

let test_packet_encap_decap () =
  let inner = Packet.eth_of (Packet.data ~src:(host 1) ~dst:(host 2) ~length:99 ()) in
  let e =
    Packet.encap ~outer_src:(Ipv4.of_switch_id 3) ~outer_dst:(Ipv4.of_switch_id 4)
      inner
  in
  check Alcotest.bool "decap returns inner" true (Packet.decap e = inner);
  Alcotest.check_raises "decap plain" (Invalid_argument "Packet.decap: plain frame")
    (fun () -> ignore (Packet.decap (Packet.Plain inner)))

let test_packet_size () =
  let p = Packet.data ~src:(host 1) ~dst:(host 2) ~length:1000 () in
  (* 14 eth header + 17 ip-ish header + payload *)
  check Alcotest.int "plain size" (14 + 17 + 1000) (Packet.size_on_wire p);
  let e =
    Packet.encap ~outer_src:(Ipv4.of_switch_id 0) ~outer_dst:(Ipv4.of_switch_id 1)
      (Packet.eth_of p)
  in
  check Alcotest.int "encap adds 10" (10 + 14 + 17 + 1000) (Packet.size_on_wire e);
  let tagged = Packet.data ~src:(host 1) ~dst:(host 2) ~vlan:7 ~length:0 () in
  check Alcotest.int "vlan adds 4" (18 + 17) (Packet.size_on_wire tagged)

let () =
  Alcotest.run "net"
    [
      ( "mac",
        [
          test_mac_string_roundtrip;
          Alcotest.test_case "parse/print" `Quick test_mac_parse;
          Alcotest.test_case "broadcast" `Quick test_mac_broadcast;
          test_mac_of_host_id_injective;
        ] );
      ( "ipv4",
        [
          test_ipv4_string_roundtrip;
          Alcotest.test_case "parse/print" `Quick test_ipv4_parse;
          Alcotest.test_case "address spaces" `Quick test_ipv4_spaces;
        ] );
      ("ids", [ Alcotest.test_case "basics" `Quick test_ids ]);
      ("host", [ Alcotest.test_case "make" `Quick test_host_make ]);
      ( "packet",
        [
          test_packet_wire_roundtrip;
          Alcotest.test_case "constructors" `Quick test_packet_constructors;
          Alcotest.test_case "encap/decap" `Quick test_packet_encap_decap;
          Alcotest.test_case "size accounting" `Quick test_packet_size;
        ] );
    ]
