(* Wire-codec tests (DESIGN.md §13).

   - qcheck round-trips: decode ∘ encode = id over randomized messages,
     for both the baseline (unit) extension and the full LazyCtrl Proto
     extension, plus exact-size agreement with [frame_size];
   - deterministic per-constructor coverage: every Message.t and every
     Proto.t constructor round-trips (the qcheck generators only cover
     them probabilistically);
   - strict decoding: every strict prefix of a valid frame, a bad
     version, an unknown type tag, and trailing bytes all raise;
   - the buffered-punt end-to-end path on the baseline plane (miss →
     buffer_id punt → FlowMod + BufferOut → delivery);
   - the byte-accounting cross-check: the channel counters, the metrics
     recorder, and the flight recorder agree exactly, and same-seed runs
     produce identical byte totals. *)

open Lazyctrl_net
open Lazyctrl_sim
open Lazyctrl_openflow
open Lazyctrl_topo
open Lazyctrl_core
open Lazyctrl_baseline
module Wire = Lazyctrl_wire.Wire
module Proto = Lazyctrl_switch.Proto
module Prng = Lazyctrl_util.Prng
module Tracer = Lazyctrl_trace.Tracer
module Recorder = Lazyctrl_metrics.Recorder
module Plane = Lazyctrl_cluster.Plane

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let rejects f =
  match f () with exception Invalid_argument _ -> true | _ -> false

(* --- generators ------------------------------------------------------------ *)

let gen_mac = QCheck2.Gen.(map Mac.of_int (int_range 0 ((1 lsl 48) - 1)))
let gen_ip = QCheck2.Gen.(map Ipv4.of_int (int_range 0 0xFFFFFFFF))
let gen_vlan = QCheck2.Gen.(opt (int_range 0 0xFFF))

let gen_host =
  let open QCheck2.Gen in
  let* id = int_range 0 100_000 in
  let* tenant = int_range 0 1_000 in
  return
    (Host.make ~id:(Ids.Host_id.of_int id)
       ~tenant:(Ids.Tenant_id.of_int tenant))

let gen_plain_packet =
  let open QCheck2.Gen in
  let* src = gen_host in
  let* dst = gen_host in
  let* vlan = gen_vlan in
  frequency
    [
      ( 3,
        let* protocol = int_range 0 255 in
        let* src_port = int_range 0 0xFFFF in
        let* dst_port = int_range 0 0xFFFF in
        let* length = int_range 0 9000 in
        return
          (Packet.data ~src ~dst ?vlan ~protocol ~src_port ~dst_port ~length
             ()) );
      ( 1,
        let* target_ip = gen_ip in
        return (Packet.arp_request ~sender:src ~target_ip ?vlan ()) );
      (1, return (Packet.arp_reply ~sender:src ~requester:dst ?vlan ()));
    ]

let gen_packet =
  let open QCheck2.Gen in
  let* p = gen_plain_packet in
  let* wrap = bool in
  if not wrap then return p
  else
    let* outer_src = gen_ip in
    let* outer_dst = gen_ip in
    match p with
    | Packet.Plain eth -> return (Packet.encap ~outer_src ~outer_dst eth)
    | Packet.Encap _ -> return p

let gen_action =
  let open QCheck2.Gen in
  oneof
    [
      map (fun h -> Action.Deliver (Ids.Host_id.of_int h)) (int_range 0 100_000);
      map (fun ip -> Action.Encap ip) gen_ip;
      return Action.Flood_local;
      return Action.To_controller;
      return Action.Drop;
    ]

let gen_actions = QCheck2.Gen.(list_size (int_range 0 4) gen_action)

let gen_ofmatch =
  let open QCheck2.Gen in
  let* src_mac = opt gen_mac in
  let* dst_mac = opt gen_mac in
  let* vlan = gen_vlan in
  let* src_ip = opt gen_ip in
  let* dst_ip = opt gen_ip in
  let* protocol = opt (int_range 0 255) in
  let* src_port = opt (int_range 0 0xFFFF) in
  let* dst_port = opt (int_range 0 0xFFFF) in
  let* arp_only = bool in
  return
    {
      Ofmatch.src_mac;
      dst_mac;
      vlan;
      src_ip;
      dst_ip;
      protocol;
      src_port;
      dst_port;
      arp_only;
    }

let gen_time = QCheck2.Gen.(map Time.of_ms (int_range 0 10_000_000))

let gen_entry =
  let open QCheck2.Gen in
  let* priority = int_range 0 0xFFFF in
  let* ofmatch = gen_ofmatch in
  let* actions = gen_actions in
  let* idle_timeout = opt gen_time in
  let* hard_timeout = opt gen_time in
  let* cookie = int in
  return
    {
      Lazyctrl_openflow.Flow_table.priority;
      ofmatch;
      actions;
      idle_timeout;
      hard_timeout;
      cookie;
    }

let gen_flow_mod =
  let open QCheck2.Gen in
  oneof
    [
      map (fun e -> Message.Add e) gen_entry;
      map (fun m -> Message.Delete m) gen_ofmatch;
    ]

let gen_buffer_id =
  QCheck2.Gen.(
    oneof [ return Message.no_buffer; int_range 0 1_000_000_000 ])

let gen_reason = QCheck2.Gen.oneofl [ Message.No_match; Message.Action_punt ]

let gen_message gen_ext =
  let open QCheck2.Gen in
  frequency
    [
      (1, return Message.Hello);
      (1, map (fun n -> Message.Echo_request n) int);
      (1, map (fun n -> Message.Echo_reply n) int);
      ( 3,
        let* packet = gen_packet in
        let* reason = gen_reason in
        let* buffer_id = gen_buffer_id in
        return (Message.Packet_in { packet; reason; buffer_id }) );
      ( 2,
        let* packet = gen_packet in
        let* actions = gen_actions in
        return (Message.Packet_out { packet; actions }) );
      ( 2,
        let* buffer_id = int_range 0 1_000_000_000 in
        let* actions = gen_actions in
        return (Message.Buffer_out { buffer_id; actions }) );
      (2, map (fun fm -> Message.Flow_mod fm) gen_flow_mod);
      (3, map (fun e -> Message.Extension e) gen_ext);
    ]

let gen_sw = QCheck2.Gen.(map Ids.Switch_id.of_int (int_range 0 10_000))
let gen_group = QCheck2.Gen.(map Ids.Group_id.of_int (int_range 0 1_000))

let gen_key =
  let open QCheck2.Gen in
  let* mac = gen_mac in
  let* ip = gen_ip in
  let* tenant = int_range 0 1_000 in
  return { Proto.mac; ip; tenant = Ids.Tenant_id.of_int tenant }

let gen_keys = QCheck2.Gen.(list_size (int_range 0 5) gen_key)

let gen_delta =
  let open QCheck2.Gen in
  let* origin = gen_sw in
  let* added = gen_keys in
  let* removed = gen_keys in
  let* full = bool in
  return { Proto.origin; added; removed; full }

(* Every Proto constructor except the two message-boxing envelopes
   (Relay/Seq), which need a message generator and are added below. *)
let gen_proto_base =
  let open QCheck2.Gen in
  frequency
    [
      ( 1,
        let* group = gen_group in
        let* members = list_size (int_range 0 5) gen_sw in
        let* designated = gen_sw in
        let* backups = list_size (int_range 0 3) gen_sw in
        let* sync_period = gen_time in
        let* keepalive_period = gen_time in
        return
          (Proto.Group_config
             {
               group;
               members;
               designated;
               backups;
               sync_period;
               keepalive_period;
             }) );
      ( 1,
        let* lfibs =
          list_size (int_range 0 3)
            (let* sw = gen_sw in
             let* keys = gen_keys in
             return (sw, keys))
        in
        return (Proto.Group_sync { lfibs }) );
      (2, map (fun d -> Proto.Lfib_advert d) gen_delta);
      ( 1,
        let* origin = gen_sw in
        let* intensity =
          list_size (int_range 0 4)
            (let* sw = gen_sw in
             let* n = int_range 0 1_000_000 in
             return (sw, n))
        in
        return (Proto.Member_report { origin; intensity }) );
      ( 1,
        let* group = gen_group in
        let* deltas = list_size (int_range 0 3) gen_delta in
        let* intensity =
          list_size (int_range 0 3)
            (let* a = gen_sw in
             let* b = gen_sw in
             let* n = int_range 0 1_000_000 in
             return (a, b, n))
        in
        return (Proto.State_report { group; deltas; intensity }) );
      ( 1,
        let* origin = gen_sw in
        let* packet = gen_packet in
        return (Proto.Group_arp { origin; packet }) );
      ( 1,
        let* packet = gen_packet in
        return (Proto.Arp_broadcast { packet }) );
      ( 1,
        let* origin = gen_sw in
        let* packet = gen_packet in
        return (Proto.Arp_escalate { origin; packet }) );
      ( 1,
        let* at = gen_sw in
        let* dst = gen_mac in
        return (Proto.False_positive { at; dst }) );
      (1, map (fun from -> Proto.Keepalive { from }) gen_sw);
      ( 1,
        let* observer = gen_sw in
        let* missing = gen_sw in
        let* direction = oneofl [ `Up; `Down ] in
        return (Proto.Ring_alarm { observer; missing; direction }) );
      ( 1,
        let* term = int_range 0 1_000_000 in
        let* master = int_range 0 1_000 in
        return (Proto.Rehome { term; master }) );
      ( 1,
        let* epoch = int_range 0 1_000_000 in
        let* cum = oneof [ return (-1); int_range 0 1_000_000 ] in
        return (Proto.Ack { epoch; cum }) );
    ]

let gen_proto =
  let open QCheck2.Gen in
  frequency
    [
      (6, gen_proto_base);
      ( 1,
        let* origin = gen_sw in
        let* boxed = gen_message gen_proto_base in
        return (Proto.Relay { origin; boxed }) );
      ( 1,
        let* epoch = int_range 0 1_000 in
        let* seq = int_range 0 1_000_000 in
        let* payload = gen_message gen_proto_base in
        return (Proto.Seq { epoch; seq; payload }) );
    ]

(* Messages are pure structural data (ints, ids, lists, options — no
   floats or functions), so polymorphic equality is exact here. *)
let roundtrip ext m =
  let frame = Wire.encode ext m in
  Bytes.length frame = Wire.frame_size ext m && Wire.decode ext frame = m

let test_unit_roundtrip =
  qtest ~count:200 "unit-ext round-trip: decode (encode m) = m"
    (gen_message (QCheck2.Gen.return ()))
    (roundtrip Wire.unit_ext)

let test_proto_roundtrip =
  qtest ~count:200 "proto-ext round-trip: decode (encode m) = m"
    (gen_message gen_proto)
    (roundtrip Proto.wire_ext)

let test_proto_wire_size =
  qtest ~count:200 "Proto.wire_size is byte-exact against to_wire/of_wire"
    gen_proto
    (fun p ->
      let size = Proto.wire_size p in
      let w = Wire.W.create size in
      Proto.to_wire w p;
      w.Wire.W.pos = size && Proto.of_wire (Wire.R.of_bytes w.Wire.W.buf) = p)

(* --- deterministic per-constructor coverage -------------------------------- *)

let host ?(tenant = 0) i =
  Host.make ~id:(Ids.Host_id.of_int i) ~tenant:(Ids.Tenant_id.of_int tenant)

let sw = Ids.Switch_id.of_int

let data_pkt =
  Packet.data ~src:(host 1) ~dst:(host 2) ~vlan:5 ~protocol:6 ~src_port:4242
    ~dst_port:80 ~length:1400 ()

let arp_pkt = Packet.arp_request ~sender:(host 1) ~target_ip:(Ipv4.of_int 42) ()

let encap_pkt =
  match data_pkt with
  | Packet.Plain eth ->
      Packet.encap ~outer_src:(Ipv4.of_int 7) ~outer_dst:(Ipv4.of_int 9) eth
  | Packet.Encap _ -> assert false

let sample_key =
  {
    Proto.mac = Mac.of_int 0xAABBCCDDEEFF;
    ip = Ipv4.of_int 0x0A000001;
    tenant = Ids.Tenant_id.of_int 3;
  }

let sample_delta =
  { Proto.origin = sw 1; added = [ sample_key ]; removed = []; full = false }

let sample_entry =
  {
    Lazyctrl_openflow.Flow_table.priority = 10;
    ofmatch = Ofmatch.of_eth (Packet.decap encap_pkt);
    actions = [ Action.Deliver (Ids.Host_id.of_int 2) ];
    idle_timeout = Some (Time.of_sec 60);
    hard_timeout = None;
    cookie = 42;
  }

let proto_samples =
  [
    Proto.Group_config
      {
        group = Ids.Group_id.of_int 1;
        members = [ sw 1; sw 2; sw 3 ];
        designated = sw 2;
        backups = [ sw 1 ];
        sync_period = Time.of_sec 10;
        keepalive_period = Time.of_sec 5;
      };
    Proto.Group_sync { lfibs = [ (sw 1, [ sample_key ]); (sw 2, []) ] };
    Proto.Lfib_advert sample_delta;
    Proto.Member_report { origin = sw 1; intensity = [ (sw 2, 7); (sw 3, 0) ] };
    Proto.State_report
      {
        group = Ids.Group_id.of_int 1;
        deltas = [ sample_delta; { sample_delta with Proto.full = true } ];
        intensity = [ (sw 1, sw 2, 9) ];
      };
    Proto.Group_arp { origin = sw 1; packet = arp_pkt };
    Proto.Arp_broadcast { packet = arp_pkt };
    Proto.Arp_escalate { origin = sw 2; packet = arp_pkt };
    Proto.False_positive { at = sw 3; dst = Mac.of_int 0x123456 };
    Proto.Keepalive { from = sw 4 };
    Proto.Ring_alarm { observer = sw 1; missing = sw 2; direction = `Down };
    Proto.Rehome { term = 3; master = 1 };
    Proto.Relay
      { origin = sw 5; boxed = Message.Flow_mod (Message.Add sample_entry) };
    Proto.Seq
      {
        epoch = 1;
        seq = 2;
        payload = Message.Extension (Proto.Keepalive { from = sw 3 });
      };
    Proto.Ack { epoch = 1; cum = -1 };
  ]

let message_samples ext_sample =
  [
    Message.Hello;
    Message.Echo_request 7;
    Message.Echo_reply (-7);
    Message.Packet_in
      { packet = data_pkt; reason = Message.No_match; buffer_id = Message.no_buffer };
    Message.Packet_in
      { packet = data_pkt; reason = Message.No_match; buffer_id = 3 };
    Message.Packet_in
      { packet = arp_pkt; reason = Message.Action_punt; buffer_id = Message.no_buffer };
    Message.Packet_in
      { packet = encap_pkt; reason = Message.No_match; buffer_id = 12 };
    Message.Packet_out
      { packet = data_pkt; actions = [ Action.Deliver (Ids.Host_id.of_int 2) ] };
    Message.Buffer_out { buffer_id = 3; actions = [ Action.Flood_local ] };
    Message.Flow_mod (Message.Add sample_entry);
    Message.Flow_mod (Message.Delete Ofmatch.any);
    Message.Extension ext_sample;
  ]

let test_constructor_coverage () =
  List.iter
    (fun m ->
      Alcotest.(check bool) "unit-ext sample round-trips" true
        (roundtrip Wire.unit_ext m))
    (message_samples ());
  List.iter
    (fun p ->
      Alcotest.(check bool) "proto sample round-trips" true
        (roundtrip Proto.wire_ext (Message.Extension p)))
    proto_samples

let test_buffered_packet_in_smaller () =
  let full =
    Message.Packet_in
      { packet = data_pkt; reason = Message.No_match; buffer_id = Message.no_buffer }
  in
  let buffered =
    Message.Packet_in
      { packet = data_pkt; reason = Message.No_match; buffer_id = 3 }
  in
  let fs = Wire.frame_size Wire.unit_ext full in
  let bs = Wire.frame_size Wire.unit_ext buffered in
  (* the buffered punt omits the 1400 payload bytes — that saving is the
     point of switch-side buffering *)
  Alcotest.(check bool) "buffered punt omits the payload padding" true
    (fs - bs >= 1400)

(* --- strict decoding ------------------------------------------------------- *)

let test_truncation_rejected () =
  let check_all_prefixes m =
    let frame = Wire.encode Proto.wire_ext m in
    for len = 0 to Bytes.length frame - 1 do
      Alcotest.(check bool)
        (Printf.sprintf "prefix of %d/%d bytes rejected" len
           (Bytes.length frame))
        true
        (rejects (fun () -> Wire.decode Proto.wire_ext (Bytes.sub frame 0 len)))
    done
  in
  check_all_prefixes (Message.Flow_mod (Message.Add sample_entry));
  check_all_prefixes
    (Message.Packet_in
       { packet = arp_pkt; reason = Message.No_match; buffer_id = 3 });
  check_all_prefixes (Message.Extension (Proto.Lfib_advert sample_delta))

let test_corruption_rejected () =
  let frame () = Wire.encode Proto.wire_ext (Message.Extension (Proto.Keepalive { from = sw 1 })) in
  (* bad version (offset 4 in the fixed header) *)
  let f = frame () in
  Bytes.set f 4 '\002';
  Alcotest.(check bool) "bad version rejected" true
    (rejects (fun () -> Wire.decode Proto.wire_ext f));
  (* unknown message type tag (first byte after the 8-byte header) *)
  let f = frame () in
  Bytes.set f 8 '\255';
  Alcotest.(check bool) "unknown type tag rejected" true
    (rejects (fun () -> Wire.decode Proto.wire_ext f));
  (* trailing bytes beyond the declared length *)
  let f = Bytes.cat (frame ()) (Bytes.make 3 '\000') in
  Alcotest.(check bool) "buffer longer than length prefix rejected" true
    (rejects (fun () -> Wire.decode Proto.wire_ext f));
  (* length prefix covering more than the message body *)
  let f = Bytes.cat (frame ()) (Bytes.make 4 '\000') in
  assert (Bytes.length f < 256);
  Bytes.set f 3 (Char.chr (Bytes.length f));
  Alcotest.(check bool) "length prefix past the message body rejected" true
    (rejects (fun () -> Wire.decode Proto.wire_ext f));
  Alcotest.(check bool) "empty buffer rejected" true
    (rejects (fun () -> Wire.decode Proto.wire_ext Bytes.empty))

(* --- writer/reader primitives and mid-level codecs ------------------------- *)

let test_primitives () =
  let w = Wire.W.create 27 in
  Wire.W.u8 w 0xAB;
  Wire.W.u16 w 0xBEEF;
  Wire.W.u32 w 0xDEADBEEF;
  Wire.W.i64 w (-42);
  Wire.W.mac w (Mac.of_int 0x112233445566);
  Wire.W.ip w (Ipv4.of_int 0x0A0B0C0D);
  Wire.W.pad w 2;
  Alcotest.(check int) "writer filled the buffer exactly" 27 w.Wire.W.pos;
  let r = Wire.R.of_bytes w.Wire.W.buf in
  Alcotest.(check int) "u8" 0xAB (Wire.R.u8 r);
  Alcotest.(check int) "u16" 0xBEEF (Wire.R.u16 r);
  Alcotest.(check int) "u32" 0xDEADBEEF (Wire.R.u32 r);
  Alcotest.(check int) "i64 sign-extends" (-42) (Wire.R.i64 r);
  Alcotest.(check bool) "mac" true (Mac.equal (Mac.of_int 0x112233445566) (Wire.R.mac r));
  Alcotest.(check bool) "ip" true (Ipv4.equal (Ipv4.of_int 0x0A0B0C0D) (Wire.R.ip r));
  Wire.R.skip r 2;
  Alcotest.(check int) "reader consumed the buffer exactly" 27 r.Wire.R.pos;
  (* range guards: encoding never silently truncates *)
  Alcotest.(check bool) "u16 out of range rejected" true
    (rejects (fun () -> Wire.W.u16 (Wire.W.create 8) 0x1_0000));
  Alcotest.(check bool) "u32 negative rejected" true
    (rejects (fun () -> Wire.W.u32 (Wire.W.create 8) (-1)));
  Alcotest.(check bool) "writer overrun rejected" true
    (rejects (fun () -> Wire.W.i64 (Wire.W.create 4) 0));
  Alcotest.(check bool) "reader overrun rejected" true
    (rejects (fun () -> Wire.R.u32 (Wire.R.of_bytes (Bytes.create 2))))

let test_packet_and_message_codecs () =
  List.iter
    (fun p ->
      let sz = Wire.packet_size ~full:false p in
      let w = Wire.W.create sz in
      Wire.write_packet w ~full:false p;
      Alcotest.(check int) "header-only packet size exact" sz w.Wire.W.pos;
      Alcotest.(check bool) "header-only packet round-trips" true
        (Wire.read_packet (Wire.R.of_bytes w.Wire.W.buf) = p);
      let szf = Wire.packet_size ~full:true p in
      let wf = Wire.W.create szf in
      Wire.write_packet wf ~full:true p;
      Alcotest.(check int) "full packet size exact" szf wf.Wire.W.pos;
      Alcotest.(check bool) "full packet round-trips" true
        (Wire.read_full_packet (Wire.R.of_bytes wf.Wire.W.buf) = p))
    [ data_pkt; arp_pkt; encap_pkt ];
  (* the full form materializes the payload as padding *)
  Alcotest.(check int) "payload materialized as padding" 1400
    (Wire.packet_size ~full:true data_pkt
    - Wire.packet_size ~full:false data_pkt);
  let msg =
    Message.Packet_out
      { packet = data_pkt; actions = [ Action.Deliver (Ids.Host_id.of_int 2) ] }
  in
  let msz = Wire.message_size Wire.unit_ext msg in
  let w = Wire.W.create msz in
  Wire.write_message Wire.unit_ext w msg;
  Alcotest.(check int) "message size exact" msz w.Wire.W.pos;
  Alcotest.(check bool) "message round-trips without framing" true
    (Wire.read_message Wire.unit_ext (Wire.R.of_bytes w.Wire.W.buf) = msg);
  Alcotest.(check int) "frame_size = header_size + message_size"
    (Wire.header_size + msz)
    (Wire.frame_size Wire.unit_ext msg)

(* --- buffer pool ----------------------------------------------------------- *)

let test_buffer_pool () =
  let pool = Buffer_pool.create ~capacity:2 ~ttl:(Time.of_sec 1) () in
  let now = Time.zero in
  let id0 = Buffer_pool.store pool ~now data_pkt in
  let id1 = Buffer_pool.store pool ~now arp_pkt in
  Alcotest.(check bool) "two slots stored" true
    (Option.is_some id0 && Option.is_some id1);
  Alcotest.(check int) "pool occupancy" 2 (Buffer_pool.in_use pool ~now);
  Alcotest.(check (option int)) "full pool refuses the third store" None
    (Buffer_pool.store pool ~now encap_pkt);
  let id0 = Option.get id0 and id1 = Option.get id1 in
  Alcotest.(check bool) "take returns the parked packet" true
    (Buffer_pool.take pool ~now id0 = Some data_pkt);
  Alcotest.(check bool) "double release misses" true
    (Buffer_pool.take pool ~now id0 = None);
  Buffer_pool.cancel pool id1;
  Alcotest.(check int) "cancel frees the slot" 0 (Buffer_pool.in_use pool ~now);
  let id2 = Option.get (Buffer_pool.store pool ~now data_pkt) in
  Alcotest.(check bool) "buffer ids are lifetime-unique" true
    (id2 <> id0 && id2 <> id1);
  let later = Time.add now (Time.of_sec 2) in
  Alcotest.(check int) "ttl expires live slots" 0
    (Buffer_pool.in_use pool ~now:later);
  Alcotest.(check bool) "expired id no longer releases" true
    (Buffer_pool.take pool ~now:later id2 = None);
  let s = Buffer_pool.stats pool in
  Alcotest.(check int) "one refused store counted" 1 s.Buffer_pool.full_fallbacks;
  Alcotest.(check int) "one release counted" 1 s.Buffer_pool.released;
  Alcotest.(check bool) "misses counted" true (s.Buffer_pool.misses >= 1)

(* --- end-to-end: buffered punts and byte accounting ------------------------ *)

let build_topo seed =
  Placement.generate ~rng:(Prng.create seed)
    {
      Placement.n_switches = 8;
      n_tenants = 3;
      tenant_size_min = 6;
      tenant_size_max = 10;
      racks_per_tenant = 2;
      stray_fraction = 0.1;
    }

let inject_flows net topo seed n =
  let rng = Prng.create (seed * 37) in
  let hosts = Array.of_list (Topology.hosts topo) in
  for i = 1 to n do
    let a = Prng.choose rng hosts and b = Prng.choose rng hosts in
    if not (Host.equal a b) then
      ignore
        (Engine.schedule_at (Network.engine net)
           ~at:(Time.add (Time.of_sec 10) (Time.of_ms (i * 1000)))
           (fun () ->
             Network.start_flow net ~src:a.Host.id ~dst:b.Host.id ~bytes:3000
               ~packets:2))
  done

let test_buffered_punt_e2e () =
  let seed = 11 in
  let topo = build_topo seed in
  let net =
    Network.create
      ~params:(Params.with_seed seed Params.default)
      ~mode:Network.Openflow ~topo ~horizon:(Time.of_min 10) ()
  in
  Network.bootstrap net ();
  inject_flows net topo seed 30;
  Network.run net ~until:(Time.of_min 10);
  let hm = Network.host_model net in
  Alcotest.(check bool) "flows were started" true
    (Host_model.flows_started hm > 0);
  Alcotest.(check int) "every started flow delivered"
    (Host_model.flows_started hm)
    (Host_model.flows_delivered hm);
  let stored, released =
    List.fold_left
      (fun (st, rel) sid ->
        match Network.of_switch net sid with
        | None -> (st, rel)
        | Some sw ->
            let s = Of_switch.buffer_stats sw in
            (st + s.Buffer_pool.stored, rel + s.Buffer_pool.released))
      (0, 0) (Topology.switches topo)
  in
  Alcotest.(check bool) "misses parked packets in the buffer pools" true
    (stored > 0);
  Alcotest.(check bool) "controller replies released parked packets" true
    (released > 0);
  (match Network.of_controller net with
  | None -> Alcotest.fail "openflow mode has a baseline controller"
  | Some c ->
      Alcotest.(check bool) "controller sent Buffer_out releases" true
        ((Of_controller.stats c).Of_controller.buffer_outs_sent > 0));
  Alcotest.(check bool) "control bytes were accounted" true
    (Network.ctrl_bytes_sent net > 0)

let run_lazy ?tracer seed =
  let topo = build_topo seed in
  let net =
    Network.create
      ~params:(Params.with_seed seed Params.default)
      ?tracer ~mode:Network.Lazy ~topo ~horizon:(Time.of_min 10) ()
  in
  Network.bootstrap net ();
  inject_flows net topo seed 30;
  Network.run net ~until:(Time.of_min 10);
  net

let test_byte_crosscheck () =
  let tracer = Tracer.create () in
  let net = run_lazy ~tracer 23 in
  let sent = Network.ctrl_bytes_sent net in
  Alcotest.(check bool) "control channels carried bytes" true (sent > 0);
  Alcotest.(check int) "recorder total equals the channel counters" sent
    (Recorder.total_ctrl_bytes (Network.recorder net));
  Alcotest.(check int) "tracer total equals the channel counters" sent
    (Tracer.ctrl_bytes tracer);
  let totals = Network.link_stats net in
  Alcotest.(check bool)
    "all-channel byte totals dominate the controller-facing subset" true
    (totals.Network.links_bytes_sent >= sent);
  let per_sec = Recorder.ctrl_bytes_per_sec (Network.recorder net) in
  Alcotest.(check bool) "the bytes/sec series carries the total" true
    (Array.fold_left ( +. ) 0.0 per_sec > 0.0)

let test_byte_determinism () =
  let a = Network.ctrl_bytes_sent (run_lazy 29) in
  let b = Network.ctrl_bytes_sent (run_lazy 29) in
  Alcotest.(check bool) "same-seed runs moved bytes" true (a > 0);
  Alcotest.(check int) "same-seed runs move identical byte totals" a b

let test_cluster_bytes () =
  let topo = build_topo 5 in
  let plane = Plane.create ~n_members:2 ~topo () in
  Plane.bootstrap plane;
  Plane.run plane ~until:(Time.of_sec 60);
  Alcotest.(check bool) "cluster control channels carried bytes" true
    (Plane.ctrl_bytes_sent plane > 0)

let () =
  Alcotest.run "wire"
    [
      ( "roundtrip",
        [
          test_unit_roundtrip;
          test_proto_roundtrip;
          test_proto_wire_size;
          Alcotest.test_case "every constructor round-trips" `Quick
            test_constructor_coverage;
          Alcotest.test_case "buffered Packet_in omits payload" `Quick
            test_buffered_packet_in_smaller;
        ] );
      ( "strictness",
        [
          Alcotest.test_case "truncated frames rejected" `Quick
            test_truncation_rejected;
          Alcotest.test_case "corrupt frames rejected" `Quick
            test_corruption_rejected;
        ] );
      ( "primitives",
        [
          Alcotest.test_case "writer/reader primitives" `Quick test_primitives;
          Alcotest.test_case "packet and message codecs" `Quick
            test_packet_and_message_codecs;
          Alcotest.test_case "buffer pool" `Quick test_buffer_pool;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "buffered punt path delivers" `Quick
            test_buffered_punt_e2e;
          Alcotest.test_case "byte-accounting cross-check" `Quick
            test_byte_crosscheck;
          Alcotest.test_case "byte totals are deterministic" `Quick
            test_byte_determinism;
          Alcotest.test_case "cluster plane accounts control bytes" `Quick
            test_cluster_bytes;
        ] );
    ]
