(* Tests for the reliable-delivery layer, strict channel wiring, graceful
   degradation under control-link loss, and the chaos subsystem's
   deterministic end-to-end acceptance scenario. *)

open Lazyctrl_net
open Lazyctrl_sim
open Lazyctrl_openflow
open Lazyctrl_switch
open Lazyctrl_controller
open Lazyctrl_core
open Lazyctrl_chaos

let check = Alcotest.check
let sid = Ids.Switch_id.of_int

(* --- Reliable: a two-endpoint harness over a scriptable wire ----------------- *)

type wire = {
  mutable drop : int -> bool;  (** by data-transmission index *)
  mutable dup : bool;
  mutable tx : int;
}

(* [a] sends ints to [b]; acks flow back. Data and acks each take 1 ms. *)
let make_pair ?(config = Reliable.default_config) engine =
  let wire = { drop = (fun _ -> false); dup = false; tx = 0 } in
  let got = ref [] in
  let a_ref = ref None and b_ref = ref None in
  let a =
    Reliable.create engine config
      ~send_data:(fun ~epoch ~seq payload ->
        let i = wire.tx in
        wire.tx <- wire.tx + 1;
        if not (wire.drop i) then begin
          let deliver () =
            match !b_ref with
            | Some b ->
                List.iter
                  (fun v -> got := v :: !got)
                  (Reliable.handle_data b ~epoch ~seq payload)
            | None -> ()
          in
          ignore (Engine.schedule engine ~after:(Time.of_ms 1) deliver);
          if wire.dup then
            ignore (Engine.schedule engine ~after:(Time.of_ms 2) deliver)
        end)
      ~send_ack:(fun ~epoch:_ ~cum:_ -> ())
      ~name:"a" ()
  in
  let b =
    Reliable.create engine config
      ~send_data:(fun ~epoch:_ ~seq:_ _ -> ())
      ~send_ack:(fun ~epoch ~cum ->
        ignore
          (Engine.schedule engine ~after:(Time.of_ms 1) (fun () ->
               match !a_ref with
               | Some a -> Reliable.handle_ack a ~epoch ~cum
               | None -> ())))
      ~name:"b" ()
  in
  a_ref := Some a;
  b_ref := Some b;
  (a, b, wire, got)

let received got = List.rev !got

let test_reliable_in_order_under_loss () =
  let e = Engine.create () in
  let a, b, wire, got = make_pair e in
  check Alcotest.string "session carries its diagnostic name" "a"
    (Reliable.name a);
  wire.drop <- (fun i -> i mod 3 = 2);
  for i = 0 to 9 do
    Reliable.send a i
  done;
  Engine.run ~until:(Time.of_sec 60) e;
  check (Alcotest.list Alcotest.int) "all delivered in order"
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (received got);
  check Alcotest.bool "retransmissions happened" true
    ((Reliable.stats a).Reliable.retransmits > 0);
  check Alcotest.int "no exactly-once violations" 0
    ((Reliable.stats b).Reliable.violations);
  check Alcotest.int "nothing in flight" 0 (Reliable.in_flight a)

let test_reliable_dedups_duplicates () =
  let e = Engine.create () in
  let a, b, wire, got = make_pair e in
  wire.dup <- true;
  for i = 0 to 4 do
    Reliable.send a i
  done;
  Engine.run ~until:(Time.of_sec 30) e;
  check (Alcotest.list Alcotest.int) "each exactly once" [ 0; 1; 2; 3; 4 ]
    (received got);
  check Alcotest.bool "duplicates suppressed" true
    ((Reliable.stats b).Reliable.dups_ignored > 0);
  check Alcotest.int "no violations" 0 ((Reliable.stats b).Reliable.violations)

let test_reliable_epoch_reset () =
  let e = Engine.create () in
  let a, b, _wire, got = make_pair e in
  List.iter (Reliable.send a) [ 1; 2; 3 ];
  Engine.run ~until:(Time.of_sec 10) e;
  (* The sender reboots: seq restarts at 0 in a fresh epoch; the receiver
     must adopt it rather than treat seq 0 as a stale duplicate. *)
  Reliable.reset a;
  check Alcotest.int "new epoch" 1 (Reliable.epoch a);
  List.iter (Reliable.send a) [ 10; 11 ];
  Engine.run ~until:(Time.of_sec 20) e;
  check (Alcotest.list Alcotest.int) "post-reset stream delivered"
    [ 1; 2; 3; 10; 11 ] (received got);
  check Alcotest.int "no violations" 0 ((Reliable.stats b).Reliable.violations)

let test_reliable_give_up_and_kick () =
  let e = Engine.create () in
  let a, _b, wire, got = make_pair e in
  wire.drop <- (fun _ -> true);
  Reliable.send a 42;
  Engine.run ~until:(Time.of_min 5) e;
  check Alcotest.bool "gave up after max retries" true (Reliable.has_given_up a);
  check Alcotest.bool "give-up counted" true
    ((Reliable.stats a).Reliable.give_ups > 0);
  check (Alcotest.list Alcotest.int) "nothing delivered" [] (received got);
  (* Link repaired, session kicked: the queued payload finally lands. *)
  wire.drop <- (fun _ -> false);
  Reliable.kick a;
  Engine.run ~until:(Time.of_min 10) e;
  check (Alcotest.list Alcotest.int) "delivered after kick" [ 42 ] (received got)

let test_reliable_tail_drop () =
  let e = Engine.create () in
  let config = { Reliable.default_config with Reliable.max_queue = 3 } in
  let a, _b, wire, _got = make_pair ~config e in
  wire.drop <- (fun _ -> true);
  for i = 0 to 4 do
    Reliable.send a i
  done;
  check Alcotest.int "window bounded" 3 (Reliable.in_flight a);
  check Alcotest.int "excess tail-dropped" 2
    ((Reliable.stats a).Reliable.tail_dropped)

(* --- strict channel wiring ----------------------------------------------------- *)

let test_strict_channel_raises () =
  let e = Engine.create () in
  let ch = Channel.create ~strict:true e ~latency:(Time.of_ms 1) ~name:"x" () in
  check Alcotest.bool "send accepted" true (Channel.send ch 42);
  Alcotest.check_raises "delivery without a receiver is a wiring bug"
    (Invalid_argument
       "Channel x: message delivered before any receiver was set (wiring-order \
        bug)")
    (fun () -> Engine.run e);
  (* A lax channel merely counts the drop. *)
  let e2 = Engine.create () in
  let lax = Channel.create e2 ~latency:(Time.of_ms 1) ~name:"y" () in
  ignore (Channel.send lax 42);
  Engine.run e2;
  check Alcotest.int "lax drop counted" 1 (Channel.dropped lax)

(* --- graceful degradation under control-link failure --------------------------- *)

let quick_config =
  {
    Controller.default_config with
    Controller.group_size_limit = 6;
    sync_period = Time.of_sec 10;
    keepalive_period = Time.of_sec 2;
    echo_period = Time.of_sec 5;
    echo_timeout = Time.of_sec 12;
    daemon_period = Time.of_sec 5;
    incremental_updates = false;
  }

let small_topo seed =
  let spec =
    {
      Lazyctrl_topo.Placement.n_switches = 12;
      n_tenants = 6;
      tenant_size_min = 8;
      tenant_size_max = 16;
      racks_per_tenant = 3;
      stray_fraction = 0.05;
    }
  in
  Lazyctrl_topo.Placement.generate
    ~rng:(Lazyctrl_util.Prng.create (seed * 7 + 3))
    spec

let make_net ?(reliable = true) ?(seed = 11) () =
  let topo = small_topo seed in
  let params =
    {
      (Params.with_seed seed Params.default) with
      Params.switch_config =
        { Edge_switch.default_config with Edge_switch.reliable_state = reliable };
    }
  in
  let controller_config =
    { quick_config with Controller.reliable_state = reliable }
  in
  let net =
    Network.create ~params ~controller_config ~mode:Network.Lazy ~topo
      ~horizon:(Time.of_hour 1) ()
  in
  Network.bootstrap net ();
  Network.run net ~until:(Time.of_sec 20);
  (net, topo)

let group_of controller sw =
  match Controller.group_config_of controller sw with
  | Some cfg -> Some cfg.Proto.group
  | None -> None

(* A same-tenant host pair whose switches sit in different groups (so
   traffic between them punts to the controller). *)
let cross_group_pair topo controller =
  let module T = Lazyctrl_topo.Topology in
  let pairs =
    List.concat_map
      (fun tid ->
        let hosts = T.tenant_hosts topo tid in
        List.concat_map
          (fun (a : Host.t) ->
            List.filter_map
              (fun (b : Host.t) ->
                let sa = T.location topo a.Host.id
                and sb = T.location topo b.Host.id in
                if
                  (not (Ids.Host_id.equal a.Host.id b.Host.id))
                  && (not (Ids.Switch_id.equal sa sb))
                  && group_of controller sa <> group_of controller sb
                then Some (a, b)
                else None)
              hosts)
          hosts)
      (T.tenants topo)
  in
  match pairs with [] -> Alcotest.fail "no cross-group pair" | p :: _ -> p

let clib_row_matches net controller sw =
  match Network.edge_switch net sw with
  | None -> false
  | Some es ->
      let sorted = List.sort_uniq Proto.host_key_compare in
      List.equal Proto.host_key_equal
        (sorted (Lfib.all_keys (Edge_switch.lfib es)))
        (sorted (Clib.row (Controller.clib controller) sw))

let test_degradation_and_reconnect () =
  let net, topo = make_net () in
  check Alcotest.int "every switch live after bootstrap"
    (Lazyctrl_topo.Topology.n_switches topo)
    (List.length (Invariant.live_switches net));
  let controller = Option.get (Network.lazy_controller net) in
  let h1, h2 = cross_group_pair topo controller in
  let sw1 = Lazyctrl_topo.Topology.location topo h1.Host.id in
  let es1 = Option.get (Network.edge_switch net sw1) in
  let engine = Network.engine net in
  let until dt = Network.run net ~until:(Time.add (Engine.now engine) dt) in
  (* Sever the control link, then hit the switch with an inter-group miss
     (a raw data frame, bypassing ARP — cross-group ARP itself needs the
     controller): the punt cannot reach the controller and must be
     buffered. *)
  Network.fail_control_link net sw1;
  Edge_switch.handle_from_host es1 h1 (Packet.data ~src:h1 ~dst:h2 ~length:1000 ());
  until (Time.of_sec 1);
  check Alcotest.bool "control link suspect" true
    (Edge_switch.control_link_suspect es1);
  check Alcotest.bool "miss buffered" true (Edge_switch.misses_pending es1 > 0);
  (* Intra-group forwarding keeps working from the local tables. *)
  let delivered_before = (Edge_switch.stats es1).Edge_switch.packets_delivered in
  (match Lazyctrl_topo.Topology.hosts_at topo sw1 with
  | a :: b :: _ ->
      Edge_switch.handle_from_host es1 a (Packet.data ~src:a ~dst:b ~length:500 ());
      until (Time.of_sec 1);
      check Alcotest.bool "intra-group still served" true
        ((Edge_switch.stats es1).Edge_switch.packets_delivered > delivered_before)
  | _ -> ());
  (* Repair before the echo timeout: the next controller echo triggers the
     reconnect — buffered misses replayed, full advert re-syncs the C-LIB. *)
  Network.repair_control_link net sw1;
  until (Time.of_sec 8);
  let s = Edge_switch.stats es1 in
  check Alcotest.bool "misses replayed" true (s.Edge_switch.misses_replayed > 0);
  check Alcotest.int "buffer drained" 0 (Edge_switch.misses_pending es1);
  check Alcotest.bool "suspicion cleared" false
    (Edge_switch.control_link_suspect es1);
  until (Time.of_sec 15);
  check Alcotest.bool "C-LIB row re-synced" true
    (clib_row_matches net controller sw1)

(* --- the discriminating test: fire-and-forget loses state, reliable heals ---- *)

(* Under a total loss burst on the control links spanning a VM migration,
   the old path loses the State_report carrying the L-FIB deltas forever
   (nothing retransmits, and the designated's delta buffer was drained by
   the send); the reliable layer retransmits it once the burst ends. The
   storm leaves peer links clean so keep-alives keep flowing — otherwise
   ring alarms escalate to a reboot whose recovery re-sync would mask the
   loss. *)
let migrate_under_total_loss ~reliable =
  let net, topo = make_net ~reliable ~seed:23 () in
  let controller = Option.get (Network.lazy_controller net) in
  let engine = Network.engine net in
  let until dt = Network.run net ~until:(Time.add (Engine.now engine) dt) in
  (* Pick a host the C-LIB already knows and a different target switch. *)
  let host =
    List.find
      (fun (h : Host.t) ->
        Clib.locate_mac (Controller.clib controller) h.Host.mac <> None)
      (Lazyctrl_topo.Topology.hosts topo)
  in
  let from_sw = Lazyctrl_topo.Topology.location topo host.Host.id in
  let to_sw =
    Ids.Switch_id.of_int
      ((Ids.Switch_id.to_int from_sw + 3)
      mod Lazyctrl_topo.Topology.n_switches topo)
  in
  let total = Channel.uniform_loss 1.0 in
  Network.set_control_loss net (Some total);
  Network.migrate_host net host.Host.id ~to_:to_sw;
  (* Flush twice inside the loss window: the first flush makes the members
     advertise their migration deltas to the designated switches over the
     (clean) peer links; after the adverts land, the second flush makes
     the designateds emit the State_reports carrying them — which the
     storm eats. Without this the deltas would sit in pending buffers
     until a sync tick after the storm clears and nothing would be lost. *)
  let flush_all () =
    List.iter
      (fun sw ->
        match Network.edge_switch net sw with
        | Some es when Edge_switch.is_up es -> Edge_switch.flush_report es
        | _ -> ())
      (Lazyctrl_topo.Topology.switches topo)
  in
  flush_all ();
  until (Time.of_ms 10);
  flush_all ();
  until (Time.of_sec 5);
  Network.set_control_loss net None;
  (* Check well before the mod-5 full-re-advert self-heal (first one fires
     ~40-50s after adoption): reliable sessions retransmit the eaten
     State_reports within seconds of the storm clearing, while the
     fire-and-forget path has nothing left to send — the deltas were
     consumed and lost — so the C-LIB keeps the stale location until the
     next periodic full advert, tens of seconds later. *)
  until (Time.of_sec 10);
  let located =
    Clib.locate_mac (Controller.clib controller) host.Host.mac
    |> Option.map Ids.Switch_id.to_int
    |> Option.value ~default:(-1)
  in
  (located, Ids.Switch_id.to_int from_sw, Ids.Switch_id.to_int to_sw)

let test_reliable_heals_migration_loss () =
  let located, _old, expected = migrate_under_total_loss ~reliable:true in
  check Alcotest.int "C-LIB converged to the new location" expected located

let test_fire_and_forget_loses_migration () =
  let located, old_loc, _expected = migrate_under_total_loss ~reliable:false in
  check Alcotest.int
    "old fire-and-forget path left the C-LIB stale (the bug the reliable \
     layer fixes)"
    old_loc located

(* --- chaos acceptance: seeded multi-fault scenario, byte-identical twice ------ *)

let test_chaos_scenario_deterministic_and_convergent () =
  let cfg = Runner.default_config in
  let r1 = Runner.run cfg in
  let r2 = Runner.run cfg in
  check Alcotest.string "byte-identical fingerprints" r1.Runner.fingerprint
    r2.Runner.fingerprint;
  let kinds =
    List.sort_uniq compare
      (List.map (fun e -> e.Fault.kind) r1.Runner.events)
  in
  check Alcotest.bool
    (Printf.sprintf "at least 5 fault kinds injected (got: %s)"
       (String.concat ", " (List.map Fault.kind_label kinds)))
    true
    (List.length kinds >= 5);
  check Alcotest.bool "channels actually lost messages" true
    (r1.Runner.link.Network.links_lost > 0);
  check Alcotest.bool "retransmissions happened" true
    (r1.Runner.reliability.Reliable.retransmits > 0);
  List.iter
    (fun (r : Invariant.report) ->
      check Alcotest.bool
        (Format.asprintf "invariant holds at quiescence: %a" Invariant.pp_report
           r)
        true r.Invariant.ok)
    r1.Runner.reports;
  check Alcotest.bool "converged before the settle deadline" true
    (r1.Runner.converged_after <> None)

let test_scenario_generation_deterministic () =
  let gen seed =
    Scenario.generate
      ~rng:(Lazyctrl_util.Prng.create seed)
      ~n_switches:8 Scenario.default
  in
  let fmt events =
    String.concat ";" (List.map (Format.asprintf "%a" Fault.pp_event) events)
  in
  check Alcotest.string "same seed, same schedule" (fmt (gen 5)) (fmt (gen 5));
  check Alcotest.bool "different seed, different schedule" true
    (fmt (gen 5) <> fmt (gen 6));
  (* Targets stay in range and peer faults never target themselves. *)
  List.iter
    (fun (e : Fault.event) ->
      let p = Ids.Switch_id.to_int e.Fault.primary
      and s = Ids.Switch_id.to_int e.Fault.secondary in
      check Alcotest.bool "primary in range" true (p >= 0 && p < 8);
      check Alcotest.bool "secondary distinct" true (s >= 0 && s < 8 && s <> p))
    (gen 5)

let () =
  ignore (sid 0);
  Alcotest.run "chaos"
    [
      ( "reliable transport",
        [
          Alcotest.test_case "in order under loss" `Quick
            test_reliable_in_order_under_loss;
          Alcotest.test_case "dedups duplicates" `Quick
            test_reliable_dedups_duplicates;
          Alcotest.test_case "epoch reset" `Quick test_reliable_epoch_reset;
          Alcotest.test_case "give up and kick" `Quick
            test_reliable_give_up_and_kick;
          Alcotest.test_case "tail drop" `Quick test_reliable_tail_drop;
        ] );
      ( "channel",
        [ Alcotest.test_case "strict wiring" `Quick test_strict_channel_raises ] );
      ( "degradation",
        [
          Alcotest.test_case "buffer, reconnect, re-sync" `Quick
            test_degradation_and_reconnect;
        ] );
      ( "discriminating",
        [
          Alcotest.test_case "reliable heals migration under loss" `Quick
            test_reliable_heals_migration_loss;
          Alcotest.test_case "fire-and-forget stays stale" `Quick
            test_fire_and_forget_loses_migration;
        ] );
      ( "acceptance",
        [
          Alcotest.test_case "scenario generation deterministic" `Quick
            test_scenario_generation_deterministic;
          Alcotest.test_case "multi-fault chaos, twice, byte-identical" `Quick
            test_chaos_scenario_deterministic_and_convergent;
        ] );
    ]
