(* Tests for lazyctrl.sim: time arithmetic and the event engine. *)

open Lazyctrl_sim

let check = Alcotest.check
let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* --- Time ------------------------------------------------------------- *)

let test_time_constructors () =
  check Alcotest.int "us" 1_000 (Time.to_ns (Time.of_us 1));
  check Alcotest.int "ms" 1_000_000 (Time.to_ns (Time.of_ms 1));
  check Alcotest.int "sec" 1_000_000_000 (Time.to_ns (Time.of_sec 1));
  check Alcotest.int "min" 60_000_000_000 (Time.to_ns (Time.of_min 1));
  check Alcotest.int "hour" 3_600_000_000_000 (Time.to_ns (Time.of_hour 1));
  check Alcotest.int "float sec" 1_500_000_000 (Time.to_ns (Time.of_float_sec 1.5))

let test_time_arithmetic () =
  let a = Time.of_ms 5 and b = Time.of_ms 3 in
  check Alcotest.int "add" 8_000_000 (Time.to_ns (Time.add a b));
  check Alcotest.int "sub" 2_000_000 (Time.to_ns (Time.sub a b));
  check Alcotest.int "diff symmetric" 2_000_000 (Time.to_ns (Time.diff b a));
  check Alcotest.int "scale" 10_000_000 (Time.to_ns (Time.scale a 2.0));
  Alcotest.check_raises "sub underflow"
    (Invalid_argument "Time.sub: negative result") (fun () ->
      ignore (Time.sub b a));
  Alcotest.check_raises "negative ns" (Invalid_argument "Time.of_ns: negative")
    (fun () -> ignore (Time.of_ns (-1)))

let test_time_compare () =
  check Alcotest.bool "lt" true Time.(Time.of_ms 1 < Time.of_ms 2);
  check Alcotest.bool "ge" true Time.(Time.of_ms 2 >= Time.of_ms 2);
  check Alcotest.int "min" 1 (Time.to_ns (Time.min (Time.of_ns 1) (Time.of_ns 2)));
  check Alcotest.int "max" 2 (Time.to_ns (Time.max (Time.of_ns 1) (Time.of_ns 2)))

let test_time_conversions =
  qtest "float roundtrip" QCheck2.Gen.(int_range 0 1_000_000_000) (fun ns ->
      let t = Time.of_ns ns in
      Float.abs (Time.to_float_sec t -. (Float.of_int ns /. 1e9)) < 1e-12)

(* --- Engine ------------------------------------------------------------ *)

let test_engine_order () =
  let e = Engine.create () in
  let log = ref [] in
  let record tag () = log := tag :: !log in
  ignore (Engine.schedule e ~after:(Time.of_ms 3) (record "c"));
  ignore (Engine.schedule e ~after:(Time.of_ms 1) (record "a"));
  ignore (Engine.schedule e ~after:(Time.of_ms 2) (record "b"));
  Engine.run e;
  check (Alcotest.list Alcotest.string) "time order" [ "a"; "b"; "c" ]
    (List.rev !log)

let test_engine_fifo_ties () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 0 to 9 do
    ignore
      (Engine.schedule e ~after:(Time.of_ms 5) (fun () -> log := i :: !log))
  done;
  Engine.run e;
  check (Alcotest.list Alcotest.int) "FIFO among equal times"
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.rev !log)

let test_engine_clock_advances () =
  let e = Engine.create () in
  let seen = ref Time.zero in
  ignore (Engine.schedule e ~after:(Time.of_ms 7) (fun () -> seen := Engine.now e));
  Engine.run e;
  check Alcotest.int "clock at event time" 7_000_000 (Time.to_ns !seen)

let test_engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let id = Engine.schedule e ~after:(Time.of_ms 1) (fun () -> fired := true) in
  check Alcotest.int "pending" 1 (Engine.pending e);
  Engine.cancel e id;
  check Alcotest.int "pending after cancel" 0 (Engine.pending e);
  Engine.run e;
  check Alcotest.bool "cancelled event silent" false !fired;
  (* Double cancel is a no-op. *)
  Engine.cancel e id;
  check Alcotest.int "pending stable" 0 (Engine.pending e)

let test_engine_nested_scheduling () =
  let e = Engine.create () in
  let count = ref 0 in
  let rec chain n =
    if n > 0 then
      ignore
        (Engine.schedule e ~after:(Time.of_ms 1) (fun () ->
             incr count;
             chain (n - 1)))
  in
  chain 5;
  Engine.run e;
  check Alcotest.int "chained events" 5 !count;
  check Alcotest.int "clock" 5_000_000 (Time.to_ns (Engine.now e))

let test_engine_run_until () =
  let e = Engine.create () in
  let fired = ref [] in
  ignore (Engine.schedule e ~after:(Time.of_ms 1) (fun () -> fired := 1 :: !fired));
  ignore (Engine.schedule e ~after:(Time.of_ms 10) (fun () -> fired := 10 :: !fired));
  Engine.run ~until:(Time.of_ms 5) e;
  check (Alcotest.list Alcotest.int) "only early event" [ 1 ] (List.rev !fired);
  check Alcotest.int "clock at horizon" 5_000_000 (Time.to_ns (Engine.now e));
  Engine.run e;
  check (Alcotest.list Alcotest.int) "late event eventually" [ 1; 10 ]
    (List.rev !fired)

let test_engine_every () =
  let e = Engine.create () in
  let count = ref 0 in
  let id = Engine.every e ~period:(Time.of_ms 10) (fun () -> incr count) in
  Engine.run ~until:(Time.of_ms 55) e;
  check Alcotest.int "five periods" 5 !count;
  Engine.cancel e id;
  Engine.run ~until:(Time.of_ms 200) e;
  check Alcotest.int "stopped after cancel" 5 !count

let test_engine_every_jitter () =
  let e = Engine.create () in
  let times = ref [] in
  let id =
    Engine.every e ~period:(Time.of_ms 10)
      ~jitter:(fun () -> Time.of_ms 5)
      (fun () -> times := Time.to_ns (Engine.now e) :: !times)
  in
  Engine.run ~until:(Time.of_ms 40) e;
  Engine.cancel e id;
  check (Alcotest.list Alcotest.int) "jittered periods"
    [ 15_000_000; 30_000_000 ]
    (List.rev !times)

let test_engine_every_cancel_late () =
  (* A recurrence that has re-armed many times must still honour its
     original id: one live instance in [pending], gone after cancel. *)
  let e = Engine.create () in
  let count = ref 0 in
  let id = Engine.every e ~period:(Time.of_ms 1) (fun () -> incr count) in
  Engine.run ~until:(Time.of_sec 1) e;
  check Alcotest.int "fired every ms" 1000 !count;
  check Alcotest.int "one pending instance" 1 (Engine.pending e);
  Engine.cancel e id;
  check Alcotest.int "pending after late cancel" 0 (Engine.pending e);
  Engine.run ~until:(Time.of_sec 2) e;
  check Alcotest.int "stopped for good" 1000 !count

let test_engine_cancel_after_fire () =
  (* Cancelling an id that already fired must not decrement [pending]
     (historically it double-counted) nor kill an unrelated event that
     reused the same internal slot. *)
  let e = Engine.create () in
  let id = Engine.schedule e ~after:(Time.of_ms 1) (fun () -> ()) in
  ignore (Engine.step e);
  check Alcotest.int "drained" 0 (Engine.pending e);
  let fired = ref false in
  ignore (Engine.schedule e ~after:(Time.of_ms 1) (fun () -> fired := true));
  Engine.cancel e id;
  check Alcotest.int "stale cancel is a no-op" 1 (Engine.pending e);
  Engine.run e;
  check Alcotest.bool "slot reuser still fires" true !fired;
  check Alcotest.int "pending settles at zero" 0 (Engine.pending e)

let test_engine_every_self_cancel () =
  (* A recurrence cancelling itself from inside its own callback must
     not be re-armed afterwards. *)
  let e = Engine.create () in
  let count = ref 0 in
  let id = ref None in
  let r =
    Engine.every e ~period:(Time.of_ms 1) (fun () ->
        incr count;
        if !count = 3 then Engine.cancel e (Option.get !id))
  in
  id := Some r;
  Engine.run ~until:(Time.of_ms 100) e;
  check Alcotest.int "stops at self-cancel" 3 !count;
  check Alcotest.int "nothing pending" 0 (Engine.pending e)

let test_engine_schedule_at_past () =
  let e = Engine.create () in
  ignore (Engine.schedule e ~after:(Time.of_ms 10) (fun () -> ()));
  Engine.run e;
  Alcotest.check_raises "past scheduling rejected"
    (Invalid_argument "Engine.schedule_at: time in the past") (fun () ->
      ignore (Engine.schedule_at e ~at:(Time.of_ms 1) (fun () -> ())))

let test_engine_step_and_count () =
  let e = Engine.create () in
  ignore (Engine.schedule e ~after:Time.zero (fun () -> ()));
  ignore (Engine.schedule e ~after:Time.zero (fun () -> ()));
  check Alcotest.bool "step fires" true (Engine.step e);
  check Alcotest.bool "step fires again" true (Engine.step e);
  check Alcotest.bool "queue empty" false (Engine.step e);
  check Alcotest.int "events processed" 2 (Engine.events_processed e)

(* Fuzz: random schedules (including nested ones) always fire in
   nondecreasing time order and fire exactly once. *)
let test_engine_fuzz =
  qtest ~count:100 "random schedules fire in order, exactly once"
    QCheck2.Gen.(list_size (int_range 1 40) (int_range 0 10_000))
    (fun delays ->
      let e = Engine.create () in
      let fired = ref [] in
      List.iteri
        (fun i d ->
          ignore
            (Engine.schedule e ~after:(Time.of_us d) (fun () ->
                 fired := (i, Time.to_ns (Engine.now e)) :: !fired;
                 (* Some events schedule follow-ups. *)
                 if i mod 3 = 0 then
                   ignore
                     (Engine.schedule e ~after:(Time.of_us d) (fun () ->
                          fired := (1000 + i, Time.to_ns (Engine.now e)) :: !fired)))))
        delays;
      Engine.run e;
      let times = List.rev_map snd !fired in
      let sorted = List.sort compare times in
      let follow_ups = List.length (List.filteri (fun i _ -> i mod 3 = 0) delays) in
      times = sorted
      && List.length times = List.length delays + follow_ups)

let () =
  Alcotest.run "sim"
    [
      ( "time",
        [
          Alcotest.test_case "constructors" `Quick test_time_constructors;
          Alcotest.test_case "arithmetic" `Quick test_time_arithmetic;
          Alcotest.test_case "compare" `Quick test_time_compare;
          test_time_conversions;
        ] );
      ( "engine",
        [
          Alcotest.test_case "time order" `Quick test_engine_order;
          Alcotest.test_case "FIFO ties" `Quick test_engine_fifo_ties;
          Alcotest.test_case "clock advances" `Quick test_engine_clock_advances;
          Alcotest.test_case "cancel" `Quick test_engine_cancel;
          Alcotest.test_case "nested scheduling" `Quick test_engine_nested_scheduling;
          Alcotest.test_case "run until" `Quick test_engine_run_until;
          Alcotest.test_case "every" `Quick test_engine_every;
          Alcotest.test_case "every with jitter" `Quick test_engine_every_jitter;
          Alcotest.test_case "every cancel after 1000 firings" `Quick
            test_engine_every_cancel_late;
          Alcotest.test_case "cancel after fire" `Quick
            test_engine_cancel_after_fire;
          Alcotest.test_case "every self-cancel" `Quick
            test_engine_every_self_cancel;
          Alcotest.test_case "past rejected" `Quick test_engine_schedule_at_past;
          Alcotest.test_case "step/count" `Quick test_engine_step_and_count;
          test_engine_fuzz;
        ] );
    ]
