(* H00x hot-path allocation-discipline tests: the spec format, the
   allocation-site inference, the reachability rules, the dynamic
   cross-validation against measured minor-words-per-op, and the
   repo-wide gates (`make lint-hotpath`).

   The exit-code matrix at the bottom shells out to the built
   lazyctrl_lint.exe (a dune dep of the test stanza), so it validates
   the real CLI gating surface per rule family. *)

open Lazyctrl_analysis

let check = Alcotest.check

let rules_of findings = List.map (fun (f : Finding.t) -> f.Finding.rule) findings
let has rule findings = List.exists (String.equal rule) (rules_of findings)

let has_substring hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i =
    i + ln <= lh && (String.equal (String.sub hay i ln) needle || go (i + 1))
  in
  go 0

let parse_structure ~file src =
  match Parse_ml.parse ~file ~src with
  | Ok s -> s
  | Error msg -> Alcotest.failf "fixture %s did not parse: %s" file msg

let parse_file file src = (file, parse_structure ~file src)

let read_file path = In_channel.with_open_text path In_channel.input_all

(* --- hot-path spec (Hotspec) ------------------------------------------------ *)

let hotspec_tests =
  [
    Alcotest.test_case "default spec round-trips through text" `Quick
      (fun () ->
        match Hotspec.parse (Hotspec.to_string Hotspec.default) with
        | Error msg -> Alcotest.failf "default spec did not parse: %s" msg
        | Ok spec ->
            check Alcotest.string "parse . to_string = id"
              (Hotspec.to_string Hotspec.default)
              (Hotspec.to_string spec));
    Alcotest.test_case "default spec validates clean" `Quick (fun () ->
        check (Alcotest.list Alcotest.string) "no defects" []
          (Hotspec.validate Hotspec.default));
    Alcotest.test_case "default spec covers the paper's hot loop" `Quick
      (fun () ->
        (* Engine event loop, edge datapath, Bloom probe, L-FIB and
           G-FIB lookups: the ISSUE's required coverage. *)
        let ids =
          List.map (fun (e : Hotspec.entry) -> e.Hotspec.h_id)
            Hotspec.default.Hotspec.hot
        in
        List.iter
          (fun id ->
            check Alcotest.bool (Printf.sprintf "declares %s" id) true
              (List.mem id ids))
          [
            "Lazyctrl_sim.Engine.step";
            "Lazyctrl_switch.Edge_switch.handle_from_host";
            "Lazyctrl_switch.Edge_switch.handle_underlay";
            "Lazyctrl_bloom.Bloom.mem";
            "Lazyctrl_switch.Lfib.lookup_mac";
            "Lazyctrl_switch.Gfib.iter_candidates_mac";
          ]);
    Alcotest.test_case "cold boundary without a why is rejected" `Quick
      (fun () ->
        (match Hotspec.parse "cold Lazyctrl_x.Y.z\n" with
        | Error msg ->
            check Alcotest.bool "names the boundary" true
              (has_substring msg "Lazyctrl_x.Y.z")
        | Ok _ -> Alcotest.fail "expected a parse error");
        let spec =
          {
            Hotspec.hot = [ { Hotspec.h_probe = "p"; h_id = "A.f" } ];
            cold = [ { Hotspec.b_id = "A.g"; b_why = "  " } ];
          }
        in
        check Alcotest.int "blank why is a validation defect" 1
          (List.length (Hotspec.validate spec)));
    Alcotest.test_case "hot entry with a justification clause is rejected"
      `Quick (fun () ->
        match Hotspec.parse "hot p A.f -- no clause allowed\n" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected a parse error");
    Alcotest.test_case "duplicates and both-hot-and-cold are defects" `Quick
      (fun () ->
        let spec =
          {
            Hotspec.hot =
              [
                { Hotspec.h_probe = "p"; h_id = "A.f" };
                { Hotspec.h_probe = "q"; h_id = "A.f" };
              ];
            cold = [ { Hotspec.b_id = "A.f"; b_why = "also cold" } ];
          }
        in
        let defects = Hotspec.validate spec in
        check Alcotest.bool "duplicate hot entry reported" true
          (List.exists (fun m -> has_substring m "duplicate hot entry") defects);
        check Alcotest.bool "hot+cold conflict reported" true
          (List.exists
             (fun m -> has_substring m "both hot entry and cold boundary")
             defects));
    Alcotest.test_case "probes deduplicate shared probe names" `Quick
      (fun () ->
        let spec =
          {
            Hotspec.hot =
              [
                { Hotspec.h_probe = "p"; h_id = "A.f" };
                { Hotspec.h_probe = "p"; h_id = "A.g" };
              ];
            cold = [];
          }
        in
        check (Alcotest.list Alcotest.string) "one probe" [ "p" ]
          (Hotspec.probes spec));
  ]

(* --- allocation-site inference (Allocsites) --------------------------------- *)

let sites_of src =
  Allocsites.scan (parse_structure ~file:"lib/fixture/f.ml" src)

let kinds_of src =
  List.map (fun (s : Allocsites.site) -> s.Allocsites.s_kind) (sites_of src)

let allocsites_tests =
  [
    Alcotest.test_case "runtime closures and tuples are sites" `Quick
      (fun () ->
        let ks = kinds_of "let f xs = List.map (fun x -> (x, x)) xs" in
        check Alcotest.bool "closure site" true
          (List.memq Allocsites.Closure ks);
        check Alcotest.bool "tuple site" true (List.memq Allocsites.Tuple ks));
    Alcotest.test_case "the fun spine of a definition is not a site" `Quick
      (fun () ->
        check (Alcotest.list Alcotest.string) "no sites" []
          (List.map
             (fun (s : Allocsites.site) ->
               Allocsites.kind_name s.Allocsites.s_kind)
             (sites_of "let f x y = x + y")));
    Alcotest.test_case "match on a literal tuple scrutinee is free" `Quick
      (fun () ->
        (* [match (a, b) with ...] compiles to a multi-column match; the
           tuple is never built. *)
        check (Alcotest.list Alcotest.string) "no sites" []
          (List.map
             (fun (s : Allocsites.site) ->
               Allocsites.kind_name s.Allocsites.s_kind)
             (sites_of
                "let f a b = match (a, b) with 0, 0 -> 1 | _, _ -> 2"));
        (* ...but a returned tuple is a real allocation. *)
        check Alcotest.bool "returned tuple is a site" true
          (List.memq Allocsites.Tuple (kinds_of "let f a b = (a, b)")));
    Alcotest.test_case "init-time bindings are skipped" `Quick (fun () ->
        check (Alcotest.list Alcotest.string) "no sites" []
          (List.map
             (fun (s : Allocsites.site) ->
               Allocsites.kind_name s.Allocsites.s_kind)
             (sites_of "let table = [ (1, \"a\"); (2, \"b\") ]")));
    Alcotest.test_case "trace-guard suppression" `Quick (fun () ->
        check (Alcotest.list Alcotest.string) "guarded alloc not a site" []
          (List.map
             (fun (s : Allocsites.site) ->
               Allocsites.kind_name s.Allocsites.s_kind)
             (sites_of
                "let f t x = if Tracer.enabled t then ignore (x, x)"));
        check Alcotest.bool "unguarded twin is a site" true
          (List.memq Allocsites.Tuple
             (kinds_of "let f b x = if b then ignore (x, x)")));
    Alcotest.test_case "kind classification drives the right H rule" `Quick
      (fun () ->
        check Alcotest.string "ref -> H001" Rules.h_hot_alloc
          (Allocsites.rule_of Allocsites.Ref);
        check Alcotest.string "indirect -> H002" Rules.h_hot_indirect
          (Allocsites.rule_of Allocsites.Indirect);
        check Alcotest.string "raise -> H003" Rules.h_hot_raise
          (Allocsites.rule_of Allocsites.Raise);
        check Alcotest.bool "closure allocates" true
          (Allocsites.is_alloc Allocsites.Closure);
        check Alcotest.bool "poly compare does not count as alloc" false
          (Allocsites.is_alloc Allocsites.Poly);
        check Alcotest.string "names are stable" "closure"
          (Allocsites.kind_name Allocsites.Closure));
    Alcotest.test_case "raise swallows its payload construction" `Quick
      (fun () ->
        let ks = kinds_of "let f x = raise (Failure x)" in
        check Alcotest.bool "one raise site" true
          (List.memq Allocsites.Raise ks);
        check Alcotest.bool "payload constructor not double-counted" false
          (List.memq Allocsites.Cons ks));
  ]

(* --- reachability rules (Hotpath) ------------------------------------------- *)

let mini_spec ?(cold = []) entries =
  {
    Hotspec.hot =
      List.map (fun (p, id) -> { Hotspec.h_probe = p; h_id = id }) entries;
    cold =
      List.map (fun (id, why) -> { Hotspec.b_id = id; b_why = why }) cold;
  }

let analyze ~spec files =
  let cg = Callgraph.build ~files ~aux:[] in
  Hotpath.analyze ~spec ~cg ~structures:files ()

let hot_entry = [ ("hp-fix", "Lazyctrl_sw.Fast.handle") ]

let hotpath_tests =
  [
    Alcotest.test_case "H001 fires on an allocation reached from hot" `Quick
      (fun () ->
        let files =
          [
            parse_file "lib/sw/fast.ml"
              "let pair x = (x, x)\nlet handle x = pair x";
          ]
        in
        let a = analyze ~spec:(mini_spec hot_entry) files in
        let f =
          List.find
            (fun (f : Finding.t) ->
              String.equal f.Finding.rule Rules.h_hot_alloc)
            a.Hotpath.a_findings
        in
        check Alcotest.string "lands on the allocating file"
          "lib/sw/fast.ml" f.Finding.file;
        check Alcotest.bool "witness chain from the entry" true
          (has_substring f.Finding.message "Fast.handle -> Fast.pair");
        check Alcotest.bool "probe tally counts the site" true
          (List.exists
             (fun (p : Hotpath.probe_status) ->
               String.equal p.Hotpath.p_probe "hp-fix"
               && p.Hotpath.p_alloc_sites = 1)
             a.Hotpath.a_probes));
    Alcotest.test_case "the allocation-free fix is clean" `Quick (fun () ->
        let files =
          [
            parse_file "lib/sw/fast.ml"
              "let pair x = x + x\nlet handle x = pair x";
          ]
        in
        let a = analyze ~spec:(mini_spec hot_entry) files in
        check (Alcotest.list Alcotest.string) "no findings" []
          (rules_of a.Hotpath.a_findings));
    Alcotest.test_case "a declared cold boundary absorbs the region" `Quick
      (fun () ->
        let files =
          [
            parse_file "lib/sw/fast.ml"
              "let slow x = (x, x)\nlet handle x = if x = 0 then slow x else x";
          ]
        in
        let spec =
          mini_spec hot_entry
            ~cold:[ ("Lazyctrl_sw.Fast.slow", "first-contact work only") ]
        in
        let a = analyze ~spec files in
        check Alcotest.bool "no H001 through the boundary" false
          (has Rules.h_hot_alloc a.Hotpath.a_findings));
    Alcotest.test_case "H002 fires on record-field dispatch, fix is direct"
      `Quick (fun () ->
        let bad =
          [
            parse_file "lib/sw/fast.ml"
              "let handle t = t.callback ()";
          ]
        in
        let a = analyze ~spec:(mini_spec hot_entry) bad in
        check Alcotest.bool "H002 reported" true
          (has Rules.h_hot_indirect a.Hotpath.a_findings);
        let fixed =
          [
            parse_file "lib/sw/fast.ml"
              "let target () = 1\nlet handle _t = target ()";
          ]
        in
        let a = analyze ~spec:(mini_spec hot_entry) fixed in
        check Alcotest.bool "direct call is clean" false
          (has Rules.h_hot_indirect a.Hotpath.a_findings));
    Alcotest.test_case "H003 fires on raise, sentinel fix is clean" `Quick
      (fun () ->
        let bad =
          [
            parse_file "lib/sw/fast.ml"
              "let handle x = if x < 0 then raise Exit else x";
          ]
        in
        let a = analyze ~spec:(mini_spec hot_entry) bad in
        check Alcotest.bool "H003 reported" true
          (has Rules.h_hot_raise a.Hotpath.a_findings);
        let fixed =
          [
            parse_file "lib/sw/fast.ml"
              "let handle x = if x < 0 then -1 else x";
          ]
        in
        let a = analyze ~spec:(mini_spec hot_entry) fixed in
        check Alcotest.bool "sentinel return is clean" false
          (has Rules.h_hot_raise a.Hotpath.a_findings));
    Alcotest.test_case "H000: unresolved entry and stale boundary" `Quick
      (fun () ->
        let files = [ parse_file "lib/sw/fast.ml" "let handle x = x" ] in
        let spec =
          mini_spec
            (("hp-fix", "Lazyctrl_sw.Fast.handle")
            :: [ ("hp-gone", "Lazyctrl_gone.Nope.run") ])
            ~cold:[ ("Lazyctrl_sw.Fast.handle2", "never reached") ]
        in
        let a = analyze ~spec files in
        let h000 =
          List.filter
            (fun (f : Finding.t) -> String.equal f.Finding.rule Rules.h_spec)
            a.Hotpath.a_findings
        in
        check Alcotest.bool "unresolved hot entry reported" true
          (List.exists
             (fun (f : Finding.t) ->
               has_substring f.Finding.message "Lazyctrl_gone.Nope.run")
             h000);
        check Alcotest.bool "unresolved boundary reported" true
          (List.exists
             (fun (f : Finding.t) ->
               has_substring f.Finding.message "Fast.handle2")
             h000));
    Alcotest.test_case "H000: boundary no hot entry reaches is stale" `Quick
      (fun () ->
        let files =
          [
            parse_file "lib/sw/fast.ml"
              "let handle x = x\nlet island x = (x, x)";
          ]
        in
        let spec =
          mini_spec hot_entry
            ~cold:[ ("Lazyctrl_sw.Fast.island", "unreachable excuse") ]
        in
        let a = analyze ~spec files in
        check Alcotest.bool "stale boundary reported" true
          (List.exists
             (fun (f : Finding.t) ->
               String.equal f.Finding.rule Rules.h_spec
               && has_substring f.Finding.message "stale")
             a.Hotpath.a_findings));
  ]

(* --- dynamic cross-validation (Hotbudget) ----------------------------------- *)

(* A statically clean probe: one hot entry, no allocation sites. *)
let clean_probe () =
  let files = [ parse_file "lib/sw/fast.ml" "let handle x = x + 1" ] in
  let a = analyze ~spec:(mini_spec hot_entry) files in
  check (Alcotest.list Alcotest.string) "fixture statically clean" []
    (rules_of a.Hotpath.a_findings);
  a.Hotpath.a_probes

let budget_of_string s =
  let entries, errs = Hotbudget.parse s in
  check (Alcotest.list Alcotest.string) "budget parses" [] errs;
  entries

let verdict_of rows probe =
  match
    List.find_opt
      (fun (r : Hotbudget.row) -> String.equal r.Hotbudget.r_probe probe)
      rows
  with
  | Some r -> Hotbudget.verdict_name r.Hotbudget.r_verdict
  | None -> Alcotest.failf "no row for %s" probe

let hotbudget_tests =
  [
    Alcotest.test_case "budget file format" `Quick (fun () ->
        let entries, errs =
          Hotbudget.parse
            "# comment\n\nhp-a 0.0 -- allocation-free\nhp-b 12.5\nhp-c \
             nonsense\nhp-d\n"
        in
        check Alcotest.int "two entries" 2 (List.length entries);
        check Alcotest.int "two malformed lines" 2 (List.length errs);
        check Alcotest.bool "epsilon is below one boxed option" true
          (Hotbudget.epsilon < 2.0));
    Alcotest.test_case
      "calibration gap: statically clean but measured allocating" `Quick
      (fun () ->
        (* THE cross-validation property: a probe the static analysis
           calls allocation-free that measures hot is a finding (H004),
           not a pass — even while within its committed budget. *)
        let probes = clean_probe () in
        let budget = budget_of_string "hp-fix 5.0 -- generous budget\n" in
        let rows, findings =
          Hotbudget.evaluate ~budget_file:"HOTPATH_budget" ~probes ~budget
            ~measured:[ ("hp-fix", 2.0) ]
        in
        check Alcotest.string "verdict" "calibration-gap"
          (verdict_of rows "hp-fix");
        check Alcotest.bool "H004 reported" true
          (has Rules.h_alloc_calibration findings);
        check Alcotest.bool "H005 not reported (within budget)" false
          (has Rules.h_alloc_budget findings));
    Alcotest.test_case "measured noise below epsilon stays clean" `Quick
      (fun () ->
        let probes = clean_probe () in
        let budget = budget_of_string "hp-fix 1.0 -- headroom\n" in
        let rows, findings =
          Hotbudget.evaluate ~budget_file:"HOTPATH_budget" ~probes ~budget
            ~measured:[ ("hp-fix", 0.01) ]
        in
        check Alcotest.string "verdict" "clean" (verdict_of rows "hp-fix");
        check (Alcotest.list Alcotest.string) "no findings" []
          (rules_of findings));
    Alcotest.test_case "a zero budget is exact: any excess is over-budget"
      `Quick (fun () ->
        (* The budget compare has no epsilon — the committed number IS
           the allowance.  0.01 over a 0.0 budget gates. *)
        let probes = clean_probe () in
        let budget = budget_of_string "hp-fix 0.0 -- allocation-free\n" in
        let rows, findings =
          Hotbudget.evaluate ~budget_file:"HOTPATH_budget" ~probes ~budget
            ~measured:[ ("hp-fix", 0.01) ]
        in
        check Alcotest.string "verdict" "over-budget"
          (verdict_of rows "hp-fix");
        check Alcotest.bool "H005 reported" true
          (has Rules.h_alloc_budget findings));
    Alcotest.test_case "budget regression is H005" `Quick (fun () ->
        let probes = clean_probe () in
        let budget = budget_of_string "hp-fix 1.0 -- small budget\n" in
        let _, findings =
          Hotbudget.evaluate ~budget_file:"HOTPATH_budget" ~probes ~budget
            ~measured:[ ("hp-fix", 3.0) ]
        in
        check Alcotest.bool "H005 reported" true
          (has Rules.h_alloc_budget findings);
        check Alcotest.bool "message names both numbers" true
          (List.exists
             (fun (f : Finding.t) ->
               has_substring f.Finding.message "3.00"
               && has_substring f.Finding.message "1.00")
             findings));
    Alcotest.test_case "unmeasured / unbudgeted / undeclared bookkeeping"
      `Quick (fun () ->
        let probes = clean_probe () in
        let rows, findings =
          Hotbudget.evaluate ~budget_file:"HOTPATH_budget" ~probes ~budget:[]
            ~measured:[]
        in
        check Alcotest.string "no budget, no measurement" "unmeasured"
          (verdict_of rows "hp-fix");
        check Alcotest.bool "missing budget reported" true
          (has Rules.h_alloc_budget findings);
        let rows, _ =
          Hotbudget.evaluate ~budget_file:"HOTPATH_budget" ~probes ~budget:[]
            ~measured:[ ("hp-fix", 0.0) ]
        in
        check Alcotest.string "measured but unbudgeted" "unbudgeted"
          (verdict_of rows "hp-fix");
        let budget = budget_of_string "hp-ghost 1.0 -- no such probe\n" in
        let _, findings =
          Hotbudget.evaluate ~budget_file:"HOTPATH_budget" ~probes ~budget
            ~measured:[ ("hp-fix", 0.0) ]
        in
        check Alcotest.bool "undeclared budget entry reported" true
          (List.exists
             (fun (f : Finding.t) ->
               has_substring f.Finding.message "hp-ghost")
             findings));
  ]

(* --- repo-wide gates --------------------------------------------------------- *)

let repo_root = ".."
let repo_allow = Filename.concat repo_root ".lazyctrl-lint-allow"
let repo_budget_file = Filename.concat repo_root "HOTPATH_budget"

let repo_available () =
  Sys.file_exists (Filename.concat repo_root "lib/analysis/hotspec.ml")
  && Sys.file_exists repo_budget_file

(* Measured numbers consistent with the committed budgets: each probe at
   its budget (statically allocating probes sit within budget; clean
   probes get 0, matching what the bench actually measures). *)
let consistent_measured () =
  let entries, errs = Hotbudget.parse (read_file repo_budget_file) in
  check (Alcotest.list Alcotest.string) "committed budget parses" [] errs;
  List.map
    (fun (e : Hotbudget.entry) -> (e.Hotbudget.e_probe, e.Hotbudget.e_words))
    entries

let repo_gate_tests =
  [
    Alcotest.test_case "the repo has zero unallowlisted H findings" `Quick
      (fun () ->
        (* The acceptance gate, mirroring the S00x one: every H finding
           in the shipped tree is fixed or carries a justification. *)
        if repo_available () then
          let report =
            Driver.run ~families:[ "H" ] ~root:repo_root
              ~allow_path:repo_allow ()
          in
          Alcotest.(check (list string)) "no gating H findings" []
            (rules_of report.Driver.findings));
    Alcotest.test_case "committed budgets cover exactly the spec's probes"
      `Quick (fun () ->
        if repo_available () then
          let budgeted =
            List.sort_uniq String.compare
              (List.map fst (consistent_measured ()))
          in
          Alcotest.(check (list string))
            "HOTPATH_budget == Hotspec.default probes"
            (Hotspec.probes Hotspec.default)
            budgeted);
    Alcotest.test_case "hotpath_check passes on consistent measurements"
      `Quick (fun () ->
        if repo_available () then begin
          let r =
            Driver.hotpath_check ~root:repo_root ~allow_path:repo_allow
              ~budget_path:"HOTPATH_budget"
              ~measured:(consistent_measured ()) ()
          in
          check Alcotest.bool "clean" true (Driver.hotpath_clean r);
          check Alcotest.bool "JSON report says so" true
            (has_substring (Driver.hotpath_report_json r) "\"clean\": true")
        end);
    Alcotest.test_case
      "hotpath_check fails on a statically-clean probe measuring hot" `Quick
      (fun () ->
        (* End-to-end disagreement: hp-lfib-lookup is statically clean
           and budgeted at 0; feed it a measured 2 words/op (one boxed
           option per hit — exactly what Hashtbl.find_opt used to cost)
           and the driver must gate on an H004 calibration gap. *)
        if repo_available () then begin
          let measured =
            ("hp-lfib-lookup", 2.0)
            :: List.remove_assoc "hp-lfib-lookup" (consistent_measured ())
          in
          let r =
            Driver.hotpath_check ~root:repo_root ~allow_path:repo_allow
              ~budget_path:"HOTPATH_budget" ~measured ()
          in
          check Alcotest.bool "not clean" false (Driver.hotpath_clean r);
          check Alcotest.bool "H004 among the gating findings" true
            (has Rules.h_alloc_calibration r.Driver.hp_findings)
        end);
    Alcotest.test_case "an unmeasured probe gates too" `Quick (fun () ->
        if repo_available () then begin
          let measured =
            List.remove_assoc "hp-engine-step" (consistent_measured ())
          in
          let r =
            Driver.hotpath_check ~root:repo_root ~allow_path:repo_allow
              ~budget_path:"HOTPATH_budget" ~measured ()
          in
          check Alcotest.bool "not clean" false (Driver.hotpath_clean r);
          check Alcotest.bool "H005 names the probe" true
            (List.exists
               (fun (f : Finding.t) ->
                 String.equal f.Finding.rule Rules.h_alloc_budget
                 && has_substring f.Finding.message "hp-engine-step")
               r.Driver.hp_findings)
        end);
  ]

(* --- SARIF metadata ---------------------------------------------------------- *)

let sarif_tests =
  [
    Alcotest.test_case "catalog covers every rule id uniformly" `Quick
      (fun () ->
        check Alcotest.bool "catalog complete" true (Sarif.catalog_complete ());
        check Alcotest.int "one entry per rule"
          (List.length Rules.all)
          (List.length Sarif.catalog);
        List.iter
          (fun rule ->
            match Sarif.metadata_of rule with
            | None -> Alcotest.failf "no SARIF metadata for %s" rule
            | Some m ->
                check Alcotest.bool
                  (Printf.sprintf "%s has short text" rule)
                  true
                  (String.length m.Sarif.m_short > 0);
                check Alcotest.bool
                  (Printf.sprintf "%s has help text" rule)
                  true
                  (String.length m.Sarif.m_help > 0))
          Rules.all);
    Alcotest.test_case "H family ships in the catalog and the docs" `Quick
      (fun () ->
        List.iter
          (fun rule ->
            check Alcotest.bool rule true
              (Option.is_some (Sarif.metadata_of rule)))
          [
            Rules.h_spec;
            Rules.h_hot_alloc;
            Rules.h_hot_indirect;
            Rules.h_hot_raise;
            Rules.h_alloc_calibration;
            Rules.h_alloc_budget;
          ]);
  ]

(* --- callgraph: let-module locals (the resolution fix this PR rode on) ------- *)

let letmodule_tests =
  [
    Alcotest.test_case "let module alias resolves to its target" `Quick
      (fun () ->
        let files =
          [
            parse_file "lib/util/a.ml" "let base x = x + 1";
            parse_file "lib/util/u.ml"
              "let go x =\n  let module M = A in\n  M.base x";
          ]
        in
        let cg = Callgraph.build ~files ~aux:[] in
        check Alcotest.bool "U.go -> A.base" true
          (List.exists
             (String.equal "Lazyctrl_util.A.base")
             (Callgraph.callees cg "Lazyctrl_util.U.go"));
        let notes =
          List.concat_map
            (fun (fi : Callgraph.finfo) -> fi.Callgraph.f_notes)
            (Callgraph.files cg)
        in
        check (Alcotest.list Alcotest.string) "nothing unresolved" [] notes);
    Alcotest.test_case "non-ident let module noted once per file" `Quick
      (fun () ->
        let files =
          [
            parse_file "lib/util/u.ml"
              "let go x =\n\
              \  let module M = struct let v = 1 end in\n\
              \  let module N = struct let v = 2 end in\n\
               x + M.v + N.v";
          ]
        in
        let cg = Callgraph.build ~files ~aux:[] in
        let fi =
          List.find
            (fun (fi : Callgraph.finfo) ->
              String.equal fi.Callgraph.f_file "lib/util/u.ml")
            (Callgraph.files cg)
        in
        check Alcotest.int "two distinct notes, deduplicated" 2
          (List.length fi.Callgraph.f_notes);
        check Alcotest.bool "note names the construct" true
          (List.exists
             (fun n -> has_substring n "non-ident module expression")
             fi.Callgraph.f_notes));
  ]

(* --- CLI exit-code matrix ----------------------------------------------------- *)

let lint_exe = Filename.concat (Filename.concat ".." "bin") "lazyctrl_lint.exe"

let run_lint args =
  let null = if Sys.win32 then "NUL" else "/dev/null" in
  Sys.command (Printf.sprintf "%s %s > %s 2>&1" lint_exe args null)

let write_file path content =
  let oc = open_out_bin path in
  output_string oc content;
  close_out oc

(* One representative rule id per family, for planting stale entries. *)
let family_rules =
  [
    ("D", "D002-raw-random");
    ("A", "A002-poly-hash");
    ("P", "P001-failover-table");
    ("E", "E001-indirect-random");
    ("L", "L001-layering");
    ("X", "X001-dead-export");
    ("S", "S001-shared-mutable");
    ("H", "H001-hot-alloc");
  ]

let with_tmp_file f =
  let path = Filename.temp_file "lazyctrl_hotpath" ".allow" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let exit_code_tests =
  [
    Alcotest.test_case "every family: clean repo + stale entry exits 3"
      `Slow (fun () ->
        (* The full matrix against the real tree: for each family, the
           repo is clean under --rules F, so appending one planted stale
           entry of that family must flip --check from 0 to exit 3 (the
           "prune the allowlist" signal, distinct from exit 1). *)
        if repo_available () && Sys.file_exists lint_exe then begin
          let real_allow = read_file repo_allow in
          List.iter
            (fun (family, rule) ->
              check Alcotest.int
                (Printf.sprintf "family %s clean with the real allowlist"
                   family)
                0
                (run_lint
                   (Printf.sprintf "--root %s --rules %s --check" repo_root
                      family));
              with_tmp_file (fun allow ->
                  write_file allow
                    (real_allow
                    ^ Printf.sprintf
                        "lib/nowhere_%s.ml %s planted stale entry\n"
                        (String.lowercase_ascii family)
                        rule);
                  check Alcotest.int
                    (Printf.sprintf "family %s stale entry exits 3" family)
                    3
                    (run_lint
                       (Printf.sprintf
                          "--root %s --allow %s --rules %s --check" repo_root
                          allow family))))
            family_rules
        end);
    Alcotest.test_case "findings beat staleness in the exit code" `Quick
      (fun () ->
        (* A tree with a real D003 finding AND a stale entry: exit 1,
           not 3 — fixing code outranks pruning the allowlist. *)
        if Sys.file_exists lint_exe then begin
          let root = Filename.temp_file "lazyctrl_lint_tree" "" in
          Sys.remove root;
          Sys.mkdir root 0o755;
          Sys.mkdir (Filename.concat root "lib") 0o755;
          Sys.mkdir (Filename.concat root "lib/fixlib") 0o755;
          Fun.protect
            ~finally:(fun () ->
              ignore
                (Sys.command
                   (Printf.sprintf "rm -rf %s" (Filename.quote root))))
            (fun () ->
              write_file
                (Filename.concat root "lib/fixlib/dirty.ml")
                "let t () = Sys.time ()";
              write_file
                (Filename.concat root "lib/fixlib/dirty.mli")
                "val t : unit -> float";
              let allow = Filename.concat root ".allow" in
              write_file allow
                "lib/nowhere.ml D002-raw-random planted stale entry\n";
              check Alcotest.int "exit 1"
                1
                (run_lint
                   (Printf.sprintf "--root %s --allow %s --rules D --check"
                      root allow)))
        end);
  ]

let () =
  Alcotest.run "hotpath"
    [
      ("hotspec", hotspec_tests);
      ("allocsites", allocsites_tests);
      ("H00x-static", hotpath_tests);
      ("H00x-crossval", hotbudget_tests);
      ("repo-gates", repo_gate_tests);
      ("sarif-metadata", sarif_tests);
      ("callgraph-letmodule", letmodule_tests);
      ("exit-codes", exit_code_tests);
    ]
