(* Tests for lazyctrl.topo: topology indexing, migration, placement, and
   the underlay core. *)

open Lazyctrl_net
open Lazyctrl_sim
open Lazyctrl_topo
module Prng = Lazyctrl_util.Prng

let check = Alcotest.check

let sid = Ids.Switch_id.of_int
let hid = Ids.Host_id.of_int
let tid = Ids.Tenant_id.of_int
let host i tenant = Host.make ~id:(hid i) ~tenant:(tid tenant)

let small_topo () =
  let t = Topology.create ~n_switches:4 in
  Topology.add_host t (host 0 0) ~at:(sid 0);
  Topology.add_host t (host 1 0) ~at:(sid 0);
  Topology.add_host t (host 2 1) ~at:(sid 1);
  Topology.add_host t (host 3 1) ~at:(sid 2);
  t

let test_topology_basics () =
  let t = small_topo () in
  check Alcotest.int "switches" 4 (Topology.n_switches t);
  check Alcotest.int "hosts" 4 (Topology.n_hosts t);
  check Alcotest.int "hosts at sw0" 2 (List.length (Topology.hosts_at t (sid 0)));
  check Alcotest.bool "location" true
    (Ids.Switch_id.equal (sid 1) (Topology.location t (hid 2)));
  check Alcotest.int "tenants" 2 (List.length (Topology.tenants t));
  check Alcotest.int "tenant 1 hosts" 2 (List.length (Topology.tenant_hosts t (tid 1)));
  check Alcotest.int "tenant 1 switches" 2
    (List.length (Topology.tenant_switches t (tid 1)))

let test_topology_find () =
  let t = small_topo () in
  let h = host 2 1 in
  (match Topology.find_by_mac t h.Host.mac with
  | Some found -> check Alcotest.bool "by mac" true (Host.equal found h)
  | None -> Alcotest.fail "mac lookup failed");
  (match Topology.find_by_ip t h.Host.ip with
  | Some found -> check Alcotest.bool "by ip" true (Host.equal found h)
  | None -> Alcotest.fail "ip lookup failed");
  check Alcotest.bool "absent mac" true
    (Topology.find_by_mac t (Mac.of_int 12345) = None)

let test_topology_migrate () =
  let t = small_topo () in
  let prev = Topology.migrate t (hid 0) ~to_:(sid 3) in
  check Alcotest.bool "previous location" true (Ids.Switch_id.equal prev (sid 0));
  check Alcotest.bool "new location" true
    (Ids.Switch_id.equal (sid 3) (Topology.location t (hid 0)));
  check Alcotest.int "sw0 lost a host" 1 (List.length (Topology.hosts_at t (sid 0)));
  check Alcotest.int "sw3 gained it" 1 (List.length (Topology.hosts_at t (sid 3)))

let test_topology_remove () =
  let t = small_topo () in
  Topology.remove_host t (hid 3);
  check Alcotest.int "host count" 3 (Topology.n_hosts t);
  check Alcotest.bool "gone from index" true
    (Topology.find_by_mac t (host 3 1).Host.mac = None);
  check Alcotest.int "tenant shrank" 1 (List.length (Topology.tenant_hosts t (tid 1)))

let test_topology_duplicate_rejected () =
  let t = small_topo () in
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Topology.add_host: duplicate host") (fun () ->
      Topology.add_host t (host 0 0) ~at:(sid 1))

let test_underlay_ip_mapping () =
  let t = small_topo () in
  let ip = Topology.underlay_ip t (sid 2) in
  (match Topology.switch_of_underlay_ip t ip with
  | Some sw -> check Alcotest.bool "roundtrip" true (Ids.Switch_id.equal sw (sid 2))
  | None -> Alcotest.fail "reverse mapping failed");
  check Alcotest.bool "foreign ip" true
    (Topology.switch_of_underlay_ip t (Ipv4.of_host_id 1) = None)

let test_vlan_of_tenant () =
  check Alcotest.int "vlan base" 1 (Topology.vlan_of_tenant (tid 0));
  check Alcotest.int "vlan wraps in 12-bit space" 1
    (Topology.vlan_of_tenant (tid 4094))

(* --- Placement ----------------------------------------------------------------- *)

let test_placement_generates_spec () =
  let spec =
    {
      Placement.n_switches = 20;
      n_tenants = 5;
      tenant_size_min = 10;
      tenant_size_max = 20;
      racks_per_tenant = 3;
      stray_fraction = 0.1;
    }
  in
  let topo = Placement.generate ~rng:(Prng.create 1) spec in
  check Alcotest.int "switch count" 20 (Topology.n_switches topo);
  check Alcotest.int "tenant count" 5 (List.length (Topology.tenants topo));
  List.iter
    (fun ten ->
      let n = List.length (Topology.tenant_hosts topo ten) in
      if n < 10 || n > 20 then Alcotest.failf "tenant size %d out of bounds" n)
    (Topology.tenants topo);
  check Alcotest.bool "host count in range" true
    (Topology.n_hosts topo >= 50 && Topology.n_hosts topo <= 100)

let test_placement_locality () =
  let spec =
    {
      Placement.n_switches = 50;
      n_tenants = 10;
      tenant_size_min = 30;
      tenant_size_max = 50;
      racks_per_tenant = 3;
      stray_fraction = 0.0;
    }
  in
  let topo = Placement.generate ~rng:(Prng.create 2) spec in
  (* With no strays, each tenant occupies at most its home racks. *)
  List.iter
    (fun ten ->
      let racks = List.length (Topology.tenant_switches topo ten) in
      if racks > 3 then Alcotest.failf "tenant spread over %d racks" racks)
    (Topology.tenants topo)

let test_placement_deterministic () =
  let topo1 = Placement.generate ~rng:(Prng.create 7) Placement.default in
  let topo2 = Placement.generate ~rng:(Prng.create 7) Placement.default in
  check Alcotest.int "same host count" (Topology.n_hosts topo1) (Topology.n_hosts topo2);
  List.iter2
    (fun (a : Host.t) (b : Host.t) ->
      if not (Ids.Switch_id.equal (Topology.location topo1 a.id) (Topology.location topo2 b.id))
      then Alcotest.fail "placement not deterministic")
    (Topology.hosts topo1) (Topology.hosts topo2)

let test_placement_scaled () =
  let s = Placement.scaled ~factor:10 Placement.default in
  check Alcotest.int "switches x10+1" 2721 s.Placement.n_switches;
  check Alcotest.int "tenants x10" 1200 s.Placement.n_tenants

(* --- Underlay ------------------------------------------------------------------- *)

let encap_packet ~src_sw ~dst_sw =
  let h1 = host 1 0 and h2 = host 2 0 in
  Packet.encap
    ~outer_src:(Ipv4.of_switch_id src_sw)
    ~outer_dst:(Ipv4.of_switch_id dst_sw)
    (Packet.eth_of (Packet.data ~src:h1 ~dst:h2 ~length:64 ()))

let test_underlay_delivery () =
  let e = Engine.create () in
  let u = Underlay.create e ~latency:(Time.of_us 250) () in
  let got = ref [] in
  Underlay.register u (Ipv4.of_switch_id 1) (fun p ->
      got := (p, Time.to_ns (Engine.now e)) :: !got);
  check Alcotest.bool "send accepted" true (Underlay.send u (encap_packet ~src_sw:0 ~dst_sw:1));
  Engine.run e;
  (match !got with
  | [ (_, t) ] -> check Alcotest.int "latency" 250_000 t
  | _ -> Alcotest.fail "expected one delivery");
  check Alcotest.int "delivered" 1 (Underlay.delivered u);
  check Alcotest.bool "bytes counted" true (Underlay.bytes_carried u > 0)

let test_underlay_rejects_plain () =
  let e = Engine.create () in
  let u = Underlay.create e ~latency:Time.zero () in
  let plain = Packet.data ~src:(host 1 0) ~dst:(host 2 0) ~length:1 () in
  check Alcotest.bool "plain rejected" false (Underlay.send u plain);
  check Alcotest.int "drop counted" 1 (Underlay.dropped u)

let test_underlay_unknown_endpoint () =
  let e = Engine.create () in
  let u = Underlay.create e ~latency:Time.zero () in
  check Alcotest.bool "unknown endpoint" false
    (Underlay.send u (encap_packet ~src_sw:0 ~dst_sw:9))

let test_underlay_path_failure () =
  let e = Engine.create () in
  let u = Underlay.create e ~latency:Time.zero () in
  let delivered = ref 0 in
  Underlay.register u (Ipv4.of_switch_id 1) (fun _ -> incr delivered);
  let src = Ipv4.of_switch_id 0 and dst = Ipv4.of_switch_id 1 in
  Underlay.fail_path u ~src ~dst;
  check Alcotest.bool "path down" false (Underlay.path_up u ~src ~dst);
  check Alcotest.bool "dropped on failed path" false
    (Underlay.send u (encap_packet ~src_sw:0 ~dst_sw:1));
  (* The reverse direction is unaffected. *)
  check Alcotest.bool "reverse path up" true (Underlay.path_up u ~src:dst ~dst:src);
  Underlay.repair_path u ~src ~dst;
  check Alcotest.bool "sends after repair" true
    (Underlay.send u (encap_packet ~src_sw:0 ~dst_sw:1));
  Engine.run e;
  check Alcotest.int "one delivery" 1 !delivered

let () =
  Alcotest.run "topo"
    [
      ( "topology",
        [
          Alcotest.test_case "basics" `Quick test_topology_basics;
          Alcotest.test_case "find by mac/ip" `Quick test_topology_find;
          Alcotest.test_case "migrate" `Quick test_topology_migrate;
          Alcotest.test_case "remove" `Quick test_topology_remove;
          Alcotest.test_case "duplicate rejected" `Quick test_topology_duplicate_rejected;
          Alcotest.test_case "underlay ip mapping" `Quick test_underlay_ip_mapping;
          Alcotest.test_case "tenant vlan" `Quick test_vlan_of_tenant;
        ] );
      ( "placement",
        [
          Alcotest.test_case "spec respected" `Quick test_placement_generates_spec;
          Alcotest.test_case "rack locality" `Quick test_placement_locality;
          Alcotest.test_case "deterministic" `Quick test_placement_deterministic;
          Alcotest.test_case "scaled" `Quick test_placement_scaled;
        ] );
      ( "underlay",
        [
          Alcotest.test_case "delivery" `Quick test_underlay_delivery;
          Alcotest.test_case "rejects plain" `Quick test_underlay_rejects_plain;
          Alcotest.test_case "unknown endpoint" `Quick test_underlay_unknown_endpoint;
          Alcotest.test_case "path failure" `Quick test_underlay_path_failure;
        ] );
    ]
