(* Tests for lazyctrl.openflow: matches, flow tables, messages, channels. *)

open Lazyctrl_net
open Lazyctrl_sim
open Lazyctrl_openflow

let check = Alcotest.check

let host i = Host.make ~id:(Ids.Host_id.of_int i) ~tenant:(Ids.Tenant_id.of_int 0)
let data_eth ?vlan ?(src = 1) ?(dst = 2) () =
  Packet.eth_of (Packet.data ~src:(host src) ~dst:(host dst) ?vlan ~length:100 ())

let arp_eth ?(src = 1) ?(dst = 2) () =
  Packet.eth_of
    (Packet.arp_request ~sender:(host src) ~target_ip:(host dst).Host.ip ())

(* --- Ofmatch ----------------------------------------------------------------- *)

let test_match_any () =
  check Alcotest.bool "any matches data" true (Ofmatch.matches Ofmatch.any (data_eth ()));
  check Alcotest.bool "any matches arp" true (Ofmatch.matches Ofmatch.any (arp_eth ()));
  check Alcotest.int "specificity zero" 0 (Ofmatch.specificity Ofmatch.any)

let test_match_exact_pair () =
  let m = Ofmatch.exact_pair ~src:(host 1).Host.mac ~dst:(host 2).Host.mac in
  check Alcotest.bool "matches" true (Ofmatch.matches m (data_eth ()));
  check Alcotest.bool "wrong dst" false (Ofmatch.matches m (data_eth ~dst:3 ()));
  check Alcotest.bool "wrong src" false (Ofmatch.matches m (data_eth ~src:4 ()));
  check Alcotest.int "specificity" 2 (Ofmatch.specificity m)

let test_match_of_eth_microflow () =
  let e = data_eth ~vlan:5 () in
  let m = Ofmatch.of_eth e in
  check Alcotest.bool "matches itself" true (Ofmatch.matches m e);
  check Alcotest.bool "not another flow" false (Ofmatch.matches m (data_eth ~dst:9 ()));
  let a = arp_eth () in
  let ma = Ofmatch.of_eth a in
  check Alcotest.bool "arp microflow matches" true (Ofmatch.matches ma a);
  check Alcotest.bool "arp-only rejects data" false (Ofmatch.matches ma (data_eth ()))

let test_match_ip_pins_vs_arp () =
  let m = { Ofmatch.any with Ofmatch.dst_ip = Some (host 2).Host.ip } in
  check Alcotest.bool "ip pin rejects arp" false (Ofmatch.matches m (arp_eth ()));
  check Alcotest.bool "ip pin accepts data" true (Ofmatch.matches m (data_eth ()))

let test_match_vlan () =
  let m = { Ofmatch.any with Ofmatch.vlan = Some 7 } in
  check Alcotest.bool "tag match" true (Ofmatch.matches m (data_eth ~vlan:7 ()));
  check Alcotest.bool "tag mismatch" false (Ofmatch.matches m (data_eth ~vlan:8 ()));
  check Alcotest.bool "untagged" false (Ofmatch.matches m (data_eth ()))

let test_subsumes () =
  let wide = Ofmatch.exact_pair ~src:(host 1).Host.mac ~dst:(host 2).Host.mac in
  let narrow = Ofmatch.of_eth (data_eth ()) in
  check Alcotest.bool "any subsumes all" true (Ofmatch.subsumes Ofmatch.any narrow);
  check Alcotest.bool "pair subsumes microflow" true (Ofmatch.subsumes wide narrow);
  check Alcotest.bool "microflow not wider" false (Ofmatch.subsumes narrow wide);
  check Alcotest.bool "reflexive" true (Ofmatch.subsumes wide wide)

(* --- Flow_table ----------------------------------------------------------------- *)

let entry ?(priority = 10) ?(idle = None) ?(hard = None) ?(cookie = 0) m actions =
  {
    Flow_table.priority;
    ofmatch = m;
    actions;
    idle_timeout = idle;
    hard_timeout = hard;
    cookie;
  }

let test_table_priority () =
  let t = Flow_table.create () in
  let now = Time.zero in
  Flow_table.install t ~now (entry ~priority:1 Ofmatch.any [ Action.Drop ]);
  Flow_table.install t ~now
    (entry ~priority:5
       (Ofmatch.exact_pair ~src:(host 1).Host.mac ~dst:(host 2).Host.mac)
       [ Action.Flood_local ]);
  (match Flow_table.lookup t ~now (data_eth ()) with
  | Some [ Action.Flood_local ] -> ()
  | _ -> Alcotest.fail "higher priority must win");
  match Flow_table.lookup t ~now (data_eth ~src:7 ()) with
  | Some [ Action.Drop ] -> ()
  | _ -> Alcotest.fail "fallback to catch-all"

let test_table_replace_same_match () =
  let t = Flow_table.create () in
  let now = Time.zero in
  let m = Ofmatch.exact_pair ~src:(host 1).Host.mac ~dst:(host 2).Host.mac in
  Flow_table.install t ~now (entry m [ Action.Drop ]);
  Flow_table.install t ~now (entry m [ Action.Flood_local ]);
  check Alcotest.int "replaced, not duplicated" 1 (Flow_table.size t);
  match Flow_table.lookup t ~now (data_eth ()) with
  | Some [ Action.Flood_local ] -> ()
  | _ -> Alcotest.fail "replacement must win"

let test_table_idle_timeout () =
  let t = Flow_table.create () in
  let m = Ofmatch.exact_pair ~src:(host 1).Host.mac ~dst:(host 2).Host.mac in
  Flow_table.install t ~now:Time.zero (entry ~idle:(Some (Time.of_sec 5)) m [ Action.Drop ]);
  (* Use at t=4 refreshes the idle deadline. *)
  check Alcotest.bool "hit at 4s" true
    (Flow_table.lookup t ~now:(Time.of_sec 4) (data_eth ()) <> None);
  check Alcotest.bool "still alive at 8s (refreshed)" true
    (Flow_table.lookup t ~now:(Time.of_sec 8) (data_eth ()) <> None);
  check Alcotest.bool "expired at 14s" true
    (Flow_table.lookup t ~now:(Time.of_sec 14) (data_eth ()) = None)

let test_table_hard_timeout () =
  let t = Flow_table.create () in
  let m = Ofmatch.exact_pair ~src:(host 1).Host.mac ~dst:(host 2).Host.mac in
  Flow_table.install t ~now:Time.zero (entry ~hard:(Some (Time.of_sec 5)) m [ Action.Drop ]);
  check Alcotest.bool "hit at 4s" true
    (Flow_table.lookup t ~now:(Time.of_sec 4) (data_eth ()) <> None);
  check Alcotest.bool "hard-expired at 6s despite use" true
    (Flow_table.lookup t ~now:(Time.of_sec 6) (data_eth ()) = None);
  check Alcotest.int "swept" 1 (Flow_table.sweep t ~now:(Time.of_sec 6));
  check Alcotest.int "empty after sweep" 0 (Flow_table.size t)

let test_table_sweep () =
  let t = Flow_table.create () in
  let m = Ofmatch.exact_pair ~src:(host 1).Host.mac ~dst:(host 2).Host.mac in
  Flow_table.install t ~now:Time.zero (entry ~hard:(Some (Time.of_sec 1)) m [ Action.Drop ]);
  Flow_table.install t ~now:Time.zero (entry ~priority:3 Ofmatch.any [ Action.Drop ]);
  check Alcotest.int "one expired" 1 (Flow_table.sweep t ~now:(Time.of_sec 2));
  check Alcotest.int "one left" 1 (Flow_table.size t);
  check Alcotest.int "expiry counted" 1 (Flow_table.stats t).Flow_table.expiries

let test_table_capacity_eviction () =
  let t = Flow_table.create ~capacity:2 () in
  let now = Time.zero in
  let m i = Ofmatch.exact_pair ~src:(host i).Host.mac ~dst:(host (i + 100)).Host.mac in
  Flow_table.install t ~now (entry ~priority:1 (m 1) [ Action.Drop ]);
  Flow_table.install t ~now (entry ~priority:9 (m 2) [ Action.Drop ]);
  Flow_table.install t ~now (entry ~priority:5 (m 3) [ Action.Drop ]);
  check Alcotest.int "bounded" 2 (Flow_table.size t);
  check Alcotest.int "eviction counted" 1 (Flow_table.stats t).Flow_table.evictions;
  (* The lowest-priority entry was evicted. *)
  check Alcotest.bool "low priority gone" true
    (Flow_table.lookup t ~now (data_eth ~src:1 ~dst:101 ()) = None)

let test_table_remove_matching () =
  let t = Flow_table.create () in
  let now = Time.zero in
  Flow_table.install t ~now
    (entry (Ofmatch.exact_pair ~src:(host 1).Host.mac ~dst:(host 2).Host.mac) [ Action.Drop ]);
  Flow_table.install t ~now
    (entry (Ofmatch.exact_pair ~src:(host 1).Host.mac ~dst:(host 3).Host.mac) [ Action.Drop ]);
  let wild = { Ofmatch.any with Ofmatch.src_mac = Some (host 1).Host.mac } in
  check Alcotest.int "both removed" 2 (Flow_table.remove_matching t wild);
  check Alcotest.int "empty" 0 (Flow_table.size t)

let test_table_counters () =
  let t = Flow_table.create () in
  let now = Time.zero in
  Flow_table.install t ~now (entry ~cookie:7 Ofmatch.any [ Action.Drop ]);
  ignore (Flow_table.lookup t ~now (data_eth ()));
  ignore (Flow_table.lookup t ~now (data_eth ()));
  check Alcotest.int "packet count by cookie" 2 (Flow_table.packet_count t ~cookie:7);
  let s = Flow_table.stats t in
  check Alcotest.int "lookups" 2 s.Flow_table.lookups;
  check Alcotest.int "hits" 2 s.Flow_table.hits;
  check Alcotest.int "installs" 1 s.Flow_table.installs

(* Model-based check: against a naive reference (linear scan over an
   association list with OpenFlow semantics), random install/lookup
   sequences must agree. *)
let test_table_model_based =
  let open QCheck2.Gen in
  let gen_ops =
    list_size (int_range 1 60)
      (let* kind = int_range 0 9 in
       let* src = int_range 0 3 in
       let* dst = int_range 0 3 in
       let* prio = int_range 1 3 in
       return (kind, src, dst, prio))
  in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:200 ~name:"flow table agrees with naive model"
       gen_ops
       (fun ops ->
         let t = Flow_table.create () in
         (* reference: newest-first list of (priority, match, cookie) *)
         let model = ref [] in
         let now = Time.zero in
         let ok = ref true in
         List.iter
           (fun (kind, src, dst, prio) ->
             let m =
               Ofmatch.exact_pair ~src:(host src).Host.mac ~dst:(host (dst + 10)).Host.mac
             in
             if kind < 6 then begin
               (* install *)
               let cookie = (prio * 100) + (src * 10) + dst in
               Flow_table.install t ~now
                 (entry ~priority:prio ~cookie m [ Action.Drop ]);
               model :=
                 (prio, m, cookie)
                 :: List.filter
                      (fun (p, m', _) -> not (p = prio && Ofmatch.equal m' m))
                      !model
             end
             else begin
               (* lookup and compare against the model's winner *)
               let eth = data_eth ~src ~dst:(dst + 10) () in
               let expected =
                 List.fold_left
                   (fun best (p, m', c) ->
                     if Ofmatch.matches m' eth then
                       match best with
                       | Some (bp, _) when bp >= p -> best
                       | _ -> Some (p, c)
                     else best)
                   None (List.rev !model)
                 (* rev: older first, so the later (newer) entry wins ties
                    via the [>=] above when scanned oldest-to-newest *)
               in
               let got = Flow_table.lookup t ~now eth in
               match (expected, got) with
               | None, None -> ()
               | Some _, Some _ -> ()
               | _ -> ok := false
             end)
           ops;
         !ok && Flow_table.size t = List.length !model))

(* --- Message -------------------------------------------------------------------- *)

let test_message_helpers () =
  let pkt = Packet.data ~src:(host 1) ~dst:(host 2) ~length:10 () in
  let pin =
    Message.Packet_in
      { packet = pkt; reason = Message.No_match; buffer_id = Message.no_buffer }
  in
  check Alcotest.bool "is_packet_in" true (Message.is_packet_in pin);
  check Alcotest.bool "hello isn't" false (Message.is_packet_in Message.Hello);
  let size = Message.size_estimate (fun (_ : unit) -> 0) pin in
  check Alcotest.bool "size includes packet" true (size > Packet.size_on_wire pkt)

(* --- Channel -------------------------------------------------------------------- *)

let test_channel_delivery_latency () =
  let e = Engine.create () in
  let ch = Channel.create e ~latency:(Time.of_ms 2) ~name:"c" () in
  let got = ref [] in
  Channel.set_receiver ch (fun m -> got := (m, Time.to_ns (Engine.now e)) :: !got);
  check Alcotest.bool "send ok" true (Channel.send ch "x");
  Engine.run e;
  (match !got with
  | [ ("x", t) ] -> check Alcotest.int "latency applied" 2_000_000 t
  | _ -> Alcotest.fail "expected one delivery");
  check Alcotest.int "sent" 1 (Channel.sent ch);
  check Alcotest.int "delivered" 1 (Channel.delivered ch)

let test_channel_fifo_under_jitter () =
  let e = Engine.create () in
  (* Decreasing jitter would reorder without the FIFO floor. *)
  let jitters = ref [ Time.of_ms 10; Time.of_ms 0 ] in
  let jitter () =
    match !jitters with
    | j :: rest ->
        jitters := rest;
        j
    | [] -> Time.zero
  in
  let ch = Channel.create e ~latency:(Time.of_ms 1) ~jitter ~name:"c" () in
  let got = ref [] in
  Channel.set_receiver ch (fun m -> got := m :: !got);
  ignore (Channel.send ch 1);
  ignore (Channel.send ch 2);
  Engine.run e;
  check (Alcotest.list Alcotest.int) "FIFO preserved" [ 1; 2 ] (List.rev !got)

let test_channel_failure () =
  let e = Engine.create () in
  let ch = Channel.create e ~latency:(Time.of_ms 1) ~name:"c" () in
  let got = ref 0 in
  Channel.set_receiver ch (fun () -> incr got);
  ignore (Channel.send ch ());
  Channel.fail ch;
  (* In-flight message dies with the channel epoch. *)
  check Alcotest.bool "send on dead channel" false (Channel.send ch ());
  Engine.run e;
  check Alcotest.int "nothing delivered" 0 !got;
  check Alcotest.int "drops counted" 2 (Channel.dropped ch);
  Channel.repair ch;
  ignore (Channel.send ch ());
  Engine.run e;
  check Alcotest.int "delivered after repair" 1 !got

let test_channel_no_receiver () =
  let e = Engine.create () in
  let ch = Channel.create e ~latency:Time.zero ~name:"c" () in
  ignore (Channel.send ch ());
  Engine.run e;
  check Alcotest.int "dropped without receiver" 1 (Channel.dropped ch)

let () =
  Alcotest.run "openflow"
    [
      ( "ofmatch",
        [
          Alcotest.test_case "any" `Quick test_match_any;
          Alcotest.test_case "exact pair" `Quick test_match_exact_pair;
          Alcotest.test_case "microflow" `Quick test_match_of_eth_microflow;
          Alcotest.test_case "ip pins vs arp" `Quick test_match_ip_pins_vs_arp;
          Alcotest.test_case "vlan" `Quick test_match_vlan;
          Alcotest.test_case "subsumes" `Quick test_subsumes;
        ] );
      ( "flow_table",
        [
          Alcotest.test_case "priority" `Quick test_table_priority;
          Alcotest.test_case "replace same match" `Quick test_table_replace_same_match;
          Alcotest.test_case "idle timeout" `Quick test_table_idle_timeout;
          Alcotest.test_case "hard timeout" `Quick test_table_hard_timeout;
          Alcotest.test_case "sweep" `Quick test_table_sweep;
          Alcotest.test_case "capacity eviction" `Quick test_table_capacity_eviction;
          Alcotest.test_case "remove matching" `Quick test_table_remove_matching;
          Alcotest.test_case "counters" `Quick test_table_counters;
          test_table_model_based;
        ] );
      ("message", [ Alcotest.test_case "helpers" `Quick test_message_helpers ]);
      ( "channel",
        [
          Alcotest.test_case "delivery latency" `Quick test_channel_delivery_latency;
          Alcotest.test_case "FIFO under jitter" `Quick test_channel_fifo_under_jitter;
          Alcotest.test_case "failure/repair" `Quick test_channel_failure;
          Alcotest.test_case "no receiver" `Quick test_channel_no_receiver;
        ] );
    ]
