(* The sharded engine and the sharded network plane.

   Layer 1 (Shard_engine): the window protocol itself — barrier rounds,
   idle-window skipping, the conservative admission rule, and the
   planted cross-shard-ordering fixture pinning the (time, src, seq)
   merge order.

   Layer 2 (Shard_net): the paper-level property behind the CI multicore
   matrix — a seeded scenario produces a byte-identical fingerprint at
   every domain count, across random seeds, topology sizes and window
   widths (qcheck), and double runs reproduce exactly. *)

open Lazyctrl_net
open Lazyctrl_sim
open Lazyctrl_topo
open Lazyctrl_core
open Lazyctrl_controller
module Prng = Lazyctrl_util.Prng

let qtest ?(count = 6) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* --- Domain_pool -------------------------------------------------------- *)

let test_pool_runs_everything () =
  List.iter
    (fun lanes ->
      let pool = Domain_pool.create ~lanes in
      Alcotest.(check int) "pool reports its lanes" lanes
        (Domain_pool.lanes pool);
      let n = 37 in
      let hits = Array.make n 0 in
      Domain_pool.run_all pool
        (Array.init n (fun i () -> hits.(i) <- hits.(i) + 1));
      Domain_pool.shutdown pool;
      Alcotest.(check (array int))
        (Printf.sprintf "every thunk ran once (lanes=%d)" lanes)
        (Array.make n 1) hits)
    [ 1; 2; 4 ]

exception Boom of int

let test_pool_propagates_exception () =
  let pool = Domain_pool.create ~lanes:3 in
  let raised =
    try
      Domain_pool.run_all pool
        (Array.init 8 (fun i () -> if i = 5 then raise (Boom i)));
      None
    with Boom i -> Some i
  in
  Domain_pool.shutdown pool;
  Alcotest.(check (option int)) "exception crossed the barrier" (Some 5) raised;
  (* The pool survives a failed round and still refuses work after
     shutdown. *)
  Alcotest.check_raises "run after shutdown" (Invalid_argument
      "Domain_pool.run_all: pool is shut down") (fun () ->
      Domain_pool.run_all pool (Array.init 4 (fun _ () -> ())))

(* --- Exchange: planted cross-shard-ordering regression fixture ---------- *)

(* Three sources post messages that all arrive at the same instant, in an
   adversarial wall order (src 2 first, then 0, then 1, interleaved).
   The only correct drain order is (time, src, seq); a merge keyed by
   post order, arrival order alone, or destination would fail this. *)
let test_exchange_ordering_fixture () =
  let ex = Exchange.create ~shards:3 in
  Alcotest.(check int) "exchange reports its shards" 3 (Exchange.shards ex);
  let log = ref [] in
  let record tag () = log := tag :: !log in
  let at = 1_000 in
  Exchange.post ex ~src:2 ~dst:0 ~time_ns:at (record "s2.0");
  Exchange.post ex ~src:0 ~dst:0 ~time_ns:at (record "s0.0");
  Exchange.post ex ~src:2 ~dst:0 ~time_ns:at (record "s2.1");
  Exchange.post ex ~src:1 ~dst:0 ~time_ns:at (record "s1.0");
  Exchange.post ex ~src:0 ~dst:0 ~time_ns:at (record "s0.1");
  (* An earlier arrival posted last must still drain first. *)
  Exchange.post ex ~src:1 ~dst:0 ~time_ns:(at - 1) (record "early");
  Exchange.drain ex ~into:(fun ~dst:_ ~time_ns:_ f -> f ());
  Alcotest.(check (list string))
    "drained in (time, src, seq) order"
    [ "early"; "s0.0"; "s0.1"; "s1.0"; "s2.0"; "s2.1" ]
    (List.rev !log);
  Alcotest.(check int) "all messages counted" 6 (Exchange.messages ex);
  Alcotest.(check int) "max batch" 6 (Exchange.max_batch ex);
  let pairs = Exchange.pair_counts ex in
  Alcotest.(check int) "pair 2->0" 2 pairs.(2).(0);
  Alcotest.(check int) "nothing pending after drain" 0 (Exchange.pending ex)

(* --- Shard_engine ------------------------------------------------------- *)

let test_windowed_ping_pong () =
  (* Two shards bounce a counter through the exchange; each hop adds one
     300us "link latency" over a 100us window.  The final count and the
     shard clocks pin the window protocol end-to-end. *)
  let t = Shard_engine.create ~domains:1 ~shards:2 ~window:(Time.of_us 100) () in
  let hops = ref 0 in
  let rec hop ~me ~peer () =
    incr hops;
    let at = Time.add (Engine.now (Shard_engine.engine t me)) (Time.of_us 300) in
    if !hops < 10 then Shard_engine.post t ~src:me ~dst:peer ~at (hop ~me:peer ~peer:me)
  in
  ignore
    (Engine.schedule_at (Shard_engine.engine t 0) ~at:(Time.of_us 50)
       (hop ~me:0 ~peer:1));
  Shard_engine.run t ~until:(Time.of_ms 10);
  Alcotest.(check int) "all hops fired" 10 !hops;
  Alcotest.(check int) "clocks in lockstep at the horizon"
    (Time.to_ns (Time.of_ms 10))
    (Time.to_ns (Shard_engine.now t));
  let st = Shard_engine.stats t in
  Alcotest.(check int) "every hop crossed the exchange" 9 st.Shard_engine.messages;
  (* 10 hops spaced 300us over a 100us grid: busy windows stay near the
     event count instead of the 100-window span of the horizon. *)
  Alcotest.(check bool) "idle windows skipped" true (st.Shard_engine.windows <= 12);
  Shard_engine.shutdown t

let test_conservative_violation_raises () =
  let t = Shard_engine.create ~domains:1 ~shards:2 ~window:(Time.of_us 100) () in
  ignore
    (Engine.schedule_at (Shard_engine.engine t 0) ~at:(Time.of_us 10)
       (fun () ->
         (* Arrival inside the current window (ends at 100us): illegal. *)
         Shard_engine.post t ~src:0 ~dst:1 ~at:(Time.of_us 60) (fun () -> ())));
  Alcotest.(check bool) "undercutting post raises" true
    (try
       Shard_engine.run t ~until:(Time.of_ms 1);
       false
     with Shard_engine.Conservative_violation _ -> true);
  Shard_engine.shutdown t

let test_multidomain_engine_equivalence () =
  (* Same ping-pong workload at domains 1 and 2: identical event counts,
     messages and windows. *)
  let run ~domains =
    (* One log buffer per shard: delivery callbacks run on the owning
       shard's domain, so a shared buffer would race at domains > 1. *)
    let t = Shard_engine.create ~domains ~shards:4 ~window:(Time.of_us 100) () in
    let logs = Array.init 4 (fun _ -> Buffer.create 64) in
    for s = 0 to 3 do
      ignore
        (Engine.schedule_at (Shard_engine.engine t s)
           ~at:(Time.of_us (10 + s))
           (fun () ->
             let dst = (s + 1) mod 4 in
             let at =
               Time.add (Engine.now (Shard_engine.engine t s)) (Time.of_us 250)
             in
             Shard_engine.post t ~src:s ~dst ~at (fun () ->
                 Buffer.add_string logs.(dst)
                   (Printf.sprintf "%d->%d@%d;" s dst (Time.to_ns at)))))
    done;
    Shard_engine.run t ~until:(Time.of_ms 1);
    let st = Shard_engine.stats t in
    Shard_engine.shutdown t;
    ( String.concat "|" (Array.to_list (Array.map Buffer.contents logs)),
      st.Shard_engine.events,
      st.Shard_engine.messages )
  in
  let l1, e1, m1 = run ~domains:1 in
  let l2, e2, m2 = run ~domains:2 in
  Alcotest.(check string) "same delivery log" l1 l2;
  Alcotest.(check int) "same events" e1 e2;
  Alcotest.(check int) "same messages" m1 m2

(* --- Shard_net determinism --------------------------------------------- *)

let relaxed_config =
  { Controller.default_config with Controller.group_size_limit = 3 }

let scenario ?(domains = 1) ?window ?(n_switches = 10) ~seed () =
  let topo =
    Placement.generate ~rng:(Prng.create seed)
      {
        Placement.n_switches;
        n_tenants = 4;
        tenant_size_min = 4;
        tenant_size_max = 8;
        racks_per_tenant = 2;
        stray_fraction = 0.1;
      }
  in
  let net =
    Shard_net.create ~controller_config:relaxed_config ~domains ?window ~topo
      ~horizon:(Time.of_min 10) ()
  in
  Shard_net.bootstrap net;
  Shard_net.run net ~until:(Time.of_sec 5);
  List.iter
    (fun tenant ->
      match Topology.tenant_hosts topo tenant with
      | first :: rest ->
          List.iter
            (fun (peer : Host.t) ->
              Shard_net.start_flow net ~src:first.Host.id ~dst:peer.id
                ~bytes:12_000 ~packets:5)
            rest
      | [] -> ())
    (Topology.tenants topo);
  Shard_net.run net ~until:(Time.of_sec 40);
  (* Chaos across the shard boundary: kill a switch mid-run; the
     controller's echo monitor reacts from its own shard. *)
  Shard_net.fail_switch net ~at:(Time.of_sec 45) (Ids.Switch_id.of_int 2);
  Shard_net.repair_switch net ~at:(Time.of_min 2) (Ids.Switch_id.of_int 2);
  Shard_net.run net ~until:(Time.of_min 3);
  let fp = Shard_net.fingerprint net in
  let st = Shard_net.stats net in
  Shard_net.shutdown net;
  (fp, st)

let test_scenario_is_nontrivial () =
  let fp, st = scenario ~seed:11 () in
  Alcotest.(check bool) "fingerprint non-empty" true (String.length fp > 400);
  Alcotest.(check bool) "flows delivered" true (st.Shard_net.flows_delivered > 0);
  Alcotest.(check bool)
    "every started flow was delivered" true
    (st.Shard_net.flows_delivered = st.Shard_net.flows_started);
  Alcotest.(check bool)
    "cross-shard traffic happened" true
    (st.Shard_net.engine.Shard_engine.messages > 0)

let test_double_run_identical () =
  let fp1, _ = scenario ~seed:11 () in
  let fp2, _ = scenario ~seed:11 () in
  Alcotest.(check string) "same seed, byte-identical" fp1 fp2;
  let fp3, _ = scenario ~seed:12 () in
  Alcotest.(check bool) "different seed differs" false (String.equal fp1 fp3)

let test_domain_counts_identical () =
  let fp1, _ = scenario ~seed:11 ~domains:1 () in
  List.iter
    (fun domains ->
      let fpn, _ = scenario ~seed:11 ~domains () in
      Alcotest.(check string)
        (Printf.sprintf "d1 vs d%d byte-identical" domains)
        fp1 fpn)
    [ 2; 4 ]

let test_env_domains_default () =
  (* Whatever LAZYCTRL_DOMAINS says, it parses to a sane lane count and
     the explicit argument overrides it. *)
  let d = Shard_engine.default_domains () in
  Alcotest.(check bool) "default domain count sane" true (d >= 1);
  let net =
    Shard_net.create ~domains:2
      ~topo:
        (Placement.generate ~rng:(Prng.create 3)
           {
             Placement.n_switches = 6;
             n_tenants = 2;
             tenant_size_min = 4;
             tenant_size_max = 6;
             racks_per_tenant = 2;
             stray_fraction = 0.0;
           })
      ~horizon:(Time.of_min 1) ()
  in
  Alcotest.(check int) "explicit domains win" 2 (Shard_net.domains net);
  Alcotest.(check int) "logical shards fixed at 4+1" 4 (Shard_net.switch_shards net);
  Shard_net.shutdown net

let gen_case =
  let open QCheck2.Gen in
  let* seed = int_range 1 500 in
  let* n_switches = int_range 6 14 in
  let* domains = int_range 2 4 in
  let* window_us = oneofl [ 50; 100; 150 ] in
  return (seed, n_switches, domains, window_us)

let prop_domain_count_invariance (seed, n_switches, domains, window_us) =
  let window = Time.of_us window_us in
  let fp1, _ = scenario ~seed ~n_switches ~domains:1 ~window () in
  let fpn, _ = scenario ~seed ~n_switches ~domains ~window () in
  String.equal fp1 fpn

let () =
  Alcotest.run "shard"
    [
      ( "domain-pool",
        [
          Alcotest.test_case "runs every thunk" `Quick test_pool_runs_everything;
          Alcotest.test_case "propagates exceptions" `Quick
            test_pool_propagates_exception;
        ] );
      ( "exchange",
        [
          Alcotest.test_case "planted ordering fixture" `Quick
            test_exchange_ordering_fixture;
        ] );
      ( "shard-engine",
        [
          Alcotest.test_case "windowed ping-pong" `Quick test_windowed_ping_pong;
          Alcotest.test_case "conservative violation raises" `Quick
            test_conservative_violation_raises;
          Alcotest.test_case "multi-domain equivalence" `Quick
            test_multidomain_engine_equivalence;
        ] );
      ( "shard-net",
        [
          Alcotest.test_case "scenario non-trivial" `Slow
            test_scenario_is_nontrivial;
          Alcotest.test_case "double run identical" `Slow
            test_double_run_identical;
          Alcotest.test_case "domain counts identical" `Slow
            test_domain_counts_identical;
          Alcotest.test_case "env default + overrides" `Quick
            test_env_domains_default;
          qtest ~count:4 "qcheck: fingerprint invariant in domains/window"
            gen_case prop_domain_count_invariance;
        ] );
    ]
