(* Integration tests for lazyctrl.core: the host model, the controller
   service queue, and whole-network simulations in both modes — flow
   delivery, ARP resolution, laziness (controller shielding), VM
   migration, and end-to-end failover. *)

open Lazyctrl_net
open Lazyctrl_sim
open Lazyctrl_topo
open Lazyctrl_core
open Lazyctrl_controller
open Lazyctrl_metrics
module Prng = Lazyctrl_util.Prng

let check = Alcotest.check
let sid = Ids.Switch_id.of_int
let hid = Ids.Host_id.of_int
let tid = Ids.Tenant_id.of_int

(* A small deterministic topology: 6 switches, 2 tenants with strong rack
   affinity (tenant 0 on sw0/sw1, tenant 1 on sw4/sw5), which groups
   cleanly into two LCGs. *)
let small_topo () =
  let topo = Topology.create ~n_switches:6 in
  let add i tenant at =
    Topology.add_host topo (Host.make ~id:(hid i) ~tenant:(tid tenant)) ~at:(sid at)
  in
  add 0 0 0;
  add 1 0 0;
  add 2 0 1;
  add 3 0 1;
  add 10 1 4;
  add 11 1 4;
  add 12 1 5;
  add 13 1 5;
  topo

let quick_config =
  {
    Controller.default_config with
    Controller.group_size_limit = 3;
    sync_period = Time.of_sec 5;
    keepalive_period = Time.of_sec 2;
    echo_period = Time.of_sec 5;
    echo_timeout = Time.of_sec 12;
    daemon_period = Time.of_sec 5;
    incremental_updates = false;
  }

let make ?(mode = Network.Lazy) ?(topo = small_topo ()) () =
  let net =
    Network.create ~controller_config:quick_config ~mode ~topo
      ~horizon:(Time.of_hour 1) ()
  in
  Network.bootstrap net ();
  Network.run net ~until:(Time.of_sec 20);
  net

(* --- Service queue ----------------------------------------------------------- *)

let test_service_queue_fifo_and_delay () =
  let e = Engine.create () in
  let q = Service_queue.create e ~service_time:(Time.of_ms 10) in
  let log = ref [] in
  Service_queue.submit q (fun () -> log := (1, Time.to_ns (Engine.now e)) :: !log);
  Service_queue.submit q (fun () -> log := (2, Time.to_ns (Engine.now e)) :: !log);
  check Alcotest.int "queued" 2 (Service_queue.queue_length q);
  Engine.run e;
  (match List.rev !log with
  | [ (1, t1); (2, t2) ] ->
      check Alcotest.int "first after one service" 10_000_000 t1;
      check Alcotest.int "second queues behind" 20_000_000 t2
  | _ -> Alcotest.fail "expected FIFO completion");
  check Alcotest.int "drained" 0 (Service_queue.queue_length q);
  check Alcotest.int "completed" 2 (Service_queue.completed q)

(* --- Host model ---------------------------------------------------------------- *)

let test_host_model_arp_then_data () =
  let e = Engine.create () in
  let sent = ref [] in
  let hm =
    Host_model.create e
      ~send:(fun h p -> sent := (h, p) :: !sent)
      ~arp_ttl:(Time.of_min 10) ~stack_delay:(Time.of_us 30)
  in
  let h1 = Host.make ~id:(hid 1) ~tenant:(tid 0) in
  let h2 = Host.make ~id:(hid 2) ~tenant:(tid 0) in
  Host_model.start_flow hm ~src:h1 ~dst:h2 ~bytes:1000 ~packets:2;
  (* Cold cache: an ARP request goes out, data waits. *)
  (match !sent with
  | [ (_, p) ] -> check Alcotest.bool "ARP first" true (Packet.is_broadcast p)
  | _ -> Alcotest.fail "expected one ARP request");
  check Alcotest.int "arp counted" 1 (Host_model.arp_requests_sent hm);
  check Alcotest.int "pending" 1 (Host_model.pending_resolutions hm);
  (* A second flow to the same target queues without another ARP. *)
  Host_model.start_flow hm ~src:h1 ~dst:h2 ~bytes:1000 ~packets:1;
  check Alcotest.int "no duplicate ARP" 1 (Host_model.arp_requests_sent hm);
  (* Deliver the request to h2: it replies after its stack delay. (The
     engine is advanced only past the stack delay — draining it fully
     would fire the ARP retransmission timers first.) *)
  let request = match !sent with [ (_, p) ] -> p | _ -> assert false in
  sent := [];
  check Alcotest.bool "request handled" true
    (Host_model.deliver hm ~to_:h2 request = Host_model.Arp_handled);
  Engine.run ~until:(Time.of_ms 1) e;
  let reply = match !sent with [ (_, p) ] -> p | _ -> Alcotest.fail "expected reply" in
  sent := [];
  (* Reply resolves the cache and releases both queued flows. *)
  check Alcotest.bool "reply consumed" true
    (Host_model.deliver hm ~to_:h1 reply = Host_model.Arp_handled);
  check Alcotest.int "both data packets out" 2 (List.length !sent);
  check Alcotest.int "flows started" 2 (Host_model.flows_started hm);
  (* Warm cache now: a third flow sends data immediately. *)
  Host_model.start_flow hm ~src:h1 ~dst:h2 ~bytes:10 ~packets:1;
  check Alcotest.int "no new ARP" 1 (Host_model.arp_requests_sent hm)

let test_host_model_arp_retry_and_give_up () =
  let e = Engine.create () in
  let arps = ref 0 in
  (* A black-hole network: every frame vanishes. *)
  let hm =
    Host_model.create e
      ~send:(fun _ p -> if Packet.is_broadcast p then incr arps)
      ~arp_ttl:(Time.of_min 10) ~stack_delay:Time.zero
  in
  let h1 = Host.make ~id:(hid 1) ~tenant:(tid 0) in
  let h2 = Host.make ~id:(hid 2) ~tenant:(tid 0) in
  Host_model.start_flow hm ~src:h1 ~dst:h2 ~bytes:1 ~packets:1;
  Engine.run e;
  (* Initial request plus 4 retransmissions, then the resolution is
     abandoned so later flows can retry fresh. *)
  check Alcotest.int "1 + 4 retries" 5 !arps;
  check Alcotest.int "gave up once" 1 (Host_model.resolutions_failed hm);
  check Alcotest.int "nothing pending" 0 (Host_model.pending_resolutions hm);
  Host_model.start_flow hm ~src:h1 ~dst:h2 ~bytes:1 ~packets:1;
  check Alcotest.int "fresh resolution starts" 6 !arps

let test_host_model_delivery_classification () =
  let e = Engine.create () in
  let sent = ref [] in
  let hm =
    Host_model.create e
      ~send:(fun _ p -> sent := p :: !sent)
      ~arp_ttl:(Time.of_min 10) ~stack_delay:Time.zero
  in
  let h1 = Host.make ~id:(hid 1) ~tenant:(tid 0) in
  let h2 = Host.make ~id:(hid 2) ~tenant:(tid 0) in
  (* Warm the cache directly via an unsolicited reply. *)
  ignore (Host_model.deliver hm ~to_:h1 (Packet.arp_reply ~sender:h2 ~requester:h1 ()));
  Host_model.start_flow hm ~src:h1 ~dst:h2 ~bytes:100 ~packets:3;
  let data = match !sent with [ p ] -> p | _ -> Alcotest.fail "expected data" in
  (match Host_model.deliver hm ~to_:h2 data with
  | Host_model.Data_first meta ->
      check Alcotest.int "packets" 3 meta.Host_model.packets;
      check Alcotest.bool "src/dst" true
        (Ids.Host_id.equal meta.Host_model.src h1.Host.id
        && Ids.Host_id.equal meta.Host_model.dst h2.Host.id)
  | _ -> Alcotest.fail "expected first delivery");
  (* A duplicate (Bloom multicast) is classified as such. *)
  check Alcotest.bool "duplicate" true
    (Host_model.deliver hm ~to_:h2 data = Host_model.Data_duplicate);
  (* A frame for someone else is ignored. *)
  let h3 = Host.make ~id:(hid 3) ~tenant:(tid 0) in
  check Alcotest.bool "not for host" true
    (Host_model.deliver hm ~to_:h3 data = Host_model.Not_for_host)

(* --- End-to-end, lazy mode ------------------------------------------------------ *)

let run_flow net ~src ~dst =
  let before = Host_model.flows_delivered (Network.host_model net) in
  Network.start_flow net ~src ~dst ~bytes:2000 ~packets:2;
  Network.run net
    ~until:(Time.add (Engine.now (Network.engine net)) (Time.of_sec 5));
  Host_model.flows_delivered (Network.host_model net) - before

let test_lazy_intra_switch_flow () =
  let net = make () in
  check Alcotest.int "delivered" 1 (run_flow net ~src:(hid 0) ~dst:(hid 1));
  (* Same switch: the controller was never involved. *)
  let c = Option.get (Network.lazy_controller net) in
  check Alcotest.int "no packet-ins" 0 (Controller.stats c).Controller.packet_ins

let test_lazy_intra_group_flow_shields_controller () =
  let net = make () in
  (* sw0 and sw1 host tenant 0 and are grouped together by the placement
     prior; h0 (sw0) -> h2 (sw1) must stay in the data plane. *)
  let c = Option.get (Network.lazy_controller net) in
  let g = Option.get (Controller.grouping c) in
  check Alcotest.bool "same LCG" true
    (Lazyctrl_grouping.Grouping.same_group g (sid 0) (sid 1));
  check Alcotest.int "delivered" 1 (run_flow net ~src:(hid 0) ~dst:(hid 2));
  check Alcotest.int "controller shielded" 0 (Controller.stats c).Controller.packet_ins;
  let stats = Network.switch_stats_sum net in
  check Alcotest.bool "went through the G-FIB" true
    (stats.Lazyctrl_switch.Edge_switch.gfib_handled
     + stats.Lazyctrl_switch.Edge_switch.flow_table_handled
    > 0)

let test_lazy_inter_group_flow_uses_controller () =
  let net = make () in
  let c = Option.get (Network.lazy_controller net) in
  let g = Option.get (Controller.grouping c) in
  check Alcotest.bool "different LCGs" false
    (Lazyctrl_grouping.Grouping.same_group g (sid 0) (sid 4));
  check Alcotest.int "delivered across groups" 1 (run_flow net ~src:(hid 0) ~dst:(hid 10));
  check Alcotest.bool "controller involved" true
    ((Controller.stats c).Controller.requests > 0)

let test_lazy_latency_recorded () =
  let net = make () in
  ignore (run_flow net ~src:(hid 0) ~dst:(hid 2));
  let s = Recorder.first_latency_summary (Network.recorder net) in
  check Alcotest.int "one first-packet sample" 1 (Lazyctrl_util.Stats.Online.count s);
  (* Intra-group cold-cache latency sits well under a controller RTT. *)
  check Alcotest.bool "sub-2ms" true (Lazyctrl_util.Stats.Online.mean s < 2.0)

let test_lazy_migration_end_to_end () =
  let net = make () in
  ignore (run_flow net ~src:(hid 0) ~dst:(hid 2));
  (* Move h2 from sw1 to sw0; adverts must propagate and traffic follow. *)
  Network.migrate_host net (hid 2) ~to_:(sid 0);
  Network.run net ~until:(Time.add (Engine.now (Network.engine net)) (Time.of_sec 10));
  check Alcotest.int "reachable after migration" 1 (run_flow net ~src:(hid 1) ~dst:(hid 2));
  let c = Option.get (Network.lazy_controller net) in
  (match Clib.locate_mac (Controller.clib c)
           (Topology.host (Network.topology net) (hid 2)).Host.mac
   with
  | Some sw -> check Alcotest.int "C-LIB tracked the move" 0 (Ids.Switch_id.to_int sw)
  | None -> Alcotest.fail "C-LIB lost the host")

let test_lazy_switch_failover_end_to_end () =
  let net = make () in
  let c = Option.get (Network.lazy_controller net) in
  let verdicts = ref [] in
  Controller.set_failover_hook c (fun sw v -> verdicts := (sw, v) :: !verdicts);
  Network.fail_switch net (sid 1);
  Network.run net ~until:(Time.add (Engine.now (Network.engine net)) (Time.of_min 2));
  check Alcotest.bool "switch failure detected" true
    (List.exists (fun (sw, v) -> Ids.Switch_id.equal sw (sid 1) && v = Failover.Switch_failure)
       !verdicts);
  (match Network.edge_switch net (sid 1) with
  | Some sw -> check Alcotest.bool "rebooted" true (Lazyctrl_switch.Edge_switch.is_up sw)
  | None -> Alcotest.fail "switch object missing");
  (* After recovery and re-sync, traffic to its hosts flows again. *)
  check Alcotest.int "recovered datapath" 1 (run_flow net ~src:(hid 0) ~dst:(hid 2))

let test_lazy_data_path_detour () =
  let net = make () in
  ignore (run_flow net ~src:(hid 0) ~dst:(hid 2));
  (* Break sw0 -> sw1 and notify: the controller installs detour rules via
     another member of sw1's group, so traffic still arrives. *)
  Network.fail_data_path net ~src:(sid 0) ~dst:(sid 1) ~notify:true;
  Network.run net ~until:(Time.add (Engine.now (Network.engine net)) (Time.of_sec 2));
  check Alcotest.int "detoured delivery" 1 (run_flow net ~src:(hid 0) ~dst:(hid 2))

let test_deploy_host () =
  let net = make () in
  let fresh = Host.make ~id:(hid 99) ~tenant:(tid 0) in
  Network.deploy_host net fresh ~at:(sid 1);
  Network.run net ~until:(Time.add (Engine.now (Network.engine net)) (Time.of_sec 10));
  check Alcotest.int "new VM reachable" 1 (run_flow net ~src:(hid 0) ~dst:(hid 99))

(* --- End-to-end, OpenFlow mode ---------------------------------------------------- *)

let test_openflow_flow_delivery () =
  let net = make ~mode:Network.Openflow () in
  check Alcotest.int "delivered" 1 (run_flow net ~src:(hid 0) ~dst:(hid 2));
  let c = Option.get (Network.of_controller net) in
  check Alcotest.bool "controller did the work" true
    ((Lazyctrl_baseline.Of_controller.stats c).Lazyctrl_baseline.Of_controller.requests
    > 0)

let test_openflow_latency_higher_than_lazy () =
  let lazy_net = make () in
  ignore (run_flow lazy_net ~src:(hid 0) ~dst:(hid 2));
  let of_net = make ~mode:Network.Openflow () in
  ignore (run_flow of_net ~src:(hid 0) ~dst:(hid 2));
  let mean net = Lazyctrl_util.Stats.Online.mean (Recorder.first_latency_summary (Network.recorder net)) in
  check Alcotest.bool "lazy beats OpenFlow cold-cache" true
    (mean lazy_net < mean of_net)

let test_modes_accessors () =
  let net = make () in
  check Alcotest.bool "lazy accessors" true
    (Network.lazy_controller net <> None && Network.of_controller net = None
    && Network.edge_switch net (sid 0) <> None
    && Network.of_switch net (sid 0) = None);
  let net2 = make ~mode:Network.Openflow () in
  check Alcotest.bool "openflow accessors" true
    (Network.of_controller net2 <> None && Network.lazy_controller net2 = None)

let test_default_intensity_prior () =
  let topo = small_topo () in
  let g = Network.default_intensity topo in
  (* Tenant co-location: sw0-sw1 and sw4-sw5 share tenants, sw0-sw4 do not. *)
  check Alcotest.bool "same-tenant edge" true (Lazyctrl_graph.Wgraph.edge_weight g 0 1 > 0.0);
  check (Alcotest.float 1e-9) "no cross-tenant edge" 0.0
    (Lazyctrl_graph.Wgraph.edge_weight g 0 4)

let test_replay_through_network () =
  let topo = small_topo () in
  let b = Lazyctrl_traffic.Trace.Builder.create ~n_hosts:14 ~duration:(Time.of_min 5) in
  for i = 1 to 20 do
    Lazyctrl_traffic.Trace.Builder.add b
      ~time:(Time.of_sec (30 + i))
      ~src:(hid (i mod 2))
      ~dst:(hid (2 + (i mod 2)))
      ~bytes:500 ~packets:1
  done;
  let trace = Lazyctrl_traffic.Trace.Builder.build b in
  let net =
    Network.create ~controller_config:quick_config ~mode:Network.Lazy ~topo
      ~horizon:(Time.of_min 10) ()
  in
  Network.bootstrap net ();
  Network.replay net trace;
  Network.run net ~until:(Time.of_min 10);
  check Alcotest.int "all flows delivered" 20
    (Host_model.flows_delivered (Network.host_model net));
  (* Workload was recorded in the right buckets. *)
  check Alcotest.bool "recorder saw requests or not, but no crash" true
    (Recorder.total_requests (Network.recorder net) >= 0)

let () =
  Alcotest.run "network"
    [
      ( "service_queue",
        [ Alcotest.test_case "FIFO and delay" `Quick test_service_queue_fifo_and_delay ] );
      ( "host_model",
        [
          Alcotest.test_case "ARP then data" `Quick test_host_model_arp_then_data;
          Alcotest.test_case "ARP retry and give-up" `Quick test_host_model_arp_retry_and_give_up;
          Alcotest.test_case "delivery classes" `Quick test_host_model_delivery_classification;
        ] );
      ( "lazy end-to-end",
        [
          Alcotest.test_case "intra-switch" `Quick test_lazy_intra_switch_flow;
          Alcotest.test_case "intra-group shields controller" `Quick
            test_lazy_intra_group_flow_shields_controller;
          Alcotest.test_case "inter-group via controller" `Quick
            test_lazy_inter_group_flow_uses_controller;
          Alcotest.test_case "latency recorded" `Quick test_lazy_latency_recorded;
          Alcotest.test_case "VM migration" `Quick test_lazy_migration_end_to_end;
          Alcotest.test_case "switch failover" `Quick test_lazy_switch_failover_end_to_end;
          Alcotest.test_case "data-path detour" `Quick test_lazy_data_path_detour;
          Alcotest.test_case "deploy host" `Quick test_deploy_host;
        ] );
      ( "openflow end-to-end",
        [
          Alcotest.test_case "delivery" `Quick test_openflow_flow_delivery;
          Alcotest.test_case "latency comparison" `Quick test_openflow_latency_higher_than_lazy;
        ] );
      ( "wiring",
        [
          Alcotest.test_case "mode accessors" `Quick test_modes_accessors;
          Alcotest.test_case "placement prior" `Quick test_default_intensity_prior;
          Alcotest.test_case "trace replay" `Quick test_replay_through_network;
        ] );
    ]
