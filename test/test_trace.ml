(* Tests for lazyctrl.trace: the flight recorder, laziness accounting,
   and the JSONL / Chrome trace_event exporters.

   The end-to-end cases are the tentpole cross-checks: on a traced run
   the tracer's cumulative [Ctrl_request] count must equal the metrics
   recorder's Fig. 7 request total, and the per-flow laziness verdicts
   must partition the flows the run actually saw. *)

open Lazyctrl_sim
open Lazyctrl_trace
module Prng = Lazyctrl_util.Prng
module Recorder = Lazyctrl_metrics.Recorder

let check = Alcotest.check

(* --- tracer mechanics ------------------------------------------------------- *)

let test_disabled_is_inert () =
  let t = Tracer.disabled in
  check Alcotest.bool "disabled" false (Tracer.enabled t);
  Tracer.emit t ~now:Time.zero ~flow:1 Event.Ingress;
  check Alcotest.int "nothing recorded" 0 (Tracer.recorded t);
  check (Alcotest.list Alcotest.reject) "no events" [] (Tracer.events t)

let test_sampling_by_flow_id () =
  let t = Tracer.create ~sample_every:2 () in
  Tracer.emit t ~now:Time.zero ~flow:3 Event.Ingress;
  Tracer.emit t ~now:Time.zero ~flow:4 Event.Ingress;
  Tracer.emit t ~now:Time.zero Event.Ctrl_flood;
  check Alcotest.bool "odd flow sampled out" false (Tracer.sampled t 3);
  check Alcotest.bool "even flow kept" true (Tracer.sampled t 4);
  check Alcotest.int "odd flow dropped, flow-less kept" 2 (Tracer.recorded t);
  let flows = List.filter_map (fun (e : Event.t) -> e.Event.flow) (Tracer.events t) in
  check (Alcotest.list Alcotest.int) "only the even flow" [ 4 ] flows

let test_ring_eviction_keeps_counters () =
  let t = Tracer.create ~capacity:4 () in
  for i = 1 to 6 do
    Tracer.emit t ~now:(Time.of_ns i) ~flow:7 Event.Lfib_hit
  done;
  check Alcotest.int "cumulative count" 6 (Tracer.recorded t);
  check Alcotest.int "two evicted" 2 (Tracer.dropped t);
  let evs = Tracer.events t in
  check Alcotest.int "ring holds capacity" 4 (List.length evs);
  (* Oldest-first and contiguous: the surviving events are seq 2..5. *)
  check
    (Alcotest.list Alcotest.int)
    "oldest first" [ 2; 3; 4; 5 ]
    (List.map (fun (e : Event.t) -> e.Event.seq) evs);
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "counters survive eviction"
    [ ("lfib_hit", 6) ]
    (Tracer.counts t)

let test_seq_monotone_and_parent_chain () =
  let t = Tracer.create () in
  Tracer.emit t ~now:(Time.of_us 1) ~flow:9 Event.Ingress;
  Tracer.emit t ~now:(Time.of_us 2) ~flow:9 (Event.Gfib_probe 2);
  Tracer.emit t ~now:(Time.of_us 2) ~flow:11 Event.Ingress;
  Tracer.emit t ~now:(Time.of_us 3) ~flow:9 Event.Deliver;
  let evs = Array.of_list (Tracer.events t) in
  check Alcotest.int "four events" 4 (Array.length evs);
  Array.iteri (fun i (e : Event.t) -> check Alcotest.int "seq" i e.Event.seq) evs;
  check Alcotest.bool "first has no parent" true
    (Option.is_none evs.(0).Event.parent);
  check Alcotest.bool "other flow has no parent" true
    (Option.is_none evs.(2).Event.parent);
  (* Flow 9's chain links each event to the previous one on the flow. *)
  check Alcotest.bool "probe points at ingress" true
    (match evs.(1).Event.parent with
    | Some p -> Event.span_equal p (Event.span_of evs.(0))
    | None -> false);
  check Alcotest.bool "deliver points at probe" true
    (match evs.(3).Event.parent with
    | Some p -> Event.span_equal p (Event.span_of evs.(1))
    | None -> false);
  (* Emission order is the (time, seq) span order — ties on time (events
     1 and 2 share 2us) break on the sequence number. *)
  for i = 0 to Array.length evs - 2 do
    check Alcotest.bool "compare orders by (time, seq)" true
      (Event.compare evs.(i) evs.(i + 1) < 0);
    check Alcotest.bool "span_compare agrees" true
      (Event.span_compare (Event.span_of evs.(i)) (Event.span_of evs.(i + 1))
      < 0)
  done

(* --- laziness accounting ----------------------------------------------------- *)

(* A synthetic trace: flow 1 purely local, flow 2 gossip (Bloom probe and
   a false positive), flow 3 punted to the controller. *)
let synthetic_tracer () =
  let t = Tracer.create () in
  let e us = Time.of_us us in
  Tracer.emit t ~now:(e 1) ~flow:1 ~switch:0 Event.Ingress;
  Tracer.emit t ~now:(e 2) ~flow:1 ~switch:0 Event.Lfib_hit;
  Tracer.emit t ~now:(e 3) ~flow:1 ~switch:0 Event.Deliver;
  Tracer.emit t ~now:(e 4) ~flow:2 ~switch:1 Event.Ingress;
  Tracer.emit t ~now:(e 5) ~flow:2 ~switch:1 (Event.Gfib_probe 2);
  Tracer.emit t ~now:(e 6) ~flow:2 ~switch:2 Event.Bloom_fp;
  Tracer.emit t ~now:(e 7) ~flow:2 ~switch:3 Event.Deliver;
  Tracer.emit t ~now:(e 8) ~flow:3 ~switch:1 Event.Ingress;
  Tracer.emit t ~now:(e 9) ~flow:3 ~switch:1 (Event.Punt "no_match");
  Tracer.emit t ~now:(e 10) (Event.Ctrl_request "packet_in");
  Tracer.emit t ~now:(e 11) ~flow:3 Event.Ctrl_packet_in;
  Tracer.emit t ~now:(e 12) ~flow:3 (Event.Ctrl_install 4);
  Tracer.emit t ~now:(e 13) ~flow:3 ~switch:4 Event.Deliver;
  t

let verdict = Alcotest.of_pp (fun ppf v ->
    Format.pp_print_string ppf (Laziness.verdict_label v))

let test_laziness_verdicts () =
  let t = synthetic_tracer () in
  let s = Tracer.summary t in
  check Alcotest.int "three flows" 3 s.Laziness.flows;
  check Alcotest.int "one local" 1 s.Laziness.local;
  check Alcotest.int "one gossip" 1 s.Laziness.gossip;
  check Alcotest.int "one controller" 1 s.Laziness.controller;
  check Alcotest.int "one controller request" 1 s.Laziness.controller_requests;
  check
    (Alcotest.list (Alcotest.pair Alcotest.int verdict))
    "per-flow verdicts"
    [ (1, Laziness.Local); (2, Laziness.Gossip); (3, Laziness.Controller) ]
    s.Laziness.per_flow;
  check (Alcotest.float 1e-9) "involvement ratio" (1.0 /. 3.0)
    (Laziness.controller_ratio s);
  (* The offline fold over the buffered events agrees with the live
     cumulative accounting (no eviction happened). *)
  (* The rank encoding is the lattice order and round-trips. *)
  check Alcotest.bool "rank is monotone" true
    (Laziness.rank Laziness.Local < Laziness.rank Laziness.Gossip
    && Laziness.rank Laziness.Gossip < Laziness.rank Laziness.Controller);
  List.iter
    (fun v ->
      check verdict "verdict_of_rank inverts rank" v
        (Laziness.verdict_of_rank (Laziness.rank v)))
    [ Laziness.Local; Laziness.Gossip; Laziness.Controller ];
  let offline = Laziness.of_events (Tracer.events t) in
  check Alcotest.int "offline flows" s.Laziness.flows offline.Laziness.flows;
  check
    (Alcotest.list (Alcotest.pair Alcotest.int verdict))
    "offline per-flow" s.Laziness.per_flow offline.Laziness.per_flow

(* --- exporters --------------------------------------------------------------- *)

(* One event of every kind, exercising every payload field. *)
let all_kinds_events () =
  let t = Tracer.create () in
  let kinds =
    [
      Event.Ingress;
      Event.Flow_table_hit;
      Event.Lfib_hit;
      Event.Gfib_probe 3;
      Event.Bloom_fp;
      Event.Punt "no_match";
      Event.Deliver;
      Event.Arp_local;
      Event.Arp_group;
      Event.Arp_escalate;
      Event.Designated_relay "advert";
      Event.Ctrl_request "packet_in";
      Event.Ctrl_packet_in;
      Event.Ctrl_install 5;
      Event.Ctrl_arp_relay;
      Event.Ctrl_flood;
      Event.Regroup { Event.full = true; groups = 4 };
      Event.Chaos_fault { Event.fault = "switch_off"; phase = "onset" };
      Event.Failover "switch_failure";
      Event.Retransmit "ctrl->sw3";
      Event.Reliable_giveup "sw3->ctrl";
    ]
  in
  check Alcotest.int "covers every tag" Event.n_tags (List.length kinds);
  List.iteri
    (fun i k ->
      Tracer.emit t
        ~now:(Time.of_us (i + 1))
        ~flow:(if i mod 2 = 0 then i else i + 1000)
        ~switch:(i mod 5) k)
    kinds;
  Tracer.emit t ~now:(Time.of_ms 1) Event.Ctrl_flood;
  Tracer.events t

let event = Alcotest.testable Event.pp Event.equal

let test_jsonl_round_trip () =
  let evs = all_kinds_events () in
  let data = Export.to_jsonl evs in
  (match Export.of_jsonl data with
  | Ok decoded -> check (Alcotest.list event) "round trip" evs decoded
  | Error e -> Alcotest.failf "of_jsonl: %s" e);
  (* Rendering is deterministic byte-for-byte. *)
  check Alcotest.string "stable rendering" data (Export.to_jsonl evs);
  (* Each line is exactly the compact Tjson rendering of the event. *)
  check Alcotest.string "line is compact Tjson"
    (Tjson.to_string (Event.to_json (List.hd evs)))
    (List.hd (String.split_on_char '\n' data))

let test_chrome_round_trip () =
  let evs = all_kinds_events () in
  let data = Export.to_chrome evs in
  (match Export.of_chrome data with
  | Ok decoded -> check (Alcotest.list event) "round trip" evs decoded
  | Error e -> Alcotest.failf "of_chrome: %s" e);
  check Alcotest.bool "has traceEvents array" true
    (String.length data > 20
    && String.equal (String.sub data 0 16) "{\"traceEvents\":[")

let test_jsonl_rejects_garbage () =
  let contains_line s =
    (* cheap substring check: the error must name the offending line *)
    let n = String.length s in
    let rec go i = i + 4 <= n && (String.equal (String.sub s i 4) "line" || go (i + 1)) in
    go 0
  in
  (match Export.of_jsonl "{\"ts\":1}\nnot json\n" with
  | Ok _ -> Alcotest.fail "expected an error"
  | Error e -> check Alcotest.bool "error names the line" true (contains_line e));
  match Export.of_chrome "[1,2,3]" with
  | Ok _ -> Alcotest.fail "expected an error"
  | Error _ -> ()

(* --- end-to-end: traced network runs ----------------------------------------- *)

let traced_network ~seed ~tracer =
  let module Placement = Lazyctrl_topo.Placement in
  let module Topology = Lazyctrl_topo.Topology in
  let module Network = Lazyctrl_core.Network in
  let module Host = Lazyctrl_net.Host in
  let topo =
    Placement.generate ~rng:(Prng.create seed)
      {
        Placement.n_switches = 8;
        n_tenants = 4;
        tenant_size_min = 6;
        tenant_size_max = 10;
        racks_per_tenant = 2;
        stray_fraction = 0.1;
      }
  in
  let net =
    Network.create ~tracer ~mode:Network.Lazy ~topo ~horizon:(Time.of_min 10) ()
  in
  Network.bootstrap net ();
  Network.run net ~until:(Time.of_sec 10);
  List.iter
    (fun tenant ->
      match Topology.tenant_hosts topo tenant with
      | first :: rest ->
          List.iter
            (fun (peer : Host.t) ->
              Network.start_flow net ~src:first.Host.id ~dst:peer.id
                ~bytes:20_000 ~packets:6)
            rest
      | [] -> ())
    (Topology.tenants topo);
  Network.run net ~until:(Time.of_min 5);
  net

let test_fig7_cross_check () =
  let tracer = Tracer.create () in
  let net = traced_network ~seed:3 ~tracer in
  let recorder = Lazyctrl_core.Network.recorder net in
  check Alcotest.bool "run produced requests" true
    (Recorder.total_requests recorder > 0);
  (* Every controller request charged to the Fig. 7 workload series is
     also a Ctrl_request trace event, and vice versa. *)
  check Alcotest.int "tracer requests == recorder requests"
    (Recorder.total_requests recorder)
    (Tracer.controller_requests tracer);
  let s = Tracer.summary tracer in
  check Alcotest.int "summary exposes the same count"
    (Recorder.total_requests recorder)
    s.Laziness.controller_requests;
  (* The verdicts partition the flows. *)
  check Alcotest.bool "saw flows" true (s.Laziness.flows > 0);
  check Alcotest.int "verdicts partition flows" s.Laziness.flows
    (s.Laziness.local + s.Laziness.gossip + s.Laziness.controller);
  check Alcotest.int "per-flow list is the partition" s.Laziness.flows
    (List.length s.Laziness.per_flow);
  (* With no eviction, the offline fold of the buffered events agrees
     with the live accounting. *)
  check Alcotest.int "no eviction" 0 (Tracer.dropped tracer);
  let offline = Laziness.of_events (Tracer.events tracer) in
  check Alcotest.int "offline controller verdicts agree"
    s.Laziness.controller offline.Laziness.controller;
  check Alcotest.int "offline request count agrees"
    s.Laziness.controller_requests offline.Laziness.controller_requests

let test_daylong_slice_cross_check () =
  let module Daylong = Lazyctrl_experiments.Daylong in
  let tracer = Tracer.create () in
  let r = Daylong.run ~tracer ~seed:42 ~n_flows:2_000 Daylong.Lazy_real_dynamic in
  check Alcotest.int "daylong: tracer requests == Fig. 7 recorder total"
    (Recorder.total_requests r.Daylong.recorder)
    (Tracer.controller_requests tracer);
  let s = Tracer.summary tracer in
  check Alcotest.int "daylong: verdicts partition the flows"
    s.Laziness.flows
    (s.Laziness.local + s.Laziness.gossip + s.Laziness.controller);
  (* The whole point of LazyCtrl: most flows stay off the controller. *)
  check Alcotest.bool "most flows lazy" true
    (Laziness.controller_ratio s < 0.5)

let test_traced_run_matches_untraced () =
  (* Tracing must observe, not perturb: the recorder totals of a traced
     run equal those of an untraced run with the same seed. *)
  let module Network = Lazyctrl_core.Network in
  let traced = traced_network ~seed:5 ~tracer:(Tracer.create ()) in
  let plain = traced_network ~seed:5 ~tracer:Tracer.disabled in
  check Alcotest.int "same request totals"
    (Recorder.total_requests (Network.recorder plain))
    (Recorder.total_requests (Network.recorder traced));
  let sp = Network.switch_stats_sum plain
  and st = Network.switch_stats_sum traced in
  check Alcotest.int "same packets delivered"
    sp.Lazyctrl_switch.Edge_switch.packets_delivered
    st.Lazyctrl_switch.Edge_switch.packets_delivered

let () =
  Alcotest.run "trace"
    [
      ( "tracer",
        [
          Alcotest.test_case "disabled is inert" `Quick test_disabled_is_inert;
          Alcotest.test_case "sampling by flow id" `Quick
            test_sampling_by_flow_id;
          Alcotest.test_case "ring eviction keeps counters" `Quick
            test_ring_eviction_keeps_counters;
          Alcotest.test_case "seq and parent chain" `Quick
            test_seq_monotone_and_parent_chain;
        ] );
      ( "laziness",
        [ Alcotest.test_case "verdict lattice" `Quick test_laziness_verdicts ] );
      ( "export",
        [
          Alcotest.test_case "jsonl round trip" `Quick test_jsonl_round_trip;
          Alcotest.test_case "chrome round trip" `Quick test_chrome_round_trip;
          Alcotest.test_case "rejects garbage" `Quick test_jsonl_rejects_garbage;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "fig7 cross-check (small net)" `Quick
            test_fig7_cross_check;
          Alcotest.test_case "fig7 cross-check (daylong slice)" `Slow
            test_daylong_slice_cross_check;
          Alcotest.test_case "tracing does not perturb" `Slow
            test_traced_run_matches_untraced;
        ] );
    ]
