(** Bloom filters, as used for the G-FIB.

    Each edge switch's G-FIB holds one filter per peer switch in its local
    control group, each summarizing that peer's L-FIB (the set of MAC
    addresses attached to it). Keys are arbitrary 63-bit integers (we use
    {!Lazyctrl_net.Mac.to_int}); membership uses Kirsch–Mitzenmacher
    double hashing, so only two independent 64-bit hashes are computed per
    operation regardless of [k].

    A {!Counting} variant supports deletion and backs the live, mutable
    side of the state-advertisement pipeline; the plain filter is the
    compact replica actually shipped to peers. *)

type t

val create : ?hashes:int -> bits:int -> unit -> t
(** [create ~bits ()] makes an empty filter of [bits] bits (rounded up to a
    multiple of 64). Default [hashes] is 4, the classic choice for
    ~16 bits/entry tables.
    @raise Invalid_argument if [bits <= 0] or [hashes <= 0]. *)

val create_for : expected:int -> fp_rate:float -> t
(** Optimal sizing: picks [bits] and [hashes] for [expected] entries at the
    target false-positive rate. *)

val add : t -> int -> unit
val mem : t -> int -> bool
(** No false negatives; false positives at the designed rate. *)

val clear : t -> unit
val bits : t -> int
val hashes : t -> int

val fill_ratio : t -> float
(** Fraction of bits set. *)

val estimated_entries : t -> float
(** Maximum-likelihood estimate of the number of distinct keys added, from
    the fill ratio. *)

val estimated_fp_rate : t -> float
(** [(fill_ratio)^hashes] — the probability a random absent key tests
    positive given the current fill. *)

val union : t -> t -> t
(** Bitwise or. @raise Invalid_argument on mismatched geometry. *)

val copy : t -> t

val of_list : ?hashes:int -> bits:int -> int list -> t

val to_bytes : t -> bytes
(** Geometry header plus the bit array; the wire form disseminated over
    peer links. *)

val of_bytes : bytes -> t
(** @raise Invalid_argument on malformed input. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val optimal_bits : expected:int -> fp_rate:float -> int
(** [m = ceil (-n ln p / (ln 2)^2)]. *)

val optimal_hashes : bits:int -> expected:int -> int
(** [k = round (m/n ln 2)], at least 1. *)

module Counting : sig
  (** Counting Bloom filter with saturating 8-bit counters. *)

  type plain = t

  type t

  val create : ?hashes:int -> counters:int -> unit -> t
  val add : t -> int -> unit

  val remove : t -> int -> unit
  (** Decrements the key's counters; saturated counters stay put (standard
      counting-BF semantics — saturation can leave residue). *)

  val mem : t -> int -> bool
  val clear : t -> unit

  val to_plain : t -> plain
  (** Project to a plain filter of the same geometry (counter > 0 ⇒ bit
      set); this is what gets shipped to peers. *)
end
