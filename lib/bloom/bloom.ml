(* The bit (and counter) arrays are Bytes, probed with byte-level
   accessors, and the hashes are native-int multiply-xorshift rounds:
   unlike [int64 array] reads and [Int64] arithmetic, none of this boxes,
   so [add]/[mem] allocate nothing. Constants are chosen to fit OCaml's
   63-bit immediate ints. *)

let mix x =
  let x = x lxor (x lsr 30) in
  let x = x * 0x2545F4914F6CDD1D in
  let x = x lxor (x lsr 27) in
  let x = x * 0x3C79AC492BA7B653 in
  x lxor (x lsr 31)

(* Two independent hashes for Kirsch–Mitzenmacher double hashing. *)
let hash1 key = mix key land max_int

(* Forced odd so the probe step is coprime with the (64-multiple, hence
   even) table size and the sequence cycles through all positions. One
   multiply-xorshift round over [h1] suffices here: the step only has to
   be decorrelated from the base position, not avalanche on its own. *)
let hash2 h1 =
  let y = h1 * 0x3C79AC492BA7B653 in
  ((y lxor (y lsr 32)) land max_int) lor 1

type t = { bits : Bytes.t; nbits : int; mask : int; k : int }

(* Integer division is the single costliest instruction on the probe
   path, and the sizes that actually occur (the paper's 128 bits/entry
   G-FIB geometry, powers of two) admit a mask instead. [pow2_mask n] is
   [n - 1] when [n] is a power of two, else 0 (falling back to [mod]). *)
let pow2_mask n = if n land (n - 1) = 0 then n - 1 else 0

let reduce h n mask = if mask <> 0 then h land mask else h mod n

let create ?(hashes = 4) ~bits () =
  if bits <= 0 then invalid_arg "Bloom.create: bits must be positive";
  if hashes <= 0 then invalid_arg "Bloom.create: hashes must be positive";
  let nwords = (bits + 63) / 64 in
  let nbits = nwords * 64 in
  {
    bits = Bytes.make (8 * nwords) '\000';
    nbits;
    mask = pow2_mask nbits;
    k = hashes;
  }

let optimal_bits ~expected ~fp_rate =
  if expected <= 0 then invalid_arg "Bloom.optimal_bits: expected <= 0";
  if fp_rate <= 0.0 || fp_rate >= 1.0 then
    invalid_arg "Bloom.optimal_bits: fp_rate outside (0,1)";
  let ln2 = Float.log 2.0 in
  int_of_float
    (Float.ceil (-.Float.of_int expected *. Float.log fp_rate /. (ln2 *. ln2)))

let optimal_hashes ~bits ~expected =
  if expected <= 0 then 1
  else
    max 1
      (int_of_float
         (Float.round (Float.of_int bits /. Float.of_int expected *. Float.log 2.0)))

let create_for ~expected ~fp_rate =
  let bits = optimal_bits ~expected ~fp_rate in
  create ~hashes:(optimal_hashes ~bits ~expected) ~bits ()

(* Bit [i] lives in byte [i lsr 3] at mask [1 lsl (i land 7)] — i.e. the
   byte array is the little-endian image of the former int64 words, which
   [to_bytes]/[of_bytes] rely on to keep the wire format. Probe indices
   are always in [0, nbits), so byte indices are in bounds for the
   unsafe accessors. *)

let set_bit t i =
  let b = i lsr 3 in
  Bytes.unsafe_set t.bits b
    (Char.unsafe_chr
       (Char.code (Bytes.unsafe_get t.bits b) lor (1 lsl (i land 7))))

(* Top-level and fully applied, so the probe loops compile to direct
   calls: no closure or tuple is allocated per operation. *)
let rec probe_set bits k n pos step i =
  if i < k then begin
    let b = pos lsr 3 in
    Bytes.unsafe_set bits b
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get bits b) lor (1 lsl (pos land 7))));
    let pos = pos + step in
    let pos = if pos >= n then pos - n else pos in
    probe_set bits k n pos step (i + 1)
  end

let rec probe_mem bits k n pos step i =
  i >= k
  || Char.code (Bytes.unsafe_get bits (pos lsr 3)) land (1 lsl (pos land 7))
     <> 0
     &&
     let pos = pos + step in
     let pos = if pos >= n then pos - n else pos in
     probe_mem bits k n pos step (i + 1)

let add t key =
  let h1 = hash1 key in
  let h2 = hash2 h1 in
  probe_set t.bits t.k t.nbits
    (reduce h1 t.nbits t.mask)
    (reduce h2 t.nbits t.mask)
    0

let bit_at bits pos =
  Char.code (Bytes.unsafe_get bits (pos lsr 3)) lsr (pos land 7) land 1

let mem t key =
  let h1 = hash1 key in
  let h2 = hash2 h1 in
  let mask = t.mask in
  if mask <> 0 && t.k = 4 then
    (* Branchless unroll of the common power-of-two, k = 4 geometry: the
       four loads are independent, so they issue in parallel instead of
       forming a load→branch→load chain, and only the final test can
       mispredict. Positions agree with the incremental probe because
       [(h1 + i*h2) land mask] is congruence-stable under the reduction.
       (Only [mem] is unrolled: [probe_set] stores, where early exit and
       load latency don't apply.) *)
    let bits = t.bits in
    bit_at bits (h1 land mask)
    land bit_at bits ((h1 + h2) land mask)
    land bit_at bits ((h1 + (2 * h2)) land mask)
    land bit_at bits ((h1 + (3 * h2)) land mask)
    <> 0
  else
    probe_mem t.bits t.k t.nbits (reduce h1 t.nbits mask)
      (reduce h2 t.nbits mask) 0

let clear t = Bytes.fill t.bits 0 (Bytes.length t.bits) '\000'

let bits t = t.nbits
let hashes t = t.k

let popcount64 x =
  let rec go acc x =
    if x = 0L then acc else go (acc + 1) Int64.(logand x (sub x 1L))
  in
  go 0 x

let ones t =
  let acc = ref 0 in
  for w = 0 to (Bytes.length t.bits / 8) - 1 do
    acc := !acc + popcount64 (Bytes.get_int64_le t.bits (8 * w))
  done;
  !acc

let fill_ratio t = Float.of_int (ones t) /. Float.of_int t.nbits

let estimated_entries t =
  let x = ones t in
  if x = 0 then 0.0
  else if x = t.nbits then infinity
  else
    let m = Float.of_int t.nbits and k = Float.of_int t.k in
    -.(m /. k) *. Float.log (1.0 -. (Float.of_int x /. m))

let estimated_fp_rate t = fill_ratio t ** Float.of_int t.k

let union a b =
  if a.nbits <> b.nbits || a.k <> b.k then
    invalid_arg "Bloom.union: mismatched geometry";
  let n = Bytes.length a.bits in
  let bits = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.unsafe_set bits i
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get a.bits i)
         lor Char.code (Bytes.unsafe_get b.bits i)))
  done;
  { a with bits }

let copy t = { t with bits = Bytes.copy t.bits }

let of_list ?hashes ~bits keys =
  let t = create ?hashes ~bits () in
  List.iter (add t) keys;
  t

(* Wire form is unchanged from the int64-array days: a big-endian
   (k, nwords) header followed by the 64-bit words big-endian. Our byte
   array is the little-endian word image, so each word is one
   [get_int64_le] / [set_int64_be] pair away. *)

let to_bytes t =
  let nwords = Bytes.length t.bits / 8 in
  let buf = Bytes.create (8 + (8 * nwords)) in
  Bytes.set_int32_be buf 0 (Int32.of_int t.k);
  Bytes.set_int32_be buf 4 (Int32.of_int nwords);
  for w = 0 to nwords - 1 do
    Bytes.set_int64_be buf (8 + (8 * w)) (Bytes.get_int64_le t.bits (8 * w))
  done;
  buf

let of_bytes buf =
  if Bytes.length buf < 8 then invalid_arg "Bloom.of_bytes: truncated header";
  let k = Int32.to_int (Bytes.get_int32_be buf 0) in
  let nwords = Int32.to_int (Bytes.get_int32_be buf 4) in
  if k <= 0 || nwords <= 0 || Bytes.length buf <> 8 + (8 * nwords) then
    invalid_arg "Bloom.of_bytes: malformed";
  let bits = Bytes.create (8 * nwords) in
  for w = 0 to nwords - 1 do
    Bytes.set_int64_le bits (8 * w) (Bytes.get_int64_be buf (8 + (8 * w)))
  done;
  let nbits = nwords * 64 in
  { bits; nbits; mask = pow2_mask nbits; k }

let equal a b = a.k = b.k && a.nbits = b.nbits && Bytes.equal a.bits b.bits

let pp fmt t =
  Format.fprintf fmt "bloom(bits=%d k=%d fill=%.3f)" t.nbits t.k (fill_ratio t)

module Counting = struct
  type plain = t

  let plain_create = create

  type nonrec t = { counters : Bytes.t; n : int; mask : int; k : int }

  let create ?(hashes = 4) ~counters () =
    if counters <= 0 then invalid_arg "Bloom.Counting.create: size must be positive";
    if hashes <= 0 then invalid_arg "Bloom.Counting.create: hashes must be positive";
    (* Round up to a multiple of 64 so [to_plain] preserves the probe
       positions ([h mod n] must agree between the two geometries). *)
    let n = (counters + 63) / 64 * 64 in
    { counters = Bytes.make n '\000'; n; mask = pow2_mask n; k = hashes }

  (* Saturating: a counter stuck at 255 is never decremented (it may
     over-approximate, never under-approximate membership). *)
  let rec probe_bump counters k n pos step i delta =
    if i < k then begin
      let v = Char.code (Bytes.unsafe_get counters pos) in
      let v' =
        if delta > 0 then min 255 (v + delta)
        else if v = 255 || v = 0 then v
        else v + delta
      in
      Bytes.unsafe_set counters pos (Char.unsafe_chr v');
      let pos = pos + step in
      let pos = if pos >= n then pos - n else pos in
      probe_bump counters k n pos step (i + 1) delta
    end

  let rec probe_mem counters k n pos step i =
    i >= k
    || Char.code (Bytes.unsafe_get counters pos) > 0
       &&
       let pos = pos + step in
       let pos = if pos >= n then pos - n else pos in
       probe_mem counters k n pos step (i + 1)

  let add t key =
    let h1 = hash1 key in
    let h2 = hash2 h1 in
    probe_bump t.counters t.k t.n (reduce h1 t.n t.mask) (reduce h2 t.n t.mask)
      0 1

  let remove t key =
    let h1 = hash1 key in
    let h2 = hash2 h1 in
    probe_bump t.counters t.k t.n (reduce h1 t.n t.mask) (reduce h2 t.n t.mask)
      0 (-1)

  let mem t key =
    let h1 = hash1 key in
    let h2 = hash2 h1 in
    let mask = t.mask in
    if mask <> 0 && t.k = 4 then
      (* Branchless k = 4 unroll, as in the plain [mem]. All four
         counters must be nonzero; each is at most 255, so the product
         fits an int and is nonzero exactly when all are. *)
      let c = t.counters in
      Char.code (Bytes.unsafe_get c (h1 land mask))
      * Char.code (Bytes.unsafe_get c ((h1 + h2) land mask))
      * Char.code (Bytes.unsafe_get c ((h1 + (2 * h2)) land mask))
      * Char.code (Bytes.unsafe_get c ((h1 + (3 * h2)) land mask))
      <> 0
    else
      probe_mem t.counters t.k t.n (reduce h1 t.n mask) (reduce h2 t.n mask) 0

  let clear t = Bytes.fill t.counters 0 t.n '\000'

  let to_plain t =
    let plain = plain_create ~hashes:t.k ~bits:t.n () in
    for i = 0 to t.n - 1 do
      if Char.code (Bytes.unsafe_get t.counters i) > 0 then set_bit plain i
    done;
    plain
end
