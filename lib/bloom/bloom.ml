let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

(* Two independent hashes for Kirsch–Mitzenmacher double hashing. *)
let hash_pair key =
  let h1 = mix64 (Int64.of_int key) in
  let h2 = mix64 (Int64.logxor h1 0x9E3779B97F4A7C15L) in
  (* Force h2 odd so the probe sequence cycles through all positions. *)
  (Int64.to_int h1 land max_int, (Int64.to_int h2 land max_int) lor 1)

type t = { words : int64 array; nbits : int; k : int }

let create ?(hashes = 4) ~bits () =
  if bits <= 0 then invalid_arg "Bloom.create: bits must be positive";
  if hashes <= 0 then invalid_arg "Bloom.create: hashes must be positive";
  let nwords = (bits + 63) / 64 in
  { words = Array.make nwords 0L; nbits = nwords * 64; k = hashes }

let optimal_bits ~expected ~fp_rate =
  if expected <= 0 then invalid_arg "Bloom.optimal_bits: expected <= 0";
  if fp_rate <= 0.0 || fp_rate >= 1.0 then
    invalid_arg "Bloom.optimal_bits: fp_rate outside (0,1)";
  let ln2 = Float.log 2.0 in
  int_of_float
    (Float.ceil (-.Float.of_int expected *. Float.log fp_rate /. (ln2 *. ln2)))

let optimal_hashes ~bits ~expected =
  if expected <= 0 then 1
  else
    max 1
      (int_of_float
         (Float.round (Float.of_int bits /. Float.of_int expected *. Float.log 2.0)))

let create_for ~expected ~fp_rate =
  let bits = optimal_bits ~expected ~fp_rate in
  create ~hashes:(optimal_hashes ~bits ~expected) ~bits ()

let set_bit t i =
  let w = i lsr 6 and b = i land 63 in
  t.words.(w) <- Int64.logor t.words.(w) (Int64.shift_left 1L b)

let get_bit t i =
  let w = i lsr 6 and b = i land 63 in
  Int64.logand (Int64.shift_right_logical t.words.(w) b) 1L <> 0L

let add t key =
  let h1, h2 = hash_pair key in
  for i = 0 to t.k - 1 do
    set_bit t (((h1 + (i * h2)) land max_int) mod t.nbits)
  done

let mem t key =
  let h1, h2 = hash_pair key in
  let rec probe i = i >= t.k || (get_bit t (((h1 + (i * h2)) land max_int) mod t.nbits) && probe (i + 1)) in
  probe 0

let clear t = Array.fill t.words 0 (Array.length t.words) 0L

let bits t = t.nbits
let hashes t = t.k

let popcount64 x =
  let rec go acc x = if x = 0L then acc else go (acc + 1) Int64.(logand x (sub x 1L)) in
  go 0 x

let ones t = Array.fold_left (fun acc w -> acc + popcount64 w) 0 t.words

let fill_ratio t = Float.of_int (ones t) /. Float.of_int t.nbits

let estimated_entries t =
  let x = ones t in
  if x = 0 then 0.0
  else if x = t.nbits then infinity
  else
    let m = Float.of_int t.nbits and k = Float.of_int t.k in
    -.(m /. k) *. Float.log (1.0 -. (Float.of_int x /. m))

let estimated_fp_rate t = fill_ratio t ** Float.of_int t.k

let union a b =
  if a.nbits <> b.nbits || a.k <> b.k then
    invalid_arg "Bloom.union: mismatched geometry";
  { a with words = Array.mapi (fun i w -> Int64.logor w b.words.(i)) a.words }

let copy t = { t with words = Array.copy t.words }

let of_list ?hashes ~bits keys =
  let t = create ?hashes ~bits () in
  List.iter (add t) keys;
  t

let to_bytes t =
  let nwords = Array.length t.words in
  let buf = Bytes.create (8 + (8 * nwords)) in
  Bytes.set_int32_be buf 0 (Int32.of_int t.k);
  Bytes.set_int32_be buf 4 (Int32.of_int nwords);
  Array.iteri (fun i w -> Bytes.set_int64_be buf (8 + (8 * i)) w) t.words;
  buf

let of_bytes buf =
  if Bytes.length buf < 8 then invalid_arg "Bloom.of_bytes: truncated header";
  let k = Int32.to_int (Bytes.get_int32_be buf 0) in
  let nwords = Int32.to_int (Bytes.get_int32_be buf 4) in
  if k <= 0 || nwords <= 0 || Bytes.length buf <> 8 + (8 * nwords) then
    invalid_arg "Bloom.of_bytes: malformed";
  let words = Array.init nwords (fun i -> Bytes.get_int64_be buf (8 + (8 * i))) in
  { words; nbits = nwords * 64; k }

let equal a b = a.k = b.k && a.nbits = b.nbits && a.words = b.words

let pp fmt t =
  Format.fprintf fmt "bloom(bits=%d k=%d fill=%.3f)" t.nbits t.k (fill_ratio t)

module Counting = struct
  type plain = t

  let plain_create = create

  type nonrec t = { counters : Bytes.t; n : int; k : int }

  let create ?(hashes = 4) ~counters () =
    if counters <= 0 then invalid_arg "Bloom.Counting.create: size must be positive";
    if hashes <= 0 then invalid_arg "Bloom.Counting.create: hashes must be positive";
    (* Round up to a multiple of 64 so [to_plain] preserves the probe
       positions ([h mod n] must agree between the two geometries). *)
    let n = (counters + 63) / 64 * 64 in
    { counters = Bytes.make n '\000'; n; k = hashes }

  let bump t i delta =
    let v = Bytes.get_uint8 t.counters i in
    (* Saturating: a counter stuck at 255 is never decremented (it may
       over-approximate, never under-approximate membership). *)
    let v' =
      if delta > 0 then min 255 (v + delta)
      else if v = 255 || v = 0 then v
      else v + delta
    in
    Bytes.set_uint8 t.counters i v'

  let add t key =
    let h1, h2 = hash_pair key in
    for i = 0 to t.k - 1 do
      bump t (((h1 + (i * h2)) land max_int) mod t.n) 1
    done

  let remove t key =
    let h1, h2 = hash_pair key in
    for i = 0 to t.k - 1 do
      bump t (((h1 + (i * h2)) land max_int) mod t.n) (-1)
    done

  let mem t key =
    let h1, h2 = hash_pair key in
    let rec probe i =
      i >= t.k
      || (Bytes.get_uint8 t.counters (((h1 + (i * h2)) land max_int) mod t.n) > 0 && probe (i + 1))
    in
    probe 0

  let clear t = Bytes.fill t.counters 0 t.n '\000'

  let to_plain t =
    let plain = plain_create ~hashes:t.k ~bits:t.n () in
    for i = 0 to t.n - 1 do
      if Bytes.get_uint8 t.counters i > 0 then set_bit plain i
    done;
    plain
end
