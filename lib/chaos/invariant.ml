open Lazyctrl_net
open Lazyctrl_switch
open Lazyctrl_controller
open Lazyctrl_core
module Sid = Ids.Switch_id

type report = { name : string; ok : bool; detail : string }

let pp_report fmt r =
  Format.fprintf fmt "[%s] %s%s"
    (if r.ok then "ok" else "FAIL")
    r.name
    (if r.detail = "" then "" else ": " ^ r.detail)

let all_ok = List.for_all (fun r -> r.ok)

let live_switches net =
  let topo = Network.topology net in
  List.filter_map
    (fun sw ->
      match Network.edge_switch net sw with
      | Some es when Edge_switch.is_up es -> Some (sw, es)
      | _ -> None)
    (Lazyctrl_topo.Topology.switches topo)

let sorted_keys keys = List.sort_uniq Proto.host_key_compare keys

(* C-LIB row of every live switch equals that switch's L-FIB. Rows of dead
   switches are stale by definition and skipped. *)
let check_clib controller live =
  let clib = Controller.clib controller in
  let bad =
    List.filter_map
      (fun (sw, es) ->
        let expected = sorted_keys (Lfib.all_keys (Edge_switch.lfib es)) in
        let got = sorted_keys (Clib.row clib sw) in
        if List.equal Proto.host_key_equal expected got then None
        else
          Some
            (Printf.sprintf "sw%d(%d!=%d)" (Sid.to_int sw) (List.length got)
               (List.length expected)))
      live
  in
  {
    name = "clib = union of live L-FIBs";
    ok = List.is_empty bad;
    detail = String.concat " " bad;
  }

(* No Bloom false negative: within a group, every live member's G-FIB must
   name every other live member as a candidate for each of that member's
   hosts. (False positives are expected; false negatives never are.) *)
let check_bloom live =
  let live_up sw = List.exists (fun (s, _) -> Sid.equal s sw) live in
  let missing = ref [] in
  List.iter
    (fun (sw, es) ->
      match Edge_switch.group es with
      | None -> ()
      | Some cfg ->
          List.iter
            (fun peer ->
              if (not (Sid.equal peer sw)) && live_up peer then
                match List.find_opt (fun (s, _) -> Sid.equal s peer) live with
                | None -> ()
                | Some (_, pes) ->
                    let gfib = Edge_switch.gfib es in
                    List.iter
                      (fun (k : Proto.host_key) ->
                        let found_mac =
                          List.exists (Sid.equal peer)
                            (Gfib.candidates_mac gfib k.Proto.mac)
                        and found_ip =
                          List.exists (Sid.equal peer)
                            (Gfib.candidates_ip gfib k.Proto.ip)
                        in
                        if not (found_mac && found_ip) then
                          missing :=
                            Printf.sprintf "sw%d!~sw%d" (Sid.to_int sw)
                              (Sid.to_int peer)
                            :: !missing)
                      (Lfib.all_keys (Edge_switch.lfib pes)))
            cfg.Proto.members)
    live;
  let bad = List.sort_uniq String.compare !missing in
  { name = "no Bloom false negative"; ok = List.is_empty bad; detail = String.concat " " bad }

let check_grouped live =
  let bad =
    List.filter_map
      (fun (sw, es) ->
        if Option.is_none (Edge_switch.group es) then
          Some (Printf.sprintf "sw%d" (Sid.to_int sw))
        else None)
      live
  in
  { name = "every live switch grouped"; ok = List.is_empty bad; detail = String.concat " " bad }

let check_monitor controller =
  let bad =
    List.map
      (fun (sw, v) ->
        Format.asprintf "sw%d:%a" (Sid.to_int sw) Failover.pp_verdict v)
      (Failover.Monitor.sweep (Controller.monitor controller))
  in
  { name = "all monitors healthy"; ok = List.is_empty bad; detail = String.concat " " bad }

let check_exactly_once_stats (s : Lazyctrl_openflow.Reliable.stats) =
  {
    name = "no duplicate delivery";
    ok = s.Lazyctrl_openflow.Reliable.violations = 0;
    detail =
      (if s.Lazyctrl_openflow.Reliable.violations = 0 then ""
       else Printf.sprintf "%d violations" s.Lazyctrl_openflow.Reliable.violations);
  }

let check_exactly_once net =
  check_exactly_once_stats (Network.reliability_stats net)

let check_all net =
  match Network.lazy_controller net with
  | None -> []
  | Some controller ->
      let live = live_switches net in
      [
        check_grouped live;
        check_clib controller live;
        check_bloom live;
        check_monitor controller;
        check_exactly_once net;
      ]
