(** End-to-end chaos run: build a lazy-plane network with lossy channels,
    apply background traffic and migrations, inject a seeded fault
    scenario, then poll the convergence invariants until they all hold or
    a settle deadline passes.

    The whole run — placement, traffic, fault schedule, channel loss — is
    derived from [config.seed], so two runs with the same config produce
    byte-identical [fingerprint]s. *)

open Lazyctrl_sim
open Lazyctrl_openflow
open Lazyctrl_switch
open Lazyctrl_controller
open Lazyctrl_core

type config = {
  seed : int;
  n_switches : int;
  n_tenants : int;
  loss : float;           (** baseline per-message loss on every channel *)
  dup : float;
  reliable : bool;        (** false = the old fire-and-forget state path *)
  spec : Scenario.spec;
  migrations : int;
  flows_per_tenant : int;
  warmup : Time.t;
  settle : Time.t;        (** give-up deadline after the last repair *)
  poll : Time.t;          (** invariant re-check cadence while settling *)
}

val default_config : config
(** 12 switches, 6 tenants, 5% loss + 1% duplication, every fault kind,
    reliable delivery on. *)

type result = {
  events : Fault.event list;
  reports : Invariant.report list;   (** from the final check *)
  converged_after : Time.t option;
      (** time from last repair to all invariants holding; [None] = never *)
  link : Network.link_totals;
  reliability : Reliable.stats;
  switch_stats : Edge_switch.stats;
  controller_stats : Controller.stats option;
  fingerprint : string;
}

val delivery_ratio : Network.link_totals -> float

val run : ?tracer:Lazyctrl_trace.Tracer.t -> config -> result
(** [tracer] (default disabled) flight-records the run: it is threaded
    into the network planes and additionally receives a [Chaos_fault]
    event at each fault's onset and repair time. *)
