(** Fault vocabulary for chaos scenarios.

    Each kind maps onto one of {!Lazyctrl_core.Network}'s failure-injection
    entry points; {!Burst_loss} temporarily replaces the channel loss model
    on every control and peer link with a harsher one. *)

open Lazyctrl_net
open Lazyctrl_sim

type kind =
  | Switch_off     (** power the switch down, power it back up *)
  | Control_link   (** sever the switch's controller channel, both ways *)
  | Peer_link      (** sever a peer channel pair *)
  | Data_path      (** break the one-way underlay path, with notification *)
  | Burst_loss     (** network-wide loss storm on all control channels *)
  | Controller_kill
      (** kill one controller-cluster member mid-run (cluster planes
          only; a no-op on the single-controller plane) *)
  | Controller_partition
      (** cut one member off the coordination mesh — control links stay
          up, so both sides of the split keep claiming switches until
          the heal reconciles terms (cluster planes only) *)

val all_kinds : kind list
(** The single-controller vocabulary (no cluster faults). *)

val cluster_kinds : kind list
(** What a controller-cluster plane can inject: the two controller
    faults plus the switch/loss faults that remain meaningful there. *)

val kind_label : kind -> string

type event = {
  at : Time.t;       (** offset from injection time *)
  duration : Time.t;
  kind : kind;
  primary : Ids.Switch_id.t;
      (** for controller faults, reduced to a member index by the
          injector ([to_int] mod cluster size) *)
  secondary : Ids.Switch_id.t;
      (** the far end for [Peer_link]/[Data_path]; ignored otherwise *)
}

val repair_at : event -> Time.t
(** [at + duration], still an offset. *)

val pp_event : Format.formatter -> event -> unit
