(** Fault vocabulary for chaos scenarios.

    Each kind maps onto one of {!Lazyctrl_core.Network}'s failure-injection
    entry points; {!Burst_loss} temporarily replaces the channel loss model
    on every control and peer link with a harsher one. *)

open Lazyctrl_net
open Lazyctrl_sim

type kind =
  | Switch_off     (** power the switch down, power it back up *)
  | Control_link   (** sever the switch's controller channel, both ways *)
  | Peer_link      (** sever a peer channel pair *)
  | Data_path      (** break the one-way underlay path, with notification *)
  | Burst_loss     (** network-wide loss storm on all control channels *)

val all_kinds : kind list
val kind_label : kind -> string

type event = {
  at : Time.t;       (** offset from injection time *)
  duration : Time.t;
  kind : kind;
  primary : Ids.Switch_id.t;
  secondary : Ids.Switch_id.t;
      (** the far end for [Peer_link]/[Data_path]; ignored otherwise *)
}

val repair_at : event -> Time.t
(** [at + duration], still an offset. *)

val pp_event : Format.formatter -> event -> unit
