open Lazyctrl_net
open Lazyctrl_sim
open Lazyctrl_openflow
open Lazyctrl_switch
open Lazyctrl_controller
open Lazyctrl_core
module Prng = Lazyctrl_util.Prng
module Placement = Lazyctrl_topo.Placement
module Topology = Lazyctrl_topo.Topology
module Sid = Ids.Switch_id
module Tracer = Lazyctrl_trace.Tracer
module Tev = Lazyctrl_trace.Event

type config = {
  seed : int;
  n_switches : int;
  n_tenants : int;
  loss : float;           (* baseline per-message loss on every channel *)
  dup : float;
  reliable : bool;
  spec : Scenario.spec;
  migrations : int;
  flows_per_tenant : int;
  warmup : Time.t;
  settle : Time.t;
  poll : Time.t;
}

let default_config =
  {
    seed = 42;
    n_switches = 12;
    n_tenants = 6;
    loss = 0.05;
    dup = 0.01;
    reliable = true;
    spec = Scenario.default;
    migrations = 4;
    flows_per_tenant = 2;
    warmup = Time.of_sec 20;
    settle = Time.of_min 2;
    poll = Time.of_sec 2;
  }

(* Tight timers so detection and re-sync happen within simulated seconds. *)
let quick_controller_config reliable =
  {
    Controller.default_config with
    Controller.group_size_limit = 6;
    sync_period = Time.of_sec 10;
    keepalive_period = Time.of_sec 2;
    echo_period = Time.of_sec 5;
    echo_timeout = Time.of_sec 12;
    daemon_period = Time.of_sec 5;
    incremental_updates = false;
    reliable_state = reliable;
  }

type result = {
  events : Fault.event list;
  reports : Invariant.report list;
  converged_after : Time.t option;
  link : Network.link_totals;
  reliability : Reliable.stats;
  switch_stats : Edge_switch.stats;
  controller_stats : Controller.stats option;
  fingerprint : string;
}

let delivery_ratio (l : Network.link_totals) =
  if l.Network.links_sent = 0 then 1.0
  else float_of_int l.Network.links_delivered /. float_of_int l.Network.links_sent

let fingerprint_of ~events ~reports ~converged_after ~link ~reliability
    ~switch_stats ~controller_stats ~at =
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  List.iter (fun e -> add "event %s\n" (Format.asprintf "%a" Fault.pp_event e)) events;
  List.iter
    (fun r -> add "invariant %s\n" (Format.asprintf "%a" Invariant.pp_report r))
    reports;
  (match converged_after with
  | Some t -> add "converged_after %d\n" (Time.to_ns t)
  | None -> add "converged_after none\n");
  add "link sent=%d delivered=%d dropped=%d lost=%d duplicated=%d\n"
    link.Network.links_sent link.Network.links_delivered link.Network.links_dropped
    link.Network.links_lost link.Network.links_duplicated;
  let r = reliability in
  add
    "reliable data=%d retrans=%d acks=%d delivered=%d dups=%d stale=%d tail=%d \
     give_ups=%d violations=%d\n"
    r.Reliable.data_sent r.Reliable.retransmits r.Reliable.acks_sent
    r.Reliable.delivered r.Reliable.dups_ignored r.Reliable.stale_dropped
    r.Reliable.tail_dropped r.Reliable.give_ups r.Reliable.violations;
  let s = switch_stats in
  add
    "switch from_hosts=%d delivered=%d encap=%d ft=%d lfib=%d gfib=%d gdup=%d \
     punted=%d fp=%d arp_l=%d arp_g=%d adverts=%d ka=%d miss_buf=%d miss_rep=%d\n"
    s.Edge_switch.packets_from_hosts s.Edge_switch.packets_delivered
    s.Edge_switch.encap_sent s.Edge_switch.flow_table_handled
    s.Edge_switch.lfib_handled s.Edge_switch.gfib_handled
    s.Edge_switch.gfib_duplicates s.Edge_switch.punted s.Edge_switch.fp_drops
    s.Edge_switch.arp_local_answered s.Edge_switch.arp_group_escalated
    s.Edge_switch.adverts_sent s.Edge_switch.keepalives_sent
    s.Edge_switch.misses_buffered s.Edge_switch.misses_replayed;
  (match controller_stats with
  | None -> ()
  | Some c ->
      add
        "controller requests=%d packet_ins=%d arp_esc=%d reports=%d alarms=%d \
         fmods=%d pouts=%d relays=%d floods=%d updates=%d regroups=%d \
         failovers=%d preloads=%d\n"
        c.Controller.requests c.Controller.packet_ins c.Controller.arp_escalations
        c.Controller.state_reports c.Controller.ring_alarms
        c.Controller.flow_mods_sent c.Controller.packet_outs_sent
        c.Controller.arp_relays c.Controller.floods c.Controller.grouping_updates
        c.Controller.full_regroups c.Controller.failovers_handled
        c.Controller.preloaded_rules);
  add "clock %d\n" (Time.to_ns at);
  Buffer.contents b

let placement_spec cfg =
  {
    Placement.n_switches = cfg.n_switches;
    n_tenants = cfg.n_tenants;
    tenant_size_min = 8;
    tenant_size_max = 16;
    racks_per_tenant = 3;
    stray_fraction = 0.05;
  }

let run ?(tracer = Tracer.disabled) cfg =
  let rng = Prng.create cfg.seed in
  let topo = Placement.generate ~rng:(Prng.named rng "topo") (placement_spec cfg) in
  let baseline =
    if cfg.loss > 0.0 || cfg.dup > 0.0 then
      Some (Channel.uniform_loss ~dup:cfg.dup cfg.loss)
    else None
  in
  let params =
    {
      (Params.with_seed cfg.seed Params.default) with
      Params.control_loss = baseline;
      peer_loss = baseline;
      switch_config =
        {
          Edge_switch.default_config with
          Edge_switch.reliable_state = cfg.reliable;
        };
    }
  in
  let net =
    Network.create ~params
      ~controller_config:(quick_controller_config cfg.reliable)
      ~tracer ~mode:Network.Lazy ~topo ~horizon:(Time.of_hour 2) ()
  in
  let engine = Network.engine net in
  Network.bootstrap net ();
  Network.run net ~until:cfg.warmup;
  (* Background traffic so the data plane has something to lose. *)
  let flow_rng = Prng.named rng "flows" in
  List.iter
    (fun tid ->
      let hosts = Array.of_list (Topology.tenant_hosts topo tid) in
      if Array.length hosts >= 2 then
        for _ = 1 to cfg.flows_per_tenant do
          let a = Prng.choose flow_rng hosts and b = Prng.choose flow_rng hosts in
          if not (Ids.Host_id.equal a.Host.id b.Host.id) then
            Network.start_flow net ~src:a.Host.id ~dst:b.Host.id ~bytes:20_000
              ~packets:10
        done)
    (Topology.tenants topo);
  (* Seeded VM migrations interleaved with the fault window, driving the
     state-dissemination path while it is under attack. *)
  let mig_rng = Prng.named rng "migrations" in
  let all_hosts = Array.of_list (Topology.hosts topo) in
  let window_ms = Time.to_ns cfg.spec.Scenario.window / 1_000_000 in
  for _ = 1 to cfg.migrations do
    let h = Prng.choose mig_rng all_hosts in
    let dst = Sid.of_int (Prng.int mig_rng cfg.n_switches) in
    let after = Time.of_ms (Prng.int mig_rng (max 1 window_ms)) in
    ignore
      (Engine.schedule engine ~after (fun () ->
           if not (Sid.equal (Topology.location topo h.Host.id) dst) then
             Network.migrate_host net h.Host.id ~to_:dst))
  done;
  let events =
    Scenario.generate
      ~rng:(Prng.named rng "faults")
      ~n_switches:cfg.n_switches cfg.spec
  in
  Scenario.inject net cfg.spec ~baseline:(baseline, baseline) events;
  (* Mirror every fault's onset and repair into the flight recorder, at
     the same engine times the scenario injector uses (offsets from the
     injection instant). *)
  if Tracer.enabled tracer then begin
    let emit_fault e phase =
      Tracer.emit tracer ~now:(Engine.now engine)
        ~switch:(Sid.to_int e.Fault.primary)
        (Tev.Chaos_fault { fault = Fault.kind_label e.Fault.kind; phase })
    in
    List.iter
      (fun e ->
        ignore
          (Engine.schedule engine ~after:e.Fault.at (fun () ->
               emit_fault e "onset"));
        ignore
          (Engine.schedule engine ~after:(Fault.repair_at e) (fun () ->
               emit_fault e "repair")))
      events
  end;
  let repair_done = Time.add (Engine.now engine) (Scenario.last_repair events) in
  Network.run net ~until:(Time.add repair_done (Time.of_ms 1));
  let deadline = Time.add repair_done cfg.settle in
  let rec settle () =
    let reports = Invariant.check_all net in
    if Invariant.all_ok reports then
      (reports, Some (Time.diff (Engine.now engine) repair_done))
    else if Time.(Engine.now engine >= deadline) then (reports, None)
    else begin
      Network.run net ~until:(Time.add (Engine.now engine) cfg.poll);
      settle ()
    end
  in
  let reports, converged_after = settle () in
  let link = Network.link_stats net in
  let reliability = Network.reliability_stats net in
  let switch_stats = Network.switch_stats_sum net in
  let controller_stats =
    Option.map Controller.stats (Network.lazy_controller net)
  in
  let fingerprint =
    fingerprint_of ~events ~reports ~converged_after ~link ~reliability
      ~switch_stats ~controller_stats ~at:(Engine.now engine)
  in
  {
    events;
    reports;
    converged_after;
    link;
    reliability;
    switch_stats;
    controller_stats;
    fingerprint;
  }
