open Lazyctrl_net
open Lazyctrl_sim
open Lazyctrl_openflow
open Lazyctrl_core
module Prng = Lazyctrl_util.Prng
module Sid = Ids.Switch_id

type spec = {
  n_faults : int;
  window : Time.t;
  min_duration : Time.t;
  max_duration : Time.t;
  kinds : Fault.kind list;
  burst : Channel.loss_spec;
}

let default =
  {
    n_faults = 6;
    window = Time.of_sec 30;
    min_duration = Time.of_sec 3;
    max_duration = Time.of_sec 15;
    kinds = Fault.all_kinds;
    burst = Channel.bursty_loss ~base:0.10 ~burst:0.60 ();
  }

let time_in rng lo hi =
  (* Millisecond granularity keeps fingerprints readable. *)
  let lo_ms = Time.to_ns lo / 1_000_000 and hi_ms = Time.to_ns hi / 1_000_000 in
  Time.of_ms (Prng.int_in rng lo_ms (max lo_ms hi_ms))

let generate ~rng ~n_switches spec =
  if List.is_empty spec.kinds then invalid_arg "Scenario.generate: no fault kinds";
  if n_switches < 2 then invalid_arg "Scenario.generate: need >= 2 switches";
  let kinds = Array.of_list spec.kinds in
  let events =
    List.init spec.n_faults (fun i ->
        (* Cycle through the kind list so every requested kind is exercised
           whenever [n_faults >= length kinds]; times and targets are drawn
           from the stream. *)
        let kind = kinds.(i mod Array.length kinds) in
        let at = time_in rng Time.zero spec.window in
        let duration = time_in rng spec.min_duration spec.max_duration in
        let primary = Prng.int rng n_switches in
        let secondary = (primary + 1 + Prng.int rng (n_switches - 1)) mod n_switches in
        {
          Fault.at;
          duration;
          kind;
          primary = Sid.of_int primary;
          secondary = Sid.of_int secondary;
        })
  in
  List.stable_sort (fun a b -> Time.compare a.Fault.at b.Fault.at) events

let last_repair events =
  List.fold_left (fun acc e -> Time.max acc (Fault.repair_at e)) Time.zero events

let inject net spec ~baseline events =
  let engine = Network.engine net in
  let base_control, base_peer = baseline in
  (* Burst storms may overlap: restore the baseline model only when the
     last overlapping storm ends. *)
  let storms = ref 0 in
  let start_burst () =
    incr storms;
    Network.set_control_loss net (Some spec.burst);
    Network.set_peer_loss net (Some spec.burst)
  in
  let end_burst () =
    decr storms;
    if !storms = 0 then begin
      Network.set_control_loss net base_control;
      Network.set_peer_loss net base_peer
    end
  in
  List.iter
    (fun (e : Fault.event) ->
      let fail, repair =
        match e.kind with
        | Fault.Switch_off ->
            ( (fun () -> Network.fail_switch net e.primary),
              fun () -> Network.repair_switch net e.primary )
        | Fault.Control_link ->
            ( (fun () -> Network.fail_control_link net e.primary),
              fun () -> Network.repair_control_link net e.primary )
        | Fault.Peer_link ->
            ( (fun () -> Network.fail_peer_link net e.primary e.secondary),
              fun () -> Network.repair_peer_link net e.primary e.secondary )
        | Fault.Data_path ->
            ( (fun () ->
                Network.fail_data_path net ~src:e.primary ~dst:e.secondary
                  ~notify:true),
              fun () ->
                Network.repair_data_path net ~src:e.primary ~dst:e.secondary )
        | Fault.Burst_loss -> (start_burst, end_burst)
        | Fault.Controller_kill | Fault.Controller_partition ->
            (* Cluster-only faults: the single-controller plane has no
               member to kill or mesh to cut. The cluster runner has its
               own injector over [Lazyctrl_cluster.Plane]. *)
            ((fun () -> ()), fun () -> ())
      in
      ignore (Engine.schedule engine ~after:e.at fail);
      ignore (Engine.schedule engine ~after:(Fault.repair_at e) repair))
    events
