(** Convergence invariant monitors.

    Checked at quiescence (all faults repaired, retransmissions drained):

    - every live switch holds a group configuration;
    - the controller's C-LIB row of every live switch equals that switch's
      L-FIB (dead switches' rows are stale by definition and skipped);
    - no Bloom false negative: each live member's G-FIB names every other
      live member of its group as a candidate for all of that member's
      hosts;
    - every {!Lazyctrl_controller.Failover.Monitor} verdict is healthy;
    - no reliable session ever handed a message to application logic twice
      (the transport's own exactly-once audit).

    [check_all] returns the empty list in OpenFlow mode (no lazy-plane
    invariants apply), which [all_ok] treats as passing.

    The per-check cores are exported so planes other than
    {!Lazyctrl_core.Network} — notably the controller-cluster plane — can
    compose the same invariants over their own switch and controller
    inventories. *)

open Lazyctrl_net
open Lazyctrl_core
open Lazyctrl_switch
open Lazyctrl_controller

type report = { name : string; ok : bool; detail : string }

val pp_report : Format.formatter -> report -> unit
val all_ok : report list -> bool

val live_switches : Network.t -> (Ids.Switch_id.t * Edge_switch.t) list

val check_grouped : (Ids.Switch_id.t * Edge_switch.t) list -> report
val check_clib :
  Controller.t -> (Ids.Switch_id.t * Edge_switch.t) list -> report
val check_bloom : (Ids.Switch_id.t * Edge_switch.t) list -> report
val check_monitor : Controller.t -> report

val check_exactly_once_stats : Lazyctrl_openflow.Reliable.stats -> report
(** The transport audit over an already-aggregated stats record — what a
    multi-controller plane sums over all its sessions. *)

val check_all : Network.t -> report list
