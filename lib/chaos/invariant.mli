(** Convergence invariant monitors.

    Checked at quiescence (all faults repaired, retransmissions drained):

    - every live switch holds a group configuration;
    - the controller's C-LIB row of every live switch equals that switch's
      L-FIB (dead switches' rows are stale by definition and skipped);
    - no Bloom false negative: each live member's G-FIB names every other
      live member of its group as a candidate for all of that member's
      hosts;
    - every {!Lazyctrl_controller.Failover.Monitor} verdict is healthy;
    - no reliable session ever handed a message to application logic twice
      (the transport's own exactly-once audit).

    [check_all] returns the empty list in OpenFlow mode (no lazy-plane
    invariants apply), which [all_ok] treats as passing. *)

open Lazyctrl_core

type report = { name : string; ok : bool; detail : string }

val pp_report : Format.formatter -> report -> unit
val all_ok : report list -> bool
val check_all : Network.t -> report list
