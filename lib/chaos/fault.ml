open Lazyctrl_net
open Lazyctrl_sim

type kind =
  | Switch_off
  | Control_link
  | Peer_link
  | Data_path
  | Burst_loss
  | Controller_kill
  | Controller_partition

let all_kinds = [ Switch_off; Control_link; Peer_link; Data_path; Burst_loss ]

let cluster_kinds =
  [ Controller_kill; Controller_partition; Switch_off; Burst_loss ]

let kind_label = function
  | Switch_off -> "switch off"
  | Control_link -> "control link"
  | Peer_link -> "peer link"
  | Data_path -> "data path"
  | Burst_loss -> "burst loss"
  | Controller_kill -> "controller kill"
  | Controller_partition -> "controller partition"

type event = {
  at : Time.t;       (** offset from injection time *)
  duration : Time.t;
  kind : kind;
  primary : Ids.Switch_id.t;
  secondary : Ids.Switch_id.t;
      (** the far end for [Peer_link]/[Data_path]; ignored otherwise *)
}

let repair_at e = Time.add e.at e.duration

let pp_event fmt e =
  match e.kind with
  | Peer_link | Data_path ->
      Format.fprintf fmt "%a+%a %s sw%d->sw%d" Time.pp e.at Time.pp e.duration
        (kind_label e.kind)
        (Ids.Switch_id.to_int e.primary)
        (Ids.Switch_id.to_int e.secondary)
  | Burst_loss ->
      Format.fprintf fmt "%a+%a %s" Time.pp e.at Time.pp e.duration
        (kind_label e.kind)
  | Switch_off | Control_link ->
      Format.fprintf fmt "%a+%a %s sw%d" Time.pp e.at Time.pp e.duration
        (kind_label e.kind)
        (Ids.Switch_id.to_int e.primary)
  | Controller_kill | Controller_partition ->
      (* [primary] is reduced to a member index (mod cluster size) by the
         cluster injector; print it raw so fingerprints stay stable. *)
      Format.fprintf fmt "%a+%a %s #%d" Time.pp e.at Time.pp e.duration
        (kind_label e.kind)
        (Ids.Switch_id.to_int e.primary)
