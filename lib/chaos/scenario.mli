(** Seeded chaos scenario generation and injection.

    A scenario is a list of {!Fault.event}s drawn from a spec; [inject]
    schedules each fault's onset and repair on the network's engine,
    relative to the moment of injection. Everything is driven by the
    caller's {!Lazyctrl_util.Prng} stream, so the same seed always yields
    the same fault schedule. *)

open Lazyctrl_sim
open Lazyctrl_openflow
open Lazyctrl_core

type spec = {
  n_faults : int;
  window : Time.t;          (** onsets are drawn in [\[0, window)] *)
  min_duration : Time.t;
  max_duration : Time.t;
  kinds : Fault.kind list;  (** cycled through, so all are exercised *)
  burst : Channel.loss_spec; (** the storm model for {!Fault.Burst_loss} *)
}

val default : spec
(** 6 faults (every kind at least once) over 30 s, each lasting 3–15 s. *)

val generate :
  rng:Lazyctrl_util.Prng.t -> n_switches:int -> spec -> Fault.event list
(** Sorted by onset. @raise Invalid_argument on an empty kind list or a
    topology with fewer than two switches. *)

val last_repair : Fault.event list -> Time.t
(** Offset of the last repair; [Time.zero] for an empty list. *)

val inject :
  Network.t ->
  spec ->
  baseline:(Channel.loss_spec option * Channel.loss_spec option) ->
  Fault.event list ->
  unit
(** Schedule every fault and its repair, offsets relative to now.
    [baseline] is the (control, peer) loss model to restore when the last
    overlapping burst storm ends. *)
