open Lazyctrl_sim
open Lazyctrl_net

type flow = {
  time : Time.t;
  src : Ids.Host_id.t;
  dst : Ids.Host_id.t;
  bytes : int;
  packets : int;
}

type t = {
  n_hosts : int;
  duration : Time.t;
  times : int array;
  srcs : int array;
  dsts : int array;
  bytes : int array;
  pkts : int array;
}

module Builder = struct
  type trace = t

  type t = {
    n_hosts : int;
    duration : Time.t;
    mutable rows : (int * int * int * int * int) list;
    mutable count : int;
  }

  let create ~n_hosts ~duration =
    if n_hosts <= 0 then invalid_arg "Trace.Builder: n_hosts <= 0";
    { n_hosts; duration; rows = []; count = 0 }

  let add t ~time ~src ~dst ~bytes ~packets =
    let s = Ids.Host_id.to_int src and d = Ids.Host_id.to_int dst in
    if s = d then invalid_arg "Trace.Builder.add: self flow";
    if s >= t.n_hosts || d >= t.n_hosts then
      invalid_arg "Trace.Builder.add: host out of range";
    if Time.(time > t.duration) then invalid_arg "Trace.Builder.add: beyond duration";
    if bytes < 0 || packets <= 0 then invalid_arg "Trace.Builder.add: bad size";
    t.rows <- (Time.to_ns time, s, d, bytes, packets) :: t.rows;
    t.count <- t.count + 1

  let build t =
    let a = Array.of_list t.rows in
    (* rows were accumulated in reverse; sort by time, breaking ties by
       insertion order to keep the build deterministic. *)
    let n = Array.length a in
    let idx = Array.init n (fun i -> i) in
    Array.sort
      (fun i j ->
        let (ti, _, _, _, _) = a.(i) and (tj, _, _, _, _) = a.(j) in
        match Int.compare ti tj with
        | 0 -> Int.compare j i (* earlier insertion = larger list index *)
        | c -> c)
      idx;
    let times = Array.make n 0
    and srcs = Array.make n 0
    and dsts = Array.make n 0
    and bytes = Array.make n 0
    and pkts = Array.make n 0 in
    Array.iteri
      (fun pos i ->
        let t0, s, d, b, p = a.(i) in
        times.(pos) <- t0;
        srcs.(pos) <- s;
        dsts.(pos) <- d;
        bytes.(pos) <- b;
        pkts.(pos) <- p)
      idx;
    { n_hosts = t.n_hosts; duration = t.duration; times; srcs; dsts; bytes; pkts }
end

let n_flows t = Array.length t.times
let n_hosts t = t.n_hosts
let duration t = t.duration

let flow t i =
  {
    time = Time.of_ns t.times.(i);
    src = Ids.Host_id.of_int t.srcs.(i);
    dst = Ids.Host_id.of_int t.dsts.(i);
    bytes = t.bytes.(i);
    packets = t.pkts.(i);
  }

(* First index with time >= target, by binary search. *)
let lower_bound t target =
  let n = Array.length t.times in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.times.(mid) < target then lo := mid + 1 else hi := mid
  done;
  !lo

let iter ?from ?until t f =
  let start = match from with None -> 0 | Some x -> lower_bound t (Time.to_ns x) in
  let stop =
    match until with None -> n_flows t | Some x -> lower_bound t (Time.to_ns x)
  in
  for i = start to stop - 1 do
    f (flow t i)
  done

let fold t f init =
  let acc = ref init in
  for i = 0 to n_flows t - 1 do
    acc := f !acc (flow t i)
  done;
  !acc

let total_bytes t = Array.fold_left ( + ) 0 t.bytes

let pair_key s d = if s < d then (s, d) else (d, s)

let pair_flow_counts t =
  let h = Hashtbl.create (n_flows t / 4) in
  for i = 0 to n_flows t - 1 do
    let key = pair_key t.srcs.(i) t.dsts.(i) in
    Hashtbl.replace h key (1 + Option.value (Hashtbl.find_opt h key) ~default:0)
  done;
  h

let communicating_pairs t = Hashtbl.length (pair_flow_counts t)

let merge a b =
  if a.n_hosts <> b.n_hosts then invalid_arg "Trace.merge: host space mismatch";
  let duration = Time.max a.duration b.duration in
  let builder = Builder.create ~n_hosts:a.n_hosts ~duration in
  let add t i =
    Builder.add builder ~time:(Time.of_ns t.times.(i))
      ~src:(Ids.Host_id.of_int t.srcs.(i))
      ~dst:(Ids.Host_id.of_int t.dsts.(i))
      ~bytes:t.bytes.(i) ~packets:t.pkts.(i)
  in
  for i = 0 to n_flows a - 1 do
    add a i
  done;
  for i = 0 to n_flows b - 1 do
    add b i
  done;
  Builder.build builder

(* Binary trace format: "LZTR" magic, version, n_hosts, duration, flow
   count, then per-flow columns as int64 (time, src, dst, bytes, pkts). *)
let magic = 0x4C5A5452l

let save t path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let w64 v = 
        let b = Bytes.create 8 in
        Bytes.set_int64_be b 0 (Int64.of_int v);
        output_bytes oc b
      in
      let w32 v =
        let b = Bytes.create 4 in
        Bytes.set_int32_be b 0 v;
        output_bytes oc b
      in
      w32 magic;
      w32 1l;
      w64 t.n_hosts;
      w64 (Time.to_ns t.duration);
      w64 (n_flows t);
      for i = 0 to n_flows t - 1 do
        w64 t.times.(i);
        w64 t.srcs.(i);
        w64 t.dsts.(i);
        w64 t.bytes.(i);
        w64 t.pkts.(i)
      done)

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let bad msg = invalid_arg ("Trace.load: " ^ msg) in
      let r64 () =
        let b = Bytes.create 8 in
        (try really_input ic b 0 8 with End_of_file -> bad "truncated");
        Int64.to_int (Bytes.get_int64_be b 0)
      in
      let r32 () =
        let b = Bytes.create 4 in
        (try really_input ic b 0 4 with End_of_file -> bad "truncated");
        Bytes.get_int32_be b 0
      in
      if r32 () <> magic then bad "bad magic";
      if r32 () <> 1l then bad "unsupported version";
      let n_hosts = r64 () in
      let duration = Time.of_ns (r64 ()) in
      let n = r64 () in
      if n_hosts <= 0 || n < 0 then bad "bad header";
      let times = Array.make n 0
      and srcs = Array.make n 0
      and dsts = Array.make n 0
      and bytes = Array.make n 0
      and pkts = Array.make n 0 in
      for i = 0 to n - 1 do
        times.(i) <- r64 ();
        srcs.(i) <- r64 ();
        dsts.(i) <- r64 ();
        bytes.(i) <- r64 ();
        pkts.(i) <- r64 ()
      done;
      (* Validate invariants the builder would have enforced. *)
      for i = 0 to n - 1 do
        if srcs.(i) < 0 || srcs.(i) >= n_hosts || dsts.(i) < 0
           || dsts.(i) >= n_hosts || srcs.(i) = dsts.(i) || pkts.(i) <= 0
           || times.(i) < 0
           || times.(i) > Time.to_ns duration
           || (i > 0 && times.(i) < times.(i - 1))
        then bad "corrupt flow record"
      done;
      { n_hosts; duration; times; srcs; dsts; bytes; pkts })

let sub_between t ~from ~until =
  if Time.(until < from) then invalid_arg "Trace.sub_between: empty window";
  let duration = Time.sub until from in
  let builder = Builder.create ~n_hosts:t.n_hosts ~duration in
  iter ~from ~until t (fun f ->
      Builder.add builder
        ~time:(Time.sub f.time from)
        ~src:f.src ~dst:f.dst ~bytes:f.bytes ~packets:f.packets);
  Builder.build builder
