(** Trace replay into the discrete-event engine (the prototype's
    "custom-made trace re-player").

    Flows are injected as flow-arrival events at their trace timestamps.
    Scheduling is chunked so the event queue never holds more than a
    window of upcoming flows. *)

open Lazyctrl_sim

type t

val start :
  Engine.t ->
  ?chunk:int ->
  on_flow:(Trace.flow -> unit) ->
  Trace.t ->
  t
(** Begin replay at the engine's current time origin; flow timestamps are
    absolute engine times. [chunk] (default 8192) bounds how many flow
    events are resident in the queue. *)

val injected : t -> int
(** Flows injected so far. *)

val finished : t -> bool
