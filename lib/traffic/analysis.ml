open Lazyctrl_sim
open Lazyctrl_net
open Lazyctrl_graph
open Lazyctrl_topo
module Prng = Lazyctrl_util.Prng
module Det = Lazyctrl_util.Det

let host_graph trace =
  let b = Wgraph.Builder.create ~n:(Trace.n_hosts trace) in
  Det.iter_sorted ~cmp:Det.pair_compare
    (fun (s, d) count -> Wgraph.Builder.add_edge b s d (Float.of_int count))
    (Trace.pair_flow_counts trace);
  Wgraph.Builder.build b

let switch_intensity ?from ?until ?exclude_hosts ~topo trace =
  let from = Option.value from ~default:Time.zero in
  let until = Option.value until ~default:(Trace.duration trace) in
  let excluded h =
    match exclude_hosts with
    | None -> false
    | Some set -> Ids.Host_id.Set.mem h set
  in
  let span_s = Time.to_float_sec (Time.diff until from) in
  let span_s = if span_s <= 0.0 then 1.0 else span_s in
  let counts = Hashtbl.create 4096 in
  Trace.iter ~from ~until trace (fun f ->
      if not (excluded f.Trace.src || excluded f.Trace.dst) then begin
        let s = Ids.Switch_id.to_int (Topology.location topo f.Trace.src) in
        let d = Ids.Switch_id.to_int (Topology.location topo f.Trace.dst) in
        if s <> d then begin
          let key = if s < d then (s, d) else (d, s) in
          Hashtbl.replace counts key
            (1 + Option.value (Hashtbl.find_opt counts key) ~default:0)
        end
      end);
  let b = Wgraph.Builder.create ~n:(Topology.n_switches topo) in
  Det.iter_sorted ~cmp:Det.pair_compare
    (fun (s, d) c -> Wgraph.Builder.add_edge b s d (Float.of_int c /. span_s))
    counts;
  Wgraph.Builder.build b

let skew trace ~top_fraction =
  if top_fraction <= 0.0 || top_fraction > 1.0 then
    invalid_arg "Analysis.skew: fraction outside (0,1]";
  let counts =
    Det.bindings_sorted ~cmp:Det.pair_compare (Trace.pair_flow_counts trace)
    |> List.map snd |> Array.of_list
  in
  if Array.length counts = 0 then 0.0
  else begin
    Array.sort (fun a b -> Int.compare b a) counts;
    let total = Array.fold_left ( + ) 0 counts in
    let top = max 1 (int_of_float (Float.of_int (Array.length counts) *. top_fraction)) in
    let carried = ref 0 in
    for i = 0 to top - 1 do
      carried := !carried + counts.(i)
    done;
    Float.of_int !carried /. Float.of_int total
  end

let centrality_per_group trace ~assignment ~k =
  let intra = Array.make k 0.0 in
  let touching = Array.make k 0.0 in
  Trace.iter trace (fun f ->
      let gs = assignment (Ids.Host_id.to_int f.Trace.src) in
      let gd = assignment (Ids.Host_id.to_int f.Trace.dst) in
      if gs = gd then begin
        intra.(gs) <- intra.(gs) +. 1.0;
        touching.(gs) <- touching.(gs) +. 1.0
      end
      else begin
        (* An inter-group flow is one unit of traffic shared between the
           two groups it touches; counting it fully against both would
           double-count it in the system-wide accounting. *)
        touching.(gs) <- touching.(gs) +. 0.5;
        touching.(gd) <- touching.(gd) +. 0.5
      end);
  Array.init k (fun g ->
      if Float.equal touching.(g) 0.0 then nan else intra.(g) /. touching.(g))

let avg_centrality ~rng ~k trace =
  let g = host_graph trace in
  let total = Wgraph.total_vertex_weight g in
  (* "Evenly into k groups": a tight cap forces near-equal sizes. *)
  let cap = max 1 (int_of_float (Float.ceil (1.05 *. Float.of_int total /. Float.of_int k))) in
  let a = Partition.multilevel_kway ~rng ~max_part_weight:cap ~k g in
  let per_group = centrality_per_group trace ~assignment:(fun h -> a.(h)) ~k in
  let sum = ref 0.0 and n = ref 0 in
  Array.iter
    (fun c ->
      if not (Float.is_nan c) then begin
        sum := !sum +. c;
        incr n
      end)
    per_group;
  if !n = 0 then nan else !sum /. Float.of_int !n

let high_fanout_hosts trace ~fraction =
  if fraction <= 0.0 || fraction > 1.0 then
    invalid_arg "Analysis.high_fanout_hosts: fraction outside (0,1]";
  let peers : (int, (int, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 1024 in
  let note a b =
    let tbl =
      match Hashtbl.find_opt peers a with
      | Some t -> t
      | None ->
          let t = Hashtbl.create 8 in
          Hashtbl.replace peers a t;
          t
    in
    Hashtbl.replace tbl b ()
  in
  Trace.iter trace (fun f ->
      let s = Ids.Host_id.to_int f.Trace.src and d = Ids.Host_id.to_int f.Trace.dst in
      note s d;
      note d s);
  let ranked =
    (* Sort by fan-out descending, host id ascending: without the id
       tie-break the cut line between equal counts is hash-order noise. *)
    Det.fold_sorted ~cmp:Int.compare
      (fun h tbl acc -> (h, Hashtbl.length tbl) :: acc)
      peers []
    |> List.sort (fun (h1, a) (h2, b) ->
           match Int.compare b a with 0 -> Int.compare h1 h2 | c -> c)
  in
  let want =
    max 1 (int_of_float (Float.of_int (List.length ranked) *. fraction))
  in
  List.filteri (fun i _ -> i < want) ranked
  |> List.fold_left
       (fun acc (h, _) -> Ids.Host_id.Set.add (Ids.Host_id.of_int h) acc)
       Ids.Host_id.Set.empty

let flows_per_second_peak trace ~bucket =
  let width = Time.to_float_sec bucket in
  if width <= 0.0 then invalid_arg "Analysis.flows_per_second_peak: empty bucket";
  let n_buckets =
    max 1
      (1 + (Time.to_ns (Trace.duration trace) / max 1 (Time.to_ns bucket)))
  in
  let counts = Array.make n_buckets 0 in
  Trace.iter trace (fun f ->
      let i = Time.to_ns f.Trace.time / max 1 (Time.to_ns bucket) in
      counts.(min i (n_buckets - 1)) <- counts.(min i (n_buckets - 1)) + 1);
  Float.of_int (Array.fold_left max 0 counts) /. width
