(** Trace analysis: the statistics of §II and Table II, and the
    switch-level intensity matrices that drive grouping.

    Traffic intensity between two edge switches is the paper's [w_ij]:
    normalized new-flow rate (flows per second) between the hosts behind
    switch [i] and those behind switch [j]. *)

open Lazyctrl_sim
open Lazyctrl_graph
open Lazyctrl_topo
module Prng = Lazyctrl_util.Prng

val host_graph : Trace.t -> Wgraph.t
(** Vertices are host ids, edge weights are flow counts between the pair. *)

val switch_intensity :
  ?from:Time.t -> ?until:Time.t -> ?exclude_hosts:Lazyctrl_net.Ids.Host_id.Set.t ->
  topo:Topology.t -> Trace.t -> Wgraph.t
(** Vertices are switch ids; edge weight is flows/sec between the two
    switches' host populations in the window (default: whole trace).
    Intra-switch flows contribute nothing, as in the paper. Flows touching
    [exclude_hosts] are left out of the matrix — Appendix B's host
    exclusion: those hosts' control tasks go to the controller, and their
    scattered traffic stops distorting the grouping. *)

val high_fanout_hosts :
  Trace.t -> fraction:float -> Lazyctrl_net.Ids.Host_id.Set.t
(** The [fraction] of hosts with the most distinct communication peers —
    the natural candidates for Appendix B's host exclusion. *)

val skew : Trace.t -> top_fraction:float -> float
(** Fraction of all flows carried by the busiest [top_fraction] of
    communicating pairs (the paper: top 10% carry ~90%). *)

val centrality_per_group :
  Trace.t -> assignment:(int -> int) -> k:int -> float array
(** Paper §II definition: for each group, intra-group flow volume over the
    total flow volume touching the group's hosts. An inter-group flow is
    one unit of traffic shared between the two groups it touches (half
    against each), so the system-wide accounting does not double-count
    it. [nan] for groups whose hosts see no traffic. *)

val avg_centrality : rng:Prng.t -> k:int -> Trace.t -> float
(** Table II's "avg. centrality": partition the hosts into [k] groups with
    the multilevel partitioner (even sizes) and average the group
    centralities, ignoring empty groups. *)

val flows_per_second_peak : Trace.t -> bucket:Time.t -> float
(** Max flow-arrival rate over fixed buckets — a controller-sizing
    statistic. *)
