open Lazyctrl_sim
open Lazyctrl_net
open Lazyctrl_topo
module Prng = Lazyctrl_util.Prng

let diurnal_profile =
  [|
    0.35; 0.30; 0.28; 0.27; 0.28; 0.32; 0.45; 0.62; 0.80; 0.95; 1.00; 0.98;
    0.92; 0.95; 1.00; 0.97; 0.90; 0.80; 0.72; 0.65; 0.58; 0.50; 0.45; 0.40;
  |]

(* Sample an absolute time from a per-hour weight profile restricted to
   [from_hour, until_hour). *)
let sample_time rng ~profile ~from_hour ~until_hour =
  let hours = until_hour - from_hour in
  assert (hours > 0);
  let weights = Array.init hours (fun i -> profile.((from_hour + i) mod 24)) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let u = Prng.float rng total in
  let rec pick i acc =
    let acc = acc +. weights.(i) in
    if u < acc || i = hours - 1 then i else pick (i + 1) acc
  in
  let h = from_hour + pick 0 0.0 in
  Time.add (Time.of_hour h) (Time.of_ns (Prng.int rng (Time.to_ns (Time.of_hour 1))))

let sample_flow_size rng =
  (* Pareto-distributed flow sizes: mostly mice, occasional elephants
     (mean ≈ 38 KB ≈ 26 packets, matching data-center flow-size
     surveys [15]). *)
  let bytes = int_of_float (Prng.pareto rng ~shape:1.15 ~scale:5000.0) in
  let bytes = min bytes 100_000_000 in
  let packets = max 1 ((bytes + 1459) / 1460) in
  (bytes, packets)

(* All intra-tenant unordered pairs of a topology, materialized per tenant
   as host arrays (pairs themselves are sampled by index arithmetic). *)
let tenant_host_arrays topo =
  Topology.tenants topo
  |> List.map (fun ten -> Array.of_list (Topology.tenant_hosts topo ten))
  |> List.filter (fun a -> Array.length a >= 2)
  |> Array.of_list

let n_pairs a =
  let s = Array.length a in
  s * (s - 1) / 2

let sample_intra_pair rng tenants_arr cum total =
  (* Pick a tenant weighted by its pair count, then two distinct hosts. *)
  let u = Prng.int rng total in
  let lo = ref 0 and hi = ref (Array.length cum - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cum.(mid) <= u then lo := mid + 1 else hi := mid
  done;
  let hosts = tenants_arr.(!lo) in
  let n = Array.length hosts in
  let i = Prng.int rng n in
  let j = (i + 1 + Prng.int rng (n - 1)) mod n in
  (hosts.(i), hosts.(j))

let all_hosts_array topo = Array.of_list (Topology.hosts topo)

let sample_any_pair rng hosts =
  let n = Array.length hosts in
  let i = Prng.int rng n in
  let j = (i + 1 + Prng.int rng (n - 1)) mod n in
  (hosts.(i), hosts.(j))

let real_like ~rng ~topo ~n_flows ?(duration = Time.of_hour 24)
    ?(active_pair_fraction = 0.07) ?(zipf_alpha = 1.45)
    ?(cross_tenant_fraction = 0.08) ?(churn = 0.35) () =
  if n_flows <= 0 then invalid_arg "Gen.real_like: n_flows <= 0";
  let tenants_arr = tenant_host_arrays topo in
  if Array.length tenants_arr = 0 then
    invalid_arg "Gen.real_like: no tenant with at least two hosts";
  (* Materialize the active pair set: a fraction of each tenant's pairs. *)
  let active = ref [] in
  Array.iter
    (fun hosts ->
      let m = n_pairs hosts in
      let want = max 1 (int_of_float (Float.of_int m *. active_pair_fraction)) in
      let seen = Hashtbl.create (2 * want) in
      let n = Array.length hosts in
      while Hashtbl.length seen < want do
        let i = Prng.int rng n in
        let j = (i + 1 + Prng.int rng (n - 1)) mod n in
        let key = if i < j then (i, j) else (j, i) in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.add seen key ();
          active := (hosts.(i), hosts.(j)) :: !active
        end
      done)
    tenants_arr;
  let active = Array.of_list !active in
  (* Heavier-ranked pairs carry most flows: shuffle then Zipf over ranks. *)
  Prng.shuffle rng active;
  let zipf = Prng.Zipf.create ~n:(Array.length active) ~alpha:zipf_alpha in
  let hosts = all_hosts_array topo in
  let hours = Time.to_ns duration / Time.to_ns (Time.of_hour 1) in
  let until_hour = max 1 (min 24 hours) in
  (* Traffic churn: a fraction of pairs is only active inside a private
     time window, so the hour-to-hour intensity matrix drifts (what makes
     the paper's incremental regrouping worthwhile). *)
  let windows =
    Array.init (Array.length active) (fun _ ->
        if Prng.float rng 1.0 < churn && until_hour > 4 then begin
          let start = Prng.int rng (until_hour - 3) in
          Some (start, min until_hour (start + 4))
        end
        else None)
  in
  let builder = Trace.Builder.create ~n_hosts:(Topology.n_hosts topo) ~duration in
  for _ = 1 to n_flows do
    let (a : Host.t), (b : Host.t), window =
      if Prng.float rng 1.0 < cross_tenant_fraction then begin
        (* Cross-tenant noise: any pair from different tenants. *)
        let rec pick () =
          let x, y = sample_any_pair rng hosts in
          if Ids.Tenant_id.equal x.Host.tenant y.Host.tenant then pick () else (x, y)
        in
        let x, y = pick () in
        (x, y, None)
      end
      else begin
        let idx = Prng.Zipf.draw zipf rng in
        let x, y = active.(idx) in
        (x, y, windows.(idx))
      end
    in
    let src, dst = if Prng.bool rng then (a, b) else (b, a) in
    let from_hour, until_hour =
      match window with None -> (0, until_hour) | Some (lo, hi) -> (lo, hi)
    in
    let time = sample_time rng ~profile:diurnal_profile ~from_hour ~until_hour in
    let bytes, packets = sample_flow_size rng in
    Trace.Builder.add builder ~time ~src:src.Host.id ~dst:dst.Host.id ~bytes ~packets
  done;
  Trace.Builder.build builder

let synthetic ~rng ~topo ~base ~n_flows ~p ~q =
  if p < 1 || p > 100 || q < 1 || q > 100 then
    invalid_arg "Gen.synthetic: p and q must be percentages";
  let tenants_arr = tenant_host_arrays topo in
  let pair_counts = Array.map n_pairs tenants_arr in
  let cum = Array.make (Array.length pair_counts) 0 in
  let total_intra = ref 0 in
  Array.iteri
    (fun i c ->
      total_intra := !total_intra + c;
      cum.(i) <- !total_intra)
    pair_counts;
  if !total_intra = 0 then invalid_arg "Gen.synthetic: no intra-tenant pairs";
  let hosts = all_hosts_array topo in
  (* Hot set: q% of the intra-tenant pair universe. As q grows the set is
     sampled with less tenant locality, spreading the hot traffic (this is
     what moves average centrality from Syn-A down to Syn-C). *)
  let n_hot = max 1 (!total_intra * q / 100) in
  let locality = Float.max 0.0 (1.0 -. (Float.of_int q /. 100.0 *. 0.6)) in
  let hot =
    Array.init n_hot (fun _ ->
        if Prng.float rng 1.0 < locality then
          sample_intra_pair rng tenants_arr cum !total_intra
        else sample_any_pair rng hosts)
  in
  let duration = Trace.duration base in
  let builder = Trace.Builder.create ~n_hosts:(Topology.n_hosts topo) ~duration in
  let base_flows = Trace.n_flows base in
  for _ = 1 to n_flows do
    let (a : Host.t), b =
      if Prng.int rng 100 < p then hot.(Prng.int rng n_hot)
      else sample_any_pair rng hosts
    in
    let src, dst = if Prng.bool rng then (a, b) else (b, a) in
    (* Payload and temporal pattern resampled from the base trace. *)
    let sample = Trace.flow base (Prng.int rng base_flows) in
    let time = sample.Trace.time in
    Trace.Builder.add builder ~time ~src:src.Host.id ~dst:dst.Host.id
      ~bytes:sample.Trace.bytes ~packets:sample.Trace.packets
  done;
  Trace.Builder.build builder

let expand ~rng ~topo ~extra_fraction ~from_hour ~until_hour trace =
  if extra_fraction < 0.0 then invalid_arg "Gen.expand: negative fraction";
  if from_hour < 0 || until_hour <= from_hour then
    invalid_arg "Gen.expand: bad hour window";
  let existing = Trace.pair_flow_counts trace in
  let hosts = all_hosts_array topo in
  let n_extra =
    int_of_float (Float.of_int (Trace.n_flows trace) *. extra_fraction)
  in
  let duration =
    Time.max (Trace.duration trace) (Time.of_hour until_hour)
  in
  let builder = Trace.Builder.create ~n_hosts:(Trace.n_hosts trace) ~duration in
  Trace.iter trace (fun f ->
      Trace.Builder.add builder ~time:f.Trace.time ~src:f.Trace.src
        ~dst:f.Trace.dst ~bytes:f.Trace.bytes ~packets:f.Trace.packets);
  let fresh_pair () =
    let rec pick tries =
      let (a : Host.t), (b : Host.t) = sample_any_pair rng hosts in
      let ai = Ids.Host_id.to_int a.Host.id and bi = Ids.Host_id.to_int b.Host.id in
      let key = if ai < bi then (ai, bi) else (bi, ai) in
      if Hashtbl.mem existing key && tries < 1000 then pick (tries + 1) else (a, b)
    in
    pick 0
  in
  (* The extra flows run over a bounded set of persistent fresh pairs,
     each switching on at a random onset hour and staying active — a
     drift the grouping daemon can actually adapt to, rather than
     unstructured one-shot noise. *)
  let n_new_pairs =
    max 1 (min (Hashtbl.length existing * 3 / 10) (max 1 (n_extra / 8)))
  in
  let fresh =
    Array.init n_new_pairs (fun _ ->
        let pair = fresh_pair () in
        let onset = Prng.int_in rng from_hour (max from_hour (until_hour - 2)) in
        (pair, onset))
  in
  for _ = 1 to n_extra do
    let (a, b), onset = fresh.(Prng.int rng n_new_pairs) in
    let src, dst = if Prng.bool rng then (a, b) else (b, a) in
    let time = sample_time rng ~profile:diurnal_profile ~from_hour:onset ~until_hour in
    let bytes, packets = sample_flow_size rng in
    Trace.Builder.add builder ~time ~src:src.Host.id ~dst:dst.Host.id ~bytes ~packets
  done;
  Trace.Builder.build builder
