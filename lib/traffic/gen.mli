(** Trace generators.

    [real_like] synthesizes a day-long, multi-tenant trace calibrated to
    the aggregate statistics the paper reports for its production trace
    (§II.A / Table II): traffic confined to a small set of communicating
    pairs, ~90% of flows from ~10% of those pairs, high group centrality,
    and a diurnal temporal profile.

    [synthetic] implements the §V-B recipe for Syn-A/B/C: [p]% of flows
    drawn uniformly from a fixed hot set of pairs ([q]% of the intra-tenant
    pair universe, with a locality that shrinks as [q] grows), the rest
    uniform over all host pairs; payloads resampled from a base trace.

    [expand] implements the §V-D expanded trace: extra flows among
    previously non-communicating pairs during hours 8–24.

    Flow counts are an explicit parameter: we reproduce the paper's traces
    at a configurable sampling factor (see EXPERIMENTS.md). *)

open Lazyctrl_sim
open Lazyctrl_topo
module Prng = Lazyctrl_util.Prng

val diurnal_profile : float array
(** 24 per-hour activity weights (relative), peaking in working hours. *)

val real_like :
  rng:Prng.t ->
  topo:Topology.t ->
  n_flows:int ->
  ?duration:Time.t ->
  ?active_pair_fraction:float ->
  ?zipf_alpha:float ->
  ?cross_tenant_fraction:float ->
  ?churn:float ->
  unit ->
  Trace.t
(** Defaults: 24 h duration, 7% of each tenant's pairs active, Zipf α=1.45
    across active pairs, 8% cross-tenant flows, and 35% of pairs active
    only inside a private 4-hour window ([churn]) so the intensity matrix
    drifts across the day. *)

val synthetic :
  rng:Prng.t ->
  topo:Topology.t ->
  base:Trace.t ->
  n_flows:int ->
  p:int ->
  q:int ->
  Trace.t
(** [p], [q] in percent, as in Table II (Syn-A = 90/10, Syn-B = 70/20,
    Syn-C = 70/30). @raise Invalid_argument outside [\[1,100\]]. *)

val expand :
  rng:Prng.t ->
  topo:Topology.t ->
  extra_fraction:float ->
  from_hour:int ->
  until_hour:int ->
  Trace.t ->
  Trace.t
(** Adds [extra_fraction] × (original flow count) new flows among pairs
    absent from the original trace, in the given hour window. *)
