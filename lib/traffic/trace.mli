(** Flow-level traffic traces.

    A trace is a time-sorted sequence of flow arrivals between hosts, the
    unit at which the control plane does work (a new flow is what triggers
    a table miss / Packet_in). Stored as struct-of-arrays so multi-million
    flow traces stay compact. *)

open Lazyctrl_sim
open Lazyctrl_net

type flow = {
  time : Time.t;
  src : Ids.Host_id.t;
  dst : Ids.Host_id.t;
  bytes : int;
  packets : int;
}

type t

module Builder : sig
  type trace = t

  type t

  val create : n_hosts:int -> duration:Time.t -> t

  val add :
    t -> time:Time.t -> src:Ids.Host_id.t -> dst:Ids.Host_id.t ->
    bytes:int -> packets:int -> unit
  (** @raise Invalid_argument on [src = dst], a time beyond the duration,
      or a host id outside [0..n_hosts-1]. *)

  val build : t -> trace
  (** Sorts by time (stable). *)
end

val n_flows : t -> int
val n_hosts : t -> int
val duration : t -> Time.t
val flow : t -> int -> flow
(** Flows are indexed [0 .. n_flows-1] in time order. *)

val iter : ?from:Time.t -> ?until:Time.t -> t -> (flow -> unit) -> unit
(** Flows with [from <= time < until]. *)

val fold : t -> ('a -> flow -> 'a) -> 'a -> 'a

val total_bytes : t -> int

val pair_flow_counts : t -> (int * int, int) Hashtbl.t
(** Flow count per unordered host pair (key has smaller id first). *)

val communicating_pairs : t -> int
(** Number of distinct unordered pairs that exchanged at least one flow. *)

val merge : t -> t -> t
(** Union of two traces over the same host space; duration is the max.
    @raise Invalid_argument on mismatched [n_hosts]. *)

val sub_between : t -> from:Time.t -> until:Time.t -> t
(** Flows in the window, re-based to time 0. *)

val save : t -> string -> unit
(** Write the trace to a file in a compact binary format (magic +
    header + 5 int64 columns per flow). *)

val load : string -> t
(** @raise Invalid_argument on a malformed or truncated file. *)
