open Lazyctrl_sim

type t = {
  engine : Engine.t;
  trace : Trace.t;
  chunk : int;
  on_flow : Trace.flow -> unit;
  mutable next : int;
  mutable injected : int;
}

let rec schedule_chunk t =
  let n = Trace.n_flows t.trace in
  let stop = min n (t.next + t.chunk) in
  for i = t.next to stop - 1 do
    let f = Trace.flow t.trace i in
    ignore
      (Engine.schedule_at t.engine ~at:f.Trace.time (fun () ->
           t.injected <- t.injected + 1;
           t.on_flow f))
  done;
  t.next <- stop;
  if stop < n then begin
    (* Refill when the last flow of this chunk fires. *)
    let last = Trace.flow t.trace (stop - 1) in
    ignore (Engine.schedule_at t.engine ~at:last.Trace.time (fun () -> schedule_chunk t))
  end

let start engine ?(chunk = 8192) ~on_flow trace =
  if chunk <= 0 then invalid_arg "Replay.start: chunk <= 0";
  let t = { engine; trace; chunk; on_flow; next = 0; injected = 0 } in
  if Trace.n_flows trace > 0 then schedule_chunk t;
  t

let injected t = t.injected

let finished t = t.next >= Trace.n_flows t.trace && t.injected >= t.next
