type t = int

let max_addr = (1 lsl 48) - 1

let of_int v =
  if v < 0 || v > max_addr then invalid_arg "Mac.of_int: out of range";
  v

let to_int t = t

let broadcast = max_addr

let is_broadcast t = t = max_addr

let to_string t =
  Printf.sprintf "%02x:%02x:%02x:%02x:%02x:%02x"
    ((t lsr 40) land 0xff)
    ((t lsr 32) land 0xff)
    ((t lsr 24) land 0xff)
    ((t lsr 16) land 0xff)
    ((t lsr 8) land 0xff)
    (t land 0xff)

let of_string s =
  match String.split_on_char ':' s with
  | [ a; b; c; d; e; f ] ->
      let byte x =
        if String.length x <> 2 then invalid_arg "Mac.of_string: bad byte";
        match int_of_string_opt ("0x" ^ x) with
        | Some v when v >= 0 && v <= 0xff -> v
        | _ -> invalid_arg "Mac.of_string: bad byte"
      in
      of_int
        ((byte a lsl 40) lor (byte b lsl 32) lor (byte c lsl 24)
        lor (byte d lsl 16) lor (byte e lsl 8) lor byte f)
  | _ -> invalid_arg "Mac.of_string: expected six colon-separated bytes"

(* Locally administered (bit 0x02 of the first octet), unicast. *)
let of_host_id id =
  if id < 0 || id >= 1 lsl 40 then invalid_arg "Mac.of_host_id: id out of range";
  of_int ((0x02 lsl 40) lor id)

let compare = Int.compare
let equal = Int.equal
let hash t = t land max_int
let pp fmt t = Format.pp_print_string fmt (to_string t)
