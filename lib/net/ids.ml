module type ID = sig
  type t = private int

  val of_int : int -> t
  val to_int : t -> int
  val compare : t -> t -> int
  val equal : t -> t -> bool
  val hash : t -> int
  val pp : Format.formatter -> t -> unit

  module Set : Set.S with type elt = t
  module Map : Map.S with type key = t
  module Tbl : Hashtbl.S with type key = t
end

module Make (P : sig
  val prefix : string
end) : ID = struct
  type t = int

  let of_int v =
    if v < 0 then invalid_arg (P.prefix ^ " id: negative");
    v

  let to_int t = t
  let compare = Int.compare
  let equal = Int.equal
  let hash t = t
  let pp fmt t = Format.fprintf fmt "%s%d" P.prefix t

  module Key = struct
    type nonrec t = t

    let compare = Int.compare
    let equal = Int.equal
    let hash = hash
  end

  module Set = Set.Make (Key)
  module Map = Map.Make (Key)
  module Tbl = Hashtbl.Make (Key)
end

module Switch_id = Make (struct let prefix = "sw" end)
module Host_id = Make (struct let prefix = "h" end)
module Tenant_id = Make (struct let prefix = "t" end)
module Group_id = Make (struct let prefix = "g" end)
