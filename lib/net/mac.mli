(** 48-bit Ethernet MAC addresses. *)

type t = private int
(** Stored in the low 48 bits of an [int]. *)

val of_int : int -> t
(** @raise Invalid_argument outside [\[0, 2^48)]. *)

val to_int : t -> int

val of_string : string -> t
(** Parses ["aa:bb:cc:dd:ee:ff"] (case-insensitive).
    @raise Invalid_argument on malformed input. *)

val to_string : t -> string
val broadcast : t
val is_broadcast : t -> bool

val of_host_id : int -> t
(** Deterministic locally-administered unicast address for a simulated
    host: the host id is embedded in the low bits under the 0x02 OUI. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
