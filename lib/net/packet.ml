type arp_op = Request | Reply

type arp = {
  op : arp_op;
  sender_mac : Mac.t;
  sender_ip : Ipv4.t;
  target_mac : Mac.t;
  target_ip : Ipv4.t;
}

type ipv4_payload = {
  src_ip : Ipv4.t;
  dst_ip : Ipv4.t;
  protocol : int;
  src_port : int;
  dst_port : int;
  length : int;
}

type payload = Arp of arp | Ipv4 of ipv4_payload

type eth = { src : Mac.t; dst : Mac.t; vlan : int option; payload : payload }

type t =
  | Plain of eth
  | Encap of { outer_src : Ipv4.t; outer_dst : Ipv4.t; inner : eth }

let zero_mac = Mac.of_int 0

let arp_request ~(sender : Host.t) ~target_ip ?vlan () =
  Plain
    {
      src = sender.mac;
      dst = Mac.broadcast;
      vlan;
      payload =
        Arp
          {
            op = Request;
            sender_mac = sender.mac;
            sender_ip = sender.ip;
            target_mac = zero_mac;
            target_ip;
          };
    }

let arp_reply ~(sender : Host.t) ~(requester : Host.t) ?vlan () =
  Plain
    {
      src = sender.mac;
      dst = requester.mac;
      vlan;
      payload =
        Arp
          {
            op = Reply;
            sender_mac = sender.mac;
            sender_ip = sender.ip;
            target_mac = requester.mac;
            target_ip = requester.ip;
          };
    }

let data ~(src : Host.t) ~(dst : Host.t) ?vlan ?(protocol = 6) ?(src_port = 0)
    ?(dst_port = 0) ~length () =
  if length < 0 then invalid_arg "Packet.data: negative length";
  Plain
    {
      src = src.mac;
      dst = dst.mac;
      vlan;
      payload =
        Ipv4
          {
            src_ip = src.ip;
            dst_ip = dst.ip;
            protocol;
            src_port;
            dst_port;
            length;
          };
    }

let encap ~outer_src ~outer_dst inner = Encap { outer_src; outer_dst; inner }

let decap = function
  | Encap { inner; _ } -> inner
  | Plain _ -> invalid_arg "Packet.decap: plain frame"

let eth_of = function Plain e -> e | Encap { inner; _ } -> inner

let is_broadcast t = Mac.is_broadcast (eth_of t).dst

(* Wire format (little invented, big-endian fields):
   eth   := dst(6) src(6) [0x8100 vlan(2)] ethertype(2) body
   arp   := op(1) smac(6) sip(4) tmac(6) tip(4)
   ipv4  := sip(4) dip(4) proto(1) sport(2) dport(2) len(4)
   encap := 0xE5CA marker(2) osrc(4) odst(4) eth *)

let eth_header_size e = 12 + (match e.vlan with Some _ -> 4 | None -> 0) + 2

let body_size = function Arp _ -> 21 | Ipv4 p -> 17 + p.length

let size_on_wire = function
  | Plain e -> eth_header_size e + body_size e.payload
  | Encap { inner; _ } -> 10 + eth_header_size inner + body_size inner.payload

module Writer = struct
  type w = { buf : bytes; mutable pos : int }

  let u8 w v =
    Bytes.set_uint8 w.buf w.pos v;
    w.pos <- w.pos + 1

  let u16 w v =
    Bytes.set_uint16_be w.buf w.pos v;
    w.pos <- w.pos + 2

  let u32 w v =
    Bytes.set_int32_be w.buf w.pos (Int32.of_int (v land 0xFFFFFFFF));
    w.pos <- w.pos + 4

  let mac w m =
    let v = Mac.to_int m in
    u16 w ((v lsr 32) land 0xffff);
    u32 w (v land 0xFFFFFFFF)

  let ip w v = u32 w (Ipv4.to_int v)
end

module Reader = struct
  type r = { buf : bytes; mutable pos : int }

  let need r n =
    if r.pos + n > Bytes.length r.buf then
      invalid_arg "Packet.of_bytes: truncated"

  let u8 r =
    need r 1;
    let v = Bytes.get_uint8 r.buf r.pos in
    r.pos <- r.pos + 1;
    v

  let u16 r =
    need r 2;
    let v = Bytes.get_uint16_be r.buf r.pos in
    r.pos <- r.pos + 2;
    v

  let u32 r =
    need r 4;
    let v = Int32.to_int (Bytes.get_int32_be r.buf r.pos) land 0xFFFFFFFF in
    r.pos <- r.pos + 4;
    v

  let mac r =
    let hi = u16 r in
    let lo = u32 r in
    Mac.of_int ((hi lsl 32) lor lo)

  let ip r = Ipv4.of_int (u32 r)
end

let ethertype_arp = 0x0806
let ethertype_ipv4 = 0x0800
let encap_marker = 0xE5CA

let write_eth w e =
  let open Writer in
  mac w e.dst;
  mac w e.src;
  (match e.vlan with
  | Some tag ->
      u16 w 0x8100;
      u16 w (tag land 0xfff)
  | None -> ());
  match e.payload with
  | Arp a ->
      u16 w ethertype_arp;
      u8 w (match a.op with Request -> 1 | Reply -> 2);
      mac w a.sender_mac;
      ip w a.sender_ip;
      mac w a.target_mac;
      ip w a.target_ip
  | Ipv4 p ->
      u16 w ethertype_ipv4;
      ip w p.src_ip;
      ip w p.dst_ip;
      u8 w p.protocol;
      u16 w p.src_port;
      u16 w p.dst_port;
      u32 w p.length

let to_bytes t =
  let size =
    match t with
    | Plain e -> eth_header_size e + (match e.payload with Arp _ -> 21 | Ipv4 _ -> 17)
    | Encap { inner; _ } ->
        10 + eth_header_size inner
        + (match inner.payload with Arp _ -> 21 | Ipv4 _ -> 17)
  in
  let w = { Writer.buf = Bytes.create size; pos = 0 } in
  (match t with
  | Plain e -> write_eth w e
  | Encap { outer_src; outer_dst; inner } ->
      Writer.u16 w encap_marker;
      Writer.ip w outer_src;
      Writer.ip w outer_dst;
      write_eth w inner);
  assert (w.Writer.pos = size);
  w.Writer.buf

let read_eth r =
  let open Reader in
  let dst = mac r in
  let src = mac r in
  let tag_or_type = u16 r in
  let vlan, ethertype =
    if tag_or_type = 0x8100 then
      let tag = u16 r in
      (Some tag, u16 r)
    else (None, tag_or_type)
  in
  let payload =
    if ethertype = ethertype_arp then begin
      let op =
        match u8 r with
        | 1 -> Request
        | 2 -> Reply
        | _ -> invalid_arg "Packet.of_bytes: bad ARP op"
      in
      let sender_mac = mac r in
      let sender_ip = ip r in
      let target_mac = mac r in
      let target_ip = ip r in
      Arp { op; sender_mac; sender_ip; target_mac; target_ip }
    end
    else if ethertype = ethertype_ipv4 then begin
      let src_ip = ip r in
      let dst_ip = ip r in
      let protocol = u8 r in
      let src_port = u16 r in
      let dst_port = u16 r in
      let length = u32 r in
      Ipv4 { src_ip; dst_ip; protocol; src_port; dst_port; length }
    end
    else invalid_arg "Packet.of_bytes: unknown ethertype"
  in
  { dst; src; vlan; payload }

let eth_encoded_size e =
  eth_header_size e + (match e.payload with Arp _ -> 21 | Ipv4 _ -> 17)

let write_eth_to buf ~pos e =
  let w = { Writer.buf; pos } in
  write_eth w e;
  w.Writer.pos

let read_eth_from buf ~pos =
  let r = { Reader.buf; pos } in
  let e = read_eth r in
  (e, r.Reader.pos)

let of_bytes buf =
  let r = { Reader.buf; pos = 0 } in
  if Bytes.length buf >= 2 && Bytes.get_uint16_be buf 0 = encap_marker then begin
    let _marker = Reader.u16 r in
    let outer_src = Reader.ip r in
    let outer_dst = Reader.ip r in
    let inner = read_eth r in
    Encap { outer_src; outer_dst; inner }
  end
  else Plain (read_eth r)

let equal a b = a = b

let pp_payload fmt = function
  | Arp a ->
      Format.fprintf fmt "ARP %s %a->%a"
        (match a.op with Request -> "who-has" | Reply -> "is-at")
        Ipv4.pp a.sender_ip Ipv4.pp a.target_ip
  | Ipv4 p ->
      Format.fprintf fmt "IPv4 %a:%d->%a:%d proto=%d len=%d" Ipv4.pp p.src_ip
        p.src_port Ipv4.pp p.dst_ip p.dst_port p.protocol p.length

let pp fmt = function
  | Plain e ->
      Format.fprintf fmt "[%a->%a%s %a]" Mac.pp e.src Mac.pp e.dst
        (match e.vlan with Some v -> Printf.sprintf " vlan=%d" v | None -> "")
        pp_payload e.payload
  | Encap { outer_src; outer_dst; inner } ->
      Format.fprintf fmt "[encap %a=>%a %a->%a %a]" Ipv4.pp outer_src Ipv4.pp
        outer_dst Mac.pp inner.src Mac.pp inner.dst pp_payload inner.payload
