(** A host is a virtual machine attached to an edge switch and owned by a
    tenant. The MAC and IP are derived deterministically from the host id
    so tables can be reconstructed from ids in tests. *)

type t = {
  id : Ids.Host_id.t;
  mac : Mac.t;
  ip : Ipv4.t;
  tenant : Ids.Tenant_id.t;
}

val make : id:Ids.Host_id.t -> tenant:Ids.Tenant_id.t -> t
(** Derives [mac] via {!Mac.of_host_id} and [ip] via {!Ipv4.of_host_id}. *)

val compare : t -> t -> int
(** By id. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
