type t = {
  id : Ids.Host_id.t;
  mac : Mac.t;
  ip : Ipv4.t;
  tenant : Ids.Tenant_id.t;
}

let make ~id ~tenant =
  let n = Ids.Host_id.to_int id in
  { id; mac = Mac.of_host_id n; ip = Ipv4.of_host_id n; tenant }

let compare a b = Ids.Host_id.compare a.id b.id
let equal a b = Ids.Host_id.equal a.id b.id

let pp fmt t =
  Format.fprintf fmt "%a(%a,%a,%a)" Ids.Host_id.pp t.id Mac.pp t.mac Ipv4.pp
    t.ip Ids.Tenant_id.pp t.tenant
