(** Frames exchanged in the data plane.

    Two levels exist, mirroring the paper's overlay design: a {e plain}
    Ethernet frame as emitted by a host, and an {e encapsulated} frame —
    a plain frame wrapped in a GRE-like outer IP header addressed to a
    remote edge switch's underlay endpoint.

    A compact binary wire format is provided so that tables, channels and
    Bloom filters can be exercised against realistic byte strings. *)

type arp_op = Request | Reply

type arp = {
  op : arp_op;
  sender_mac : Mac.t;
  sender_ip : Ipv4.t;
  target_mac : Mac.t; (* all-zero in requests *)
  target_ip : Ipv4.t;
}

type ipv4_payload = {
  src_ip : Ipv4.t;
  dst_ip : Ipv4.t;
  protocol : int; (* 6 = TCP, 17 = UDP *)
  src_port : int;
  dst_port : int;
  length : int; (* payload bytes carried, for accounting *)
}

type payload = Arp of arp | Ipv4 of ipv4_payload

type eth = {
  src : Mac.t;
  dst : Mac.t;
  vlan : int option; (* 802.1Q tenant tag *)
  payload : payload;
}

type t =
  | Plain of eth
  | Encap of { outer_src : Ipv4.t; outer_dst : Ipv4.t; inner : eth }

val arp_request : sender:Host.t -> target_ip:Ipv4.t -> ?vlan:int -> unit -> t
(** Broadcast ARP who-has frame from a host. *)

val arp_reply : sender:Host.t -> requester:Host.t -> ?vlan:int -> unit -> t

val data : src:Host.t -> dst:Host.t -> ?vlan:int -> ?protocol:int ->
  ?src_port:int -> ?dst_port:int -> length:int -> unit -> t
(** Unicast IPv4 data frame between two hosts. *)

val encap : outer_src:Ipv4.t -> outer_dst:Ipv4.t -> eth -> t
(** Wrap a plain frame for underlay transport.
    @raise Invalid_argument when applied to an already encapsulated frame
    indirectly (callers pass the inner [eth] explicitly, so this cannot
    nest). *)

val decap : t -> eth
(** @raise Invalid_argument on a plain frame. *)

val eth_of : t -> eth
(** The innermost Ethernet frame of either form. *)

val is_broadcast : t -> bool
val size_on_wire : t -> int
(** Logical on-wire size in bytes: all headers plus the carried payload
    length. Used for bandwidth accounting. *)

val to_bytes : t -> bytes
(** Header-only encoding — the synthetic payload body is represented by
    its length field, not materialized, so [Bytes.length (to_bytes p)] is
    [size_on_wire p] minus the payload length. *)

val of_bytes : bytes -> t
(** Inverse of {!to_bytes}.
    @raise Invalid_argument on truncated or malformed input. *)

val eth_encoded_size : eth -> int
(** Exact number of bytes {!write_eth_to} emits for this frame (headers
    plus the fixed ARP/IPv4 body; the IPv4 payload is represented by its
    length field). *)

val write_eth_to : bytes -> pos:int -> eth -> int
(** Write the header-only encoding of a bare Ethernet frame into a caller
    buffer at [pos]; returns the position one past the last byte written
    (always [pos + eth_encoded_size e]). Lets framing layers embed frames
    without an intermediate [Bytes.sub]. *)

val read_eth_from : bytes -> pos:int -> eth * int
(** Inverse of {!write_eth_to}: parse one bare Ethernet frame starting at
    [pos]; returns the frame and the position one past it.
    @raise Invalid_argument on truncated or malformed input. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
