(** IPv4 addresses (used for hosts and the underlay tunnel endpoints). *)

type t = private int

val of_int : int -> t
(** @raise Invalid_argument outside [\[0, 2^32)]. *)

val to_int : t -> int

val of_string : string -> t
(** Dotted quad. @raise Invalid_argument on malformed input. *)

val to_string : t -> string

val of_octets : int -> int -> int -> int -> t

val of_host_id : int -> t
(** Deterministic address in 10.0.0.0/8 for a simulated host. *)

val of_switch_id : int -> t
(** Deterministic underlay endpoint in 172.16.0.0/12 for an edge switch. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
