type t = int

let of_int v =
  if v < 0 || v > 0xFFFFFFFF then invalid_arg "Ipv4.of_int: out of range";
  v

let to_int t = t

let of_octets a b c d =
  let ok x = x >= 0 && x <= 0xff in
  if not (ok a && ok b && ok c && ok d) then
    invalid_arg "Ipv4.of_octets: octet out of range";
  (a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d

let to_string t =
  Printf.sprintf "%d.%d.%d.%d" ((t lsr 24) land 0xff) ((t lsr 16) land 0xff)
    ((t lsr 8) land 0xff) (t land 0xff)

let of_string s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] ->
      let octet x =
        match int_of_string_opt x with
        | Some v when v >= 0 && v <= 255 -> v
        | _ -> invalid_arg "Ipv4.of_string: bad octet"
      in
      of_octets (octet a) (octet b) (octet c) (octet d)
  | _ -> invalid_arg "Ipv4.of_string: expected dotted quad"

let of_host_id id =
  if id < 0 || id >= 1 lsl 24 then invalid_arg "Ipv4.of_host_id: id out of range";
  (10 lsl 24) lor id

let of_switch_id id =
  if id < 0 || id >= 1 lsl 16 then invalid_arg "Ipv4.of_switch_id: id out of range";
  (172 lsl 24) lor (16 lsl 16) lor id

let compare = Int.compare
let equal = Int.equal
let hash t = t
let pp fmt t = Format.pp_print_string fmt (to_string t)
