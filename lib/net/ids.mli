(** Opaque identifiers for switches, hosts, tenants, and groups.

    Each id is a non-negative integer under the hood; the phantom-free
    single-module-per-kind style keeps them from being mixed up at use
    sites while staying cheap enough to use as array indices. *)

module type ID = sig
  type t = private int

  val of_int : int -> t
  (** @raise Invalid_argument when negative. *)

  val to_int : t -> int
  val compare : t -> t -> int
  val equal : t -> t -> bool
  val hash : t -> int
  val pp : Format.formatter -> t -> unit

  module Set : Set.S with type elt = t
  module Map : Map.S with type key = t
  module Tbl : Hashtbl.S with type key = t
end

module Switch_id : ID
(** Edge-switch identifier; printed as ["sw<N>"]. *)

module Host_id : ID
(** Host (virtual machine) identifier; printed as ["h<N>"]. *)

module Tenant_id : ID
(** Tenant identifier; printed as ["t<N>"]. *)

module Group_id : ID
(** Local-control-group identifier; printed as ["g<N>"]. *)
