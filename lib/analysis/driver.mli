(** Lint driver: walks the source tree, parses every file once into a
    shared cache, feeds the same Parsetrees to the per-file rules, the
    protocol checks and the call-graph passes, and filters the result
    through the allowlist. *)

type report = {
  findings : Finding.t list;
      (** gating: unallowlisted + malformed allowlist entries *)
  suppressed : Finding.t list;  (** matched by an allowlist entry *)
  stale : Finding.t list;  (** allowlist entries that matched nothing *)
  files_scanned : int;
  parse_failures : (string * string) list;
      (** (file, parser message), each file reported once *)
  callgraph_notes : (string * string) list;
      (** (file, note): constructs the call-graph index could not fully
          resolve — the whole-program passes' honest blind spots *)
}

(** Per-file rules on one source: Parsetree pass, or the token fallback
    when the file does not parse (the parse error is returned too). *)
val lint_source :
  file:string -> src:string -> Finding.t list * string option

(** Protocol checks against the tree under [root] — the same checks the
    @lint alias runs, exposed for tests. *)
val protocol_findings : root:string -> Finding.t list

(** Run the full lint.  [families] (default all of {!Rules.families})
    restricts which rule families run and which allowlist entries can be
    stale. *)
val run :
  ?families:string list -> root:string -> allow_path:string -> unit -> report

(** No gating findings. *)
val clean : report -> bool

val report_to_json : report -> string

val ownership_report_json : root:string -> unit -> string
(** The sharding PR's synchronization worklist: every scanned module's
    ownership class ({!Ownership.default}) next to its declared mutable
    state ({!Mutinv}), plus the spec's entry points.  Emitted by
    [make lint-ownership] into [_build/ownership-report.json]. *)

(** The H00x cross-validation report ([make lint-hotpath],
    [_build/hotpath-report.json]): the static verdict per probe next to
    its committed budget and the measured minor-words-per-op, findings
    filtered through the same allowlist as everything else. *)
type hotpath_report = {
  hp_probes : Hotpath.probe_status list;
  hp_rows : Hotbudget.row list;
  hp_findings : Finding.t list;
      (** gating: unallowlisted static + dynamic findings *)
  hp_suppressed : Finding.t list;
}

(** [measured] maps probe names to measured minor words/op, read out of a
    lib/perf report by the CLI; [budget_path] is relative to [root]. *)
val hotpath_check :
  root:string ->
  allow_path:string ->
  budget_path:string ->
  measured:(string * float) list ->
  unit ->
  hotpath_report

val hotpath_clean : hotpath_report -> bool
val hotpath_report_json : hotpath_report -> string
