(* SARIF 2.1.0 serialization of a lint report, for GitHub code scanning.

   Only the gating findings become results: suppressed findings already
   carry their justification in the allowlist, and stale entries are an
   allowlist-maintenance concern, not a code finding.  The driver's
   rules catalog carries a short description per rule so the code
   scanning UI can label alerts without reaching back into README. *)

let tool_name = "lazyctrl-lint"
let schema = "https://json.schemastore.org/sarif-2.1.0.json"

(* One line per rule, mirroring README "Static analysis". *)
let descriptions =
  [
    (Rules.d_hashtbl_order, "Unordered hash-table iteration can make two same-seed runs diverge");
    (Rules.d_raw_random, "Raw randomness outside the seeded PRNG sanctuary");
    (Rules.d_wall_clock, "Host clock read outside the simulated-time sanctuary");
    (Rules.d_float_eq, "Float equality where simulated-time arithmetic needs a tolerance");
    (Rules.a_poly_compare, "Polymorphic compare where a keyed module exports its own");
    (Rules.a_poly_hash, "Polymorphic hash where a keyed module exports its own");
    (Rules.a_poly_eq, "Polymorphic equality on keyed record fields");
    (Rules.p_failover_table, "Failure-inference table must stay total and consistent");
    (Rules.p_proto_coverage, "Every Proto message constructor needs a handler arm");
    (Rules.e_indirect_random, "Randomness reached indirectly through the call graph");
    (Rules.e_indirect_clock, "Host clock reached indirectly through the call graph");
    (Rules.e_indirect_order, "Unordered iteration reached indirectly through the call graph");
    (Rules.l_layering, "Dependency violates the declared layer DAG");
    (Rules.l_lazy_separation, "Control-plane separation: switch and controller touch only Proto");
    (Rules.x_dead_export, "Exported value is referenced nowhere in the repo");
    (Rules.x_missing_mli, "Library module lacks an interface file");
    (Rules.s_spec, "Ownership spec is malformed or has drifted from the code");
    (Rules.s_shared_mutable, "Shard-local mutable state reachable from two or more shards");
    (Rules.s_closure_escape, "Mutating closure escapes onto the event queue or a channel callback");
    (Rules.s_init_write, "Write to read-only-after-init state reachable from the run loop");
  ]

let description_of rule =
  match List.find_opt (fun (r, _) -> String.equal r rule) descriptions with
  | Some (_, d) -> d
  | None -> rule

let level_of = function Finding.Error -> "error" | Finding.Warning -> "warning"

let of_report (report : Driver.report) =
  let buf = Buffer.create 4096 in
  let str s = Printf.sprintf "\"%s\"" (Finding.json_escape s) in
  Buffer.add_string buf
    (Printf.sprintf
       "{\n  \"$schema\": %s,\n  \"version\": \"2.1.0\",\n  \"runs\": [\n    \
        {\n      \"tool\": {\n        \"driver\": {\n          \"name\": %s,\n\
       \          \"rules\": ["
       (str schema) (str tool_name));
  List.iteri
    (fun i rule ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n            {\"id\": %s, \"shortDescription\": {\"text\": %s}}"
           (str rule)
           (str (description_of rule))))
    Rules.all;
  Buffer.add_string buf "\n          ]\n        }\n      },\n      \"results\": [";
  List.iteri
    (fun i (f : Finding.t) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n        {\"ruleId\": %s, \"level\": %s, \"message\": {\"text\": \
            %s}, \"locations\": [{\"physicalLocation\": \
            {\"artifactLocation\": {\"uri\": %s, \"uriBaseId\": \
            \"SRCROOT\"}, \"region\": {\"startLine\": %d, \"startColumn\": \
            %d}}}]}"
           (str f.rule)
           (str (level_of f.severity))
           (str f.message) (str f.file)
           (max 1 f.line)
           (f.col + 1)))
    report.Driver.findings;
  Buffer.add_string buf "\n      ]\n    }\n  ]\n}\n";
  Buffer.contents buf
