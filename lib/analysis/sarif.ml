(* SARIF 2.1.0 serialization of lint findings, for GitHub code scanning.

   Only gating findings become results: suppressed findings already
   carry their justification in the allowlist, and stale entries are an
   allowlist-maintenance concern, not a code finding.

   Every rule — in every family, uniformly — carries full metadata: a
   PascalCase name, a one-line shortDescription, and help text, so the
   code scanning UI can label and explain alerts without reaching back
   into README.  [catalog_complete] lets a test pin the invariant that a
   new rule id cannot land without its metadata. *)

let tool_name = "lazyctrl-lint"
let schema = "https://json.schemastore.org/sarif-2.1.0.json"

type meta = {
  m_id : string;
  m_name : string;  (* PascalCase, the SARIF rule "name" *)
  m_short : string;  (* one line, mirroring README "Static analysis" *)
  m_help : string;  (* what to do about a finding *)
}

let catalog =
  [
    {
      m_id = Rules.d_hashtbl_order;
      m_name = "HashtblIterationOrder";
      m_short =
        "Unordered hash-table iteration can make two same-seed runs diverge";
      m_help =
        "Iterate a sorted key snapshot (Det.sorted_keys) or feed the fold \
         straight into an order-erasing sink like List.sort.";
    };
    {
      m_id = Rules.d_raw_random;
      m_name = "RawRandomness";
      m_short = "Raw randomness outside the seeded PRNG sanctuary";
      m_help =
        "Draw from the seeded, splittable Prng stream plumbed through the \
         simulation instead of Stdlib.Random.";
    };
    {
      m_id = Rules.d_wall_clock;
      m_name = "WallClockRead";
      m_short = "Host clock read outside the simulated-time sanctuary";
      m_help =
        "Simulated behavior must depend only on Lazyctrl_sim.Time; host \
         clocks belong to the measurement harness alone.";
    };
    {
      m_id = Rules.d_float_eq;
      m_name = "FloatEquality";
      m_short =
        "Float equality where simulated-time arithmetic needs a tolerance";
      m_help =
        "Compare with an explicit epsilon, or move the quantity onto \
         integer nanoseconds like the rest of the simulator.";
    };
    {
      m_id = Rules.a_poly_compare;
      m_name = "PolymorphicCompare";
      m_short = "Polymorphic compare where a keyed module exports its own";
      m_help =
        "Use the keyed module's compare: structural compare follows \
         representation, not identity, and breaks when the type grows.";
    };
    {
      m_id = Rules.a_poly_hash;
      m_name = "PolymorphicHash";
      m_short = "Polymorphic hash where a keyed module exports its own";
      m_help =
        "Use the keyed module's hash (or its Tbl functor instance) so \
         hashing agrees with the module's equality.";
    };
    {
      m_id = Rules.a_poly_eq;
      m_name = "PolymorphicEquality";
      m_short = "Polymorphic equality on keyed record fields";
      m_help =
        "Compare keyed fields (mac, ip, tenant, ...) with the key module's \
         equal, not structural (=).";
    };
    {
      m_id = Rules.p_failover_table;
      m_name = "FailoverTableTotality";
      m_short = "Failure-inference table must stay total and consistent";
      m_help =
        "Keep the wheel failure-inference match total over its declared \
         input space; the symbolic evaluation replays Table I exhaustively.";
    };
    {
      m_id = Rules.p_proto_coverage;
      m_name = "ProtoCoverage";
      m_short = "Every Proto message constructor needs a handler arm";
      m_help =
        "Add the missing handler arm (or an explicit ignore) so the \
         controller/switch dispatch stays total over the message grammar.";
    };
    {
      m_id = Rules.e_indirect_random;
      m_name = "IndirectRandomness";
      m_short = "Randomness reached indirectly through the call graph";
      m_help =
        "A helper on this call chain draws raw randomness; thread the \
         seeded Prng through it or break the edge.";
    };
    {
      m_id = Rules.e_indirect_clock;
      m_name = "IndirectWallClock";
      m_short = "Host clock reached indirectly through the call graph";
      m_help =
        "A helper on this call chain reads the host clock; simulated code \
         must reach time only through Lazyctrl_sim.Time.";
    };
    {
      m_id = Rules.e_indirect_order;
      m_name = "IndirectHashtblOrder";
      m_short =
        "Unordered iteration reached indirectly through the call graph";
      m_help =
        "A helper on this call chain iterates a hash table unordered; \
         route it through Det's sorted snapshots.";
    };
    {
      m_id = Rules.l_layering;
      m_name = "LayeringViolation";
      m_short = "Dependency violates the declared layer DAG";
      m_help =
        "Move the code or invert the dependency; the allowed edges are \
         declared in lib/analysis/layering.ml and drawn in \
         ARCHITECTURE.md.";
    };
    {
      m_id = Rules.l_lazy_separation;
      m_name = "LazySeparation";
      m_short =
        "Control-plane separation: switch and controller touch only Proto";
      m_help =
        "The switch must not lean on controller internals (nor vice \
         versa); the Proto grammar is the entire shared surface.";
    };
    {
      m_id = Rules.x_dead_export;
      m_name = "DeadExport";
      m_short = "Exported value is referenced nowhere in the repo";
      m_help =
        "Drop the export from the .mli (or delete the definition); keep \
         interfaces tight so the call-graph passes stay sharp.";
    };
    {
      m_id = Rules.x_missing_mli;
      m_name = "MissingInterface";
      m_short = "Library module lacks an interface file";
      m_help =
        "Write the .mli: an explicit interface is what the dead-export \
         and layering passes check against.";
    };
    {
      m_id = Rules.s_spec;
      m_name = "OwnershipSpecDefect";
      m_short = "Ownership spec is malformed or has drifted from the code";
      m_help =
        "Fix lib/analysis/ownership.ml: every crossing needs a written \
         justification and every entry point must resolve to a \
         definition.";
    };
    {
      m_id = Rules.s_shared_mutable;
      m_name = "SharedMutableState";
      m_short =
        "Shard-local mutable state reachable from two or more shards";
      m_help =
        "Give each domain its own instance, or reclassify the module as \
         shard-crossing with the synchronization documented.";
    };
    {
      m_id = Rules.s_closure_escape;
      m_name = "ClosureEscape";
      m_short =
        "Mutating closure escapes onto the event queue or a channel \
         callback";
      m_help =
        "The closure outlives its creator; under sharding it must stay \
         pinned to the domain owning the state it captures.";
    };
    {
      m_id = Rules.s_init_write;
      m_name = "InitOnlyWrite";
      m_short =
        "Write to read-only-after-init state reachable from the run loop";
      m_help =
        "Mutate during setup only, or the module's ownership class is \
         wrong.";
    };
    {
      m_id = Rules.h_spec;
      m_name = "HotpathSpecDefect";
      m_short = "Hot-path spec is malformed or has drifted from the code";
      m_help =
        "Fix lib/analysis/hotspec.ml: hot entries and cold boundaries \
         must resolve to definitions, boundaries need justifications and \
         must still be reachable.";
    };
    {
      m_id = Rules.h_hot_alloc;
      m_name = "HotPathAllocation";
      m_short =
        "Allocation site reachable from a hot entry without a cold \
         boundary";
      m_help =
        "The edge datapath must stay allocation-free: hoist or pool the \
         value, move the work behind a declared cold boundary, or \
         allowlist with a justification.";
    };
    {
      m_id = Rules.h_hot_indirect;
      m_name = "HotPathIndirection";
      m_short =
        "Polymorphic primitive or first-class-function call on a hot path";
      m_help =
        "Dynamic dispatch defeats inlining on the hot path; call the \
         target directly, use the keyed module's operations, or justify \
         the indirection.";
    };
    {
      m_id = Rules.h_hot_raise;
      m_name = "HotPathExceptionFlow";
      m_short = "Exception-based control flow inside the hot region";
      m_help =
        "Exceptions allocate and unwind on the hot path; return a variant \
         or sentinel instead.";
    };
    {
      m_id = Rules.h_alloc_calibration;
      m_name = "AllocCalibrationGap";
      m_short =
        "Probe statically clean but measured allocating — the analysis is \
         blind to it";
      m_help =
        "The allocation is invisible to the Parsetree pass (runtime \
         boxing, stdlib internals, partial application); find and fix it, \
         or allowlist the gap naming the source.";
    };
    {
      m_id = Rules.h_alloc_budget;
      m_name = "AllocBudgetDefect";
      m_short =
        "Measured minor-words-per-op over budget, or budget bookkeeping \
         drift";
      m_help =
        "Fix the allocation regression, or refresh HOTPATH_budget \
         deliberately saying what grew; every declared probe needs a \
         budget and a measurement.";
    };
  ]

let metadata_of rule =
  List.find_opt (fun m -> String.equal m.m_id rule) catalog

(* Every rule id has catalog metadata and vice versa — pinned by a test
   so a new rule cannot land without its SARIF entry. *)
let catalog_complete () =
  List.length catalog = List.length Rules.all
  && List.for_all (fun r -> Option.is_some (metadata_of r)) Rules.all

let level_of = function Finding.Error -> "error" | Finding.Warning -> "warning"

let of_findings findings =
  let buf = Buffer.create 4096 in
  let str s = Printf.sprintf "\"%s\"" (Finding.json_escape s) in
  Buffer.add_string buf
    (Printf.sprintf
       "{\n  \"$schema\": %s,\n  \"version\": \"2.1.0\",\n  \"runs\": [\n    \
        {\n      \"tool\": {\n        \"driver\": {\n          \"name\": %s,\n\
       \          \"rules\": ["
       (str schema) (str tool_name));
  List.iteri
    (fun i m ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n            {\"id\": %s, \"name\": %s, \"shortDescription\": \
            {\"text\": %s}, \"fullDescription\": {\"text\": %s}, \"help\": \
            {\"text\": %s}}"
           (str m.m_id) (str m.m_name) (str m.m_short) (str m.m_help)
           (str m.m_help)))
    catalog;
  Buffer.add_string buf "\n          ]\n        }\n      },\n      \"results\": [";
  List.iteri
    (fun i (f : Finding.t) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n        {\"ruleId\": %s, \"level\": %s, \"message\": {\"text\": \
            %s}, \"locations\": [{\"physicalLocation\": \
            {\"artifactLocation\": {\"uri\": %s, \"uriBaseId\": \
            \"SRCROOT\"}, \"region\": {\"startLine\": %d, \"startColumn\": \
            %d}}}]}"
           (str f.rule)
           (str (level_of f.severity))
           (str f.message) (str f.file)
           (max 1 f.line)
           (f.col + 1)))
    findings;
  Buffer.add_string buf "\n      ]\n    }\n  ]\n}\n";
  Buffer.contents buf

let of_report (report : Driver.report) = of_findings report.Driver.findings
