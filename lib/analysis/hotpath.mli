(** Hot-path allocation-discipline checks (H00x): the code against the
    {!Hotspec}, whole-program over the shared {!Callgraph}.

    H000 spec defects (validation, unresolved entries/boundaries, stale
    boundaries), H001 allocation sites reachable from a hot entry without
    an intervening cold boundary, H002 polymorphic primitives or
    first-class-function indirection on a hot path, H003 exception-based
    control flow in the hot region.  Findings carry witness call chains
    in the E001/S001 style.  {!Hotbudget} cross-validates the per-probe
    static tally against measured minor-words-per-op. *)

type probe_status = {
  p_probe : string;
  p_entries : string list;  (** resolved hot-entry def ids *)
  p_file : string;  (** first entry's file, for H004 attribution *)
  p_line : int;
  p_alloc_sites : int;
      (** H001-class sites statically reachable, allowlisted or not:
          zero means the probe claims to be allocation-free *)
}

type analysis = { a_findings : Finding.t list; a_probes : probe_status list }

val analyze :
  spec:Hotspec.spec ->
  cg:Callgraph.t ->
  structures:(string * Parsetree.structure) list ->
  unit ->
  analysis

(** [analyze] restricted to its findings, for the driver's H pass. *)
val check :
  spec:Hotspec.spec ->
  cg:Callgraph.t ->
  structures:(string * Parsetree.structure) list ->
  unit ->
  Finding.t list
