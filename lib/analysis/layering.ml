(* Architecture layering enforcement (L00x).

   The paper's control plane only stays "lazy" if the separation it
   describes is structural: edge switches forward intra-group traffic
   with purely local state (L-FIB/G-FIB) and talk to the central
   controller exclusively through the in-band [Proto] message grammar.
   Devolved-controller designs fail exactly when switches quietly lean
   on central state, so this pass turns the layering into a checked
   property rather than a convention.

   L001 — the declared dependency spec below (a tightened mirror of the
   dune library graph: primitives at the bottom, the simulator core and
   experiment harnesses at the top, and the [analysis] library outside
   the simulator entirely).

   L002 — the paper-specific separation invariant:
     * nothing under [lib/switch] may reference [Lazyctrl_controller]
       at all (a switch that calls controller internals is no longer an
       edge switch);
     * [lib/controller] may reach into [Lazyctrl_switch] only through
       the [Proto] module — message construction and inspection — never
       through [Edge_switch]/[Lfib]/[Gfib] internals. *)

(* lib dir -> lib dirs it may reference.  Keep in sync with DESIGN.md's
   "Analysis architecture" section and the dune library graph. *)
let allowed_deps =
  [
    ("util", []);
    ("bloom", []);
    ("net", []);
    (* The perf measurement layer sits outside the simulation: it may
       not see (or be seen by) any simulated component, so wall timing
       can never leak into event ordering. *)
    ("perf", []);
    ("sim", [ "util" ]);
    ("graph", [ "util" ]);
    ("metrics", [ "util"; "sim" ]);
    (* The flight recorder is a sink: components above may emit events
       into it, but it only sees primitives — so tracing can never feed
       back into simulated behaviour. *)
    ("trace", [ "util"; "sim"; "net" ]);
    ("openflow", [ "util"; "sim"; "net"; "trace" ]);
    (* The binary codec sits beside openflow, not inside it: channels
       accept encode/decode as plain closures, so openflow stays ignorant
       of the wire format while switch/core/cluster plug it in. *)
    ("wire", [ "util"; "sim"; "net"; "openflow" ]);
    ("topo", [ "util"; "sim"; "net" ]);
    ("grouping", [ "util"; "net"; "graph" ]);
    ("traffic", [ "util"; "sim"; "net"; "graph"; "topo" ]);
    ("switch", [ "util"; "sim"; "net"; "bloom"; "openflow"; "wire"; "trace" ]);
    ("baseline", [ "util"; "sim"; "net"; "openflow" ]);
    ( "controller",
      [
        "util"; "sim"; "net"; "graph"; "grouping"; "openflow"; "wire";
        "switch"; "trace";
      ] );
    ( "core",
      [
        "util"; "sim"; "net"; "bloom"; "graph"; "openflow"; "wire"; "topo";
        "traffic"; "grouping"; "switch"; "controller"; "baseline"; "metrics";
        "trace";
      ] );
    (* Chaos drives core/controller from the outside; nothing below it may
       ever reference it back — fault injection must stay optional. *)
    ( "chaos",
      [
        "util"; "sim"; "net"; "graph"; "openflow"; "topo"; "switch";
        "controller"; "core"; "trace";
      ] );
    (* The controller cluster sits above chaos: it composes the chaos
       invariant cores over its own plane, while chaos itself stays
       ignorant of the cluster (its cluster fault kinds are inert there). *)
    ( "cluster",
      [
        "util"; "sim"; "net"; "graph"; "grouping"; "openflow"; "wire"; "topo";
        "switch"; "controller"; "core"; "chaos"; "trace";
      ] );
    ( "experiments",
      [
        "util"; "sim"; "net"; "bloom"; "graph"; "openflow"; "topo"; "traffic";
        "grouping"; "switch"; "controller"; "baseline"; "metrics"; "core";
        "chaos"; "cluster"; "trace";
      ] );
    (* The lint must never depend on the code it judges. *)
    ("analysis", []);
  ]

(* The only switch module the controller may name: the message grammar. *)
let controller_switch_surface = [ "Proto" ]

let target_of cg (fi : Callgraph.finfo) (r : Callgraph.fref) =
  (* (target lib dir, referenced module inside it if known) *)
  let expand path =
    match path with
    | head :: rest -> (
        match List.assoc_opt head fi.Callgraph.f_aliases with
        | Some target -> target @ rest
        | None -> path)
    | [] -> path
  in
  match expand r.Callgraph.r_path with
  | [] -> None
  | head :: rest -> (
      match Callgraph.lib_of_wrapper head with
      | Some d -> Some (d, match rest with m :: _ -> Some m | [] -> None)
      | None ->
          (* a bare module brought into scope by [open Lazyctrl_x] *)
          let from_open o =
            match o with
            | w :: _ -> (
                match Callgraph.lib_of_wrapper w with
                | Some d
                  when List.exists (String.equal head)
                         (Callgraph.modules_of_lib cg d) ->
                    Some (d, Some head)
                | _ -> None)
            | [] -> None
          in
          List.find_map from_open fi.Callgraph.f_opens)

let check cg =
  let findings = ref [] in
  let emit ~file ~line ~col ~rule msg =
    findings :=
      Finding.make ~file ~line ~col ~rule ~severity:Finding.Error msg
      :: !findings
  in
  List.iter
    (fun (fi : Callgraph.finfo) ->
      match (fi.Callgraph.f_aux, fi.Callgraph.f_lib) with
      | true, _ | _, None -> ()
      | false, Some own ->
          List.iter
            (fun (r : Callgraph.fref) ->
              match target_of cg fi r with
              | None -> ()
              | Some (target, _) when String.equal target own -> ()
              | Some (target, m) ->
                  let file = fi.Callgraph.f_file in
                  let line = r.Callgraph.r_line
                  and col = r.Callgraph.r_col in
                  if String.equal own "switch" && String.equal target "controller"
                  then
                    emit ~file ~line ~col ~rule:Rules.l_lazy_separation
                      "lib/switch references Lazyctrl_controller: edge \
                       switches must stay lazy — local L-FIB/G-FIB state \
                       plus Proto messages only, never controller internals"
                  else if
                    String.equal own "controller"
                    && String.equal target "switch"
                    && (match m with
                       | Some m ->
                           not
                             (List.exists (String.equal m)
                                controller_switch_surface)
                       | None -> false)
                  then
                    emit ~file ~line ~col ~rule:Rules.l_lazy_separation
                      (Printf.sprintf
                         "lib/controller references Lazyctrl_switch.%s: the \
                          controller drives edge switches only through the \
                          Proto message grammar, not switch internals"
                         (Option.value m ~default:"?"))
                  else if
                    (match List.assoc_opt own allowed_deps with
                    | Some deps ->
                        not (List.exists (String.equal target) deps)
                    | None -> false)
                    (* unknown own lib: no declared spec, stay silent *)
                  then
                    emit ~file ~line ~col ~rule:Rules.l_layering
                      (Printf.sprintf
                         "lib/%s references Lazyctrl_%s, which the declared \
                          layering (lib/analysis/layering.ml) does not \
                          allow; either the reference is a leak or the spec \
                          needs a deliberate amendment"
                         own target))
            fi.Callgraph.f_refs)
    (Callgraph.files cg);
  List.sort_uniq Finding.compare !findings
