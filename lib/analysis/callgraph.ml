(* Cross-module reference index and call graph for the whole-program
   passes (Effects, Layering, Deadcode).

   Built purely from Parsetrees — no typing environment — so resolution
   is name-based and follows this repo's conventions:

     lib/<dir>/<name>.ml        defines  Lazyctrl_<dir>.<Name>
     bin|bench|examples/<x>.ml  defines  a standalone module <X>

   A raw identifier path like [Proto.Ring.neighbors] is resolved against
   the scope it appears in: explicit [Lazyctrl_*] prefixes are absolute;
   [open]ed libraries, file-local module aliases ([module Det =
   Lazyctrl_util.Det]) and sibling modules of the same library provide
   the remaining candidates, in that order.  Where the analysis cannot
   resolve a name it errs on the side of *more* references (deadcode
   stays conservative) and *fewer* call edges (effects stay precise). *)

open Parsetree

type ref_kind = Value | Type | Module | Open

type fref = { r_path : string list; r_line : int; r_col : int; r_kind : ref_kind }

type def = {
  d_file : string;
  d_id : string;  (* dotted fully-qualified id, e.g. Lazyctrl_switch.Proto.mac_key *)
  d_qual : string list;
  d_line : int;
  d_col : int;
  d_span : (int * int) * (int * int);  (* start/end (line, col) of the binding *)
  d_refs : (string list * int * int) list;  (* raw value-ident paths in the body *)
  d_opens : string list list;  (* opens in scope at the def, innermost first *)
  d_encl : string list list;  (* enclosing module quals, innermost first *)
  d_mutates : bool;  (* a set-field / set-instance-var occurs in the body *)
}

type finfo = {
  f_file : string;
  f_lib : string option;  (* lib dir name for lib/<dir>/... files *)
  f_mod : string;
  f_aux : bool;  (* reference-only file (test/): counts uses, yields no findings *)
  f_opens : string list list;  (* toplevel opens, latest first *)
  f_aliases : (string * string list) list;  (* module alias -> absolutized target *)
  f_refs : fref list;  (* every longident with a location, for layering *)
  f_defs : def list;
  f_uses : string list list;  (* modules used opaquely: functor args, includes, packs *)
  f_notes : string list;  (* unresolved constructs, deduplicated per file *)
}

type t = {
  files : finfo list;  (* sorted by path *)
  lib_modules : (string * string list) list;  (* lib dir -> sorted module names *)
  def_tbl : (string, def) Hashtbl.t;
  def_ids : string list;  (* sorted *)
  usage_tbl : (string, (string, unit) Hashtbl.t) Hashtbl.t;  (* id -> ref'ing files *)
  module_use_tbl : (string, (string, unit) Hashtbl.t) Hashtbl.t;  (* "W.Mod" -> files *)
  edges : (string, string list) Hashtbl.t;  (* def id -> sorted callee def ids *)
}

(* --- source mapping -------------------------------------------------------- *)

let has_prefix ~prefix s =
  let lp = String.length prefix in
  String.length s >= lp && String.equal (String.sub s 0 lp) prefix

let wrapper_prefix = "Lazyctrl_"

let wrapper_of_lib d = wrapper_prefix ^ d

let lib_of_wrapper m =
  if has_prefix ~prefix:wrapper_prefix m then
    Some (String.sub m (String.length wrapper_prefix)
            (String.length m - String.length wrapper_prefix))
  else None

let module_name_of_path rel =
  Filename.basename rel |> Filename.remove_extension |> String.capitalize_ascii

let lib_of_path rel =
  match String.split_on_char '/' rel with
  | "lib" :: d :: _ :: _ -> Some d
  | _ -> None

(* --- collection ------------------------------------------------------------ *)

type cstate = {
  cs_root : string list;  (* [Lazyctrl_x; Mod] or [Mod] *)
  mutable cs_opens : string list list;
  mutable cs_aliases : (string * string list) list;
  mutable cs_refs : fref list;
  mutable cs_defs : def list;
  mutable cs_uses : string list list;
  mutable cs_notes : string list;
      (* constructs this name-based index cannot fully resolve *)
}

let flatten_longident lid = try Some (Longident.flatten lid) with _ -> None

let loc_line (loc : Location.t) = loc.loc_start.pos_lnum
let loc_col (loc : Location.t) = loc.loc_start.pos_cnum - loc.loc_start.pos_bol

let rec pattern_vars p =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> [ txt ]
  | Ppat_alias (p, { txt; _ }) -> txt :: pattern_vars p
  | Ppat_constraint (p, _) | Ppat_lazy p | Ppat_exception p | Ppat_open (_, p)
    ->
      pattern_vars p
  | Ppat_tuple ps | Ppat_array ps -> List.concat_map pattern_vars ps
  | Ppat_record (fields, _) ->
      List.concat_map (fun (_, p) -> pattern_vars p) fields
  | Ppat_construct (_, Some (_, p)) -> pattern_vars p
  | Ppat_variant (_, Some p) -> pattern_vars p
  | Ppat_or (a, b) -> pattern_vars a @ pattern_vars b
  | _ -> []

(* Module idents appearing anywhere inside a module expression (functor
   applications, packed modules): used opaquely, so Deadcode treats every
   export of the named module as referenced. *)
let rec module_idents me =
  match me.pmod_desc with
  | Pmod_ident { txt; _ } -> (
      match flatten_longident txt with Some p -> [ p ] | None -> [])
  | Pmod_apply (a, b) -> module_idents a @ module_idents b
  | Pmod_constraint (m, _) -> module_idents m
  | Pmod_functor (_, m) -> module_idents m
  | _ -> []

(* Everything referenced inside an expression body.  Local [let open M in]
   scopes are over-approximated to the whole body. *)
type body = {
  b_vrefs : (string list * int * int) list;
  b_trefs : (string list * int * int) list;
  b_opens : (string list * int * int) list;
  b_uses : string list list;
  b_mutates : bool;
}

let collect_body ?(note = fun (_ : string) -> ()) e =
  let vrefs = ref [] in
  let trefs = ref [] in
  let opens = ref [] in
  let uses = ref [] in
  let mutates = ref false in
  (* Local [let module M = ...] bindings, innermost first.  References
     through the bound name are rewritten to the binding's target (the
     functor head for applications, mirroring the structure-level
     [module T = F.Make(X)] alias), so those call edges survive instead
     of being dropped silently. *)
  let aliases = ref [] in
  let rewrite p =
    match p with
    | head :: rest -> (
        match List.assoc_opt head !aliases with
        | Some target -> target @ rest
        | None -> p)
    | [] -> p
  in
  let rec local_module_head me =
    match me.pmod_desc with
    | Pmod_ident { txt; _ } -> flatten_longident txt
    | Pmod_apply (f, _) | Pmod_apply_unit f | Pmod_constraint (f, _) ->
        local_module_head f
    | _ -> None
  in
  let expr (it : Ast_iterator.iterator) e =
    match e.pexp_desc with
    | Pexp_letmodule (name, me, body) ->
        uses := List.map rewrite (module_idents me) @ !uses;
        Ast_iterator.default_iterator.module_expr it me;
        (match (name.txt, local_module_head me) with
        | Some n, Some target ->
            aliases := (n, rewrite target) :: !aliases;
            it.expr it body;
            aliases := List.tl !aliases
        | Some n, None ->
            note
              (Printf.sprintf
                 "let module %s binds a non-ident module expression; \
                  references through %s are tracked as opaque uses only"
                 n n);
            it.expr it body
        | None, _ -> it.expr it body)
    | _ ->
        (match e.pexp_desc with
        | Pexp_ident { txt; _ } -> (
            match flatten_longident txt with
            | Some p ->
                vrefs :=
                  (rewrite p, loc_line e.pexp_loc, loc_col e.pexp_loc)
                  :: !vrefs
            | None -> ())
        | Pexp_open (od, _) -> (
            match od.popen_expr.pmod_desc with
            | Pmod_ident { txt; _ } -> (
                match flatten_longident txt with
                | Some p ->
                    opens :=
                      (rewrite p, loc_line od.popen_loc, loc_col od.popen_loc)
                      :: !opens
                | None -> ())
            | _ -> ())
        | Pexp_setfield _ | Pexp_setinstvar _ -> mutates := true
        | Pexp_pack me -> uses := List.map rewrite (module_idents me) @ !uses
        | _ -> ());
        Ast_iterator.default_iterator.expr it e
  in
  let typ (it : Ast_iterator.iterator) ty =
    (match ty.ptyp_desc with
    | Ptyp_constr ({ txt; _ }, _) -> (
        match flatten_longident txt with
        | Some p ->
            trefs := (p, loc_line ty.ptyp_loc, loc_col ty.ptyp_loc) :: !trefs
        | None -> ())
    | _ -> ());
    Ast_iterator.default_iterator.typ it ty
  in
  let iterator = { Ast_iterator.default_iterator with expr; typ } in
  iterator.expr iterator e;
  {
    b_vrefs = List.rev !vrefs;
    b_trefs = List.rev !trefs;
    b_opens = !opens;
    b_uses = List.rev !uses;
    b_mutates = !mutates;
  }

(* Type references inside type declarations / extensions, for layering. *)
let collect_type_refs push item =
  let typ (it : Ast_iterator.iterator) ty =
    (match ty.ptyp_desc with
    | Ptyp_constr ({ txt; _ }, _) -> (
        match flatten_longident txt with
        | Some p -> push (p, loc_line ty.ptyp_loc, loc_col ty.ptyp_loc)
        | None -> ())
    | _ -> ());
    Ast_iterator.default_iterator.typ it ty
  in
  let iterator = { Ast_iterator.default_iterator with typ } in
  iterator.structure_item iterator item

(* Absolutize a module path against the current scope: explicit wrapper
   prefixes stay, aliases expand, sibling modules gain the wrapper. *)
let absolutize cs ~sibling_exists path =
  match path with
  | [] -> None
  | head :: rest -> (
      match lib_of_wrapper head with
      | Some _ -> Some path
      | None -> (
          match List.assoc_opt head cs.cs_aliases with
          | Some target -> Some (target @ rest)
          | None -> (
              match cs.cs_root with
              | w :: _ when sibling_exists head -> Some (w :: path)
              | _ -> None)))

let mk_fref kind (p, line, col) =
  { r_path = p; r_line = line; r_col = col; r_kind = kind }

let rec walk_items cs ~lib_siblings (modpath : string list) items =
  let encl_of () =
    (* innermost first: root @ modpath, root @ (drop-last modpath), ..., root *)
    let rec all_prefixes path =
      match path with
      | [] -> [ [] ]
      | _ ->
          path
          :: all_prefixes
               (List.filteri (fun i _ -> i < List.length path - 1) path)
    in
    List.map (fun p -> cs.cs_root @ p) (all_prefixes modpath)
  in
  let add_def ~names ~loc ~(body : body option) =
    let line = loc_line loc and col = loc_col loc in
    let span_end =
      (loc.Location.loc_end.pos_lnum,
       loc.Location.loc_end.pos_cnum - loc.Location.loc_end.pos_bol)
    in
    let refs, opens, mutates =
      match body with
      | Some b ->
          ( b.b_vrefs,
            List.map (fun (p, _, _) -> p) b.b_opens @ cs.cs_opens,
            b.b_mutates )
      | None -> ([], cs.cs_opens, false)
    in
    List.iter
      (fun name ->
        let qual = cs.cs_root @ modpath @ [ name ] in
        cs.cs_defs <-
          {
            d_file = "";
            d_id = String.concat "." qual;
            d_qual = qual;
            d_line = line;
            d_col = col;
            d_span = ((line, col), span_end);
            d_refs = refs;
            d_opens = opens;
            d_encl = encl_of ();
            d_mutates = mutates;
          }
          :: cs.cs_defs)
      names
  in
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              let note s = cs.cs_notes <- s :: cs.cs_notes in
              let body = collect_body ~note vb.pvb_expr in
              cs.cs_refs <-
                List.map (mk_fref Value) body.b_vrefs
                @ List.map (mk_fref Type) body.b_trefs
                @ List.map (mk_fref Open) body.b_opens
                @ cs.cs_refs;
              cs.cs_uses <- body.b_uses @ cs.cs_uses;
              let names =
                match pattern_vars vb.pvb_pat with
                | [] -> [ Printf.sprintf "__init_%d" (loc_line vb.pvb_loc) ]
                | ns -> ns
              in
              add_def ~names ~loc:vb.pvb_loc ~body:(Some body))
            vbs
      | Pstr_eval (e, _) ->
          let note s = cs.cs_notes <- s :: cs.cs_notes in
          let body = collect_body ~note e in
          cs.cs_refs <-
            List.map (mk_fref Value) body.b_vrefs
            @ List.map (mk_fref Type) body.b_trefs
            @ List.map (mk_fref Open) body.b_opens
            @ cs.cs_refs;
          cs.cs_uses <- body.b_uses @ cs.cs_uses;
          add_def
            ~names:[ Printf.sprintf "__init_%d" (loc_line item.pstr_loc) ]
            ~loc:item.pstr_loc ~body:(Some body)
      | Pstr_primitive vd ->
          add_def ~names:[ vd.pval_name.txt ] ~loc:vd.pval_loc ~body:None
      | Pstr_open od -> (
          match od.popen_expr.pmod_desc with
          | Pmod_ident { txt; _ } -> (
              match flatten_longident txt with
              | Some p ->
                  cs.cs_opens <- p :: cs.cs_opens;
                  cs.cs_refs <-
                    mk_fref Open
                      (p, loc_line od.popen_loc, loc_col od.popen_loc)
                    :: cs.cs_refs
              | None -> ())
          | _ -> ())
      | Pstr_module mb ->
          let name = Option.value mb.pmb_name.txt ~default:"_" in
          walk_module cs ~lib_siblings modpath name mb.pmb_expr
      | Pstr_recmodule mbs ->
          List.iter
            (fun mb ->
              let name = Option.value mb.pmb_name.txt ~default:"_" in
              walk_module cs ~lib_siblings modpath name mb.pmb_expr)
            mbs
      | Pstr_include incl -> (
          match incl.pincl_mod.pmod_desc with
          | Pmod_structure items -> walk_items cs ~lib_siblings modpath items
          | _ ->
              List.iter
                (fun p ->
                  cs.cs_uses <- p :: cs.cs_uses;
                  cs.cs_refs <-
                    mk_fref Module
                      (p, loc_line incl.pincl_loc, loc_col incl.pincl_loc)
                    :: cs.cs_refs)
                (module_idents incl.pincl_mod))
      | Pstr_type _ | Pstr_typext _ | Pstr_exception _ ->
          collect_type_refs
            (fun r -> cs.cs_refs <- mk_fref Type r :: cs.cs_refs)
            item
      | _ -> ())
    items

and walk_module cs ~lib_siblings modpath name mexpr =
  match mexpr.pmod_desc with
  | Pmod_constraint (m, _) -> walk_module cs ~lib_siblings modpath name m
  | Pmod_ident { txt; _ } -> (
      match flatten_longident txt with
      | Some p ->
          let sibling_exists n =
            List.exists (String.equal n) (Lazy.force lib_siblings)
          in
          let target =
            Option.value (absolutize cs ~sibling_exists p) ~default:p
          in
          cs.cs_aliases <- (name, target) :: cs.cs_aliases;
          cs.cs_refs <-
            mk_fref Module (p, loc_line mexpr.pmod_loc, loc_col mexpr.pmod_loc)
            :: cs.cs_refs
      | None -> ())
  | Pmod_structure items ->
      let saved_opens = cs.cs_opens and saved_aliases = cs.cs_aliases in
      walk_items cs ~lib_siblings (modpath @ [ name ]) items;
      cs.cs_opens <- saved_opens;
      cs.cs_aliases <- saved_aliases
  | Pmod_functor (_, body) ->
      walk_module cs ~lib_siblings modpath name body
  | Pmod_apply _ | Pmod_apply_unit _ ->
      (* every named module stays opaquely used (deadcode conservative);
         additionally alias the binding to the functor's own path, so
         [module T = F.Make(X)] lets [T.op] resolve to [F.Make.op] defs
         and the functor body's call edges survive the application *)
      List.iter
        (fun p ->
          cs.cs_uses <- p :: cs.cs_uses;
          cs.cs_refs <-
            mk_fref Module (p, loc_line mexpr.pmod_loc, loc_col mexpr.pmod_loc)
            :: cs.cs_refs)
        (module_idents mexpr);
      let rec functor_head me =
        match me.pmod_desc with
        | Pmod_apply (f, _) | Pmod_apply_unit f | Pmod_constraint (f, _) ->
            functor_head f
        | Pmod_ident { txt; _ } -> flatten_longident txt
        | _ -> None
      in
      (match functor_head mexpr with
      | Some p ->
          let sibling_exists n =
            List.exists (String.equal n) (Lazy.force lib_siblings)
          in
          let target =
            Option.value (absolutize cs ~sibling_exists p) ~default:p
          in
          cs.cs_aliases <- (name, target) :: cs.cs_aliases
      | None ->
          cs.cs_notes <-
            (Printf.sprintf
               "functor application bound to %s has a non-ident head; \
                references through %s are tracked as opaque uses only"
               name name)
            :: cs.cs_notes)
  | Pmod_unpack e ->
      (* first-class module: the packed value's identity is dynamic, but
         the expression's own references still count (deadcode stays
         conservative), and the binding is noted as unresolved *)
      let b =
        collect_body ~note:(fun s -> cs.cs_notes <- s :: cs.cs_notes) e
      in
      List.iter
        (fun r -> cs.cs_refs <- mk_fref Value r :: cs.cs_refs)
        b.b_vrefs;
      cs.cs_uses <- b.b_uses @ cs.cs_uses;
      cs.cs_notes <-
        (Printf.sprintf
           "first-class module unpacked into %s; its contents cannot be \
            resolved by name, references through %s are dropped"
           name name)
        :: cs.cs_notes
  | Pmod_extension _ ->
      cs.cs_notes <-
        (Printf.sprintf
           "extension node bound to module %s is not resolved; references \
            through %s are dropped"
           name name)
        :: cs.cs_notes

let collect_file ~aux ~lib_modules (file, structure) =
  let lib = lib_of_path file in
  let modname = module_name_of_path file in
  let root =
    match lib with Some d -> [ wrapper_of_lib d; modname ] | None -> [ modname ]
  in
  let cs =
    {
      cs_root = root;
      cs_opens = [];
      cs_aliases = [];
      cs_refs = [];
      cs_defs = [];
      cs_uses = [];
      cs_notes = [];
    }
  in
  let lib_siblings =
    lazy
      (match lib with
      | Some d -> ( match List.assoc_opt d lib_modules with
                    | Some ms -> ms
                    | None -> [])
      | None -> [])
  in
  walk_items cs ~lib_siblings [] structure;
  {
    f_file = file;
    f_lib = lib;
    f_mod = modname;
    f_aux = aux;
    f_opens = cs.cs_opens;
    f_aliases = cs.cs_aliases;
    f_refs = List.rev cs.cs_refs;
    f_defs = List.rev_map (fun d -> { d with d_file = file }) cs.cs_defs;
    f_uses = List.rev cs.cs_uses;
    f_notes = List.sort_uniq String.compare cs.cs_notes;
  }

(* --- resolution ------------------------------------------------------------ *)

(* Global alias map: (Wrapper.Mod.Alias) -> absolutized target, so a
   reference through a re-exported alias (e.g. Proto.Message.x where
   [module Message = Lazyctrl_openflow.Message]) credits the real owner. *)
let global_aliases files =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun fi ->
      match fi.f_lib with
      | None -> ()
      | Some d ->
          List.iter
            (fun (name, target) ->
              match target with
              | head :: _ when Option.is_some (lib_of_wrapper head) ->
                  let key =
                    String.concat "." [ wrapper_of_lib d; fi.f_mod; name ]
                  in
                  if not (Hashtbl.mem tbl key) then Hashtbl.add tbl key target
              | _ -> ())
            fi.f_aliases)
    files;
  tbl

let rewrite_alias aliases path =
  match path with
  | w :: m :: a :: rest -> (
      match Hashtbl.find_opt aliases (String.concat "." [ w; m; a ]) with
      | Some target -> target @ rest
      | None -> path)
  | _ -> path

(* Candidate absolute interpretations of [raw], best first. *)
let candidates_in t ~aliases ~file_aliases ~opens ~encl raw =
  let lib_has_module d m =
    match List.assoc_opt d t.lib_modules with
    | Some ms -> List.exists (String.equal m) ms
    | None -> false
  in
  let absolutize_open o =
    match o with
    | head :: _ when Option.is_some (lib_of_wrapper head) -> Some o
    | head :: rest -> (
        match List.assoc_opt head file_aliases with
        | Some (th :: _ as target) when Option.is_some (lib_of_wrapper th) ->
            Some (target @ rest)
        | _ -> (
            (* sibling module of the enclosing library *)
            let via_encl =
              match encl with
              | (w :: _) :: _ -> (
                  match lib_of_wrapper w with
                  | Some d when lib_has_module d head -> Some (w :: o)
                  | _ -> None)
              | _ -> None
            in
            match via_encl with
            | Some _ -> via_encl
            | None ->
                (* the open's own head may arrive through another,
                   wrapper-level open: [open Lazyctrl_sim] ... [Time.(...)] *)
                List.find_map
                  (fun o2 ->
                    match o2 with
                    | [ w ] -> (
                        match lib_of_wrapper w with
                        | Some d when lib_has_module d head -> Some (w :: o)
                        | _ -> None)
                    | _ -> None)
                  opens))
    | [] -> None
  in
  (* a bare head naming a sibling module of the enclosing library — the
     dominant intra-library reference form under dune wrapping *)
  let sibling path =
    match (path, encl) with
    | head :: _, (w :: _) :: _ -> (
        match lib_of_wrapper w with
        | Some d when lib_has_module d head -> [ w :: path ]
        | _ -> [])
    | _ -> []
  in
  let gen path =
    match path with
    | [] -> []
    | head :: _ when Option.is_some (lib_of_wrapper head) -> [ path ]
    | _ ->
        List.filter_map
          (fun o -> Option.map (fun ao -> ao @ path) (absolutize_open o))
          opens
        @ List.map (fun e -> e @ path) encl
        @ sibling path
  in
  let expanded =
    match raw with
    | head :: rest -> (
        match List.assoc_opt head file_aliases with
        | Some target -> [ target @ rest ]
        | None -> [])
    | [] -> []
  in
  List.concat_map gen (raw :: expanded)
  |> List.map (rewrite_alias aliases)

(* A candidate is plausible when its head two segments name a module we
   actually scanned; deadcode marks all plausible targets as used. *)
let plausible t path =
  match path with
  | w :: m :: _ -> (
      match lib_of_wrapper w with
      | Some d -> (
          match List.assoc_opt d t.lib_modules with
          | Some ms -> List.exists (String.equal m) ms
          | None -> false)
      | None -> false)
  | _ -> false

(* --- build ----------------------------------------------------------------- *)

let build ~files ~aux =
  let files = List.sort (fun (a, _) (b, _) -> String.compare a b) files in
  let aux = List.sort (fun (a, _) (b, _) -> String.compare a b) aux in
  (* Two passes: module inventory first, so sibling resolution works no
     matter the parse order. *)
  let lib_modules =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (file, _) ->
        match lib_of_path file with
        | Some d ->
            let prev =
              match Hashtbl.find_opt tbl d with Some l -> l | None -> []
            in
            Hashtbl.replace tbl d (module_name_of_path file :: prev)
        | None -> ())
      files;
    let dirs =
      List.filter_map (fun (file, _) -> lib_of_path file) files
      |> List.sort_uniq String.compare
    in
    List.map
      (fun d ->
        let ms =
          match Hashtbl.find_opt tbl d with Some l -> l | None -> []
        in
        (d, List.sort_uniq String.compare ms))
      dirs
  in
  let finfos =
    List.map (collect_file ~aux:false ~lib_modules) files
    @ List.map (collect_file ~aux:true ~lib_modules) aux
  in
  let def_tbl = Hashtbl.create 512 in
  let def_ids = ref [] in
  List.iter
    (fun fi ->
      if not fi.f_aux then
        List.iter
          (fun d ->
            if not (Hashtbl.mem def_tbl d.d_id) then begin
              Hashtbl.add def_tbl d.d_id d;
              def_ids := d.d_id :: !def_ids
            end)
          fi.f_defs)
    finfos;
  let t =
    {
      files = finfos;
      lib_modules;
      def_tbl;
      def_ids = List.sort String.compare !def_ids;
      usage_tbl = Hashtbl.create 1024;
      module_use_tbl = Hashtbl.create 64;
      edges = Hashtbl.create 512;
    }
  in
  let aliases = global_aliases finfos in
  let mark tbl key file =
    let set =
      match Hashtbl.find_opt tbl key with
      | Some s -> s
      | None ->
          let s = Hashtbl.create 4 in
          Hashtbl.add tbl key s;
          s
    in
    Hashtbl.replace set file ()
  in
  List.iter
    (fun fi ->
      (* opaque module uses *)
      List.iter
        (fun use ->
          let cands =
            candidates_in t ~aliases ~file_aliases:fi.f_aliases
              ~opens:fi.f_opens
              ~encl:
                [ (match fi.f_lib with
                  | Some d -> [ wrapper_of_lib d ]
                  | None -> [ fi.f_mod ]) ]
              use
          in
          List.iter
            (fun c ->
              match c with
              | w :: m :: _ when plausible t [ w; m ] ->
                  mark t.module_use_tbl (String.concat "." [ w; m ]) fi.f_file
              | _ -> ())
            cands)
        fi.f_uses;
      (* value references: usage marking (all plausible candidates) and
         call edges (first matching def) *)
      List.iter
        (fun d ->
          let callees = ref [] in
          List.iter
            (fun (raw, _, _) ->
              let cands =
                candidates_in t ~aliases ~file_aliases:fi.f_aliases
                  ~opens:d.d_opens ~encl:d.d_encl raw
              in
              List.iter
                (fun c ->
                  if plausible t c then
                    mark t.usage_tbl (String.concat "." c) fi.f_file)
                cands;
              let rec first_def = function
                | [] -> None
                | c :: rest ->
                    let id = String.concat "." c in
                    if Hashtbl.mem def_tbl id then Some id else first_def rest
              in
              match first_def cands with
              | Some id when not (String.equal id d.d_id) ->
                  callees := id :: !callees
              | _ -> ())
            d.d_refs;
          if not fi.f_aux then
            Hashtbl.replace t.edges d.d_id
              (List.sort_uniq String.compare !callees))
        fi.f_defs)
    finfos;
  t

(* --- queries --------------------------------------------------------------- *)

let def_ids t = t.def_ids
let find_def t id = Hashtbl.find_opt t.def_tbl id

let callees t id =
  match Hashtbl.find_opt t.edges id with Some l -> l | None -> []

let files t = t.files
let modules_of_lib t d =
  match List.assoc_opt d t.lib_modules with Some ms -> ms | None -> []

let defs_of_file t file =
  List.concat_map
    (fun fi -> if String.equal fi.f_file file then fi.f_defs else [])
    t.files

(* Innermost def whose source span contains (line, col). *)
let def_spanning t ~file ~line ~col =
  let contains ((sl, sc), (el, ec)) =
    (line > sl || (line = sl && col >= sc))
    && (line < el || (line = el && col <= ec))
  in
  let span_size ((sl, _), (el, _)) = el - sl in
  List.fold_left
    (fun best d ->
      if contains d.d_span then
        match best with
        | Some b when span_size b.d_span <= span_size d.d_span -> best
        | _ -> Some d
      else best)
    None (defs_of_file t file)

(* Files (other than the definition site) that reference the given
   qualified id, either precisely or through an opaque use of its module. *)
let referencing_files t ~qual ~owner_file =
  let id = String.concat "." qual in
  let out = ref [] in
  let add_from tbl key =
    match Hashtbl.find_opt tbl key with
    | None -> ()
    | Some set ->
        List.iter
          (fun fi ->
            if
              Hashtbl.mem set fi.f_file
              && not (String.equal fi.f_file owner_file)
            then out := fi.f_file :: !out)
          t.files
  in
  add_from t.usage_tbl id;
  (match qual with
  | w :: m :: _ :: _ -> add_from t.module_use_tbl (String.concat "." [ w; m ])
  | _ -> ());
  List.sort_uniq String.compare !out
