(** Whole-program protocol invariants (P00x): the wheel failure-inference
    table stays total and consistent with the paper, and every [Proto]
    message constructor is matched explicitly in both handlers. *)

val check_failover : file:string -> Parsetree.structure -> Finding.t list

(** [check_coverage ~proto ~handlers ()] checks that every constructor
    of [proto]'s variant [type_name] (default ["t"]) appears in a
    pattern in each handler file — wildcards do not count. *)
val check_coverage :
  ?type_name:string ->
  proto:string * Parsetree.structure ->
  handlers:(string * Parsetree.structure) list ->
  unit ->
  Finding.t list
