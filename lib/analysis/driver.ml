(* Lint driver: walks the source tree, parses every file ONCE into a
   shared cache, then feeds the same Parsetrees to all consumers — the
   per-file rules (with a token-level fallback for unparsable files),
   the whole-program protocol checks, and the call-graph passes (effect
   inference, layering, interface hygiene) — and filters the result
   through the allowlist.

   Family scoping: [families] restricts which rule families run (the
   CLI's [--rules D,E,...] flag).  Per-file AST scanning still runs
   whenever the E family is selected, because effect inference seeds
   from the D-rule hazard sites; its findings are then filtered to the
   selected families.  Allowlist entries whose family did not run are
   exempt from staleness (they never had the chance to match). *)

type report = {
  findings : Finding.t list;  (* gating: unallowlisted + malformed allowlist *)
  suppressed : Finding.t list;  (* matched by an allowlist entry *)
  stale : Finding.t list;  (* allowlist entries that matched nothing *)
  files_scanned : int;
  parse_failures : (string * string) list;  (* file, parser message — once *)
  callgraph_notes : (string * string) list;
      (* (file, note): constructs the call-graph index could not fully
         resolve — the honest blind spots of the whole-program passes *)
}

(* Directories scanned for findings.  [test/] is scanned reference-only:
   its uses keep library exports alive for X001, but fixtures there
   exercise the rules and may use structural equality freely, so it
   never yields findings. *)
let scan_dirs = [ "lib"; "bin"; "bench"; "examples" ]
let aux_dirs = [ "test" ]

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let content = really_input_string ic n in
  close_in ic;
  content

let is_dir path = try Sys.is_directory path with Sys_error _ -> false

(* Repo-relative files with [suffix] under [rel], in sorted order
   (Sys.readdir order is platform-dependent). *)
let rec files_under ~root ~suffix rel acc =
  let abs = Filename.concat root rel in
  if not (is_dir abs) then acc
  else begin
    let names = Sys.readdir abs in
    Array.sort String.compare names;
    Array.fold_left
      (fun acc name ->
        let rel' = rel ^ "/" ^ name in
        if is_dir (Filename.concat abs name) then
          files_under ~root ~suffix rel' acc
        else if Rules.has_suffix ~suffix name then rel' :: acc
        else acc)
      acc names
  end

(* Per-file rules: Parsetree pass, or the token fallback when the file
   does not parse.  Returns the findings and the parse error, if any. *)
let lint_source ~file ~src =
  match Parse_ml.parse ~file ~src with
  | Ok structure -> (Ast_rules.scan ~file structure, None)
  | Error msg -> (Token_rules.scan ~file ~src, Some msg)

(* --- parse cache ----------------------------------------------------------- *)

type cached = {
  c_file : string;
  c_src : string;
  c_parse : (Parsetree.structure, string) result;
}

let parse_cached ~root rel =
  let src = read_file (Filename.concat root rel) in
  { c_file = rel; c_src = src; c_parse = Parse_ml.parse ~file:rel ~src }

let cache_find cache rel =
  List.find_opt (fun c -> String.equal c.c_file rel) cache

(* --- whole-program protocol checks ---------------------------------------- *)

let proto_file = "lib/switch/proto.ml"
let failover_file = "lib/controller/failover.ml"
let handler_files = [ "lib/switch/edge_switch.ml"; "lib/controller/controller.ml" ]

(* Structure for [rel] out of the shared cache: the protocol checks are
   consumers of the same single parse as everything else. *)
let structure_of cache rel =
  match cache_find cache rel with
  | None -> Error (Printf.sprintf "%s does not exist" rel)
  | Some { c_parse = Ok s; _ } -> Ok s
  | Some { c_parse = Error _; _ } ->
      (* the parse failure itself is already reported once, in
         [parse_failures]; here only the consequence is stated *)
      Error (Printf.sprintf "%s does not parse" rel)

let protocol_findings_cached cache =
  let fail ~rule msg =
    [ Finding.make ~file:"." ~line:1 ~rule ~severity:Finding.Error msg ]
  in
  let failover =
    match structure_of cache failover_file with
    | Ok s -> Proto_rules.check_failover ~file:failover_file s
    | Error msg ->
        fail ~rule:Rules.p_failover_table
          (Printf.sprintf "cannot verify the failure-inference table: %s" msg)
  in
  let coverage =
    match structure_of cache proto_file with
    | Error msg ->
        fail ~rule:Rules.p_proto_coverage
          (Printf.sprintf "cannot verify message coverage: %s" msg)
    | Ok proto_structure ->
        let handlers, errors =
          List.fold_left
            (fun (hs, errs) rel ->
              match structure_of cache rel with
              | Ok s -> ((rel, s) :: hs, errs)
              | Error msg ->
                  ( hs,
                    fail ~rule:Rules.p_proto_coverage
                      (Printf.sprintf "cannot verify message coverage: %s" msg)
                    @ errs ))
            ([], []) handler_files
        in
        errors
        @ Proto_rules.check_coverage
            ~proto:(proto_file, proto_structure)
            ~handlers:(List.rev handlers) ()
  in
  failover @ coverage

(* Convenience for tests: parse the protocol files under [root] and run
   the same checks the @lint alias runs. *)
let protocol_findings ~root =
  let rels = proto_file :: failover_file :: handler_files in
  let cache =
    List.filter_map
      (fun rel ->
        if Sys.file_exists (Filename.concat root rel) then
          Some (parse_cached ~root rel)
        else None)
      rels
  in
  protocol_findings_cached cache

(* --- entry point ----------------------------------------------------------- *)

let run ?(families = Rules.families) ~root ~allow_path () =
  let sel f = List.exists (String.equal f) families in
  let selected (finding : Finding.t) =
    String.equal finding.rule "allowlist"
    || sel (Rules.family_of finding.rule)
  in
  let allow, allow_findings = Allowlist.load allow_path in
  let files =
    List.concat_map (fun d -> files_under ~root ~suffix:".ml" d []) scan_dirs
    |> List.sort String.compare
  in
  let cache = List.map (parse_cached ~root) files in
  let parse_failures =
    List.filter_map
      (fun c ->
        match c.c_parse with
        | Ok _ -> None
        | Error msg -> Some (c.c_file, msg))
      cache
  in
  (* Per-file pass: AST findings are computed whenever D/A or E runs (E
     seeds from the D hazard sites) and reported under D/A. *)
  let need_ast = sel "D" || sel "A" || sel "E" in
  let ast_findings =
    if not need_ast then []
    else
      List.filter_map
        (fun c ->
          match c.c_parse with
          | Ok s -> Some (c.c_file, Ast_rules.scan ~file:c.c_file s)
          | Error _ -> None)
        cache
  in
  let token_findings =
    if not (sel "D" || sel "A") then []
    else
      List.concat_map
        (fun c ->
          match c.c_parse with
          | Ok _ -> []
          | Error _ -> Token_rules.scan ~file:c.c_file ~src:c.c_src)
        cache
  in
  let per_file = List.concat_map snd ast_findings @ token_findings in
  let proto = if sel "P" then protocol_findings_cached cache else [] in
  (* Whole-program passes over the shared call graph. *)
  let cg_notes = ref [] in
  let whole_program =
    if not (sel "E" || sel "L" || sel "X" || sel "S" || sel "H") then []
    else begin
      let parsed =
        List.filter_map
          (fun c ->
            match c.c_parse with Ok s -> Some (c.c_file, s) | Error _ -> None)
          cache
      in
      let aux =
        List.concat_map
          (fun d -> files_under ~root ~suffix:".ml" d [])
          aux_dirs
        |> List.sort String.compare
        |> List.filter_map (fun rel ->
               match (parse_cached ~root rel).c_parse with
               | Ok s -> Some (rel, s)
               | Error _ -> None (* reference-only files fail silently *))
      in
      let cg = Callgraph.build ~files:parsed ~aux in
      cg_notes :=
        List.concat_map
          (fun (fi : Callgraph.finfo) ->
            if fi.Callgraph.f_aux then []
            else
              List.map
                (fun n -> (fi.Callgraph.f_file, n))
                fi.Callgraph.f_notes)
          (Callgraph.files cg);
      let e =
        if sel "E" then Effects.findings (Effects.infer cg ~ast_findings)
        else []
      in
      let l = if sel "L" then Layering.check cg else [] in
      let x =
        if sel "X" then begin
          let mli_files =
            List.concat_map
              (fun d -> files_under ~root ~suffix:".mli" d [])
              scan_dirs
            |> List.sort String.compare
          in
          let intfs =
            List.filter_map
              (fun rel ->
                let src = read_file (Filename.concat root rel) in
                match Parse_ml.parse_intf ~file:rel ~src with
                | Ok s -> Some (rel, s)
                | Error _ -> None (* the .ml parse failure already reported *))
              mli_files
          in
          Deadcode.dead_exports cg ~intfs
          @ Deadcode.missing_mli ~ml_files:files ~mli_files
        end
        else []
      in
      let s =
        if sel "S" then
          Shard.check ~spec:Ownership.default ~cg ~structures:parsed ()
        else []
      in
      let h =
        if sel "H" then
          Hotpath.check ~spec:Hotspec.default ~cg ~structures:parsed ()
        else []
      in
      e @ l @ x @ s @ h
    end
  in
  let all =
    List.filter selected (per_file @ proto @ whole_program)
  in
  let suppressed, gating =
    List.partition
      (fun (f : Finding.t) -> Allowlist.permits allow ~file:f.file ~rule:f.rule)
      all
  in
  {
    findings = List.sort Finding.compare (allow_findings @ gating);
    suppressed = List.sort Finding.compare suppressed;
    stale =
      Allowlist.unused ~relevant:(fun rule -> sel (Rules.family_of rule)) allow;
    files_scanned = List.length files;
    parse_failures;
    callgraph_notes = !cg_notes;
  }

let clean report = List.is_empty report.findings

let report_to_json report =
  let buf = Buffer.create 1024 in
  let emit_list name findings tail =
    Buffer.add_string buf (Printf.sprintf "\"%s\": [" name);
    List.iteri
      (fun i f ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf "\n    ";
        Buffer.add_string buf (Finding.to_json f))
      findings;
    Buffer.add_string buf "\n  ]";
    Buffer.add_string buf tail
  in
  Buffer.add_string buf "{\n  ";
  emit_list "findings" report.findings ",\n  ";
  emit_list "suppressed" report.suppressed ",\n  ";
  emit_list "stale_allowlist" report.stale ",\n  ";
  Buffer.add_string buf "\"callgraph_notes\": [";
  List.iteri
    (fun i (file, note) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "\n    {\"file\": \"%s\", \"note\": \"%s\"}"
           (Finding.json_escape file) (Finding.json_escape note)))
    report.callgraph_notes;
  Buffer.add_string buf "\n  ],\n  \"parse_failures\": [";
  List.iteri
    (fun i (file, _) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "\n    \"%s\"" (Finding.json_escape file)))
    report.parse_failures;
  Buffer.add_string buf
    (Printf.sprintf "\n  ],\n  \"files_scanned\": %d,\n  \"clean\": %b\n}"
       report.files_scanned (clean report));
  Buffer.contents buf

(* --- ownership report ------------------------------------------------------- *)

(* The sharding PR's synchronization worklist (`make lint-ownership`):
   every scanned module's ownership class next to its declared mutable
   state, plus the spec's entry points.  A module with mutable state and
   no class is listed too — that is exactly the gap the sharding PR must
   close before it can move the module onto a domain. *)
let ownership_report_json ~root () =
  let spec = Ownership.default in
  let files =
    List.concat_map (fun d -> files_under ~root ~suffix:".ml" d []) scan_dirs
    |> List.sort String.compare
  in
  let buf = Buffer.create 4096 in
  let str s = Printf.sprintf "\"%s\"" (Finding.json_escape s) in
  Buffer.add_string buf "{\n  \"entries\": [";
  List.iteri
    (fun i (e : Ownership.entry) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "\n    {\"phase\": %s, \"shard\": %s, \"id\": %s}"
           (str (Ownership.phase_name e.Ownership.e_phase))
           (str e.Ownership.e_shard) (str e.Ownership.e_id)))
    spec.Ownership.entries;
  Buffer.add_string buf "\n  ],\n  \"modules\": [";
  let first = ref true in
  List.iter
    (fun rel ->
      let c = parse_cached ~root rel in
      let declared =
        match c.c_parse with
        | Ok s -> Mutinv.declared (Mutinv.scan ~file:rel s)
        | Error _ -> []
      in
      let cls = Ownership.class_of spec ~file:rel in
      (* keep the report focused: skip unclassified modules that hold no
         mutable state (nothing to own) *)
      if Option.is_some cls || not (List.is_empty declared) then begin
        if not !first then Buffer.add_char buf ',';
        first := false;
        let cls_json, why_json =
          match cls with
          | None -> ("null", "null")
          | Some (c, why) ->
              ( str (Ownership.class_name c),
                match why with None -> "null" | Some w -> str w )
        in
        Buffer.add_string buf
          (Printf.sprintf "\n    {\"file\": %s, \"class\": %s, \"why\": %s,\
                           \ \"mutable\": ["
             (str rel) cls_json why_json);
        List.iteri
          (fun i (m : Mutinv.item) ->
            if i > 0 then Buffer.add_string buf ", ";
            Buffer.add_string buf
              (Printf.sprintf
                 "{\"line\": %d, \"kind\": %s, \"name\": %s}" m.Mutinv.m_line
                 (str (Mutinv.kind_name m.Mutinv.m_kind))
                 (str m.Mutinv.m_name)))
          declared;
        Buffer.add_string buf "]}"
      end)
    files;
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf

(* --- hotpath report --------------------------------------------------------- *)

(* The `make lint-hotpath` gate (_build/hotpath-report.json): the static
   H00x verdict per probe next to its committed budget and the measured
   minor-words-per-op, with the cross-validation findings (H004/H005)
   filtered through the same allowlist as everything else.  [measured]
   comes from a lib/perf report produced by bench/main.exe's hotpath
   targets; reading that file is the CLI's job. *)
type hotpath_report = {
  hp_probes : Hotpath.probe_status list;
  hp_rows : Hotbudget.row list;
  hp_findings : Finding.t list;  (* gating: unallowlisted static + dynamic *)
  hp_suppressed : Finding.t list;
}

let hotpath_check ~root ~allow_path ~budget_path ~measured () =
  let files =
    List.concat_map (fun d -> files_under ~root ~suffix:".ml" d []) scan_dirs
    |> List.sort String.compare
  in
  let cache = List.map (parse_cached ~root) files in
  let parsed =
    List.filter_map
      (fun c ->
        match c.c_parse with Ok s -> Some (c.c_file, s) | Error _ -> None)
      cache
  in
  let aux =
    List.concat_map (fun d -> files_under ~root ~suffix:".ml" d []) aux_dirs
    |> List.sort String.compare
    |> List.filter_map (fun rel ->
           match (parse_cached ~root rel).c_parse with
           | Ok s -> Some (rel, s)
           | Error _ -> None)
  in
  let cg = Callgraph.build ~files:parsed ~aux in
  let analysis = Hotpath.analyze ~spec:Hotspec.default ~cg ~structures:parsed () in
  let budget, budget_findings =
    let abs = Filename.concat root budget_path in
    if Sys.file_exists abs then begin
      let entries, errs = Hotbudget.parse (read_file abs) in
      ( entries,
        List.map
          (fun msg ->
            Finding.make ~file:budget_path ~line:1 ~rule:Rules.h_alloc_budget
              ~severity:Finding.Error msg)
          errs )
    end
    else
      ( [],
        [
          Finding.make ~file:budget_path ~line:1 ~rule:Rules.h_alloc_budget
            ~severity:Finding.Error
            (Printf.sprintf
               "budget file '%s' is missing; every declared probe needs a \
                committed minor-words-per-op budget"
               budget_path);
        ] )
  in
  let rows, dynamic =
    Hotbudget.evaluate ~budget_file:budget_path ~probes:analysis.Hotpath.a_probes
      ~budget ~measured
  in
  (* Malformed-allowlist findings gate in the main lint run, not here. *)
  let allow, _ = Allowlist.load allow_path in
  let suppressed, gating =
    List.partition
      (fun (f : Finding.t) -> Allowlist.permits allow ~file:f.file ~rule:f.rule)
      (analysis.Hotpath.a_findings @ budget_findings @ dynamic)
  in
  {
    hp_probes = analysis.Hotpath.a_probes;
    hp_rows = rows;
    hp_findings = List.sort Finding.compare gating;
    hp_suppressed = List.sort Finding.compare suppressed;
  }

let hotpath_clean r = List.is_empty r.hp_findings

let hotpath_report_json r =
  let buf = Buffer.create 4096 in
  let str s = Printf.sprintf "\"%s\"" (Finding.json_escape s) in
  let opt_num = function
    | None -> "null"
    | Some v -> Printf.sprintf "%.4f" v
  in
  Buffer.add_string buf "{\n  \"probes\": [";
  List.iteri
    (fun i (row : Hotbudget.row) ->
      if i > 0 then Buffer.add_char buf ',';
      let entries =
        match
          List.find_opt
            (fun (p : Hotpath.probe_status) ->
              String.equal p.Hotpath.p_probe row.Hotbudget.r_probe)
            r.hp_probes
        with
        | Some p -> p.Hotpath.p_entries
        | None -> []
      in
      Buffer.add_string buf
        (Printf.sprintf
           "\n    {\"probe\": %s, \"entries\": [%s], \"static_alloc_sites\": \
            %d, \"budget_words_per_op\": %s, \"measured_words_per_op\": %s, \
            \"verdict\": %s}"
           (str row.Hotbudget.r_probe)
           (String.concat ", " (List.map str entries))
           row.Hotbudget.r_static_sites
           (opt_num row.Hotbudget.r_budget)
           (opt_num row.Hotbudget.r_measured)
           (str (Hotbudget.verdict_name row.Hotbudget.r_verdict))))
    r.hp_rows;
  let emit_list name findings tail =
    Buffer.add_string buf (Printf.sprintf "\"%s\": [" name);
    List.iteri
      (fun i f ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf "\n    ";
        Buffer.add_string buf (Finding.to_json f))
      findings;
    Buffer.add_string buf "\n  ]";
    Buffer.add_string buf tail
  in
  Buffer.add_string buf "\n  ],\n  ";
  emit_list "findings" r.hp_findings ",\n  ";
  emit_list "suppressed" r.hp_suppressed "";
  Buffer.add_string buf
    (Printf.sprintf ",\n  \"clean\": %b\n}\n" (hotpath_clean r));
  Buffer.contents buf
