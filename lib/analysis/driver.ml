(* Lint driver: walks the source tree, runs the Parsetree rules (with a
   token-level fallback for unparsable files) and the whole-program
   protocol checks, then filters the result through the allowlist. *)

type report = {
  findings : Finding.t list;  (* gating: unallowlisted + malformed allowlist *)
  suppressed : Finding.t list;  (* matched by an allowlist entry *)
  stale : Finding.t list;  (* allowlist entries that matched nothing *)
  files_scanned : int;
  parse_failures : (string * string) list;  (* file, parser message *)
}

(* Directories scanned for per-file rules.  [test/] is deliberately out of
   scope: fixtures there exercise the rules and tests may use structural
   equality on concrete types freely. *)
let scan_dirs = [ "lib"; "bin"; "bench"; "examples" ]

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let content = really_input_string ic n in
  close_in ic;
  content

let is_dir path = try Sys.is_directory path with Sys_error _ -> false

(* Repo-relative .ml paths under [rel], in sorted order (Sys.readdir order
   is platform-dependent). *)
let rec ml_files_under ~root rel acc =
  let abs = Filename.concat root rel in
  if not (is_dir abs) then acc
  else begin
    let names = Sys.readdir abs in
    Array.sort String.compare names;
    Array.fold_left
      (fun acc name ->
        let rel' = rel ^ "/" ^ name in
        if is_dir (Filename.concat abs name) then ml_files_under ~root rel' acc
        else if Rules.has_suffix ~suffix:".ml" name then rel' :: acc
        else acc)
      acc names
  end

(* Per-file rules: Parsetree pass, or the token fallback when the file
   does not parse.  Returns the findings and the parse error, if any. *)
let lint_source ~file ~src =
  match Parse_ml.parse ~file ~src with
  | Ok structure -> (Ast_rules.scan ~file structure, None)
  | Error msg -> (Token_rules.scan ~file ~src, Some msg)

(* --- whole-program protocol checks ---------------------------------------- *)

let proto_file = "lib/switch/proto.ml"
let failover_file = "lib/controller/failover.ml"
let handler_files = [ "lib/switch/edge_switch.ml"; "lib/controller/controller.ml" ]

let parse_rel ~root rel =
  let abs = Filename.concat root rel in
  if not (Sys.file_exists abs) then
    Error (Printf.sprintf "%s does not exist" rel)
  else
    match Parse_ml.parse ~file:rel ~src:(read_file abs) with
    | Ok s -> Ok s
    | Error msg -> Error (Printf.sprintf "%s does not parse: %s" rel msg)

let protocol_findings ~root =
  let fail ~rule msg =
    [ Finding.make ~file:"." ~line:1 ~rule ~severity:Finding.Error msg ]
  in
  let failover =
    match parse_rel ~root failover_file with
    | Ok s -> Proto_rules.check_failover ~file:failover_file s
    | Error msg ->
        fail ~rule:Rules.p_failover_table
          (Printf.sprintf "cannot verify the failure-inference table: %s" msg)
  in
  let coverage =
    match parse_rel ~root proto_file with
    | Error msg ->
        fail ~rule:Rules.p_proto_coverage
          (Printf.sprintf "cannot verify message coverage: %s" msg)
    | Ok proto_structure ->
        let handlers, errors =
          List.fold_left
            (fun (hs, errs) rel ->
              match parse_rel ~root rel with
              | Ok s -> ((rel, s) :: hs, errs)
              | Error msg ->
                  ( hs,
                    fail ~rule:Rules.p_proto_coverage
                      (Printf.sprintf "cannot verify message coverage: %s" msg)
                    @ errs ))
            ([], []) handler_files
        in
        errors
        @ Proto_rules.check_coverage
            ~proto:(proto_file, proto_structure)
            ~handlers:(List.rev handlers) ()
  in
  failover @ coverage

(* --- entry point ----------------------------------------------------------- *)

let run ~root ~allow_path =
  let allow, allow_findings = Allowlist.load allow_path in
  let files =
    List.concat_map (fun d -> ml_files_under ~root d []) scan_dirs
    |> List.sort String.compare
  in
  let parse_failures = ref [] in
  let per_file =
    List.concat_map
      (fun rel ->
        let src = read_file (Filename.concat root rel) in
        let findings, err = lint_source ~file:rel ~src in
        (match err with
        | Some msg -> parse_failures := (rel, msg) :: !parse_failures
        | None -> ());
        findings)
      files
  in
  let all = per_file @ protocol_findings ~root in
  let suppressed, gating =
    List.partition
      (fun (f : Finding.t) -> Allowlist.permits allow ~file:f.file ~rule:f.rule)
      all
  in
  {
    findings = List.sort Finding.compare (allow_findings @ gating);
    suppressed = List.sort Finding.compare suppressed;
    stale = Allowlist.unused allow;
    files_scanned = List.length files;
    parse_failures = List.rev !parse_failures;
  }

let clean report = List.is_empty report.findings

let report_to_json report =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"findings\": [";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "\n    ";
      Buffer.add_string buf (Finding.to_json f))
    report.findings;
  Buffer.add_string buf "\n  ],\n  \"suppressed\": [";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "\n    ";
      Buffer.add_string buf (Finding.to_json f))
    report.suppressed;
  Buffer.add_string buf "\n  ],\n  \"stale_allowlist\": [";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "\n    ";
      Buffer.add_string buf (Finding.to_json f))
    report.stale;
  Buffer.add_string buf
    (Printf.sprintf "\n  ],\n  \"files_scanned\": %d,\n  \"clean\": %b\n}"
       report.files_scanned (clean report));
  Buffer.contents buf
