(** Parse .ml/.mli sources into Parsetrees via compiler-libs. *)

(** Parse an implementation; [Error msg] lets the driver fall back to
    token scanning. *)
val parse :
  file:string -> src:string -> (Parsetree.structure, string) result

(** Parse an interface (.mli). *)
val parse_intf :
  file:string -> src:string -> (Parsetree.signature, string) result

val line_of : Location.t -> int
val col_of : Location.t -> int
