(** Shared-state ownership spec for the S00x domain-safety family.

    Declares, per simulator module, who may own its mutable state under
    the ROADMAP's multicore shard refactor: shard-local (instances
    confined to one domain), shard-crossing (the sanctioned inter-domain
    surface, with a mandatory written justification), or
    read-only-after-init (built during setup, immutable while the run
    loop is live) — plus the declared shard entry points the {!Shard}
    reachability pass starts from. *)

type owner_class = Shard_local | Shard_crossing | Read_only_after_init

val class_name : owner_class -> string

type phase = Init | Run

val phase_name : phase -> string

type rule = { path : string; cls : owner_class; why : string option }
(** [path] is a repo-relative file, or a directory prefix when it ends
    in ['/'].  File rules beat directory rules; the longest directory
    prefix wins otherwise. *)

type entry = { e_id : string; e_shard : string; e_phase : phase }
(** A declared entry point: fully-qualified definition id (in
    {!Callgraph} naming), owning shard group, and phase. *)

type spec = { rules : rule list; entries : entry list }

val class_of :
  spec -> file:string -> (owner_class * string option) option
(** Classification (and crossing justification) of a repo-relative file;
    [None] for modules outside the spec (harness layers — exempt from
    the S rules, still inventoried). *)

val run_entries : spec -> entry list

val validate : spec -> string list
(** Spec-level defects (undocumented crossings, duplicate rules, no run
    entries), as messages; {!Shard.check} reports them as S000. *)

val to_string : spec -> string

val parse : string -> (spec, string) result
(** Inverse of {!to_string}; also accepts '#' comments and blank
    lines. *)

val default : spec
(** The repo's declared spec — keep in sync with DESIGN.md §9. *)
