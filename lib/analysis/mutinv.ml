(* Mutable-state inventory (the raw material of the S00x rules).

   A purely syntactic pass over one file's Parsetree that records every
   site where mutable state is declared or written: [mutable] record
   fields, [ref] cells, hash tables, flat arrays/bytes, the store
   operations over them, and — worst for sharding — top-level bindings
   that hold any of these (process-global state no domain can own).

   The inventory feeds two consumers: the Shard pass (which joins it
   with call-graph reachability to decide what two shards can both
   touch) and the ownership report (`make lint-ownership`), which is the
   sharding PR's synchronization worklist. *)

open Asttypes
open Parsetree

type kind =
  | Mutable_field  (* [mutable f : t] in a record declaration *)
  | Ref_cell  (* [ref e] creation *)
  | Hash_table  (* [Hashtbl.create] / keyed [Tbl.create] *)
  | Flat_array  (* [Array.make]/[init], [Bytes.create]/[make] *)
  | Store  (* a write: [a.(i) <- v], [Bytes.set], [:=], [incr] ... *)
  | Toplevel_state  (* a module-level binding holding mutable state *)

let kind_name = function
  | Mutable_field -> "mutable-field"
  | Ref_cell -> "ref"
  | Hash_table -> "hashtbl"
  | Flat_array -> "array"
  | Store -> "store"
  | Toplevel_state -> "toplevel-state"

type item = {
  m_file : string;
  m_line : int;
  m_col : int;
  m_kind : kind;
  m_name : string;  (* field/binding name, or the operation's spelling *)
}

let line_of (loc : Location.t) = loc.loc_start.pos_lnum
let col_of (loc : Location.t) = loc.loc_start.pos_cnum - loc.loc_start.pos_bol

let flatten_longident lid = try Some (Longident.flatten lid) with _ -> None

let strip_stdlib = function "Stdlib" :: rest -> rest | p -> p

(* --- path classifiers ------------------------------------------------------ *)

let table_creators = [ "create"; "of_seq" ]

let is_table_create path =
  match strip_stdlib path with
  | m :: rest -> (
      (String.equal m "Hashtbl" || String.equal m "Tbl"
      || match List.rev path with _ :: "Tbl" :: _ -> true | _ -> false)
      && match List.rev rest with
         | op :: _ -> List.exists (String.equal op) table_creators
         | [] -> false)
  | [] -> false

let array_creators = [ "make"; "create"; "init"; "make_matrix"; "copy" ]

let is_array_create path =
  match strip_stdlib path with
  | [ m; op ] ->
      List.exists (String.equal m) [ "Array"; "Bytes"; "Float_array" ]
      && List.exists (String.equal op) array_creators
  | _ -> false

let is_ref_create path =
  match strip_stdlib path with [ "ref" ] -> true | _ -> false

(* Writes: the operators the parser leaves as plain applications (array
   and bytes/string index assignment desugar to [.set]), plus the ref
   mutators.  [Pexp_setfield] is caught structurally. *)
let store_ops = [ "set"; "unsafe_set"; "fill"; "blit" ]

let store_modules =
  [ "Array"; "Bytes"; "String"; "Float_array"; "Hashtbl"; "Tbl" ]

let table_mutators =
  [ "add"; "replace"; "remove"; "reset"; "clear"; "filter_map_inplace" ]

let is_store_path path =
  match strip_stdlib path with
  | [ op ] -> List.exists (String.equal op) [ ":="; "incr"; "decr" ]
  | m :: rest -> (
      (List.exists (String.equal m) store_modules
      || match List.rev path with _ :: "Tbl" :: _ -> true | _ -> false)
      && match List.rev rest with
         | op :: _ ->
             List.exists (String.equal op) store_ops
             || List.exists (String.equal op) table_mutators
         | [] -> false)
  | [] -> false

(* Does this expression *directly* evaluate to mutable state?  Used to
   classify top-level bindings; descends through the containers a value
   is built from so [let t = { tbl = Hashtbl.create 7 }] still counts. *)
let rec creates_mutable e =
  match e.pexp_desc with
  | Pexp_apply (fn, args) -> (
      match fn.pexp_desc with
      | Pexp_ident { txt; _ } -> (
          match flatten_longident txt with
          | Some p ->
              is_ref_create p || is_table_create p || is_array_create p
              || List.exists (fun (_, a) -> creates_mutable a) args
          | None -> false)
      | _ -> false)
  | Pexp_record (fields, _) ->
      List.exists (fun (_, v) -> creates_mutable v) fields
  | Pexp_tuple es -> List.exists creates_mutable es
  | Pexp_array _ -> true
  | Pexp_constraint (e, _) | Pexp_open (_, e) -> creates_mutable e
  | Pexp_let (_, _, body) -> creates_mutable body
  | _ -> false

(* --- the scan -------------------------------------------------------------- *)

let binding_name pat =
  match pat.ppat_desc with
  | Ppat_var { txt; _ } -> txt
  | Ppat_constraint ({ ppat_desc = Ppat_var { txt; _ }; _ }, _) -> txt
  | _ -> "_"

let scan ~file structure =
  let items = ref [] in
  let add ~loc ~kind ~name =
    items :=
      {
        m_file = file;
        m_line = line_of loc;
        m_col = col_of loc;
        m_kind = kind;
        m_name = name;
      }
      :: !items
  in
  (* mutable record fields + expression-level sites, everywhere *)
  let type_declaration (it : Ast_iterator.iterator) td =
    (match td.ptype_kind with
    | Ptype_record labels ->
        List.iter
          (fun ld ->
            match ld.pld_mutable with
            | Mutable ->
                add ~loc:ld.pld_loc ~kind:Mutable_field
                  ~name:(td.ptype_name.txt ^ "." ^ ld.pld_name.txt)
            | Immutable -> ())
          labels
    | _ -> ());
    Ast_iterator.default_iterator.type_declaration it td
  in
  let expr (it : Ast_iterator.iterator) e =
    (match e.pexp_desc with
    | Pexp_apply (fn, _) -> (
        match fn.pexp_desc with
        | Pexp_ident { txt; _ } -> (
            match flatten_longident txt with
            | Some p ->
                let name = String.concat "." p in
                if is_ref_create p then
                  add ~loc:fn.pexp_loc ~kind:Ref_cell ~name
                else if is_table_create p then
                  add ~loc:fn.pexp_loc ~kind:Hash_table ~name
                else if is_array_create p then
                  add ~loc:fn.pexp_loc ~kind:Flat_array ~name
                else if is_store_path p then
                  add ~loc:fn.pexp_loc ~kind:Store ~name
            | None -> ())
        | _ -> ())
    | Pexp_setfield (_, { txt; _ }, _) ->
        let name =
          match flatten_longident txt with
          | Some p -> String.concat "." p
          | None -> "<field>"
        in
        add ~loc:e.pexp_loc ~kind:Store ~name:("<- " ^ name)
    | Pexp_setinstvar ({ txt; _ }, _) ->
        add ~loc:e.pexp_loc ~kind:Store ~name:("<- " ^ txt)
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let iterator =
    { Ast_iterator.default_iterator with type_declaration; expr }
  in
  iterator.structure iterator structure;
  (* top-level mutable bindings: walk the structure items directly so
     only module-level lets qualify (a let inside a function body is a
     local, not process-global state) *)
  let rec toplevel items_ =
    List.iter
      (fun item ->
        match item.pstr_desc with
        | Pstr_value (_, vbs) ->
            List.iter
              (fun vb ->
                if creates_mutable vb.pvb_expr then
                  add ~loc:vb.pvb_loc ~kind:Toplevel_state
                    ~name:(binding_name vb.pvb_pat))
              vbs
        | Pstr_module
            { pmb_expr = { pmod_desc = Pmod_structure sub; _ }; _ } ->
            toplevel sub
        | _ -> ())
      items_
  in
  toplevel structure;
  List.sort
    (fun a b ->
      match Int.compare a.m_line b.m_line with
      | 0 -> (
          match Int.compare a.m_col b.m_col with
          | 0 -> String.compare (kind_name a.m_kind) (kind_name b.m_kind)
          | c -> c)
      | c -> c)
    !items

(* Declared mutable state only (no write sites): what the ownership
   report lists per module, and what S001 requires a module to have
   before reachability can make it a finding. *)
let declared items =
  List.filter
    (fun i ->
      match i.m_kind with
      | Mutable_field | Ref_cell | Hash_table | Flat_array | Toplevel_state ->
          true
      | Store -> false)
    items
