(* Domain-safety checks (S00x): the code against the Ownership spec.

   The multicore shard refactor (ROADMAP item 2) will run each LCG's
   switches on their own OCaml 5 domain.  Anything mutable that two
   shards can both reach is a data race waiting for that PR; anything
   mutable that a closure carries onto an event queue may fire on a
   different domain than the state it captures; anything declared
   read-only-after-init must actually stop changing once the run loop is
   live.  Three rules, all whole-program, all over the same Callgraph
   the E/L/X passes use:

   S000 — the spec itself is malformed (undocumented crossing, duplicate
   rule, entry point that no longer resolves to a definition).  Spec rot
   would silently blind the other three.

   S001 — shared-mutable-without-crossing-annotation: a mutating
   definition in a shard-local module reachable from run-phase entry
   points of two or more distinct shards; the finding carries one
   witness call chain per shard, like E00x.

   S002 — closure escape: a closure that mutates state, registered from
   a shard-local module onto the engine event queue or a channel
   callback.  The closure outlives the call that created it; under
   sharding it must stay pinned to the domain owning the state it
   captures.

   S003 — init-phase violation: a mutating definition in a
   read-only-after-init module reachable from any run-phase entry point.
   Setup may build the tables; the run loop may not rewrite them. *)

open Parsetree

(* --- reachability ---------------------------------------------------------- *)

(* BFS over call edges from one entry definition; [parent] lets a
   witness chain be rebuilt entry-first.  Callee lists are sorted and
   the queue is FIFO, so chains are deterministic. *)
let reach cg ~from =
  let parent = Hashtbl.create 256 in
  let visited = Hashtbl.create 256 in
  Hashtbl.replace visited from ();
  let q = Queue.create () in
  Queue.push from q;
  while not (Queue.is_empty q) do
    let id = Queue.pop q in
    List.iter
      (fun callee ->
        if not (Hashtbl.mem visited callee) then begin
          Hashtbl.replace visited callee ();
          Hashtbl.replace parent callee id;
          Queue.push callee q
        end)
      (Callgraph.callees cg id)
  done;
  (visited, parent)

let chain_to parent ~from ~target =
  let rec up id acc =
    if String.equal id from then from :: acc
    else
      match Hashtbl.find_opt parent id with
      | Some p -> up p (id :: acc)
      | None -> id :: acc
  in
  up target []

(* --- mutation evidence ----------------------------------------------------- *)

let is_mutating (d : Callgraph.def) =
  d.Callgraph.d_mutates
  || List.exists (fun (raw, _, _) -> Mutinv.is_store_path raw) d.Callgraph.d_refs

(* --- S002: closure-escape scan --------------------------------------------- *)

(* Registration sinks whose closure argument outlives the call: the
   engine event queue and the channel receive callback.  Matched on the
   last two path segments so open-scoped and absolute spellings agree. *)
let sinks =
  [
    ("Engine", "schedule");
    ("Engine", "schedule_at");
    ("Engine", "every");
    ("Channel", "set_receiver");
  ]

let sink_of path =
  match List.rev path with
  | op :: m :: _ ->
      if
        List.exists
          (fun (sm, sop) -> String.equal m sm && String.equal op sop)
          sinks
      then Some (m ^ "." ^ op)
      else None
  | _ -> None

let flatten_longident lid = try Some (Longident.flatten lid) with _ -> None

(* Does the expression mutate anything, syntactically?  (Local scratch
   included: from another domain's point of view there is no way to tell
   a captured local from module state without types, so the rule errs
   toward reporting and the allowlist carries the justified residue.) *)
let expr_mutates e =
  let found = ref false in
  let expr (it : Ast_iterator.iterator) e =
    (match e.pexp_desc with
    | Pexp_setfield _ | Pexp_setinstvar _ -> found := true
    | Pexp_apply (fn, _) -> (
        match fn.pexp_desc with
        | Pexp_ident { txt; _ } -> (
            match flatten_longident txt with
            | Some p -> if Mutinv.is_store_path p then found := true
            | None -> ())
        | _ -> ())
    | _ -> ());
    if not !found then Ast_iterator.default_iterator.expr it e
  in
  let iterator = { Ast_iterator.default_iterator with expr } in
  iterator.expr iterator e;
  !found

let rec is_closure e =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> true
  | Pexp_constraint (e, _) | Pexp_open (_, e) -> is_closure e
  | _ -> false

let closure_escapes structure =
  let out = ref [] in
  let expr (it : Ast_iterator.iterator) e =
    (match e.pexp_desc with
    | Pexp_apply (fn, args) -> (
        match fn.pexp_desc with
        | Pexp_ident { txt; _ } -> (
            match Option.bind (flatten_longident txt) (fun p -> sink_of p)
            with
            | Some sink ->
                List.iter
                  (fun (_, arg) ->
                    if is_closure arg && expr_mutates arg then
                      out :=
                        ( sink,
                          Parse_ml.line_of arg.pexp_loc,
                          Parse_ml.col_of arg.pexp_loc )
                        :: !out)
                  args
            | None -> ())
        | _ -> ())
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let iterator = { Ast_iterator.default_iterator with expr } in
  iterator.structure iterator structure;
  List.rev !out

(* --- the check ------------------------------------------------------------- *)

let shorten id =
  (* drop the Lazyctrl_ wrapper for readability in chains *)
  match String.split_on_char '.' id with
  | w :: rest when Option.is_some (Callgraph.lib_of_wrapper w) ->
      String.concat "." rest
  | _ -> id

let format_chain parent ~from ~target =
  String.concat " -> " (List.map shorten (chain_to parent ~from ~target))

let check ~(spec : Ownership.spec) ~cg ~structures () =
  let findings = ref [] in
  let emit ~file ~line ?(col = 0) ~rule ~severity msg =
    findings := Finding.make ~file ~line ~col ~rule ~severity msg :: !findings
  in
  (* S000: spec validation + entry resolution *)
  List.iter
    (fun msg ->
      emit ~file:"lib/analysis/ownership.ml" ~line:1 ~rule:Rules.s_spec
        ~severity:Finding.Error msg)
    (Ownership.validate spec);
  let resolved_entries =
    List.filter
      (fun (e : Ownership.entry) ->
        match Callgraph.find_def cg e.Ownership.e_id with
        | Some _ -> true
        | None ->
            emit ~file:"lib/analysis/ownership.ml" ~line:1 ~rule:Rules.s_spec
              ~severity:Finding.Error
              (Printf.sprintf
                 "ownership entry point '%s' does not resolve to any \
                  definition; the spec has drifted from the code"
                 e.Ownership.e_id);
            false)
      spec.Ownership.entries
  in
  let run_entries =
    List.filter
      (fun (e : Ownership.entry) ->
        match e.Ownership.e_phase with
        | Ownership.Run -> true
        | Ownership.Init -> false)
      resolved_entries
  in
  let reaches =
    List.map
      (fun (e : Ownership.entry) -> (e, reach cg ~from:e.Ownership.e_id))
      run_entries
  in
  let class_of file = Ownership.class_of spec ~file in
  (* S001 / S003 over every indexed definition *)
  List.iter
    (fun (fi : Callgraph.finfo) ->
      if not fi.Callgraph.f_aux then
        match class_of fi.Callgraph.f_file with
        | None -> ()
        | Some (Ownership.Shard_crossing, _) -> ()
        | Some (Ownership.Shard_local, _) ->
            List.iter
              (fun (d : Callgraph.def) ->
                if is_mutating d then begin
                  let reaching =
                    List.filter
                      (fun ((_ : Ownership.entry), (visited, _)) ->
                        Hashtbl.mem visited d.Callgraph.d_id)
                      reaches
                  in
                  let shards =
                    List.sort_uniq String.compare
                      (List.map
                         (fun ((e : Ownership.entry), _) ->
                           e.Ownership.e_shard)
                         reaching)
                  in
                  if List.length shards >= 2 then begin
                    let witness shard =
                      match
                        List.find_opt
                          (fun ((e : Ownership.entry), _) ->
                            String.equal e.Ownership.e_shard shard)
                          reaching
                      with
                      | Some (e, (_, parent)) ->
                          Printf.sprintf "[%s] %s" shard
                            (format_chain parent ~from:e.Ownership.e_id
                               ~target:d.Callgraph.d_id)
                      | None -> shard
                    in
                    emit ~file:d.Callgraph.d_file ~line:d.Callgraph.d_line
                      ~col:d.Callgraph.d_col ~rule:Rules.s_shared_mutable
                      ~severity:Finding.Error
                      (Printf.sprintf
                         "shard-local mutable state reachable from %d shards \
                          (%s): %s; %s — give each domain its own instance, \
                          route the crossing through the reliable-channel \
                          layer, or mark the module shard-crossing in the \
                          ownership spec with a justification"
                         (List.length shards)
                         (String.concat ", " shards)
                         (witness (List.nth shards 0))
                         (witness (List.nth shards 1)))
                  end
                end)
              fi.Callgraph.f_defs
        | Some (Ownership.Read_only_after_init, _) ->
            List.iter
              (fun (d : Callgraph.def) ->
                if is_mutating d then begin
                  let reaching =
                    List.find_opt
                      (fun ((_ : Ownership.entry), (visited, _)) ->
                        Hashtbl.mem visited d.Callgraph.d_id)
                      reaches
                  in
                  match reaching with
                  | None -> ()
                  | Some (e, (_, parent)) ->
                      emit ~file:d.Callgraph.d_file ~line:d.Callgraph.d_line
                        ~col:d.Callgraph.d_col ~rule:Rules.s_init_write
                        ~severity:Finding.Error
                        (Printf.sprintf
                           "write to read-only-after-init state reachable \
                            from the run loop: [%s] %s — mutate during setup \
                            only, or the module's ownership class is wrong"
                           e.Ownership.e_shard
                           (format_chain parent ~from:e.Ownership.e_id
                              ~target:d.Callgraph.d_id))
                end)
              fi.Callgraph.f_defs)
    (Callgraph.files cg);
  (* S002 over the shard-local structures *)
  List.iter
    (fun (file, structure) ->
      match class_of file with
      | Some (Ownership.Shard_local, _) ->
          List.iter
            (fun (sink, line, col) ->
              emit ~file ~line ~col ~rule:Rules.s_closure_escape
                ~severity:Finding.Warning
                (Printf.sprintf
                   "closure that mutates state is registered on %s and \
                    outlives this call; under domain sharding it must run \
                    on the domain owning the captured state — keep the \
                    registration on the owning shard's engine, or carry \
                    the update across shards as a message"
                   sink))
            (closure_escapes structure)
      | _ -> ())
    structures;
  List.sort Finding.compare !findings
