(** Mutable-state inventory: every site in a file where mutable state is
    declared ([mutable] fields, [ref] cells, hash tables, flat
    arrays/bytes, module-level bindings holding any of these) or written
    (store operations, [:=], [Pexp_setfield]).  Purely syntactic; feeds
    the {!Shard} pass and the `make lint-ownership` report. *)

type kind =
  | Mutable_field
  | Ref_cell
  | Hash_table
  | Flat_array
  | Store
  | Toplevel_state

val kind_name : kind -> string

type item = {
  m_file : string;
  m_line : int;
  m_col : int;
  m_kind : kind;
  m_name : string;
}

val is_store_path : string list -> bool
(** Is this applied path a write ([Array.set], [Hashtbl.replace], [:=],
    [incr], ...)?  {!Shard} uses it to widen {!Callgraph}'s
    [d_mutates] (set-field only) to store operations. *)

val scan : file:string -> Parsetree.structure -> item list
(** All sites, sorted by position. *)

val declared : item list -> item list
(** Declaration sites only (write sites filtered out). *)
