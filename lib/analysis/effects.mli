(** Interprocedural effect inference (E00x).

    Every top-level definition gets an effect signature over
    {{!eff} the lattice}; signatures are seeded at known primitives (the
    same classifications the per-file D-rules use) and propagated
    transitively over the {!Callgraph}, so a helper that reads
    [Sys.time] taints every caller that can reach it.  Sanctuary modules
    (prng, sim time, Det) are barriers: their effects do not propagate —
    going through them is the endorsed route.  Only Rng, Clock and
    Unordered gate; Mutation and Io are inferred for tooling only. *)

type eff = Rng | Clock | Unordered | Mutation | Io

type table

(** [infer cg ~ast_findings] seeds from the pre-allowlist per-file AST
    findings (keyed by file) plus own mutation/IO classifiers, then
    propagates to a fixpoint. *)
val infer :
  Callgraph.t -> ast_findings:(string * Finding.t list) list -> table

(** Effect names in a definition's inferred signature, for tooling. *)
val signature_of : table -> string -> string list

(** Gating findings: inherited (not directly seeded) Rng/Clock/Unordered
    effects outside barrier files, each with its witness chain. *)
val findings : table -> Finding.t list
