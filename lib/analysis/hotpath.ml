(* Hot-path allocation-discipline checks (H00x): the code against the
   Hotspec, in the S00x mold — whole-program, over the same Callgraph the
   E/L/X/S passes use.

   H000 — the spec itself is malformed: validation defects, a hot entry
   or cold boundary that no longer resolves to a definition, a cold
   boundary no hot region actually reaches (stale).  Spec rot would
   silently blind the other rules.

   H001 — an allocation site (Allocsites) inside a definition reachable
   from a hot entry without an intervening cold boundary.  The finding
   carries a witness call chain from the entry, like E001/S001.

   H002 — polymorphic compare/hash or a call through a record field /
   array element on a hot path: dynamic dispatch the inliner cannot see
   through.

   H003 — exception-based control flow (raise or try...with) inside the
   hot region.

   The static verdict is never trusted unverified: Hotbudget
   cross-validates each probe against measured minor-words-per-op from
   bench/main.exe's hotpath targets (H004/H005). *)

let spec_file = "lib/analysis/hotspec.ml"

(* BFS over call edges that does not expand through cold boundaries; a
   boundary encountered as a callee is recorded in [touched] (for the
   staleness check) but never visited.  Callee lists are sorted and the
   queue is FIFO, so witness chains are deterministic. *)
let reach_hot cg ~cold ~touched ~from =
  let parent = Hashtbl.create 256 in
  let visited = Hashtbl.create 256 in
  Hashtbl.replace visited from ();
  let q = Queue.create () in
  Queue.push from q;
  while not (Queue.is_empty q) do
    let id = Queue.pop q in
    List.iter
      (fun callee ->
        if Hashtbl.mem cold callee then Hashtbl.replace touched callee ()
        else if not (Hashtbl.mem visited callee) then begin
          Hashtbl.replace visited callee ();
          Hashtbl.replace parent callee id;
          Queue.push callee q
        end)
      (Callgraph.callees cg id)
  done;
  (visited, parent)

let shorten id =
  match String.split_on_char '.' id with
  | w :: rest when Option.is_some (Callgraph.lib_of_wrapper w) ->
      String.concat "." rest
  | _ -> id

let chain_to parent ~from ~target =
  let rec up id acc =
    if String.equal id from then from :: acc
    else
      match Hashtbl.find_opt parent id with
      | Some p -> up p (id :: acc)
      | None -> id :: acc
  in
  up target []

let format_chain parent ~from ~target =
  String.concat " -> " (List.map shorten (chain_to parent ~from ~target))

type probe_status = {
  p_probe : string;
  p_entries : string list;  (** resolved hot-entry def ids *)
  p_file : string;  (** first entry's file, for H004 attribution *)
  p_line : int;
  p_alloc_sites : int;
      (** H001-class sites statically reachable, allowlisted or not:
          zero means the probe claims to be allocation-free *)
}

type analysis = { a_findings : Finding.t list; a_probes : probe_status list }

let analyze ~(spec : Hotspec.spec) ~cg ~structures () =
  let findings = ref [] in
  let emit ~file ~line ?(col = 0) ~rule ~severity msg =
    findings := Finding.make ~file ~line ~col ~rule ~severity msg :: !findings
  in
  (* H000: spec validation + resolution *)
  List.iter
    (fun msg ->
      emit ~file:spec_file ~line:1 ~rule:Rules.h_spec ~severity:Finding.Error
        msg)
    (Hotspec.validate spec);
  let resolved =
    List.filter
      (fun (e : Hotspec.entry) ->
        match Callgraph.find_def cg e.Hotspec.h_id with
        | Some _ -> true
        | None ->
            emit ~file:spec_file ~line:1 ~rule:Rules.h_spec
              ~severity:Finding.Error
              (Printf.sprintf
                 "hot entry '%s' does not resolve to a definition; the \
                  hot-path spec has drifted from the code"
                 e.Hotspec.h_id);
            false)
      spec.Hotspec.hot
  in
  let cold = Hashtbl.create 16 in
  List.iter
    (fun (b : Hotspec.boundary) ->
      match Callgraph.find_def cg b.Hotspec.b_id with
      | Some _ -> Hashtbl.replace cold b.Hotspec.b_id ()
      | None ->
          emit ~file:spec_file ~line:1 ~rule:Rules.h_spec
            ~severity:Finding.Error
            (Printf.sprintf
               "cold boundary '%s' does not resolve to a definition; \
                remove it or fix the spec"
               b.Hotspec.b_id))
    spec.Hotspec.cold;
  (* Reachability per entry, in (probe, id) order so witness-chain
     ownership below is deterministic. *)
  let order =
    List.sort
      (fun (a : Hotspec.entry) (b : Hotspec.entry) ->
        match String.compare a.Hotspec.h_probe b.Hotspec.h_probe with
        | 0 -> String.compare a.Hotspec.h_id b.Hotspec.h_id
        | c -> c)
      resolved
  in
  let touched = Hashtbl.create 16 in
  let reaches =
    List.map
      (fun (e : Hotspec.entry) ->
        (e, reach_hot cg ~cold ~touched ~from:e.Hotspec.h_id))
      order
  in
  List.iter
    (fun (b : Hotspec.boundary) ->
      if Hashtbl.mem cold b.Hotspec.b_id && not (Hashtbl.mem touched b.Hotspec.b_id)
      then
        emit ~file:spec_file ~line:1 ~rule:Rules.h_spec
          ~severity:Finding.Error
          (Printf.sprintf
             "cold boundary '%s' is stale: no hot entry reaches it; \
              remove it or fix the spec"
             b.Hotspec.b_id))
    spec.Hotspec.cold;
  (* Allocation sites, attributed to their enclosing definition. *)
  let sites_of_def : (string, Allocsites.site list) Hashtbl.t =
    Hashtbl.create 128
  in
  List.iter
    (fun (file, structure) ->
      List.iter
        (fun (s : Allocsites.site) ->
          match
            Callgraph.def_spanning cg ~file ~line:s.Allocsites.s_line
              ~col:s.Allocsites.s_col
          with
          | Some d ->
              let prev =
                Option.value ~default:[]
                  (Hashtbl.find_opt sites_of_def d.Callgraph.d_id)
              in
              Hashtbl.replace sites_of_def d.Callgraph.d_id (s :: prev)
          | None -> ())
        (Allocsites.scan structure))
    structures;
  (* The first entry (in [order]) reaching a definition owns its witness
     chain; each site is reported once. *)
  let owner = Hashtbl.create 256 in
  List.iter
    (fun id ->
      let rec first = function
        | [] -> ()
        | ((e : Hotspec.entry), (visited, parent)) :: rest ->
            if Hashtbl.mem visited id then
              Hashtbl.replace owner id (e, parent)
            else first rest
      in
      first reaches)
    (Callgraph.def_ids cg);
  List.iter
    (fun (fi : Callgraph.finfo) ->
      List.iter
        (fun (d : Callgraph.def) ->
          match Hashtbl.find_opt owner d.Callgraph.d_id with
          | None -> ()
          | Some ((e : Hotspec.entry), parent) ->
              let chain =
                format_chain parent ~from:e.Hotspec.h_id
                  ~target:d.Callgraph.d_id
              in
              List.iter
                (fun (s : Allocsites.site) ->
                  let rule = Allocsites.rule_of s.Allocsites.s_kind in
                  let severity, advice =
                    if String.equal rule Rules.h_hot_alloc then
                      ( Finding.Error,
                        "the hot region must stay allocation-free: hoist \
                         or pool the value, move the work behind a \
                         declared cold boundary (lib/analysis/hotspec.ml), \
                         or allowlist with a justification" )
                    else if String.equal rule Rules.h_hot_indirect then
                      ( Finding.Warning,
                        "dynamic dispatch on the hot path defeats \
                         inlining; call the target directly or justify \
                         the indirection" )
                    else
                      ( Finding.Error,
                        "exceptions as control flow allocate and unwind \
                         on the hot path; return a variant or sentinel \
                         instead" )
                  in
                  emit ~file:fi.Callgraph.f_file ~line:s.Allocsites.s_line
                    ~col:s.Allocsites.s_col ~rule ~severity
                    (Printf.sprintf "%s on the hot path [%s]: %s — %s"
                       s.Allocsites.s_desc e.Hotspec.h_probe chain advice))
                (List.rev
                   (Option.value ~default:[]
                      (Hashtbl.find_opt sites_of_def d.Callgraph.d_id))))
        fi.Callgraph.f_defs)
    (Callgraph.files cg);
  (* Per-probe static tally, for the Hotbudget cross-validation. *)
  let probes =
    List.map
      (fun probe ->
        let entries =
          List.filter
            (fun (e : Hotspec.entry) ->
              String.equal e.Hotspec.h_probe probe)
            order
        in
        let file, line =
          match entries with
          | e :: _ -> (
              match Callgraph.find_def cg e.Hotspec.h_id with
              | Some d -> (d.Callgraph.d_file, d.Callgraph.d_line)
              | None -> (spec_file, 1))
          | [] -> (spec_file, 1)
        in
        let reached_by_probe id =
          List.exists
            (fun ((e : Hotspec.entry), (visited, _)) ->
              String.equal e.Hotspec.h_probe probe && Hashtbl.mem visited id)
            reaches
        in
        let alloc_sites =
          List.fold_left
            (fun acc id ->
              if reached_by_probe id then
                acc
                + List.length
                    (List.filter
                       (fun (s : Allocsites.site) ->
                         Allocsites.is_alloc s.Allocsites.s_kind)
                       (Option.value ~default:[]
                          (Hashtbl.find_opt sites_of_def id)))
              else acc)
            0 (Callgraph.def_ids cg)
        in
        {
          p_probe = probe;
          p_entries = List.map (fun (e : Hotspec.entry) -> e.Hotspec.h_id) entries;
          p_file = file;
          p_line = line;
          p_alloc_sites = alloc_sites;
        })
      (Hotspec.probes spec)
  in
  {
    a_findings = List.sort Finding.compare !findings;
    a_probes = probes;
  }

let check ~spec ~cg ~structures () = (analyze ~spec ~cg ~structures ()).a_findings
