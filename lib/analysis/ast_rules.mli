(** Per-file determinism (D00x) and abstraction-safety (A00x) rules over
    a Parsetree, including sort-sink sanctioning of hash-table folds. *)

val scan : file:string -> Parsetree.structure -> Finding.t list
