(** SARIF 2.1.0 serialization of a lint report, for GitHub code
    scanning.  Gating findings only: suppressed findings carry their
    justification in the allowlist, stale entries are an
    allowlist-maintenance concern. *)

val of_report : Driver.report -> string
