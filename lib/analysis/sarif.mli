(** SARIF 2.1.0 serialization of lint findings, for GitHub code
    scanning.  Gating findings only: suppressed findings carry their
    justification in the allowlist, stale entries are an
    allowlist-maintenance concern.  Every rule, in every family, carries
    full metadata (name, short description, help text) uniformly. *)

type meta = {
  m_id : string;
  m_name : string;  (** PascalCase, the SARIF rule "name" *)
  m_short : string;  (** one line, mirroring README "Static analysis" *)
  m_help : string;  (** what to do about a finding *)
}

(** Metadata for every rule id in {!Rules.all}. *)
val catalog : meta list

val metadata_of : string -> meta option

(** [catalog] covers exactly {!Rules.all} — pinned by a test so a new
    rule id cannot land without its SARIF metadata. *)
val catalog_complete : unit -> bool

(** A SARIF document for an arbitrary finding list (the hotpath report
    mode uses this for its merged upload). *)
val of_findings : Finding.t list -> string

val of_report : Driver.report -> string
