(** Degraded token-level scan for files the parser rejects: comments and
    strings are blanked, then known hazard spellings are matched
    textually.  Coarser than {!Ast_rules} but keeps unparsable files
    from escaping the lint entirely. *)

val scan : file:string -> src:string -> Finding.t list
