(** Allocation-site inference over the Parsetree, for the H00x hot-path
    family.  Syntactic only: partial application and stdlib-internal
    boxing are invisible here — the dynamic cross-validation against
    measured minor-words-per-op (Hotbudget) is the backstop for both. *)

type kind =
  | Closure  (** [fun]/[function] evaluated at runtime *)
  | Cons  (** constructor with a payload, including list cons *)
  | Tuple
  | Record
  | Array_lit
  | Ref
  | Str  (** string/bytes-allocating stdlib operation *)
  | Poly  (** polymorphic [compare]/[Hashtbl.hash] (H002) *)
  | Indirect  (** call through a record field or array element (H002) *)
  | Raise  (** [raise]/[raise_notrace] (H003) *)
  | Try  (** [try ... with] handler (H003) *)

type site = { s_kind : kind; s_line : int; s_col : int; s_desc : string }

val kind_name : kind -> string

(** Sites that allocate per evaluation (H001 material); the others are
    dispatch/control findings and do not count toward a probe's static
    allocation tally. *)
val is_alloc : kind -> bool

(** The H rule a site of this kind reports under. *)
val rule_of : kind -> string

(** All sites in the structure, in source order.  Structure-level
    non-function bindings are skipped (they run once at module init), as
    are allocation sites guarded by [if Tracer.enabled ...] (the flight
    recorder's documented discipline). *)
val scan : Parsetree.structure -> site list
