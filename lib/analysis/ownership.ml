(* Shared-state ownership spec for the S00x domain-safety family.

   ROADMAP item 2 shards the simulator by LCG onto OCaml 5 domains; the
   correctness question for that refactor (and for every devolved- or
   distributed-controller design) is *who owns which mutable state*.
   This module makes the answer data: every simulator module is declared
   shard-local (instances confined to one domain), shard-crossing (the
   sanctioned inter-domain surface — must carry a written justification),
   or read-only-after-init (built during setup, immutable while the run
   loop is live).  The Shard pass checks the code against the spec; the
   sharding PR consumes the spec as its synchronization worklist.

   The spec is also serializable (a line format in the allowlist's
   spirit) so it can round-trip through files and reports. *)

type owner_class = Shard_local | Shard_crossing | Read_only_after_init

let class_name = function
  | Shard_local -> "shard-local"
  | Shard_crossing -> "shard-crossing"
  | Read_only_after_init -> "read-only-after-init"

let class_of_name = function
  | "shard-local" -> Some Shard_local
  | "shard-crossing" -> Some Shard_crossing
  | "read-only-after-init" -> Some Read_only_after_init
  | _ -> None

type phase = Init | Run

let phase_name = function Init -> "init" | Run -> "run"

let phase_of_name = function
  | "init" -> Some Init
  | "run" -> Some Run
  | _ -> None

(* A classification rule: [path] is a repo-relative file ("lib/x/y.ml")
   or, with a trailing '/', a directory prefix.  File rules beat
   directory rules; the longest directory prefix wins otherwise.
   [why] is mandatory for Shard_crossing — an undocumented crossing is
   exactly the rot this spec exists to prevent. *)
type rule = { path : string; cls : owner_class; why : string option }

(* A declared entry point of the sharded control plane: [e_id] is a
   fully-qualified definition id in Callgraph's naming, [e_shard] names
   the shard group that executes it, and [e_phase] separates the setup
   surface from the run loop (S003's init/run distinction). *)
type entry = { e_id : string; e_shard : string; e_phase : phase }

type spec = { rules : rule list; entries : entry list }

(* --- classification -------------------------------------------------------- *)

let is_dir_rule r =
  let n = String.length r.path in
  n > 0 && Char.equal r.path.[n - 1] '/'

let class_of spec ~file =
  let file_rule =
    List.find_opt
      (fun r -> (not (is_dir_rule r)) && String.equal r.path file)
      spec.rules
  in
  let best_dir =
    List.fold_left
      (fun best r ->
        if is_dir_rule r && Callgraph.has_prefix ~prefix:r.path file then
          match best with
          | Some b when String.length b.path >= String.length r.path -> best
          | _ -> Some r
        else best)
      None spec.rules
  in
  match (file_rule, best_dir) with
  | Some r, _ | None, Some r -> Some (r.cls, r.why)
  | None, None -> None

let run_entries spec =
  List.filter (fun e -> match e.e_phase with Run -> true | Init -> false)
    spec.entries

(* --- validation ------------------------------------------------------------ *)

(* Spec-level defects, as messages; Shard turns them into S000 findings.
   A shard-crossing rule without a justification is a defect: the whole
   point of the class is the documented synchronization contract. *)
let validate spec =
  let errs = ref [] in
  List.iter
    (fun r ->
      match (r.cls, r.why) with
      | Shard_crossing, None ->
          errs :=
            Printf.sprintf
              "ownership rule '%s' declares shard-crossing state without a \
               justification; say what synchronizes the crossing (format: \
               module <path> shard-crossing -- <why>)"
              r.path
            :: !errs
      | _ -> ())
    spec.rules;
  let seen = Hashtbl.create 16 in
  List.iter
    (fun r ->
      if Hashtbl.mem seen r.path then
        errs :=
          Printf.sprintf "duplicate ownership rule for path '%s'" r.path
          :: !errs
      else Hashtbl.add seen r.path ())
    spec.rules;
  if List.is_empty (run_entries spec) then
    errs := "ownership spec declares no run-phase entry points" :: !errs;
  List.rev !errs

(* --- serialization --------------------------------------------------------- *)

let to_string spec =
  let buf = Buffer.create 1024 in
  List.iter
    (fun r ->
      Buffer.add_string buf
        (match r.why with
        | None -> Printf.sprintf "module %s %s\n" r.path (class_name r.cls)
        | Some why ->
            Printf.sprintf "module %s %s -- %s\n" r.path (class_name r.cls)
              why))
    spec.rules;
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "entry %s %s %s\n" (phase_name e.e_phase) e.e_shard
           e.e_id))
    spec.entries;
  Buffer.contents buf

let split_ws s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> not (String.equal w ""))

let parse content =
  let rules = ref [] and entries = ref [] and err = ref None in
  let fail lineno msg =
    if Option.is_none !err then
      err := Some (Printf.sprintf "line %d: %s" lineno msg)
  in
  List.iteri
    (fun idx raw ->
      let lineno = idx + 1 in
      (* split on the first " -- " separator; '-' also appears inside
         class names, so a bare index search will not do *)
      let line, why =
        let n = String.length raw in
        let rec find i =
          if i + 4 > n then None
          else if String.equal (String.sub raw i 4) " -- " then Some i
          else find (i + 1)
        in
        match find 0 with
        | Some i ->
            ( String.sub raw 0 i,
              Some (String.trim (String.sub raw (i + 4) (n - i - 4))) )
        | None -> (raw, None)
      in
      let line = String.trim line in
      if String.equal line "" then ()
      else if Char.equal line.[0] '#' then ()
      else
        match split_ws line with
        | [ "module"; path; cls ] -> (
            match class_of_name cls with
            | Some cls -> rules := { path; cls; why } :: !rules
            | None ->
                fail lineno (Printf.sprintf "unknown ownership class '%s'" cls))
        | [ "entry"; phase; shard; id ] -> (
            match phase_of_name phase with
            | Some e_phase ->
                entries := { e_id = id; e_shard = shard; e_phase } :: !entries
            | None -> fail lineno (Printf.sprintf "unknown phase '%s'" phase))
        | _ ->
            fail lineno
              "expected 'module <path> <class> [-- why]' or 'entry \
               <init|run> <shard> <def-id>'")
    (String.split_on_char '\n' content);
  match !err with
  | Some msg -> Error msg
  | None -> Ok { rules = List.rev !rules; entries = List.rev !entries }

(* --- the repo's declared spec ---------------------------------------------- *)

(* Keep in sync with DESIGN.md §9 and ARCHITECTURE.md's ownership note.
   Directory rules classify a library wholesale; file rules carve out
   the exceptions (Proto is the wire format, not switch state; the
   switch's flow table is per-switch state, not transport; SGI's
   regrouping scratch belongs to the controller shard, not to the
   immutable grouping tables). *)
let default =
  {
    rules =
      [
        (* Per-domain simulator state: each shard owns an engine, its
           switches' FIBs, and the PRNG streams it draws from. *)
        { path = "lib/sim/"; cls = Shard_local; why = None };
        (* The domain-parallel engine's own crossing surface: the pool
           hands thunks across domains, the exchange carries events
           between shards, and the window coordinator owns the barrier. *)
        {
          path = "lib/sim/domain_pool.ml";
          cls = Shard_crossing;
          why =
            Some
              "the pool's mutex/condvar job handoff is the only blessed \
               cross-domain control transfer; thunks run on exactly one \
               worker and results join at the barrier";
        };
        {
          path = "lib/sim/exchange.ml";
          cls = Shard_crossing;
          why =
            Some
              "per-source outboxes are written only by the owning shard \
               inside its window and drained single-threaded at the \
               barrier in (time, src, seq) order — the deterministic \
               hand-off point between shards";
        };
        {
          path = "lib/sim/shard_engine.ml";
          cls = Shard_crossing;
          why =
            Some
              "the conservative window coordinator: it owns the barrier, \
               enforces the cross-shard latency bound on every post, and \
               is the only code that touches two shards' engines";
        };
        { path = "lib/switch/"; cls = Shard_local; why = None };
        { path = "lib/controller/"; cls = Shard_local; why = None };
        { path = "lib/baseline/"; cls = Shard_local; why = None };
        { path = "lib/util/"; cls = Shard_local; why = None };
        { path = "lib/bloom/"; cls = Shard_local; why = None };
        { path = "lib/graph/"; cls = Shard_local; why = None };
        { path = "lib/core/host_model.ml"; cls = Shard_local; why = None };
        { path = "lib/core/service_queue.ml"; cls = Shard_local; why = None };
        (* SGI's incremental-update scratch is controller-shard state;
           only the resulting Grouping.t values are read-only tables. *)
        { path = "lib/grouping/sgi.ml"; cls = Shard_local; why = None };
        (* The sanctioned crossing surface. *)
        {
          path = "lib/openflow/";
          cls = Shard_crossing;
          why =
            Some
              "channels and Reliable sessions are the inter-shard \
               transport; each session endpoint is pinned to one domain \
               and the wire between them is the synchronization point";
        };
        {
          path = "lib/openflow/flow_table.ml";
          cls = Shard_local;
          why = None;
        };
        {
          path = "lib/switch/proto.ml";
          cls = Shard_crossing;
          why =
            Some
              "the Proto grammar is the wire format crossing shards; \
               values are immutable messages, ownership transfers on send";
        };
        (* The binary codec has no state of its own: writers/readers are
           created per call and every frame is a fresh Bytes value, so
           encode on one shard / decode on another never alias. *)
        {
          path = "lib/wire/";
          cls = Shard_crossing;
          why =
            Some
              "the codec serializes messages into fresh Bytes frames at \
               the channel boundary; a frame is written once by the \
               sending shard and read by the receiving one, never shared \
               mutable state";
        };
        {
          path = "lib/core/network.ml";
          cls = Shard_crossing;
          why =
            Some
              "the wiring layer constructs every shard and owns the \
               channels between them; its domain-parallel counterpart is \
               Shard_net over the event exchange";
        };
        {
          path = "lib/core/shard_net.ml";
          cls = Shard_crossing;
          why =
            Some
              "the domain-parallel wiring: it builds every logical shard's \
               engine/switches/host models, and every control, peer, \
               underlay and receipt interaction between them is an \
               explicit exchange post carrying its link latency";
        };
        (* The controller cluster: each member's coordination state is
           pinned to its own controller domain; the plane and the Coord
           grammar are the crossing fabric between those domains. *)
        { path = "lib/cluster/member.ml"; cls = Shard_local; why = None };
        {
          path = "lib/cluster/coord.ml";
          cls = Shard_crossing;
          why =
            Some
              "the Coord grammar is the inter-controller wire format; \
               values are immutable messages, ownership transfers on send";
        };
        {
          path = "lib/cluster/plane.ml";
          cls = Shard_crossing;
          why =
            Some
              "the cluster wiring owns every inter-domain channel plus the \
               management-plane uplink/term arrays, the synchronous \
               arbitration point for mastership claims";
        };
        {
          path = "lib/metrics/";
          cls = Shard_crossing;
          why =
            Some
              "the recorder aggregates counters from all shards; the \
               sharding PR keeps per-domain recorders and merges at \
               report time";
        };
        {
          path = "lib/trace/";
          cls = Shard_crossing;
          why =
            Some
              "the flight recorder is a global sink; per-domain buffers \
               are merged at export, never read back by simulated code";
        };
        (* Built during setup, immutable while the run loop is live. *)
        { path = "lib/topo/"; cls = Read_only_after_init; why = None };
        { path = "lib/grouping/"; cls = Read_only_after_init; why = None };
        { path = "lib/net/"; cls = Read_only_after_init; why = None };
        { path = "lib/core/params.ml"; cls = Read_only_after_init; why = None };
      ];
    entries =
      [
        (* The switch shard's run loop: the Fig. 5 data path plus the
           control/peer message dispatchers. *)
        {
          e_id = "Lazyctrl_switch.Edge_switch.handle_from_host";
          e_shard = "switch";
          e_phase = Run;
        };
        {
          e_id = "Lazyctrl_switch.Edge_switch.handle_underlay";
          e_shard = "switch";
          e_phase = Run;
        };
        {
          e_id = "Lazyctrl_switch.Edge_switch.handle_controller_message";
          e_shard = "switch";
          e_phase = Run;
        };
        {
          e_id = "Lazyctrl_switch.Edge_switch.handle_peer_message";
          e_shard = "switch";
          e_phase = Run;
        };
        (* The controller shard's run loop. *)
        {
          e_id = "Lazyctrl_controller.Controller.handle_message";
          e_shard = "controller";
          e_phase = Run;
        };
        (* The baseline OpenFlow plane shards the same way. *)
        {
          e_id = "Lazyctrl_baseline.Of_switch.handle_from_host";
          e_shard = "of-switch";
          e_phase = Run;
        };
        {
          e_id = "Lazyctrl_baseline.Of_switch.handle_underlay";
          e_shard = "of-switch";
          e_phase = Run;
        };
        {
          e_id = "Lazyctrl_baseline.Of_switch.handle_controller_message";
          e_shard = "of-switch";
          e_phase = Run;
        };
        {
          e_id = "Lazyctrl_baseline.Of_controller.handle_message";
          e_shard = "of-controller";
          e_phase = Run;
        };
        (* The window coordinator's run loop: drains the exchange and
           drives every shard's engine through the current window. *)
        {
          e_id = "Lazyctrl_sim.Shard_engine.run";
          e_shard = "exchange";
          e_phase = Run;
        };
        (* Setup surface, for the init/run distinction and the report. *)
        {
          e_id = "Lazyctrl_core.Network.create";
          e_shard = "setup";
          e_phase = Init;
        };
        {
          e_id = "Lazyctrl_core.Shard_net.create";
          e_shard = "setup";
          e_phase = Init;
        };
        {
          e_id = "Lazyctrl_core.Shard_net.bootstrap";
          e_shard = "setup";
          e_phase = Init;
        };
        {
          e_id = "Lazyctrl_core.Network.bootstrap";
          e_shard = "setup";
          e_phase = Init;
        };
        {
          e_id = "Lazyctrl_switch.Edge_switch.create";
          e_shard = "setup";
          e_phase = Init;
        };
        {
          e_id = "Lazyctrl_controller.Controller.create";
          e_shard = "setup";
          e_phase = Init;
        };
      ];
  }
