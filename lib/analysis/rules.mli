(** Rule identifiers and shared scoping knobs for the lint pass.

    Families: D00x determinism, A00x abstraction safety, P00x protocol
    invariants, E00x interprocedural effects, L00x layering, X00x
    interface hygiene, S00x domain safety, H00x hot-path allocation
    discipline.  See README "Static analysis" for the rule table. *)

val d_hashtbl_order : string
val d_raw_random : string
val d_wall_clock : string
val d_float_eq : string
val a_poly_compare : string
val a_poly_hash : string
val a_poly_eq : string
val p_failover_table : string
val p_proto_coverage : string
val e_indirect_random : string
val e_indirect_clock : string
val e_indirect_order : string
val l_layering : string
val l_lazy_separation : string
val x_dead_export : string
val x_missing_mli : string
val s_spec : string
val s_shared_mutable : string
val s_closure_escape : string
val s_init_write : string
val h_spec : string
val h_hot_alloc : string
val h_hot_indirect : string
val h_hot_raise : string
val h_alloc_calibration : string
val h_alloc_budget : string

(** Every rule id, in family order. *)
val all : string list

val is_known : string -> bool

(** Family letters selectable with the CLI's [--rules] flag. *)
val families : string list

val is_family : string -> bool

(** Leading letter of a rule id ("D001-..." -> "D"). *)
val family_of : string -> string

val has_suffix : suffix:string -> string -> bool

(** The one module allowed to draw raw randomness (the seeded PRNG). *)
val random_sanctuary : string -> bool

(** The one module allowed to touch host clocks (simulated time). *)
val clock_sanctuary : string -> bool

(** The one module whose raw hash-table folds are sanctioned (Det's
    key-snapshot primitives sort before observing). *)
val order_sanctuary : string -> bool

(** Record fields whose comparison with polymorphic [=] almost certainly
    wants the keyed module's [equal]. *)
val keyed_fields : string list
