(* Parsetree-level rule checks: determinism (D00x) and abstraction safety
   (A00x).  Everything here is syntactic — there is no type information —
   so the rules are heuristics tuned to this codebase's idioms, with an
   allowlist for the residue (see Allowlist). *)

open Asttypes
open Parsetree

type ctx = {
  file : string;
  mutable findings : Finding.t list;
  (* Character offsets of identifier occurrences that were sanctioned by
     their syntactic context (e.g. a [Hashtbl.fold] whose result is fed
     straight into [List.sort]).  Parents are visited before children, so
     marking happens before the child identifier is checked. *)
  sanctioned : (int, unit) Hashtbl.t;
}

let emit ctx ~loc ~rule ~severity message =
  ctx.findings <-
    Finding.make ~file:ctx.file ~line:(Parse_ml.line_of loc)
      ~col:(Parse_ml.col_of loc) ~rule ~severity message
    :: ctx.findings

let flatten_longident lid = try Some (Longident.flatten lid) with _ -> None

let ident_path e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> flatten_longident txt
  | _ -> None

(* The head identifier of an expression: the function of an application
   chain, or the identifier itself. *)
let head_ident e =
  match e.pexp_desc with Pexp_apply (fn, _) -> ident_path fn | _ -> ident_path e

(* --- identifier classifiers ---------------------------------------------- *)

(* Unordered traversal of a hash table: [Hashtbl.iter]/[fold]/[to_seq*]
   or the same operations on a [Hashtbl.Make] instance (conventionally
   bound as [Tbl] in this codebase, e.g. [Ids.Switch_id.Tbl.fold]). *)
let unordered_ops = [ "iter"; "fold"; "to_seq"; "to_seq_keys"; "to_seq_values" ]

let is_unordered_tbl_path path =
  match List.rev path with
  | op :: m :: _ ->
      (String.equal m "Hashtbl" || String.equal m "Tbl")
      && List.exists (String.equal op) unordered_ops
  | _ -> false

let is_random_path path =
  match path with
  | "Random" :: _ | "Stdlib" :: "Random" :: _ -> true
  | _ -> false

let wall_clocks =
  [
    [ "Unix"; "gettimeofday" ];
    [ "Unix"; "time" ];
    [ "Sys"; "time" ];
    (* bechamel's monotonic counter: fine for measuring the harness
       itself (lib/perf, allowlisted), never for simulated behavior. *)
    [ "Monotonic_clock"; "now" ];
  ]

let is_wall_clock_path path =
  let path =
    match path with "Stdlib" :: rest -> rest | _ -> path
  in
  List.exists (List.equal String.equal path) wall_clocks

let is_poly_compare_path path =
  match path with
  | [ "compare" ] | [ "Stdlib"; "compare" ] | [ "Pervasives"; "compare" ] ->
      true
  | _ -> false

let is_poly_hash_path path =
  match path with
  | [ "Hashtbl"; "hash" ]
  | [ "Stdlib"; "Hashtbl"; "hash" ]
  | [ "Hashtbl"; "seeded_hash" ] ->
      true
  | _ -> false

(* An ordering-insensitive sink: feeding an unordered traversal directly
   into one of these erases the order dependence. *)
let is_order_erasing_path path =
  match List.rev path with
  | f :: "List" :: _ ->
      List.exists (String.equal f)
        [ "sort"; "sort_uniq"; "stable_sort"; "fast_sort"; "length" ]
  | [ "length"; "Hashtbl" ] -> true
  | _ -> false

(* --- operand classifiers -------------------------------------------------- *)

let is_eq_op path =
  match path with
  | [ op ] -> List.exists (String.equal op) [ "="; "<>"; "=="; "!=" ]
  | _ -> false

let is_float_literal e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_apply (fn, [ (Nolabel, arg) ]) -> (
      (* unary minus: [-. 0.5] or [- 0.5] over a float literal *)
      match (ident_path fn, arg.pexp_desc) with
      | Some [ ("~-." | "~-") ], Pexp_constant (Pconst_float _) -> true
      | _ -> false)
  | _ -> false

let empty_construct e =
  match e.pexp_desc with
  | Pexp_construct ({ txt = Lident "None"; _ }, None) -> Some "None"
  | Pexp_construct ({ txt = Lident "[]"; _ }, None) -> Some "[]"
  | _ -> None

let keyed_field e =
  match e.pexp_desc with
  | Pexp_field (_, { txt; _ }) -> (
      match flatten_longident txt with
      | Some path -> (
          match List.rev path with
          | f :: _ when List.exists (String.equal f) Rules.keyed_fields ->
              Some f
          | _ -> None)
      | None -> None)
  | _ -> None

(* --- the traversal -------------------------------------------------------- *)

let sanction ctx e =
  (* Mark the head identifier of [e] (if it is an unordered traversal) as
     sanctioned by its context. *)
  match e.pexp_desc with
  | Pexp_apply (fn, _) -> (
      match ident_path fn with
      | Some path when is_unordered_tbl_path path ->
          Hashtbl.replace ctx.sanctioned fn.pexp_loc.loc_start.pos_cnum ()
      | _ -> ())
  | _ -> ()

let check_apply ctx fn args =
  match (ident_path fn, args) with
  (* Pipelines: [fold-app |> List.sort cmp] and [List.sort cmp @@ fold-app]. *)
  | Some [ "|>" ], [ (Nolabel, lhs); (Nolabel, rhs) ] -> (
      match head_ident rhs with
      | Some p when is_order_erasing_path p -> sanction ctx lhs
      | _ -> ())
  | Some [ "@@" ], [ (Nolabel, lhs); (Nolabel, rhs) ] -> (
      match head_ident lhs with
      | Some p when is_order_erasing_path p -> sanction ctx rhs
      | _ -> ())
  (* Direct wrap: [List.sort cmp (fold-app)]. *)
  | Some p, args when is_order_erasing_path p ->
      List.iter (fun (_, a) -> sanction ctx a) args
  (* Comparison operators. *)
  | Some p, [ (Nolabel, a); (Nolabel, b) ] when is_eq_op p ->
      let loc = fn.pexp_loc in
      if is_float_literal a || is_float_literal b then
        emit ctx ~loc ~rule:Rules.d_float_eq ~severity:Finding.Warning
          "float equality comparison: exact float tests are brittle and \
           order-of-operations sensitive; use Float.equal for deliberate \
           bit-exact tests, or compare against a tolerance";
      (match (empty_construct a, empty_construct b) with
      | Some "None", _ | _, Some "None" ->
          emit ctx ~loc ~rule:Rules.a_poly_eq ~severity:Finding.Warning
            "polymorphic equality with None descends into the payload type; \
             use Option.is_none/Option.is_some or a pattern match"
      | Some "[]", _ | _, Some "[]" ->
          emit ctx ~loc ~rule:Rules.a_poly_eq ~severity:Finding.Warning
            "polymorphic equality with []; use List.is_empty or a pattern \
             match"
      | _ -> (
          match (keyed_field a, keyed_field b) with
          | Some f, _ | _, Some f ->
              emit ctx ~loc ~rule:Rules.a_poly_eq ~severity:Finding.Warning
                (Printf.sprintf
                   "polymorphic equality on keyed field '.%s'; use the \
                    module's dedicated equal (Mac.equal, Ids.*.equal, ...)"
                   f)
          | None, None -> ()))
  | _ -> ()

let check_ident ctx loc path =
  if is_unordered_tbl_path path then (
    if not (Hashtbl.mem ctx.sanctioned loc.Location.loc_start.pos_cnum) then
      emit ctx ~loc ~rule:Rules.d_hashtbl_order ~severity:Finding.Warning
        (Printf.sprintf
           "%s iterates in hash-bucket order, which is not stable across \
            insertion histories or OCaml versions; use \
            Lazyctrl_util.Det.iter_sorted/fold_sorted/bindings_sorted, or \
            pipe the result straight into List.sort"
           (String.concat "." path)))
  else if is_random_path path then (
    if not (Rules.random_sanctuary ctx.file) then
      emit ctx ~loc ~rule:Rules.d_raw_random ~severity:Finding.Error
        (Printf.sprintf
           "%s bypasses the seeded simulation PRNG; draw from a \
            Lazyctrl_util.Prng stream (Prng.named for a stable substream)"
           (String.concat "." path)))
  else if is_wall_clock_path path then (
    if not (Rules.clock_sanctuary ctx.file) then
      emit ctx ~loc ~rule:Rules.d_wall_clock ~severity:Finding.Error
        (Printf.sprintf
           "%s reads the host clock; simulated time must come from \
            Lazyctrl_sim.Time / Engine.now"
           (String.concat "." path)))
  else if is_poly_compare_path path then
    emit ctx ~loc ~rule:Rules.a_poly_compare ~severity:Finding.Warning
      "polymorphic compare; use the keyed module's compare (Int.compare, \
       Float.compare, Mac.compare, Ids.*.compare, ...)"
  else if is_poly_hash_path path then
    emit ctx ~loc ~rule:Rules.a_poly_hash ~severity:Finding.Warning
      "polymorphic Hashtbl.hash; use the keyed module's hash"

let scan ~file structure =
  let ctx = { file; findings = []; sanctioned = Hashtbl.create 16 } in
  let expr (it : Ast_iterator.iterator) e =
    (match e.pexp_desc with
    | Pexp_apply (fn, args) -> check_apply ctx fn args
    | Pexp_ident { txt; _ } -> (
        match flatten_longident txt with
        | Some path -> check_ident ctx e.pexp_loc path
        | None -> ())
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let iterator = { Ast_iterator.default_iterator with expr } in
  iterator.structure iterator structure;
  List.sort Finding.compare ctx.findings
