(* The allowlist file (.lazyctrl-lint-allow) suppresses individual
   findings that are deliberate.  One entry per line:

       <repo-relative-path> <RULE-ID> <justification...>

   '#' starts a comment; blank lines are ignored.  The justification is
   mandatory — an entry without one is itself a (gating) finding, so the
   allowlist cannot silently rot into a blanket mute.  Entries that match
   nothing are reported as warnings so stale suppressions get cleaned up. *)

type entry = {
  path : string;
  rule : string;
  justification : string;
  line : int;
  mutable used : bool;
}

type t = { file : string; entries : entry list }

let split_ws s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> not (String.equal w ""))

(* Returns the parsed allowlist plus findings for malformed entries. *)
let parse_string ~file content =
  let entries = ref [] in
  let findings = ref [] in
  let bad line msg =
    findings :=
      Finding.make ~file ~line ~rule:"allowlist" ~severity:Finding.Error msg
      :: !findings
  in
  List.iteri
    (fun idx raw ->
      let lineno = idx + 1 in
      let line = String.trim raw in
      if String.equal line "" then ()
      else if Char.equal line.[0] '#' then ()
      else
        match split_ws line with
        | path :: rule :: (_ :: _ as just) ->
            if not (Rules.is_known rule) then
              bad lineno
                (Printf.sprintf "unknown rule id '%s' in allowlist entry" rule)
            else
              entries :=
                {
                  path;
                  rule;
                  justification = String.concat " " just;
                  line = lineno;
                  used = false;
                }
                :: !entries
        | [ _; _ ] ->
            bad lineno
              "allowlist entry has no justification; every suppression must \
               say why (format: <path> <RULE-ID> <why>)"
        | _ ->
            bad lineno
              "malformed allowlist entry (format: <path> <RULE-ID> <why>)"
    )
    (String.split_on_char '\n' content);
  ({ file; entries = List.rev !entries }, List.rev !findings)

let load path =
  if Sys.file_exists path then begin
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let content = really_input_string ic n in
    close_in ic;
    parse_string ~file:path content
  end
  else ({ file = path; entries = [] }, [])

(* Does the allowlist permit (file, rule)?  Marks matching entries used. *)
let permits t ~file ~rule =
  let matched = ref false in
  List.iter
    (fun e ->
      if String.equal e.rule rule && Rules.has_suffix ~suffix:e.path file
      then begin
        e.used <- true;
        matched := true
      end)
    t.entries;
  !matched

(* Stale entries: non-gating, but surfaced so they get pruned.  [relevant]
   restricts staleness to entries whose rule actually ran this invocation
   (under a [--rules] family filter an unmatched entry is not stale — its
   rule never had the chance to fire). *)
let unused ?(relevant = fun _ -> true) t =
  List.filter_map
    (fun e ->
      if e.used || not (relevant e.rule) then None
      else
        Some
          (Finding.make ~file:t.file ~line:e.line ~rule:"allowlist"
             ~severity:Finding.Warning
             (Printf.sprintf
                "stale allowlist entry: no %s finding in %s (remove it)"
                e.rule e.path)))
    t.entries
