(** Architecture layering enforcement (L00x).

    L001 checks the declared lib-directory dependency spec
    ({!allowed_deps}); L002 checks the paper's control-plane separation:
    nothing under [lib/switch] may reference [Lazyctrl_controller] at
    all, and [lib/controller] may reach into [Lazyctrl_switch] only
    through the [Proto] message grammar. *)

(** lib dir -> lib dirs it may reference.  Keep in sync with DESIGN.md's
    "Analysis architecture" section and the dune library graph. *)
val allowed_deps : (string * string list) list

(** The only switch modules the controller may name. *)
val controller_switch_surface : string list

val check : Callgraph.t -> Finding.t list
