(** Domain-safety checks (S00x): the code against the {!Ownership}
    spec, over the {!Callgraph}.

    S000 flags defects in the spec itself; S001 flags mutable state in a
    shard-local module reachable from run-phase entry points of two or
    more distinct shards (with witness call chains); S002 flags closures
    that mutate state and are registered on the engine event queue or a
    channel callback from a shard-local module; S003 flags writes to
    read-only-after-init state reachable from the run loop. *)

val check :
  spec:Ownership.spec ->
  cg:Callgraph.t ->
  structures:(string * Parsetree.structure) list ->
  unit ->
  Finding.t list
(** [structures] are the findable (non-aux) parsed files, repo-relative;
    only those the spec classifies shard-local are scanned for S002. *)
