(* Declared hot-path spec for the H00x allocation-discipline family.

   LazyCtrl's thesis is that the common case never leaves the edge: the
   L-FIB/G-FIB datapath absorbs most traffic and the controller only sees
   misses.  That makes the edge datapath — together with the event loop
   that drives it and the probe structures it leans on — the hot loop of
   the whole system, and ROADMAP item 2's scale-out only pays off if that
   loop stays allocation-free.  PR 4 hand-built the no-alloc pieces (flat
   int heap, word-level Bloom probes, G-FIB candidate iteration); this
   spec is what *keeps* them that way.

   A hot entry names a definition (Callgraph's naming) whose whole static
   call region must be allocation-free, and ties it to a measurement
   probe (a bench/main.exe hotpath target name) so the static verdict is
   cross-validated against measured minor-words-per-op (Hotbudget).  A
   cold boundary names a definition where the discipline deliberately
   stops — reachable from a hot entry but excused, with a written
   justification (cold-start growth, first-packet learning, the punt
   path).  Undocumented boundaries are exactly the rot this spec exists
   to prevent, so the justification is mandatory.

   Serializable in the allowlist's line format, like Ownership. *)

type entry = { h_probe : string; h_id : string }
type boundary = { b_id : string; b_why : string }
type spec = { hot : entry list; cold : boundary list }

(* Probe names, deduplicated: several entries may share one probe (the
   four-way edge dispatch is measured as a single datapath probe). *)
let probes spec =
  List.sort_uniq String.compare (List.map (fun e -> e.h_probe) spec.hot)

(* --- validation ------------------------------------------------------------ *)

(* Spec-level defects, as messages; Hotpath turns them into H000 findings
   alongside the resolution/staleness checks that need the call graph. *)
let validate spec =
  let errs = ref [] in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun e ->
      if Hashtbl.mem seen e.h_id then
        errs :=
          Printf.sprintf "duplicate hot entry '%s'" e.h_id :: !errs
      else Hashtbl.add seen e.h_id ())
    spec.hot;
  let seen_cold = Hashtbl.create 16 in
  List.iter
    (fun b ->
      if Hashtbl.mem seen_cold b.b_id then
        errs :=
          Printf.sprintf "duplicate cold boundary '%s'" b.b_id :: !errs
      else Hashtbl.add seen_cold b.b_id ();
      if Hashtbl.mem seen b.b_id then
        errs :=
          Printf.sprintf
            "'%s' is declared both hot entry and cold boundary" b.b_id
          :: !errs;
      if String.equal (String.trim b.b_why) "" then
        errs :=
          Printf.sprintf
            "cold boundary '%s' has no justification; say why allocation \
             is acceptable there (format: cold <def-id> -- <why>)"
            b.b_id
          :: !errs)
    spec.cold;
  if List.is_empty spec.hot then
    errs := "hot-path spec declares no hot entries" :: !errs;
  List.rev !errs

(* --- serialization --------------------------------------------------------- *)

let to_string spec =
  let buf = Buffer.create 1024 in
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "hot %s %s\n" e.h_probe e.h_id))
    spec.hot;
  List.iter
    (fun b ->
      Buffer.add_string buf
        (Printf.sprintf "cold %s -- %s\n" b.b_id b.b_why))
    spec.cold;
  Buffer.contents buf

let split_ws s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> not (String.equal w ""))

let parse content =
  let hot = ref [] and cold = ref [] and err = ref None in
  let fail lineno msg =
    if Option.is_none !err then
      err := Some (Printf.sprintf "line %d: %s" lineno msg)
  in
  List.iteri
    (fun idx raw ->
      let lineno = idx + 1 in
      let line, why =
        let n = String.length raw in
        let rec find i =
          if i + 4 > n then None
          else if String.equal (String.sub raw i 4) " -- " then Some i
          else find (i + 1)
        in
        match find 0 with
        | Some i ->
            ( String.sub raw 0 i,
              Some (String.trim (String.sub raw (i + 4) (n - i - 4))) )
        | None -> (raw, None)
      in
      let line = String.trim line in
      if String.equal line "" then ()
      else if Char.equal line.[0] '#' then ()
      else
        match (split_ws line, why) with
        | [ "hot"; probe; id ], None ->
            hot := { h_probe = probe; h_id = id } :: !hot
        | [ "hot"; _; _ ], Some _ ->
            fail lineno "hot entries carry no justification clause"
        | [ "cold"; id ], Some why -> cold := { b_id = id; b_why = why } :: !cold
        | [ "cold"; id ], None ->
            fail lineno
              (Printf.sprintf
                 "cold boundary '%s' needs a justification: cold <def-id> \
                  -- <why>"
                 id)
        | _, _ ->
            fail lineno
              "expected 'hot <probe> <def-id>' or 'cold <def-id> -- <why>'")
    (String.split_on_char '\n' content);
  match !err with
  | Some msg -> Error msg
  | None -> Ok { hot = List.rev !hot; cold = List.rev !cold }

(* --- the repo's declared spec ---------------------------------------------- *)

(* Keep in sync with DESIGN.md §10, ARCHITECTURE.md's hot-region note,
   the hotpath probe targets in bench/main.ml, and HOTPATH_budget.  Probe
   names are the bench target's measurement names, prefixed "hp-". *)
let default =
  {
    hot =
      [
        (* The simulator's event loop: one step per event, millions per
           run — this is the multiplier under everything else. *)
        { h_probe = "hp-engine-step"; h_id = "Lazyctrl_sim.Engine.step" };
        (* The Fig. 5 edge datapath: packets from hosts and from the
           underlay.  (The controller/peer message dispatchers are the
           lazy *slow* path by the paper's own argument — controller
           involvement is what the design makes rare — so they are not
           hot entries.) *)
        {
          h_probe = "hp-edge-datapath";
          h_id = "Lazyctrl_switch.Edge_switch.handle_from_host";
        };
        {
          h_probe = "hp-edge-datapath";
          h_id = "Lazyctrl_switch.Edge_switch.handle_underlay";
        };
        (* The per-packet probe structures the datapath leans on. *)
        { h_probe = "hp-bloom-query"; h_id = "Lazyctrl_bloom.Bloom.mem" };
        {
          h_probe = "hp-lfib-lookup";
          h_id = "Lazyctrl_switch.Lfib.lookup_mac";
        };
        {
          h_probe = "hp-gfib-probe";
          h_id = "Lazyctrl_switch.Gfib.iter_candidates_mac";
        };
        (* The wire codec's decode: every control-plane message crosses a
           channel as bytes (DESIGN.md §13), and the miss-path frames —
           buffered Packet_in, Flow_mod — are the decode hot path.  The
           decoded message value itself is a necessary allocation, so the
           probe's budget in HOTPATH_budget is nonzero and prices exactly
           that materialization (allowlisted H001 residue in wire.ml). *)
        { h_probe = "hp-wire-decode"; h_id = "Lazyctrl_wire.Wire.decode" };
      ];
    cold =
      [
        {
          b_id = "Lazyctrl_sim.Engine.grow_slots";
          b_why =
            "cold-start table growth: amortized doubling, quiet once the \
             slot table reaches steady state";
        };
        {
          b_id = "Lazyctrl_switch.Edge_switch.punt";
          b_why =
            "the punt is the controller-involvement slow path; LazyCtrl's \
             whole design makes it rare, and Fig. 7's laziness verdicts \
             plus the trace recorder keep that honest";
        };
        {
          b_id = "Lazyctrl_switch.Lfib.learn";
          b_why =
            "first-packet host learning: bounded by host arrivals, not \
             packet rate";
        };
        {
          b_id = "Lazyctrl_switch.Edge_switch.advertise_pending";
          b_why =
            "state advertisement only fires when the L-FIB changed (host \
             learned/forgotten): bounded by host churn, and it is the \
             lazy control plane itself, not forwarding";
        };
        {
          b_id = "Lazyctrl_switch.Edge_switch.handle_arp_request";
          b_why =
            "address resolution is first-contact work: established flows \
             take data_path and never re-enter it, so its rate is bounded \
             by new-flow arrivals (the paper's lazy control events)";
        };
        {
          b_id = "Lazyctrl_switch.Edge_switch.flood_local";
          b_why =
            "tenant-scoped flooding is the broadcast fallback action, \
             bounded by broadcast rate, not unicast forwarding";
        };
        {
          b_id = "Lazyctrl_switch.Edge_switch.report_false_positive";
          b_why =
            "misdelivery telemetry (off by default): fires at the Bloom \
             false-positive rate epsilon, not the packet rate";
        };
        {
          b_id = "Lazyctrl_switch.Gfib.rebuild_peer_cache";
          b_why =
            "peer-cache rebuild after a membership change \
             (set_peer/drop_peer): amortized over every packet probed \
             between group reconfigurations";
        };
        {
          b_id = "Lazyctrl_switch.Edge_switch.trace";
          b_why =
            "flight-recorder emission: the whole body sits under the \
             Tracer.enabled guard, so the untraced fast path allocates \
             nothing (the trace-overhead bench keeps that honest); with \
             tracing on, recording the event is the point";
        };
        {
          b_id = "Lazyctrl_switch.Edge_switch.trace_pkt";
          b_why =
            "flight-recorder emission, same guard discipline as \
             Edge_switch.trace";
        };
      ];
  }
