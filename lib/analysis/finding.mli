(** A single rule violation, pinned to a source location. *)

type severity = Error | Warning

type t = {
  file : string;
  line : int;
  col : int;
  rule : string;
  severity : severity;
  message : string;
}

val make :
  file:string ->
  line:int ->
  ?col:int ->
  rule:string ->
  severity:severity ->
  string ->
  t

(** Total order by (file, line, col, rule) — the report order. *)
val compare : t -> t -> int

val to_string : t -> string

(** Escape a string for embedding in a JSON literal. *)
val json_escape : string -> string

val to_json : t -> string
