(* Rule identifiers and shared scoping knobs for the lint pass.

   Rule families (see README "Static analysis"):
   - D00x: determinism — anything that can make two runs of the simulator
     with the same seed diverge.
   - A00x: abstraction safety — polymorphic structural compare/equal/hash
     applied where a keyed module exports dedicated operations.
   - P00x: protocol invariants — the wheel failure-inference table and the
     controller/switch message grammar stay total and consistent.
   - E00x: interprocedural effects — nondeterminism reached *indirectly*
     through helpers, inferred over the cross-module call graph.
   - L00x: layering — the declared architecture spec, including the
     paper's control-plane separation (switch never leans on controller
     internals; the controller drives switches only through Proto).
   - X00x: interface hygiene — dead exports and missing .mli files.
   - S00x: domain safety — the code against the shared-state ownership
     spec (Ownership/Shard), gating the multicore shard refactor.
   - H00x: hot-path allocation discipline — the code against the declared
     hot-path spec (Hotspec/Hotpath), cross-validated against measured
     minor-words-per-op budgets (Hotbudget). *)

let d_hashtbl_order = "D001-hashtbl-order"
let d_raw_random = "D002-raw-random"
let d_wall_clock = "D003-wall-clock"
let d_float_eq = "D004-float-eq"
let a_poly_compare = "A001-poly-compare"
let a_poly_hash = "A002-poly-hash"
let a_poly_eq = "A003-poly-eq"
let p_failover_table = "P001-failover-table"
let p_proto_coverage = "P002-proto-coverage"
let e_indirect_random = "E001-indirect-random"
let e_indirect_clock = "E002-indirect-clock"
let e_indirect_order = "E003-indirect-hashtbl-order"
let l_layering = "L001-layering"
let l_lazy_separation = "L002-lazy-separation"
let x_dead_export = "X001-dead-export"
let x_missing_mli = "X002-missing-mli"
let s_spec = "S000-ownership-spec"
let s_shared_mutable = "S001-shared-mutable"
let s_closure_escape = "S002-closure-escape"
let s_init_write = "S003-init-write"
let h_spec = "H000-hotpath-spec"
let h_hot_alloc = "H001-hot-alloc"
let h_hot_indirect = "H002-hot-indirect"
let h_hot_raise = "H003-hot-raise"
let h_alloc_calibration = "H004-alloc-calibration"
let h_alloc_budget = "H005-alloc-budget"

let all =
  [
    d_hashtbl_order;
    d_raw_random;
    d_wall_clock;
    d_float_eq;
    a_poly_compare;
    a_poly_hash;
    a_poly_eq;
    p_failover_table;
    p_proto_coverage;
    e_indirect_random;
    e_indirect_clock;
    e_indirect_order;
    l_layering;
    l_lazy_separation;
    x_dead_export;
    x_missing_mli;
    s_spec;
    s_shared_mutable;
    s_closure_escape;
    s_init_write;
    h_spec;
    h_hot_alloc;
    h_hot_indirect;
    h_hot_raise;
    h_alloc_calibration;
    h_alloc_budget;
  ]

let is_known r = List.exists (String.equal r) all

(* Rule families, selectable with the CLI's [--rules] flag.  The family of
   a rule is the leading letter of its identifier; "allowlist" diagnostics
   (malformed entries) are not a family and always gate. *)
let families = [ "D"; "A"; "P"; "E"; "L"; "X"; "S"; "H" ]
let is_family f = List.exists (String.equal f) families

let family_of rule =
  if String.length rule > 0 then String.sub rule 0 1 else rule

let has_suffix ~suffix s =
  let ls = String.length s and lx = String.length suffix in
  ls >= lx && String.equal (String.sub s (ls - lx) lx) suffix

(* The one module allowed to draw raw randomness: everything else must go
   through the seeded, splittable PRNG. *)
let random_sanctuary file = has_suffix ~suffix:"lib/util/prng.ml" file

(* The one module allowed to touch host clocks: simulated time.  (It does
   not today — simulated time is purely virtual — but the carve-out keeps
   the rule meaningful if a real-time bridge is ever added there.) *)
let clock_sanctuary file = has_suffix ~suffix:"lib/sim/time.ml" file

(* The one module whose raw hash-table folds are sanctioned: Det's
   key-snapshot primitives erase bucket order with an explicit sort, so
   the effect pass treats it as a barrier — reaching unordered iteration
   *through* Det is the endorsed route. *)
let order_sanctuary file = has_suffix ~suffix:"lib/util/det.ml" file

(* Record fields whose comparison with polymorphic [=] almost certainly
   wants the keyed module's [equal] instead. *)
let keyed_fields = [ "mac"; "ip"; "tenant"; "designated"; "origin"; "id" ]
