(* Interface hygiene (X00x).

   X001 — dead exports: a [val] declared in a library's .mli that no
   other scanned file (including the test suites, scanned
   reference-only) ever names.  The export is the dead part — the value
   may well be used inside its own module; the fix is to drop it from
   the interface (or allowlist it with the reason the API keeps it).
   Resolution is conservative: any opaque use of a module (functor
   argument, [include], first-class pack, re-exported alias) marks every
   export of that module as live, so only names with no plausible
   reference anywhere are reported.

   X002 — missing interfaces: a [lib/] .ml with no adjacent .mli.  Every
   library module carries one so the public surface is explicit — and so
   X001 has something to check. *)

open Parsetree

let loc_line (loc : Location.t) = loc.loc_start.pos_lnum
let loc_col (loc : Location.t) = loc.loc_start.pos_cnum - loc.loc_start.pos_bol

(* Exported value paths of a signature, recursing into concrete
   submodule signatures ([module M : sig ... end]).  Opaque module types
   ([module M : SOME_SIG]) cannot be enumerated syntactically and are
   skipped — conservative in the no-false-positive direction. *)
let rec exported_vals prefix items =
  List.concat_map
    (fun item ->
      match item.psig_desc with
      | Psig_value vd ->
          [ (prefix @ [ vd.pval_name.txt ], vd.pval_loc) ]
      | Psig_module md -> (
          match (md.pmd_name.txt, md.pmd_type.pmty_desc) with
          | Some name, Pmty_signature sub ->
              exported_vals (prefix @ [ name ]) sub
          | _ -> [])
      | _ -> [])
    items

let mli_of_ml ml = Filename.remove_extension ml ^ ".mli"

let dead_exports cg ~intfs =
  let findings = ref [] in
  List.iter
    (fun (mli_file, signature) ->
      let ml_file = Filename.remove_extension mli_file ^ ".ml" in
      (* only judge interfaces whose implementation we indexed *)
      let fi =
        List.find_opt
          (fun (fi : Callgraph.finfo) ->
            String.equal fi.Callgraph.f_file ml_file)
          (Callgraph.files cg)
      in
      match fi with
      | None -> ()
      | Some fi -> (
          match fi.Callgraph.f_lib with
          | None -> ()
          | Some d ->
              let root =
                [ Callgraph.wrapper_of_lib d; fi.Callgraph.f_mod ]
              in
              List.iter
                (fun (path, loc) ->
                  let qual = root @ path in
                  let users =
                    Callgraph.referencing_files cg ~qual ~owner_file:ml_file
                  in
                  let users =
                    List.filter
                      (fun u -> not (String.equal u mli_file))
                      users
                  in
                  if List.is_empty users then
                    findings :=
                      Finding.make ~file:mli_file ~line:(loc_line loc)
                        ~col:(loc_col loc) ~rule:Rules.x_dead_export
                        ~severity:Finding.Warning
                        (Printf.sprintf
                           "exported value %s is never referenced outside \
                            its module (tests, benches, examples and bin \
                            included); drop it from the interface or \
                            allowlist the reason the API keeps it"
                           (String.concat "." (fi.Callgraph.f_mod :: path)))
                      :: !findings)
                (exported_vals [] signature)))
    (List.sort (fun (a, _) (b, _) -> String.compare a b) intfs);
  List.sort Finding.compare !findings

let missing_mli ~ml_files ~mli_files =
  List.filter_map
    (fun ml ->
      if not (Callgraph.has_prefix ~prefix:"lib/" ml) then None
      else
        let want = mli_of_ml ml in
        if List.exists (String.equal want) mli_files then None
        else
          Some
            (Finding.make ~file:ml ~line:1 ~rule:Rules.x_missing_mli
               ~severity:Finding.Warning
               (Printf.sprintf
                  "library module without an interface: add %s so the \
                   public surface is explicit (and X001 can police it)"
                  want)))
    (List.sort String.compare ml_files)
