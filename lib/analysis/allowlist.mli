(** The allowlist file (.lazyctrl-lint-allow) suppresses individual
    findings that are deliberate.  One entry per line:

    {v <repo-relative-path> <RULE-ID> <justification...> v}

    The justification is mandatory — an entry without one is itself a
    gating finding, so the allowlist cannot silently rot into a blanket
    mute. *)

type t

(** Parse allowlist text; returns the table plus findings for malformed
    entries (reported under the pseudo-rule "allowlist"). *)
val parse_string : file:string -> string -> t * Finding.t list

(** Load from disk; a missing file is an empty allowlist. *)
val load : string -> t * Finding.t list

(** Does the allowlist permit (file, rule)?  Matching entries are marked
    used for {!unused}. *)
val permits : t -> file:string -> rule:string -> bool

(** Stale entries as warnings.  [relevant] restricts staleness to
    entries whose rule family actually ran this invocation (under a
    [--rules] filter, an unmatched entry is not stale). *)
val unused : ?relevant:(string -> bool) -> t -> Finding.t list
