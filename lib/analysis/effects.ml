(* Interprocedural effect inference (E00x).

   Every top-level definition gets an effect signature over the lattice
   {Rng, Clock, Unordered, Mutation, Io} (sets ordered by inclusion).
   Signatures are seeded at known primitives — the same classifications
   the per-file D-rules use, so a sort-sanctioned [Hashtbl.fold] is not a
   seed — and propagated transitively over the Callgraph, so a
   [lib/util] helper that reads [Sys.time] taints every caller that can
   reach it, however many hops away.

   Sanctuary modules are *barriers*: [lib/util/prng.ml] legitimately
   draws raw randomness (that is the seeded PRNG), [lib/sim/time.ml] may
   touch host clocks, and [lib/util/det.ml]'s key-snapshot fold erases
   traversal order with an explicit sort.  Their effects do not
   propagate to callers — going through them is precisely the endorsed
   route — while a direct seed anywhere else leaks to every caller.

   Only Rng, Clock and Unordered gate (rules E001/E002/E003, mirroring
   D002/D003/D001).  Mutation and Io are inferred and reported through
   [signature_of] for tooling, but an event-driven simulator mutates
   state and the experiment harnesses print; flagging those would be
   noise. *)

type eff = Rng | Clock | Unordered | Mutation | Io

let eff_name = function
  | Rng -> "rng"
  | Clock -> "clock"
  | Unordered -> "unordered-iteration"
  | Mutation -> "mutation"
  | Io -> "io"

let all_effects = [ Rng; Clock; Unordered; Mutation; Io ]

module ESet = struct
  type t = int

  let empty = 0
  let bit = function Rng -> 1 | Clock -> 2 | Unordered -> 4 | Mutation -> 8 | Io -> 16
  let add e s = s lor bit e
  let mem e s = s land bit e <> 0
  let diff a b = a land lnot b
  let to_list s = List.filter (fun e -> mem e s) all_effects
end

(* Where an effect entered a definition's signature: directly at a
   primitive, or inherited from a callee. *)
type provenance = Seed of string | Inherited of string (* callee def id *)

type sig_ = { effects : ESet.t; direct : ESet.t }

type table = {
  cg : Callgraph.t;
  sigs : (string, sig_) Hashtbl.t;  (* def id -> signature *)
  prov : (string, provenance) Hashtbl.t;  (* def id ^ "/" ^ eff -> provenance *)
}

(* --- barriers -------------------------------------------------------------- *)

let barrier_mask file =
  let m = ref ESet.empty in
  if Rules.random_sanctuary file then m := ESet.add Rng !m;
  if Rules.clock_sanctuary file then m := ESet.add Clock !m;
  if Rules.order_sanctuary file then m := ESet.add Unordered !m;
  !m

(* --- seeds ----------------------------------------------------------------- *)

let strip_stdlib = function "Stdlib" :: rest -> rest | p -> p

let mutation_modules = [ "Queue"; "Stack"; "Buffer"; "Bytes"; "Atomic" ]

let hashtbl_mutators =
  [ "add"; "replace"; "remove"; "reset"; "clear"; "filter_map_inplace" ]

let array_mutators = [ "set"; "unsafe_set"; "fill"; "blit"; "sort" ]

let is_mutation_path path =
  match strip_stdlib path with
  | [ op ] -> List.exists (String.equal op) [ ":="; "incr"; "decr" ]
  | m :: rest -> (
      List.exists (String.equal m) mutation_modules
      || match (m, List.rev rest) with
         | "Hashtbl", op :: _ | "Tbl", op :: _ ->
             List.exists (String.equal op) hashtbl_mutators
         | "Array", op :: _ | "Float_array", op :: _ ->
             List.exists (String.equal op) array_mutators
         | _ -> false)
  | [] -> false

let io_prefixed =
  [ "print_"; "prerr_"; "output_"; "open_in"; "open_out" ]

let io_bare = [ "read_line"; "read_int"; "flush"; "close_in"; "close_out" ]

let io_modules = [ "Out_channel"; "In_channel" ]

let is_io_path path =
  match strip_stdlib path with
  | [ f ] ->
      List.exists (fun p -> Callgraph.has_prefix ~prefix:p f) io_prefixed
      || List.exists (String.equal f) io_bare
  | m :: rest -> (
      List.exists (String.equal m) io_modules
      || match (m, List.rev rest) with
         | ("Printf" | "Format"), op :: _ ->
             List.exists (String.equal op) [ "printf"; "eprintf" ]
         | "Sys", op :: _ -> String.equal op "command"
         | _ -> false)
  | [] -> false

(* Gating seeds come from the per-file AST findings (pre-allowlist), so
   the effect pass agrees exactly with the D-rules on what counts as a
   hazard — including the sort-sink sanctioning. *)
let eff_of_rule rule =
  if String.equal rule Rules.d_raw_random then Some Rng
  else if String.equal rule Rules.d_wall_clock then Some Clock
  else if String.equal rule Rules.d_hashtbl_order then Some Unordered
  else None

let seed_label = function
  | Rng -> "a raw Random draw"
  | Clock -> "a host clock read"
  | Unordered -> "an unordered Hashtbl traversal"
  | Mutation -> "a state mutation"
  | Io -> "channel I/O"

(* --- inference ------------------------------------------------------------- *)

let prov_key id e = id ^ "/" ^ eff_name e

let infer cg ~ast_findings =
  let sigs = Hashtbl.create 512 in
  let prov = Hashtbl.create 512 in
  (* direct seeds *)
  List.iter
    (fun fi ->
      if not fi.Callgraph.f_aux then
        List.iter
          (fun (d : Callgraph.def) ->
            let direct = ref ESet.empty in
            let seed e =
              if not (ESet.mem e !direct) then begin
                direct := ESet.add e !direct;
                Hashtbl.replace prov
                  (prov_key d.Callgraph.d_id e)
                  (Seed (seed_label e))
              end
            in
            if d.Callgraph.d_mutates then seed Mutation;
            List.iter
              (fun (raw, _, _) ->
                if is_mutation_path raw then seed Mutation;
                if is_io_path raw then seed Io)
              d.Callgraph.d_refs;
            Hashtbl.replace sigs d.Callgraph.d_id
              { effects = !direct; direct = !direct })
          fi.Callgraph.f_defs)
    (Callgraph.files cg);
  List.iter
    (fun (file, findings) ->
      List.iter
        (fun (f : Finding.t) ->
          match eff_of_rule f.rule with
          | None -> ()
          | Some e -> (
              match
                Callgraph.def_spanning cg ~file ~line:f.line ~col:f.col
              with
              | None -> ()
              | Some d ->
                  let id = d.Callgraph.d_id in
                  let s =
                    match Hashtbl.find_opt sigs id with
                    | Some s -> s
                    | None -> { effects = ESet.empty; direct = ESet.empty }
                  in
                  if not (ESet.mem e s.direct) then begin
                    Hashtbl.replace prov (prov_key id e) (Seed (seed_label e));
                    Hashtbl.replace sigs id
                      {
                        effects = ESet.add e s.effects;
                        direct = ESet.add e s.direct;
                      }
                  end))
        findings)
    ast_findings;
  let t = { cg; sigs; prov } in
  (* propagate to a fixpoint, smallest callee id wins the witness *)
  let exported id =
    match Hashtbl.find_opt sigs id with
    | None -> ESet.empty
    | Some s -> (
        match Callgraph.find_def cg id with
        | None -> s.effects
        | Some d -> ESet.diff s.effects (barrier_mask d.Callgraph.d_file))
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun id ->
        let s =
          match Hashtbl.find_opt sigs id with
          | Some s -> s
          | None -> { effects = ESet.empty; direct = ESet.empty }
        in
        let incoming = ref s.effects in
        List.iter
          (fun callee ->
            let ex = exported callee in
            List.iter
              (fun e ->
                if ESet.mem e ex && not (ESet.mem e !incoming) then begin
                  incoming := ESet.add e !incoming;
                  Hashtbl.replace prov (prov_key id e) (Inherited callee)
                end)
              all_effects)
          (Callgraph.callees cg id);
        if not (Int.equal !incoming s.effects) then begin
          Hashtbl.replace sigs id { s with effects = !incoming };
          changed := true
        end)
      (Callgraph.def_ids cg)
  done;
  t

(* --- queries & findings ---------------------------------------------------- *)

let signature_of t id =
  match Hashtbl.find_opt t.sigs id with
  | Some s -> List.map eff_name (ESet.to_list s.effects)
  | None -> []

let rec chain t id e ~depth =
  if depth > 8 then [ "..." ]
  else
    match Hashtbl.find_opt t.prov (prov_key id e) with
    | Some (Seed label) -> [ label ]
    | Some (Inherited callee) -> callee :: chain t callee e ~depth:(depth + 1)
    | None -> []

let finding_rule = function
  | Rng -> Some (Rules.e_indirect_random, Finding.Error)
  | Clock -> Some (Rules.e_indirect_clock, Finding.Error)
  | Unordered -> Some (Rules.e_indirect_order, Finding.Warning)
  | Mutation | Io -> None

let advice = function
  | Rng -> "draw from a Lazyctrl_util.Prng stream instead"
  | Clock -> "simulated code must stay on Engine.now / Lazyctrl_sim.Time"
  | Unordered ->
      "sort before observing, or go through Lazyctrl_util.Det at the source"
  | Mutation | Io -> ""

let findings t =
  let out = ref [] in
  List.iter
    (fun fi ->
      if not fi.Callgraph.f_aux then
        List.iter
          (fun (d : Callgraph.def) ->
            match Hashtbl.find_opt t.sigs d.Callgraph.d_id with
            | None -> ()
            | Some s ->
                let inherited = ESet.diff s.effects s.direct in
                let blocked = barrier_mask d.Callgraph.d_file in
                List.iter
                  (fun e ->
                    match finding_rule e with
                    | None -> ()
                    | Some (rule, severity) ->
                        if ESet.mem e inherited && not (ESet.mem e blocked)
                        then
                          let path =
                            String.concat " -> "
                              (d.Callgraph.d_id
                               :: chain t d.Callgraph.d_id e ~depth:0)
                          in
                          out :=
                            Finding.make ~file:d.Callgraph.d_file
                              ~line:d.Callgraph.d_line ~col:d.Callgraph.d_col
                              ~rule ~severity
                              (Printf.sprintf
                                 "indirectly reaches %s through the call \
                                  graph: %s; %s"
                                 (seed_label e) path (advice e))
                            :: !out)
                  all_effects)
          fi.Callgraph.f_defs)
    (Callgraph.files t.cg);
  List.sort Finding.compare !out
