(* Token-level fallback scanner, used when a file does not parse (e.g. a
   work-in-progress source or cpp-style templated snippet).  It blanks
   comments and string literals, then looks for hazard substrings on each
   line.  Coarser than Ast_rules — no sort-sink sanctioning — but it keeps
   the determinism gates live even on unparsable input. *)

(* Replace comment and string-literal bodies with spaces, preserving line
   structure so reported line numbers stay accurate. *)
let blank_comments_and_strings src =
  let n = String.length src in
  let buf = Bytes.of_string src in
  let put i c = if not (Char.equal c '\n') then Bytes.set buf i ' ' in
  let i = ref 0 in
  let comment_depth = ref 0 in
  let in_string = ref false in
  while !i < n do
    let c = src.[!i] in
    if !in_string then begin
      if Char.equal c '\\' && !i + 1 < n then begin
        put !i c;
        put (!i + 1) src.[!i + 1];
        i := !i + 2
      end
      else begin
        if Char.equal c '"' then in_string := false;
        put !i c;
        incr i
      end
    end
    else if !comment_depth > 0 then begin
      if Char.equal c '(' && !i + 1 < n && Char.equal src.[!i + 1] '*' then begin
        incr comment_depth;
        put !i c;
        put (!i + 1) '*';
        i := !i + 2
      end
      else if Char.equal c '*' && !i + 1 < n && Char.equal src.[!i + 1] ')'
      then begin
        decr comment_depth;
        put !i c;
        put (!i + 1) ')';
        i := !i + 2
      end
      else begin
        put !i c;
        incr i
      end
    end
    else if Char.equal c '(' && !i + 1 < n && Char.equal src.[!i + 1] '*' then begin
      comment_depth := 1;
      put !i c;
      put (!i + 1) '*';
      i := !i + 2
    end
    else if Char.equal c '"' then begin
      in_string := true;
      put !i c;
      incr i
    end
    else incr i
  done;
  Bytes.to_string buf

let contains ~needle hay =
  let ln = String.length needle and lh = String.length hay in
  let rec at i =
    if i + ln > lh then false
    else if String.equal (String.sub hay i ln) needle then true
    else at (i + 1)
  in
  ln > 0 && at 0

let patterns ~file =
  let base =
    [
      ("Hashtbl.iter", Rules.d_hashtbl_order, Finding.Warning);
      ("Hashtbl.fold", Rules.d_hashtbl_order, Finding.Warning);
      ("Tbl.iter", Rules.d_hashtbl_order, Finding.Warning);
      ("Tbl.fold", Rules.d_hashtbl_order, Finding.Warning);
      ("Hashtbl.to_seq", Rules.d_hashtbl_order, Finding.Warning);
      ("Hashtbl.hash", Rules.a_poly_hash, Finding.Warning);
    ]
  in
  let base =
    if Rules.random_sanctuary file then base
    else ("Random.", Rules.d_raw_random, Finding.Error) :: base
  in
  if Rules.clock_sanctuary file then base
  else
    ("Unix.gettimeofday", Rules.d_wall_clock, Finding.Error)
    :: ("Unix.time", Rules.d_wall_clock, Finding.Error)
    :: ("Sys.time", Rules.d_wall_clock, Finding.Error)
    :: ("Monotonic_clock.now", Rules.d_wall_clock, Finding.Error)
    :: base

let scan ~file ~src =
  let clean = blank_comments_and_strings src in
  let lines = String.split_on_char '\n' clean in
  let pats = patterns ~file in
  let findings = ref [] in
  List.iteri
    (fun idx line ->
      List.iter
        (fun (needle, rule, severity) ->
          if
            contains ~needle line
            && not
                 (List.exists
                    (fun (f : Finding.t) ->
                      Int.equal f.line (idx + 1) && String.equal f.rule rule)
                    !findings)
          then
            findings :=
              Finding.make ~file ~line:(idx + 1) ~rule ~severity
                (Printf.sprintf
                   "(token scan; file did not parse) found '%s' — see the \
                    %s rule" needle rule)
              :: !findings)
        pats)
    lines;
  List.sort Finding.compare !findings
