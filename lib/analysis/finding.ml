(* A single rule violation, pinned to a source location. *)

type severity = Error | Warning

type t = {
  file : string;
  line : int;
  col : int;
  rule : string;
  severity : severity;
  message : string;
}

let make ~file ~line ?(col = 0) ~rule ~severity message =
  { file; line; col; rule; severity; message }

let severity_string = function Error -> "error" | Warning -> "warning"

let compare a b =
  match String.compare a.file b.file with
  | 0 -> (
      match Int.compare a.line b.line with
      | 0 -> (
          match Int.compare a.col b.col with
          | 0 -> String.compare a.rule b.rule
          | c -> c)
      | c -> c)
  | c -> c

let pp fmt t =
  Format.fprintf fmt "%s:%d:%d: [%s] %s: %s" t.file t.line t.col t.rule
    (severity_string t.severity) t.message

let to_string t = Format.asprintf "%a" pp t

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json t =
  Printf.sprintf
    {|{"file":"%s","line":%d,"col":%d,"rule":"%s","severity":"%s","message":"%s"}|}
    (json_escape t.file) t.line t.col (json_escape t.rule)
    (severity_string t.severity)
    (json_escape t.message)
