(** Dynamic cross-validation for the H00x family: measured
    minor-words-per-op per probe against the committed budget file, and
    against the static verdict from {!Hotpath} — disagreement both ways
    is a finding (H004 calibration gap, H005 budget defects).  Pure
    bookkeeping over (probe, words/op) pairs; no perf dependency. *)

type entry = { e_probe : string; e_words : float; e_line : int }

(** Measured minor words/op at or below this is counter noise; a single
    boxed option costs 2 words/op, well above it. *)
val epsilon : float

type verdict =
  | Clean
  | Within_budget
  | Calibration_gap
  | Over_budget
  | Unmeasured
  | Unbudgeted

val verdict_name : verdict -> string

type row = {
  r_probe : string;
  r_static_sites : int;
  r_budget : float option;
  r_measured : float option;
  r_verdict : verdict;
}

(** Parse a budget file (["<probe> <minor-words-per-op> [-- note]"], [#]
    comments): entries plus parse errors as messages. *)
val parse : string -> entry list * string list

(** One row per declared probe plus the H004/H005 findings.
    [budget_file] is the repo-relative path findings attribute to;
    [measured] maps probe name to measured minor words/op. *)
val evaluate :
  budget_file:string ->
  probes:Hotpath.probe_status list ->
  budget:entry list ->
  measured:(string * float) list ->
  row list * Finding.t list
