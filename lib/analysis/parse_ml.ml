(* Parse an .ml source into a Parsetree via compiler-libs.  Parse errors
   are reported back so the driver can fall back to token scanning. *)

let parse ~file ~src =
  let lexbuf = Lexing.from_string src in
  Lexing.set_filename lexbuf file;
  match Parse.implementation lexbuf with
  | structure -> Ok structure
  | exception exn ->
      let msg =
        match Location.error_of_exn exn with
        | Some (`Ok report) -> Format.asprintf "%a" Location.print_report report
        | _ -> Printexc.to_string exn
      in
      Error msg

let line_of (loc : Location.t) = loc.loc_start.pos_lnum
let col_of (loc : Location.t) = loc.loc_start.pos_cnum - loc.loc_start.pos_bol
