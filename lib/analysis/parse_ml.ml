(* Parse .ml/.mli sources into Parsetrees via compiler-libs.  Parse errors
   are reported back so the driver can fall back to token scanning. *)

let error_message exn =
  match Location.error_of_exn exn with
  | Some (`Ok report) -> Format.asprintf "%a" Location.print_report report
  | _ -> Printexc.to_string exn

let parse ~file ~src =
  let lexbuf = Lexing.from_string src in
  Lexing.set_filename lexbuf file;
  match Parse.implementation lexbuf with
  | structure -> Ok structure
  | exception exn -> Error (error_message exn)

let parse_intf ~file ~src =
  let lexbuf = Lexing.from_string src in
  Lexing.set_filename lexbuf file;
  match Parse.interface lexbuf with
  | signature -> Ok signature
  | exception exn -> Error (error_message exn)

let line_of (loc : Location.t) = loc.loc_start.pos_lnum
let col_of (loc : Location.t) = loc.loc_start.pos_cnum - loc.loc_start.pos_bol
