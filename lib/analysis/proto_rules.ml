(* Protocol-invariant checks (P00x).

   P001 — the wheel failure-inference table.  §III-E of the paper (Table I)
   fixes how a designated switch's keep-alive observations map to an
   inferred failure.  [Failover.infer] encodes that table as a pattern
   match; this check symbolically evaluates the match over all 2^3
   observations and verifies that (a) every observation is covered, (b)
   each maps to exactly the verdict Table I prescribes (first-match
   semantics), and (c) no written case is dead.

   P002 — message-grammar coverage.  Every constructor of the in-band
   protocol type ([Proto.t]) must be named in a pattern somewhere in each
   dispatch module (edge switch and controller).  Wildcards do not count:
   the point is that adding a message constructor forces both dispatchers
   to take an explicit stance, even if that stance is "ignore". *)

open Parsetree

(* --- P001: failure-inference table --------------------------------------- *)

(* The paper's Table I, keyed (up_lost, down_lost, ctrl_lost). *)
let base_verdict = function
  | false, false, false -> "Healthy"
  | false, false, true -> "Control_link_failure"
  | true, false, false -> "Peer_link_up_failure"
  | false, true, false -> "Peer_link_down_failure"
  | true, true, true -> "Switch_failure"
  | _ -> "Ambiguous"

(* The extended table, keyed (up_lost, down_lost, ctrl_lost,
   peer_answering, master_silent) — all 2^5 observations.  The cluster's
   second echo spoke overrides the base table exactly when it proves the
   switch alive while the master echo is lost: master also silent on the
   coordination plane means the controller instance died; otherwise only
   the control link did.  Every other observation reduces to Table I. *)
let expected_table =
  let bools = [ false; true ] in
  List.concat_map
    (fun u ->
      List.concat_map
        (fun d ->
          List.concat_map
            (fun c ->
              List.concat_map
                (fun p ->
                  List.map
                    (fun m ->
                      let verdict =
                        if p && c then
                          if m then "Controller_failure"
                          else "Control_link_failure"
                        else base_verdict (u, d, c)
                      in
                      ((u, d, c, p, m), verdict))
                    bools)
                bools)
            bools)
        bools)
    bools

let pp_obs (u, d, c, p, m) =
  Printf.sprintf
    "{up_lost=%b; down_lost=%b; ctrl_lost=%b; peer_answering=%b; \
     master_silent=%b}"
    u d c p m

let flatten_longident lid = try Some (Longident.flatten lid) with _ -> None

let last_component lid =
  match flatten_longident lid with
  | Some path when not (List.is_empty path) ->
      Some (List.nth path (List.length path - 1))
  | _ -> None

(* Does [pat] match observation (u, d, c)?  Returns None when the pattern
   uses a form this symbolic evaluator does not understand. *)
let rec pattern_matches pat ((u, d, c, pa, ms) as obs) =
  match pat.ppat_desc with
  | Ppat_any | Ppat_var _ -> Some true
  | Ppat_alias (p, _) | Ppat_constraint (p, _) -> pattern_matches p obs
  | Ppat_or (a, b) -> (
      match pattern_matches a obs with
      | Some true -> Some true
      | Some false -> pattern_matches b obs
      | None -> None)
  | Ppat_record (fields, _) ->
      let field_value name =
        if String.equal name "up_lost" then Some u
        else if String.equal name "down_lost" then Some d
        else if String.equal name "ctrl_lost" then Some c
        else if String.equal name "peer_answering" then Some pa
        else if String.equal name "master_silent" then Some ms
        else None
      in
      let rec eval = function
        | [] -> Some true
        | (lid, fpat) :: rest -> (
            match last_component lid.Location.txt with
            | None -> None
            | Some name -> (
                match field_value name with
                | None -> None (* unknown field: not an observation record *)
                | Some v -> (
                    match fpat.ppat_desc with
                    | Ppat_any | Ppat_var _ -> eval rest
                    | Ppat_construct ({ txt = Lident b; _ }, None)
                      when String.equal b "true" || String.equal b "false" ->
                        if Bool.equal (String.equal b "true") v then eval rest
                        else Some false
                    | _ -> None)))
      in
      eval fields
  | _ -> None

let verdict_of_expr e =
  match e.pexp_desc with
  | Pexp_construct (lid, None) -> last_component lid.Location.txt
  | _ -> None

(* Find [let infer = function ...] (or [let infer x = match x with ...])
   and return its cases. *)
let find_infer_cases structure =
  let found = ref None in
  let rec cases_of e =
    match e.pexp_desc with
    | Pexp_function cases -> Some cases
    | Pexp_fun (_, _, _, body) -> (
        match body.pexp_desc with
        | Pexp_match (_, cases) -> Some cases
        | _ -> cases_of body)
    | _ -> None
  in
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_value (_, bindings) ->
          List.iter
            (fun vb ->
              match vb.pvb_pat.ppat_desc with
              | Ppat_var { txt; _ } when String.equal txt "infer" -> (
                  match cases_of vb.pvb_expr with
                  | Some cases -> found := Some (cases, vb.pvb_pat.ppat_loc)
                  | None -> ())
              | _ -> ())
            bindings
      | _ -> ())
    structure;
  !found

let check_failover ~file structure =
  let findings = ref [] in
  let emit ~loc ~severity msg =
    findings :=
      Finding.make ~file ~line:(Parse_ml.line_of loc)
        ~col:(Parse_ml.col_of loc) ~rule:Rules.p_failover_table ~severity msg
      :: !findings
  in
  (match find_infer_cases structure with
  | None ->
      findings :=
        Finding.make ~file ~line:1 ~rule:Rules.p_failover_table
          ~severity:Finding.Error
          "no [let infer = function ...] binding found; the wheel \
           failure-inference table (Table I) cannot be verified"
        :: !findings
  | Some (cases, infer_loc) ->
      let n_cases = List.length cases in
      let first_match = Array.make n_cases false in
      let observations = List.map fst expected_table in
      List.iter
        (fun obs ->
          let rec try_cases idx = function
            | [] ->
                emit ~loc:infer_loc ~severity:Finding.Error
                  (Printf.sprintf "observation %s is not covered by infer"
                     (pp_obs obs))
            | case :: rest -> (
                if Option.is_some case.pc_guard then
                  emit ~loc:case.pc_lhs.ppat_loc ~severity:Finding.Error
                    "guarded case in infer: the failure table cannot be \
                     verified symbolically; express the table with literal \
                     patterns"
                else
                  match pattern_matches case.pc_lhs obs with
                  | None ->
                      emit ~loc:case.pc_lhs.ppat_loc ~severity:Finding.Error
                        "unsupported pattern form in infer; use record \
                         patterns over up_lost/down_lost/ctrl_lost/\
                         peer_answering/master_silent with literal booleans"
                  | Some false -> try_cases (idx + 1) rest
                  | Some true -> (
                      first_match.(idx) <- true;
                      let expected = List.assoc obs expected_table in
                      match verdict_of_expr case.pc_rhs with
                      | None ->
                          emit ~loc:case.pc_rhs.pexp_loc
                            ~severity:Finding.Error
                            "infer case result is not a bare verdict \
                             constructor; the table mapping cannot be \
                             verified"
                      | Some got ->
                          if not (String.equal got expected) then
                            emit ~loc:case.pc_rhs.pexp_loc
                              ~severity:Finding.Error
                              (Printf.sprintf
                                 "observation %s infers %s but Table I \
                                  prescribes %s"
                                 (pp_obs obs) got expected)))
          in
          try_cases 0 cases)
        observations;
      List.iteri
        (fun idx case ->
          if not first_match.(idx) then
            emit ~loc:case.pc_lhs.ppat_loc ~severity:Finding.Error
              "dead case in infer: no observation reaches this pattern \
               (shadowed by earlier cases)")
        cases);
  List.sort Finding.compare !findings

(* --- P002: message-grammar coverage -------------------------------------- *)

let constructors_of_type ~type_name structure =
  let out = ref [] in
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_type (_, decls) ->
          List.iter
            (fun decl ->
              if String.equal decl.ptype_name.txt type_name then
                match decl.ptype_kind with
                | Ptype_variant cds ->
                    List.iter
                      (fun cd -> out := cd.pcd_name.txt :: !out)
                      cds
                | _ -> ())
            decls
      | _ -> ())
    structure;
  List.rev !out

(* Every constructor named in any pattern of the structure. *)
let pattern_constructors structure =
  let seen = Hashtbl.create 64 in
  let pat (it : Ast_iterator.iterator) p =
    (match p.ppat_desc with
    | Ppat_construct (lid, _) -> (
        match last_component lid.Location.txt with
        | Some name -> Hashtbl.replace seen name ()
        | None -> ())
    | _ -> ());
    Ast_iterator.default_iterator.pat it p
  in
  let iterator = { Ast_iterator.default_iterator with pat } in
  iterator.structure iterator structure;
  seen

let check_coverage ?(type_name = "t") ~proto:(proto_file, proto_structure)
    ~handlers () =
  let ctors = constructors_of_type ~type_name proto_structure in
  if List.is_empty ctors then
    [
      Finding.make ~file:proto_file ~line:1 ~rule:Rules.p_proto_coverage
        ~severity:Finding.Error
        (Printf.sprintf "no variant type [%s] found in %s; the message \
                         grammar cannot be verified" type_name proto_file);
    ]
  else
    let findings = ref [] in
    List.iter
      (fun (handler_file, handler_structure) ->
        let handled = pattern_constructors handler_structure in
        List.iter
          (fun ctor ->
            if not (Hashtbl.mem handled ctor) then
              findings :=
                Finding.make ~file:handler_file ~line:1
                  ~rule:Rules.p_proto_coverage ~severity:Finding.Error
                  (Printf.sprintf
                     "protocol constructor %s.%s is never matched in %s; \
                      every message must be handled explicitly (wildcards \
                      do not count)"
                     type_name ctor handler_file)
                :: !findings)
          ctors)
      handlers;
    List.sort Finding.compare !findings
