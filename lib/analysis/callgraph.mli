(** Cross-module reference index and call graph for the whole-program
    passes ({!Effects}, {!Layering}, {!Deadcode}).

    Built purely from Parsetrees — no typing environment — so resolution
    is name-based and follows this repo's conventions:
    [lib/<dir>/<name>.ml] defines [Lazyctrl_<dir>.<Name>];
    bin/bench/examples files are standalone modules.  Where a name
    cannot be resolved, the index errs on the side of {e more}
    references (deadcode stays conservative) and {e fewer} call edges
    (effects stay precise). *)

type ref_kind = Value | Type | Module | Open

type fref = {
  r_path : string list;
  r_line : int;
  r_col : int;
  r_kind : ref_kind;
}

type def = {
  d_file : string;
  d_id : string;  (** dotted fully-qualified id, e.g. Lazyctrl_switch.Proto.mac_key *)
  d_qual : string list;
  d_line : int;
  d_col : int;
  d_span : (int * int) * (int * int);
      (** start/end (line, col) of the binding *)
  d_refs : (string list * int * int) list;
      (** raw value-ident paths in the body *)
  d_opens : string list list;  (** opens in scope, innermost first *)
  d_encl : string list list;  (** enclosing module quals, innermost first *)
  d_mutates : bool;  (** a set-field / set-instance-var occurs in the body *)
}

type finfo = {
  f_file : string;
  f_lib : string option;  (** lib dir name for lib/<dir>/... files *)
  f_mod : string;
  f_aux : bool;  (** reference-only (test/): counts uses, yields no findings *)
  f_opens : string list list;  (** toplevel opens, latest first *)
  f_aliases : (string * string list) list;
      (** module alias -> absolutized target *)
  f_refs : fref list;  (** every longident with a location, for layering *)
  f_defs : def list;
  f_uses : string list list;
      (** modules used opaquely: functor args, includes, packs *)
  f_notes : string list;
      (** constructs the name-based index could not fully resolve
          (first-class modules, non-ident functor heads), deduplicated
          per file *)
}

type t

val has_prefix : prefix:string -> string -> bool

(** ["util"] -> ["Lazyctrl_util"], the dune wrapper module. *)
val wrapper_of_lib : string -> string

(** Inverse of {!wrapper_of_lib}; [None] for non-wrapper names. *)
val lib_of_wrapper : string -> string option

(** Build the index.  [files] are findable sources (repo-relative path,
    parsed structure); [aux] files only contribute usage marks. *)
val build :
  files:(string * Parsetree.structure) list ->
  aux:(string * Parsetree.structure) list ->
  t

(** All definition ids, sorted. *)
val def_ids : t -> string list

val find_def : t -> string -> def option

(** Resolved callee def ids of a definition, sorted, self excluded. *)
val callees : t -> string -> string list

(** All indexed files, sorted by path (aux included). *)
val files : t -> finfo list

(** Module names of a library directory, sorted. *)
val modules_of_lib : t -> string -> string list

val defs_of_file : t -> string -> def list

(** Innermost definition whose span contains (line, col) in [file]. *)
val def_spanning : t -> file:string -> line:int -> col:int -> def option

(** Files (aux included) that plausibly reference the fully-qualified
    value [qual], excluding [owner_file]; includes files that use the
    owning module opaquely (functor argument, include, pack). *)
val referencing_files :
  t -> qual:string list -> owner_file:string -> string list
