(** Interface hygiene (X00x): X001 dead exports — a [val] in a library
    .mli no other scanned file (tests included) ever names; X002 missing
    interfaces — a [lib/] .ml with no adjacent .mli.  Resolution is
    conservative: opaque module uses keep every export live. *)

(** [dead_exports cg ~intfs] checks each parsed interface (repo-relative
    .mli path, signature) against the reference index. *)
val dead_exports :
  Callgraph.t -> intfs:(string * Parsetree.signature) list -> Finding.t list

val missing_mli :
  ml_files:string list -> mli_files:string list -> Finding.t list
