(** Declared hot-path spec for the H00x allocation-discipline family.

    A hot entry names a definition (Callgraph's naming) whose whole
    static call region must be allocation-free and ties it to a
    measurement probe (a bench/main.exe hotpath target name); a cold
    boundary names a definition where the discipline deliberately stops,
    with a mandatory written justification.  See DESIGN.md §10. *)

type entry = { h_probe : string; h_id : string }
type boundary = { b_id : string; b_why : string }
type spec = { hot : entry list; cold : boundary list }

(** Probe names declared by the spec, sorted and deduplicated. *)
val probes : spec -> string list

(** Spec-level defects as messages (duplicates, missing justifications,
    empty spec); Hotpath turns them into H000 findings. *)
val validate : spec -> string list

val to_string : spec -> string

(** Inverse of [to_string]; line format
    ["hot <probe> <def-id>" | "cold <def-id> -- <why>"] with [#] comments.
    Returns the first error with its line number. *)
val parse : string -> (spec, string) result

(** The repo's declared spec — keep in sync with DESIGN.md §10, the
    hotpath bench targets, and HOTPATH_budget. *)
val default : spec
