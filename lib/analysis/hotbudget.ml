(* Dynamic cross-validation for the H00x family: the static verdict from
   Hotpath is never trusted unverified.  Each probe declared in the
   hot-path spec is run by bench/main.exe's hotpath targets under
   lib/perf's allocation counters, and the measured minor-words-per-op is
   judged against a committed per-probe budget file (HOTPATH_budget).

   Disagreement is reported both ways:

   H004 — calibration gap: the probe is statically clean (zero H001-class
   sites reachable, allowlisted or not) but measures above the noise
   epsilon.  The allocation is invisible to the Parsetree analysis —
   runtime boxing, stdlib internals, partial application — and a gap is a
   finding, not a pass.

   H005 — budget defects: a measured probe over its committed budget (an
   allocation regression), a declared probe with no budget or no
   measurement, a budget entry for a probe the spec no longer declares.

   This module is pure bookkeeping over (probe, words/op) pairs; reading
   the measured numbers out of a perf report is the CLI's job, so
   lib/analysis keeps zero dependencies. *)

type entry = { e_probe : string; e_words : float; e_line : int }

(* Measured minor words/op below this is counter noise, not an
   allocation: a single boxed option costs 2 words/op, well above it. *)
let epsilon = 0.05

type verdict =
  | Clean  (** statically allocation-free and measured quiet *)
  | Within_budget  (** statically allocating, measured within budget *)
  | Calibration_gap  (** statically clean but measured allocating (H004) *)
  | Over_budget  (** measured above the committed budget (H005) *)
  | Unmeasured  (** declared but not measured (H005) *)
  | Unbudgeted  (** declared and measured but no committed budget (H005) *)

let verdict_name = function
  | Clean -> "clean"
  | Within_budget -> "within-budget"
  | Calibration_gap -> "calibration-gap"
  | Over_budget -> "over-budget"
  | Unmeasured -> "unmeasured"
  | Unbudgeted -> "unbudgeted"

type row = {
  r_probe : string;
  r_static_sites : int;
  r_budget : float option;
  r_measured : float option;
  r_verdict : verdict;
}

(* --- budget file ----------------------------------------------------------- *)

let split_ws s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> not (String.equal w ""))

(* Line format: [<probe> <minor-words-per-op> [-- note]], '#' comments.
   Returns the entries plus parse errors as messages with line numbers. *)
let parse content =
  let entries = ref [] and errs = ref [] in
  List.iteri
    (fun idx raw ->
      let lineno = idx + 1 in
      let line =
        let n = String.length raw in
        let rec find i =
          if i + 4 > n then raw
          else if String.equal (String.sub raw i 4) " -- " then
            String.sub raw 0 i
          else find (i + 1)
        in
        String.trim (find 0)
      in
      if String.equal line "" then ()
      else if Char.equal line.[0] '#' then ()
      else
        match split_ws line with
        | [ probe; words ] -> (
            match float_of_string_opt words with
            | Some w when w >= 0. ->
                entries := { e_probe = probe; e_words = w; e_line = lineno } :: !entries
            | _ ->
                errs :=
                  Printf.sprintf
                    "line %d: '%s' is not a non-negative minor-words-per-op \
                     number"
                    lineno words
                  :: !errs)
        | _ ->
            errs :=
              Printf.sprintf
                "line %d: expected '<probe> <minor-words-per-op> [-- note]'"
                lineno
              :: !errs)
    (String.split_on_char '\n' content);
  (List.rev !entries, List.rev !errs)

(* --- the cross-validation -------------------------------------------------- *)

let evaluate ~budget_file ~(probes : Hotpath.probe_status list) ~budget
    ~measured =
  let findings = ref [] in
  let emit ~file ~line ~rule ~severity msg =
    findings := Finding.make ~file ~line ~rule ~severity msg :: !findings
  in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun e ->
      if Hashtbl.mem seen e.e_probe then
        emit ~file:budget_file ~line:e.e_line ~rule:Rules.h_alloc_budget
          ~severity:Finding.Error
          (Printf.sprintf "duplicate budget entry for probe '%s'" e.e_probe)
      else Hashtbl.add seen e.e_probe e)
    budget;
  let rows =
    List.map
      (fun (p : Hotpath.probe_status) ->
        let b = Hashtbl.find_opt seen p.Hotpath.p_probe in
        let m = List.assoc_opt p.Hotpath.p_probe measured in
        (* budget regression / bookkeeping *)
        (match (b, m) with
        | None, _ ->
            emit ~file:budget_file ~line:1 ~rule:Rules.h_alloc_budget
              ~severity:Finding.Error
              (Printf.sprintf
                 "probe '%s' has no committed minor-words-per-op budget in \
                  %s"
                 p.Hotpath.p_probe budget_file)
        | Some e, None ->
            emit ~file:budget_file ~line:e.e_line ~rule:Rules.h_alloc_budget
              ~severity:Finding.Error
              (Printf.sprintf
                 "probe '%s' was not measured; run the bench hotpath \
                  targets (make lint-hotpath) so the static verdict is \
                  cross-validated"
                 p.Hotpath.p_probe)
        | Some e, Some words when words > e.e_words ->
            emit ~file:budget_file ~line:e.e_line ~rule:Rules.h_alloc_budget
              ~severity:Finding.Error
              (Printf.sprintf
                 "probe '%s' measured %.2f minor words/op against a budget \
                  of %.2f — a hot-path allocation regression (or refresh \
                  the budget deliberately, saying what grew)"
                 p.Hotpath.p_probe words e.e_words)
        | Some _, Some _ -> ());
        (* calibration gap: statically clean but measured allocating *)
        (match m with
        | Some words when p.Hotpath.p_alloc_sites = 0 && words > epsilon ->
            emit ~file:p.Hotpath.p_file ~line:p.Hotpath.p_line
              ~rule:Rules.h_alloc_calibration ~severity:Finding.Error
              (Printf.sprintf
                 "probe '%s' is statically clean but measures %.2f minor \
                  words/op: the allocation is invisible to the Parsetree \
                  analysis (runtime boxing, stdlib internals, partial \
                  application) — find and fix it, or allowlist this \
                  calibration gap naming the source"
                 p.Hotpath.p_probe words)
        | _ -> ());
        let r_verdict =
          match (b, m) with
          | _, None -> Unmeasured
          | Some e, Some words when words > e.e_words -> Over_budget
          | _, Some words when p.Hotpath.p_alloc_sites = 0 && words > epsilon
            ->
              Calibration_gap
          | None, Some _ -> Unbudgeted
          | Some _, Some words ->
              if p.Hotpath.p_alloc_sites = 0 && words <= epsilon then Clean
              else Within_budget
        in
        {
          r_probe = p.Hotpath.p_probe;
          r_static_sites = p.Hotpath.p_alloc_sites;
          r_budget = Option.map (fun e -> e.e_words) b;
          r_measured = m;
          r_verdict;
        })
      probes
  in
  let declared p =
    List.exists
      (fun (ps : Hotpath.probe_status) -> String.equal ps.Hotpath.p_probe p)
      probes
  in
  List.iter
    (fun e ->
      if not (declared e.e_probe) then
        emit ~file:budget_file ~line:e.e_line ~rule:Rules.h_alloc_budget
          ~severity:Finding.Warning
          (Printf.sprintf
             "budget entry for probe '%s' which the hot-path spec does not \
              declare; remove it or declare the probe"
             e.e_probe))
    budget;
  (rows, List.sort Finding.compare !findings)
