(* Allocation-site inference over the Parsetree, for the H00x hot-path
   family (Hotpath).  Purely syntactic, like the rest of the lint: each
   site is a place where evaluating the expression allocates on the OCaml
   minor heap (H001 material), dispatches through a first-class function
   (H002), or uses exceptions for control flow (H003).  Sites are later
   attributed to their enclosing definition via [Callgraph.def_spanning]
   and filtered by reachability from the declared hot entries.

   Known blind spots, by construction (no type information):
   - partial application (closure built at runtime when a function is
     applied to fewer arguments than it takes) is invisible without
     arities — the dynamic cross-validation in Hotbudget is the backstop;
   - boxing done inside the stdlib (e.g. [Hashtbl.find_opt] wrapping the
     hit in [Some]) is equally invisible — same backstop, surfaced as an
     H004 calibration gap;
   - structure-level [let] bindings whose right-hand side is not a
     function run once at module initialization, so their allocations are
     not per-operation and are skipped entirely. *)

open Parsetree

type kind =
  | Closure  (** [fun]/[function] evaluated at runtime (captures its env) *)
  | Cons  (** constructor with a payload, including list cons *)
  | Tuple
  | Record
  | Array_lit
  | Ref  (** [ref e] *)
  | Str  (** string/bytes-allocating stdlib operation *)
  | Poly  (** polymorphic [compare]/[Hashtbl.hash] (H002) *)
  | Indirect  (** call through a record field or array element (H002) *)
  | Raise  (** [raise]/[raise_notrace] (H003) *)
  | Try  (** [try ... with] handler (H003) *)

type site = { s_kind : kind; s_line : int; s_col : int; s_desc : string }

let kind_name = function
  | Closure -> "closure"
  | Cons -> "constructor"
  | Tuple -> "tuple"
  | Record -> "record"
  | Array_lit -> "array literal"
  | Ref -> "ref cell"
  | Str -> "string/bytes"
  | Poly -> "polymorphic primitive"
  | Indirect -> "indirect call"
  | Raise -> "raise"
  | Try -> "try handler"

(* Sites that allocate per evaluation; the others are dispatch/control
   findings.  Only these count toward a probe's static allocation tally
   when Hotbudget decides whether a measured nonzero is a calibration
   gap. *)
let is_alloc = function
  | Closure | Cons | Tuple | Record | Array_lit | Ref | Str -> true
  | Poly | Indirect | Raise | Try -> false

let rule_of = function
  | Closure | Cons | Tuple | Record | Array_lit | Ref | Str ->
      Rules.h_hot_alloc
  | Poly | Indirect -> Rules.h_hot_indirect
  | Raise | Try -> Rules.h_hot_raise

let flatten_longident lid = try Some (Longident.flatten lid) with _ -> None

let ident_path e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> flatten_longident txt
  | _ -> None

let last_segment path = match List.rev path with s :: _ -> s | [] -> ""

let is_raise_path path =
  match path with
  | [ ("raise" | "raise_notrace") ]
  | [ "Stdlib"; ("raise" | "raise_notrace") ] ->
      true
  | _ -> false

let is_ref_path path =
  match path with [ "ref" ] | [ "Stdlib"; "ref" ] -> true | _ -> false

(* Stdlib entry points whose result is a fresh string/bytes/buffer; the
   list is the subset this codebase plausibly reaches, not an attempt at
   completeness. *)
let is_string_alloc_path path =
  let path = match path with "Stdlib" :: rest -> rest | _ -> path in
  match path with
  | [ "^" ] -> true
  | [ "Printf"; "sprintf" ] | [ "Format"; ("sprintf" | "asprintf") ] -> true
  | [ "String"; op ] ->
      List.exists (String.equal op)
        [
          "make"; "init"; "sub"; "concat"; "cat"; "map"; "mapi"; "trim";
          "escaped"; "uppercase_ascii"; "lowercase_ascii"; "capitalize_ascii";
          "split_on_char"; "of_bytes"; "to_bytes";
        ]
  | [ "Bytes"; op ] ->
      List.exists (String.equal op)
        [
          "create"; "make"; "init"; "copy"; "sub"; "cat"; "extend"; "concat";
          "of_string"; "to_string";
        ]
  | "Buffer" :: _ -> true
  | _ -> false

let is_poly_compare_path path =
  match path with
  | [ "compare" ] | [ "Stdlib"; "compare" ] | [ "Pervasives"; "compare" ] ->
      true
  | [ "Hashtbl"; ("hash" | "seeded_hash") ]
  | [ "Stdlib"; "Hashtbl"; ("hash" | "seeded_hash") ] ->
      true
  | _ -> false

let is_array_get_path path =
  match path with
  | [ "Array"; ("get" | "unsafe_get") ]
  | [ "Stdlib"; "Array"; ("get" | "unsafe_get") ] ->
      true
  | _ -> false

(* The flight recorder's documented discipline (DESIGN.md, lib/trace):
   event payloads are built only under an [if Tracer.enabled ...] guard,
   so untraced runs never evaluate them.  Allocation sites inside such a
   guard's then-branch are not hot-path allocations; the trace-overhead
   bench target keeps the guard itself honest. *)
let is_trace_guard cond =
  match cond.pexp_desc with
  | Pexp_apply (fn, _) -> (
      match ident_path fn with
      | Some path -> (
          match List.rev path with
          | "enabled" :: "Tracer" :: _ -> true
          | _ -> false)
      | None -> false)
  | _ -> false

let scan structure =
  let sites = ref [] in
  let push ~loc kind desc =
    sites :=
      {
        s_kind = kind;
        s_line = Parse_ml.line_of loc;
        s_col = Parse_ml.col_of loc;
        s_desc = desc;
      }
      :: !sites
  in
  let rec expr (it : Ast_iterator.iterator) e =
    match e.pexp_desc with
    | Pexp_ifthenelse (cond, then_, else_) when is_trace_guard cond ->
        it.expr it cond;
        ignore then_;
        Option.iter (it.expr it) else_
    | Pexp_apply (fn, args) when is_raise_arm fn ->
        (* one finding for the raise; the exception payload is part of it,
           so its own construct/alloc nodes are not double-counted *)
        let exn =
          match args with
          | (_, a) :: _ -> (
              match a.pexp_desc with
              | Pexp_construct ({ txt; _ }, _) -> (
                  match flatten_longident txt with
                  | Some p -> " " ^ last_segment p
                  | None -> "")
              | _ -> "")
          | [] -> ""
        in
        push ~loc:e.pexp_loc Raise (Printf.sprintf "raise%s" exn)
    | Pexp_match ({ pexp_desc = Pexp_tuple comps; _ }, cases) ->
        (* [match (a, b) with ...] compiles to a multi-column match without
           building the tuple — scan components and arms, flag nothing. *)
        List.iter (it.expr it) comps;
        List.iter
          (fun c ->
            Option.iter (it.expr it) c.pc_guard;
            it.expr it c.pc_rhs)
          cases
    | _ ->
        (match e.pexp_desc with
        | Pexp_fun _ | Pexp_function _ ->
            push ~loc:e.pexp_loc Closure "closure allocation (fun)"
        | Pexp_tuple _ -> push ~loc:e.pexp_loc Tuple "tuple allocation"
        | Pexp_record _ -> push ~loc:e.pexp_loc Record "record allocation"
        | Pexp_array _ ->
            push ~loc:e.pexp_loc Array_lit "array literal allocation"
        | Pexp_construct ({ txt; _ }, Some _) -> (
            match flatten_longident txt with
            | Some [ "::" ] -> push ~loc:e.pexp_loc Cons "list cons (::)"
            | Some p ->
                push ~loc:e.pexp_loc Cons
                  (Printf.sprintf "constructor %s with payload"
                     (last_segment p))
            | None -> push ~loc:e.pexp_loc Cons "constructor with payload")
        | Pexp_variant (tag, Some _) ->
            push ~loc:e.pexp_loc Cons
              (Printf.sprintf "polymorphic variant `%s with payload" tag)
        | Pexp_lazy _ -> push ~loc:e.pexp_loc Cons "lazy suspension"
        | Pexp_try _ ->
            push ~loc:e.pexp_loc Try "try...with control flow"
        | Pexp_ident { txt; _ } -> (
            match flatten_longident txt with
            | Some p when is_poly_compare_path p ->
                push ~loc:e.pexp_loc Poly
                  (Printf.sprintf "polymorphic %s" (last_segment p))
            | _ -> ())
        | Pexp_apply (fn, _) -> (
            match ident_path fn with
            | Some p when is_ref_path p ->
                push ~loc:e.pexp_loc Ref "ref cell allocation"
            | Some p when is_string_alloc_path p ->
                push ~loc:e.pexp_loc Str
                  (Printf.sprintf "string/bytes allocation via %s"
                     (String.concat "." p))
            | _ -> (
                match fn.pexp_desc with
                | Pexp_field (_, { txt; _ }) ->
                    let field =
                      match flatten_longident txt with
                      | Some p -> last_segment p
                      | None -> "?"
                    in
                    push ~loc:e.pexp_loc Indirect
                      (Printf.sprintf "call through record field .%s" field)
                | Pexp_apply (inner, _)
                  when Option.fold ~none:false ~some:is_array_get_path
                         (ident_path inner) ->
                    push ~loc:e.pexp_loc Indirect
                      "call through array element"
                | _ -> ()))
        | _ -> ());
        Ast_iterator.default_iterator.expr it e
  and is_raise_arm fn =
    match ident_path fn with Some p -> is_raise_path p | None -> false
  in
  (* Structure-level bindings: the [fun] spine of a function definition is
     static code, not a runtime allocation, and a non-function right-hand
     side runs once at module init — only function *bodies* are scanned. *)
  let iterator =
    { Ast_iterator.default_iterator with expr }
  in
  let rec scan_spine ~in_fun e =
    match e.pexp_desc with
    | Pexp_fun (_, default, _, body) ->
        Option.iter (iterator.expr iterator) default;
        scan_spine ~in_fun:true body
    | Pexp_newtype (_, body) -> scan_spine ~in_fun body
    | Pexp_constraint (body, _) -> scan_spine ~in_fun body
    | Pexp_function cases ->
        List.iter
          (fun c ->
            Option.iter (iterator.expr iterator) c.pc_guard;
            iterator.expr iterator c.pc_rhs)
          cases
    | _ ->
        if in_fun then iterator.expr iterator e
        (* else: init-time value, not a per-operation allocation *)
  in
  let scan_binding_rhs e = scan_spine ~in_fun:false e in
  let structure_item (it : Ast_iterator.iterator) item =
    match item.pstr_desc with
    | Pstr_value (_, vbs) ->
        List.iter (fun vb -> scan_binding_rhs vb.pvb_expr) vbs
    | Pstr_eval _ -> () (* runs once at module init *)
    | _ -> Ast_iterator.default_iterator.structure_item it item
  in
  let top = { iterator with structure_item } in
  top.structure top structure;
  List.sort
    (fun a b ->
      match Int.compare a.s_line b.s_line with
      | 0 -> Int.compare a.s_col b.s_col
      | c -> c)
    !sites
