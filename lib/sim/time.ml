type t = int

let zero = 0

let of_ns n =
  if n < 0 then invalid_arg "Time.of_ns: negative";
  n

let of_us n = of_ns (n * 1_000)
let of_ms n = of_ns (n * 1_000_000)
let of_sec n = of_ns (n * 1_000_000_000)
let of_min n = of_sec (n * 60)
let of_hour n = of_min (n * 60)

let of_float_sec s =
  if s < 0.0 then invalid_arg "Time.of_float_sec: negative";
  int_of_float (Float.round (s *. 1e9))

let to_ns t = t
let to_float_sec t = Float.of_int t /. 1e9
let to_float_ms t = Float.of_int t /. 1e6
let to_float_us t = Float.of_int t /. 1e3

let add a b = a + b

let sub a b =
  if a < b then invalid_arg "Time.sub: negative result";
  a - b

let diff a b = abs (a - b)
let scale t f = int_of_float (Float.round (Float.of_int t *. f))
let compare = Int.compare
let ( < ) (a : t) b = Stdlib.( < ) a b
let ( <= ) (a : t) b = Stdlib.( <= ) a b
let ( > ) (a : t) b = Stdlib.( > ) a b
let ( >= ) (a : t) b = Stdlib.( >= ) a b
let equal = Int.equal
let min (a : t) b = Stdlib.min a b
let max (a : t) b = Stdlib.max a b

let pp fmt t =
  let f = Float.of_int t in
  if t >= 3_600_000_000_000 then Format.fprintf fmt "%gh" (f /. 3.6e12)
  else if t >= 60_000_000_000 then Format.fprintf fmt "%gmin" (f /. 6e10)
  else if t >= 1_000_000_000 then Format.fprintf fmt "%gs" (f /. 1e9)
  else if t >= 1_000_000 then Format.fprintf fmt "%gms" (f /. 1e6)
  else if t >= 1_000 then Format.fprintf fmt "%gus" (f /. 1e3)
  else Format.fprintf fmt "%dns" t
