(** Simulated time.

    Time is a non-negative count of nanoseconds stored in an OCaml [int]
    (63-bit: ~292 years of range), which keeps the event queue allocation
    free and comparisons cheap. *)

type t = private int

val zero : t
val of_ns : int -> t
val of_us : int -> t
val of_ms : int -> t
val of_sec : int -> t
val of_min : int -> t
val of_hour : int -> t
val of_float_sec : float -> t
(** Rounded to the nearest nanosecond. *)

val to_ns : t -> int
val to_float_sec : t -> float
val to_float_ms : t -> float
val to_float_us : t -> float

val add : t -> t -> t
val sub : t -> t -> t
(** @raise Invalid_argument if the result would be negative. *)

val diff : t -> t -> t
(** Absolute difference. *)

val scale : t -> float -> t
val compare : t -> t -> int
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val equal : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t
val pp : Format.formatter -> t -> unit
(** Human-readable with an adaptive unit, e.g. ["1.5ms"], ["2h"]. *)
