(* Conservative time-window coordinator over per-shard event engines.

   S *logical* shards each own a private flat-heap {!Engine.t}; D
   *physical* domains (D <= S) execute them through a persistent
   {!Domain_pool}.  Simulated time advances in fixed windows of width W
   aligned to the absolute grid (window k covers (k*W, (k+1)*W]): every
   shard runs its engine to the window end in parallel, the pool barrier
   publishes all cross-shard posts, and the coordinator merges them into
   the destination engines in (time, src, seq) order before the next
   window starts.

   Conservative rule: a cross-shard post made inside window k must
   arrive strictly after the end of window k, because the destination
   engine is concurrently executing that window.  Callers guarantee this
   by construction when every cross-shard latency is >= W (an event
   firing at tau in (end_{k-1}, end_k] posts arrival tau + L >
   end_{k-1} + W = end_k); [post] checks it and raises
   [Conservative_violation] otherwise.

   Determinism at any domain count: within a window the logical shards
   share nothing (S00x ownership spec), so each shard's execution — and
   hence its post stream with its per-source seq numbers — is a pure
   function of simulation state; the barrier merge sorts by
   (time, src, seq), a key that never mentions a domain.  Windows are
   grid-aligned, so their boundaries do not depend on scheduling either.
   Idle windows are skipped by jumping to the window that contains the
   earliest live event across all shard engines, which is again a
   global, domain-independent quantity. *)

exception Conservative_violation of { src : int; dst : int; at : Time.t; window_end : Time.t }

let () =
  Printexc.register_printer (function
    | Conservative_violation { src; dst; at; window_end } ->
        Some
          (Printf.sprintf
             "Shard_engine.Conservative_violation: post %d->%d arriving at %dns \
              inside or before current window ending %dns (cross-shard latency \
              must be >= the window width)"
             src dst (Time.to_ns at) (Time.to_ns window_end))
    | _ -> None)

type stats = {
  domains : int;
  shards : int;
  windows : int; (* busy windows executed (idle ones are skipped) *)
  messages : int; (* cross-shard messages delivered *)
  max_window_batch : int;
  events : int; (* total engine events fired across shards *)
  pair_counts : int array array;
}

type t = {
  engines : Engine.t array;
  n : int;
  domains : int;
  window_ns : int;
  ex : Exchange.t;
  pool : Domain_pool.t option; (* [None] iff [domains = 1] *)
  mutable window_end : Time.t; (* end of the window being (or last) executed *)
  mutable windows : int;
  mutable busy : int array; (* scratch: busy shard indices *)
}

let default_domains () =
  match Sys.getenv_opt "LAZYCTRL_DOMAINS" with
  | None -> 1
  | Some s -> ( match int_of_string_opt (String.trim s) with
    | Some d when d >= 1 -> d
    | _ -> 1)

let create ?domains ~shards ~window () =
  if shards < 1 then invalid_arg "Shard_engine.create: shards < 1";
  if Time.to_ns window <= 0 then invalid_arg "Shard_engine.create: window <= 0";
  let requested = match domains with Some d -> d | None -> default_domains () in
  let domains = max 1 (min requested shards) in
  {
    engines = Array.init shards (fun _ -> Engine.create ());
    n = shards;
    domains;
    window_ns = Time.to_ns window;
    ex = Exchange.create ~shards;
    pool = (if domains > 1 then Some (Domain_pool.create ~lanes:domains) else None);
    window_end = Time.zero;
    windows = 0;
    busy = Array.make shards 0;
  }

let shards t = t.n
let domains t = t.domains
let window t = Time.of_ns t.window_ns
let engine t i = t.engines.(i)

let now t =
  let m = ref (Engine.now t.engines.(0)) in
  for i = 1 to t.n - 1 do
    m := Time.min !m (Engine.now t.engines.(i))
  done;
  !m

let post t ~src ~dst ~at f =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Shard_engine.post: shard index out of range";
  if src = dst then ignore (Engine.schedule_at t.engines.(src) ~at f)
  else begin
    (* [window_end] is frozen while workers run (written only between
       windows, published by the pool's barrier), so this check is safe
       from any lane. *)
    if Time.(at <= t.window_end) then
      raise (Conservative_violation { src; dst; at; window_end = t.window_end });
    Exchange.post t.ex ~src ~dst ~time_ns:(Time.to_ns at) f
  end

let drain t =
  if Exchange.pending t.ex > 0 then
    Exchange.drain t.ex ~into:(fun ~dst ~time_ns f ->
        ignore (Engine.schedule_at t.engines.(dst) ~at:(Time.of_ns time_ns) f))

(* Earliest live event across all shard engines. *)
let min_next t =
  let m = ref None in
  for i = 0 to t.n - 1 do
    match Engine.next_time t.engines.(i) with
    | None -> ()
    | Some nt -> (
        match !m with
        | None -> m := Some nt
        | Some cur -> if Time.(nt < cur) then m := Some nt)
  done;
  !m

let advance_all t ~until =
  (* No shard has a live event <= until: just move the clocks. *)
  for i = 0 to t.n - 1 do
    Engine.run ~until t.engines.(i)
  done;
  if Time.(t.window_end < until) then t.window_end <- until

let run_window t ~horizon =
  let nbusy = ref 0 in
  let hns = Time.to_ns horizon in
  for i = 0 to t.n - 1 do
    match Engine.next_time t.engines.(i) with
    | Some nt when Time.to_ns nt <= hns ->
        t.busy.(!nbusy) <- i;
        incr nbusy
    | _ -> Engine.run ~until:horizon t.engines.(i)
  done;
  let nbusy = !nbusy in
  match t.pool with
  | Some pool when nbusy > 1 ->
      let thunks =
        Array.init nbusy (fun k ->
            let e = t.engines.(t.busy.(k)) in
            fun () -> Engine.run ~until:horizon e)
      in
      Domain_pool.run_all pool thunks
  | _ ->
      for k = 0 to nbusy - 1 do
        Engine.run ~until:horizon t.engines.(t.busy.(k))
      done

let run t ~until =
  let w = t.window_ns in
  let continue_ = ref true in
  while !continue_ do
    drain t;
    match min_next t with
    | None ->
        advance_all t ~until;
        continue_ := false
    | Some m when Time.(m > until) ->
        advance_all t ~until;
        continue_ := false
    | Some m ->
        (* Jump to the grid window containing [m]: window k = (kW, (k+1)W],
           with m = 0 landing in window 0 ((m-1)/W truncates to 0). *)
        let k = (Time.to_ns m - 1) / w in
        let wend = Time.of_ns ((k + 1) * w) in
        t.window_end <- wend;
        run_window t ~horizon:(Time.min wend until);
        t.windows <- t.windows + 1
  done;
  drain t

let stats t =
  let events = ref 0 in
  for i = 0 to t.n - 1 do
    events := !events + Engine.events_processed t.engines.(i)
  done;
  {
    domains = t.domains;
    shards = t.n;
    windows = t.windows;
    messages = Exchange.messages t.ex;
    max_window_batch = Exchange.max_batch t.ex;
    events = !events;
    pair_counts = Exchange.pair_counts t.ex;
  }

let shutdown t = match t.pool with None -> () | Some p -> Domain_pool.shutdown p
