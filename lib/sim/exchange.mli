(** Cross-shard event mailboxes (the deterministic half of the sharded
    engine's window protocol).

    Each source shard owns one outbox of int-packed parallel arrays;
    during a window only that shard's domain appends to it, and the
    window barrier hands the full set to the coordinating domain, which
    {!drain}s every message in ascending [(arrival time, src shard,
    seq)] order.  [seq] is a per-source post counter, i.e. the
    deterministic execution order of the source engine, so the merged
    order is a pure function of simulation state — independent of the
    number of physical domains. *)

type t

val create : shards:int -> t
val shards : t -> int

val post : t -> src:int -> dst:int -> time_ns:int -> (unit -> unit) -> unit
(** Append a message to [src]'s outbox for delivery on shard [dst] at
    [time_ns].  Safe to call concurrently from different sources; never
    from two domains for the same [src].  Admissibility of [time_ns]
    (the conservative-window bound) is checked by {!Shard_engine.post},
    not here. *)

val pending : t -> int
(** Messages posted and not yet drained. *)

val drain : t -> into:(dst:int -> time_ns:int -> (unit -> unit) -> unit) -> unit
(** Deliver all pending messages through [into] in ascending
    [(time, src, seq)] order and reset the outboxes.  Coordinator-only;
    must not race with {!post}. *)

val messages : t -> int
(** Total messages drained since creation. *)

val max_batch : t -> int
(** Largest single-drain batch seen. *)

val pair_counts : t -> int array array
(** Copy of the per-[(src, dst)] message counts (posted, including not
    yet drained). *)
