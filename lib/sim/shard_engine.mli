(** Domain-parallel discrete-event simulation: S logical shards, each a
    private {!Engine.t}, coordinated in conservative time windows over
    D <= S physical OCaml 5 domains.

    Time advances in grid-aligned windows of width W (window k covers
    [(kW, (k+1)W]]).  Per window: all shards with live events run their
    engines to the window end in parallel; the pool barrier publishes
    every cross-shard {!post}; the coordinator merges the posts into the
    destination engines sorted by [(arrival time, src shard, seq)].
    Idle windows are skipped by jumping straight to the window holding
    the globally earliest event.

    {b Conservative rule:} a cross-shard post made inside window k must
    arrive strictly after k's end — guaranteed by construction when
    every cross-shard latency is at least W, and enforced by {!post}
    raising {!Conservative_violation}.

    {b Determinism:} within a window, shards share no mutable state (the
    S00x ownership spec gates this), so each shard's post stream is a
    pure function of simulation state; the merge key and the window grid
    never mention a physical domain.  Hence the same seed produces
    byte-identical observable state at every domain count —
    [test_shard.ml] checks this property, and the CI multicore matrix
    runs it at D = 1, 2, 4. *)

exception
  Conservative_violation of { src : int; dst : int; at : Time.t; window_end : Time.t }

type t

type stats = {
  domains : int;
  shards : int;
  windows : int;  (** busy windows executed; idle ones are skipped *)
  messages : int;  (** cross-shard messages delivered *)
  max_window_batch : int;  (** largest single-barrier message batch *)
  events : int;  (** engine events fired, summed over shards *)
  pair_counts : int array array;  (** messages posted per (src, dst) *)
}

val default_domains : unit -> int
(** Domain count from the [LAZYCTRL_DOMAINS] environment variable
    (the CI matrix leg sets it); 1 when unset or unparsable. *)

val create : ?domains:int -> shards:int -> window:Time.t -> unit -> t
(** [create ~shards ~window ()] builds [shards] fresh engines.
    [domains] defaults to {!default_domains}[ ()] and is clamped to
    [1..shards]; worker domains are spawned only when the clamp result
    exceeds 1.  @raise Invalid_argument on [shards < 1] or a
    non-positive window. *)

val shards : t -> int
val domains : t -> int
val window : t -> Time.t

val engine : t -> int -> Engine.t
(** Shard [i]'s private engine.  All scheduling for shard-local work
    goes straight to it; only its owning domain may touch it during a
    window. *)

val now : t -> Time.t
(** Completed horizon: minimum over the shard clocks. *)

val post : t -> src:int -> dst:int -> at:Time.t -> (unit -> unit) -> unit
(** Deliver [f] on shard [dst]'s engine at time [at].  [src = dst]
    schedules directly.  Cross-shard posts go through the exchange and
    must satisfy the conservative rule.
    @raise Conservative_violation when [at] is not strictly after the
    current window's end. *)

val run : t -> until:Time.t -> unit
(** Advance every shard to [until] (inclusive, matching
    {!Engine.run}), window by window.  All shard clocks equal [until]
    afterwards. *)

val stats : t -> stats

val shutdown : t -> unit
(** Join the worker domains.  Idempotent; call when done with [t] so
    repeated runs (benches, property tests) do not accumulate OS
    threads. *)
