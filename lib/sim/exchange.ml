(* Cross-shard event mailboxes for the sharded engine.

   One outbox per source shard, following the PR-4 flat-heap idiom:
   parallel int arrays for (arrival ns, destination, sequence) plus a
   closure array for the deferred action, so posting allocates nothing
   beyond the caller's closure.  During a window only shard [s]'s domain
   appends to outbox [s] (single-writer), and the window barrier
   publishes the appends before [drain] reads them on the coordinating
   domain.

   [drain] delivers all posted messages in ascending (time, src, seq)
   order — the total order that makes the merge independent of how many
   physical domains produced the messages.  [seq] is a per-source
   monotonic post counter, so within one source it is exactly the
   deterministic execution order of that shard's engine. *)

let nop () = ()

type outbox = {
  mutable time : int array; (* arrival, ns *)
  mutable dst : int array;
  mutable seq : int array;
  mutable act : (unit -> unit) array;
  mutable len : int;
  mutable next_seq : int;
}

type t = {
  shards : int;
  boxes : outbox array;
  pair_counts : int array array; (* [src].[dst], row written only by src *)
  (* Reusable drain scratch (coordinator-only). *)
  mutable g_time : int array;
  mutable g_src : int array;
  mutable g_seq : int array;
  mutable g_act : (unit -> unit) array;
  mutable g_dst : int array;
  mutable order : int array;
  mutable messages : int;
  mutable max_batch : int;
}

let create ~shards =
  if shards < 1 then invalid_arg "Exchange.create: shards < 1";
  let box () =
    {
      time = Array.make 16 0;
      dst = Array.make 16 0;
      seq = Array.make 16 0;
      act = Array.make 16 nop;
      len = 0;
      next_seq = 0;
    }
  in
  {
    shards;
    boxes = Array.init shards (fun _ -> box ());
    pair_counts = Array.init shards (fun _ -> Array.make shards 0);
    g_time = [||];
    g_src = [||];
    g_seq = [||];
    g_act = [||];
    g_dst = [||];
    order = [||];
    messages = 0;
    max_batch = 0;
  }

let shards t = t.shards

let grow_box b =
  let cap = Array.length b.time in
  let ncap = 2 * cap in
  let gi a = let n = Array.make ncap 0 in Array.blit a 0 n 0 cap; n in
  b.time <- gi b.time;
  b.dst <- gi b.dst;
  b.seq <- gi b.seq;
  let na = Array.make ncap nop in
  Array.blit b.act 0 na 0 cap;
  b.act <- na

let post t ~src ~dst ~time_ns f =
  let b = t.boxes.(src) in
  if b.len = Array.length b.time then grow_box b;
  let i = b.len in
  b.time.(i) <- time_ns;
  b.dst.(i) <- dst;
  b.seq.(i) <- b.next_seq;
  b.act.(i) <- f;
  b.next_seq <- b.next_seq + 1;
  b.len <- i + 1;
  t.pair_counts.(src).(dst) <- t.pair_counts.(src).(dst) + 1

let pending t =
  let p = ref 0 in
  for s = 0 to t.shards - 1 do
    p := !p + t.boxes.(s).len
  done;
  !p

let ensure_scratch t n =
  if Array.length t.order < n then begin
    let cap = max 16 (max n (2 * Array.length t.order)) in
    t.g_time <- Array.make cap 0;
    t.g_src <- Array.make cap 0;
    t.g_seq <- Array.make cap 0;
    t.g_dst <- Array.make cap 0;
    t.g_act <- Array.make cap nop;
    t.order <- Array.make cap 0
  end

let drain t ~into =
  let n = pending t in
  if n > 0 then begin
    ensure_scratch t n;
    let k = ref 0 in
    for s = 0 to t.shards - 1 do
      let b = t.boxes.(s) in
      for i = 0 to b.len - 1 do
        let g = !k in
        t.g_time.(g) <- b.time.(i);
        t.g_src.(g) <- s;
        t.g_seq.(g) <- b.seq.(i);
        t.g_dst.(g) <- b.dst.(i);
        t.g_act.(g) <- b.act.(i);
        t.order.(g) <- g;
        b.act.(i) <- nop;
        incr k
      done;
      b.len <- 0
    done;
    (* Total order (time, src, seq): time first so the destination engine
       sees arrivals in causal order; src then seq break same-instant
       ties identically at every domain count. *)
    let sub = Array.sub t.order 0 n in
    Array.sort
      (fun a b ->
        let c = Int.compare t.g_time.(a) t.g_time.(b) in
        if c <> 0 then c
        else
          let c = Int.compare t.g_src.(a) t.g_src.(b) in
          if c <> 0 then c else Int.compare t.g_seq.(a) t.g_seq.(b))
      sub;
    for i = 0 to n - 1 do
      let g = sub.(i) in
      into ~dst:t.g_dst.(g) ~time_ns:t.g_time.(g) t.g_act.(g);
      t.g_act.(g) <- nop
    done;
    t.messages <- t.messages + n;
    if n > t.max_batch then t.max_batch <- n
  end

let messages t = t.messages
let max_batch t = t.max_batch
let pair_counts t = Array.map Array.copy t.pair_counts
