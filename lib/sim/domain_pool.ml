(* Persistent pool of worker domains for the sharded engine.

   [Shard_engine] runs one synchronization window per barrier round, so
   spawning a domain per window would dominate the cost of small windows.
   Instead the pool spawns its workers once and parks them on a condition
   variable; each [run_all] hands every worker a contiguous chunk of the
   thunk array, runs the last chunk on the calling domain, and waits for
   the workers to go idle again.  The mutex acquire/release pairs on both
   sides of a job give the happens-before edges that publish the main
   domain's writes (engine state, exchange mailboxes, window horizon) to
   the worker and the worker's writes back to main — no atomics are
   needed beyond the locks.

   Determinism note: the pool never influences *what* runs, only *where*.
   Chunk assignment is a pure function of (lane count, thunk count), and
   thunks touch only shard-local state, so results are independent of
   physical scheduling. *)

type worker = {
  m : Mutex.t;
  cv : Condition.t;
  mutable job : (unit -> unit) option;
  mutable idle : bool;
  mutable stop : bool;
  mutable failed : exn option;
}

type t = {
  lanes : int; (* total execution lanes, including the calling domain *)
  workers : worker array; (* length [lanes - 1] *)
  mutable handles : unit Domain.t array;
  mutable closed : bool;
}

let worker_loop w =
  let running = ref true in
  while !running do
    Mutex.lock w.m;
    while Option.is_none w.job && not w.stop do
      Condition.wait w.cv w.m
    done;
    match w.job with
    | None ->
        (* stop requested with no job pending *)
        Mutex.unlock w.m;
        running := false
    | Some job ->
        Mutex.unlock w.m;
        let failure = try job (); None with e -> Some e in
        Mutex.lock w.m;
        w.failed <- failure;
        w.job <- None;
        w.idle <- true;
        Condition.signal w.cv;
        Mutex.unlock w.m
  done

let create ~lanes =
  let lanes = max 1 lanes in
  let workers =
    Array.init (lanes - 1) (fun _ ->
        {
          m = Mutex.create ();
          cv = Condition.create ();
          job = None;
          idle = true;
          stop = false;
          failed = None;
        })
  in
  let handles = Array.map (fun w -> Domain.spawn (fun () -> worker_loop w)) workers in
  { lanes; workers; handles; closed = false }

let lanes t = t.lanes

let assign w job =
  Mutex.lock w.m;
  w.job <- Some job;
  w.idle <- false;
  Condition.signal w.cv;
  Mutex.unlock w.m

let wait_idle w =
  Mutex.lock w.m;
  while not w.idle do
    Condition.wait w.cv w.m
  done;
  Mutex.unlock w.m

(* Contiguous chunking: lane [l] of [lanes] gets thunk indices
   [l*n/lanes, (l+1)*n/lanes).  Pure in (lanes, n), so the same thunks
   always land on the same lanes. *)
let run_chunk thunks ~n ~lanes ~lane =
  let lo = lane * n / lanes and hi = (lane + 1) * n / lanes in
  for i = lo to hi - 1 do
    thunks.(i) ()
  done

let run_all t thunks =
  let n = Array.length thunks in
  if n = 0 then ()
  else if t.lanes = 1 || n = 1 then
    for i = 0 to n - 1 do
      thunks.(i) ()
    done
  else begin
    if t.closed then invalid_arg "Domain_pool.run_all: pool is shut down";
    let lanes = min t.lanes n in
    for lane = 0 to lanes - 2 do
      assign t.workers.(lane) (fun () -> run_chunk thunks ~n ~lanes ~lane)
    done;
    (* The calling domain takes the last chunk; its exception (if any) is
       re-raised only after every worker is idle again, so no job is ever
       left running across the barrier. *)
    let main_failure =
      try
        run_chunk thunks ~n ~lanes ~lane:(lanes - 1);
        None
      with e -> Some e
    in
    for lane = 0 to lanes - 2 do
      wait_idle t.workers.(lane)
    done;
    let first_failure = ref None in
    for lane = lanes - 2 downto 0 do
      let w = t.workers.(lane) in
      match w.failed with
      | None -> ()
      | Some e ->
          w.failed <- None;
          first_failure := Some e
    done;
    (match !first_failure with
    | Some e -> raise e
    | None -> ( match main_failure with Some e -> raise e | None -> ()))
  end

let shutdown t =
  if not t.closed then begin
    t.closed <- true;
    Array.iter
      (fun w ->
        Mutex.lock w.m;
        w.stop <- true;
        Condition.signal w.cv;
        Mutex.unlock w.m)
      t.workers;
    Array.iter Domain.join t.handles;
    t.handles <- [||]
  end
