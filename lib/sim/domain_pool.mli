(** Persistent worker-domain pool for the sharded engine.

    Spawns [lanes - 1] OCaml 5 domains once and parks them between
    barrier rounds; {!run_all} fans an array of thunks out over the
    lanes (the calling domain is lane [lanes - 1]) and returns only when
    every thunk has finished — it is the per-window barrier of
    {!Shard_engine}.  Mutex-protected job handoff provides the
    happens-before edges in both directions, so thunks may freely read
    state written by the caller before [run_all] and the caller may read
    thunk-written state after it.

    The pool decides only {e where} thunks run, never what or in which
    logical order: chunk assignment is a pure function of the lane and
    thunk counts. *)

type t

val create : lanes:int -> t
(** [create ~lanes] spawns [lanes - 1] worker domains ([lanes] is
    clamped to at least 1, in which case nothing is spawned and
    {!run_all} degenerates to a sequential loop). *)

val lanes : t -> int
(** Total execution lanes, including the calling domain. *)

val run_all : t -> (unit -> unit) array -> unit
(** Run every thunk to completion, in parallel across the lanes.
    Thunks must touch disjoint state (enforced upstream by the S00x
    ownership spec).  If any thunk raises, the exception of the
    lowest-numbered failing lane is re-raised here — after all lanes
    have gone idle, so the barrier still holds. *)

val shutdown : t -> unit
(** Stop and join the worker domains.  Idempotent.  [run_all] on a
    multi-lane pool after shutdown raises [Invalid_argument]. *)
