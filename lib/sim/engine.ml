type event = {
  time : Time.t;
  seq : int;
  mutable cancelled : bool;
  mutable action : unit -> unit;
}

type event_id = event

type t = {
  mutable clock : Time.t;
  queue : event Lazyctrl_util.Heap.t;
  mutable next_seq : int;
  mutable live : int;
  mutable fired : int;
}

let compare_event a b =
  let c = Time.compare a.time b.time in
  if c <> 0 then c else Int.compare a.seq b.seq

let create () =
  {
    clock = Time.zero;
    queue = Lazyctrl_util.Heap.create ~cmp:compare_event;
    next_seq = 0;
    live = 0;
    fired = 0;
  }

let now t = t.clock

let schedule_at t ~at f =
  if Time.(at < t.clock) then invalid_arg "Engine.schedule_at: time in the past";
  let ev = { time = at; seq = t.next_seq; cancelled = false; action = f } in
  t.next_seq <- t.next_seq + 1;
  t.live <- t.live + 1;
  Lazyctrl_util.Heap.push t.queue ev;
  ev

let schedule t ~after f = schedule_at t ~at:(Time.add t.clock after) f

let cancel t ev =
  if not ev.cancelled then begin
    ev.cancelled <- true;
    (* Virtual recurrence handles ([seq = -1]) are never in the queue; their
       action cancels the currently armed instance instead. *)
    if ev.seq >= 0 then t.live <- t.live - 1 else ev.action ()
  end

let every t ~period ?jitter f =
  let current = ref None in
  let rec arm () =
    let delay = match jitter with None -> period | Some j -> Time.add period (j ()) in
    current :=
      Some
        (schedule t ~after:delay (fun () ->
             f ();
             arm ()))
  in
  arm ();
  let cancel_current () =
    match !current with Some ev -> cancel t ev | None -> ()
  in
  { time = t.clock; seq = -1; cancelled = false; action = cancel_current }

let pending t = t.live

let fire t ev =
  t.clock <- ev.time;
  t.live <- t.live - 1;
  t.fired <- t.fired + 1;
  ev.action ()

let step t =
  let rec next () =
    match Lazyctrl_util.Heap.pop t.queue with
    | None -> false
    | Some ev when ev.cancelled -> next ()
    | Some ev ->
        fire t ev;
        true
  in
  next ()

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some horizon ->
      let continue = ref true in
      while !continue do
        match Lazyctrl_util.Heap.peek t.queue with
        | None -> continue := false
        | Some ev when ev.cancelled ->
            ignore (Lazyctrl_util.Heap.pop t.queue)
        | Some ev when Time.(ev.time > horizon) -> continue := false
        | Some _ -> ignore (step t)
      done;
      if Time.(t.clock < horizon) then t.clock <- horizon

let events_processed t = t.fired
