(* Slot-table scheduler over a flat (time, seq) min-heap.

   Events live in parallel int/closure arrays indexed by slot; the heap
   holds only integer triples, so the scheduling hot path allocates
   nothing beyond the user's callback closure. Handles are tagged ints:
   a positive id packs (generation, slot) for a one-shot event, a
   negative id packs (generation, index) into the recurrence table.
   Generations make stale handles (cancel after fire, double cancel)
   harmless, which also fixes two bugs in the previous boxed-event
   implementation: cancelling an already-fired event no longer
   double-decrements [live], and cancelling a recurrence from inside its
   own callback now actually stops it. *)

module Flat = Lazyctrl_util.Heap.Flat

let st_free = 0
let st_armed = 1
let st_cancelled = 2

(* 31 bits of slot index, 31 bits of (wrapping) generation: ids stay
   positive in a 63-bit int. A generation collision needs 2^31 reuses of
   one slot between taking a handle and cancelling it. *)
let slot_bits = 31
let slot_mask = (1 lsl slot_bits) - 1
let gen_mask = (1 lsl 31) - 1

type event_id = int

let nop () = ()

type t = {
  mutable clock : Time.t;
  heap : Flat.t;
  (* Event slots. [s_recur.(slot)] is the owning recurrence index, or -1
     for a one-shot (whose closure is in [s_action]). *)
  mutable s_state : int array;
  mutable s_gen : int array;
  mutable s_action : (unit -> unit) array;
  mutable s_recur : int array;
  mutable s_free : int array; (* stack of free slots *)
  mutable s_free_top : int;
  mutable s_next : int; (* high-water mark *)
  (* Recurrences. [r_slot.(i)] is the armed instance's slot, or -1 while
     its callback is running (so self-cancellation is observable). *)
  mutable r_state : int array;
  mutable r_gen : int array;
  mutable r_period : int array; (* ns *)
  mutable r_jitter : (unit -> Time.t) option array;
  mutable r_f : (unit -> unit) array;
  mutable r_slot : int array;
  mutable r_free : int array;
  mutable r_free_top : int;
  mutable r_next : int;
  mutable next_seq : int;
  mutable live : int;
  mutable fired : int;
}

let create () =
  let scap = 64 and rcap = 8 in
  {
    clock = Time.zero;
    heap = Flat.create ~capacity:scap ();
    s_state = Array.make scap st_free;
    s_gen = Array.make scap 0;
    s_action = Array.make scap nop;
    s_recur = Array.make scap (-1);
    s_free = Array.make scap 0;
    s_free_top = 0;
    s_next = 0;
    r_state = Array.make rcap st_free;
    r_gen = Array.make rcap 0;
    r_period = Array.make rcap 0;
    r_jitter = Array.make rcap None;
    r_f = Array.make rcap nop;
    r_slot = Array.make rcap (-1);
    r_free = Array.make rcap 0;
    r_free_top = 0;
    r_next = 0;
    next_seq = 0;
    live = 0;
    fired = 0;
  }

let now t = t.clock

let grow_slots t =
  let cap = Array.length t.s_state in
  let ncap = 2 * cap in
  let copy make a =
    let n = Array.make ncap (make ()) in
    Array.blit a 0 n 0 cap;
    n
  in
  t.s_state <- copy (fun () -> st_free) t.s_state;
  t.s_gen <- copy (fun () -> 0) t.s_gen;
  t.s_action <- copy (fun () -> nop) t.s_action;
  t.s_recur <- copy (fun () -> -1) t.s_recur;
  t.s_free <- copy (fun () -> 0) t.s_free

let alloc_slot t =
  if t.s_free_top > 0 then begin
    t.s_free_top <- t.s_free_top - 1;
    t.s_free.(t.s_free_top)
  end
  else begin
    if t.s_next = Array.length t.s_state then grow_slots t;
    let s = t.s_next in
    t.s_next <- s + 1;
    s
  end

let free_slot t slot =
  t.s_state.(slot) <- st_free;
  t.s_gen.(slot) <- (t.s_gen.(slot) + 1) land gen_mask;
  t.s_action.(slot) <- nop;
  t.s_recur.(slot) <- -1;
  t.s_free.(t.s_free_top) <- slot;
  t.s_free_top <- t.s_free_top + 1

let grow_recurs t =
  let cap = Array.length t.r_state in
  let ncap = 2 * cap in
  let copy make a =
    let n = Array.make ncap (make ()) in
    Array.blit a 0 n 0 cap;
    n
  in
  t.r_state <- copy (fun () -> st_free) t.r_state;
  t.r_gen <- copy (fun () -> 0) t.r_gen;
  t.r_period <- copy (fun () -> 0) t.r_period;
  t.r_jitter <- copy (fun () -> None) t.r_jitter;
  t.r_f <- copy (fun () -> nop) t.r_f;
  t.r_slot <- copy (fun () -> -1) t.r_slot;
  t.r_free <- copy (fun () -> 0) t.r_free

let alloc_recur t =
  if t.r_free_top > 0 then begin
    t.r_free_top <- t.r_free_top - 1;
    t.r_free.(t.r_free_top)
  end
  else begin
    if t.r_next = Array.length t.r_state then grow_recurs t;
    let r = t.r_next in
    t.r_next <- r + 1;
    r
  end

let free_recur t ridx =
  t.r_state.(ridx) <- st_free;
  t.r_gen.(ridx) <- (t.r_gen.(ridx) + 1) land gen_mask;
  t.r_jitter.(ridx) <- None;
  t.r_f.(ridx) <- nop;
  t.r_slot.(ridx) <- -1;
  t.r_free.(t.r_free_top) <- ridx;
  t.r_free_top <- t.r_free_top + 1

let push_event t ~(at : Time.t) slot =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  t.live <- t.live + 1;
  Flat.push t.heap ~time:(at :> int) ~seq ~payload:slot

let schedule_at t ~at f =
  if Time.(at < t.clock) then invalid_arg "Engine.schedule_at: time in the past";
  let slot = alloc_slot t in
  t.s_state.(slot) <- st_armed;
  t.s_action.(slot) <- f;
  push_event t ~at slot;
  (t.s_gen.(slot) lsl slot_bits) lor slot

let schedule t ~after f = schedule_at t ~at:(Time.add t.clock after) f

let arm_recur t ridx =
  let delay =
    match t.r_jitter.(ridx) with
    | None -> t.r_period.(ridx)
    | Some j -> (Time.add (Time.of_ns t.r_period.(ridx)) (j ()) :> int)
  in
  let at = Time.add t.clock (Time.of_ns delay) in
  let slot = alloc_slot t in
  t.s_state.(slot) <- st_armed;
  t.s_recur.(slot) <- ridx;
  t.r_slot.(ridx) <- slot;
  push_event t ~at slot

let every t ~(period : Time.t) ?jitter f =
  let ridx = alloc_recur t in
  t.r_state.(ridx) <- st_armed;
  t.r_period.(ridx) <- (period :> int);
  t.r_jitter.(ridx) <- jitter;
  t.r_f.(ridx) <- f;
  arm_recur t ridx;
  -(1 + ((t.r_gen.(ridx) lsl slot_bits) lor ridx))

let cancel t id =
  if id >= 0 then begin
    let slot = id land slot_mask and gen = id lsr slot_bits in
    if
      slot < t.s_next
      && t.s_gen.(slot) = gen
      && t.s_state.(slot) = st_armed
      && t.s_recur.(slot) < 0
    then begin
      t.s_state.(slot) <- st_cancelled;
      t.live <- t.live - 1
    end
  end
  else begin
    let v = -id - 1 in
    let ridx = v land slot_mask and gen = v lsr slot_bits in
    if ridx < t.r_next && t.r_gen.(ridx) = gen && t.r_state.(ridx) = st_armed
    then begin
      t.r_state.(ridx) <- st_cancelled;
      let slot = t.r_slot.(ridx) in
      if slot >= 0 then begin
        (* An instance is armed: kill it and retire the recurrence now.
           Otherwise the callback is mid-flight and [step] retires it
           when the callback returns. *)
        t.s_state.(slot) <- st_cancelled;
        t.live <- t.live - 1;
        free_recur t ridx
      end
    end
  end

let pending t = t.live

(* Direct recursion over cancelled tombstones: a local [let rec] helper
   here would allocate one closure per call, on the hottest loop in the
   simulator (hp-engine-step). *)
let rec step t =
  if Flat.is_empty t.heap then false
  else begin
    let slot = Flat.min_payload t.heap in
    if t.s_state.(slot) = st_cancelled then begin
      Flat.remove_min t.heap;
      free_slot t slot;
      step t
    end
    else begin
      let time_ns = Flat.min_time t.heap in
      Flat.remove_min t.heap;
      t.clock <- Time.of_ns time_ns;
      t.live <- t.live - 1;
      t.fired <- t.fired + 1;
      let ridx = t.s_recur.(slot) in
      if ridx < 0 then begin
        let f = t.s_action.(slot) in
        free_slot t slot;
        f ()
      end
      else begin
        free_slot t slot;
        t.r_slot.(ridx) <- -1;
        (t.r_f.(ridx)) ();
        (* The callback may have cancelled its own recurrence (or the
           recurrence arrays may have grown under us) — re-read. *)
        if t.r_state.(ridx) = st_armed then arm_recur t ridx
        else if t.r_state.(ridx) = st_cancelled then free_recur t ridx
      end;
      true
    end
  end

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some horizon ->
      let horizon_ns = Time.to_ns horizon in
      let continue = ref true in
      while !continue do
        if Flat.is_empty t.heap then continue := false
        else begin
          let slot = Flat.min_payload t.heap in
          if t.s_state.(slot) = st_cancelled then begin
            Flat.remove_min t.heap;
            free_slot t slot
          end
          else if Flat.min_time t.heap > horizon_ns then continue := false
          else ignore (step t)
        end
      done;
      if Time.(t.clock < horizon) then t.clock <- horizon

let events_processed t = t.fired

(* Direct recursion over cancelled tombstones, same as [step]. *)
let rec next_time t =
  if Flat.is_empty t.heap then None
  else begin
    let slot = Flat.min_payload t.heap in
    if t.s_state.(slot) = st_cancelled then begin
      Flat.remove_min t.heap;
      free_slot t slot;
      next_time t
    end
    else Some (Time.of_ns (Flat.min_time t.heap))
  end
