(** Discrete-event simulation engine.

    A single-threaded event loop over simulated {!Time}. Events scheduled
    for the same instant fire in scheduling order (deterministic FIFO
    tie-breaking), which makes whole-network simulations reproducible. *)

type t

type event_id
(** Handle for cancellation. *)

val create : unit -> t

val now : t -> Time.t

val schedule : t -> after:Time.t -> (unit -> unit) -> event_id
(** [schedule t ~after f] runs [f] at [now t + after]. *)

val schedule_at : t -> at:Time.t -> (unit -> unit) -> event_id
(** @raise Invalid_argument if [at] is in the past. *)

val every : t -> period:Time.t -> ?jitter:(unit -> Time.t) -> (unit -> unit) -> event_id
(** [every t ~period f] runs [f] at [now + period], then re-arms with the
    same period (plus [jitter ()] if given) until cancelled. The returned
    id cancels the whole recurrence. *)

val cancel : t -> event_id -> unit
(** Cancel a pending event; no-op if it already fired or was cancelled. *)

val pending : t -> int
(** Number of live (non-cancelled) scheduled events. *)

val step : t -> bool
(** Fire the next event; [false] when the queue is empty. *)

val run : ?until:Time.t -> t -> unit
(** Drain the queue. With [until], stops (without firing) at the first
    event strictly after the horizon and sets the clock to [until]. *)

val events_processed : t -> int
(** Total events fired since creation (for sanity checks and tests). *)

val next_time : t -> Time.t option
(** Time of the earliest live event, or [None] when the queue is empty.
    Does not fire anything or move the clock; {!Shard_engine} uses it to
    skip idle synchronization windows. *)
