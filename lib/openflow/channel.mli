(** Simulated control-plane channels (the paper's control, state and peer
    links).

    A channel is a unidirectional FIFO with a configurable base latency and
    optional jitter, carried over the discrete-event engine. Delivery
    order is always FIFO even under jitter (a later send never overtakes an
    earlier one, like a TCP connection). Channels can be failed and
    repaired to drive the failover machinery; messages sent while down are
    counted as dropped. *)

open Lazyctrl_sim

type 'msg t

val create :
  Engine.t ->
  latency:Time.t ->
  ?jitter:(unit -> Time.t) ->
  name:string ->
  unit ->
  'msg t

val name : 'msg t -> string

val set_receiver : 'msg t -> ('msg -> unit) -> unit
(** Must be set before the first delivery fires; messages delivered with
    no receiver are counted as dropped. *)

val send : 'msg t -> 'msg -> bool
(** Enqueue for delivery after the channel latency; [false] (and a drop)
    when the channel is down. *)

val fail : 'msg t -> unit
(** Take the channel down. In-flight messages are lost. *)

val repair : 'msg t -> unit
val is_up : 'msg t -> bool

val sent : 'msg t -> int
val delivered : 'msg t -> int
val dropped : 'msg t -> int
