(** Simulated control-plane channels (the paper's control, state and peer
    links).

    A channel is a unidirectional FIFO with a configurable base latency and
    optional jitter, carried over the discrete-event engine. Delivery
    order is always FIFO even under jitter (a later send never overtakes an
    earlier one, like a TCP connection). Channels can be failed and
    repaired to drive the failover machinery; messages sent while down are
    counted as dropped.

    A channel may additionally carry a seeded Gilbert–Elliott loss model:
    each send is lost (or duplicated) with a probability that depends on a
    two-state good/bad Markov chain, drawn from a {!Lazyctrl_util.Prng}
    stream so runs stay byte-reproducible. Random loss is distinct from
    drops: [dropped] counts messages killed by a downed channel or a
    missing receiver, [lost] counts messages eaten by the loss model. *)

open Lazyctrl_sim
module Prng = Lazyctrl_util.Prng

type loss_spec = {
  p_loss_good : float;  (** per-message loss probability in the good state *)
  p_loss_bad : float;  (** per-message loss probability in the bad state *)
  p_good_to_bad : float;  (** per-message transition probability *)
  p_bad_to_good : float;  (** per-message transition probability *)
  p_duplicate : float;  (** probability a surviving message is delivered twice *)
}

val uniform_loss : ?dup:float -> float -> loss_spec
(** Memoryless loss at the given rate (the chain never leaves the good
    state); [dup] defaults to 0. *)

val bursty_loss : ?dup:float -> base:float -> burst:float -> unit -> loss_spec
(** Gilbert–Elliott bursts: [base] loss in the good state, [burst] loss in
    the bad state, with moderate transition probabilities. *)

type 'msg t

val create :
  ?strict:bool ->
  Engine.t ->
  latency:Time.t ->
  ?jitter:(unit -> Time.t) ->
  name:string ->
  unit ->
  'msg t
(** [strict] (default [false]) turns a delivery that finds no receiver into
    an [Invalid_argument] exception instead of a silent drop — it flags
    wiring-order bugs where a message is sent before {!set_receiver}. *)

val name : 'msg t -> string

val set_receiver : 'msg t -> ('msg -> unit) -> unit
(** Must be set before the first delivery fires; messages delivered with
    no receiver are counted as dropped (or raise under [~strict:true]). *)

val set_loss : 'msg t -> rng:Prng.t -> loss_spec -> unit
(** Attach (or replace) the loss model. The channel takes ownership of
    [rng] and consumes exactly three draws per send, so a dedicated
    {!Prng.named} sub-stream per channel keeps runs reproducible. *)

val clear_loss : 'msg t -> unit
val loss_active : 'msg t -> bool

val set_codec :
  'msg t -> encode:('msg -> bytes) -> decode:(bytes -> 'msg) -> unit
(** Attach a binary codec (normally [Lazyctrl_wire.Wire]): every
    subsequent send is encoded to one frame, the frame's length is added
    to {!bytes_sent} (and reported to the {!set_wire_hook} tap), and the
    value handed to the receiver is reconstructed by [decode] from those
    bytes — so the channel genuinely carries bytes and any codec
    infidelity is observable as a behavioral change. Loss-model draw
    alignment, FIFO order and epochs are unaffected. *)

val codec_active : 'msg t -> bool

val set_wire_hook : 'msg t -> (int -> unit) -> unit
(** Called with the frame length, once per encoded send (not per
    duplicate), at the instant {!bytes_sent} grows — the tap the tracer
    and the metrics recorder hang off, which keeps their byte totals
    equal to the channel counters by construction. *)

val send : 'msg t -> 'msg -> bool
(** Enqueue for delivery after the channel latency; [false] (and a drop)
    when the channel is down. Random loss/duplication by the loss model is
    invisible to the sender and still returns [true]. *)

val fail : 'msg t -> unit
(** Take the channel down. In-flight messages are lost. *)

val repair : 'msg t -> unit
val is_up : 'msg t -> bool

val sent : 'msg t -> int
val delivered : 'msg t -> int

val bytes_sent : 'msg t -> int
(** Total encoded frame bytes accepted for transmission (0 until a codec
    is attached). Loss eats copies after this count, like a real NIC
    counter on the sending side. *)

val bytes_delivered : 'msg t -> int
(** Total frame bytes of messages actually handed to the receiver,
    counting duplicated deliveries twice. *)

val dropped : 'msg t -> int
(** Messages killed because the channel was down (at send or delivery
    time) or no receiver was set. *)

val lost : 'msg t -> int
(** Messages eaten by the loss model. *)

val duplicated : 'msg t -> int
(** Messages the loss model delivered twice. *)
