(** Switch-side packet buffers backing [Packet_in] buffer ids.

    A bounded pool of parked packets, modelling the shared packet buffer
    of an OpenFlow switch: on a table miss the datapath parks the packet
    here and punts only the headers plus the slot's buffer id; the
    controller's [Buffer_out] (or [Flow_mod] + [Buffer_out]) releases it.
    Slots age out after [ttl] so a controller that never answers (e.g. a
    flood resolved elsewhere) cannot leak slots; a full pool falls back to
    an unbuffered full-packet punt, never to packet loss. The buffering
    state machine is specified in DESIGN.md §13. *)

open Lazyctrl_sim
open Lazyctrl_net

type t

type stats = {
  stored : int;  (** packets parked *)
  full_fallbacks : int;  (** stores refused because every slot was live *)
  released : int;  (** packets consumed by a [Buffer_out] *)
  expired : int;  (** slots reclaimed by ttl before any release *)
  misses : int;  (** releases of an unknown (or already aged-out) id *)
}

val create : ?capacity:int -> ttl:Time.t -> unit -> t
(** Default capacity 64 slots, like a small hardware packet buffer. *)

val store : t -> now:Time.t -> Packet.t -> int option
(** Park a packet; [None] when all slots hold live packets (the caller
    then punts the full packet with [Message.no_buffer]). Buffer ids are
    unique over a pool's lifetime, so a stale id can never release a
    recycled slot. *)

val take : t -> now:Time.t -> int -> Packet.t option
(** Consume the packet parked under an id; [None] (counted as a miss) for
    unknown, expired, or already-released ids. *)

val cancel : t -> int -> unit
(** Forget a parked packet whose punt never reached the wire (dead
    control link): the slot frees and [stored] is adjusted back down, so
    [stored] counts only buffer ids actually announced to the
    controller. Unknown ids are ignored. *)

val clear : t -> unit
(** Drop every parked packet (switch power-off: the buffer memory is
    volatile). Counters survive; occupancy does not. *)

val in_use : t -> now:Time.t -> int
(** Live (unexpired) occupied slots. *)

val stats : t -> stats
