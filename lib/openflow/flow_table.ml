open Lazyctrl_sim

type entry = {
  priority : int;
  ofmatch : Ofmatch.t;
  actions : Action.t list;
  idle_timeout : Time.t option;
  hard_timeout : Time.t option;
  cookie : int;
}

type live = {
  entry : entry;
  seq : int; (* installation order; later wins among equal priorities *)
  installed_at : Time.t;
  mutable last_used : Time.t;
  mutable packets : int;
}

type stats = {
  lookups : int;
  hits : int;
  installs : int;
  evictions : int;
  expiries : int;
}

type t = {
  capacity : int;
  mutable rows : live list; (* sorted: priority desc, then seq desc *)
  mutable next_seq : int;
  mutable lookups : int;
  mutable hits : int;
  mutable installs : int;
  mutable evictions : int;
  mutable expiries : int;
}

let create ?(capacity = 65536) () =
  if capacity <= 0 then invalid_arg "Flow_table.create: capacity must be positive";
  {
    capacity;
    rows = [];
    next_seq = 0;
    lookups = 0;
    hits = 0;
    installs = 0;
    evictions = 0;
    expiries = 0;
  }

let expired ~now l =
  (match l.entry.hard_timeout with
  | Some h -> Time.(Time.add l.installed_at h <= now)
  | None -> false)
  ||
  match l.entry.idle_timeout with
  | Some i -> Time.(Time.add l.last_used i <= now)
  | None -> false

let sweep t ~now =
  let before = List.length t.rows in
  t.rows <- List.filter (fun l -> not (expired ~now l)) t.rows;
  let dropped = before - List.length t.rows in
  t.expiries <- t.expiries + dropped;
  dropped

let cmp_rows a b =
  match Int.compare b.entry.priority a.entry.priority with
  | 0 -> Int.compare b.seq a.seq
  | c -> c

let evict_one t =
  (* Lowest priority; among those, the oldest use. *)
  match
    List.fold_left
      (fun acc l ->
        match acc with
        | None -> Some l
        | Some best ->
            if
              l.entry.priority < best.entry.priority
              || (l.entry.priority = best.entry.priority
                 && Time.(l.last_used < best.last_used))
            then Some l
            else acc)
      None t.rows
  with
  | None -> ()
  | Some victim ->
      t.rows <- List.filter (fun l -> l != victim) t.rows;
      t.evictions <- t.evictions + 1

let install t ~now entry =
  t.installs <- t.installs + 1;
  t.rows <-
    List.filter
      (fun l ->
        not
          (l.entry.priority = entry.priority
          && Ofmatch.equal l.entry.ofmatch entry.ofmatch))
      t.rows;
  ignore (sweep t ~now);
  if List.length t.rows >= t.capacity then evict_one t;
  let l =
    { entry; seq = t.next_seq; installed_at = now; last_used = now; packets = 0 }
  in
  t.next_seq <- t.next_seq + 1;
  t.rows <- List.sort cmp_rows (l :: t.rows)

let remove_matching t m =
  let before = List.length t.rows in
  t.rows <- List.filter (fun l -> not (Ofmatch.subsumes m l.entry.ofmatch)) t.rows;
  before - List.length t.rows

(* Fully-applied recursion (a local [let rec find = ...] would build a
   closure per lookup, and lookup is on the per-packet hot path).  The
   single [Some] boxing the hit is the lookup API and is allowlisted. *)
let rec lookup_rows t ~now eth rows =
  match rows with
  | [] -> None
  | l :: rest ->
      if expired ~now l then lookup_rows t ~now eth rest
      else if Ofmatch.matches l.entry.ofmatch eth then begin
        t.hits <- t.hits + 1;
        l.last_used <- now;
        l.packets <- l.packets + 1;
        Some l.entry.actions
      end
      else lookup_rows t ~now eth rest

let lookup t ~now eth =
  t.lookups <- t.lookups + 1;
  lookup_rows t ~now eth t.rows

let size t = List.length t.rows
let capacity t = t.capacity

let stats t =
  {
    lookups = t.lookups;
    hits = t.hits;
    installs = t.installs;
    evictions = t.evictions;
    expiries = t.expiries;
  }

let entries t = List.map (fun l -> l.entry) t.rows

let packet_count t ~cookie =
  List.fold_left
    (fun acc l -> if l.entry.cookie = cookie then acc + l.packets else acc)
    0 t.rows
