(** Control-plane messages.

    The OpenFlow core is kept protocol-generic; LazyCtrl's protocol
    extensions (group configuration, L-FIB/G-FIB dissemination, state
    reports) are carried through the ['ext] parameter by the layers that
    define them, mirroring how the paper extends OpenFlow v1.0 rather than
    replacing it. *)

open Lazyctrl_net

type reason =
  | No_match      (** table miss — the datapath punted the packet *)
  | Action_punt   (** an explicit [To_controller] action fired *)

type flow_mod =
  | Add of Flow_table.entry
  | Delete of Ofmatch.t
      (** OpenFlow delete: removes entries subsumed by the match. *)

val no_buffer : int
(** The sentinel [buffer_id] ([-1], OpenFlow's [OFP_NO_BUFFER]) marking a
    [Packet_in] that carries the whole packet because the switch did not
    (or could not) buffer it. *)

type 'ext t =
  | Hello
  | Echo_request of int
  | Echo_reply of int
  | Packet_in of { packet : Packet.t; reason : reason; buffer_id : int }
      (** When [buffer_id <> no_buffer] the switch holds the packet in its
          buffer pool and only the headers cross the wire; the controller
          releases the buffered packet with {!Buffer_out} (or lets the
          buffer age out). See DESIGN.md §13. *)
  | Packet_out of { packet : Packet.t; actions : Action.t list }
  | Buffer_out of { buffer_id : int; actions : Action.t list }
      (** Apply [actions] to the packet parked under [buffer_id] on the
          receiving switch — the buffered counterpart of [Packet_out]
          (OpenFlow's [PacketOut] with a buffer id instead of inline
          bytes). Unknown or expired ids are counted and dropped. *)
  | Flow_mod of flow_mod
  | Extension of 'ext

val is_packet_in : 'ext t -> bool

val size_estimate : ('ext -> int) -> 'ext t -> int
(** Approximate wire size in bytes, for control-channel bandwidth
    accounting; the argument sizes extension payloads. The exact
    byte-level frame size lives in [Lazyctrl_wire.Wire.message_size]. *)

val pp : (Format.formatter -> 'ext -> unit) -> Format.formatter -> 'ext t -> unit
