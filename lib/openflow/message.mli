(** Control-plane messages.

    The OpenFlow core is kept protocol-generic; LazyCtrl's protocol
    extensions (group configuration, L-FIB/G-FIB dissemination, state
    reports) are carried through the ['ext] parameter by the layers that
    define them, mirroring how the paper extends OpenFlow v1.0 rather than
    replacing it. *)

open Lazyctrl_net

type reason =
  | No_match      (** table miss — the datapath punted the packet *)
  | Action_punt   (** an explicit [To_controller] action fired *)

type flow_mod =
  | Add of Flow_table.entry
  | Delete of Ofmatch.t
      (** OpenFlow delete: removes entries subsumed by the match. *)

type 'ext t =
  | Hello
  | Echo_request of int
  | Echo_reply of int
  | Packet_in of { packet : Packet.t; reason : reason }
  | Packet_out of { packet : Packet.t; actions : Action.t list }
  | Flow_mod of flow_mod
  | Extension of 'ext

val is_packet_in : 'ext t -> bool

val size_estimate : ('ext -> int) -> 'ext t -> int
(** Approximate wire size in bytes, for control-channel bandwidth
    accounting; the argument sizes extension payloads. *)

val pp : (Format.formatter -> 'ext -> unit) -> Format.formatter -> 'ext t -> unit
