(** Prioritized flow table with timeouts and counters, modelling the
    TCAM/flow-table of an edge switch.

    Lookup returns the highest-priority matching entry (ties broken by
    later installation, like Open vSwitch). Entries expire by idle or hard
    timeout; expiry is checked lazily at lookup and eagerly via {!sweep}.
    A capacity bound models limited TCAM space: installing into a full
    table evicts the soonest-to-expire lowest-priority entry and counts an
    eviction. *)

open Lazyctrl_sim

type entry = {
  priority : int;
  ofmatch : Ofmatch.t;
  actions : Action.t list;
  idle_timeout : Time.t option;
  hard_timeout : Time.t option;
  cookie : int;
}

type stats = {
  lookups : int;
  hits : int;
  installs : int;
  evictions : int;
  expiries : int;
}

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 65536 entries. *)

val install : t -> now:Time.t -> entry -> unit
(** Replaces an entry with the same match and priority. *)

val remove_matching : t -> Ofmatch.t -> int
(** Remove all entries whose match is subsumed by the argument (OpenFlow
    delete semantics); returns how many were removed. *)

val lookup : t -> now:Time.t -> Lazyctrl_net.Packet.eth -> Action.t list option
(** Highest-priority live match; bumps counters and the idle deadline. *)

val sweep : t -> now:Time.t -> int
(** Drop all expired entries; returns how many. *)

val size : t -> int
val capacity : t -> int
val stats : t -> stats
val entries : t -> entry list
(** Live entries in decreasing priority order (for inspection/tests). *)

val packet_count : t -> cookie:int -> int
(** Total packets matched by entries carrying the cookie. *)
