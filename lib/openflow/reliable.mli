(** Reliable in-order delivery over lossy control channels.

    A [Reliable.t] is one endpoint of a bidirectional session: it numbers
    outgoing payloads with [(epoch, seq)], retransmits unacked payloads
    go-back-N style with exponential backoff (capped, then it gives up
    until kicked), and dedups/reorders incoming payloads so the
    application sees each payload exactly once, in send order — the
    idempotent-receive half of the paper-faithful state dissemination
    story. Epochs make sessions survive endpoint reboots: {!reset} bumps
    the sender epoch so a restarted sender's [seq 0] is not mistaken for a
    stale duplicate, and receivers adopt any newer epoch wholesale.

    The layer is payload-agnostic and callback-based so {!Edge_switch}
    and [Controller] can wrap payloads in their own [Proto] envelopes.
    Everything runs on the simulation engine; no wall clocks, no hidden
    randomness, so chaos runs stay byte-reproducible. *)

open Lazyctrl_sim

type config = {
  rto_initial : Time.t;  (** first retransmission timeout *)
  rto_max : Time.t;  (** backoff cap *)
  backoff : float;  (** multiplier applied per timeout *)
  jitter : float;
      (** each armed timeout is spread over [rto*(1-jitter),
          rto*(1+jitter)) using the session's seeded stream; 0 (or a
          session created without [rng]) disables the spread *)
  max_retries : int;  (** give up (until {!kick}/{!send}) after this many *)
  max_queue : int;  (** sender window; beyond it sends are tail-dropped *)
}

val default_config : config

type stats = {
  data_sent : int;  (** first transmissions *)
  retransmits : int;  (** payload retransmissions (all go-back-N copies) *)
  acks_sent : int;
  delivered : int;  (** payloads handed to the application *)
  dups_ignored : int;  (** duplicate receives suppressed *)
  stale_dropped : int;  (** receives from an out-of-date epoch *)
  tail_dropped : int;  (** sends refused because the window was full *)
  give_ups : int;  (** retransmission abandonments after [max_retries] *)
  violations : int;  (** exactly-once/in-order self-audit failures; 0 always *)
  payload_bytes : int;
      (** wire bytes of every payload handed to [send_data] — first
          transmissions {e and} go-back-N retransmissions — as sized by
          [create]'s [payload_bytes] callback; 0 without one. The
          reliability tax in the same real units as the channel byte
          counters (DESIGN.md §13). *)
}

val stats_zero : stats
val stats_add : stats -> stats -> stats

type 'a t

val create :
  ?tracer:Lazyctrl_trace.Tracer.t ->
  ?rng:Lazyctrl_util.Prng.t ->
  ?payload_bytes:('a -> int) ->
  Engine.t ->
  config ->
  send_data:(epoch:int -> seq:int -> 'a -> unit) ->
  send_ack:(epoch:int -> cum:int -> unit) ->
  name:string ->
  unit ->
  'a t
(** [send_data]/[send_ack] put a numbered payload / cumulative ack on the
    wire (typically via a lossy {!Channel}); they must not raise.
    [tracer] (default disabled) records retransmits and give-ups as
    flight-recorder events.  [rng] seeds the retransmission-jitter
    stream (derived by name, so the caller's stream is untouched);
    without it timeouts fire at the exact backoff schedule.
    [payload_bytes] sizes payloads for the [stats.payload_bytes]
    counter (typically [Wire.message_size]); omitted, byte accounting
    is off. *)

val name : 'a t -> string

val send : 'a t -> 'a -> unit
(** Number, queue and transmit a payload. Tail-drops (counted) when the
    window is full — before a sequence number is assigned, so the seq
    stream stays gapless. *)

val handle_ack : 'a t -> epoch:int -> cum:int -> unit
(** Process a cumulative ack for our outgoing stream; acks for a stale
    epoch are ignored. *)

val handle_data : 'a t -> epoch:int -> seq:int -> 'a -> 'a list
(** Process an incoming numbered payload; returns the (possibly empty)
    list of payloads now deliverable to the application, in order. Sends
    an ack via [send_ack] in all non-stale cases, including duplicates. *)

val reset : 'a t -> unit
(** Start a new outgoing epoch and discard unacked state — call when this
    endpoint reboots or its peer is replaced. *)

val kick : 'a t -> unit
(** Revive a session that gave up retransmitting and re-arm the timer —
    call on any evidence the link is back (e.g. a message arrived). *)

val in_flight : 'a t -> int
val epoch : 'a t -> int
val has_given_up : 'a t -> bool
val stats : 'a t -> stats
