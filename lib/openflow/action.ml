open Lazyctrl_net

type t =
  | Deliver of Ids.Host_id.t
  | Encap of Ipv4.t
  | Flood_local
  | To_controller
  | Drop

let equal = ( = )

let pp fmt = function
  | Deliver h -> Format.fprintf fmt "deliver(%a)" Ids.Host_id.pp h
  | Encap ip -> Format.fprintf fmt "encap(%a)" Ipv4.pp ip
  | Flood_local -> Format.pp_print_string fmt "flood_local"
  | To_controller -> Format.pp_print_string fmt "to_controller"
  | Drop -> Format.pp_print_string fmt "drop"
