open Lazyctrl_net

type t = {
  src_mac : Mac.t option;
  dst_mac : Mac.t option;
  vlan : int option;
  src_ip : Ipv4.t option;
  dst_ip : Ipv4.t option;
  protocol : int option;
  src_port : int option;
  dst_port : int option;
  arp_only : bool;
}

let any =
  {
    src_mac = None;
    dst_mac = None;
    vlan = None;
    src_ip = None;
    dst_ip = None;
    protocol = None;
    src_port = None;
    dst_port = None;
    arp_only = false;
  }

let exact_pair ~src ~dst = { any with src_mac = Some src; dst_mac = Some dst }

let of_eth (e : Packet.eth) =
  match e.payload with
  | Packet.Arp _ ->
      { any with src_mac = Some e.src; dst_mac = Some e.dst; vlan = e.vlan; arp_only = true }
  | Packet.Ipv4 p ->
      {
        src_mac = Some e.src;
        dst_mac = Some e.dst;
        vlan = e.vlan;
        src_ip = Some p.src_ip;
        dst_ip = Some p.dst_ip;
        protocol = Some p.protocol;
        src_port = Some p.src_port;
        dst_port = Some p.dst_port;
        arp_only = false;
      }

let field_ok eq pin actual =
  match pin with None -> true | Some v -> eq v actual

let matches t (e : Packet.eth) =
  field_ok Mac.equal t.src_mac e.src
  && field_ok Mac.equal t.dst_mac e.dst
  && (match (t.vlan, e.vlan) with
     | None, _ -> true
     | Some v, Some w -> Int.equal v w
     | Some _, None -> false)
  &&
  match e.payload with
  | Packet.Arp _ ->
      (* IP-layer pins cannot match an ARP frame. *)
      Option.is_none t.src_ip && Option.is_none t.dst_ip
      && Option.is_none t.protocol && Option.is_none t.src_port
      && Option.is_none t.dst_port
  | Packet.Ipv4 p ->
      (not t.arp_only)
      && field_ok Ipv4.equal t.src_ip p.src_ip
      && field_ok Ipv4.equal t.dst_ip p.dst_ip
      && field_ok Int.equal t.protocol p.protocol
      && field_ok Int.equal t.src_port p.src_port
      && field_ok Int.equal t.dst_port p.dst_port

let specificity t =
  let c = ref 0 in
  let count o = if Option.is_some o then incr c in
  count (Option.map Mac.to_int t.src_mac);
  count (Option.map Mac.to_int t.dst_mac);
  count t.vlan;
  count (Option.map Ipv4.to_int t.src_ip);
  count (Option.map Ipv4.to_int t.dst_ip);
  count t.protocol;
  count t.src_port;
  count t.dst_port;
  if t.arp_only then incr c;
  !c

let subsumes a b =
  let covers eq pa pb =
    match (pa, pb) with
    | None, _ -> true
    | Some _, None -> false
    | Some x, Some y -> eq x y
  in
  covers Mac.equal a.src_mac b.src_mac
  && covers Mac.equal a.dst_mac b.dst_mac
  && covers Int.equal a.vlan b.vlan
  && covers Ipv4.equal a.src_ip b.src_ip
  && covers Ipv4.equal a.dst_ip b.dst_ip
  && covers Int.equal a.protocol b.protocol
  && covers Int.equal a.src_port b.src_port
  && covers Int.equal a.dst_port b.dst_port
  && (a.arp_only = false || b.arp_only = true)

let equal = ( = )

let pp fmt t =
  let field name pp_v fmt = function
    | None -> ()
    | Some v -> Format.fprintf fmt " %s=%a" name pp_v v
  in
  Format.fprintf fmt "{match%a%a%a%a%a%s}"
    (field "smac" Mac.pp) t.src_mac
    (field "dmac" Mac.pp) t.dst_mac
    (field "vlan" Format.pp_print_int) t.vlan
    (field "sip" Ipv4.pp) t.src_ip
    (field "dip" Ipv4.pp) t.dst_ip
    (if t.arp_only then " arp" else "")
