open Lazyctrl_sim
module Prng = Lazyctrl_util.Prng

type config = {
  rto_initial : Time.t;
  rto_max : Time.t;
  backoff : float;
  jitter : float;
  max_retries : int;
  max_queue : int;
}

let default_config =
  {
    rto_initial = Time.of_ms 200;
    rto_max = Time.of_sec 4;
    backoff = 2.0;
    jitter = 0.1;
    max_retries = 12;
    max_queue = 512;
  }

type stats = {
  data_sent : int;
  retransmits : int;
  acks_sent : int;
  delivered : int;
  dups_ignored : int;
  stale_dropped : int;
  tail_dropped : int;
  give_ups : int;
  violations : int;
  payload_bytes : int;
}

let stats_zero =
  {
    data_sent = 0;
    retransmits = 0;
    acks_sent = 0;
    delivered = 0;
    dups_ignored = 0;
    stale_dropped = 0;
    tail_dropped = 0;
    give_ups = 0;
    violations = 0;
    payload_bytes = 0;
  }

let stats_add a b =
  {
    data_sent = a.data_sent + b.data_sent;
    retransmits = a.retransmits + b.retransmits;
    acks_sent = a.acks_sent + b.acks_sent;
    delivered = a.delivered + b.delivered;
    dups_ignored = a.dups_ignored + b.dups_ignored;
    stale_dropped = a.stale_dropped + b.stale_dropped;
    tail_dropped = a.tail_dropped + b.tail_dropped;
    give_ups = a.give_ups + b.give_ups;
    violations = a.violations + b.violations;
    payload_bytes = a.payload_bytes + b.payload_bytes;
  }

type 'a t = {
  engine : Engine.t;
  config : config;
  tracer : Lazyctrl_trace.Tracer.t;
  jitter_rng : Prng.t option;
  send_data : epoch:int -> seq:int -> 'a -> unit;
  send_ack : epoch:int -> cum:int -> unit;
  payload_bytes : ('a -> int) option;
  ep_name : string;
  (* --- sender --- *)
  mutable epoch : int;
  mutable next_seq : int;
  unacked : (int * 'a) Queue.t; (* FIFO of (seq, payload), oldest first *)
  mutable timer : Engine.event_id option;
  mutable rto : Time.t;
  mutable attempts : int;
  mutable gave_up : bool;
  (* --- receiver --- *)
  mutable remote_epoch : int;
  mutable next_expected : int;
  mutable last_handed : int; (* self-audit: last seq handed to the app *)
  pending : (int, 'a) Hashtbl.t; (* out-of-order buffer *)
  (* --- stats --- *)
  mutable s_data_sent : int;
  mutable s_retransmits : int;
  mutable s_acks_sent : int;
  mutable s_delivered : int;
  mutable s_dups_ignored : int;
  mutable s_stale_dropped : int;
  mutable s_tail_dropped : int;
  mutable s_give_ups : int;
  mutable s_violations : int;
  mutable s_payload_bytes : int;
}

let create ?(tracer = Lazyctrl_trace.Tracer.disabled) ?rng ?payload_bytes
    engine config ~send_data ~send_ack ~name () =
  {
    engine;
    config;
    tracer;
    (* A private per-session stream keyed on the session name: jitter
       draws never perturb the caller's stream, and a session's draw
       sequence does not depend on how many sibling sessions exist. *)
    jitter_rng = Option.map (fun r -> Prng.named r ("rto:" ^ name)) rng;
    send_data;
    send_ack;
    payload_bytes;
    ep_name = name;
    epoch = 0;
    next_seq = 0;
    unacked = Queue.create ();
    timer = None;
    rto = config.rto_initial;
    attempts = 0;
    gave_up = false;
    remote_epoch = 0;
    next_expected = 0;
    last_handed = -1;
    pending = Hashtbl.create 16;
    s_data_sent = 0;
    s_retransmits = 0;
    s_acks_sent = 0;
    s_delivered = 0;
    s_dups_ignored = 0;
    s_stale_dropped = 0;
    s_tail_dropped = 0;
    s_give_ups = 0;
    s_violations = 0;
    s_payload_bytes = 0;
  }

let name t = t.ep_name
let in_flight t = Queue.length t.unacked

let count_payload t payload =
  match t.payload_bytes with
  | Some f -> t.s_payload_bytes <- t.s_payload_bytes + f payload
  | None -> ()
let epoch t = t.epoch
let has_given_up t = t.gave_up

let cancel_timer t =
  match t.timer with
  | None -> ()
  | Some ev ->
      Engine.cancel t.engine ev;
      t.timer <- None

let revive t =
  t.gave_up <- false;
  t.attempts <- 0;
  t.rto <- t.config.rto_initial

(* The armed delay is the current RTO spread over [1-j, 1+j): seeded
   jitter desynchronizes the retransmission herds of many sessions
   backing off together without touching the deterministic backoff
   schedule itself (the RTO doubling stays exact). *)
let timeout_delay t =
  match t.jitter_rng with
  | Some rng when t.config.jitter > 0.0 ->
      let j = t.config.jitter in
      Time.scale t.rto (1.0 -. j +. Prng.float rng (2.0 *. j))
  | _ -> t.rto

let rec arm t =
  if Option.is_none t.timer && (not (Queue.is_empty t.unacked)) && not t.gave_up then
    t.timer <-
      Some
        (Engine.schedule t.engine ~after:(timeout_delay t) (fun () ->
             t.timer <- None;
             on_timeout t))

and on_timeout t =
  if not (Queue.is_empty t.unacked) then
    if t.attempts >= t.config.max_retries then begin
      (* Give up retransmitting until [kick] or a fresh [send]: the link
         is presumed dead and the anti-entropy re-sync on reconnect will
         reconcile state instead. *)
      t.gave_up <- true;
      t.s_give_ups <- t.s_give_ups + 1;
      if Lazyctrl_trace.Tracer.enabled t.tracer then
        Lazyctrl_trace.Tracer.emit t.tracer ~now:(Engine.now t.engine)
          (Lazyctrl_trace.Event.Reliable_giveup t.ep_name)
    end
    else begin
      t.attempts <- t.attempts + 1;
      t.s_retransmits <- t.s_retransmits + Queue.length t.unacked;
      if Lazyctrl_trace.Tracer.enabled t.tracer then
        Lazyctrl_trace.Tracer.emit t.tracer ~now:(Engine.now t.engine)
          (Lazyctrl_trace.Event.Retransmit t.ep_name);
      Queue.iter
        (fun (seq, payload) ->
          count_payload t payload;
          t.send_data ~epoch:t.epoch ~seq payload)
        t.unacked;
      t.rto <- Time.min (Time.scale t.rto t.config.backoff) t.config.rto_max;
      arm t
    end

let send t payload =
  if Queue.length t.unacked >= t.config.max_queue then
    (* Tail-drop BEFORE assigning a sequence number: under cumulative
       acks a gap in the seq stream would wedge the receiver forever. *)
    t.s_tail_dropped <- t.s_tail_dropped + 1
  else begin
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    Queue.push (seq, payload) t.unacked;
    t.s_data_sent <- t.s_data_sent + 1;
    count_payload t payload;
    t.send_data ~epoch:t.epoch ~seq payload;
    (* Fresh data revives a session that had given up; the link may be
       back and the retransmit timer should probe again. *)
    if t.gave_up then revive t;
    arm t
  end

let handle_ack t ~epoch ~cum =
  if Int.equal epoch t.epoch then begin
    let progressed = ref false in
    let continue = ref true in
    while !continue do
      match Queue.peek_opt t.unacked with
      | Some (seq, _) when seq <= cum ->
          ignore (Queue.pop t.unacked);
          progressed := true
      | _ -> continue := false
    done;
    if !progressed then begin
      (* Forward progress: reset the backoff and re-arm for whatever is
         still outstanding. *)
      cancel_timer t;
      revive t;
      arm t
    end
  end

let handle_data t ~epoch ~seq payload =
  if epoch < t.remote_epoch then begin
    t.s_stale_dropped <- t.s_stale_dropped + 1;
    []
  end
  else begin
    if epoch > t.remote_epoch then begin
      (* The remote endpoint restarted (e.g. a switch reboot): adopt its
         new session and forget the old receive window. *)
      t.remote_epoch <- epoch;
      t.next_expected <- 0;
      t.last_handed <- -1;
      Hashtbl.reset t.pending
    end;
    let deliverable =
      if seq < t.next_expected || Hashtbl.mem t.pending seq then begin
        t.s_dups_ignored <- t.s_dups_ignored + 1;
        []
      end
      else begin
        Hashtbl.replace t.pending seq payload;
        let acc = ref [] in
        let continue = ref true in
        while !continue do
          match Hashtbl.find_opt t.pending t.next_expected with
          | Some p ->
              Hashtbl.remove t.pending t.next_expected;
              (* Self-audit of the exactly-once, in-order contract. *)
              if t.next_expected <> t.last_handed + 1 then
                t.s_violations <- t.s_violations + 1;
              t.last_handed <- t.next_expected;
              t.next_expected <- t.next_expected + 1;
              acc := p :: !acc
          | None -> continue := false
        done;
        let out = List.rev !acc in
        t.s_delivered <- t.s_delivered + List.length out;
        out
      end
    in
    (* Always (re-)ack, even for duplicates: the ack may have been the
       lost half of the exchange. [cum] may be -1 when nothing is
       deliverable yet. *)
    t.s_acks_sent <- t.s_acks_sent + 1;
    t.send_ack ~epoch:t.remote_epoch ~cum:(t.next_expected - 1);
    deliverable
  end

let reset t =
  t.epoch <- t.epoch + 1;
  t.next_seq <- 0;
  Queue.clear t.unacked;
  cancel_timer t;
  revive t

let kick t =
  if t.gave_up then revive t;
  arm t

let stats t =
  {
    data_sent = t.s_data_sent;
    retransmits = t.s_retransmits;
    acks_sent = t.s_acks_sent;
    delivered = t.s_delivered;
    dups_ignored = t.s_dups_ignored;
    stale_dropped = t.s_stale_dropped;
    tail_dropped = t.s_tail_dropped;
    give_ups = t.s_give_ups;
    violations = t.s_violations;
    payload_bytes = t.s_payload_bytes;
  }
