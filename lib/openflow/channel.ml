open Lazyctrl_sim

type 'msg t = {
  engine : Engine.t;
  latency : Time.t;
  jitter : (unit -> Time.t) option;
  chan_name : string;
  mutable receiver : ('msg -> unit) option;
  mutable up : bool;
  mutable epoch : int; (* bumped on [fail]; in-flight messages of older epochs die *)
  mutable last_delivery : Time.t;
  mutable n_sent : int;
  mutable n_delivered : int;
  mutable n_dropped : int;
}

let create engine ~latency ?jitter ~name () =
  {
    engine;
    latency;
    jitter;
    chan_name = name;
    receiver = None;
    up = true;
    epoch = 0;
    last_delivery = Time.zero;
    n_sent = 0;
    n_delivered = 0;
    n_dropped = 0;
  }

let name t = t.chan_name

let set_receiver t f = t.receiver <- Some f

let send t msg =
  if not t.up then begin
    t.n_dropped <- t.n_dropped + 1;
    false
  end
  else begin
    t.n_sent <- t.n_sent + 1;
    let delay =
      match t.jitter with
      | None -> t.latency
      | Some j -> Time.add t.latency (j ())
    in
    let at =
      (* FIFO: never deliver before a previously scheduled message. *)
      Time.max (Time.add (Engine.now t.engine) delay) t.last_delivery
    in
    t.last_delivery <- at;
    let epoch = t.epoch in
    ignore
      (Engine.schedule_at t.engine ~at (fun () ->
           if t.up && epoch = t.epoch then
             match t.receiver with
             | Some f ->
                 t.n_delivered <- t.n_delivered + 1;
                 f msg
             | None -> t.n_dropped <- t.n_dropped + 1
           else t.n_dropped <- t.n_dropped + 1));
    true
  end

let fail t =
  if t.up then begin
    t.up <- false;
    t.epoch <- t.epoch + 1
  end

let repair t = t.up <- true

let is_up t = t.up
let sent t = t.n_sent
let delivered t = t.n_delivered
let dropped t = t.n_dropped
