open Lazyctrl_sim
module Prng = Lazyctrl_util.Prng

type loss_spec = {
  p_loss_good : float;
  p_loss_bad : float;
  p_good_to_bad : float;
  p_bad_to_good : float;
  p_duplicate : float;
}

let uniform_loss ?(dup = 0.0) rate =
  {
    p_loss_good = rate;
    p_loss_bad = rate;
    p_good_to_bad = 0.0;
    p_bad_to_good = 1.0;
    p_duplicate = dup;
  }

let bursty_loss ?(dup = 0.0) ~base ~burst () =
  {
    p_loss_good = base;
    p_loss_bad = burst;
    p_good_to_bad = 0.05;
    p_bad_to_good = 0.25;
    p_duplicate = dup;
  }

type loss_state = { rng : Prng.t; spec : loss_spec; mutable bad : bool }

type 'msg t = {
  engine : Engine.t;
  latency : Time.t;
  jitter : (unit -> Time.t) option;
  chan_name : string;
  strict : bool;
  mutable receiver : ('msg -> unit) option;
  mutable up : bool;
  mutable epoch : int; (* bumped on [fail]; in-flight messages of older epochs die *)
  mutable last_delivery : Time.t;
  mutable loss : loss_state option;
  (* Binary codec: when set, every send is encoded to a frame and the
     delivered value is reconstructed from those bytes, so the channel
     carries — and counts — real bytes (DESIGN.md §13). *)
  mutable codec : (('msg -> bytes) * (bytes -> 'msg)) option;
  mutable on_wire : (int -> unit) option;
  mutable n_sent : int;
  mutable n_delivered : int;
  mutable n_dropped : int;
  mutable n_lost : int;
  mutable n_duplicated : int;
  mutable n_bytes_sent : int;
  mutable n_bytes_delivered : int;
}

let create ?(strict = false) engine ~latency ?jitter ~name () =
  {
    engine;
    latency;
    jitter;
    chan_name = name;
    strict;
    receiver = None;
    up = true;
    epoch = 0;
    last_delivery = Time.zero;
    loss = None;
    codec = None;
    on_wire = None;
    n_sent = 0;
    n_delivered = 0;
    n_dropped = 0;
    n_lost = 0;
    n_duplicated = 0;
    n_bytes_sent = 0;
    n_bytes_delivered = 0;
  }

let name t = t.chan_name

let set_receiver t f = t.receiver <- Some f

let set_loss t ~rng spec = t.loss <- Some { rng; spec; bad = false }
let clear_loss t = t.loss <- None
let loss_active t = Option.is_some t.loss

let set_codec t ~encode ~decode = t.codec <- Some (encode, decode)
let codec_active t = Option.is_some t.codec
let set_wire_hook t f = t.on_wire <- Some f

(* How many copies of this message reach the wire: 0 (lost), 1, or 2
   (duplicated).  Exactly three draws are consumed per send whenever a
   loss model is attached, regardless of the outcome, so the stream
   stays aligned across runs that only differ in message contents. *)
let wire_copies t =
  match t.loss with
  | None -> 1
  | Some ls ->
      let u_loss = Prng.float ls.rng 1.0 in
      let u_flip = Prng.float ls.rng 1.0 in
      let u_dup = Prng.float ls.rng 1.0 in
      let p_loss = if ls.bad then ls.spec.p_loss_bad else ls.spec.p_loss_good in
      let p_flip =
        if ls.bad then ls.spec.p_bad_to_good else ls.spec.p_good_to_bad
      in
      if u_flip < p_flip then ls.bad <- not ls.bad;
      if u_loss < p_loss then 0
      else if u_dup < ls.spec.p_duplicate then 2
      else 1

let schedule_delivery t ~nbytes msg =
  let delay =
    match t.jitter with
    | None -> t.latency
    | Some j -> Time.add t.latency (j ())
  in
  let at =
    (* FIFO: never deliver before a previously scheduled message. *)
    Time.max (Time.add (Engine.now t.engine) delay) t.last_delivery
  in
  t.last_delivery <- at;
  let epoch = t.epoch in
  ignore
    (Engine.schedule_at t.engine ~at (fun () ->
         if t.up && epoch = t.epoch then
           match t.receiver with
           | Some f ->
               t.n_delivered <- t.n_delivered + 1;
               t.n_bytes_delivered <- t.n_bytes_delivered + nbytes;
               f msg
           | None ->
               if t.strict then
                 invalid_arg
                   (Printf.sprintf
                      "Channel %s: message delivered before any receiver was \
                       set (wiring-order bug)"
                      t.chan_name)
               else t.n_dropped <- t.n_dropped + 1
         else t.n_dropped <- t.n_dropped + 1))

let send t msg =
  if not t.up then begin
    t.n_dropped <- t.n_dropped + 1;
    false
  end
  else begin
    t.n_sent <- t.n_sent + 1;
    (* With a codec attached the message is marshalled exactly once and
       the delivered value is rebuilt from the frame, so what crosses the
       channel is bytes; duplicates re-deliver the same frame's worth. *)
    let nbytes, msg =
      match t.codec with
      | None -> (0, msg)
      | Some (enc, dec) ->
          let frame = enc msg in
          let n = Bytes.length frame in
          t.n_bytes_sent <- t.n_bytes_sent + n;
          (match t.on_wire with Some f -> f n | None -> ());
          (n, dec frame)
    in
    (match wire_copies t with
    | 0 -> t.n_lost <- t.n_lost + 1
    | 1 -> schedule_delivery t ~nbytes msg
    | _ ->
        t.n_duplicated <- t.n_duplicated + 1;
        schedule_delivery t ~nbytes msg;
        schedule_delivery t ~nbytes msg);
    (* Random loss is invisible to the sender, like a real wire: only a
       downed channel reports failure. *)
    true
  end

let fail t =
  if t.up then begin
    t.up <- false;
    t.epoch <- t.epoch + 1
  end

let repair t = t.up <- true

let is_up t = t.up
let sent t = t.n_sent
let bytes_sent t = t.n_bytes_sent
let bytes_delivered t = t.n_bytes_delivered
let delivered t = t.n_delivered
let dropped t = t.n_dropped
let lost t = t.n_lost
let duplicated t = t.n_duplicated
