open Lazyctrl_sim
open Lazyctrl_net

type slot = { id : int; packet : Packet.t; deadline : Time.t }

type t = {
  slots : slot option array;
  ttl : Time.t;
  mutable next_id : int;
  mutable s_stored : int;
  mutable s_full_fallbacks : int;
  mutable s_released : int;
  mutable s_expired : int;
  mutable s_misses : int;
}

type stats = {
  stored : int;
  full_fallbacks : int;
  released : int;
  expired : int;
  misses : int;
}

let create ?(capacity = 64) ~ttl () =
  if capacity <= 0 then invalid_arg "Buffer_pool.create: capacity";
  {
    slots = Array.make capacity None;
    ttl;
    next_id = 0;
    s_stored = 0;
    s_full_fallbacks = 0;
    s_released = 0;
    s_expired = 0;
    s_misses = 0;
  }

let expired ~now slot = Time.(slot.deadline < now)

let store t ~now packet =
  (* Linear scan for a free (or reclaimable) slot: the pool is small and
     store runs on the punt path, which is a declared cold boundary. *)
  let n = Array.length t.slots in
  let found = ref (-1) in
  let i = ref 0 in
  while !found < 0 && !i < n do
    (match t.slots.(!i) with
    | None -> found := !i
    | Some s when expired ~now s ->
        t.s_expired <- t.s_expired + 1;
        t.slots.(!i) <- None;
        found := !i
    | Some _ -> ());
    incr i
  done;
  if !found < 0 then begin
    t.s_full_fallbacks <- t.s_full_fallbacks + 1;
    None
  end
  else begin
    let id = t.next_id in
    t.next_id <- id + 1;
    t.slots.(!found) <- Some { id; packet; deadline = Time.add now t.ttl };
    t.s_stored <- t.s_stored + 1;
    Some id
  end

let take t ~now id =
  let n = Array.length t.slots in
  let result = ref None in
  let hit = ref false in
  for i = 0 to n - 1 do
    match t.slots.(i) with
    | Some s when Int.equal s.id id ->
        t.slots.(i) <- None;
        hit := true;
        if expired ~now s then t.s_expired <- t.s_expired + 1
        else begin
          t.s_released <- t.s_released + 1;
          result := Some s.packet
        end
    | _ -> ()
  done;
  if not !hit then t.s_misses <- t.s_misses + 1
  else if Option.is_none !result then t.s_misses <- t.s_misses + 1;
  !result

let cancel t id =
  Array.iteri
    (fun i -> function
      | Some s when Int.equal s.id id ->
          t.slots.(i) <- None;
          t.s_stored <- t.s_stored - 1
      | _ -> ())
    t.slots

let clear t = Array.fill t.slots 0 (Array.length t.slots) None

let in_use t ~now =
  Array.fold_left
    (fun acc -> function
      | Some s when not (expired ~now s) -> acc + 1
      | _ -> acc)
    0 t.slots

let stats t =
  {
    stored = t.s_stored;
    full_fallbacks = t.s_full_fallbacks;
    released = t.s_released;
    expired = t.s_expired;
    misses = t.s_misses;
  }
