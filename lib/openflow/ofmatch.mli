(** OpenFlow-1.0-style match structures over our frame model.

    Every field is optional; [None] is a wildcard. A match applies to the
    innermost Ethernet frame (rules are installed at edge switches, which
    match on decapsulated traffic, as in the paper's Open vSwitch
    datapath). *)

open Lazyctrl_net

type t = {
  src_mac : Mac.t option;
  dst_mac : Mac.t option;
  vlan : int option;
  src_ip : Ipv4.t option;
  dst_ip : Ipv4.t option;
  protocol : int option;
  src_port : int option;
  dst_port : int option;
  arp_only : bool; (* when true, matches only ARP frames *)
}

val any : t
(** Matches every frame. *)

val exact_pair : src:Mac.t -> dst:Mac.t -> t
(** The inter-group rule shape the controller installs: both MACs pinned,
    everything else wild. *)

val of_eth : Packet.eth -> t
(** Microflow match: every field of the frame pinned (ARP frames pin the
    MACs and VLAN only, with [arp_only] set). *)

val matches : t -> Packet.eth -> bool

val specificity : t -> int
(** Number of pinned fields; used as a default priority so more specific
    rules win. *)

val subsumes : t -> t -> bool
(** [subsumes a b] when every frame matched by [b] is matched by [a]
    (conservative: field-wise wildcard comparison). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
