open Lazyctrl_net

type reason = No_match | Action_punt

type flow_mod = Add of Flow_table.entry | Delete of Ofmatch.t

let no_buffer = -1

type 'ext t =
  | Hello
  | Echo_request of int
  | Echo_reply of int
  | Packet_in of { packet : Packet.t; reason : reason; buffer_id : int }
  | Packet_out of { packet : Packet.t; actions : Action.t list }
  | Buffer_out of { buffer_id : int; actions : Action.t list }
  | Flow_mod of flow_mod
  | Extension of 'ext

let is_packet_in = function Packet_in _ -> true | _ -> false

let size_estimate ext_size = function
  | Hello -> 8
  | Echo_request _ | Echo_reply _ -> 12
  | Packet_in { packet; buffer_id; _ } ->
      (* A buffered punt carries only the headers; the payload stays in
         the switch's buffer pool under [buffer_id]. *)
      if buffer_id = no_buffer then 18 + Packet.size_on_wire packet
      else 18 + Packet.size_on_wire packet
           - (match (Packet.eth_of packet).payload with
             | Packet.Ipv4 p -> p.length
             | Packet.Arp _ -> 0)
  | Packet_out { packet; actions } ->
      16 + Packet.size_on_wire packet + (8 * List.length actions)
  | Buffer_out { actions; _ } -> 16 + (8 * List.length actions)
  | Flow_mod (Add e) -> 72 + (8 * List.length e.actions)
  | Flow_mod (Delete _) -> 72
  | Extension e -> 16 + ext_size e

let pp pp_ext fmt = function
  | Hello -> Format.pp_print_string fmt "hello"
  | Echo_request n -> Format.fprintf fmt "echo_request(%d)" n
  | Echo_reply n -> Format.fprintf fmt "echo_reply(%d)" n
  | Packet_in { packet; reason; buffer_id } ->
      Format.fprintf fmt "packet_in(%s,%s%a)"
        (match reason with No_match -> "no_match" | Action_punt -> "punt")
        (if buffer_id = no_buffer then ""
         else Printf.sprintf "buf=%d," buffer_id)
        Packet.pp packet
  | Packet_out { packet; _ } -> Format.fprintf fmt "packet_out(%a)" Packet.pp packet
  | Buffer_out { buffer_id; actions } ->
      Format.fprintf fmt "buffer_out(buf=%d,|actions|=%d)" buffer_id
        (List.length actions)
  | Flow_mod (Add e) -> Format.fprintf fmt "flow_mod+(%a)" Ofmatch.pp e.ofmatch
  | Flow_mod (Delete m) -> Format.fprintf fmt "flow_mod-(%a)" Ofmatch.pp m
  | Extension e -> Format.fprintf fmt "ext(%a)" pp_ext e
