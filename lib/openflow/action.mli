(** Forwarding actions attached to flow-table entries.

    [Encap] is the paper's OpenFlow v1.0 extension: wrap the frame in a
    GRE-like header addressed to a remote edge switch's underlay endpoint
    and send it over the core. *)

open Lazyctrl_net

type t =
  | Deliver of Ids.Host_id.t  (** output on the local port of a host *)
  | Encap of Ipv4.t           (** tunnel to a remote switch's underlay IP *)
  | Flood_local               (** all local host ports (tenant-filtered by the datapath) *)
  | To_controller             (** punt via Packet_in on the control link *)
  | Drop

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
