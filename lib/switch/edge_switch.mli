(** The LazyCtrl edge switch.

    Implements the Open vSwitch-based switch of §IV-A over the simulator:
    the fast path is the Fig. 5 forwarding routine over flow table, L-FIB
    and Bloom-filter G-FIB; the slow path covers the Ctrl-IF (control
    link), state advertisement (peer links), FIB maintenance, and — when
    this switch is selected — the designated switch's state-reporting
    duties. The failure-detection wheel's keep-alives (§III-E1) run on
    timers attached to the group configuration.

    The switch is environment-passing: all I/O goes through the callbacks
    in {!env}, so the same implementation runs under the full network
    simulation and under unit tests with recorded channels. *)

open Lazyctrl_net
open Lazyctrl_sim
open Lazyctrl_openflow

type msg = Proto.t Message.t

type env = {
  engine : Engine.t;
  send_controller : msg -> bool;
      (** control link; [false] means the link is down right now, which
          arms the reconnect/anti-entropy machinery *)
  send_peer : Ids.Switch_id.t -> msg -> unit;  (** peer links *)
  send_underlay : Packet.t -> unit;            (** encapsulated data plane *)
  deliver_local : Host.t -> Packet.t -> unit;  (** local host port *)
  underlay_ip_of : Ids.Switch_id.t -> Ipv4.t;
}

type config = {
  flow_table_capacity : int;
  gfib_bits_per_entry : int;
  expected_hosts_per_switch : int;
  report_false_positives : bool;
      (** §III-D4's optional misdelivery report to the controller *)
  reliable_state : bool;
      (** carry state dissemination (adverts, reports, alarms, group
          config) over {!Lazyctrl_openflow.Reliable} sessions; packet
          traffic and keep-alives stay fire-and-forget *)
  retrans : Reliable.config;
  miss_buffer_capacity : int;
      (** bounded queue of inter-group misses kept while the control link
          is lost, replayed on reconnect *)
  buffer_pool_capacity : int;
      (** slots in the {!Lazyctrl_openflow.Buffer_pool} backing buffered
          punts; a full pool degrades to full-packet punts *)
  buffer_ttl : Time.t;
      (** parked packets age out after this long without a [Buffer_out] *)
}

val default_config : config

type stats = {
  packets_from_hosts : int;
  packets_delivered : int;      (** frames handed to local hosts *)
  encap_sent : int;
  flow_table_handled : int;     (** plain frames matched by a flow rule *)
  lfib_handled : int;           (** local-to-local deliveries *)
  gfib_handled : int;           (** intra-group deliveries via G-FIB *)
  gfib_duplicates : int;        (** extra copies sent on multi-candidate hits *)
  punted : int;                 (** Packet_in sent to the controller *)
  fp_drops : int;               (** decapsulated frames dropped, Fig. 5 line 28 *)
  arp_local_answered : int;
  arp_group_escalated : int;    (** Group_arp sent to the designated switch *)
  adverts_sent : int;
  keepalives_sent : int;
  misses_buffered : int;        (** punts queued while the control link was lost *)
  misses_replayed : int;        (** buffered punts re-sent on reconnect *)
}

type t

val create :
  ?tracer:Lazyctrl_trace.Tracer.t ->
  ?rng:Lazyctrl_util.Prng.t ->
  env ->
  config ->
  self:Ids.Switch_id.t ->
  t
(** [tracer] (default disabled) receives a flight-recorder event at every
    datapath decision point: ingress, flow-table/L-FIB hits, G-FIB
    probes, Bloom false positives, ARP resolution, designated-switch
    relays, and punts.  [rng] seeds retransmission jitter in the
    switch's reliable sessions (each session derives its own named
    sub-stream; the parent is never advanced). *)

val self : t -> Ids.Switch_id.t

val attach_host : t -> Host.t -> unit
(** VM boot / migration arrival: learn into the L-FIB and advertise. *)

val detach_host : t -> Ids.Host_id.t -> unit

val handle_from_host : t -> Host.t -> Packet.t -> unit
(** A frame arriving on a local host port (Fig. 5, plain branch). *)

val handle_underlay : t -> Packet.t -> unit
(** An encapsulated frame arriving from the core (Fig. 5, encap branch). *)

val handle_controller_message : t -> msg -> unit
val handle_peer_message : t -> from:Ids.Switch_id.t -> msg -> unit

val set_up : t -> bool -> unit
(** Power the switch off/on. While down, every input is ignored and
    timers are suspended. Powering back on clears volatile group state
    (the controller re-syncs it, §III-E3). *)

val is_up : t -> bool

val set_control_relay : t -> Ids.Switch_id.t option -> unit
(** Control-link failover: when set, control-link traffic is boxed in
    {!Proto.Relay} and sent through the given ring neighbour. *)

val group : t -> Proto.group_config option
val is_designated : t -> bool
val lfib : t -> Lfib.t
val gfib : t -> Gfib.t
val flow_table : t -> Flow_table.t
val stats : t -> stats

val control_link_suspect : t -> bool
(** True between a failed control-link send and the reconnect re-sync. *)

val misses_pending : t -> int
(** Inter-group misses currently buffered awaiting reconnect. *)

val buffer_stats : t -> Buffer_pool.stats
(** Occupancy counters of the packet buffer pool behind buffered punts. *)

val master_term : t -> int
(** Highest {!Proto.Rehome} term accepted so far (0 before any claim, and
    again after a reboot — mastership is re-established by the cluster).
    A claim is accepted only when its term is strictly greater; accepting
    resets the control session, announces the switch to the new master
    (Hello → config re-push), heals the master's C-LIB row with a full
    advert and drains the buffered misses to the new owner. *)

val reliable_stats : t -> Reliable.stats
(** Aggregate over the controller session and all peer sessions. *)

val flush_report : t -> unit
(** Force the periodic advert/report cycle now (tests and shutdown). *)
