(** LazyCtrl's OpenFlow protocol extensions.

    These are the payloads carried in {!Lazyctrl_openflow.Message.Extension}
    over the three channel kinds of §III-B3: control links (controller ↔
    switch), state links (controller ↔ designated switch) and peer links
    (switch ↔ switch within a group). *)

open Lazyctrl_net
open Lazyctrl_sim

type host_key = { mac : Mac.t; ip : Ipv4.t; tenant : Ids.Tenant_id.t }
(** The identity tuple tracked by L-FIBs and disseminated between
    switches. *)

val host_key_compare : host_key -> host_key -> int
val host_key_equal : host_key -> host_key -> bool
(** Keyed comparisons (mac, then ip, then tenant) — prefer these to
    polymorphic [=] on host keys. *)

val mac_key : Mac.t -> int
(** Bloom-filter key for a MAC (tagged apart from the IP key space). *)

val ip_key : Ipv4.t -> int

type group_config = {
  group : Ids.Group_id.t;
  members : Ids.Switch_id.t list;
      (** ordered by management MAC — ascending switch id here — which
          defines the failure-detection wheel *)
  designated : Ids.Switch_id.t;
  backups : Ids.Switch_id.t list;
  sync_period : Time.t;      (** designated → controller state reports *)
  keepalive_period : Time.t; (** wheel keep-alives *)
}

type lfib_delta = {
  origin : Ids.Switch_id.t;
  added : host_key list;
  removed : host_key list;
  full : bool;
      (* when true, [added] is the origin's complete table and receivers
         rebuild their filter instead of applying a delta *)
}

type t =
  | Group_config of group_config
      (** controller → every member (control link) *)
  | Group_sync of { lfibs : (Ids.Switch_id.t * host_key list) list }
      (** controller → designated after regrouping: the C-LIB rows of the
          new group, to be re-broadcast so members rebuild their G-FIBs
          (§III-D3 asynchronous dissemination, case ii) *)
  | Lfib_advert of lfib_delta
      (** member → designated on L-FIB change, then designated → peers *)
  | Member_report of {
      origin : Ids.Switch_id.t;
      intensity : (Ids.Switch_id.t * int) list;
          (** new-flow counts to remote switches since the last report —
              the statistics that feed SGI *)
    }
      (** member → designated, periodic *)
  | State_report of {
      group : Ids.Group_id.t;
      deltas : lfib_delta list;
      intensity : (Ids.Switch_id.t * Ids.Switch_id.t * int) list;
    }
      (** designated → controller (state link), periodic *)
  | Group_arp of { origin : Ids.Switch_id.t; packet : Packet.t }
      (** switch → designated: broadcast this ARP inside the group *)
  | Arp_broadcast of { packet : Packet.t }
      (** designated → members; also controller → designated when relaying
          an ARP across groups *)
  | Arp_escalate of { origin : Ids.Switch_id.t; packet : Packet.t }
      (** designated → controller: target unknown to the whole group *)
  | False_positive of { at : Ids.Switch_id.t; dst : Mac.t }
      (** optional report of a Bloom-filter misdelivery (§III-D4) *)
  | Keepalive of { from : Ids.Switch_id.t }
      (** ring-neighbour keep-alive (peer link, both directions) *)
  | Ring_alarm of {
      observer : Ids.Switch_id.t;
      missing : Ids.Switch_id.t;
      direction : [ `Up | `Down ];
          (** [`Up]: the lost keep-alive travelled upstream (from [missing]
              to its ring predecessor [observer]); [`Down]: downstream *)
    }
      (** switch → controller: a wheel keep-alive went missing *)
  | Rehome of { term : int; master : int }
      (** controller-cluster member → switch: claim mastership.  [term]
          totally orders claims — a switch accepts a strictly greater term
          only, so a stale master's retransmitted claim can never yank it
          back — and [master] names the claiming member instance.  On
          acceptance the switch resets its control session, announces
          itself to the new master (Hello → config re-push), heals the
          master's C-LIB row with a full advert and drains buffered
          misses, so the handoff loses no packets. *)
  | Relay of { origin : Ids.Switch_id.t; boxed : t Lazyctrl_openflow.Message.t }
      (** a whole control-link message forwarded through a ring neighbour
          during control-link failover (§III-E2) *)
  | Seq of { epoch : int; seq : int; payload : t Lazyctrl_openflow.Message.t }
      (** a reliable-delivery envelope: [payload] numbered within the
          sender's [epoch] (bumped across reboots) by
          {!Lazyctrl_openflow.Reliable}; receivers dedup and reorder *)
  | Ack of { epoch : int; cum : int }
      (** cumulative ack for a reliable stream: every seq [<= cum] of
          [epoch] arrived ([cum = -1] when none have) *)

val size_estimate : t -> int
(** Approximate wire size for channel accounting; the byte-exact size is
    {!wire_size}. *)

val wire_size : t -> int
(** Exact bytes {!to_wire} emits (the extension half of DESIGN.md §13). *)

val to_wire : Lazyctrl_wire.Wire.W.t -> t -> unit
val of_wire : Lazyctrl_wire.Wire.R.t -> t

val wire_ext : t Lazyctrl_wire.Wire.ext
(** The bundled codec, ready for [Wire.encode]/[Wire.decode] and
    [Channel.set_codec] on control, state and peer links. *)

val pp : Format.formatter -> t -> unit

module Ring : sig
  (** The failure-detection wheel: members ordered by management MAC form
      a ring; the controller is a spoke to every member. *)

  val neighbors :
    members:Ids.Switch_id.t list -> Ids.Switch_id.t ->
    (Ids.Switch_id.t * Ids.Switch_id.t) option
  (** [neighbors ~members sw] is [(upstream, downstream)] of [sw] on the
      ring, or [None] when [sw] is not a member or the group has fewer
      than 2 members. Members are sorted internally. *)
end
