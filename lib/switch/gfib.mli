(** Group Forwarding Information Base.

    One counting Bloom filter per peer switch in the local control group,
    each summarizing that peer's L-FIB (§III-D2). Queries return the
    vector of peers whose filter claims the key — possibly several, due to
    false positives, in which case the datapath sends a copy to each
    (Fig. 5 line 18). Counting filters absorb incremental adds {e and}
    removes from [Lfib_advert]s; the per-peer sizing follows the paper's
    geometry of 128-byte Bloom blocks per 16 entries. *)

open Lazyctrl_net

type t

val create : ?bits_per_entry:int -> ?expected_hosts_per_switch:int -> unit -> t
(** Defaults: 128 bits/entry and 64 expected hosts per peer, i.e. a
    2048-byte filter per peer — the paper's 16 blocks of 128 bytes —
    giving a far-below-0.1% false-positive rate. Filters are sized once
    per peer and rebuilt on full syncs. *)

val set_peer : t -> Ids.Switch_id.t -> Proto.host_key list -> unit
(** Full replacement of a peer's filter (grouping change / full sync). *)

val apply_advert :
  t -> Ids.Switch_id.t -> added:Proto.host_key list -> removed:Proto.host_key list -> unit
(** Incremental update; unknown peers are created on first use. *)

val drop_peer : t -> Ids.Switch_id.t -> unit
val peers : t -> Ids.Switch_id.t list
val n_peers : t -> int

val candidates_mac : t -> Mac.t -> Ids.Switch_id.t list
(** Peers whose filter matches the MAC, ascending id (deterministic). *)

val candidates_ip : t -> Ipv4.t -> Ids.Switch_id.t list

val iter_candidates_mac : t -> Mac.t -> (Ids.Switch_id.t -> unit) -> int
(** [iter_candidates_mac t mac f] calls [f] on each matching peer in
    ascending id order — the same visit order as {!candidates_mac} —
    without building the intermediate list, and returns the number of
    candidates visited.  This is the per-packet fast path. *)

val iter_candidates_ip : t -> Ipv4.t -> (Ids.Switch_id.t -> unit) -> int

val has_candidate_ip : t -> Ipv4.t -> bool
(** Does any peer filter claim this IP?  Early-exits on first match. *)

val storage_bytes : t -> int
(** Total bit-array bytes across peers — the §V-D storage-overhead
    metric. *)

val clear : t -> unit
