open Lazyctrl_net
module Intmap = Lazyctrl_util.Intmap

(* [by_mac]/[by_ip] are Intmaps, not Hashtbls: [Hashtbl.find_opt] boxes
   every hit in a fresh [Some] (~1.65 minor words/op measured on the
   hp-lfib-lookup probe — an H004 calibration gap), while [Intmap.find]
   returns the option stored at insertion time and allocates nothing. *)
type t = {
  by_id : Host.t Ids.Host_id.Tbl.t;
  by_mac : Host.t Intmap.t;
  by_ip : Host.t Intmap.t;
  mutable pending_added : Proto.host_key list;
  mutable pending_removed : Proto.host_key list;
}

let create () =
  {
    by_id = Ids.Host_id.Tbl.create 32;
    by_mac = Intmap.create ~capacity:32 ();
    by_ip = Intmap.create ~capacity:32 ();
    pending_added = [];
    pending_removed = [];
  }

let key_of (h : Host.t) : Proto.host_key =
  { mac = h.mac; ip = h.ip; tenant = h.tenant }

let learn t (h : Host.t) =
  if Ids.Host_id.Tbl.mem t.by_id h.id then false
  else begin
    Ids.Host_id.Tbl.replace t.by_id h.id h;
    Intmap.replace t.by_mac (Mac.to_int h.mac) h;
    Intmap.replace t.by_ip (Ipv4.to_int h.ip) h;
    t.pending_added <- key_of h :: t.pending_added;
    true
  end

let forget t id =
  match Ids.Host_id.Tbl.find_opt t.by_id id with
  | None -> false
  | Some h ->
      Ids.Host_id.Tbl.remove t.by_id id;
      Intmap.remove t.by_mac (Mac.to_int h.mac);
      Intmap.remove t.by_ip (Ipv4.to_int h.ip);
      t.pending_removed <- key_of h :: t.pending_removed;
      true

let lookup_mac t mac = Intmap.find t.by_mac (Mac.to_int mac)
let lookup_ip t ip = Intmap.find t.by_ip (Ipv4.to_int ip)
let lookup_id t id = Ids.Host_id.Tbl.find_opt t.by_id id
let mem_host t id = Ids.Host_id.Tbl.mem t.by_id id
let size t = Ids.Host_id.Tbl.length t.by_id

let hosts t =
  Ids.Host_id.Tbl.fold (fun _ h acc -> h :: acc) t.by_id [] |> List.sort Host.compare

let local_tenants t =
  hosts t |> List.map (fun (h : Host.t) -> h.tenant) |> List.sort_uniq Ids.Tenant_id.compare

let hosts_of_tenant t tenant =
  hosts t |> List.filter (fun (h : Host.t) -> Ids.Tenant_id.equal h.tenant tenant)

let take_pending t =
  let added = List.rev t.pending_added and removed = List.rev t.pending_removed in
  t.pending_added <- [];
  t.pending_removed <- [];
  (added, removed)

let has_pending t =
  (not (List.is_empty t.pending_added))
  || not (List.is_empty t.pending_removed)

let all_keys t = List.map key_of (hosts t)

let to_bloom ?(bits_per_entry = 16) t =
  let n = max 1 (size t) in
  let bits = max 64 (bits_per_entry * 2 * n) in
  let bloom = Lazyctrl_bloom.Bloom.create ~bits () in
  Ids.Host_id.Tbl.iter
    (fun _ (h : Host.t) ->
      Lazyctrl_bloom.Bloom.add bloom (Proto.mac_key h.mac);
      Lazyctrl_bloom.Bloom.add bloom (Proto.ip_key h.ip))
    t.by_id;
  bloom
