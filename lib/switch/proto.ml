open Lazyctrl_net
open Lazyctrl_sim
module Message = Lazyctrl_openflow.Message

type host_key = { mac : Mac.t; ip : Ipv4.t; tenant : Ids.Tenant_id.t }

(* Keyed comparisons so host keys never go through polymorphic [=]:
   mac is the primary key; ip/tenant disambiguate re-used MACs in tests. *)
let host_key_compare a b =
  match Mac.compare a.mac b.mac with
  | 0 -> (
      match Ipv4.compare a.ip b.ip with
      | 0 -> Ids.Tenant_id.compare a.tenant b.tenant
      | c -> c)
  | c -> c

let host_key_equal a b = Int.equal (host_key_compare a b) 0

(* Tag the two key spaces apart in the low bit; MACs are 48-bit and IPs
   32-bit, so the shifted values stay well inside 62 bits. *)
let mac_key m = (Mac.to_int m lsl 1) lor 1
let ip_key ip = Ipv4.to_int ip lsl 1

type group_config = {
  group : Ids.Group_id.t;
  members : Ids.Switch_id.t list;
  designated : Ids.Switch_id.t;
  backups : Ids.Switch_id.t list;
  sync_period : Time.t;
  keepalive_period : Time.t;
}

type lfib_delta = {
  origin : Ids.Switch_id.t;
  added : host_key list;
  removed : host_key list;
  full : bool;
      (* when true, [added] is the origin's complete table and receivers
         rebuild their filter instead of applying a delta *)
}

type t =
  | Group_config of group_config
  | Group_sync of { lfibs : (Ids.Switch_id.t * host_key list) list }
  | Lfib_advert of lfib_delta
  | Member_report of {
      origin : Ids.Switch_id.t;
      intensity : (Ids.Switch_id.t * int) list;
    }
  | State_report of {
      group : Ids.Group_id.t;
      deltas : lfib_delta list;
      intensity : (Ids.Switch_id.t * Ids.Switch_id.t * int) list;
    }
  | Group_arp of { origin : Ids.Switch_id.t; packet : Packet.t }
  | Arp_broadcast of { packet : Packet.t }
  | Arp_escalate of { origin : Ids.Switch_id.t; packet : Packet.t }
  | False_positive of { at : Ids.Switch_id.t; dst : Mac.t }
  | Keepalive of { from : Ids.Switch_id.t }
  | Ring_alarm of {
      observer : Ids.Switch_id.t;
      missing : Ids.Switch_id.t;
      direction : [ `Up | `Down ];
    }
  | Rehome of { term : int; master : int }
      (* a controller-cluster member claims mastership of this switch;
         [term] totally orders claims (strictly greater wins, so a stale
         master's retransmitted claim can never yank the switch back) and
         [master] names the claiming member instance *)
  | Relay of { origin : Ids.Switch_id.t; boxed : t Message.t }
  | Seq of { epoch : int; seq : int; payload : t Message.t }
  | Ack of { epoch : int; cum : int }

let host_key_size = 14 (* 6 MAC + 4 IP + 4 tenant/vlan *)

let delta_size (d : lfib_delta) =
  10 + (host_key_size * (List.length d.added + List.length d.removed))

let rec size_estimate = function
  | Group_config c -> 32 + (4 * List.length c.members) + (4 * List.length c.backups)
  | Group_sync { lfibs } ->
      8
      + List.fold_left
          (fun acc (_, keys) -> acc + 6 + (host_key_size * List.length keys))
          0 lfibs
  | Lfib_advert d -> delta_size d
  | Member_report { intensity; _ } -> 10 + (8 * List.length intensity)
  | State_report { deltas; intensity; _ } ->
      16
      + List.fold_left (fun acc d -> acc + delta_size d) 0 deltas
      + (12 * List.length intensity)
  | Group_arp { packet; _ } -> 12 + Packet.size_on_wire packet
  | Arp_broadcast { packet } -> 8 + Packet.size_on_wire packet
  | Arp_escalate { packet; _ } -> 12 + Packet.size_on_wire packet
  | False_positive _ -> 16
  | Keepalive _ -> 10
  | Ring_alarm _ -> 16
  | Rehome _ -> 12
  | Relay { boxed; _ } -> 8 + Message.size_estimate size_estimate boxed
  | Seq { payload; _ } -> 12 + Message.size_estimate size_estimate payload
  | Ack _ -> 12

let rec pp fmt = function
  | Group_config c ->
      Format.fprintf fmt "group_config(%a,|members|=%d,designated=%a)"
        Ids.Group_id.pp c.group (List.length c.members) Ids.Switch_id.pp
        c.designated
  | Group_sync { lfibs } -> Format.fprintf fmt "group_sync(|lfibs|=%d)" (List.length lfibs)
  | Lfib_advert { origin; added; removed; _ } ->
      Format.fprintf fmt "lfib_advert(%a,+%d,-%d)" Ids.Switch_id.pp origin
        (List.length added) (List.length removed)
  | Member_report { origin; intensity } ->
      Format.fprintf fmt "member_report(%a,|intensity|=%d)" Ids.Switch_id.pp
        origin (List.length intensity)
  | State_report { group; deltas; intensity } ->
      Format.fprintf fmt "state_report(%a,|deltas|=%d,|intensity|=%d)"
        Ids.Group_id.pp group (List.length deltas) (List.length intensity)
  | Group_arp { origin; _ } ->
      Format.fprintf fmt "group_arp(%a)" Ids.Switch_id.pp origin
  | Arp_broadcast _ -> Format.pp_print_string fmt "arp_broadcast"
  | Arp_escalate { origin; _ } ->
      Format.fprintf fmt "arp_escalate(%a)" Ids.Switch_id.pp origin
  | False_positive { at; dst } ->
      Format.fprintf fmt "false_positive(%a,%a)" Ids.Switch_id.pp at Mac.pp dst
  | Keepalive { from } -> Format.fprintf fmt "keepalive(%a)" Ids.Switch_id.pp from
  | Ring_alarm { observer; missing; direction } ->
      Format.fprintf fmt "ring_alarm(%a misses %a,%s)" Ids.Switch_id.pp observer
        Ids.Switch_id.pp missing
        (match direction with `Up -> "up" | `Down -> "down")
  | Rehome { term; master } -> Format.fprintf fmt "rehome(t%d,c%d)" term master
  | Relay { origin; boxed } ->
      Format.fprintf fmt "relay(%a,%a)" Ids.Switch_id.pp origin (Message.pp pp) boxed
  | Seq { epoch; seq; payload } ->
      Format.fprintf fmt "seq(e%d,#%d,%a)" epoch seq (Message.pp pp) payload
  | Ack { epoch; cum } -> Format.fprintf fmt "ack(e%d,cum=%d)" epoch cum

(* --- binary codec (DESIGN.md §13) -------------------------------------
   The extension half of the wire format: exact sizes, then writer and
   reader over [Wire]'s positional primitives. [Relay]/[Seq] box a whole
   ['t Message.t], so the codec recurses through [Wire.write_message] /
   [Wire.read_message] with itself as the extension codec. *)

module Wire = Lazyctrl_wire.Wire

let key_wire_size = host_key_size (* 6 mac + 4 ip + 4 tenant *)

let delta_wire_size (d : lfib_delta) =
  13 + (key_wire_size * (List.length d.added + List.length d.removed))

let rec wire_size = function
  | Group_config c ->
      33 + (4 * List.length c.members) + (4 * List.length c.backups)
  | Group_sync { lfibs } ->
      5
      + List.fold_left
          (fun acc (_, keys) -> acc + 8 + (key_wire_size * List.length keys))
          0 lfibs
  | Lfib_advert d -> 1 + delta_wire_size d
  | Member_report { intensity; _ } -> 9 + (8 * List.length intensity)
  | State_report { deltas; intensity; _ } ->
      13
      + List.fold_left (fun acc d -> acc + delta_wire_size d) 0 deltas
      + (12 * List.length intensity)
  | Group_arp { packet; _ } -> 5 + Wire.packet_size ~full:true packet
  | Arp_broadcast { packet } -> 1 + Wire.packet_size ~full:true packet
  | Arp_escalate { packet; _ } -> 5 + Wire.packet_size ~full:true packet
  | False_positive _ -> 11
  | Keepalive _ -> 5
  | Ring_alarm _ -> 10
  | Rehome _ -> 13
  | Relay { boxed; _ } -> 5 + Wire.message_size wire_ext boxed
  | Seq { payload; _ } -> 17 + Wire.message_size wire_ext payload
  | Ack _ -> 17

and to_wire w t =
  let open Wire.W in
  let switch s = u32 w (Ids.Switch_id.to_int s) in
  let key k =
    mac w k.mac;
    ip w k.ip;
    u32 w (Ids.Tenant_id.to_int k.tenant)
  in
  let delta (d : lfib_delta) =
    switch d.origin;
    u8 w (if d.full then 1 else 0);
    u32 w (List.length d.added);
    u32 w (List.length d.removed);
    List.iter key d.added;
    List.iter key d.removed
  in
  match t with
  | Group_config c ->
      u8 w 0;
      u32 w (Ids.Group_id.to_int c.group);
      switch c.designated;
      i64 w (Time.to_ns c.sync_period);
      i64 w (Time.to_ns c.keepalive_period);
      u32 w (List.length c.members);
      List.iter switch c.members;
      u32 w (List.length c.backups);
      List.iter switch c.backups
  | Group_sync { lfibs } ->
      u8 w 1;
      u32 w (List.length lfibs);
      List.iter
        (fun (s, keys) ->
          switch s;
          u32 w (List.length keys);
          List.iter key keys)
        lfibs
  | Lfib_advert d ->
      u8 w 2;
      delta d
  | Member_report { origin; intensity } ->
      u8 w 3;
      switch origin;
      u32 w (List.length intensity);
      List.iter
        (fun (s, n) ->
          switch s;
          u32 w n)
        intensity
  | State_report { group; deltas; intensity } ->
      u8 w 4;
      u32 w (Ids.Group_id.to_int group);
      u32 w (List.length deltas);
      List.iter delta deltas;
      u32 w (List.length intensity);
      List.iter
        (fun (a, b, n) ->
          switch a;
          switch b;
          u32 w n)
        intensity
  | Group_arp { origin; packet } ->
      u8 w 5;
      switch origin;
      Wire.write_packet w ~full:true packet
  | Arp_broadcast { packet } ->
      u8 w 6;
      Wire.write_packet w ~full:true packet
  | Arp_escalate { origin; packet } ->
      u8 w 7;
      switch origin;
      Wire.write_packet w ~full:true packet
  | False_positive { at; dst } ->
      u8 w 8;
      switch at;
      mac w dst
  | Keepalive { from } ->
      u8 w 9;
      switch from
  | Ring_alarm { observer; missing; direction } ->
      u8 w 10;
      switch observer;
      switch missing;
      u8 w (match direction with `Up -> 0 | `Down -> 1)
  | Rehome { term; master } ->
      u8 w 11;
      i64 w term;
      u32 w master
  | Relay { origin; boxed } ->
      u8 w 12;
      switch origin;
      Wire.write_message wire_ext w boxed
  | Seq { epoch; seq; payload } ->
      u8 w 13;
      i64 w epoch;
      i64 w seq;
      Wire.write_message wire_ext w payload
  | Ack { epoch; cum } ->
      u8 w 14;
      i64 w epoch;
      i64 w cum

and of_wire r =
  let open Wire.R in
  let switch () = Ids.Switch_id.of_int (u32 r) in
  let key () =
    let mac = mac r in
    let ip = ip r in
    let tenant = Ids.Tenant_id.of_int (u32 r) in
    { mac; ip; tenant }
  in
  let keys n = List.init n (fun _ -> key ()) in
  let delta () =
    let origin = switch () in
    let full = u8 r <> 0 in
    let n_added = u32 r in
    let n_removed = u32 r in
    let added = keys n_added in
    let removed = keys n_removed in
    { origin; added; removed; full }
  in
  match u8 r with
  | 0 ->
      let group = Ids.Group_id.of_int (u32 r) in
      let designated = switch () in
      let sync_period = Time.of_ns (i64 r) in
      let keepalive_period = Time.of_ns (i64 r) in
      let members = List.init (u32 r) (fun _ -> switch ()) in
      let backups = List.init (u32 r) (fun _ -> switch ()) in
      Group_config
        { group; members; designated; backups; sync_period; keepalive_period }
  | 1 ->
      let lfibs =
        List.init (u32 r) (fun _ ->
            let s = switch () in
            let ks = keys (u32 r) in
            (s, ks))
      in
      Group_sync { lfibs }
  | 2 -> Lfib_advert (delta ())
  | 3 ->
      let origin = switch () in
      let intensity =
        List.init (u32 r) (fun _ ->
            let s = switch () in
            let n = u32 r in
            (s, n))
      in
      Member_report { origin; intensity }
  | 4 ->
      let group = Ids.Group_id.of_int (u32 r) in
      let deltas = List.init (u32 r) (fun _ -> delta ()) in
      let intensity =
        List.init (u32 r) (fun _ ->
            let a = switch () in
            let b = switch () in
            let n = u32 r in
            (a, b, n))
      in
      State_report { group; deltas; intensity }
  | 5 ->
      let origin = switch () in
      let packet = Wire.read_full_packet r in
      Group_arp { origin; packet }
  | 6 -> Arp_broadcast { packet = Wire.read_full_packet r }
  | 7 ->
      let origin = switch () in
      let packet = Wire.read_full_packet r in
      Arp_escalate { origin; packet }
  | 8 ->
      let at = switch () in
      let dst = mac r in
      False_positive { at; dst }
  | 9 -> Keepalive { from = switch () }
  | 10 ->
      let observer = switch () in
      let missing = switch () in
      let direction =
        match u8 r with
        | 0 -> `Up
        | 1 -> `Down
        | _ -> invalid_arg "Proto.of_wire: bad ring direction"
      in
      Ring_alarm { observer; missing; direction }
  | 11 ->
      let term = i64 r in
      let master = u32 r in
      Rehome { term; master }
  | 12 ->
      let origin = switch () in
      let boxed = Wire.read_message wire_ext r in
      Relay { origin; boxed }
  | 13 ->
      let epoch = i64 r in
      let seq = i64 r in
      let payload = Wire.read_message wire_ext r in
      Seq { epoch; seq; payload }
  | 14 ->
      let epoch = i64 r in
      let cum = i64 r in
      Ack { epoch; cum }
  | _ -> invalid_arg "Proto.of_wire: unknown extension tag"

and wire_ext =
  { Wire.ext_size = wire_size; ext_write = to_wire; ext_read = of_wire }

module Ring = struct
  let neighbors ~members sw =
    let sorted = List.sort Ids.Switch_id.compare members in
    let arr = Array.of_list sorted in
    let n = Array.length arr in
    if n < 2 then None
    else
      let idx = ref (-1) in
      Array.iteri (fun i s -> if Ids.Switch_id.equal s sw then idx := i) arr;
      if !idx < 0 then None
      else
        let up = arr.((!idx + n - 1) mod n) in
        let down = arr.((!idx + 1) mod n) in
        Some (up, down)
end
