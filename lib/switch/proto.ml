open Lazyctrl_net
open Lazyctrl_sim
module Message = Lazyctrl_openflow.Message

type host_key = { mac : Mac.t; ip : Ipv4.t; tenant : Ids.Tenant_id.t }

(* Keyed comparisons so host keys never go through polymorphic [=]:
   mac is the primary key; ip/tenant disambiguate re-used MACs in tests. *)
let host_key_compare a b =
  match Mac.compare a.mac b.mac with
  | 0 -> (
      match Ipv4.compare a.ip b.ip with
      | 0 -> Ids.Tenant_id.compare a.tenant b.tenant
      | c -> c)
  | c -> c

let host_key_equal a b = Int.equal (host_key_compare a b) 0

(* Tag the two key spaces apart in the low bit; MACs are 48-bit and IPs
   32-bit, so the shifted values stay well inside 62 bits. *)
let mac_key m = (Mac.to_int m lsl 1) lor 1
let ip_key ip = Ipv4.to_int ip lsl 1

type group_config = {
  group : Ids.Group_id.t;
  members : Ids.Switch_id.t list;
  designated : Ids.Switch_id.t;
  backups : Ids.Switch_id.t list;
  sync_period : Time.t;
  keepalive_period : Time.t;
}

type lfib_delta = {
  origin : Ids.Switch_id.t;
  added : host_key list;
  removed : host_key list;
  full : bool;
      (* when true, [added] is the origin's complete table and receivers
         rebuild their filter instead of applying a delta *)
}

type t =
  | Group_config of group_config
  | Group_sync of { lfibs : (Ids.Switch_id.t * host_key list) list }
  | Lfib_advert of lfib_delta
  | Member_report of {
      origin : Ids.Switch_id.t;
      intensity : (Ids.Switch_id.t * int) list;
    }
  | State_report of {
      group : Ids.Group_id.t;
      deltas : lfib_delta list;
      intensity : (Ids.Switch_id.t * Ids.Switch_id.t * int) list;
    }
  | Group_arp of { origin : Ids.Switch_id.t; packet : Packet.t }
  | Arp_broadcast of { packet : Packet.t }
  | Arp_escalate of { origin : Ids.Switch_id.t; packet : Packet.t }
  | False_positive of { at : Ids.Switch_id.t; dst : Mac.t }
  | Keepalive of { from : Ids.Switch_id.t }
  | Ring_alarm of {
      observer : Ids.Switch_id.t;
      missing : Ids.Switch_id.t;
      direction : [ `Up | `Down ];
    }
  | Rehome of { term : int; master : int }
      (* a controller-cluster member claims mastership of this switch;
         [term] totally orders claims (strictly greater wins, so a stale
         master's retransmitted claim can never yank the switch back) and
         [master] names the claiming member instance *)
  | Relay of { origin : Ids.Switch_id.t; boxed : t Message.t }
  | Seq of { epoch : int; seq : int; payload : t Message.t }
  | Ack of { epoch : int; cum : int }

let host_key_size = 14 (* 6 MAC + 4 IP + 4 tenant/vlan *)

let delta_size (d : lfib_delta) =
  10 + (host_key_size * (List.length d.added + List.length d.removed))

let rec size_estimate = function
  | Group_config c -> 32 + (4 * List.length c.members) + (4 * List.length c.backups)
  | Group_sync { lfibs } ->
      8
      + List.fold_left
          (fun acc (_, keys) -> acc + 6 + (host_key_size * List.length keys))
          0 lfibs
  | Lfib_advert d -> delta_size d
  | Member_report { intensity; _ } -> 10 + (8 * List.length intensity)
  | State_report { deltas; intensity; _ } ->
      16
      + List.fold_left (fun acc d -> acc + delta_size d) 0 deltas
      + (12 * List.length intensity)
  | Group_arp { packet; _ } -> 12 + Packet.size_on_wire packet
  | Arp_broadcast { packet } -> 8 + Packet.size_on_wire packet
  | Arp_escalate { packet; _ } -> 12 + Packet.size_on_wire packet
  | False_positive _ -> 16
  | Keepalive _ -> 10
  | Ring_alarm _ -> 16
  | Rehome _ -> 12
  | Relay { boxed; _ } -> 8 + Message.size_estimate size_estimate boxed
  | Seq { payload; _ } -> 12 + Message.size_estimate size_estimate payload
  | Ack _ -> 12

let rec pp fmt = function
  | Group_config c ->
      Format.fprintf fmt "group_config(%a,|members|=%d,designated=%a)"
        Ids.Group_id.pp c.group (List.length c.members) Ids.Switch_id.pp
        c.designated
  | Group_sync { lfibs } -> Format.fprintf fmt "group_sync(|lfibs|=%d)" (List.length lfibs)
  | Lfib_advert { origin; added; removed; _ } ->
      Format.fprintf fmt "lfib_advert(%a,+%d,-%d)" Ids.Switch_id.pp origin
        (List.length added) (List.length removed)
  | Member_report { origin; intensity } ->
      Format.fprintf fmt "member_report(%a,|intensity|=%d)" Ids.Switch_id.pp
        origin (List.length intensity)
  | State_report { group; deltas; intensity } ->
      Format.fprintf fmt "state_report(%a,|deltas|=%d,|intensity|=%d)"
        Ids.Group_id.pp group (List.length deltas) (List.length intensity)
  | Group_arp { origin; _ } ->
      Format.fprintf fmt "group_arp(%a)" Ids.Switch_id.pp origin
  | Arp_broadcast _ -> Format.pp_print_string fmt "arp_broadcast"
  | Arp_escalate { origin; _ } ->
      Format.fprintf fmt "arp_escalate(%a)" Ids.Switch_id.pp origin
  | False_positive { at; dst } ->
      Format.fprintf fmt "false_positive(%a,%a)" Ids.Switch_id.pp at Mac.pp dst
  | Keepalive { from } -> Format.fprintf fmt "keepalive(%a)" Ids.Switch_id.pp from
  | Ring_alarm { observer; missing; direction } ->
      Format.fprintf fmt "ring_alarm(%a misses %a,%s)" Ids.Switch_id.pp observer
        Ids.Switch_id.pp missing
        (match direction with `Up -> "up" | `Down -> "down")
  | Rehome { term; master } -> Format.fprintf fmt "rehome(t%d,c%d)" term master
  | Relay { origin; boxed } ->
      Format.fprintf fmt "relay(%a,%a)" Ids.Switch_id.pp origin (Message.pp pp) boxed
  | Seq { epoch; seq; payload } ->
      Format.fprintf fmt "seq(e%d,#%d,%a)" epoch seq (Message.pp pp) payload
  | Ack { epoch; cum } -> Format.fprintf fmt "ack(e%d,cum=%d)" epoch cum

module Ring = struct
  let neighbors ~members sw =
    let sorted = List.sort Ids.Switch_id.compare members in
    let arr = Array.of_list sorted in
    let n = Array.length arr in
    if n < 2 then None
    else
      let idx = ref (-1) in
      Array.iteri (fun i s -> if Ids.Switch_id.equal s sw then idx := i) arr;
      if !idx < 0 then None
      else
        let up = arr.((!idx + n - 1) mod n) in
        let down = arr.((!idx + 1) mod n) in
        Some (up, down)
end
