open Lazyctrl_net
module Bloom = Lazyctrl_bloom.Bloom

type t = {
  bits_per_entry : int;
  expected : int;
  filters : Bloom.Counting.t Ids.Switch_id.Tbl.t;
  (* Peers sorted ascending by id, rebuilt lazily after membership
     changes. Per-packet probes walk this array instead of folding and
     sorting the hashtable, which kept the old implementation both slow
     and allocating. Counter mutations ([apply_advert] on a known peer)
     leave the cache valid because entries alias the live filters. *)
  mutable peer_cache : (Ids.Switch_id.t * Bloom.Counting.t) array option;
}

let create ?(bits_per_entry = 128) ?(expected_hosts_per_switch = 64) () =
  if bits_per_entry < 2 then invalid_arg "Gfib.create: bits_per_entry < 2";
  {
    bits_per_entry;
    expected = max 1 expected_hosts_per_switch;
    filters = Ids.Switch_id.Tbl.create 64;
    peer_cache = None;
  }

let invalidate t = t.peer_cache <- None

(* The rebuild allocates freely; it runs only after a membership change
   (set_peer/drop_peer/adopt), never per packet — a declared cold
   boundary in the H00x hot-path spec. *)
let rebuild_peer_cache t =
  let a =
    Ids.Switch_id.Tbl.fold (fun p f acc -> (p, f) :: acc) t.filters []
    |> List.sort (fun (a, _) (b, _) -> Ids.Switch_id.compare a b)
    |> Array.of_list
  in
  t.peer_cache <- Some a;
  a

let peer_array t =
  match t.peer_cache with Some a -> a | None -> rebuild_peer_cache t

let fresh_filter t =
  (* Two keys (MAC + IP) per host. *)
  Bloom.Counting.create ~counters:(t.bits_per_entry * 2 * t.expected) ()

let add_keys filter (keys : Proto.host_key list) =
  List.iter
    (fun (k : Proto.host_key) ->
      Bloom.Counting.add filter (Proto.mac_key k.mac);
      Bloom.Counting.add filter (Proto.ip_key k.ip))
    keys

let set_peer t peer keys =
  let filter = fresh_filter t in
  add_keys filter keys;
  Ids.Switch_id.Tbl.replace t.filters peer filter;
  invalidate t

let apply_advert t peer ~added ~removed =
  let filter =
    match Ids.Switch_id.Tbl.find_opt t.filters peer with
    | Some f -> f
    | None ->
        let f = fresh_filter t in
        Ids.Switch_id.Tbl.replace t.filters peer f;
        invalidate t;
        f
  in
  add_keys filter added;
  List.iter
    (fun (k : Proto.host_key) ->
      Bloom.Counting.remove filter (Proto.mac_key k.mac);
      Bloom.Counting.remove filter (Proto.ip_key k.ip))
    removed

let drop_peer t peer =
  Ids.Switch_id.Tbl.remove t.filters peer;
  invalidate t

let peers t = List.map fst (Array.to_list (peer_array t))
let n_peers t = Ids.Switch_id.Tbl.length t.filters

let candidates key t =
  let a = peer_array t in
  let acc = ref [] in
  for i = Array.length a - 1 downto 0 do
    let p, f = Array.unsafe_get a i in
    if Bloom.Counting.mem f key then acc := p :: !acc
  done;
  !acc

let candidates_mac t mac = candidates (Proto.mac_key mac) t
let candidates_ip t ip = candidates (Proto.ip_key ip) t

(* Match counting by recursion: a [ref] counter would be a per-probe
   minor allocation on the packet path. *)
let rec iter_candidates_from a key f i n =
  if i >= Array.length a then n
  else begin
    let p, flt = Array.unsafe_get a i in
    if Bloom.Counting.mem flt key then begin
      f p;
      iter_candidates_from a key f (i + 1) (n + 1)
    end
    else iter_candidates_from a key f (i + 1) n
  end

let iter_candidates key t f = iter_candidates_from (peer_array t) key f 0 0

let iter_candidates_mac t mac f = iter_candidates (Proto.mac_key mac) t f
let iter_candidates_ip t ip f = iter_candidates (Proto.ip_key ip) t f

let has_candidate key t =
  let a = peer_array t in
  let len = Array.length a in
  let rec go i =
    i < len
    &&
    let _, flt = Array.unsafe_get a i in
    Bloom.Counting.mem flt key || go (i + 1)
  in
  go 0

let has_candidate_ip t ip = has_candidate (Proto.ip_key ip) t

let storage_bytes t =
  (* Reported as the plain-Bloom wire size (bits), as in the paper's
     92,160-byte example; the counting representation is a host-side
     implementation detail. *)
  Ids.Switch_id.Tbl.fold
    (fun _ f acc -> acc + (Bloom.bits (Bloom.Counting.to_plain f) / 8))
    t.filters 0

let clear t =
  Ids.Switch_id.Tbl.reset t.filters;
  invalidate t
