open Lazyctrl_net
module Bloom = Lazyctrl_bloom.Bloom

type t = {
  bits_per_entry : int;
  expected : int;
  filters : Bloom.Counting.t Ids.Switch_id.Tbl.t;
}

let create ?(bits_per_entry = 128) ?(expected_hosts_per_switch = 64) () =
  if bits_per_entry < 2 then invalid_arg "Gfib.create: bits_per_entry < 2";
  {
    bits_per_entry;
    expected = max 1 expected_hosts_per_switch;
    filters = Ids.Switch_id.Tbl.create 64;
  }

let fresh_filter t =
  (* Two keys (MAC + IP) per host. *)
  Bloom.Counting.create ~counters:(t.bits_per_entry * 2 * t.expected) ()

let add_keys filter (keys : Proto.host_key list) =
  List.iter
    (fun (k : Proto.host_key) ->
      Bloom.Counting.add filter (Proto.mac_key k.mac);
      Bloom.Counting.add filter (Proto.ip_key k.ip))
    keys

let set_peer t peer keys =
  let filter = fresh_filter t in
  add_keys filter keys;
  Ids.Switch_id.Tbl.replace t.filters peer filter

let apply_advert t peer ~added ~removed =
  let filter =
    match Ids.Switch_id.Tbl.find_opt t.filters peer with
    | Some f -> f
    | None ->
        let f = fresh_filter t in
        Ids.Switch_id.Tbl.replace t.filters peer f;
        f
  in
  add_keys filter added;
  List.iter
    (fun (k : Proto.host_key) ->
      Bloom.Counting.remove filter (Proto.mac_key k.mac);
      Bloom.Counting.remove filter (Proto.ip_key k.ip))
    removed

let drop_peer t peer = Ids.Switch_id.Tbl.remove t.filters peer

let peers t =
  Ids.Switch_id.Tbl.fold (fun p _ acc -> p :: acc) t.filters []
  |> List.sort Ids.Switch_id.compare

let n_peers t = Ids.Switch_id.Tbl.length t.filters

let candidates key t =
  Ids.Switch_id.Tbl.fold
    (fun p f acc -> if Bloom.Counting.mem f key then p :: acc else acc)
    t.filters []
  |> List.sort Ids.Switch_id.compare

let candidates_mac t mac = candidates (Proto.mac_key mac) t
let candidates_ip t ip = candidates (Proto.ip_key ip) t

let storage_bytes t =
  (* Reported as the plain-Bloom wire size (bits), as in the paper's
     92,160-byte example; the counting representation is a host-side
     implementation detail. *)
  Ids.Switch_id.Tbl.fold
    (fun _ f acc -> acc + (Bloom.bits (Bloom.Counting.to_plain f) / 8))
    t.filters 0

let clear t = Ids.Switch_id.Tbl.reset t.filters
