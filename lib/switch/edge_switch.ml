open Lazyctrl_net
open Lazyctrl_sim
open Lazyctrl_openflow
module Det = Lazyctrl_util.Det
module Prng = Lazyctrl_util.Prng
module Tracer = Lazyctrl_trace.Tracer
module Tev = Lazyctrl_trace.Event
module Wire = Lazyctrl_wire.Wire

type msg = Proto.t Message.t

(* Exact §13 wire size of a reliable payload — the retransmission tax in
   the same real units as the channel byte counters. *)
let payload_wire_size (m : msg) = Wire.message_size Proto.wire_ext m

type env = {
  engine : Engine.t;
  send_controller : msg -> bool;
  send_peer : Ids.Switch_id.t -> msg -> unit;
  send_underlay : Packet.t -> unit;
  deliver_local : Host.t -> Packet.t -> unit;
  underlay_ip_of : Ids.Switch_id.t -> Ipv4.t;
}

type config = {
  flow_table_capacity : int;
  gfib_bits_per_entry : int;
  expected_hosts_per_switch : int;
  report_false_positives : bool;
  reliable_state : bool;
  retrans : Reliable.config;
  miss_buffer_capacity : int;
  buffer_pool_capacity : int;
  buffer_ttl : Time.t;
}

let default_config =
  {
    flow_table_capacity = 4096;
    gfib_bits_per_entry = 128;
    expected_hosts_per_switch = 64;
    report_false_positives = false;
    reliable_state = true;
    retrans = Reliable.default_config;
    miss_buffer_capacity = 128;
    buffer_pool_capacity = 64;
    buffer_ttl = Time.of_sec 1;
  }

type stats = {
  packets_from_hosts : int;
  packets_delivered : int;
  encap_sent : int;
  flow_table_handled : int;
  lfib_handled : int;
  gfib_handled : int;
  gfib_duplicates : int;
  punted : int;
  fp_drops : int;
  arp_local_answered : int;
  arp_group_escalated : int;
  adverts_sent : int;
  keepalives_sent : int;
  misses_buffered : int;
  misses_replayed : int;
}

type designated_state = {
  mutable buffered_deltas : Proto.lfib_delta list; (* newest first *)
  buffered_intensity : (int * int, int) Hashtbl.t;
}

type t = {
  env : env;
  config : config;
  tracer : Tracer.t;
  rng : Prng.t option; (* parent stream for reliable-session jitter *)
  self : Ids.Switch_id.t;
  lfib : Lfib.t;
  gfib : Gfib.t;
  table : Flow_table.t;
  intensity : (int, int) Hashtbl.t; (* remote switch id -> new-flow count *)
  designated_state : designated_state;
  mutable up : bool;
  mutable group : Proto.group_config option;
  mutable ring : (Ids.Switch_id.t * Ids.Switch_id.t) option; (* up, down *)
  mutable relay_via : Ids.Switch_id.t option;
  mutable master_term : int; (* highest accepted Rehome term *)
  mutable timers : Engine.event_id list;
  mutable last_seen_up : Time.t;   (* last keep-alive from upstream *)
  mutable last_seen_down : Time.t; (* last keep-alive from downstream *)
  mutable alarmed_up : bool;
  mutable alarmed_down : bool;
  mutable sync_ticks : int;
  (* reliable state dissemination *)
  mutable ctrl_session : msg Reliable.t option; (* created on first use *)
  peer_sessions : (int, msg Reliable.t) Hashtbl.t;
  mutable ctrl_suspect : bool; (* a control-link send failed; re-sync on reconnect *)
  miss_buffer : (Packet.t * Message.reason) Queue.t;
      (* inter-group misses punted while the control link was lost *)
  buffers : Buffer_pool.t;
      (* parked miss packets referenced by Packet_in buffer ids *)
  (* stats *)
  mutable s_from_hosts : int;
  mutable s_delivered : int;
  mutable s_encap : int;
  mutable s_flow_table : int;
  mutable s_lfib : int;
  mutable s_gfib : int;
  mutable s_gfib_dup : int;
  mutable s_punted : int;
  mutable s_fp_drops : int;
  mutable s_arp_local : int;
  mutable s_arp_escalated : int;
  mutable s_adverts : int;
  mutable s_keepalives : int;
  mutable s_miss_buffered : int;
  mutable s_miss_replayed : int;
}

let create ?(tracer = Tracer.disabled) ?rng env config ~self =
  {
    env;
    config;
    tracer;
    rng;
    self;
    lfib = Lfib.create ();
    gfib =
      Gfib.create ~bits_per_entry:config.gfib_bits_per_entry
        ~expected_hosts_per_switch:config.expected_hosts_per_switch ();
    table = Flow_table.create ~capacity:config.flow_table_capacity ();
    intensity = Hashtbl.create 32;
    designated_state =
      { buffered_deltas = []; buffered_intensity = Hashtbl.create 64 };
    up = true;
    group = None;
    ring = None;
    relay_via = None;
    master_term = 0;
    timers = [];
    last_seen_up = Time.zero;
    last_seen_down = Time.zero;
    alarmed_up = false;
    alarmed_down = false;
    sync_ticks = 0;
    ctrl_session = None;
    peer_sessions = Hashtbl.create 8;
    ctrl_suspect = false;
    miss_buffer = Queue.create ();
    buffers =
      Buffer_pool.create ~capacity:config.buffer_pool_capacity
        ~ttl:config.buffer_ttl ();
    s_from_hosts = 0;
    s_delivered = 0;
    s_encap = 0;
    s_flow_table = 0;
    s_lfib = 0;
    s_gfib = 0;
    s_gfib_dup = 0;
    s_punted = 0;
    s_fp_drops = 0;
    s_arp_local = 0;
    s_arp_escalated = 0;
    s_adverts = 0;
    s_keepalives = 0;
    s_miss_buffered = 0;
    s_miss_replayed = 0;
  }

let self t = t.self
let is_up t = t.up
let group t = t.group
let lfib t = t.lfib
let gfib t = t.gfib
let flow_table t = t.table

let is_designated t =
  match t.group with
  | Some c -> Ids.Switch_id.equal c.designated t.self
  | None -> false

let now t = Engine.now t.env.engine

(* Flight-recorder shorthand.  [Tracer.emit] is a no-op when disabled;
   call sites that build an event payload (e.g. [Tev.Gfib_probe n])
   additionally guard on [Tracer.enabled] so the disabled fast path
   allocates nothing. *)
let trace t kind =
  if Tracer.enabled t.tracer then
    Tracer.emit t.tracer ~now:(now t)
      ~switch:(Ids.Switch_id.to_int t.self)
      kind

let trace_pkt t packet kind =
  if Tracer.enabled t.tracer then
    Tracer.emit t.tracer ~now:(now t)
      ?flow:(Tracer.flow_of_packet packet)
      ~switch:(Ids.Switch_id.to_int t.self)
      kind

(* Raw control-link transmission (or relay through a ring neighbour);
   [false] flags a dead control link, which arms the reconnect re-sync. *)
let raw_send_controller t msg =
  let ok =
    match t.relay_via with
    | None -> t.env.send_controller msg
    | Some neighbor ->
        t.env.send_peer neighbor
          (Message.Extension (Proto.Relay { origin = t.self; boxed = msg }));
        true
  in
  if not ok then t.ctrl_suspect <- true;
  ok

let send_controller t msg = ignore (raw_send_controller t msg)

(* --- reliable sessions ---------------------------------------------------- *)

let ctrl_session t =
  match t.ctrl_session with
  | Some s -> s
  | None ->
      let s =
        Reliable.create ~tracer:t.tracer ?rng:t.rng
          ~payload_bytes:payload_wire_size t.env.engine t.config.retrans
          ~send_data:(fun ~epoch ~seq payload ->
            send_controller t (Message.Extension (Proto.Seq { epoch; seq; payload })))
          ~send_ack:(fun ~epoch ~cum ->
            send_controller t (Message.Extension (Proto.Ack { epoch; cum })))
          ~name:(Printf.sprintf "sw%d-ctrl" (Ids.Switch_id.to_int t.self))
          ()
      in
      t.ctrl_session <- Some s;
      s

let peer_session t sid =
  let key = Ids.Switch_id.to_int sid in
  match Hashtbl.find_opt t.peer_sessions key with
  | Some s -> s
  | None ->
      let s =
        Reliable.create ~tracer:t.tracer ?rng:t.rng
          ~payload_bytes:payload_wire_size t.env.engine t.config.retrans
          ~send_data:(fun ~epoch ~seq payload ->
            t.env.send_peer sid
              (Message.Extension (Proto.Seq { epoch; seq; payload })))
          ~send_ack:(fun ~epoch ~cum ->
            t.env.send_peer sid (Message.Extension (Proto.Ack { epoch; cum })))
          ~name:
            (Printf.sprintf "sw%d-sw%d" (Ids.Switch_id.to_int t.self) key)
          ()
      in
      Hashtbl.add t.peer_sessions key s;
      s

(* State dissemination (adverts, reports, alarms) goes through the
   reliable layer when enabled; packet traffic and keep-alives stay raw —
   a retransmitted keep-alive would defeat its purpose as loss detector. *)
let send_state_ctrl t msg =
  if t.config.reliable_state then Reliable.send (ctrl_session t) msg
  else send_controller t msg

let send_state_peer t sid msg =
  if t.config.reliable_state then Reliable.send (peer_session t sid) msg
  else t.env.send_peer sid msg

let deliver t host pkt =
  t.s_delivered <- t.s_delivered + 1;
  trace_pkt t pkt Tev.Deliver;
  t.env.deliver_local host pkt

(* The underlay address encoding is global knowledge (172.16/12 + switch
   id), so the reverse mapping needs no lookup service.  Returns the raw
   switch index, or -1 when the address is outside the underlay block —
   an option here would box on the per-encap hot path. *)
let switch_idx_of_underlay_ip ip =
  let idx = Ipv4.to_int ip - Ipv4.to_int (Ipv4.of_switch_id 0) in
  if idx >= 0 && idx < 1 lsl 16 then idx else -1

let count_intensity t sid =
  let key = Ids.Switch_id.to_int sid in
  Hashtbl.replace t.intensity key
    (1 + Option.value (Hashtbl.find_opt t.intensity key) ~default:0)

let encap_to t sid eth =
  t.s_encap <- t.s_encap + 1;
  t.env.send_underlay
    (Packet.encap
       ~outer_src:(t.env.underlay_ip_of t.self)
       ~outer_dst:(t.env.underlay_ip_of sid)
       eth)

let punt t packet reason =
  t.s_punted <- t.s_punted + 1;
  if Tracer.enabled t.tracer then
    trace_pkt t packet
      (Tev.Punt
         (match reason with
         | Message.No_match -> "no_match"
         | Message.Action_punt -> "action_punt"));
  (* Park the packet and punt a truncated header + buffer id; a full pool
     falls back to an unbuffered full-packet punt (DESIGN.md §13). *)
  let buffer_id =
    match Buffer_pool.store t.buffers ~now:(now t) packet with
    | Some id -> id
    | None -> Message.no_buffer
  in
  if not (raw_send_controller t (Message.Packet_in { packet; reason; buffer_id }))
  then begin
    (* Graceful degradation: the controller is unreachable, so the miss
       cannot be resolved now. Intra-group traffic keeps flowing from the
       G-FIB; inter-group misses wait in a bounded queue and are replayed
       on reconnect (overflow falls back to the pre-buffering behaviour:
       the packet is dropped and the flow's first packet is lost). *)
    if buffer_id <> Message.no_buffer then Buffer_pool.cancel t.buffers buffer_id;
    if Queue.length t.miss_buffer < t.config.miss_buffer_capacity then begin
      Queue.push (packet, reason) t.miss_buffer;
      t.s_miss_buffered <- t.s_miss_buffered + 1
    end
  end

(* --- designated-switch duties ------------------------------------------- *)

let buffer_delta t (d : Proto.lfib_delta) =
  let ds = t.designated_state in
  ds.buffered_deltas <- d :: ds.buffered_deltas

let merge_intensity t origin pairs =
  let ds = t.designated_state in
  List.iter
    (fun (remote, count) ->
      let o = Ids.Switch_id.to_int origin
      and r = Ids.Switch_id.to_int remote in
      let key = if o < r then (o, r) else (r, o) in
      Hashtbl.replace ds.buffered_intensity key
        (count + Option.value (Hashtbl.find_opt ds.buffered_intensity key) ~default:0))
    pairs

let group_members_except t except =
  match t.group with
  | None -> []
  | Some c ->
      List.filter
        (fun m -> not (List.exists (Ids.Switch_id.equal m) except))
        c.members

(* Relay an advert to every other member and buffer it for the next state
   report to the controller. *)
let designated_handle_advert t (d : Proto.lfib_delta) ~relay =
  if relay then begin
    if Tracer.enabled t.tracer then trace t (Tev.Designated_relay "advert");
    List.iter
      (fun m -> send_state_peer t m (Message.Extension (Proto.Lfib_advert d)))
      (group_members_except t [ t.self; d.origin ])
  end;
  buffer_delta t d

let apply_advert_to_gfib t (d : Proto.lfib_delta) =
  if not (Ids.Switch_id.equal d.origin t.self) then
    if d.full then Gfib.set_peer t.gfib d.origin d.added
    else Gfib.apply_advert t.gfib d.origin ~added:d.added ~removed:d.removed

let take_own_intensity t =
  (* Sorted by remote switch id so the report payload (and hence the
     simulation's event stream) is independent of hash-bucket layout. *)
  let pairs =
    List.map
      (fun (remote, count) -> (Ids.Switch_id.of_int remote, count))
      (Det.bindings_sorted ~cmp:Int.compare t.intensity)
  in
  Hashtbl.reset t.intensity;
  pairs

let send_state_report t =
  match t.group with
  | None -> ()
  | Some c ->
      if Tracer.enabled t.tracer then
        trace t (Tev.Designated_relay "state_report");
      merge_intensity t t.self (take_own_intensity t);
      let ds = t.designated_state in
      let intensity =
        List.map
          (fun ((a, b), count) ->
            (Ids.Switch_id.of_int a, Ids.Switch_id.of_int b, count))
          (Det.bindings_sorted ~cmp:Det.pair_compare ds.buffered_intensity)
      in
      let deltas = List.rev ds.buffered_deltas in
      ds.buffered_deltas <- [];
      Hashtbl.reset ds.buffered_intensity;
      send_state_ctrl t
        (Message.Extension (Proto.State_report { group = c.group; deltas; intensity }))

let send_member_report t =
  match t.group with
  | None -> ()
  | Some c ->
      let pairs = take_own_intensity t in
      if not (List.is_empty pairs) then
        send_state_peer t c.designated
          (Message.Extension (Proto.Member_report { origin = t.self; intensity = pairs }))

(* --- state advertisement ------------------------------------------------- *)

let advert_of_pending t =
  let added, removed = Lfib.take_pending t.lfib in
  if List.is_empty added && List.is_empty removed then None
  else Some { Proto.origin = t.self; added; removed; full = false }

let send_advert t (d : Proto.lfib_delta) =
  t.s_adverts <- t.s_adverts + 1;
  match t.group with
  | None -> () (* not grouped yet; the full sync at adoption covers it *)
  | Some c ->
      if Ids.Switch_id.equal c.designated t.self then
        designated_handle_advert t d ~relay:true
      else send_state_peer t c.designated (Message.Extension (Proto.Lfib_advert d))

let advertise_pending t =
  match advert_of_pending t with None -> () | Some d -> send_advert t d

(* --- ARP ------------------------------------------------------------------ *)

let local_arp_target t (eth : Packet.eth) =
  match eth.payload with
  | Packet.Arp { op = Packet.Request; target_ip; _ } ->
      Lfib.lookup_ip t.lfib target_ip
  | _ -> None

(* Deliver a group/controller-relayed ARP broadcast to the local owner, if
   any. Returns true when answered locally. *)
let try_answer_arp t packet =
  match local_arp_target t (Packet.eth_of packet) with
  | Some owner ->
      deliver t owner packet;
      true
  | None -> false

let designated_group_arp t ~origin packet =
  if Tracer.enabled t.tracer then trace t (Tev.Designated_relay "group_arp");
  (* Broadcast inside the group; every member checks its L-FIB. *)
  List.iter
    (fun m ->
      t.env.send_peer m (Message.Extension (Proto.Arp_broadcast { packet })))
    (group_members_except t [ t.self; origin ]);
  ignore (try_answer_arp t packet);
  (* If the aggregated group state has no trace of the target either, the
     request must leave the group: escalate to the controller (the
     deterministic stand-in for the paper's reply timeout). *)
  let eth = Packet.eth_of packet in
  let unknown_here =
    match eth.payload with
    | Packet.Arp { op = Packet.Request; target_ip; _ } ->
        Option.is_none (Lfib.lookup_ip t.lfib target_ip)
        && not (Gfib.has_candidate_ip t.gfib target_ip)
    | _ -> false
  in
  if unknown_here then begin
    trace t Tev.Arp_escalate;
    send_controller t
      (Message.Extension (Proto.Arp_escalate { origin; packet }))
  end

let handle_arp_request t packet target_ip =
  match Lfib.lookup_ip t.lfib target_ip with
  | Some owner ->
      t.s_arp_local <- t.s_arp_local + 1;
      trace t Tev.Arp_local;
      deliver t owner packet
  | None ->
      let eth = Packet.eth_of packet in
      let n = Gfib.iter_candidates_ip t.gfib target_ip (fun sid -> encap_to t sid eth) in
      if Tracer.enabled t.tracer then trace t (Tev.Gfib_probe n);
      if n = 0 then begin
        t.s_arp_escalated <- t.s_arp_escalated + 1;
        if is_designated t then designated_group_arp t ~origin:t.self packet
        else
          match t.group with
          | Some c ->
              trace t Tev.Arp_group;
              t.env.send_peer c.designated
                (Message.Extension (Proto.Group_arp { origin = t.self; packet }))
          | None ->
              (* Ungrouped bootstrap: only the controller can help. *)
              punt t packet Message.No_match
      end

(* --- data path (Fig. 5) --------------------------------------------------- *)

let flood_local t (eth : Packet.eth) =
  let sender_tenant =
    Option.map (fun (h : Host.t) -> h.tenant) (Lfib.lookup_mac t.lfib eth.src)
  in
  List.iter
    (fun (h : Host.t) ->
      let same_tenant =
        match sender_tenant with
        | Some ten -> Ids.Tenant_id.equal h.tenant ten
        | None -> true
      in
      if same_tenant && not (Mac.equal h.mac eth.src) then
        deliver t h (Packet.Plain eth))
    (Lfib.hosts t.lfib)

(* Recursion over the action list rather than [List.iter (fun ...)]: the
   literal would capture [t]/[packet] and allocate a closure per packet
   on the flow-table hit path. *)
let rec apply_actions t packet actions =
  match actions with
  | [] -> ()
  | action :: rest ->
      (match action with
      | Action.Deliver hid -> (
          match Lfib.lookup_id t.lfib hid with
          | Some h -> deliver t h packet
          | None -> ())
      | Action.Encap ip ->
          let idx = switch_idx_of_underlay_ip ip in
          if idx >= 0 then count_intensity t (Ids.Switch_id.of_int idx);
          t.s_encap <- t.s_encap + 1;
          t.env.send_underlay
            (Packet.encap
               ~outer_src:(t.env.underlay_ip_of t.self)
               ~outer_dst:ip (Packet.eth_of packet))
      | Action.Flood_local -> flood_local t (Packet.eth_of packet)
      | Action.To_controller -> punt t packet Message.Action_punt
      | Action.Drop -> ());
      apply_actions t packet rest

and data_path t packet =
  let eth = Packet.eth_of packet in
  match Flow_table.lookup t.table ~now:(now t) eth with
  | Some actions ->
      t.s_flow_table <- t.s_flow_table + 1;
      trace_pkt t packet Tev.Flow_table_hit;
      apply_actions t packet actions
  | None -> (
      match Lfib.lookup_mac t.lfib eth.dst with
      | Some host ->
          t.s_lfib <- t.s_lfib + 1;
          trace_pkt t packet Tev.Lfib_hit;
          deliver t host packet
      | None ->
          (* Per-packet fast path: probe the peer filters in place — no
             candidate list is materialized. Zero matches punt, exactly
             as the list-based code did. *)
          let n =
            Gfib.iter_candidates_mac t.gfib eth.dst (fun sid ->
                count_intensity t sid;
                encap_to t sid eth)
          in
          if Tracer.enabled t.tracer then
            trace_pkt t packet (Tev.Gfib_probe n);
          if n = 0 then punt t packet Message.No_match
          else begin
            t.s_gfib <- t.s_gfib + 1;
            t.s_gfib_dup <- t.s_gfib_dup + n - 1
          end)

(* --- host-facing entry points --------------------------------------------- *)

let attach_host t host =
  if Lfib.learn t.lfib host then advertise_pending t

let detach_host t hid = if Lfib.forget t.lfib hid then advertise_pending t

let handle_from_host t host packet =
  if t.up then begin
    t.s_from_hosts <- t.s_from_hosts + 1;
    trace_pkt t packet Tev.Ingress;
    (* Source learning, as in an ordinary L2 switch. *)
    if Lfib.learn t.lfib host then advertise_pending t;
    let eth = Packet.eth_of packet in
    match eth.payload with
    | Packet.Arp { op = Packet.Request; target_ip; _ } ->
        handle_arp_request t packet target_ip
    | Packet.Arp { op = Packet.Reply; _ } | Packet.Ipv4 _ -> data_path t packet
  end

(* §III-D4 misdelivery telemetry, off by default; declared a cold
   boundary — its frequency is the Bloom false-positive rate ε, not the
   packet rate. *)
let report_false_positive t dst =
  if t.config.report_false_positives then
    send_controller t (Message.Extension (Proto.False_positive { at = t.self; dst }))

let handle_underlay t packet =
  if t.up then
    match packet with
    | Packet.Plain _ -> () (* the core only carries encapsulated frames *)
    | Packet.Encap { inner; _ } -> (
        match inner.payload with
        | Packet.Arp { op = Packet.Request; _ } ->
            if not (try_answer_arp t (Packet.Plain inner)) then begin
              (* Bloom false positive on the IP key. *)
              t.s_fp_drops <- t.s_fp_drops + 1;
              trace t Tev.Bloom_fp;
              report_false_positive t inner.dst
            end
        | Packet.Arp { op = Packet.Reply; _ } | Packet.Ipv4 _ -> (
            (* Controller-installed rules (e.g. detour routes, §III-E2)
               apply to decapsulated traffic too, as they would in the
               Open vSwitch datapath; the L-FIB handles the common case. *)
            match Flow_table.lookup t.table ~now:(now t) inner with
            | Some actions ->
                t.s_flow_table <- t.s_flow_table + 1;
                trace_pkt t (Packet.Plain inner) Tev.Flow_table_hit;
                apply_actions t (Packet.Plain inner) actions
            | None -> (
                match Lfib.lookup_mac t.lfib inner.dst with
                | Some host -> deliver t host (Packet.Plain inner)
                | None ->
                    t.s_fp_drops <- t.s_fp_drops + 1;
                    trace_pkt t (Packet.Plain inner) Tev.Bloom_fp;
                    report_false_positive t inner.dst)))

(* --- wheel keep-alives ----------------------------------------------------- *)

let ring_alarm t ~missing ~direction =
  send_state_ctrl t
    (Message.Extension (Proto.Ring_alarm { observer = t.self; missing; direction }))

let keepalive_tick t =
  if t.up then
    match t.ring with
    | None -> ()
    | Some (up, down) ->
        t.s_keepalives <- t.s_keepalives + 2;
        t.env.send_peer up (Message.Extension (Proto.Keepalive { from = t.self }));
        t.env.send_peer down (Message.Extension (Proto.Keepalive { from = t.self }))

let keepalive_check t ~period =
  if t.up then
    match t.ring with
    | None -> ()
    | Some (up, down) ->
        let deadline = Time.scale period 2.5 in
        let late last = Time.(Time.diff (now t) last > deadline) in
        if late t.last_seen_up then begin
          if not t.alarmed_up then begin
            t.alarmed_up <- true;
            (* The upstream neighbour's keep-alive travels downstream. *)
            ring_alarm t ~missing:up ~direction:`Down
          end
        end
        else t.alarmed_up <- false;
        if late t.last_seen_down then begin
          if not t.alarmed_down then begin
            t.alarmed_down <- true;
            ring_alarm t ~missing:down ~direction:`Up
          end
        end
        else t.alarmed_down <- false

(* --- group (re)configuration ---------------------------------------------- *)

let cancel_timers t =
  List.iter (Engine.cancel t.env.engine) t.timers;
  t.timers <- []

let start_timers t (c : Proto.group_config) =
  let engine = t.env.engine in
  (* Spread periodic work across the period so reports do not synchronize. *)
  let offset period =
    Time.of_ns (Time.to_ns period * (Ids.Switch_id.to_int t.self mod 61) / 61)
  in
  let start_every ~period f =
    let id =
      Engine.schedule engine ~after:(offset period) (fun () ->
          f ();
          t.timers <- Engine.every engine ~period f :: t.timers)
    in
    t.timers <- id :: t.timers
  in
  start_every ~period:c.keepalive_period (fun () -> keepalive_tick t);
  start_every ~period:c.keepalive_period (fun () ->
      keepalive_check t ~period:c.keepalive_period);
  start_every ~period:c.sync_period (fun () ->
      if t.up then begin
        t.sync_ticks <- t.sync_ticks + 1;
        (* Every few cycles, re-advertise the full table: state is then
           self-healing against lost or misordered adverts (a full advert
           rebuilds the receivers' filters from scratch). *)
        if t.sync_ticks mod 5 = 0 then begin
          ignore (Lfib.take_pending t.lfib);
          send_advert t
            {
              Proto.origin = t.self;
              added = Lfib.all_keys t.lfib;
              removed = [];
              full = true;
            }
        end
        else advertise_pending t;
        if is_designated t then send_state_report t else send_member_report t
      end)

let adopt_group t (c : Proto.group_config) =
  cancel_timers t;
  t.group <- Some c;
  t.ring <- Proto.Ring.neighbors ~members:c.members t.self;
  t.last_seen_up <- now t;
  t.last_seen_down <- now t;
  t.alarmed_up <- false;
  t.alarmed_down <- false;
  t.relay_via <- None;
  (* Drop filters of switches that left the group. *)
  List.iter
    (fun peer ->
      if not (List.exists (Ids.Switch_id.equal peer) c.members) then
        Gfib.drop_peer t.gfib peer)
    (Gfib.peers t.gfib);
  (* Introduce ourselves to the (possibly new) designated switch. *)
  ignore (Lfib.take_pending t.lfib);
  let d =
    { Proto.origin = t.self; added = Lfib.all_keys t.lfib; removed = []; full = true }
  in
  send_advert t d;
  start_timers t c

(* --- message handling ------------------------------------------------------ *)

(* A new master controller claimed us (EASM migration or failover
   re-homing).  Strictly newer terms only: a stale master's
   retransmitted claim must not yank the session back.  The old reliable
   session cannot continue against the new master's fresh receive
   window, so bump our epoch, then re-sync toward the new owner: Hello
   (so it re-pushes our group config), a full advert (healing its C-LIB
   row), and the buffered misses drain to the new owner — this is what
   makes the master handoff lose no packets. *)
let rehome t ~term =
  if term > t.master_term then begin
    t.master_term <- term;
    (match t.ctrl_session with Some s -> Reliable.reset s | None -> ());
    t.ctrl_suspect <- false;
    ignore (raw_send_controller t Message.Hello);
    ignore (Lfib.take_pending t.lfib);
    send_state_ctrl t
      (Message.Extension
         (Proto.Lfib_advert
            {
              Proto.origin = t.self;
              added = Lfib.all_keys t.lfib;
              removed = [];
              full = true;
            }));
    let n = Queue.length t.miss_buffer in
    for _ = 1 to n do
      let packet, reason = Queue.pop t.miss_buffer in
      t.s_miss_replayed <- t.s_miss_replayed + 1;
      send_controller t
        (Message.Packet_in { packet; reason; buffer_id = Message.no_buffer })
    done
  end

let handle_extension_from_controller t = function
  | Proto.Group_config c -> adopt_group t c
  | Proto.Group_sync { lfibs } ->
      (* Rebuild the whole group's view: apply locally and re-broadcast as
         full adverts so every member rebuilds its G-FIB. *)
      List.iter
        (fun (sw, keys) ->
          let d = { Proto.origin = sw; added = keys; removed = []; full = true } in
          apply_advert_to_gfib t d;
          designated_handle_advert t d ~relay:true)
        lfibs
  | Proto.Arp_broadcast { packet } ->
      (* Cross-group relay: re-broadcast inside our group. *)
      List.iter
        (fun m ->
          t.env.send_peer m (Message.Extension (Proto.Arp_broadcast { packet })))
        (group_members_except t [ t.self ]);
      ignore (try_answer_arp t packet)
  | Proto.Lfib_advert d -> apply_advert_to_gfib t d
  | Proto.Rehome { term; master = _ } -> rehome t ~term
  | Proto.Group_arp _ | Proto.Member_report _ | Proto.State_report _
  | Proto.Arp_escalate _ | Proto.False_positive _ | Proto.Keepalive _
  | Proto.Ring_alarm _ | Proto.Relay _ ->
      ()
  | Proto.Seq _ | Proto.Ack _ -> () (* unwrapped one level up *)

(* The control link is back (we just heard from the controller after a
   failed send): replay buffered misses, revive the reliable session and
   run the anti-entropy re-sync — a full L-FIB advert to the controller
   (healing its C-LIB row, the controller applies [Lfib_advert] directly)
   and to the group (healing peer G-FIBs). *)
let reconnect t =
  t.ctrl_suspect <- false;
  if t.config.reliable_state then Reliable.kick (ctrl_session t);
  let n = Queue.length t.miss_buffer in
  for _ = 1 to n do
    let packet, reason = Queue.pop t.miss_buffer in
    t.s_miss_replayed <- t.s_miss_replayed + 1;
    send_controller t
      (Message.Packet_in { packet; reason; buffer_id = Message.no_buffer })
  done;
  ignore (Lfib.take_pending t.lfib);
  let d =
    { Proto.origin = t.self; added = Lfib.all_keys t.lfib; removed = []; full = true }
  in
  send_state_ctrl t (Message.Extension (Proto.Lfib_advert d));
  send_advert t d;
  (* If we lost our group while the link was out (e.g. a power cycle the
     controller never noticed), ask for a fresh config. *)
  if Option.is_none t.group then ignore (raw_send_controller t Message.Hello)

let rec handle_controller_message t msg =
  if t.up then begin
    if t.ctrl_suspect then reconnect t;
    (match t.ctrl_session with
    | Some s when Reliable.has_given_up s -> Reliable.kick s
    | _ -> ());
    match msg with
    | Message.Flow_mod (Message.Add entry) ->
        Flow_table.install t.table ~now:(now t) entry
    | Message.Flow_mod (Message.Delete m) ->
        ignore (Flow_table.remove_matching t.table m)
    | Message.Packet_out { packet; actions } -> apply_actions t packet actions
    | Message.Buffer_out { buffer_id; actions } -> (
        (* Release a parked miss; unknown/expired ids were already counted
           by the pool and the packet is simply gone (aged out). *)
        match Buffer_pool.take t.buffers ~now:(now t) buffer_id with
        | Some packet -> apply_actions t packet actions
        | None -> ())
    | Message.Echo_request n -> send_controller t (Message.Echo_reply n)
    | Message.Echo_reply _ | Message.Hello | Message.Packet_in _ -> ()
    | Message.Extension (Proto.Seq { epoch; seq; payload }) ->
        List.iter
          (handle_controller_message t)
          (Reliable.handle_data (ctrl_session t) ~epoch ~seq payload)
    | Message.Extension (Proto.Ack { epoch; cum }) ->
        Reliable.handle_ack (ctrl_session t) ~epoch ~cum
    | Message.Extension ext -> handle_extension_from_controller t ext
  end

let rec handle_peer_message t ~from msg =
  if t.up then begin
    (match Hashtbl.find_opt t.peer_sessions (Ids.Switch_id.to_int from) with
    | Some s when Reliable.has_given_up s -> Reliable.kick s
    | _ -> ());
    match msg with
    | Message.Extension ext -> (
        match ext with
        | Proto.Seq { epoch; seq; payload } ->
            List.iter
              (fun m -> handle_peer_message t ~from m)
              (Reliable.handle_data (peer_session t from) ~epoch ~seq payload)
        | Proto.Ack { epoch; cum } ->
            Reliable.handle_ack (peer_session t from) ~epoch ~cum
        | Proto.Lfib_advert d ->
            apply_advert_to_gfib t d;
            (* First-hand adverts reach the designated switch directly from
               their origin and still need relaying; copies relayed by the
               designated switch must not be relayed again. *)
            if is_designated t && Ids.Switch_id.equal from d.origin then
              designated_handle_advert t d ~relay:true
        | Proto.Member_report { origin; intensity } ->
            if is_designated t then merge_intensity t origin intensity
        | Proto.Group_arp { origin; packet } ->
            if is_designated t then designated_group_arp t ~origin packet
        | Proto.Arp_broadcast { packet } -> ignore (try_answer_arp t packet)
        | Proto.Keepalive { from = k } -> (
            match t.ring with
            | None -> ()
            | Some (up, down) ->
                if Ids.Switch_id.equal k up then t.last_seen_up <- now t;
                if Ids.Switch_id.equal k down then t.last_seen_down <- now t)
        | Proto.Relay _ as relayed ->
            (* We are the healthy neighbour: forward on our control link. *)
            ignore (t.env.send_controller (Message.Extension relayed))
        | Proto.Group_config _ | Proto.Group_sync _ | Proto.State_report _
        | Proto.Arp_escalate _ | Proto.False_positive _ | Proto.Ring_alarm _
        | Proto.Rehome _ ->
            ())
    | Message.Hello | Message.Echo_request _ | Message.Echo_reply _
    | Message.Packet_in _ | Message.Packet_out _ | Message.Buffer_out _
    | Message.Flow_mod _ ->
        ()
  end

let set_up t up =
  if t.up && not up then begin
    (* Power off: volatile state is lost. *)
    cancel_timers t;
    t.up <- false;
    t.group <- None;
    t.ring <- None;
    t.relay_via <- None;
    Gfib.clear t.gfib;
    t.designated_state.buffered_deltas <- [];
    Hashtbl.reset t.designated_state.buffered_intensity;
    Hashtbl.reset t.intensity;
    (* Reliable sessions do not survive a reboot: bump epochs so peers
       treat our post-reboot seq 0 as a new stream, not a stale dup. *)
    t.ctrl_suspect <- false;
    t.master_term <- 0;
    Queue.clear t.miss_buffer;
    Buffer_pool.clear t.buffers;
    (match t.ctrl_session with Some s -> Reliable.reset s | None -> ());
    Det.iter_sorted ~cmp:Int.compare
      (fun _ s -> Reliable.reset s)
      t.peer_sessions
  end
  else if (not t.up) && up then begin
    t.up <- true;
    (* Power-on handshake: announce ourselves so the controller re-pushes
       our group config even when the outage was shorter than its failure
       detection (otherwise we would sit ungrouped until the next regroup). *)
    ignore (raw_send_controller t Message.Hello)
  end

let set_control_relay t via = t.relay_via <- via

let flush_report t =
  if t.up then begin
    advertise_pending t;
    if is_designated t then send_state_report t else send_member_report t
  end

let stats t =
  {
    packets_from_hosts = t.s_from_hosts;
    packets_delivered = t.s_delivered;
    encap_sent = t.s_encap;
    flow_table_handled = t.s_flow_table;
    lfib_handled = t.s_lfib;
    gfib_handled = t.s_gfib;
    gfib_duplicates = t.s_gfib_dup;
    punted = t.s_punted;
    fp_drops = t.s_fp_drops;
    arp_local_answered = t.s_arp_local;
    arp_group_escalated = t.s_arp_escalated;
    adverts_sent = t.s_adverts;
    keepalives_sent = t.s_keepalives;
    misses_buffered = t.s_miss_buffered;
    misses_replayed = t.s_miss_replayed;
  }

let control_link_suspect t = t.ctrl_suspect
let misses_pending t = Queue.length t.miss_buffer
let buffer_stats t = Buffer_pool.stats t.buffers
let master_term t = t.master_term

let reliable_stats t =
  let acc =
    match t.ctrl_session with
    | None -> Reliable.stats_zero
    | Some s -> Reliable.stats s
  in
  List.fold_left
    (fun acc (_, s) -> Reliable.stats_add acc (Reliable.stats s))
    acc
    (Det.bindings_sorted ~cmp:Int.compare t.peer_sessions)
