(** Local Forwarding Information Base.

    The per-switch table of locally attached hosts (VMs), looked up like
    an ordinary layer-two MAC/ARP table (§III-D2), plus the bookkeeping
    needed for dissemination: pending added/removed entries since the last
    advertisement and a Bloom projection of the full table. *)

open Lazyctrl_net

type t

val create : unit -> t

val learn : t -> Host.t -> bool
(** [true] when the host was new (an advertisement-worthy change). *)

val forget : t -> Ids.Host_id.t -> bool
(** [true] when the host was present. *)

val lookup_mac : t -> Mac.t -> Host.t option
val lookup_ip : t -> Ipv4.t -> Host.t option

(** Direct by-id lookup; O(1), unlike scanning {!hosts}. *)
val lookup_id : t -> Ids.Host_id.t -> Host.t option
val mem_host : t -> Ids.Host_id.t -> bool
val size : t -> int
val hosts : t -> Host.t list

val local_tenants : t -> Ids.Tenant_id.t list

val hosts_of_tenant : t -> Ids.Tenant_id.t -> Host.t list

val take_pending : t -> Proto.host_key list * Proto.host_key list
(** [(added, removed)] since the previous call; clears the pending sets. *)

val has_pending : t -> bool

val all_keys : t -> Proto.host_key list
(** Full table as advertisement keys (for full state syncs). *)

val to_bloom : ?bits_per_entry:int -> t -> Lazyctrl_bloom.Bloom.t
(** Bloom projection over both MAC and IP keys of every host; default
    16 bits/entry (the paper's 128-byte/16-entry filter block geometry). *)
