(** The day-long packet-level runs behind Figs. 7, 8 and 9.

    Five configurations, as in §V-D: standard OpenFlow on the real-like
    trace, and LazyCtrl in {static, dynamic} × {real, expanded}. Each run
    replays 24 simulated hours through the full network simulation; the
    recorder's bucketed series are then sliced into the three figures.
    Runs are memoized per (seed, flow count) within a process. *)

open Lazyctrl_metrics

type config_name =
  | Openflow_real
  | Lazy_real_static
  | Lazy_real_dynamic
  | Lazy_expanded_static
  | Lazy_expanded_dynamic

val all_configs : config_name list
val config_label : config_name -> string

type run_result = {
  name : config_name;
  recorder : Recorder.t;
  switch_punted : int;
  switch_gfib_handled : int;
  flows_delivered : int;
  flows_started : int;
}

val run :
  ?tracer:Lazyctrl_trace.Tracer.t ->
  ?seed:int ->
  ?n_flows:int ->
  config_name ->
  run_result
(** Default: seed 42, 120k flows (a 1/2258 sampling of the paper's 271M;
    see EXPERIMENTS.md).  Results are memoized per
    [(config, seed, n_flows)] — except when [tracer] is given, which
    always performs a fresh, flight-recorded run. *)

val fig7_table : ?seed:int -> ?n_flows:int -> unit -> Lazyctrl_util.Table.t
(** Controller workload (requests/s) per 2-hour bucket for all five
    configurations. *)

val fig7_bytes_table : ?seed:int -> ?n_flows:int -> unit -> Lazyctrl_util.Table.t
(** Fig. 7 re-cast in real units: control-channel load in bytes/sec per
    2-hour bucket for all five configurations, as priced by the binary
    wire codec (DESIGN.md §13). *)

val ctrl_bytes_reduction : ?seed:int -> ?n_flows:int -> unit -> float
(** Overall reduction of control-channel bytes, LazyCtrl (real, dynamic)
    vs OpenFlow — the byte-level counterpart of {!workload_reduction}. *)

val fig8_table : ?seed:int -> ?n_flows:int -> unit -> Lazyctrl_util.Table.t
(** Grouping updates per hour, real vs expanded (dynamic runs). *)

val fig9_table : ?seed:int -> ?n_flows:int -> unit -> Lazyctrl_util.Table.t
(** Average forwarding latency (ms) per 2-hour bucket, OpenFlow vs
    LazyCtrl (real, dynamic). *)

val workload_reduction : ?seed:int -> ?n_flows:int -> unit -> float
(** Overall reduction of controller requests, LazyCtrl (real, dynamic) vs
    OpenFlow — the paper's headline "up to 82%". *)
