(** Ablation benches for the design choices DESIGN.md calls out.

    A2 — group-size limit: controller workload and per-switch G-FIB
    storage as the size cap sweeps (the Appendix C trade-off), plus the
    bargained limit from the Rubinstein negotiation.

    A3 — Bloom sizing: false-positive-driven duplicate deliveries and
    drops as bits/entry sweeps. *)

module Table = Lazyctrl_util.Table

val group_size_table : ?seed:int -> ?n_flows:int -> ?limits:int list -> unit -> Table.t
(** Short (6-hour) dynamic LazyCtrl runs per size limit. *)

val negotiation_table : unit -> Table.t
(** Equilibrium limits for a few controller/switch patience profiles,
    closed form vs simulated game. *)

val bloom_table : ?seed:int -> ?n_flows:int -> ?bits:int list -> unit -> Table.t
(** Short runs per bits-per-entry setting: measured duplicates, FP drops,
    and per-switch G-FIB bytes. *)

val preload_table : ?seed:int -> ?n_flows:int -> unit -> Table.t
(** Appendix B seamless-update preloading, on vs off: controller punts and
    packet-ins during a dynamic (frequently regrouping) run. *)

val exclusion_table : ?seed:int -> ?n_flows:int -> ?fractions:float list -> unit -> Table.t
(** Appendix B host exclusion: W_inter of IniGroup when the top-fanout
    hosts are excluded from the intensity matrix. *)

val batch_table : ?seed:int -> ?n_flows:int -> unit -> Table.t
(** Appendix B parallel IncUpdate: wall-clock and cut quality of N
    sequential merge-and-split rounds vs one batched round (1 and 4
    domains). *)
