(** §V-E cold-cache latency: first-packet forwarding latency for fresh
    flows among newly deployed hosts, in three classes — LazyCtrl
    intra-group, LazyCtrl inter-group, and standard OpenFlow.

    The paper reports 0.83 ms / 5.38 ms / 15.06 ms respectively; the
    mechanism (data-plane-only vs one controller round-trip per leg vs a
    slow controller round-trip on every leg) is what the simulation
    reproduces. *)

module Table = Lazyctrl_util.Table

type result = {
  lazy_intra_ms : float;
  lazy_inter_ms : float;
  openflow_ms : float;
  n_flows : int;
}

val run : ?seed:int -> unit -> result

val table : ?seed:int -> unit -> Table.t
