open Lazyctrl_net
open Lazyctrl_switch
module Prng = Lazyctrl_util.Prng
module Bloom = Lazyctrl_bloom.Bloom
module Table = Lazyctrl_util.Table

type result = {
  group_size : int;
  hosts_per_switch : int;
  gfib_bytes : int;
  paper_bytes : int;
  measured_fp : float;
  predicted_fp : float;
}

let host_key id tenant : Proto.host_key =
  let h = Host.make ~id:(Ids.Host_id.of_int id) ~tenant in
  { mac = h.mac; ip = h.ip; tenant = h.tenant }

let run ?(seed = 42) ?(group_size = 46) ?(hosts_per_switch = 64)
    ?(probes = 200_000) () =
  let rng = Prng.create seed in
  let gfib = Gfib.create ~expected_hosts_per_switch:hosts_per_switch () in
  let tenant = Ids.Tenant_id.of_int 0 in
  let next = ref 0 in
  (* 45 peers for a 46-switch group (self has no filter for itself). *)
  for peer = 1 to group_size - 1 do
    let keys =
      List.init hosts_per_switch (fun _ ->
          incr next;
          host_key !next tenant)
    in
    Gfib.set_peer gfib (Ids.Switch_id.of_int peer) keys
  done;
  let inserted = !next in
  (* Probe with MACs guaranteed absent (ids beyond every inserted host). *)
  let positives = ref 0 in
  for _ = 1 to probes do
    let absent = inserted + 1 + Prng.int rng 1_000_000 in
    let mac = Mac.of_host_id absent in
    if not (List.is_empty (Gfib.candidates_mac gfib mac)) then incr positives
  done;
  let measured_fp = Float.of_int !positives /. Float.of_int probes in
  (* Predicted per-filter FP from the fill ratio; a query touches all
     peers, so scale by the peer count for the any-filter rate. *)
  let keys =
    List.init hosts_per_switch (fun i -> host_key (1_000_000 + i) tenant)
  in
  let lfib = Lfib.create () in
  List.iter
    (fun (k : Proto.host_key) ->
      ignore
        (Lfib.learn lfib
           {
             Host.id = Ids.Host_id.of_int (Mac.to_int k.mac land 0xFFFFF);
             mac = k.mac;
             ip = k.ip;
             tenant;
           }))
    keys;
  let bloom = Lfib.to_bloom ~bits_per_entry:128 lfib in
  let per_filter = Bloom.estimated_fp_rate bloom in
  let predicted_fp =
    1.0 -. ((1.0 -. per_filter) ** Float.of_int (group_size - 1))
  in
  {
    group_size;
    hosts_per_switch;
    gfib_bytes = Gfib.storage_bytes gfib;
    paper_bytes = (group_size - 1) * 16 * 128;
    measured_fp;
    predicted_fp;
  }

let table ?seed () =
  let r = run ?seed () in
  let tbl = Table.create [ "Quantity"; "This repo"; "Paper (§V-D)" ] in
  Table.add_row tbl
    [ "Group size"; Table.cell_int r.group_size; "46" ];
  Table.add_row tbl
    [ "Bloom filters per switch"; Table.cell_int (r.group_size - 1); "45" ];
  Table.add_row tbl
    [ "G-FIB storage (bytes)"; Table.cell_int r.gfib_bytes;
      Table.cell_int r.paper_bytes ];
  Table.add_row tbl
    [ "False-positive rate (any filter)";
      Printf.sprintf "%.4f%%" (100.0 *. r.measured_fp); "< 0.1%" ];
  Table.add_row tbl
    [ "Predicted FP rate";
      Printf.sprintf "%.4f%%" (100.0 *. r.predicted_fp); "-" ];
  tbl
