open Lazyctrl_traffic
open Lazyctrl_grouping
module Prng = Lazyctrl_util.Prng
module Table = Lazyctrl_util.Table

let default_syn_flows = 400_000
let default_real_flows = 271_000

let table2 ?(seed = 42) ?(n_flows_real = default_real_flows)
    ?(n_flows_syn = default_syn_flows) () =
  let tbl =
    Table.create
      [ "Trace"; "# of flows"; "Avg. centrality"; "p (%)"; "q (%)"; "Top-10% skew" ]
  in
  let centrality trace =
    Analysis.avg_centrality ~rng:(Prng.create (seed + 99)) ~k:5 trace
  in
  let real = Workloads.real_trace ~seed ~n_flows:n_flows_real in
  Table.add_row tbl
    [
      "Real";
      Table.cell_int (Trace.n_flows real);
      Table.cell_float (centrality real);
      "N/A";
      "N/A";
      Table.cell_float (Analysis.skew real ~top_fraction:0.1);
    ];
  List.iter
    (fun (label, p, q) ->
      let t = Workloads.syn_trace ~seed ~n_flows:n_flows_syn ~p ~q in
      Table.add_row tbl
        [
          label;
          Table.cell_int (Trace.n_flows t);
          Table.cell_float (centrality t);
          Table.cell_int p;
          Table.cell_int q;
          Table.cell_float (Analysis.skew t ~top_fraction:0.1);
        ])
    Workloads.syn_specs;
  tbl

let syn_intensity ~seed ~n_flows_syn (label, p, q) =
  let topo = Workloads.syn_topo ~seed in
  let trace = Workloads.syn_trace ~seed ~n_flows:n_flows_syn ~p ~q in
  (label, Analysis.switch_intensity ~topo trace)

let fig6a ?(seed = 42) ?(n_flows_syn = default_syn_flows)
    ?(group_counts = [ 5; 10; 20; 40; 60; 80; 100; 120; 140 ]) () =
  let graphs =
    List.map (syn_intensity ~seed ~n_flows_syn) Workloads.syn_specs
  in
  let tbl =
    Table.create
      ("# of groups" :: List.map (fun (label, _) -> label ^ " W_inter (%)") graphs)
  in
  let n = Lazyctrl_graph.Wgraph.n_vertices (snd (List.hd graphs)) in
  List.iter
    (fun k ->
      let cells =
        List.map
          (fun (_, g) ->
            (* "Even" groups: limit = ceil(n/k) with 5% slack. *)
            let limit =
              max 1 (int_of_float (Float.ceil (1.05 *. Float.of_int n /. Float.of_int k)))
            in
            let grouping =
              Sgi.ini_group ~rng:(Prng.create (seed + k)) ~limit ~k g
            in
            Table.cell_float (100.0 *. Grouping.normalized_inter g grouping))
          graphs
      in
      Table.add_row tbl (Table.cell_int k :: cells))
    group_counts;
  tbl

let fig6b ?(seed = 42) ?(n_flows_syn = default_syn_flows)
    ?(limits = [ 50; 100; 200; 300; 400; 500; 600 ]) () =
  let graphs =
    List.map (syn_intensity ~seed ~n_flows_syn) Workloads.syn_specs
  in
  let tbl =
    Table.create
      ("Group size limit"
      :: List.concat_map
           (fun (label, _) -> [ label ^ " IniGroup (s)"; label ^ " IncUpdate (s)" ])
           graphs)
  in
  List.iter
    (fun limit ->
      let cells =
        List.concat_map
          (fun (_, g) ->
            let rng = Prng.create (seed + limit) in
            let t0 = Sys.time () in
            let grouping = Sgi.ini_group ~rng ~limit g in
            let t1 = Sys.time () in
            (* One incremental merge-and-split round on the same graph. *)
            ignore (Sgi.inc_update ~rng ~limit ~intensity:g grouping);
            let t2 = Sys.time () in
            [
              Table.cell_float ~decimals:3 (t1 -. t0);
              Table.cell_float ~decimals:4 (t2 -. t1);
            ])
          graphs
      in
      Table.add_row tbl (Table.cell_int limit :: cells))
    limits;
  tbl
