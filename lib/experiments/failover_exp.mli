(** Table I — failure inference — verified two ways.

    [inference_table] exercises the pure Table I lookup over every loss
    pattern. [endtoend_table] injects each failure class into a live
    simulated network and reports the verdict the controller actually
    acted on (via the failover hook), demonstrating the wheel, the ring
    alarms, the echo timeout, and the §III-E recovery actions. *)

module Table = Lazyctrl_util.Table

val inference_table : unit -> Table.t

val endtoend_table : ?seed:int -> unit -> Table.t
(** One row per injected failure: control link, peer link (up), peer link
    (down), switch; columns: injected, inferred, recovery observed. *)
