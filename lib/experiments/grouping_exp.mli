(** Grouping-quality experiments: Table II and Fig. 6.

    These run at paper scale (272-switch real-like topology; 2721-switch
    synthetic topology) but need no packet simulation — only traces,
    intensity matrices, and the partitioner. *)

module Table = Lazyctrl_util.Table

val table2 : ?seed:int -> ?n_flows_real:int -> ?n_flows_syn:int -> unit -> Table.t
(** Trace characteristics: flow count, average centrality (5-way host
    partition, as in §II), p, q — plus the measured top-10% flow skew. *)

val fig6a : ?seed:int -> ?n_flows_syn:int -> ?group_counts:int list -> unit -> Table.t
(** Normalized inter-group traffic intensity (%) of IniGroup vs number of
    groups, for Syn-A/B/C. *)

val fig6b : ?seed:int -> ?n_flows_syn:int -> ?limits:int list -> unit -> Table.t
(** IniGroup wall-clock computation time (s) vs group size limit, for
    Syn-A/B/C, plus the IncUpdate speedup column (ablation A1). *)
