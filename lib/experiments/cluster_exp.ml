open Lazyctrl_sim
open Lazyctrl_chaos
open Lazyctrl_cluster
module Table = Lazyctrl_util.Table
module Reliable = Lazyctrl_openflow.Reliable

let cfg_for ?(seed = 42) kind =
  let base = Chaos_runner.default_config in
  {
    base with
    Chaos_runner.seed;
    loss = 0.0;
    dup = 0.0;
    spec =
      { base.Chaos_runner.spec with Scenario.kinds = [ kind ]; n_faults = 1 };
  }

let table ?seed () =
  let tbl =
    Table.create
      [
        "Fault";
        "Flows";
        "Delivered";
        "Adoptions";
        "Handoffs";
        "Involvement";
        "Converged (s)";
        "Dup. deliveries";
      ]
  in
  List.iter
    (fun kind ->
      let r = Chaos_runner.run (cfg_for ?seed kind) in
      let m = r.Chaos_runner.member_stats in
      Table.add_row tbl
        [
          Fault.kind_label kind;
          Table.cell_int r.Chaos_runner.flows_started;
          Table.cell_int r.Chaos_runner.flows_delivered;
          Table.cell_int m.Member.adoptions;
          Table.cell_int m.Member.handoffs_offered;
          Table.cell_float ~decimals:4 r.Chaos_runner.involvement;
          (match r.Chaos_runner.converged_after with
          | Some t -> Table.cell_float ~decimals:1 (Time.to_float_sec t)
          | None -> "did not converge");
          Table.cell_int r.Chaos_runner.reliability.Reliable.violations;
        ])
    Fault.cluster_kinds;
  tbl
