(** Controller-cluster failover experiment.

    One seeded chaos run per cluster fault kind (member kill,
    coordination-mesh partition, switch power cycle, loss storm) against
    a 3-member cluster, reporting what the paper's §III-E recovery story
    looks like when the controller itself is the failing component:
    delivery (no packet lost to a controller death), how many groups were
    adopted and handed back, the controller-involvement ratio (laziness
    must survive failover), convergence time after the last repair, and
    the cluster-wide exactly-once audit. *)

module Table = Lazyctrl_util.Table

val table : ?seed:int -> unit -> Table.t
