(** Chaos sweep: channel loss rate x state-delivery mode, each cell one
    seeded multi-fault scenario ({!Lazyctrl_chaos.Runner}).

    Columns: end-to-end delivery ratio, retransmissions, reliable-session
    give-ups, invariant verdicts at the settle deadline, and time from the
    last repair to full convergence. The fire-and-forget rows show the
    failure mode the reliable layer exists to fix: under loss they either
    converge only via the slow periodic full re-adverts or not at all. *)

module Table = Lazyctrl_util.Table

val run :
  ?tracer:Lazyctrl_trace.Tracer.t ->
  ?seed:int ->
  ?loss:float ->
  ?reliable:bool ->
  unit ->
  Lazyctrl_chaos.Runner.result
(** One cell of the sweep on its own — the entry point for
    flight-recorded chaos runs ([lazyctrl trace record --chaos]).
    Defaults: seed 42, 5% loss, reliable delivery. *)

val table : ?seed:int -> ?losses:float list -> unit -> Table.t
