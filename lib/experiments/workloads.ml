open Lazyctrl_sim
open Lazyctrl_topo
open Lazyctrl_traffic
module Prng = Lazyctrl_util.Prng

let horizon = Time.of_hour 24

let syn_specs = [ ("Syn-A", 90, 10); ("Syn-B", 70, 20); ("Syn-C", 70, 30) ]

(* Per-process memo tables so bench targets sharing a workload do not pay
   for generation twice. *)
let memo : (string, Obj.t) Hashtbl.t = Hashtbl.create 16

let memoize key (f : unit -> 'a) : 'a =
  match Hashtbl.find_opt memo key with
  | Some v -> Obj.obj v
  | None ->
      let v = f () in
      Hashtbl.replace memo key (Obj.repr v);
      v

let paper_topo ~seed =
  memoize (Printf.sprintf "paper_topo/%d" seed) (fun () ->
      Placement.generate ~rng:(Prng.create (seed * 7 + 1)) Placement.default)

let syn_topo ~seed =
  memoize (Printf.sprintf "syn_topo/%d" seed) (fun () ->
      Placement.generate
        ~rng:(Prng.create (seed * 7 + 2))
        (Placement.scaled ~factor:10 Placement.default))

let sim_spec =
  {
    Placement.n_switches = 68;
    n_tenants = 30;
    tenant_size_min = 20;
    tenant_size_max = 100;
    racks_per_tenant = 4;
    stray_fraction = 0.05;
  }

let sim_topo ~seed =
  memoize (Printf.sprintf "sim_topo/%d" seed) (fun () ->
      Placement.generate ~rng:(Prng.create (seed * 7 + 3)) sim_spec)

let real_trace ~seed ~n_flows =
  memoize (Printf.sprintf "real_trace/%d/%d" seed n_flows) (fun () ->
      Gen.real_like
        ~rng:(Prng.create (seed * 7 + 4))
        ~topo:(paper_topo ~seed) ~n_flows ())

let sim_trace ~seed ~n_flows =
  memoize (Printf.sprintf "sim_trace/%d/%d" seed n_flows) (fun () ->
      Gen.real_like
        ~rng:(Prng.create (seed * 7 + 5))
        ~topo:(sim_topo ~seed) ~n_flows ())

let sim_trace_expanded ~seed ~n_flows =
  memoize (Printf.sprintf "sim_trace_exp/%d/%d" seed n_flows) (fun () ->
      Gen.expand
        ~rng:(Prng.create (seed * 7 + 6))
        ~topo:(sim_topo ~seed) ~extra_fraction:0.30 ~from_hour:8 ~until_hour:24
        (sim_trace ~seed ~n_flows))

let syn_trace ~seed ~n_flows ~p ~q =
  memoize (Printf.sprintf "syn_trace/%d/%d/%d/%d" seed n_flows p q) (fun () ->
      let base =
        (* A small base trace supplies payload sizes and timestamps. *)
        Gen.real_like
          ~rng:(Prng.create (seed * 7 + 7))
          ~topo:(paper_topo ~seed)
          ~n_flows:(max 10_000 (n_flows / 10))
          ()
      in
      Gen.synthetic
        ~rng:(Prng.create ((seed * 7) + 8 + (p * 1000) + q))
        ~topo:(syn_topo ~seed) ~base ~n_flows ~p ~q)
