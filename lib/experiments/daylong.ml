open Lazyctrl_sim
open Lazyctrl_traffic
open Lazyctrl_core
open Lazyctrl_controller
open Lazyctrl_metrics
module Table = Lazyctrl_util.Table

type config_name =
  | Openflow_real
  | Lazy_real_static
  | Lazy_real_dynamic
  | Lazy_expanded_static
  | Lazy_expanded_dynamic

let all_configs =
  [
    Openflow_real;
    Lazy_real_static;
    Lazy_real_dynamic;
    Lazy_expanded_static;
    Lazy_expanded_dynamic;
  ]

let config_label = function
  | Openflow_real -> "OpenFlow"
  | Lazy_real_static -> "LazyCtrl (real, static)"
  | Lazy_real_dynamic -> "LazyCtrl (real, dynamic)"
  | Lazy_expanded_static -> "LazyCtrl (expanded, static)"
  | Lazy_expanded_dynamic -> "LazyCtrl (expanded, dynamic)"

type run_result = {
  name : config_name;
  recorder : Recorder.t;
  switch_punted : int;
  switch_gfib_handled : int;
  flows_delivered : int;
  flows_started : int;
}

(* Controller timer cadences relaxed for the 24-hour event budget; the
   paper's 2-minute update floor and 30% growth trigger are kept. *)
let sim_controller_config ~incremental =
  {
    Controller.default_config with
    Controller.group_size_limit = 14;
    sync_period = Time.of_min 2;
    keepalive_period = Time.of_sec 30;
    echo_period = Time.of_min 1;
    echo_timeout = Time.of_min 3;
    daemon_period = Time.of_sec 30;
    incremental_updates = incremental;
  }

let memo : (string, run_result) Hashtbl.t = Hashtbl.create 8

let run ?tracer ?(seed = 42) ?(n_flows = 120_000) name =
  let key = Printf.sprintf "%s/%d/%d" (config_label name) seed n_flows in
  (* A flight-recorded run is never memoized: the caller wants the
     tracer filled, and sharing a cached result would leave it empty
     (and would also break double-run determinism checks). *)
  let memoize = Option.is_none tracer in
  match if memoize then Hashtbl.find_opt memo key else None with
  | Some r -> r
  | None ->
      let topo = Workloads.sim_topo ~seed in
      let trace =
        match name with
        | Lazy_expanded_static | Lazy_expanded_dynamic ->
            Workloads.sim_trace_expanded ~seed ~n_flows
        | Openflow_real | Lazy_real_static | Lazy_real_dynamic ->
            Workloads.sim_trace ~seed ~n_flows
      in
      let mode, incremental =
        match name with
        | Openflow_real -> (Network.Openflow, false)
        | Lazy_real_static | Lazy_expanded_static -> (Network.Lazy, false)
        | Lazy_real_dynamic | Lazy_expanded_dynamic -> (Network.Lazy, true)
      in
      let params = Params.with_seed seed Params.default in
      let net =
        Network.create ~params
          ~controller_config:(sim_controller_config ~incremental)
          ?tracer ~mode ~topo ~horizon:Workloads.horizon ()
      in
      (* Initial grouping from the first hour of (historical) traffic, as
         in §V-D. *)
      (match mode with
      | Network.Lazy ->
          let first_hour =
            Analysis.switch_intensity ~until:(Time.of_hour 1) ~topo trace
          in
          Network.bootstrap net ~intensity:first_hour ()
      | Network.Openflow -> ());
      Network.replay net trace;
      Network.run net ~until:Workloads.horizon;
      let stats = Network.switch_stats_sum net in
      let r =
        {
          name;
          recorder = Network.recorder net;
          switch_punted = stats.Lazyctrl_switch.Edge_switch.punted;
          switch_gfib_handled = stats.Lazyctrl_switch.Edge_switch.gfib_handled;
          flows_delivered = Host_model.flows_delivered (Network.host_model net);
          flows_started = Host_model.flows_started (Network.host_model net);
        }
      in
      if memoize then Hashtbl.replace memo key r;
      r

let fig7_table ?seed ?n_flows () =
  let runs = List.map (fun c -> run ?seed ?n_flows c) all_configs in
  let tbl =
    Table.create
      ("Time (hour)" :: List.map (fun r -> config_label r.name) runs)
  in
  let any = List.hd runs in
  for b = 0 to Recorder.n_buckets any.recorder - 1 do
    Table.add_row tbl
      (Recorder.bucket_label any.recorder b
      :: List.map
           (fun r -> Table.cell_float ~decimals:3 (Recorder.workload_rps r.recorder).(b))
           runs)
  done;
  tbl

(* Fig. 7 in real units: the codec prices every control message, so the
   same five runs can report controller load as bytes/sec on the wire
   (EXPERIMENTS.md "Fig. 7 in real units"). *)
let fig7_bytes_table ?seed ?n_flows () =
  let runs = List.map (fun c -> run ?seed ?n_flows c) all_configs in
  let tbl =
    Table.create
      ("Time (hour)" :: List.map (fun r -> config_label r.name) runs)
  in
  let any = List.hd runs in
  for b = 0 to Recorder.n_buckets any.recorder - 1 do
    Table.add_row tbl
      (Recorder.bucket_label any.recorder b
      :: List.map
           (fun r ->
             Table.cell_float ~decimals:1
               (Recorder.ctrl_bytes_per_sec r.recorder).(b))
           runs)
  done;
  tbl

let ctrl_bytes_reduction ?seed ?n_flows () =
  let of_run = run ?seed ?n_flows Openflow_real in
  let lazy_run = run ?seed ?n_flows Lazy_real_dynamic in
  let of_b = Float.of_int (Recorder.total_ctrl_bytes of_run.recorder) in
  let lz_b = Float.of_int (Recorder.total_ctrl_bytes lazy_run.recorder) in
  if of_b <= 0.0 then 0.0 else 1.0 -. (lz_b /. of_b)

let fig8_table ?seed ?n_flows () =
  let real = run ?seed ?n_flows Lazy_real_dynamic in
  let expanded = run ?seed ?n_flows Lazy_expanded_dynamic in
  let tbl =
    Table.create [ "Time (hour)"; "LazyCtrl (real)"; "LazyCtrl (expanded)" ]
  in
  let ur = Recorder.updates_per_hour real.recorder in
  let ue = Recorder.updates_per_hour expanded.recorder in
  Array.iteri
    (fun h r ->
      Table.add_row tbl
        [ Printf.sprintf "%d-%d" h (h + 1); Table.cell_int r; Table.cell_int ue.(h) ])
    ur;
  tbl

let fig9_table ?seed ?n_flows () =
  let of_run = run ?seed ?n_flows Openflow_real in
  let lazy_run = run ?seed ?n_flows Lazy_real_dynamic in
  let tbl = Table.create [ "Time (hour)"; "OpenFlow (ms)"; "LazyCtrl (ms)" ] in
  let lo = Recorder.latency_ms_series of_run.recorder in
  let ll = Recorder.latency_ms_series lazy_run.recorder in
  Array.iteri
    (fun b v ->
      Table.add_row tbl
        [
          Recorder.bucket_label of_run.recorder b;
          Table.cell_float ~decimals:3 v;
          Table.cell_float ~decimals:3 ll.(b);
        ])
    lo;
  tbl

let workload_reduction ?seed ?n_flows () =
  let of_run = run ?seed ?n_flows Openflow_real in
  let lazy_run = run ?seed ?n_flows Lazy_real_dynamic in
  let of_req = Float.of_int (Recorder.total_requests of_run.recorder) in
  let lz_req = Float.of_int (Recorder.total_requests lazy_run.recorder) in
  if of_req <= 0.0 then 0.0 else 1.0 -. (lz_req /. of_req)
