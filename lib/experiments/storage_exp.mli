(** §V-D storage overhead of the Bloom-filter G-FIB, and the measured vs
    predicted false-positive rate.

    The paper's arithmetic example: a 46-switch group gives each member 45
    Bloom filters; at 16 entries per 128-byte filter block that is
    45 × 16 × 128 = 92,160 bytes, with a false-positive rate below 0.1%.
    We reproduce the arithmetic and additionally measure the realized FP
    rate of our filters at the same bits-per-entry budget. *)

module Table = Lazyctrl_util.Table

type result = {
  group_size : int;
  hosts_per_switch : int;
  gfib_bytes : int;
  paper_bytes : int;
  measured_fp : float;
  predicted_fp : float;
}

val run :
  ?seed:int -> ?group_size:int -> ?hosts_per_switch:int -> ?probes:int ->
  unit -> result

val table : ?seed:int -> unit -> Table.t
