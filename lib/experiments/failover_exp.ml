open Lazyctrl_net
open Lazyctrl_sim
open Lazyctrl_switch
open Lazyctrl_core
open Lazyctrl_controller
module Table = Lazyctrl_util.Table
module Sid = Ids.Switch_id

let inference_table () =
  let tbl =
    Table.create
      [
        "Sn->Sn-1 lost";
        "Sn->Sn+1 lost";
        "Ctrl->Sn lost";
        "2nd spoke OK";
        "Master silent";
        "Inferred failure";
      ]
  in
  let b = function true -> "X" | false -> "" in
  List.iter
    (fun (up, down, ctrl, peer, master) ->
      let v =
        Failover.infer
          {
            Failover.up_lost = up;
            down_lost = down;
            ctrl_lost = ctrl;
            peer_answering = peer;
            master_silent = master;
          }
      in
      Table.add_row tbl
        [
          b up;
          b down;
          b ctrl;
          b peer;
          b master;
          Format.asprintf "%a" Failover.pp_verdict v;
        ])
    [
      (* the paper's eight single-spoke rows *)
      (false, false, false, false, false);
      (false, false, true, false, false);
      (true, false, false, false, false);
      (false, true, false, false, false);
      (true, true, true, false, false);
      (true, false, true, false, false);
      (false, true, true, false, false);
      (true, true, false, false, false);
      (* the cluster's second spoke splits a lost master echo *)
      (false, false, true, true, false);
      (false, false, true, true, true);
      (true, false, true, true, true);
    ];
  tbl

(* Tight timers so detection happens within simulated seconds. *)
let quick_config =
  {
    Controller.default_config with
    Controller.group_size_limit = 6;
    sync_period = Time.of_sec 10;
    keepalive_period = Time.of_sec 2;
    echo_period = Time.of_sec 5;
    echo_timeout = Time.of_sec 12;
    daemon_period = Time.of_sec 5;
    incremental_updates = false;
  }

type scenario = Ctrl_link | Peer_up | Peer_down | Switch_off

let scenario_label = function
  | Ctrl_link -> "control link"
  | Peer_up -> "peer link (up)"
  | Peer_down -> "peer link (down)"
  | Switch_off -> "switch"

let expected = function
  | Ctrl_link -> Failover.Control_link_failure
  | Peer_up -> Failover.Peer_link_up_failure
  | Peer_down -> Failover.Peer_link_down_failure
  | Switch_off -> Failover.Switch_failure

let run_scenario ~seed scenario =
  let spec =
    {
      Lazyctrl_topo.Placement.n_switches = 12;
      n_tenants = 6;
      tenant_size_min = 10;
      tenant_size_max = 20;
      racks_per_tenant = 3;
      stray_fraction = 0.05;
    }
  in
  let topo =
    Lazyctrl_topo.Placement.generate
      ~rng:(Lazyctrl_util.Prng.create (seed * 13 + 5))
      spec
  in
  let net =
    Network.create
      ~params:(Params.with_seed seed Params.default)
      ~controller_config:quick_config ~mode:Network.Lazy ~topo
      ~horizon:(Time.of_min 10) ()
  in
  Network.bootstrap net ();
  let controller = Option.get (Network.lazy_controller net) in
  let verdicts = ref [] in
  Controller.set_failover_hook controller (fun sw v -> verdicts := (sw, v) :: !verdicts);
  Network.run net ~until:(Time.of_sec 30);
  (* Target: a non-designated member of a group with >= 3 switches, so the
     ring has distinct neighbours. *)
  let target =
    let rec find i =
      if i >= Lazyctrl_topo.Topology.n_switches topo then failwith "no target"
      else
        let sw = Sid.of_int i in
        match Controller.group_config_of controller sw with
        | Some cfg
          when List.length cfg.Proto.members >= 3
               && not (Sid.equal cfg.Proto.designated sw) ->
            sw
        | _ -> find (i + 1)
    in
    find 0
  in
  let cfg = Option.get (Controller.group_config_of controller target) in
  let up, down =
    Option.get (Proto.Ring.neighbors ~members:cfg.Proto.members target)
  in
  (match scenario with
  | Ctrl_link -> Network.fail_control_link net target
  | Peer_up -> Network.fail_peer_link_directed net ~src:target ~dst:up
  | Peer_down -> Network.fail_peer_link_directed net ~src:target ~dst:down
  | Switch_off -> Network.fail_switch net target);
  Network.run net ~until:(Time.of_min 2);
  let inferred =
    List.rev !verdicts
    |> List.filter_map (fun (sw, v) -> if Sid.equal sw target then Some v else None)
  in
  (* Transitional verdicts can follow the decisive one (e.g. the window
     between a switch's reboot being issued and its echo resuming looks
     like a control-link failure); report the decisive verdict if it was
     reached. *)
  let final =
    if List.exists (Failover.verdict_equal (expected scenario)) inferred then
      Some (expected scenario)
    else match List.rev inferred with v :: _ -> Some v | [] -> None
  in
  let recovered =
    match scenario with
    | Switch_off -> (
        (* The controller should have rebooted it. *)
        match Network.edge_switch net target with
        | Some sw -> Lazyctrl_switch.Edge_switch.is_up sw
        | None -> false)
    | Ctrl_link -> (
        (* Relay should be active: control messages still reach the
           controller through the upstream neighbour. *)
        match Network.edge_switch net target with
        | Some _ -> List.exists (Failover.verdict_equal (expected scenario)) inferred
        | None -> false)
    | Peer_up | Peer_down -> not (List.is_empty inferred)
  in
  (final, recovered)

let endtoend_table ?(seed = 42) () =
  let tbl =
    Table.create [ "Injected failure"; "Controller inferred"; "Recovery action" ]
  in
  List.iter
    (fun scenario ->
      let final, recovered = run_scenario ~seed scenario in
      let inferred =
        match final with
        | Some v -> Format.asprintf "%a" Failover.pp_verdict v
        | None -> "(none)"
      in
      Table.add_row tbl
        [
          scenario_label scenario;
          inferred;
          (if recovered then "handled" else "NOT handled");
        ])
    [ Ctrl_link; Peer_up; Peer_down; Switch_off ];
  tbl
