open Lazyctrl_chaos
module Table = Lazyctrl_util.Table
module Reliable = Lazyctrl_openflow.Reliable
module Time = Lazyctrl_sim.Time

let config ~seed ~loss ~reliable =
  {
    Runner.default_config with
    Runner.seed;
    loss;
    (* Duplication rides along at a fifth of the loss rate, like a WAN. *)
    dup = loss /. 5.0;
    reliable;
  }

let mode_label reliable = if reliable then "reliable" else "fire-and-forget"

let run ?tracer ?(seed = 42) ?(loss = 0.05) ?(reliable = true) () =
  Runner.run ?tracer (config ~seed ~loss ~reliable)

let table ?(seed = 42) ?(losses = [ 0.0; 0.02; 0.05; 0.10 ]) () =
  let tbl =
    Table.create
      [
        "loss";
        "state delivery";
        "delivered";
        "retransmits";
        "give-ups";
        "invariants";
        "converged (s)";
      ]
  in
  List.iter
    (fun loss ->
      List.iter
        (fun reliable ->
          let r = Runner.run (config ~seed ~loss ~reliable) in
          let ok =
            List.length (List.filter (fun x -> x.Invariant.ok) r.Runner.reports)
          in
          Table.add_row tbl
            [
              Printf.sprintf "%.0f%%" (100. *. loss);
              mode_label reliable;
              Printf.sprintf "%.1f%%"
                (100. *. Runner.delivery_ratio r.Runner.link);
              string_of_int r.Runner.reliability.Reliable.retransmits;
              string_of_int r.Runner.reliability.Reliable.give_ups;
              Printf.sprintf "%d/%d" ok (List.length r.Runner.reports);
              (match r.Runner.converged_after with
              | Some t -> Printf.sprintf "%.1f" (Time.to_float_sec t)
              | None -> "never");
            ])
        [ true; false ])
    losses;
  tbl
